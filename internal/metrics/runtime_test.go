package metrics

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestCollectRuntimeSetsHealthGauges(t *testing.T) {
	r := NewRegistry()
	runtime.GC() // ensure at least one GC pause sample exists
	CollectRuntime(r, time.Now().Add(-2*time.Second))

	if g, ok := r.Gauge(GoGoroutines).Value(); !ok || g < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", g)
	}
	if g, ok := r.Gauge(GoHeapAllocBytes).Value(); !ok || g <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", g)
	}
	if g, ok := r.Gauge(GoGCPauseP99Seconds).Value(); !ok || g < 0 {
		t.Errorf("go_gc_pause_p99_seconds = %v, want >= 0", g)
	}
	if g, ok := r.Gauge(ProcessUptimeSeconds).Value(); !ok || g < 2 {
		t.Errorf("process_uptime_seconds = %v, want >= 2", g)
	}

	exp := r.Exposition()
	for _, name := range []string{GoGoroutines, GoHeapAllocBytes, GoGCPauseP99Seconds, ProcessUptimeSeconds} {
		if !strings.Contains(exp, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

func TestCollectRuntimeNilRegistry(t *testing.T) {
	CollectRuntime(nil, time.Now()) // must not panic
}

func TestGCPauseP99(t *testing.T) {
	var ms runtime.MemStats
	if p := gcPauseP99(&ms); p != 0 {
		t.Errorf("zero GCs should yield 0, got %v", p)
	}
	ms.NumGC = 4
	ms.PauseNs[0] = 100
	ms.PauseNs[1] = 200
	ms.PauseNs[2] = 300
	ms.PauseNs[3] = 400
	want := 400 / float64(time.Second)
	if p := gcPauseP99(&ms); p != want {
		t.Errorf("p99 of 4 samples = %v, want %v", p, want)
	}
}
