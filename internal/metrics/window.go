// Windowed rates: a Meter counts events into a ring of sub-window buckets
// and answers with the arrival rate over the sliding window plus an EWMA
// smoothed per completed bucket — the live view the saturation analyzer
// and the admission tier need, which the cumulative counters cannot give
// without a scraping sidecar doing the differencing.
package metrics

import (
	"math"
	"sync"
	"time"
)

// Meter defaults: a one-minute window split into 5-second buckets, and the
// EWMA weight applied to each newest completed bucket's rate.
const (
	DefaultMeterWindow  = time.Minute
	defaultMeterBuckets = 12
	meterAlpha          = 0.4
)

// Meter counts events over a sliding window. The window is a ring of
// equally sized buckets; Mark adds to the current bucket, and bucket
// rotation (driven lazily by whichever method is called next) folds each
// completed bucket's rate into an exponentially weighted moving average.
// The zero value is not usable; construct with NewMeter.
type Meter struct {
	mu        sync.Mutex
	bucketDur time.Duration
	buckets   []int64
	head      int
	headStart time.Time
	started   bool
	filled    int // completed buckets, capped at len(buckets)-1
	total     int64
	ewma      float64
	ewmaOK    bool
	now       func() time.Time
}

// NewMeter returns a meter covering the window with the given number of
// ring buckets (window ≤ 0 selects DefaultMeterWindow, buckets ≤ 0 the
// default of 12).
func NewMeter(window time.Duration, buckets int) *Meter {
	if window <= 0 {
		window = DefaultMeterWindow
	}
	if buckets <= 0 {
		buckets = defaultMeterBuckets
	}
	return &Meter{
		bucketDur: window / time.Duration(buckets),
		buckets:   make([]int64, buckets),
		now:       time.Now,
	}
}

// advance rotates the ring up to the current time. Callers hold m.mu.
func (m *Meter) advance(now time.Time) {
	if !m.started {
		m.headStart = now
		m.started = true
		return
	}
	elapsed := now.Sub(m.headStart)
	if elapsed < m.bucketDur {
		return
	}
	steps := int(elapsed / m.bucketDur)
	if steps > len(m.buckets) {
		// The meter idled past a full window. The head bucket was still
		// accumulating events when the meter went idle, so its rate folds
		// into the EWMA first — exactly as the step-by-step path below would
		// have done — and only the remaining steps-1 expired buckets decay
		// the average as zero-rate completions.
		rate := float64(m.buckets[m.head]) / m.bucketDur.Seconds()
		if !m.ewmaOK {
			m.ewma, m.ewmaOK = rate, true
		} else {
			m.ewma = meterAlpha*rate + (1-meterAlpha)*m.ewma
		}
		m.ewma *= math.Pow(1-meterAlpha, float64(steps-1))
		for i := range m.buckets {
			m.buckets[i] = 0
		}
		m.filled = len(m.buckets) - 1
		m.headStart = m.headStart.Add(time.Duration(steps) * m.bucketDur)
		return
	}
	for i := 0; i < steps; i++ {
		rate := float64(m.buckets[m.head]) / m.bucketDur.Seconds()
		if !m.ewmaOK {
			m.ewma, m.ewmaOK = rate, true
		} else {
			m.ewma = meterAlpha*rate + (1-meterAlpha)*m.ewma
		}
		m.head = (m.head + 1) % len(m.buckets)
		m.buckets[m.head] = 0
		m.headStart = m.headStart.Add(m.bucketDur)
		if m.filled < len(m.buckets)-1 {
			m.filled++
		}
	}
}

// Mark records n events (n ≤ 0 is ignored).
func (m *Meter) Mark(n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance(m.now())
	m.buckets[m.head] += n
	m.total += n
}

// Rate returns events per second averaged over the sliding window. Before
// a full window has elapsed it averages over the observed portion, so a
// fresh meter does not under-report.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.advance(now)
	if !m.started {
		return 0
	}
	var sum int64
	for _, b := range m.buckets {
		sum += b
	}
	denom := time.Duration(m.filled)*m.bucketDur + now.Sub(m.headStart)
	if denom <= 0 {
		return 0
	}
	return float64(sum) / denom.Seconds()
}

// EWMA returns the exponentially weighted moving average of the
// per-bucket rates, in events per second (0 until one bucket completes).
func (m *Meter) EWMA() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advance(m.now())
	return m.ewma
}

// Total returns the cumulative event count since construction.
func (m *Meter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Meter returns the named meter (default window), creating it on first
// use. Meters render in Exposition as three derived families:
// <name>_total (counter), <name>_rate_per_sec and <name>_ewma_per_sec
// (gauges); a labeled name carries its labels onto all three.
func (r *Registry) Meter(name string) *Meter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = NewMeter(0, 0)
		r.meters[name] = m
	}
	return m
}
