package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLabeledCounterBasics(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("requests", "device")
	lc.With("pda1").Inc()
	lc.With("pda1").Inc()
	lc.With("desktop1").Add(3)
	if got := lc.With("pda1").Value(); got != 2 {
		t.Errorf("pda1 = %d", got)
	}
	if got := lc.With("desktop1").Value(); got != 3 {
		t.Errorf("desktop1 = %d", got)
	}
	if got := lc.Series(); got != 2 {
		t.Errorf("Series = %d", got)
	}
	// Memoized by name: same family back.
	if r.LabeledCounter("requests", "device") != lc {
		t.Error("registry did not memoize the family")
	}
}

func TestLabeledSeriesRenderInExposition(t *testing.T) {
	r := NewRegistry()
	r.LabeledGauge("device_headroom_ratio", "device").With("pda1").Set(0.25)
	r.LabeledCounter("sessions", "class").With("audio").Inc()
	r.LabeledHistogram("place_latency", "class").With("audio").Observe(10 * time.Millisecond)
	out := r.Exposition()
	for _, want := range []string{
		`device_headroom_ratio{device="pda1"} 0.25`,
		`sessions{class="audio"} 1`,
		`place_latency_count{class="audio"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Exceeding the cardinality bound must not grow the map or panic: every
// overflow value lands on the shared "other" series.
func TestLabeledCardinalityCap(t *testing.T) {
	r := NewRegistry()
	lc := NewLabeledCounter(r, "hits", "peer", 4)
	for i := 0; i < 100; i++ {
		lc.With(fmt.Sprintf("peer-%d", i)).Inc()
	}
	// 4 real series + the overflow series.
	if got := lc.Series(); got != 5 {
		t.Fatalf("Series after overflow = %d, want 5", got)
	}
	if got := lc.With(OverflowLabel).Value(); got != 96 {
		t.Fatalf("overflow series = %d, want 96", got)
	}
	// Known values still resolve to their own series.
	if got := lc.With("peer-0").Value(); got != 1 {
		t.Fatalf("peer-0 = %d, want 1", got)
	}
	// A fresh unseen value after the cap still lands on overflow.
	lc.With("late-arrival").Inc()
	if got := lc.Series(); got != 5 {
		t.Fatalf("Series grew to %d after cap", got)
	}
}

func TestLabeledCardinalityCapConcurrent(t *testing.T) {
	r := NewRegistry()
	lg := NewLabeledGauge(r, "util", "device", 8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				lg.With(fmt.Sprintf("dev-%d-%d", i, j)).Set(1)
			}
		}(i)
	}
	wg.Wait()
	if got := lg.Series(); got > 9 {
		t.Fatalf("Series after concurrent overflow = %d, want ≤ 9", got)
	}
}

func TestLabeledHistogramSeries(t *testing.T) {
	r := NewRegistry()
	lh := r.LabeledHistogram("op_latency", "op")
	lh.With("place").Observe(5 * time.Millisecond)
	lh.With("place").Observe(15 * time.Millisecond)
	if got := lh.With("place").Count(); got != 2 {
		t.Errorf("Count = %d", got)
	}
	if got := lh.Series(); got != 1 {
		t.Errorf("Series = %d", got)
	}
}
