package metrics

import (
	"runtime"
	"sort"
	"time"
)

// Go runtime health gauges, refreshed by CollectRuntime on every
// /metrics scrape so dashboards see process health next to the domain
// metrics.
const (
	// GoGoroutines gauges the live goroutine count.
	GoGoroutines = "go_goroutines"
	// GoHeapAllocBytes gauges the bytes of allocated heap objects.
	GoHeapAllocBytes = "go_heap_alloc_bytes"
	// GoGCPauseP99Seconds gauges the p99 stop-the-world GC pause over
	// the runtime's recent-pause ring (up to the last 256 GCs).
	GoGCPauseP99Seconds = "go_gc_pause_p99_seconds"
	// ProcessUptimeSeconds gauges the seconds since the process (or the
	// metrics surface) started.
	ProcessUptimeSeconds = "process_uptime_seconds"
)

// CollectRuntime samples the Go runtime into the registry's health
// gauges. Callers pass the process start time; the scrape handler calls
// this just before rendering the exposition so the gauges are fresh.
func CollectRuntime(r *Registry, start time.Time) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(GoGoroutines).Set(float64(runtime.NumGoroutine()))
	r.Gauge(GoHeapAllocBytes).Set(float64(ms.HeapAlloc))
	r.Gauge(GoGCPauseP99Seconds).Set(gcPauseP99(&ms))
	r.Gauge(ProcessUptimeSeconds).Set(time.Since(start).Seconds())
}

// gcPauseP99 computes the 99th-percentile pause from MemStats.PauseNs, a
// circular buffer holding the most recent GC pauses (at most 256).
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (99*n + 99) / 100 // ceil(0.99·n), 1-based rank
	if idx > n {
		idx = n
	}
	return float64(pauses[idx-1]) / float64(time.Second)
}
