package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored: monotonic
	if got := c.Value(); got != 6 {
		t.Errorf("Value = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 1600 {
		t.Errorf("Value = %d", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram stats wrong")
	}
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	h.Observe(-1) // ignored
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != 40*time.Millisecond {
		t.Errorf("Sum = %v", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 100 observations spread across two decades.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	// Bucket bounds grow by 1.5×, so the estimate over-reports by at most
	// one growth factor.
	if p50 < 50*time.Millisecond || p50 > 80*time.Millisecond {
		t.Errorf("p50 = %v, want within [50ms, 80ms]", p50)
	}
	if p99 < 99*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v, want within [99ms, 100ms] (clamped to max)", p99)
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Errorf("p100 = %v, want max %v", q, h.Max())
	}
	// A quantile can never report below the observed minimum.
	var lo Histogram
	lo.Observe(5 * time.Millisecond)
	if q := lo.Quantile(0.5); q != 5*time.Millisecond {
		t.Errorf("single-sample p50 = %v, want 5ms", q)
	}
}

func TestBucketFor(t *testing.T) {
	if got := bucketFor(0); got != 0 {
		t.Errorf("bucketFor(0) = %d", got)
	}
	if got := bucketFor(time.Microsecond); got != 0 {
		t.Errorf("bucketFor(1µs) = %d", got)
	}
	if got := bucketFor(histBounds[histBuckets-1] + 1); got != histBuckets {
		t.Errorf("overflow bucket = %d, want %d", got, histBuckets)
	}
	// Every bound maps to its own bucket.
	for i, b := range histBounds {
		if got := bucketFor(b); got != i {
			t.Fatalf("bucketFor(bound %d) = %d", i, got)
		}
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if _, ok := g.Value(); ok {
		t.Error("unset gauge should report !ok")
	}
	g.Set(3.5)
	if v, ok := g.Value(); !ok || v != 3.5 {
		t.Errorf("Value = %v, %v", v, ok)
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 2 {
		t.Errorf("same name must return the same counter: %d", got)
	}
	r.Histogram("h").Observe(time.Second)
	if got := r.Histogram("h").Count(); got != 1 {
		t.Errorf("histogram reuse broken: %d", got)
	}
	r.Gauge("g").Set(1)
	if v, _ := r.Gauge("g").Value(); v != 1 {
		t.Error("gauge reuse broken")
	}
}

func TestWithLabel(t *testing.T) {
	if got := WithLabel(WireLatency, "op", "start"); got != `wire_request_duration_seconds{op="start"}` {
		t.Errorf("WithLabel = %q", got)
	}
	got := WithLabel(WithLabel("x", "a", "1"), "b", "2")
	if got != `x{a="1",b="2"}` {
		t.Errorf("nested WithLabel = %q", got)
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(ConfigsTotal).Add(7)
	r.Counter(WithLabel(WireRequests, "op", "start")).Inc()
	r.Counter(WithLabel(WireRequests, "op", "stop")).Add(2)
	r.Histogram(CompositionTime).Observe(2 * time.Millisecond)
	r.Histogram(WithLabel(WireLatency, "op", "start")).Observe(time.Millisecond)
	r.Gauge(ActiveSessions).Set(3)
	r.Gauge("unset_gauge") // never set: omitted
	text := r.Exposition()

	for _, want := range []string{
		"# TYPE configs_total counter\n",
		"configs_total 7\n",
		"# TYPE wire_requests_total counter\n",
		"wire_requests_total{op=\"start\"} 1\n",
		"wire_requests_total{op=\"stop\"} 2\n",
		"# TYPE composition_time_seconds summary\n",
		"composition_time_seconds{quantile=\"0.5\"} ",
		"composition_time_seconds{quantile=\"0.95\"} ",
		"composition_time_seconds{quantile=\"0.99\"} ",
		"composition_time_seconds_sum 0.002",
		"composition_time_seconds_count 1\n",
		"wire_request_duration_seconds{op=\"start\",quantile=\"0.5\"} ",
		"wire_request_duration_seconds_sum{op=\"start\"} 0.001",
		"wire_request_duration_seconds_count{op=\"start\"} 1\n",
		"# TYPE active_sessions gauge\n",
		"active_sessions 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "unset_gauge") {
		t.Errorf("Exposition must omit unset gauges:\n%s", text)
	}
	// One TYPE comment per family, even with two labeled series.
	if got := strings.Count(text, "# TYPE wire_requests_total"); got != 1 {
		t.Errorf("wire_requests_total TYPE comments = %d, want 1", got)
	}
	// Families are sorted by base name.
	var bases []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			bases = append(bases, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(bases); i++ {
		if bases[i] < bases[i-1] {
			t.Errorf("families not sorted: %q after %q", bases[i], bases[i-1])
		}
	}
	// Snapshot stays as an alias for the exposition text.
	if r.Snapshot() != text {
		t.Error("Snapshot must alias Exposition")
	}
}

func TestExpositionHistogramMinMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(CompositionTime)
	h.Observe(2 * time.Millisecond)
	h.Observe(8 * time.Millisecond)
	r.Histogram(WithLabel(WireLatency, "op", "start")).Observe(time.Millisecond)
	r.Histogram("empty_hist") // no observations: min/max omitted
	text := r.Exposition()

	for _, want := range []string{
		"# TYPE composition_time_seconds_min gauge\n",
		"composition_time_seconds_min 0.002\n",
		"# TYPE composition_time_seconds_max gauge\n",
		"composition_time_seconds_max 0.008\n",
		"wire_request_duration_seconds_min{op=\"start\"} 0.001\n",
		"wire_request_duration_seconds_max{op=\"start\"} 0.001\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "empty_hist_min") || strings.Contains(text, "empty_hist_max") {
		t.Errorf("Exposition must omit min/max for empty histograms:\n%s", text)
	}
}

func TestFormatFloat(t *testing.T) {
	if got := formatFloat(3); got != "3" {
		t.Errorf("formatFloat(3) = %q", got)
	}
	if got := formatFloat(3.25); got != "3.25" {
		t.Errorf("formatFloat(3.25) = %q", got)
	}
}
