package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored: monotonic
	if got := c.Value(); got != 6 {
		t.Errorf("Value = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 1600 {
		t.Errorf("Value = %d", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram stats wrong")
	}
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	h.Observe(-1) // ignored
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if _, ok := g.Value(); ok {
		t.Error("unset gauge should report !ok")
	}
	g.Set(3.5)
	if v, ok := g.Value(); !ok || v != 3.5 {
		t.Errorf("Value = %v, %v", v, ok)
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 2 {
		t.Errorf("same name must return the same counter: %d", got)
	}
	r.Histogram("h").Observe(time.Second)
	if got := r.Histogram("h").Count(); got != 1 {
		t.Errorf("histogram reuse broken: %d", got)
	}
	r.Gauge("g").Set(1)
	if v, _ := r.Gauge("g").Value(); v != 1 {
		t.Error("gauge reuse broken")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter(ConfigsTotal).Add(7)
	r.Histogram(CompositionTime).Observe(2 * time.Millisecond)
	r.Gauge(ActiveSessions).Set(3)
	r.Gauge("unset_gauge")
	snap := r.Snapshot()
	for _, want := range []string{
		"configs_total 7",
		"composition_time count=1",
		"active_sessions 3",
		"unset_gauge <unset>",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("Snapshot missing %q:\n%s", want, snap)
		}
	}
	// Lines are sorted.
	lines := strings.Split(strings.TrimSpace(snap), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("snapshot not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
}

func TestTrimFloat(t *testing.T) {
	if got := trimFloat(3); got != "3" {
		t.Errorf("trimFloat(3) = %q", got)
	}
	if got := trimFloat(3.25); got != "3.25" {
		t.Errorf("trimFloat(3.25) = %q", got)
	}
}
