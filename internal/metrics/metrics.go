// Package metrics collects operational counters and latency statistics for
// the service configuration model: how many configurations ran, how many
// failed and why, how often corrections were applied, and the distribution
// of per-tier overheads. The domain server exposes a Registry so
// deployments can observe the system the way the paper's Figure 4
// instrumentation did, continuously — and the registry renders as
// Prometheus-style text exposition for the daemon's /metrics endpoint.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use. Counters are lock-free (sync/atomic) so hot-path
// instrumentation — e.g. branch-and-bound node counts incremented by
// parallel workers — does not serialize them.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Histogram bucket layout: geometric bounds growing by histGrowth from
// histFirstBucket, plus an implicit overflow bucket. 48 buckets at ×1.5
// span 1µs .. ~4.3 minutes, which covers every per-tier overhead the
// configuration pipeline can produce while keeping the memory bounded and
// constant per histogram.
const (
	histBuckets     = 48
	histGrowth      = 1.5
	histFirstBucket = time.Microsecond
)

// histBounds[i] is the inclusive upper bound of bucket i.
var histBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	f := float64(histFirstBucket)
	for i := range b {
		b[i] = time.Duration(f)
		f *= histGrowth
	}
	return b
}()

// bucketFor returns the index of the bucket covering d, or histBuckets for
// the overflow bucket.
func bucketFor(d time.Duration) int {
	lo, hi := 0, histBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Histogram accumulates duration observations into bounded geometric
// buckets, tracking streaming count, sum, min, and max alongside, so it
// can answer percentile queries (p50/p95/p99) in O(buckets) with O(1)
// memory. The zero value is ready to use.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      time.Duration
	min, max time.Duration
	buckets  [histBuckets + 1]int64 // +1: overflow
}

// Observe records one duration (negative observations are ignored).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketFor(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(int64(h.sum) / h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket where the cumulative count crosses q·count, clamped to the
// observed [min, max]. The estimate therefore over-reports by at most one
// bucket width (×1.5). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			est := h.max
			if i < histBuckets {
				est = histBounds[i]
			}
			if est > h.max {
				est = h.max
			}
			if est < h.min {
				est = h.min
			}
			return est
		}
	}
	return h.max
}

// Gauge is a last-value metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
	ok bool
}

// Set records the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v, g.ok = v, true
	g.mu.Unlock()
}

// Value returns the last value and whether one was ever set.
func (g *Gauge) Value() (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v, g.ok
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metric instances are created on first use.
type Registry struct {
	mu                sync.Mutex
	counters          map[string]*Counter
	histograms        map[string]*Histogram
	gauges            map[string]*Gauge
	meters            map[string]*Meter
	labeledCounters   map[string]*LabeledCounter
	labeledGauges     map[string]*LabeledGauge
	labeledHistograms map[string]*LabeledHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:          make(map[string]*Counter),
		histograms:        make(map[string]*Histogram),
		gauges:            make(map[string]*Gauge),
		meters:            make(map[string]*Meter),
		labeledCounters:   make(map[string]*LabeledCounter),
		labeledGauges:     make(map[string]*LabeledGauge),
		labeledHistograms: make(map[string]*LabeledHistogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// WithLabel appends a label pair to a metric name, producing the
// Prometheus form name{key="value"} (or name{...,key="value"} when labels
// are already present). Label values are the protocol's operation names
// and algorithm identifiers — a small closed set, so cardinality stays
// bounded.
func WithLabel(name, key, value string) string {
	if strings.HasSuffix(name, "}") {
		return fmt.Sprintf(`%s,%s=%q}`, name[:len(name)-1], key, value)
	}
	return fmt.Sprintf(`%s{%s=%q}`, name, key, value)
}

// splitName separates a possibly-labeled metric name into its base name
// and the label body (without braces).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinName re-attaches labels (plus an optional extra pair) to a base
// name, supporting the suffixed series of a summary (_sum, _count).
func joinName(base, suffix, labels, extra string) string {
	name := base + suffix
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// quantiles exported for every histogram.
var exportedQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// Exposition renders every metric in the Prometheus text format, sorted by
// name: counters and gauges as single samples, histograms as summaries
// with p50/p95/p99 quantile samples plus _sum and _count series (durations
// in seconds). Unset gauges are omitted. One # TYPE comment is emitted per
// metric family (labeled variants of the same base name share one).
func (r *Registry) Exposition() string {
	type entry struct {
		sortKey string // base name first, then full name: families group
		base    string
		typ     string
		lines   []string
	}
	var entries []entry

	r.mu.Lock()
	for name, c := range r.counters {
		base, _ := splitName(name)
		entries = append(entries, entry{
			sortKey: base + "\x00" + name,
			base:    base,
			typ:     "counter",
			lines:   []string{fmt.Sprintf("%s %d", name, c.Value())},
		})
	}
	for name, g := range r.gauges {
		v, ok := g.Value()
		if !ok {
			continue
		}
		base, _ := splitName(name)
		entries = append(entries, entry{
			sortKey: base + "\x00" + name,
			base:    base,
			typ:     "gauge",
			lines:   []string{fmt.Sprintf("%s %s", name, formatFloat(v))},
		})
	}
	for name, h := range r.histograms {
		base, labels := splitName(name)
		var lines []string
		for _, eq := range exportedQuantiles {
			lines = append(lines, fmt.Sprintf("%s %s",
				joinName(base, "", labels, `quantile="`+eq.label+`"`),
				formatFloat(h.Quantile(eq.q).Seconds())))
		}
		lines = append(lines,
			fmt.Sprintf("%s %s", joinName(base, "_sum", labels, ""), formatFloat(h.Sum().Seconds())),
			fmt.Sprintf("%s %d", joinName(base, "_count", labels, ""), h.Count()))
		entries = append(entries, entry{
			sortKey: base + "\x00" + name,
			base:    base,
			typ:     "summary",
			lines:   lines,
		})
		// The streaming extremes render as their own _min/_max gauge
		// families (a summary has no standard slot for them). Empty
		// histograms omit them, like unset gauges.
		if h.Count() > 0 {
			for suffix, v := range map[string]time.Duration{"_min": h.Min(), "_max": h.Max()} {
				entries = append(entries, entry{
					sortKey: base + suffix + "\x00" + name,
					base:    base + suffix,
					typ:     "gauge",
					lines:   []string{fmt.Sprintf("%s %s", joinName(base, suffix, labels, ""), formatFloat(v.Seconds()))},
				})
			}
		}
	}
	for name, m := range r.meters {
		base, labels := splitName(name)
		for suffix, line := range map[string]struct {
			typ string
			val string
		}{
			"_total":        {"counter", fmt.Sprintf("%d", m.Total())},
			"_rate_per_sec": {"gauge", formatFloat(m.Rate())},
			"_ewma_per_sec": {"gauge", formatFloat(m.EWMA())},
		} {
			entries = append(entries, entry{
				sortKey: base + suffix + "\x00" + name,
				base:    base + suffix,
				typ:     line.typ,
				lines:   []string{fmt.Sprintf("%s %s", joinName(base, suffix, labels, ""), line.val)},
			})
		}
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool { return entries[i].sortKey < entries[j].sortKey })
	var b strings.Builder
	lastBase := ""
	for _, e := range entries {
		if e.base != lastBase {
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.base, e.typ)
			lastBase = e.base
		}
		for _, line := range e.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Snapshot is the exposition text; retained as the historical name used by
// the wire protocol's metrics op.
func (r *Registry) Snapshot() string { return r.Exposition() }

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Metric names recorded by the configurator.
const (
	// ConfigsTotal counts configuration attempts.
	ConfigsTotal = "configs_total"
	// ConfigsFailed counts failed attempts.
	ConfigsFailed = "configs_failed"
	// ConfigsDegraded counts sessions admitted below full quality.
	ConfigsDegraded = "configs_degraded"
	// Handoffs counts re-configurations of live sessions.
	Handoffs = "handoffs_total"
	// TranscodersInserted and BuffersInserted count OC corrections.
	TranscodersInserted = "transcoders_inserted_total"
	BuffersInserted     = "buffers_inserted_total"
	Adjustments         = "qos_adjustments_total"
	// CompositionTime/DistributionTime/DownloadTime/HandoffTime are the
	// per-tier overhead histograms (Figure 4's four bars), in seconds.
	CompositionTime  = "composition_time_seconds"
	DistributionTime = "distribution_time_seconds"
	DownloadTime     = "download_time_seconds"
	HandoffTime      = "init_or_handoff_time_seconds"
	// ConfigureTime is the end-to-end configure latency histogram
	// (request accepted → session running), the SLO engine's primary
	// latency signal; the per-tier histograms above break it down.
	ConfigureTime = "configure_time_seconds"
	// ActiveSessions gauges the live session count.
	ActiveSessions = "active_sessions"
	// DiscoveryAttempts and DiscoveryFailures count per-node service
	// discovery lookups during composition (failures include the ones
	// later repaired by skipping an optional node or recursing).
	DiscoveryAttempts = "discovery_attempts_total"
	DiscoveryFailures = "discovery_failures_total"
)

// Metric names recorded by the service distribution tier's solvers.
const (
	// BnBExplored/BnBPruned/BnBIncumbents count branch-and-bound search
	// nodes explored, subtrees pruned, and incumbent (best-so-far)
	// updates, summed over all workers.
	BnBExplored   = "bnb_nodes_explored_total"
	BnBPruned     = "bnb_nodes_pruned_total"
	BnBIncumbents = "bnb_incumbent_updates_total"

	// PlanCacheHits/Misses count placement-cache consults by outcome;
	// PlanCacheInvalidations counts entries dropped on domain mutations
	// (device fail/rejoin, link change, lease expiry) and
	// PlanCacheEvictions entries displaced by the LRU bound.
	// PlanCacheEntries gauges the current cache population.
	PlanCacheHits          = "plan_cache_hits_total"
	PlanCacheMisses        = "plan_cache_misses_total"
	PlanCacheInvalidations = "plan_cache_invalidations_total"
	PlanCacheEvictions     = "plan_cache_evictions_total"
	PlanCacheEntries       = "plan_cache_entries"

	// WarmSolves/ColdSolves count exact solves by whether they were
	// warm-started from an incumbent; WarmSpeedup gauges the most recent
	// cold-explored/warm-explored ratio observed on a recovery re-solve.
	WarmSolves  = "warm_solves_total"
	ColdSolves  = "cold_solves_total"
	WarmSpeedup = "warm_speedup_ratio"
)

// Metric names recorded by the event service.
const (
	// EventsPublished counts Publish calls; EventsDelivered and
	// EventsDropped count the per-subscriber fan-out outcomes.
	EventsPublished = "eventbus_published_total"
	EventsDelivered = "eventbus_delivered_total"
	EventsDropped   = "eventbus_dropped_total"
	// EventsCoalesced counts publishes merged into an identical event still
	// pending in a lossless subscription's queue.
	EventsCoalesced = "eventbus_coalesced_total"
	// BusSubscribers gauges active subscriptions; BusQueueDepth gauges the
	// total backlog across subscriber channels at the last publish.
	BusSubscribers = "eventbus_subscribers"
	BusQueueDepth  = "eventbus_queue_depth"
)

// Metric names recorded by the recovery supervisor and the fault
// injector.
const (
	// RecoveryAttempts counts recovery attempts (including retries);
	// RecoveryRetries the subset that failed and were re-queued with
	// backoff.
	RecoveryAttempts = "recovery_attempts_total"
	RecoveryRetries  = "recovery_retries_total"
	// SessionsRecovered counts sessions successfully re-placed after a
	// fault; RecoveriesDegraded the subset recovered on the degraded path
	// (heuristic placement, optional components shed); SessionsLost the
	// sessions given up on (stopped, user notified).
	SessionsRecovered  = "sessions_recovered_total"
	RecoveriesDegraded = "recoveries_degraded_total"
	SessionsLost       = "sessions_lost_total"
	// SessionsRestored counts degraded→restored transitions: sessions
	// previously recovered on the degraded path that a later full-QoS
	// reconfiguration brought back to their original request.
	SessionsRestored = "sessions_restored_total"
	// RecoveryLatency is fault detection → session healthy, in seconds.
	RecoveryLatency = "recovery_latency_seconds"
	// RecoveryBacklog gauges sessions currently queued for recovery.
	RecoveryBacklog = "recovery_backlog"
	// FaultsInjected counts applied faults; per-kind series attach the
	// fault kind with WithLabel(..., "kind", name).
	FaultsInjected = "faults_injected_total"
)

// Metric names published by the capacity observatory (the domain's
// per-tick sampler). Labeled series attach their dimension with the named
// label key.
const (
	// DeviceUtilization is committed/capacity per resource dimension
	// (labels: dim ∈ {mem, cpu}, device); DeviceHeadroom is the minimum
	// over dimensions of available/capacity (label: device); DeviceUp is
	// 1/0 reachability (label: device).
	DeviceUtilization = "device_utilization_ratio"
	DeviceHeadroom    = "device_headroom_ratio"
	DeviceUp          = "device_up"
	// LinkResidual is the unreserved end-to-end bandwidth per declared
	// device pair (label: link = "a|b").
	LinkResidual = "link_residual_mbps"
	// SessionsByClass gauges active sessions per session class;
	// SessionArrivals / SessionCompletions / SessionFailures are the
	// per-class meters (rendered as _total/_rate_per_sec/_ewma_per_sec
	// families) behind the windowed arrival and completion rates.
	SessionsByClass    = "sessions_by_class"
	SessionArrivals    = "session_arrivals"
	SessionCompletions = "session_completions"
	SessionFailures    = "session_failures"
	// ConfigPending gauges the configurator's admission queue: session IDs
	// reserved while their configure pipeline is still in flight.
	ConfigPending = "config_pending"
	// SpaceHeadroom is the minimum headroom across up devices;
	// SaturationState is the analyzer's verdict (0 ok, 1 approaching,
	// 2 saturated) — unlabeled for the space, labeled per device.
	SpaceHeadroom   = "space_headroom_ratio"
	SaturationState = "saturation_state"
)

// Metric names recorded by the admission gate and the instance
// autoscaler — the actuation tier that closes the loop over the capacity
// observatory's signals.
const (
	// AdmissionsTotal counts gate decisions (labels: class, verdict ∈
	// {admit, admit-degraded, reject}); AdmissionState gauges the
	// effective saturation state the gate last decided with (the analyzer
	// verdict, possibly escalated by SLO burn).
	AdmissionsTotal = "admissions_total"
	AdmissionState  = "admission_state"
	// ScaleUps/ScaleDowns count autoscaler actions per instance group
	// (label: group); AutoscaleReplicas and AutoscaleDesired gauge the
	// actual and computed replica counts per group.
	ScaleUps          = "autoscale_ups_total"
	ScaleDowns        = "autoscale_downs_total"
	AutoscaleReplicas = "autoscale_replicas"
	AutoscaleDesired  = "autoscale_desired_replicas"
)

// Metric names published by the QoS outcome ledger (internal/ledger).
// All are labeled gauges with key "class", refreshed by the domain's
// capacity sampler.
const (
	// SessionDeficitSeconds is the per-class total QoS-deficit integral
	// (deficit fraction × seconds, summed over numeric axes and
	// sessions); SessionDeficitRatio normalizes it by lifetime × axis
	// count into a 0..1 "share of asked-for QoS-time not delivered".
	SessionDeficitSeconds = "session_deficit_seconds"
	SessionDeficitRatio   = "session_deficit_ratio"
	// ClassAvailability is 1 − broken-time/lifetime per class.
	ClassAvailability = "class_availability_ratio"
)

// Metric names published by the incident correlation engine
// (internal/incident).
const (
	// IncidentsOpen gauges the currently open incidents, labeled by
	// severity ("warning" / "critical").
	IncidentsOpen = "incidents_open"
	// IncidentsTotal counts every incident ever opened, labeled by the
	// detection rule that opened it.
	IncidentsTotal = "incidents_total"
)

// Metric names recorded by the wire server. Per-operation series attach
// the operation with WithLabel(..., "op", name).
const (
	// WireRequests counts handled requests; WireErrors the subset that
	// returned an error response.
	WireRequests = "wire_requests_total"
	WireErrors   = "wire_request_errors_total"
	// WireLatency is the per-request handling latency histogram.
	WireLatency = "wire_request_duration_seconds"
	// WireBadLines counts protocol-level garbage: unparsable or oversized
	// request lines.
	WireBadLines = "wire_bad_lines_total"
)
