// Package metrics collects operational counters and latency statistics for
// the service configuration model: how many configurations ran, how many
// failed and why, how often corrections were applied, and the distribution
// of per-tier overheads. The domain server exposes a Registry so
// deployments can observe the system the way the paper's Figure 4
// instrumentation did, continuously.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Histogram accumulates duration observations with streaming count, sum,
// min, max, and mean. The zero value is ready to use.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      time.Duration
	min, max time.Duration
}

// Observe records one duration (negative observations are ignored).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(int64(h.sum) / h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Gauge is a last-value metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
	ok bool
}

// Set records the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v, g.ok = v, true
	g.mu.Unlock()
}

// Value returns the last value and whether one was ever set.
func (g *Gauge) Value() (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v, g.ok
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metric instances are created on first use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
	gauges     map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
		gauges:     make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot renders every metric as sorted "name value" lines — a plain
// text exposition suitable for logs or a debug endpoint.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	type entry struct {
		name, line string
	}
	var entries []entry
	for name, c := range r.counters {
		entries = append(entries, entry{name, fmt.Sprintf("%s %d", name, c.Value())})
	}
	for name, h := range r.histograms {
		entries = append(entries, entry{name, fmt.Sprintf("%s count=%d mean=%v min=%v max=%v",
			name, h.Count(), h.Mean(), h.Min(), h.Max())})
	}
	for name, g := range r.gauges {
		if v, ok := g.Value(); ok {
			entries = append(entries, entry{name, fmt.Sprintf("%s %s", name, trimFloat(v))})
		} else {
			entries = append(entries, entry{name, fmt.Sprintf("%s <unset>", name)})
		}
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(e.line)
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// Metric names recorded by the configurator.
const (
	// ConfigsTotal counts configuration attempts.
	ConfigsTotal = "configs_total"
	// ConfigsFailed counts failed attempts.
	ConfigsFailed = "configs_failed"
	// ConfigsDegraded counts sessions admitted below full quality.
	ConfigsDegraded = "configs_degraded"
	// Handoffs counts re-configurations of live sessions.
	Handoffs = "handoffs_total"
	// TranscodersInserted and BuffersInserted count OC corrections.
	TranscodersInserted = "transcoders_inserted_total"
	BuffersInserted     = "buffers_inserted_total"
	Adjustments         = "qos_adjustments_total"
	// CompositionTime/DistributionTime/DownloadTime/HandoffTime are the
	// per-tier overhead histograms (Figure 4's four bars).
	CompositionTime  = "composition_time"
	DistributionTime = "distribution_time"
	DownloadTime     = "download_time"
	HandoffTime      = "init_or_handoff_time"
	// ActiveSessions gauges the live session count.
	ActiveSessions = "active_sessions"
)
