// SLO engine: declarative service-level objectives evaluated over the
// registry's existing histograms and counters. An objective is either a
// latency objective (a histogram quantile must stay under a target) or a
// ratio objective (bad events over total events must stay under a
// budget). Evaluation computes a burn rate — the fraction of the
// objective's budget currently consumed — and classifies each objective
// as ok (≤ 0.8), at-risk (≤ 1.0), or violated (> 1.0); objectives with
// no samples report no-data. The daemon surfaces the evaluation at /slo
// and republishes burn rates as slo_burn_rate gauges so dashboards can
// alert on them like any other metric.

package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Objective is one declarative SLO. Exactly one of Histogram (latency
// objective) or BadCounter (ratio objective) must be set.
type Objective struct {
	// Name identifies the objective (used as the gauge label).
	Name string `json:"name"`
	// Description says what the objective protects, for operators.
	Description string `json:"description,omitempty"`

	// Histogram + Quantile + Target define a latency objective: the
	// quantile of the named histogram must stay at or under Target.
	Histogram string        `json:"histogram,omitempty"`
	Quantile  float64       `json:"quantile,omitempty"`
	Target    time.Duration `json:"target,omitempty"`

	// BadCounter + TotalCounters + MaxRatio define a ratio objective:
	// BadCounter's value over the sum of TotalCounters must stay at or
	// under MaxRatio.
	BadCounter    string   `json:"badCounter,omitempty"`
	TotalCounters []string `json:"totalCounters,omitempty"`
	MaxRatio      float64  `json:"maxRatio,omitempty"`
}

// The objective states, from healthy to breached.
const (
	StateNoData   = "no-data"
	StateOK       = "ok"
	StateAtRisk   = "at-risk"
	StateViolated = "violated"
)

// burn-rate thresholds for the state classification.
const (
	burnOK = 0.8 // ≤ 80% of budget consumed: ok
	burnAt = 1.0 // ≤ 100%: at risk; beyond: violated
)

// Status is one objective's evaluation.
type Status struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Kind        string `json:"kind"` // "latency" or "ratio"
	// Actual and Target are seconds for latency objectives, ratios for
	// ratio objectives.
	Actual  float64 `json:"actual"`
	Target  float64 `json:"target"`
	Samples int64   `json:"samples"`
	// BurnRate is Actual/Target: the fraction of the objective's budget
	// consumed (0 when no data).
	BurnRate float64 `json:"burnRate"`
	State    string  `json:"state"`
}

// SLO evaluates a set of objectives against a registry.
type SLO struct {
	reg        *Registry
	objectives []Objective
}

// NewSLO binds objectives to the registry they read. A nil registry or
// empty objective list yields an SLO that evaluates to nothing.
func NewSLO(reg *Registry, objectives ...Objective) *SLO {
	return &SLO{reg: reg, objectives: objectives}
}

// DefaultObjectives returns the configuration path's stock SLOs: the
// end-to-end configure and recovery latency quantiles, and the loss and
// failure budgets of the session population.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:        "configure-p95",
			Description: "95th percentile end-to-end configure latency",
			Histogram:   ConfigureTime,
			Quantile:    0.95,
			Target:      500 * time.Millisecond,
		},
		{
			Name:        "recovery-p95",
			Description: "95th percentile fault-to-healthy recovery latency",
			Histogram:   RecoveryLatency,
			Quantile:    0.95,
			Target:      5 * time.Second,
		},
		{
			Name:        "lost-sessions",
			Description: "sessions lost as a fraction of recovery outcomes",
			BadCounter:  SessionsLost,
			TotalCounters: []string{
				SessionsRecovered,
				SessionsLost,
			},
			MaxRatio: 0.10,
		},
		{
			Name:          "config-failures",
			Description:   "failed configuration attempts over all attempts",
			BadCounter:    ConfigsFailed,
			TotalCounters: []string{ConfigsTotal},
			MaxRatio:      0.50,
		},
	}
}

// Evaluate computes every objective's current status, in declaration
// order.
func (s *SLO) Evaluate() []Status {
	if s == nil || s.reg == nil {
		return nil
	}
	out := make([]Status, 0, len(s.objectives))
	for _, o := range s.objectives {
		out = append(out, s.evaluate(o))
	}
	return out
}

func (s *SLO) evaluate(o Objective) Status {
	st := Status{Name: o.Name, Description: o.Description}
	switch {
	case o.Histogram != "":
		st.Kind = "latency"
		h := s.reg.Histogram(o.Histogram)
		st.Samples = h.Count()
		st.Target = o.Target.Seconds()
		if st.Samples > 0 {
			st.Actual = h.Quantile(o.Quantile).Seconds()
		}
	default:
		st.Kind = "ratio"
		bad := s.reg.Counter(o.BadCounter).Value()
		var total int64
		for _, name := range o.TotalCounters {
			total += s.reg.Counter(name).Value()
		}
		st.Samples = total
		st.Target = o.MaxRatio
		if total > 0 {
			st.Actual = float64(bad) / float64(total)
		}
	}
	if st.Samples == 0 {
		st.State = StateNoData
		return st
	}
	if st.Target > 0 {
		st.BurnRate = st.Actual / st.Target
	} else if st.Actual > 0 {
		st.BurnRate = burnAt + 1 // zero budget, nonzero spend
	}
	switch {
	case st.BurnRate <= burnOK:
		st.State = StateOK
	case st.BurnRate <= burnAt:
		st.State = StateAtRisk
	default:
		st.State = StateViolated
	}
	return st
}

// SLO gauge names: per-objective burn rate (labeled) and the count of
// currently violated objectives.
const (
	SLOBurnRate   = "slo_burn_rate"
	SLOViolations = "slo_violations"
)

// Publish evaluates the objectives and republishes each burn rate as a
// labeled slo_burn_rate gauge (plus the slo_violations count) into the
// same registry, so the SLO state rides the /metrics exposition. It
// returns the statuses it published.
func (s *SLO) Publish() []Status {
	statuses := s.Evaluate()
	if s == nil || s.reg == nil {
		return statuses
	}
	violated := 0
	for _, st := range statuses {
		s.reg.Gauge(WithLabel(SLOBurnRate, "objective", st.Name)).Set(st.BurnRate)
		if st.State == StateViolated {
			violated++
		}
	}
	s.reg.Gauge(SLOViolations).Set(float64(violated))
	return statuses
}

// Render formats statuses as an aligned text report for qosctl and the
// /slo?format=text endpoint.
func Render(statuses []Status) string {
	if len(statuses) == 0 {
		return "no objectives\n"
	}
	var b strings.Builder
	for _, st := range statuses {
		var actual, target string
		if st.Kind == "latency" {
			actual = fmt.Sprintf("%.4gs", st.Actual)
			target = fmt.Sprintf("%.4gs", st.Target)
		} else {
			actual = fmt.Sprintf("%.3f", st.Actual)
			target = fmt.Sprintf("%.3f", st.Target)
		}
		fmt.Fprintf(&b, "%-16s %-8s %-9s actual=%s target=%s burn=%.2f samples=%d",
			st.Name, st.Kind, st.State, actual, target, st.BurnRate, st.Samples)
		if st.Description != "" {
			fmt.Fprintf(&b, "  (%s)", st.Description)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
