// Labeled metric families: dimensioned counters, gauges, and histograms
// whose series are addressed by one label value (a device ID, a link name,
// a session class). A family bounds its label cardinality — beyond the
// bound every new value collapses into one overflow series — so a
// misbehaving caller cannot grow the registry without limit. The hot path
// (an existing series) is a single lock-free sync.Map load followed by the
// underlying metric's own lock-free or short-lock operation; the slow path
// (first use of a label value) registers the series in the owning Registry
// under the Prometheus name{key="value"} form, so labeled series render in
// Exposition() exactly like hand-labeled ones.
package metrics

import "sync"

// DefaultLabelCardinality bounds the distinct label values of a family
// created through the Registry accessors. Device, link, and class label
// sets in a smart space are small; 64 leaves generous room while keeping
// the exposition and the memory bounded.
const DefaultLabelCardinality = 64

// OverflowLabel is the label value absorbing every series beyond a
// family's cardinality bound.
const OverflowLabel = "other"

// family implements the bounded series map shared by the three labeled
// metric kinds. newSeries both allocates the metric and registers it with
// the owning Registry so Exposition picks it up.
type family struct {
	limit     int
	newSeries func(labeled string) any

	series sync.Map // label value -> metric
	mu     sync.Mutex
	n      int
}

// with returns the series for the label value, creating (and capping) it
// on first use.
func (f *family) with(name, key, value string) any {
	if m, ok := f.series.Load(value); ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series.Load(value); ok {
		return m
	}
	if f.n >= f.limit && value != OverflowLabel {
		// The bound is reached: collapse into the overflow series without
		// storing the new value, so the map cannot grow further.
		if m, ok := f.series.Load(OverflowLabel); ok {
			return m
		}
		value = OverflowLabel
	}
	m := f.newSeries(WithLabel(name, key, value))
	f.series.Store(value, m)
	f.n++
	return m
}

// len reports the number of distinct series (including overflow).
func (f *family) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// LabeledCounter is a family of Counters keyed by one label.
type LabeledCounter struct {
	name, key string
	fam       family
}

// NewLabeledCounter creates a counter family with an explicit cardinality
// bound (values ≤ 0 select DefaultLabelCardinality), registering each
// series in r. Most callers want Registry.LabeledCounter, which memoizes
// the family by name.
func NewLabeledCounter(r *Registry, name, key string, limit int) *LabeledCounter {
	if limit <= 0 {
		limit = DefaultLabelCardinality
	}
	return &LabeledCounter{name: name, key: key, fam: family{
		limit:     limit,
		newSeries: func(labeled string) any { return r.Counter(labeled) },
	}}
}

// With returns the counter for the label value.
func (lc *LabeledCounter) With(value string) *Counter {
	return lc.fam.with(lc.name, lc.key, value).(*Counter)
}

// Series reports the number of distinct series in the family.
func (lc *LabeledCounter) Series() int { return lc.fam.len() }

// LabeledGauge is a family of Gauges keyed by one label.
type LabeledGauge struct {
	name, key string
	fam       family
}

// NewLabeledGauge creates a gauge family with an explicit cardinality
// bound (values ≤ 0 select DefaultLabelCardinality), registering each
// series in r.
func NewLabeledGauge(r *Registry, name, key string, limit int) *LabeledGauge {
	if limit <= 0 {
		limit = DefaultLabelCardinality
	}
	return &LabeledGauge{name: name, key: key, fam: family{
		limit:     limit,
		newSeries: func(labeled string) any { return r.Gauge(labeled) },
	}}
}

// With returns the gauge for the label value.
func (lg *LabeledGauge) With(value string) *Gauge {
	return lg.fam.with(lg.name, lg.key, value).(*Gauge)
}

// Series reports the number of distinct series in the family.
func (lg *LabeledGauge) Series() int { return lg.fam.len() }

// LabeledHistogram is a family of Histograms keyed by one label.
type LabeledHistogram struct {
	name, key string
	fam       family
}

// NewLabeledHistogram creates a histogram family with an explicit
// cardinality bound (values ≤ 0 select DefaultLabelCardinality),
// registering each series in r.
func NewLabeledHistogram(r *Registry, name, key string, limit int) *LabeledHistogram {
	if limit <= 0 {
		limit = DefaultLabelCardinality
	}
	return &LabeledHistogram{name: name, key: key, fam: family{
		limit:     limit,
		newSeries: func(labeled string) any { return r.Histogram(labeled) },
	}}
}

// With returns the histogram for the label value.
func (lh *LabeledHistogram) With(value string) *Histogram {
	return lh.fam.with(lh.name, lh.key, value).(*Histogram)
}

// Series reports the number of distinct series in the family.
func (lh *LabeledHistogram) Series() int { return lh.fam.len() }

// LabeledCounter returns the named counter family keyed by the given
// label, creating it with the default cardinality bound on first use. The
// family is memoized by name: later calls return the same family (the
// first call's key wins).
func (r *Registry) LabeledCounter(name, key string) *LabeledCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	lc, ok := r.labeledCounters[name]
	if !ok {
		lc = NewLabeledCounter(r, name, key, 0)
		r.labeledCounters[name] = lc
	}
	return lc
}

// LabeledGauge returns the named gauge family keyed by the given label,
// creating it with the default cardinality bound on first use.
func (r *Registry) LabeledGauge(name, key string) *LabeledGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	lg, ok := r.labeledGauges[name]
	if !ok {
		lg = NewLabeledGauge(r, name, key, 0)
		r.labeledGauges[name] = lg
	}
	return lg
}

// LabeledHistogram returns the named histogram family keyed by the given
// label, creating it with the default cardinality bound on first use.
func (r *Registry) LabeledHistogram(name, key string) *LabeledHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	lh, ok := r.labeledHistograms[name]
	if !ok {
		lh = NewLabeledHistogram(r, name, key, 0)
		r.labeledHistograms[name] = lh
	}
	return lh
}
