package metrics

import (
	"strings"
	"testing"
	"time"
)

// Histogram quantile edge cases the SLO engine reads through.

func TestQuantileEmptyHistogram(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(7 * time.Millisecond)
	// Every quantile of a single observation is that observation: the
	// bucket-bound estimate must clamp to the observed min==max.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 7*time.Millisecond {
			t.Errorf("single-sample Quantile(%g) = %v, want 7ms", q, got)
		}
	}
}

func TestQuantileAllSameBucket(t *testing.T) {
	var h Histogram
	// 100 observations inside one geometric bucket: the estimate must stay
	// inside the observed [min, max], not report the bucket's upper bound.
	lo, hi := 1000*time.Microsecond, 1010*time.Microsecond
	for i := 0; i < 100; i++ {
		h.Observe(lo + time.Duration(i%2)*(hi-lo))
	}
	for _, q := range []float64{0.5, 0.95, 1} {
		got := h.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("same-bucket Quantile(%g) = %v, want within [%v, %v]", q, got, lo, hi)
		}
	}
}

// SLO engine.

func TestSLOLatencyObjectiveStates(t *testing.T) {
	reg := NewRegistry()
	slo := NewSLO(reg, Objective{
		Name: "configure-p95", Histogram: ConfigureTime, Quantile: 0.95, Target: 100 * time.Millisecond,
	})

	st := slo.Evaluate()[0]
	if st.State != StateNoData || st.Samples != 0 || st.BurnRate != 0 {
		t.Fatalf("empty objective = %+v", st)
	}

	// Observations well under target: ok.
	for i := 0; i < 20; i++ {
		reg.Histogram(ConfigureTime).Observe(10 * time.Millisecond)
	}
	st = slo.Evaluate()[0]
	if st.State != StateOK || st.Kind != "latency" || st.BurnRate > burnOK {
		t.Fatalf("healthy objective = %+v", st)
	}

	// Push p95 over target: violated.
	for i := 0; i < 500; i++ {
		reg.Histogram(ConfigureTime).Observe(400 * time.Millisecond)
	}
	st = slo.Evaluate()[0]
	if st.State != StateViolated || st.BurnRate <= 1 {
		t.Fatalf("breached objective = %+v", st)
	}
}

func TestSLORatioObjectiveStates(t *testing.T) {
	reg := NewRegistry()
	slo := NewSLO(reg, Objective{
		Name: "lost-sessions", BadCounter: SessionsLost,
		TotalCounters: []string{SessionsRecovered, SessionsLost}, MaxRatio: 0.10,
	})

	if st := slo.Evaluate()[0]; st.State != StateNoData {
		t.Fatalf("empty ratio objective = %+v", st)
	}

	reg.Counter(SessionsRecovered).Add(99)
	reg.Counter(SessionsLost).Add(1) // ratio 0.01, burn 0.1
	st := slo.Evaluate()[0]
	if st.State != StateOK || st.Kind != "ratio" || st.Samples != 100 {
		t.Fatalf("healthy ratio = %+v", st)
	}

	reg.Counter(SessionsLost).Add(9) // 10/109 ≈ 0.092, burn ≈ 0.92: at risk
	if st := slo.Evaluate()[0]; st.State != StateAtRisk {
		t.Fatalf("at-risk ratio = %+v", st)
	}

	reg.Counter(SessionsLost).Add(20) // 30/129 ≈ 0.23: violated
	if st := slo.Evaluate()[0]; st.State != StateViolated {
		t.Fatalf("violated ratio = %+v", st)
	}
}

func TestSLODefaultObjectives(t *testing.T) {
	reg := NewRegistry()
	slo := NewSLO(reg, DefaultObjectives()...)
	statuses := slo.Evaluate()
	if len(statuses) < 3 {
		t.Fatalf("want at least 3 default objectives, got %d", len(statuses))
	}
	names := map[string]bool{}
	for _, st := range statuses {
		names[st.Name] = true
	}
	for _, want := range []string{"configure-p95", "recovery-p95", "lost-sessions"} {
		if !names[want] {
			t.Errorf("default objectives missing %q", want)
		}
	}
}

func TestSLOPublishGauges(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(ConfigsTotal).Add(10)
	reg.Counter(ConfigsFailed).Add(9) // 0.9 over budget 0.5: violated
	slo := NewSLO(reg,
		Objective{Name: "config-failures", BadCounter: ConfigsFailed,
			TotalCounters: []string{ConfigsTotal}, MaxRatio: 0.50},
	)
	slo.Publish()
	exp := reg.Exposition()
	if !strings.Contains(exp, `slo_burn_rate{objective="config-failures"} 1.8`) {
		t.Errorf("exposition missing burn-rate gauge:\n%s", exp)
	}
	if !strings.Contains(exp, "slo_violations 1") {
		t.Errorf("exposition missing violations gauge:\n%s", exp)
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	if s.Evaluate() != nil || s.Publish() != nil {
		t.Fatal("nil SLO must evaluate to nothing")
	}
	if got := NewSLO(nil).Evaluate(); got != nil {
		t.Fatalf("registry-less SLO = %v", got)
	}
}

func TestSLORender(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram(ConfigureTime).Observe(10 * time.Millisecond)
	slo := NewSLO(reg, DefaultObjectives()...)
	out := Render(slo.Evaluate())
	for _, want := range []string{"configure-p95", "latency", "recovery-p95", "no-data", "burn="} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if Render(nil) != "no objectives\n" {
		t.Error("empty render")
	}
}
