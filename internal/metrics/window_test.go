package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

// testMeter returns a meter with an injected clock the test advances.
func testMeter(window time.Duration, buckets int) (*Meter, *time.Time) {
	m := NewMeter(window, buckets)
	clock := time.Unix(0, 0)
	m.now = func() time.Time { return clock }
	return m, &clock
}

func TestMeterRateFreshWindow(t *testing.T) {
	m, clock := testMeter(time.Minute, 12)
	m.Mark(10)
	*clock = clock.Add(10 * time.Second)
	// 10 events over the 10 observed seconds — a fresh meter averages over
	// the observed portion, not the full minute.
	if got := m.Rate(); math.Abs(got-1.0) > 0.05 {
		t.Fatalf("Rate = %v, want ≈ 1.0", got)
	}
}

func TestMeterSlidingWindow(t *testing.T) {
	m, clock := testMeter(time.Minute, 12)
	// 1 event per second for 2 minutes: once the window is full the rate
	// holds at 1/s and total keeps counting.
	for i := 0; i < 120; i++ {
		m.Mark(1)
		*clock = clock.Add(time.Second)
	}
	if got := m.Rate(); math.Abs(got-1.0) > 0.1 {
		t.Fatalf("steady-state Rate = %v, want ≈ 1.0", got)
	}
	if got := m.EWMA(); math.Abs(got-1.0) > 0.1 {
		t.Fatalf("steady-state EWMA = %v, want ≈ 1.0", got)
	}
	if got := m.Total(); got != 120 {
		t.Fatalf("Total = %d, want 120", got)
	}
}

func TestMeterIdleDecay(t *testing.T) {
	m, clock := testMeter(time.Minute, 12)
	for i := 0; i < 60; i++ {
		m.Mark(1)
		*clock = clock.Add(time.Second)
	}
	// A long idle gap: the windowed rate collapses to 0 and the EWMA
	// decays toward 0.
	*clock = clock.Add(10 * time.Minute)
	if got := m.Rate(); got != 0 {
		t.Fatalf("Rate after idle = %v, want 0", got)
	}
	if got := m.EWMA(); got > 0.01 {
		t.Fatalf("EWMA after long idle = %v, want ≈ 0", got)
	}
}

func TestMeterIgnoresNonPositive(t *testing.T) {
	m, _ := testMeter(time.Minute, 12)
	m.Mark(0)
	m.Mark(-5)
	if got := m.Total(); got != 0 {
		t.Fatalf("Total = %d, want 0", got)
	}
}

func TestMeterExposition(t *testing.T) {
	r := NewRegistry()
	m := r.Meter("arrivals")
	clock := time.Unix(0, 0)
	m.now = func() time.Time { return clock }
	m.Mark(6)
	clock = clock.Add(10 * time.Second)

	out := r.Exposition()
	for _, want := range []string{
		"# TYPE arrivals_total counter",
		"arrivals_total 6",
		"# TYPE arrivals_rate_per_sec gauge",
		"# TYPE arrivals_ewma_per_sec gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if r.Meter("arrivals") != m {
		t.Error("registry did not memoize the meter")
	}
}

func TestMeterBurstThenIdleFoldsHeadBucket(t *testing.T) {
	// Regression: the idle fast-path decayed the EWMA as if `steps`
	// zero-rate buckets completed, without first folding in the head
	// bucket that was accumulating events when the meter went idle — a
	// burst followed by idle understated the EWMA (to exactly 0 when the
	// burst landed in the very first bucket, as ewmaOK was never set).
	m, clock := testMeter(time.Minute, 12)
	m.Mark(50) // head bucket: 50 events over a 5s bucket = 10/s
	*clock = clock.Add(65 * time.Second)
	burstRate := 50.0 / 5.0
	want := burstRate * math.Pow(1-meterAlpha, 12) // fold head, then 12 zero buckets decay
	if got := m.EWMA(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("EWMA after burst-then-idle = %v, want %v", got, want)
	}
}
