package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ubiqos/internal/composer"
	"ubiqos/internal/profiler"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/resource"
)

func TestDegradeVector(t *testing.T) {
	v := qos.V(
		qos.P(qos.DimFrameRate, qos.Range(20, 40)),
		qos.P(qos.DimResolution, qos.Scalar(1600)),
		qos.P(qos.DimFormat, qos.Symbol("MPEG")),
	)
	d := degradeVector(v, 0.5)
	if got, _ := d.Get(qos.DimFrameRate); !got.Equal(qos.Range(10, 20)) {
		t.Errorf("framerate = %v", got)
	}
	if got, _ := d.Get(qos.DimResolution); !got.Equal(qos.Scalar(800)) {
		t.Errorf("resolution = %v", got)
	}
	if got, _ := d.Get(qos.DimFormat); !got.Equal(qos.Symbol("MPEG")) {
		t.Errorf("format must not degrade: %v", got)
	}
	// The input is untouched.
	if got, _ := v.Get(qos.DimResolution); !got.Equal(qos.Scalar(1600)) {
		t.Error("degradeVector mutated its input")
	}
}

func TestDegradationLadderAdmitsLowerQuality(t *testing.T) {
	// The user demands [45,50] fps but every player tops out at 44: the
	// full-quality composition fails, and the 0.75 rung lands the request
	// in [33.75, 37.5], which the environment can serve.
	f := newFixture(t)
	f.cfg.DegradeFactors = []float64{0.75, 0.5}
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	active, err := c.Configure(Request{
		SessionID:    "s",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(45, 50))),
		ClientDevice: "pda1",
	})
	if err != nil {
		t.Fatalf("degradation ladder should admit the session: %v", err)
	}
	defer c.Stop("s")
	if active.DegradeFactor != 0.75 {
		t.Errorf("DegradeFactor = %g, want 0.75", active.DegradeFactor)
	}
	req, _ := active.Graph.Node("player").In.Get(qos.DimFrameRate)
	if !req.Equal(qos.Range(45*0.75, 50*0.75)) {
		t.Errorf("degraded sink requirement = %v", req)
	}
}

func TestDegradationNotAppliedWhenFullQualityFits(t *testing.T) {
	f := newFixture(t)
	f.cfg.DegradeFactors = []float64{0.5}
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	active, err := c.Configure(Request{
		SessionID:    "s",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 44))),
		ClientDevice: "desktop1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop("s")
	if active.DegradeFactor != 1 {
		t.Errorf("DegradeFactor = %g, want 1 (no degradation needed)", active.DegradeFactor)
	}
}

func TestDegradationSkipsMissingServices(t *testing.T) {
	// Missing mandatory services are a discovery problem, not a quality
	// problem: the ladder must not mask the user notification.
	f := newFixture(t)
	f.cfg.DegradeFactors = []float64{0.5}
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "x", Spec: registry.Spec{Type: "hologram"}})
	_, err = c.Configure(Request{
		SessionID:    "s",
		App:          ag,
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(10, 20))),
		ClientDevice: "desktop1",
	})
	var miss *composer.MissingServiceError
	if !errors.As(err, &miss) {
		t.Errorf("err = %v, want MissingServiceError to surface", err)
	}
}

func TestDegradationIgnoresInvalidFactors(t *testing.T) {
	f := newFixture(t)
	f.cfg.DegradeFactors = []float64{0, 1.5, -2} // all invalid: no rungs
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Configure(Request{
		SessionID:    "s",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(100, 120))),
		ClientDevice: "desktop1",
	})
	if err == nil {
		t.Error("invalid factors must not admit the impossible request")
	}
}

func TestProfilerOverridesDeclaredRequirements(t *testing.T) {
	// The server instance declares a wildly pessimistic requirement that
	// no device can host; the profiling service has measured its real
	// usage, so the configuration succeeds with the profiled vector.
	f := newFixture(t)
	pessimistic := f.reg.Get("audio-server-1")
	inst := *pessimistic
	inst.Resources = resource.MB(2000, 2000)
	f.reg.MustRegister(&inst)

	prof := profiler.MustNew(profiler.DefaultAlpha)
	f.cfg.Profiler = prof
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without profiles, the declared vector blocks the configuration.
	if _, err := c.Configure(Request{SessionID: "s", App: audioApp(), ClientDevice: "desktop1"}); err == nil {
		t.Fatal("pessimistic declaration should not fit anywhere")
	}
	// The monitoring service has observed the real footprint.
	for i := 0; i < 5; i++ {
		if err := prof.Observe("audio-server-1", resource.MB(60, 45)); err != nil {
			t.Fatal(err)
		}
	}
	active, err := c.Configure(Request{SessionID: "s", App: audioApp(), ClientDevice: "desktop1"})
	if err != nil {
		t.Fatalf("profiled requirements should fit: %v", err)
	}
	defer c.Stop("s")
	got := active.Graph.Node("server").Resources
	if got[resource.Memory] > 100 {
		t.Errorf("server resources = %v, want profiled ≈[60,45]", got)
	}
}

func TestLinkContentionBetweenSessions(t *testing.T) {
	// Two sessions whose server->player edge must cross the 5 Mbps
	// desktop1-pda1 link: each session reserves 1.5 Mbps... make the edge
	// heavier so the second session cannot fit. The abstract edge carries
	// 3 Mbps; two concurrent sessions need 6 > 5.
	f := newFixture(t)
	heavy := func() *composer.AbstractGraph {
		ag := composer.NewAbstractGraph()
		ag.MustAddNode(&composer.AbstractNode{ID: "server", Spec: registry.Spec{Type: "audio-server"}, Pin: "desktop1"})
		ag.MustAddNode(&composer.AbstractNode{ID: "player", Spec: registry.Spec{Type: "audio-player"}, Pin: ClientRole})
		ag.MustAddEdge("server", "player", 3)
		return ag
	}
	if _, err := f.c.Configure(Request{SessionID: "s1", App: heavy(), ClientDevice: "pda1",
		UserQoS: qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44)))}); err != nil {
		t.Fatal(err)
	}
	defer f.c.Stop("s1")
	// The transcoder lands on a desktop, so the cut desktop->pda carries
	// 3 Mbps; the second identical session needs another 3 on the same
	// 5 Mbps link and must be rejected.
	_, err := f.c.Configure(Request{SessionID: "s2", App: heavy(), ClientDevice: "pda1",
		UserQoS: qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44)))})
	if err == nil {
		t.Fatal("second session should be rejected for bandwidth")
	}
	// Stopping the first frees the link for the second.
	if err := f.c.Stop("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.c.Configure(Request{SessionID: "s2", App: heavy(), ClientDevice: "pda1",
		UserQoS: qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44)))}); err != nil {
		t.Fatalf("after release the session must fit: %v", err)
	}
	if err := f.c.Stop("s2"); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentConfigureStress(t *testing.T) {
	// Many goroutines configure and stop sessions concurrently; admission
	// accounting must end balanced.
	f := newFixture(t)
	before := f.dsk.Available()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("s%d", i)
			for j := 0; j < 5; j++ {
				if _, err := f.c.Configure(Request{SessionID: id, App: audioApp(), ClientDevice: "desktop1"}); err != nil {
					continue // rejected under contention: fine
				}
				if err := f.c.Stop(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if f.c.Sessions() != 0 {
		t.Errorf("sessions = %d", f.c.Sessions())
	}
	if !f.dsk.Available().Equal(before) {
		t.Errorf("resource leak: %v vs %v", f.dsk.Available(), before)
	}
}
