// Package core implements the paper's primary contribution: the integrated
// dynamic QoS-aware service configuration model. A Configurator drives the
// two tiers end-to-end — service composition (discover instances, run the
// Ordered Coordination consistency check and corrections) followed by
// service distribution (fit the consistent graph into the currently
// available devices with minimum cost aggregation) — then deploys the
// resulting placement onto the emulated smart space, downloading missing
// components from the repository and, on re-configuration, handing session
// state off from the old service graph to the new one so "the user can
// continue to perform tasks".
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/checkpoint"
	"ubiqos/internal/composer"
	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/explain"
	"ubiqos/internal/flight"
	"ubiqos/internal/graph"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
	"ubiqos/internal/netsim"
	"ubiqos/internal/obslog"
	"ubiqos/internal/par"
	"ubiqos/internal/profiler"
	"ubiqos/internal/qos"
	"ubiqos/internal/repository"
	"ubiqos/internal/resource"
	"ubiqos/internal/runtime"
	"ubiqos/internal/trace"
)

// PlaceFunc chooses a placement for a composed graph; the default is the
// paper's greedy heuristic.
type PlaceFunc func(p *distributor.Problem) (distributor.Assignment, float64, error)

// AdmissionGate is the saturation-aware admission decision point
// (implemented by admission.Gate): it classifies one arriving request as
// admit, admit-degraded, or reject from the space's current capacity
// signals.
type AdmissionGate interface {
	Admit(class string) admission.Decision
}

// Config wires a Configurator to the domain's infrastructure services.
type Config struct {
	Composer    *composer.Composer
	Devices     *device.Table
	Links       *device.Links
	Net         *netsim.Network
	Repo        *repository.Repository
	Checkpoints *checkpoint.Store
	Engine      *runtime.Engine
	Weights     resource.Weights
	// Place overrides the placement algorithm (default: Heuristic).
	Place PlaceFunc
	// PlanCache, when set, memoizes solved placements keyed by the
	// canonical problem signature: configureOnce consults it before
	// running the placement algorithm and stores fresh solutions after.
	// Only requests using the configurator's default placer participate —
	// a per-request Place override (e.g. the recovery ladder's warm or
	// heuristic rungs) must neither serve nor pollute cached plans.
	PlanCache *distributor.PlanCache
	// StateSizeMB is the serialized session state size used for handoffs.
	StateSizeMB float64
	// StateSizeFor, when set, sizes the checkpoint by the portal device it
	// is taken on (e.g. a PC's playback buffer is larger than a PDA's, so
	// PC→PDA handoffs carry more data than PDA→PC — the asymmetry in the
	// paper's Figure 4). It overrides StateSizeMB.
	StateSizeFor func(from device.ID) float64
	// Profiler, when set, supplies online-profiled resource requirement
	// estimates that override the instances' declared vectors during
	// distribution (the paper's §3.1 assumption that "profiling or
	// monitoring services are available to automatically measure the
	// resource requirements for all application services").
	Profiler *profiler.Profiler
	// DegradeFactors is the QoS degradation ladder: when configuration
	// fails for feasibility reasons, the user's numeric QoS requirements
	// are scaled by each factor in turn (e.g. 0.75 then 0.5) until a
	// configuration fits — the paper's "continue his or her tasks with
	// minimum QoS degradations". Empty means no degradation is attempted.
	DegradeFactors []float64
	// Metrics, when set, receives operational counters and the per-tier
	// overhead histograms.
	Metrics *metrics.Registry
	// Tracer, when set, records one structured trace per Configure /
	// Reconfigure call: child spans for composition (with per-node
	// discovery attempts and Ordered Coordination corrections),
	// distribution (with branch-and-bound counters), admission, download,
	// and deployment. Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// Log, when set, receives structured log records for every
	// configuration attempt and outcome, stamped with the session and
	// trace IDs. Nil disables logging at zero cost.
	Log *obslog.Logger
	// Flight, when set, receives the finished configure/recover trace
	// summaries on the per-session flight timelines (log records reach it
	// through Log's sink set instead).
	Flight *flight.Recorder
	// Explain, when set, receives one decision-provenance record per
	// configure/reconfigure/recover action: discovery candidate sets, OC
	// corrections with before/after QoS vectors, the distributor's search
	// summary, and the winning placement. Nil disables provenance at zero
	// cost on the pipeline's hot path.
	Explain *explain.Recorder
	// Ledger, when set, receives the per-session outcome accounting:
	// admission verdicts, every successful (re)configuration with the
	// requested QoS vector and delivered degrade factor, configure
	// failures, and clean stops. The recovery supervisor feeds it the
	// broken/recovered/lost edges. Nil disables outcome accounting.
	Ledger *ledger.Ledger
	// Admission, when set, is the saturation-aware gate consulted at the
	// top of Configure (and therefore ConfigureAll) before a new session's
	// pipeline runs: rejected requests return *admission.RejectedError
	// without touching the pipeline, and degraded admissions re-enter it
	// with optional components shed and heuristic placement — the recovery
	// ladder's shed rung applied at admission time. Reconfigure, Recover,
	// and ResumeFrom bypass the gate: saturation throttles new arrivals,
	// never sessions the space has already committed to.
	Admission AdmissionGate
	// Parallelism bounds the worker pool of the batched ConfigureAll
	// entry point (0 = all usable CPUs, 1 = serial). Individual
	// Configure/Reconfigure calls may always run concurrently; this knob
	// only sizes the pool ConfigureAll drives them with.
	Parallelism int
}

// Configurator is the integrated service configuration model. All methods
// are safe for concurrent use.
//
// Concurrency model: the compose→distribute→deploy pipeline runs outside
// any Configurator-wide lock, so independent sessions configure in
// parallel. Shared device and link bookkeeping is guarded by the fine-
// grained locks of device.Device, device.Links, and the other
// infrastructure services themselves (admission there is atomic per
// device/link, with rollback on partial failure). The Configurator's own
// RWMutex covers only the session registry: a short critical section that
// reserves the session ID before the pipeline starts — making a duplicate
// concurrent Configure of the same ID fail fast instead of racing — and
// commits the finished session after it.
type Configurator struct {
	cfg Config

	mu       sync.RWMutex
	sessions map[string]*ActiveSession
	// pending holds session IDs whose pipeline is in flight, so the ID is
	// claimed for the whole configure without holding mu across it.
	pending map[string]bool
	// classSeen caps the distinct session-class labels fed into the
	// metrics registry (beyond the cap new classes collapse into
	// metrics.OverflowLabel).
	classSeen map[string]bool
}

// New validates the wiring and returns a Configurator.
func New(cfg Config) (*Configurator, error) {
	switch {
	case cfg.Composer == nil:
		return nil, fmt.Errorf("core: nil composer")
	case cfg.Devices == nil:
		return nil, fmt.Errorf("core: nil device table")
	case cfg.Links == nil:
		return nil, fmt.Errorf("core: nil link table")
	case cfg.Net == nil:
		return nil, fmt.Errorf("core: nil network")
	case cfg.Repo == nil:
		return nil, fmt.Errorf("core: nil repository")
	case cfg.Checkpoints == nil:
		return nil, fmt.Errorf("core: nil checkpoint store")
	case cfg.Engine == nil:
		return nil, fmt.Errorf("core: nil runtime engine")
	}
	if err := cfg.Weights.Validate(); err != nil {
		return nil, err
	}
	if cfg.Place == nil {
		cfg.Place = distributor.Heuristic
	}
	if cfg.StateSizeMB <= 0 {
		cfg.StateSizeMB = 0.5
	}
	return &Configurator{
		cfg:       cfg,
		sessions:  make(map[string]*ActiveSession),
		pending:   make(map[string]bool),
		classSeen: make(map[string]bool),
	}, nil
}

// Request describes one application configuration request.
type Request struct {
	// SessionID names the application session; re-configuring an existing
	// ID performs a state handoff.
	SessionID string
	// Class buckets the session for per-class observability (arrival/
	// completion rates, active counts). Empty derives the class from the
	// abstract graph's first sink service type; the label set is capped so
	// wire clients cannot blow up the metric cardinality.
	Class string
	// App is the abstract service graph.
	App *composer.AbstractGraph
	// UserQoS carries the user's QoS requirements.
	UserQoS qos.Vector
	// ClientDevice is the user's portal device; abstract nodes pinned to
	// "client" are bound to it and its attributes steer discovery.
	ClientDevice device.ID
	// MaxFrames bounds the emulated sources (0 = unbounded).
	MaxFrames int64
	// Place, when set, overrides the configurator's placement algorithm
	// for this request only — the recovery supervisor uses it to fall back
	// from optimal to heuristic placement once a reconfiguration deadline
	// has been blown. Never serialized.
	Place PlaceFunc `json:"-"`
	// TraceCtx is the propagated trace identity: a request arriving over
	// the wire carries the client's trace/span IDs here, so the daemon's
	// configure trace — and every recovery trace re-issued from this
	// request — joins the client's tree instead of starting a new one.
	TraceCtx trace.Context `json:"traceCtx,omitempty"`
}

// ClientRole is the pin role in abstract graphs that Request.ClientDevice
// resolves.
const ClientRole = "client"

// SessionLostNotice is the payload of a TopicUserNotification event raised
// when a session cannot be kept alive through a runtime change — its
// portal device vanished, or no feasible placement remains even after the
// degradation ladder. The user must intervene (pick a new portal, add
// capacity, or quit).
type SessionLostNotice struct {
	SessionID string
	// Device is the device whose loss or fluctuation stranded the session
	// (empty when unknown).
	Device device.ID
	Reason string
}

// Timing is the Figure 4 overhead breakdown of one configuration action.
type Timing struct {
	// Composition is the wall time of the service composition tier.
	Composition time.Duration
	// Distribution is the wall time of the service distribution tier.
	Distribution time.Duration
	// Downloading is the modeled dynamic-downloading time (0 when every
	// component is pre-installed on its target device).
	Downloading time.Duration
	// InitOrHandoff is the modeled initialization or state-handoff time,
	// including the buffering time for the first frame at the interruption
	// point.
	InitOrHandoff time.Duration
}

// Total sums the breakdown.
func (t Timing) Total() time.Duration {
	return t.Composition + t.Distribution + t.Downloading + t.InitOrHandoff
}

// ActiveSession is one configured, running application.
type ActiveSession struct {
	ID string
	// Class is the session's observability bucket (see Request.Class).
	Class string
	// Request is the configuration request that produced this session,
	// kept so the domain can re-issue it on runtime changes (device crash,
	// user mobility).
	Request Request
	// Graph is the QoS-consistent concrete service graph.
	Graph *graph.Graph
	// Placement maps every component to its device.
	Placement map[graph.NodeID]device.ID
	// Cost is the cost aggregation of the chosen placement.
	Cost float64
	// DegradeFactor records the QoS degradation applied to admit the
	// session (1 = full requested quality).
	DegradeFactor float64
	// Report is the composition report (corrections applied).
	Report *composer.Report
	// Timing is the configuration overhead breakdown.
	Timing Timing
	// Runtime is the running emulated pipeline.
	Runtime *runtime.Session
	// ClientDevice is the session's current portal device.
	ClientDevice device.ID
	// SearchExplored is the placement search's explored-node count (zero
	// for plan-cache hits and solvers that report no stats); the recovery
	// supervisor compares it against the warm re-solve to gauge the
	// warm-start speedup.
	SearchExplored int64

	loads   []resource.Vector
	devIDs  []device.ID
	demands map[[2]device.ID]float64
}

// reserve claims a session ID for an in-flight configuration, failing if
// the ID is already active or being configured by another goroutine.
func (c *Configurator) reserve(id string) error {
	if id == "" {
		return fmt.Errorf("core: empty session ID")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sessions[id]; ok {
		return fmt.Errorf("core: session %q already active (use Reconfigure)", id)
	}
	if c.pending[id] {
		return fmt.Errorf("core: session %q is already being configured", id)
	}
	c.pending[id] = true
	c.publishPendingLocked()
	return nil
}

// unreserve releases a claimed session ID after a failed configuration.
func (c *Configurator) unreserve(id string) {
	c.mu.Lock()
	delete(c.pending, id)
	c.publishPendingLocked()
	c.mu.Unlock()
}

// commit publishes a successfully configured session, releasing its
// reservation.
func (c *Configurator) commit(active *ActiveSession) {
	c.mu.Lock()
	delete(c.pending, active.ID)
	c.sessions[active.ID] = active
	c.publishPendingLocked()
	c.mu.Unlock()
}

// publishPendingLocked mirrors the admission-queue depth into the
// config_pending gauge. Callers hold c.mu.
func (c *Configurator) publishPendingLocked() {
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Gauge(metrics.ConfigPending).Set(float64(len(c.pending)))
	}
}

// Pending reports the number of in-flight configurations — the admission
// queue depth the saturation analyzer folds into the space verdict.
func (c *Configurator) Pending() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.pending)
}

// ClassCounts returns the number of active sessions per class.
func (c *Configurator) ClassCounts() map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int)
	for _, s := range c.sessions {
		out[s.Class]++
	}
	return out
}

// sessionClass derives the observability class of a request: the explicit
// Class, else the service type of the abstract graph's first sink (the
// user-facing end of the pipeline), else "default".
func sessionClass(req Request) string {
	if req.Class != "" {
		return req.Class
	}
	if req.App != nil {
		if sinks := req.App.Sinks(); len(sinks) > 0 {
			if n := req.App.Node(sinks[0]); n != nil && n.Spec.Type != "" {
				return n.Spec.Type
			}
		}
	}
	return "default"
}

// maxClassLabels caps the distinct class labels the configurator feeds
// into the metrics registry.
const maxClassLabels = 32

// classLabel admits a class into the bounded label set, collapsing
// overflow into metrics.OverflowLabel.
func (c *Configurator) classLabel(class string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.classSeen[class] {
		return class
	}
	if len(c.classSeen) >= maxClassLabels {
		return metrics.OverflowLabel
	}
	c.classSeen[class] = true
	return class
}

// classMeter returns the named per-class meter (nil registry yields nil;
// callers must check).
func (c *Configurator) classMeter(name, class string) *metrics.Meter {
	if c.cfg.Metrics == nil {
		return nil
	}
	return c.cfg.Metrics.Meter(metrics.WithLabel(name, "class", class))
}

// SetAdmission installs (or, with nil, removes) the admission gate after
// construction. It is not synchronized against in-flight Configures —
// call it at boot, before the configurator serves traffic.
func (c *Configurator) SetAdmission(g AdmissionGate) {
	c.cfg.Admission = g
}

// Configure runs the full pipeline for a new session: compose → distribute
// → admit → download → deploy. If the session ID already has a saved
// checkpoint (from a prior Reconfigure), playback resumes from the
// interruption point. Independent sessions may Configure concurrently; a
// concurrent Configure of the same ID fails fast.
func (c *Configurator) Configure(req Request) (*ActiveSession, error) {
	if err := c.reserve(req.SessionID); err != nil {
		return nil, err
	}
	if c.cfg.Admission != nil {
		var rejected error
		if req, rejected = c.admit(req); rejected != nil {
			c.unreserve(req.SessionID)
			return nil, rejected
		}
	}
	active, err := c.configure(req, false, explain.ActionConfigure)
	if err != nil {
		c.unreserve(req.SessionID)
	}
	return active, err
}

// admit consults the admission gate before the pipeline runs. A rejected
// request comes back with *admission.RejectedError (carrying the
// retry-after hint); a degraded admission comes back with optional
// components shed and heuristic placement. Either way the decision lands
// on the session's provenance timeline.
func (c *Configurator) admit(req Request) (Request, error) {
	dec := c.cfg.Admission.Admit(c.classLabel(sessionClass(req)))
	c.cfg.Ledger.RecordAdmission(req.SessionID, dec.Class, string(dec.Verdict), dec.Reason)
	if dec.Verdict == admission.Admit {
		return req, nil
	}
	xd := &explain.AdmissionDecision{
		Verdict:      string(dec.Verdict),
		State:        dec.StateStr,
		Escalated:    dec.Escalated,
		SLOBurn:      dec.SLOBurn,
		Reason:       dec.Reason,
		RetryAfterMs: dec.RetryAfterMs,
	}
	log := c.cfg.Log.Named("core").ForSession(req.SessionID, "")
	if dec.Verdict == admission.Reject {
		// The request never reaches the pipeline's own arrival mark, so
		// record the offered load here — the autoscaler's demand signal
		// must see rejected arrivals too.
		if m := c.classMeter(metrics.SessionArrivals, dec.Class); m != nil {
			m.Mark(1)
		}
		err := &admission.RejectedError{Decision: dec}
		if c.cfg.Explain != nil {
			c.cfg.Explain.Record(explain.Record{
				Session:   req.SessionID,
				Action:    explain.ActionAdmission,
				Admission: xd,
				Err:       err.Error(),
			})
		}
		log.Info("admission rejected",
			obslog.String("class", dec.Class), obslog.String("reason", dec.Reason))
		return req, err
	}
	// Admit-degraded: the recovery ladder's shed rung, applied before the
	// pipeline instead of after a failure — optional components dropped,
	// placement on the cheap heuristic.
	if req.App != nil {
		for _, n := range req.App.Nodes() {
			if n.Optional {
				xd.Shed = append(xd.Shed, string(n.ID))
			}
		}
		sort.Strings(xd.Shed)
		req.App = shedOptional(req.App)
	}
	if req.Place == nil {
		req.Place = distributor.Heuristic
	}
	if c.cfg.Explain != nil {
		c.cfg.Explain.Record(explain.Record{
			Session:   req.SessionID,
			Action:    explain.ActionAdmission,
			Admission: xd,
		})
	}
	log.Info("admission degraded",
		obslog.String("class", dec.Class), obslog.String("reason", dec.Reason))
	return req, nil
}

// ConfigureAll configures a batch of sessions over a worker pool bounded
// by Config.Parallelism and returns per-request results in request order:
// sessions[i] or errs[i] is the outcome of reqs[i]. One request failing
// (e.g. the smart space running out of resources) does not stop the rest
// of the batch — partial admission is the desired behavior for a burst of
// independent users.
func (c *Configurator) ConfigureAll(reqs []Request) (sessions []*ActiveSession, errs []error) {
	sessions = make([]*ActiveSession, len(reqs))
	errs = make([]error, len(reqs))
	// The pool callback never returns an error: failures are per-request
	// results, not reasons to cancel the batch.
	_ = par.ForEach(len(reqs), c.cfg.Parallelism, func(i int) error {
		sessions[i], errs[i] = c.Configure(reqs[i])
		return nil
	})
	return sessions, errs
}

// configure runs the pipeline, walking the QoS degradation ladder when
// the full-quality configuration does not fit the current environment.
// action labels the run for provenance: ActionConfigure, ActionResume,
// ActionRecover, or ActionReconfigure.
func (c *Configurator) configure(req Request, handoff bool, action string) (*ActiveSession, error) {
	req.Class = c.classLabel(sessionClass(req))
	if m := c.classMeter(metrics.SessionArrivals, req.Class); m != nil {
		m.Mark(1)
	}
	tr := c.cfg.Tracer.StartCtx(req.TraceCtx, "configure", req.SessionID, trace.Bool("handoff", handoff))
	log := c.cfg.Log.Named("core").ForSession(req.SessionID, tr.Context().TraceID)
	log.Info("configure started", obslog.Bool("handoff", handoff))
	root := tr.Root()
	var xr *explain.Record
	if c.cfg.Explain != nil {
		xr = &explain.Record{
			Session: req.SessionID,
			TraceID: tr.Context().TraceID,
			Action:  action,
			Handoff: handoff,
		}
	}
	active, err := c.configureLadder(req, handoff, root, xr)
	if err != nil {
		root.SetErr(err)
		log.Error("configure failed", obslog.Err(err))
	} else {
		root.Set(trace.Float("cost", active.Cost),
			trace.Float("degradeFactor", active.DegradeFactor))
		log.Info("configured",
			obslog.Float("cost", active.Cost),
			obslog.Float("degradeFactor", active.DegradeFactor),
			obslog.Int("components", int64(active.Graph.NodeCount())),
			obslog.Duration("tookMs", active.Timing.Total()))
	}
	tr.Finish()
	c.cfg.Flight.RecordTrace(tr.Export())
	if xr != nil {
		if err != nil {
			xr.Err = err.Error()
		} else {
			xr.Cost = active.Cost
			xr.DegradeFactor = active.DegradeFactor
			xr.Placement = make(map[string]string, len(active.Placement))
			for id, dev := range active.Placement {
				xr.Placement[string(id)] = string(dev)
			}
		}
		c.cfg.Explain.Record(*xr)
	}
	c.recordOutcome(active, req.Class, err)
	if err != nil {
		c.cfg.Ledger.RecordConfigureFailed(req.SessionID, req.Class, err.Error())
	} else {
		c.cfg.Ledger.RecordConfigured(req.SessionID, req.Class, req.UserQoS,
			active.DegradeFactor, active.Timing.Total(), action)
	}
	return active, err
}

// recordOutcome feeds the metrics registry after a configuration attempt.
func (c *Configurator) recordOutcome(active *ActiveSession, class string, err error) {
	m := c.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter(metrics.ConfigsTotal).Inc()
	if err != nil {
		m.Counter(metrics.ConfigsFailed).Inc()
		c.classMeter(metrics.SessionFailures, class).Mark(1)
		return
	}
	if active.DegradeFactor != 1 {
		m.Counter(metrics.ConfigsDegraded).Inc()
	}
	m.Counter(metrics.TranscodersInserted).Add(int64(len(active.Report.Transcoders)))
	m.Counter(metrics.BuffersInserted).Add(int64(len(active.Report.Buffers)))
	m.Counter(metrics.Adjustments).Add(int64(len(active.Report.Adjustments)))
	m.Counter(metrics.DiscoveryAttempts).Add(int64(active.Report.DiscoveryAttempts))
	m.Counter(metrics.DiscoveryFailures).Add(int64(active.Report.DiscoveryFailures))
	m.Histogram(metrics.CompositionTime).Observe(active.Timing.Composition)
	m.Histogram(metrics.DistributionTime).Observe(active.Timing.Distribution)
	m.Histogram(metrics.DownloadTime).Observe(active.Timing.Downloading)
	m.Histogram(metrics.HandoffTime).Observe(active.Timing.InitOrHandoff)
	m.Histogram(metrics.ConfigureTime).Observe(active.Timing.Total())
	m.Gauge(metrics.ActiveSessions).Set(float64(c.Sessions()))
}

func (c *Configurator) configureLadder(req Request, handoff bool, root *trace.Span, xr *explain.Record) (*ActiveSession, error) {
	asp := root.Child("attempt", trace.Float("degradeFactor", 1))
	active, err := c.configureOnce(req, handoff, asp, nextAttempt(xr, 1))
	asp.SetErr(err)
	asp.End()
	if err == nil {
		active.DegradeFactor = 1
		return active, nil
	}
	finishAttempt(xr, err)
	// Missing services cannot be fixed by lowering quality; notify the
	// user instead of degrading.
	var miss *composer.MissingServiceError
	if errors.As(err, &miss) || len(c.cfg.DegradeFactors) == 0 || len(req.UserQoS) == 0 {
		return nil, err
	}
	for _, f := range c.cfg.DegradeFactors {
		if f <= 0 || f >= 1 {
			continue
		}
		degraded := req
		degraded.UserQoS = degradeVector(req.UserQoS, f)
		asp := root.Child("attempt", trace.Float("degradeFactor", f))
		active, derr := c.configureOnce(degraded, handoff, asp, nextAttempt(xr, f))
		asp.SetErr(derr)
		asp.End()
		if derr == nil {
			active.DegradeFactor = f
			return active, nil
		}
		finishAttempt(xr, derr)
	}
	return nil, err
}

// nextAttempt appends a fresh provenance attempt to the record and
// returns it for configureOnce to fill; a nil record yields nil.
func nextAttempt(xr *explain.Record, degradeFactor float64) *explain.Attempt {
	if xr == nil {
		return nil
	}
	xr.Attempts = append(xr.Attempts, explain.Attempt{DegradeFactor: degradeFactor})
	return &xr.Attempts[len(xr.Attempts)-1]
}

// finishAttempt stamps the most recent provenance attempt with the error
// that ended it.
func finishAttempt(xr *explain.Record, err error) {
	if xr == nil || len(xr.Attempts) == 0 || err == nil {
		return
	}
	xr.Attempts[len(xr.Attempts)-1].Err = err.Error()
}

// degradeVector scales the numeric dimensions of a QoS requirement by f,
// leaving symbolic dimensions untouched: a range [lo,hi] becomes
// [lo·f, hi·f], a scalar v becomes v·f.
func degradeVector(v qos.Vector, f float64) qos.Vector {
	out := v.Clone()
	for i, p := range out {
		switch p.Value.Kind {
		case qos.KindScalar:
			out[i].Value = qos.Scalar(p.Value.Num * f)
		case qos.KindRange:
			out[i].Value = qos.Range(p.Value.Lo*f, p.Value.Hi*f)
		}
	}
	return out
}

func (c *Configurator) configureOnce(req Request, handoff bool, parent *trace.Span, att *explain.Attempt) (*ActiveSession, error) {
	// --- Tier 1: service composition. ---
	var clientAttrs map[string]string
	if d := c.cfg.Devices.Get(req.ClientDevice); d != nil {
		clientAttrs = d.Attrs
	}
	t0 := time.Now()
	csp := parent.Child("compose")
	app := resolveClientPins(req.App, req.ClientDevice)
	var comp *explain.Composition
	if att != nil {
		comp = &explain.Composition{}
	}
	g, rep, err := c.cfg.Composer.Compose(composer.Request{
		App:          app,
		UserQoS:      req.UserQoS,
		ClientAttrs:  clientAttrs,
		ClientDevice: string(req.ClientDevice),
		Span:         csp,
		Log:          c.cfg.Log.Named("composer").ForSession(req.SessionID, parent.TraceContext().TraceID),
		Explain:      comp,
	})
	compTime := time.Since(t0)
	if att != nil {
		att.Discoveries = comp.Discoveries
		att.Corrections = comp.Corrections
	}
	if err != nil {
		csp.SetErr(err)
		csp.End()
		return nil, fmt.Errorf("core: composition: %w", err)
	}
	csp.Set(trace.Int("nodes", int64(g.NodeCount())),
		trace.Int("checks", int64(rep.Checks)),
		trace.Int("adjustments", int64(len(rep.Adjustments))),
		trace.Int("transcoders", int64(len(rep.Transcoders))),
		trace.Int("buffers", int64(len(rep.Buffers))))
	csp.End()

	// Online profiling refines the declared requirement vectors.
	if c.cfg.Profiler != nil {
		for _, n := range g.Nodes() {
			if n.Instance != "" {
				n.Resources = c.cfg.Profiler.EstimateOr(n.Instance, n.Resources)
			}
		}
	}

	// --- Tier 2: service distribution. ---
	t1 := time.Now()
	up := c.cfg.Devices.UpDevices()
	if len(up) == 0 {
		return nil, fmt.Errorf("core: no devices available")
	}
	devInfos := make([]distributor.DeviceInfo, len(up))
	devIDs := make([]device.ID, len(up))
	for i, d := range up {
		devInfos[i] = distributor.DeviceInfo{ID: d.ID, Avail: d.Available()}
		devIDs[i] = d.ID
	}
	dsp := parent.Child("distribute", trace.Int("devices", int64(len(up))))
	stats := &distributor.SearchStats{}
	prob := &distributor.Problem{
		Graph:     g,
		Devices:   devInfos,
		Bandwidth: c.cfg.Links.Available,
		Weights:   c.cfg.Weights,
		Span:      dsp,
		Stats:     stats,
		Log:       c.cfg.Log.Named("distributor").ForSession(req.SessionID, parent.TraceContext().TraceID),
	}
	place := c.cfg.Place
	if req.Place != nil {
		place = req.Place
	}
	var assignment distributor.Assignment
	var cost float64
	cacheHit := false
	if req.Place == nil && c.cfg.PlanCache != nil {
		if a, cc, ok := c.cfg.PlanCache.Lookup(prob); ok {
			assignment, cost, cacheHit = a, cc, true
			stats.Algorithm = "plan-cache"
		}
	}
	if !cacheHit {
		assignment, cost, err = place(prob)
		if err == nil && req.Place == nil && c.cfg.PlanCache != nil {
			c.cfg.PlanCache.Store(prob, assignment, cost)
		}
	}
	distTime := time.Since(t1)
	c.recordSearch(dsp, stats, cost, err)
	if att != nil {
		att.Search = &explain.Search{
			Algorithm:       stats.Algorithm,
			Workers:         stats.Workers,
			Tasks:           stats.Tasks,
			FrontierDepth:   stats.FrontierDepth,
			Explored:        stats.Explored,
			Pruned:          stats.Pruned,
			Incumbents:      stats.Incumbents,
			BoundTrajectory: stats.BoundTrajectory,
			RunnerUp:        stats.RunnerUp,
			Devices:         len(up),
			CacheHit:        cacheHit,
			Warm:            stats.Warm,
			SeedCost:        stats.SeedCost,
			Reused:          stats.Reused,
		}
		if err == nil {
			att.Search.Cost = cost
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: distribution: %w", err)
	}

	// --- Admission: reserve device resources and link bandwidth. ---
	admitSp := parent.Child("admit")
	loads := prob.DeviceLoads(assignment)
	admitted := make([]int, 0, len(up))
	rollback := func() {
		for _, i := range admitted {
			up[i].Release(loads[i])
		}
	}
	for i, d := range up {
		if loads[i].IsZero() {
			continue
		}
		if err := d.Admit(loads[i]); err != nil {
			rollback()
			admitSp.SetErr(err)
			admitSp.End()
			return nil, fmt.Errorf("core: admission: %w", err)
		}
		admitted = append(admitted, i)
	}
	demands := prob.LinkDemands(assignment)
	reserved := make([][2]device.ID, 0, len(demands))
	rollbackLinks := func() {
		for _, pair := range reserved {
			c.cfg.Links.ReleaseBandwidth(pair[0], pair[1], demands[pair])
		}
	}
	for pair, mbps := range demands {
		if err := c.cfg.Links.Reserve(pair[0], pair[1], mbps); err != nil {
			rollbackLinks()
			rollback()
			admitSp.SetErr(err)
			admitSp.End()
			return nil, fmt.Errorf("core: bandwidth reservation: %w", err)
		}
		reserved = append(reserved, pair)
	}
	admitSp.Set(trace.Int("devicesLoaded", int64(len(admitted))),
		trace.Int("linksReserved", int64(len(reserved))))
	admitSp.End()

	// --- Dynamic downloading: components missing on their targets. ---
	dlSp := parent.Child("download")
	placement := make(map[graph.NodeID]device.ID, g.NodeCount())
	for id, di := range assignment {
		placement[id] = devInfos[di].ID
	}
	dlTime, err := c.download(g, placement)
	if err != nil {
		rollbackLinks()
		rollback()
		dlSp.SetErr(err)
		dlSp.End()
		return nil, err
	}
	dlSp.Set(trace.Float("modeledSeconds", dlTime.Seconds()))
	dlSp.End()

	// --- Initialization or state handoff. ---
	// Both a fresh initialization and a resume pay the buffering time for
	// the first frame (at the start, or at the interruption point).
	startPos := int64(0)
	initTime := firstFrameBuffering(g)
	if st, ok := c.cfg.Checkpoints.Load(req.SessionID); ok && handoff {
		startPos = st.Position
	}

	depSp := parent.Child("deploy", trace.Int("startPos", startPos))
	sess, err := c.cfg.Engine.Deploy(g, placement, startPos, req.MaxFrames)
	if err != nil {
		rollbackLinks()
		rollback()
		depSp.SetErr(err)
		depSp.End()
		return nil, fmt.Errorf("core: deploy: %w", err)
	}
	if err := sess.Start(); err != nil {
		rollbackLinks()
		rollback()
		depSp.SetErr(err)
		depSp.End()
		return nil, fmt.Errorf("core: start: %w", err)
	}
	depSp.End()

	active := &ActiveSession{
		ID:             req.SessionID,
		Class:          req.Class,
		Request:        req,
		Graph:          g,
		Placement:      placement,
		Cost:           cost,
		Report:         rep,
		Runtime:        sess,
		ClientDevice:   req.ClientDevice,
		SearchExplored: stats.Explored,
		loads:          loads,
		devIDs:         devIDs,
		demands:        demands,
		Timing: Timing{
			Composition:   compTime,
			Distribution:  distTime,
			Downloading:   dlTime,
			InitOrHandoff: initTime,
		},
	}
	c.commit(active)
	return active, nil
}

// recordSearch finishes the distribution span with the solver's search
// statistics and feeds the branch-and-bound counters into the metrics
// registry. A custom PlaceFunc that does not fill Stats records only the
// span timing.
func (c *Configurator) recordSearch(dsp *trace.Span, stats *distributor.SearchStats, cost float64, err error) {
	if stats.Algorithm != "" {
		dsp.Set(trace.String("algorithm", stats.Algorithm),
			trace.Int("explored", stats.Explored),
			trace.Int("pruned", stats.Pruned),
			trace.Int("incumbents", stats.Incumbents))
	}
	if err != nil {
		dsp.SetErr(err)
	} else {
		dsp.Set(trace.Float("cost", cost))
	}
	dsp.End()
	m := c.cfg.Metrics
	if m == nil {
		return
	}
	switch stats.Algorithm {
	case "optimal", "optimal-parallel", "optimal-warm":
		m.Counter(metrics.BnBExplored).Add(stats.Explored)
		m.Counter(metrics.BnBPruned).Add(stats.Pruned)
		m.Counter(metrics.BnBIncumbents).Add(stats.Incumbents)
		if stats.Warm {
			m.Counter(metrics.WarmSolves).Inc()
		} else {
			m.Counter(metrics.ColdSolves).Inc()
		}
	}
}

// download fetches every component missing on its target device. Devices
// download in parallel, so the modeled cost is the per-device maximum of
// sequential download times.
func (c *Configurator) download(g *graph.Graph, placement map[graph.NodeID]device.ID) (time.Duration, error) {
	perDevice := make(map[device.ID]time.Duration)
	for _, n := range g.Nodes() {
		if n.Instance == "" {
			continue
		}
		dev := placement[n.ID]
		d, err := c.cfg.Repo.Ensure(string(dev), n.Instance)
		if err != nil {
			return 0, fmt.Errorf("core: %w", err)
		}
		perDevice[dev] += d
	}
	var maxD time.Duration
	for _, d := range perDevice {
		if d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}

// firstFrameBuffering models the wait for the first frame after resuming:
// one frame interval at the slowest sink rate.
func firstFrameBuffering(g *graph.Graph) time.Duration {
	rate := runtime.DefaultFrameRate
	for _, id := range g.Sinks() {
		n := g.Node(id)
		if v, ok := n.In.Get(qos.DimFrameRate); ok {
			switch v.Kind {
			case qos.KindScalar:
				if v.Num > 0 {
					rate = v.Num
				}
			case qos.KindRange:
				if v.Lo > 0 {
					rate = v.Lo
				}
			}
		}
	}
	return time.Duration(float64(time.Second) / rate)
}

// resolveClientPins rewrites the ClientRole pin to the concrete client
// device, returning a copy when rewriting is needed.
func resolveClientPins(app *composer.AbstractGraph, client device.ID) *composer.AbstractGraph {
	if app == nil || client == "" {
		return app
	}
	needs := false
	for _, n := range app.Nodes() {
		if n.Pin == ClientRole {
			needs = true
			break
		}
	}
	if !needs {
		return app
	}
	out := composer.NewAbstractGraph()
	for _, n := range app.Nodes() {
		cp := *n
		if cp.Pin == ClientRole {
			cp.Pin = string(client)
		}
		out.MustAddNode(&cp)
	}
	for _, e := range app.Edges() {
		out.MustAddEdge(e.From, e.To, e.ThroughputMbps)
	}
	return out
}

// Session returns the active session with the given ID, or nil.
func (c *Configurator) Session(id string) *ActiveSession {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sessions[id]
}

// Sessions returns the number of active sessions.
func (c *Configurator) Sessions() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sessions)
}

// SessionIDs returns the IDs of all active sessions, sorted.
func (c *Configurator) SessionIDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sessions))
	for id := range c.sessions {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Stop terminates a session and releases its resources.
func (c *Configurator) Stop(sessionID string) error {
	c.mu.Lock()
	active, ok := c.sessions[sessionID]
	if ok {
		delete(c.sessions, sessionID)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown session %q", sessionID)
	}
	active.Runtime.Stop()
	c.release(active)
	c.cfg.Checkpoints.Delete(sessionID)
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Gauge(metrics.ActiveSessions).Set(float64(c.Sessions()))
	}
	if m := c.classMeter(metrics.SessionCompletions, active.Class); m != nil {
		m.Mark(1)
	}
	c.cfg.Ledger.RecordStopped(sessionID)
	c.cfg.Log.Named("core").ForSession(sessionID, active.Request.TraceCtx.TraceID).Info("session stopped")
	return nil
}

func (c *Configurator) release(active *ActiveSession) {
	for i, id := range active.devIDs {
		if active.loads[i].IsZero() {
			continue
		}
		if d := c.cfg.Devices.Get(id); d != nil {
			d.Release(active.loads[i])
		}
	}
	for pair, mbps := range active.demands {
		c.cfg.Links.ReleaseBandwidth(pair[0], pair[1], mbps)
	}
}

// Suspend checkpoints a session at its interruption point, tears it down,
// releases its resources, and returns the exported state. Unlike
// Reconfigure, nothing is re-created: the state can be carried to another
// domain (the user moved to a new location) and resumed there with
// ResumeFrom.
func (c *Configurator) Suspend(sessionID string) (checkpoint.State, error) {
	c.mu.Lock()
	active, ok := c.sessions[sessionID]
	if ok {
		delete(c.sessions, sessionID)
	}
	c.mu.Unlock()
	if !ok {
		return checkpoint.State{}, fmt.Errorf("core: unknown session %q", sessionID)
	}
	stateSize := c.cfg.StateSizeMB
	if c.cfg.StateSizeFor != nil {
		stateSize = c.cfg.StateSizeFor(active.ClientDevice)
	}
	st := checkpoint.State{
		SessionID: sessionID,
		Position:  active.Runtime.Position(),
		SizeMB:    stateSize,
		SavedAt:   time.Now(),
	}
	active.Runtime.Stop()
	c.release(active)
	c.cfg.Checkpoints.Delete(sessionID)
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Gauge(metrics.ActiveSessions).Set(float64(c.Sessions()))
	}
	return st, nil
}

// ResumeFrom configures a session that continues from imported state —
// the receiving side of a cross-domain migration. The request's session ID
// takes precedence over the state's.
func (c *Configurator) ResumeFrom(req Request, st checkpoint.State) (*ActiveSession, error) {
	if err := c.reserve(req.SessionID); err != nil {
		return nil, err
	}
	st.SessionID = req.SessionID
	if err := c.cfg.Checkpoints.Save(st); err != nil {
		c.unreserve(req.SessionID)
		return nil, err
	}
	active, err := c.configure(req, true, explain.ActionResume)
	if err != nil {
		c.unreserve(req.SessionID)
	}
	return active, err
}

// Recover (re)configures a session as part of self-healing. A session
// still active is reconfigured in place (checkpoint → tear down → fresh
// compose/distribute → resume). If an earlier recovery attempt already
// tore the session down and then failed to re-place it, the saved
// checkpoint is resumed so a later retry still continues playback from
// the interruption point instead of starting over.
func (c *Configurator) Recover(req Request) (*ActiveSession, error) {
	if c.Session(req.SessionID) != nil {
		return c.Reconfigure(req)
	}
	if err := c.reserve(req.SessionID); err != nil {
		return nil, err
	}
	_, resuming := c.cfg.Checkpoints.Load(req.SessionID)
	active, err := c.configure(req, resuming, explain.ActionRecover)
	if err != nil {
		c.unreserve(req.SessionID)
	}
	return active, err
}

// Discard drops a session's orphaned recovery state (its checkpoint) after
// the supervisor gives up on it. Sessions still active must be stopped
// with Stop instead.
func (c *Configurator) Discard(sessionID string) {
	c.cfg.Checkpoints.Delete(sessionID)
}

// Reconfigure re-runs the configuration model for an existing session —
// invoked "whenever some significant changes are detected during runtime",
// e.g. the user switches devices or a device crashes. The old service
// graph is checkpointed at its interruption point, torn down, and a new
// graph composed, distributed, and resumed from the saved position; the
// returned session's Timing includes the state-handoff cost.
func (c *Configurator) Reconfigure(req Request) (*ActiveSession, error) {
	// Move the session from active to pending so a concurrent Configure of
	// the same ID cannot claim it mid-reconfiguration.
	c.mu.Lock()
	old, ok := c.sessions[req.SessionID]
	if ok {
		delete(c.sessions, req.SessionID)
		c.pending[req.SessionID] = true
		c.publishPendingLocked()
	}
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown session %q", req.SessionID)
	}

	// Checkpoint at the interruption point, then tear down.
	pos := old.Runtime.Position()
	stateSize := c.cfg.StateSizeMB
	if c.cfg.StateSizeFor != nil {
		stateSize = c.cfg.StateSizeFor(old.ClientDevice)
	}
	if err := c.cfg.Checkpoints.Save(checkpoint.State{
		SessionID: req.SessionID,
		Position:  pos,
		SizeMB:    stateSize,
	}); err != nil {
		// Restore bookkeeping: the old session keeps running.
		c.mu.Lock()
		delete(c.pending, req.SessionID)
		c.sessions[req.SessionID] = old
		c.publishPendingLocked()
		c.mu.Unlock()
		return nil, err
	}
	old.Runtime.Stop()
	c.release(old)

	// Transfer the state between the portal devices.
	var handoffTime time.Duration
	if old.ClientDevice != "" && req.ClientDevice != "" && old.ClientDevice != req.ClientDevice {
		d, err := c.cfg.Checkpoints.Handoff(c.cfg.Net, req.SessionID, string(old.ClientDevice), string(req.ClientDevice))
		if err != nil {
			c.unreserve(req.SessionID)
			return nil, fmt.Errorf("core: %w", err)
		}
		handoffTime = d
	}

	active, err := c.configure(req, true, explain.ActionReconfigure)
	if err != nil {
		c.unreserve(req.SessionID)
		return nil, err
	}
	active.Timing.InitOrHandoff += handoffTime
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Counter(metrics.Handoffs).Inc()
		c.cfg.Metrics.Histogram(metrics.HandoffTime).Observe(handoffTime)
	}
	return active, nil
}
