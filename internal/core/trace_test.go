package core

import (
	"testing"

	"ubiqos/internal/distributor"
	"ubiqos/internal/qos"
	"ubiqos/internal/trace"
)

// childrenOf collects the names of a span's direct children, in creation
// order.
func childrenOf(td *trace.TraceData, parent int) []string {
	var out []string
	for _, sp := range td.Spans {
		if sp.Parent == parent {
			out = append(out, sp.Name)
		}
	}
	return out
}

// firstNamed returns the first exported span with the given name, or nil.
func firstNamed(td *trace.TraceData, name string) *trace.SpanData {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return &td.Spans[i]
		}
	}
	return nil
}

// TestConfigureTrace drives one Configure with optimal-parallel placement
// against the fixture's PDA (forcing a transcoder correction) and asserts
// the full span tree of the acceptance criteria: compose → discover →
// OC-correction → distribute, with correction kinds and branch-and-bound
// counters.
func TestConfigureTrace(t *testing.T) {
	f := newFixture(t)
	f.cfg.Tracer = trace.NewTracer(8)
	f.cfg.Place = func(p *distributor.Problem) (distributor.Assignment, float64, error) {
		return distributor.OptimalParallel(p, 4)
	}
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Configure(Request{
		SessionID:    "traced-1",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 44))),
		ClientDevice: "pda1",
	}); err != nil {
		t.Fatal(err)
	}
	defer c.Stop("traced-1")

	td := f.cfg.Tracer.Find("traced-1")
	if td == nil {
		t.Fatal("no trace recorded for the session")
	}
	if td.Name != "configure" || td.Spans[0].Attrs["handoff"] != false {
		t.Errorf("root = %+v", td.Spans[0])
	}
	if td.Spans[0].Attrs["degradeFactor"] != float64(1) {
		t.Errorf("root attrs = %v", td.Spans[0].Attrs)
	}

	attempt := firstNamed(td, "attempt")
	if attempt == nil || attempt.Parent != 0 {
		t.Fatalf("attempt span missing:\n%s", td.Render())
	}
	stages := childrenOf(td, attempt.ID)
	want := []string{"compose", "distribute", "admit", "download", "deploy"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v:\n%s", stages, want, td.Render())
	}
	for i, name := range want {
		if stages[i] != name {
			t.Fatalf("stage[%d] = %s, want %s", i, stages[i], name)
		}
	}

	// Composition: discovery attempts and the transcoder correction.
	compose := firstNamed(td, "compose")
	if compose.Attrs["transcoders"] != int64(1) {
		t.Errorf("compose attrs = %v", compose.Attrs)
	}
	discover := firstNamed(td, "discover")
	if discover == nil || discover.Parent != compose.ID {
		t.Fatalf("discover span missing or misparented:\n%s", td.Render())
	}
	correction := firstNamed(td, "correction")
	if correction == nil || correction.Attrs["kind"] != "transcoder" {
		t.Fatalf("correction span = %+v:\n%s", correction, td.Render())
	}

	// Distribution: the parallel branch-and-bound counters.
	dist := firstNamed(td, "distribute")
	if dist.Attrs["algorithm"] != "optimal-parallel" {
		t.Errorf("distribute attrs = %v", dist.Attrs)
	}
	explored, ok := dist.Attrs["explored"].(int64)
	if !ok || explored == 0 {
		t.Errorf("distribute explored = %v", dist.Attrs["explored"])
	}
	if _, ok := dist.Attrs["pruned"].(int64); !ok {
		t.Errorf("distribute pruned = %v", dist.Attrs["pruned"])
	}
	if firstNamed(td, "branch-and-bound-parallel") == nil {
		t.Errorf("no solver span:\n%s", td.Render())
	}
	worker := firstNamed(td, "bnb-worker")
	if worker == nil {
		t.Fatalf("no per-worker span:\n%s", td.Render())
	}
}

// TestConfigureTraceFailure: a failed configuration still produces a
// finished trace with the error on the root span.
func TestConfigureTraceFailure(t *testing.T) {
	f := newFixture(t)
	f.cfg.Tracer = trace.NewTracer(8)
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Configure(Request{
		SessionID:    "doomed-1",
		App:          audioApp(),
		ClientDevice: "ghost",
	}); err == nil {
		t.Fatal("configure on unknown portal should fail")
	}
	td := f.cfg.Tracer.Find("doomed-1")
	if td == nil {
		t.Fatal("failed configure must still record a trace")
	}
	if _, ok := td.Spans[0].Attrs["error"]; !ok {
		t.Errorf("root must carry the error: %v", td.Spans[0].Attrs)
	}
}

// TestConfigureUntraced: a nil tracer stays a no-op end to end.
func TestConfigureUntraced(t *testing.T) {
	f := newFixture(t)
	if _, err := f.c.Configure(Request{
		SessionID:    "plain-1",
		App:          audioApp(),
		ClientDevice: "desktop1",
	}); err != nil {
		t.Fatal(err)
	}
	defer f.c.Stop("plain-1")
	if f.cfg.Tracer.Len() != 0 {
		t.Error("nil tracer must record nothing")
	}
}
