package core

import (
	"strings"
	"testing"
	"time"

	"ubiqos/internal/checkpoint"
	"ubiqos/internal/composer"
	"ubiqos/internal/device"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/repository"
	"ubiqos/internal/resource"
	"ubiqos/internal/runtime"
)

// testScale fast-forwards emulated time 10x.
const testScale = 0.1

// fixture is a minimal smart space: one desktop, one PDA, an audio server
// component, format-specific players, a transcoder, and a repository.
type fixture struct {
	cfg  Config
	c    *Configurator
	reg  *registry.Registry
	net  *netsim.Network
	dsk  *device.Device
	pda  *device.Device
	repo *repository.Repository
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := registry.New()
	reg.MustRegister(&registry.Instance{
		Name:          "audio-server-1",
		Type:          "audio-server",
		Output:        qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Scalar(40))),
		OutCapability: qos.V(qos.P(qos.DimFrameRate, qos.Range(5, 60))),
		Adjustable:    map[string]bool{qos.DimFrameRate: true},
		Resources:     resource.MB(64, 50),
		SizeMB:        2,
	})
	reg.MustRegister(&registry.Instance{
		Name:      "mp3-player-1",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pc"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Range(10, 50))),
		Resources: resource.MB(16, 30),
		SizeMB:    1,
	})
	reg.MustRegister(&registry.Instance{
		Name:      "wav-player-1",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pda"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatWAV)), qos.P(qos.DimFrameRate, qos.Range(10, 44))),
		Resources: resource.MB(8, 10),
		SizeMB:    1,
	})
	reg.MustRegister(&registry.Instance{
		Name:        "mp32wav-1",
		Type:        composer.TypeTranscoder,
		Attrs:       map[string]string{"from": qos.FormatMP3, "to": qos.FormatWAV},
		Input:       qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3))),
		Output:      qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatWAV))),
		PassThrough: map[string]bool{qos.DimFrameRate: true},
		Resources:   resource.MB(12, 25),
		SizeMB:      1.5,
	})

	net := netsim.MustNew(testScale * 0.001) // transfers are near-instant in tests
	net.MustSetLink("desktop1", "pda1", netsim.WLAN)
	net.MustSetLink("repo-host", "desktop1", netsim.Ethernet)
	net.MustSetLink("repo-host", "pda1", netsim.WLAN)

	devices := device.NewTable()
	dsk := device.MustNew("desktop1", device.ClassDesktop, resource.MB(256, 300), map[string]string{"platform": "pc"})
	pda := device.MustNew("pda1", device.ClassPDA, resource.MB(32, 40), map[string]string{"platform": "pda"})
	if err := devices.Add(dsk); err != nil {
		t.Fatal(err)
	}
	if err := devices.Add(pda); err != nil {
		t.Fatal(err)
	}
	links := device.NewLinks()
	links.MustSet("desktop1", "pda1", 5)

	repo, err := repository.New("repo-host", net)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []repository.Package{
		{Name: "audio-server-1", SizeMB: 2},
		{Name: "mp3-player-1", SizeMB: 1},
		{Name: "wav-player-1", SizeMB: 1},
		{Name: "mp32wav-1", SizeMB: 1.5},
	} {
		repo.MustPublish(p)
	}

	engine, err := runtime.NewEngine(testScale, net)
	if err != nil {
		t.Fatal(err)
	}
	w, err := resource.NewWeights(0.3, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Composer:    composer.New(reg),
		Devices:     devices,
		Links:       links,
		Net:         net,
		Repo:        repo,
		Checkpoints: checkpoint.NewStore(),
		Engine:      engine,
		Weights:     w,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cfg: cfg, c: c, reg: reg, net: net, dsk: dsk, pda: pda, repo: repo}
}

// audioApp describes the mobile audio-on-demand application.
func audioApp() *composer.AbstractGraph {
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "server", Spec: registry.Spec{Type: "audio-server"}})
	ag.MustAddNode(&composer.AbstractNode{ID: "player", Spec: registry.Spec{Type: "audio-player"}, Pin: ClientRole})
	ag.MustAddEdge("server", "player", 1.5)
	return ag
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	f := newFixture(t)
	bad := f.cfg
	bad.Weights = resource.Weights{2, 2}
	if _, err := New(bad); err == nil {
		t.Error("invalid weights should fail")
	}
}

func TestConfigureEndToEnd(t *testing.T) {
	f := newFixture(t)
	active, err := f.c.Configure(Request{
		SessionID:    "audio-1",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 45))),
		ClientDevice: "desktop1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.c.Stop("audio-1")

	if active.Graph.NodeCount() != 2 {
		t.Errorf("graph nodes = %d", active.Graph.NodeCount())
	}
	if active.Placement["player"] != "desktop1" {
		t.Errorf("player placed on %s, want client pin", active.Placement["player"])
	}
	// Resources were admitted.
	if f.dsk.Available().Equal(f.dsk.Capacity()) {
		t.Error("no admission happened on the desktop")
	}
	// The pipeline delivers ≈40 fps.
	time.Sleep(time.Duration(float64(3*time.Second) * testScale))
	fps, frames := active.Runtime.MeasuredRate("player", "server")
	if frames < 20 || fps < 30 || fps > 50 {
		t.Errorf("measured %0.1f fps over %d frames, want ≈40", fps, frames)
	}
	// Overheads recorded.
	if active.Timing.Composition <= 0 || active.Timing.Distribution <= 0 {
		t.Errorf("timing = %+v", active.Timing)
	}
	if active.Timing.Downloading <= 0 {
		t.Error("components were not pre-installed; downloading must cost time")
	}
	if f.c.Sessions() != 1 || f.c.Session("audio-1") != active {
		t.Error("session bookkeeping wrong")
	}
	if got := f.c.SessionIDs(); len(got) != 1 || got[0] != "audio-1" {
		t.Errorf("SessionIDs = %v", got)
	}
}

func TestConfigurePreinstalledSkipsDownload(t *testing.T) {
	f := newFixture(t)
	f.repo.MarkInstalled("desktop1", "audio-server-1")
	f.repo.MarkInstalled("desktop1", "mp3-player-1")
	active, err := f.c.Configure(Request{
		SessionID:    "audio-1",
		App:          audioApp(),
		ClientDevice: "desktop1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.c.Stop("audio-1")
	if active.Timing.Downloading != 0 {
		t.Errorf("downloading = %v, want 0 for pre-installed components", active.Timing.Downloading)
	}
}

func TestConfigureDuplicateSession(t *testing.T) {
	f := newFixture(t)
	if _, err := f.c.Configure(Request{SessionID: "s", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	defer f.c.Stop("s")
	if _, err := f.c.Configure(Request{SessionID: "s", App: audioApp(), ClientDevice: "desktop1"}); err == nil {
		t.Error("duplicate session should fail")
	}
	if _, err := f.c.Configure(Request{App: audioApp()}); err == nil {
		t.Error("empty session ID should fail")
	}
}

func TestStopReleasesResources(t *testing.T) {
	f := newFixture(t)
	before := f.dsk.Available()
	if _, err := f.c.Configure(Request{SessionID: "s", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	if f.dsk.Available().Equal(before) {
		t.Fatal("expected admission on desktop")
	}
	if err := f.c.Stop("s"); err != nil {
		t.Fatal(err)
	}
	if !f.dsk.Available().Equal(before) {
		t.Errorf("resources not released: %v vs %v", f.dsk.Available(), before)
	}
	if err := f.c.Stop("s"); err == nil {
		t.Error("double stop should fail")
	}
	if f.c.Sessions() != 0 {
		t.Error("session not removed")
	}
}

func TestReconfigureHandoffToPDA(t *testing.T) {
	// The paper's event 2: switch from desktop to PDA; the new graph gains
	// an MP3→WAV transcoder, playback resumes from the interruption point,
	// and the handoff cost is recorded.
	f := newFixture(t)
	if _, err := f.c.Configure(Request{
		SessionID:    "audio-1",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 44))),
		ClientDevice: "desktop1",
	}); err != nil {
		t.Fatal(err)
	}
	// Let some frames play so the interruption point advances.
	time.Sleep(time.Duration(float64(2*time.Second) * testScale))
	posBefore := f.c.Session("audio-1").Runtime.Position()
	if posBefore == 0 {
		t.Fatal("no frames played before handoff")
	}

	active, err := f.c.Reconfigure(Request{
		SessionID:    "audio-1",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 44))),
		ClientDevice: "pda1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.c.Stop("audio-1")

	if len(active.Report.Transcoders) != 1 {
		t.Errorf("transcoders = %v, want MP3→WAV inserted", active.Report.Transcoders)
	}
	if active.Placement["player"] != "pda1" {
		t.Errorf("player on %s, want pda1", active.Placement["player"])
	}
	if active.Timing.InitOrHandoff <= 0 {
		t.Error("handoff time not recorded")
	}
	// Music continues from the interruption point.
	time.Sleep(time.Duration(float64(2*time.Second) * testScale))
	if pos := active.Runtime.Position(); pos <= posBefore {
		t.Errorf("position %d did not advance past interruption point %d", pos, posBefore)
	}
}

func TestReconfigureUnknownSession(t *testing.T) {
	f := newFixture(t)
	if _, err := f.c.Reconfigure(Request{SessionID: "ghost", App: audioApp()}); err == nil {
		t.Error("unknown session should fail")
	}
}

func TestConfigureFailsWhenNoDeviceFits(t *testing.T) {
	f := newFixture(t)
	// Exhaust the desktop so nothing can host the 64MB server.
	if err := f.dsk.Admit(resource.MB(250, 295)); err != nil {
		t.Fatal(err)
	}
	_, err := f.c.Configure(Request{SessionID: "s", App: audioApp(), ClientDevice: "pda1"})
	if err == nil {
		t.Fatal("expected distribution failure")
	}
	if !strings.Contains(err.Error(), "distribution") && !strings.Contains(err.Error(), "composition") {
		t.Errorf("err = %v", err)
	}
	if f.c.Sessions() != 0 {
		t.Error("failed configure must not leave sessions")
	}
}

func TestConfigureMissingServiceNotifiesUser(t *testing.T) {
	f := newFixture(t)
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "x", Spec: registry.Spec{Type: "holo-projector"}})
	_, err := f.c.Configure(Request{SessionID: "s", App: ag, ClientDevice: "desktop1"})
	if err == nil || !strings.Contains(err.Error(), "holo-projector") {
		t.Errorf("err = %v, want missing-service notification", err)
	}
}

func TestFirstFrameBuffering(t *testing.T) {
	f := newFixture(t)
	if _, err := f.c.Configure(Request{
		SessionID:    "s",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(20, 40))),
		ClientDevice: "desktop1",
	}); err != nil {
		t.Fatal(err)
	}
	active, err := f.c.Reconfigure(Request{
		SessionID:    "s",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(20, 40))),
		ClientDevice: "desktop1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.c.Stop("s")
	// Same portal: no state transfer, but first-frame buffering at ≥20fps
	// means up to 50ms.
	if active.Timing.InitOrHandoff <= 0 || active.Timing.InitOrHandoff > 60*time.Millisecond {
		t.Errorf("InitOrHandoff = %v, want ≈1/20s buffering", active.Timing.InitOrHandoff)
	}
}
