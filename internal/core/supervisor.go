package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ubiqos/internal/composer"
	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/explain"
	"ubiqos/internal/graph"
	"ubiqos/internal/metrics"
	"ubiqos/internal/obslog"
	"ubiqos/internal/trace"
)

// SupervisorOptions tunes the recovery supervisor.
type SupervisorOptions struct {
	// Bus is the domain's event service; the supervisor subscribes
	// losslessly to device.left, resource.changed, and device.switched.
	Bus *eventbus.Bus
	// BaseBackoff is the delay before the first retry (default 10ms);
	// subsequent retries double it up to MaxBackoff (default 1s), with
	// seeded jitter on top.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Deadline bounds how long a session may stay broken before recovery
	// degrades it: past the deadline (default 500ms), attempts shed
	// optional components and fall back from the configured placement
	// algorithm to the greedy heuristic.
	Deadline time.Duration
	// DegradeAfter is the attempt count that also triggers degraded mode
	// (default 2), so a session whose full-quality re-placement keeps
	// failing stops burning retries on it even before the deadline.
	DegradeAfter int
	// MaxAttempts is the per-session give-up threshold (default 6). A
	// session still unplaceable after MaxAttempts is stopped, its
	// checkpoint discarded, and the user notified.
	MaxAttempts int
	// InitialDelay postpones a newly queued task's first recovery
	// attempt (default 0 = attempt immediately). It damps recovery on
	// flapping devices and lets chaos drills model operator-scale
	// repair times instead of sub-millisecond heals.
	InitialDelay time.Duration
	// Seed makes the retry jitter deterministic for reproducible
	// experiments.
	Seed int64
}

func (o *SupervisorOptions) defaults() {
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.Deadline <= 0 {
		o.Deadline = 500 * time.Millisecond
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
}

// SupervisorStats is a snapshot of the supervisor's lifetime counters.
type SupervisorStats struct {
	// Attempts counts recovery pipeline runs (initial tries and retries).
	Attempts int64
	// Retries counts re-queued attempts after a failure.
	Retries int64
	// Recovered counts sessions brought back to a running state.
	Recovered int64
	// Degraded counts recoveries that had to shed optional components or
	// fall back to heuristic placement.
	Degraded int64
	// Restored counts degraded→restored transitions: sessions previously
	// recovered on the degraded path that a later full-QoS recovery
	// brought back to their original request (optionals re-placed,
	// exact placement restored).
	Restored int64
	// Lost counts sessions given up on (portal gone, or MaxAttempts
	// exhausted).
	Lost int64
}

// recoveryTask tracks one broken session through its retry schedule.
type recoveryTask struct {
	sessionID string
	// req is the session's configuration request, captured when the fault
	// was detected: a failed recovery attempt tears the session down, so
	// later retries cannot re-read it from the configurator.
	req Request
	// dev is the device whose fault stranded the session (for notices).
	dev       device.ID
	reason    string
	attempts  int
	degraded  bool
	firstSeen time.Time
	due       time.Time
	// incumbent is the broken session's last committed placement and
	// cost, captured at enqueue time to warm-start the re-solve:
	// full-quality attempts seed the branch-and-bound from it so only the
	// lost device's components are genuinely re-searched.
	incumbent *distributor.Incumbent
	// prevExplored is the explored-node count of the solve that produced
	// the incumbent, for the warm-speedup gauge.
	prevExplored int64
}

// Supervisor is the self-healing loop of the configuration model: it
// subscribes losslessly to runtime-change events and re-runs the
// compose→distribute pipeline for every session the change broke, with
// capped exponential backoff between attempts, a degradation ladder
// (shed optional components, heuristic placement) once the recovery
// deadline is blown, and a bounded give-up that notifies the user — the
// paper's "whenever some significant changes are detected during runtime,
// the service configuration protocol is re-executed", made crash-safe.
type Supervisor struct {
	c    *Configurator
	opts SupervisorOptions
	sub  *eventbus.Subscription

	mu    sync.Mutex
	rng   *rand.Rand
	tasks map[string]*recoveryTask
	busy  bool
	stats SupervisorStats
	// degraded remembers, per session recovered on the degraded path,
	// the original full-quality request (captured before optionals were
	// shed), so a later recovery can try to restore the session — and so
	// the restoration can be detected and counted when it succeeds.
	degraded map[string]Request

	stopOnce sync.Once
	stopped  chan struct{}
	exited   chan struct{}
}

// NewSupervisor starts a recovery supervisor over the configurator. Stop
// it with Stop; it also exits when the bus closes.
func NewSupervisor(c *Configurator, opts SupervisorOptions) (*Supervisor, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil configurator")
	}
	if opts.Bus == nil {
		return nil, fmt.Errorf("core: supervisor needs an event bus")
	}
	opts.defaults()
	sub, err := opts.Bus.SubscribeLossless(
		eventbus.TopicDeviceLeft,
		eventbus.TopicResourceChanged,
		eventbus.TopicDeviceSwitched,
	)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		c:        c,
		opts:     opts,
		sub:      sub,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		tasks:    make(map[string]*recoveryTask),
		degraded: make(map[string]Request),
		stopped:  make(chan struct{}),
		exited:   make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// Stop cancels the subscription and waits for the worker to exit. Pending
// recovery tasks are abandoned (their sessions keep whatever state they
// had). Stop is idempotent.
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopped)
		s.sub.Cancel()
	})
	<-s.exited
}

// Stats returns a snapshot of the lifetime counters.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Backlog returns the number of sessions currently awaiting recovery.
func (s *Supervisor) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tasks)
}

// AwaitIdle blocks until the supervisor has no queued events and no
// pending recovery tasks (i.e. the smart space is quiescent again), or
// until the timeout elapses. It reports whether idleness was reached.
func (s *Supervisor) AwaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	quiet := 0
	for time.Now().Before(deadline) {
		s.mu.Lock()
		idle := len(s.tasks) == 0 && !s.busy
		s.mu.Unlock()
		if idle && s.sub.Pending() == 0 {
			// A momentary zero can hide an event mid-handoff in the bus
			// pump; require two consecutive quiet polls.
			quiet++
			if quiet >= 2 {
				return true
			}
		} else {
			quiet = 0
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// run is the worker loop: wake on a bus event (scan for broken sessions)
// or on the next retry deadline (process due tasks).
func (s *Supervisor) run() {
	defer close(s.exited)
	for {
		var timer *time.Timer
		var timerC <-chan time.Time
		if due, ok := s.nextDue(); ok {
			d := time.Until(due)
			if d < 0 {
				d = 0
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case ev, ok := <-s.sub.C():
			if timer != nil {
				timer.Stop()
			}
			if !ok {
				return
			}
			s.setBusy(true)
			s.scan(ev.Time)
			s.process()
			s.setBusy(false)
		case <-timerC:
			s.setBusy(true)
			s.process()
			s.setBusy(false)
		case <-s.stopped:
			if timer != nil {
				timer.Stop()
			}
			return
		}
	}
}

func (s *Supervisor) setBusy(b bool) {
	s.mu.Lock()
	s.busy = b
	s.mu.Unlock()
}

func (s *Supervisor) nextDue() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var min time.Time
	found := false
	for _, t := range s.tasks {
		if !found || t.due.Before(min) {
			min = t.due
			found = true
		}
	}
	return min, found
}

// scan walks every active session and queues a recovery task for each one
// the current environment can no longer support. The event payload is
// deliberately ignored: health is re-derived from the device and link
// tables, so a burst of coalesced events costs one scan.
func (s *Supervisor) scan(at time.Time) {
	for _, sid := range s.c.SessionIDs() {
		active := s.c.Session(sid)
		if active == nil {
			continue
		}
		dev, reason, broken := s.diagnose(active)
		if !broken {
			continue
		}
		s.enqueue(sid, active.Request, dev, reason, at)
	}
	s.gauge()
}

// diagnose reports whether the session's current placement is still
// supportable: every hosting device up and within capacity, every
// reserved link within its (possibly degraded) bandwidth.
func (s *Supervisor) diagnose(active *ActiveSession) (device.ID, string, bool) {
	seen := map[device.ID]bool{}
	for _, dev := range active.Placement {
		if seen[dev] {
			continue
		}
		seen[dev] = true
		d := s.c.cfg.Devices.Get(dev)
		if d == nil || !d.Up() {
			return dev, "component host left the smart space", true
		}
		if !d.Committed().LessEq(d.Capacity()) {
			return dev, "component host overcommitted after fluctuation", true
		}
	}
	for pair := range active.demands {
		const eps = 1e-9
		if s.c.cfg.Links.Reserved(pair[0], pair[1]) > s.c.cfg.Links.Capacity(pair[0], pair[1])+eps {
			return pair[0], fmt.Sprintf("link %s-%s overcommitted after degradation", pair[0], pair[1]), true
		}
	}
	return "", "", false
}

func (s *Supervisor) enqueue(sid string, req Request, dev device.ID, reason string, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tasks[sid]; ok {
		// Already being recovered; refresh the trigger but keep the
		// attempt counter and schedule.
		t.dev, t.reason = dev, reason
		return
	}
	// A session recovered degraded carries a shed request; recover from
	// the remembered original instead, so a healthier space restores the
	// optionals rather than cementing the degraded shape.
	restoring := false
	if orig, ok := s.degraded[sid]; ok {
		req = orig
		restoring = true
	}
	task := &recoveryTask{
		sessionID: sid,
		req:       req,
		dev:       dev,
		reason:    reason,
		firstSeen: at,
		due:       time.Now().Add(s.opts.InitialDelay),
	}
	// The warm-start incumbent only helps when it covers the same graph;
	// a restoration re-solves the full (un-shed) graph cold.
	if active := s.c.Session(sid); active != nil && len(active.Placement) > 0 && !restoring {
		placement := make(map[graph.NodeID]device.ID, len(active.Placement))
		for id, d := range active.Placement {
			placement[id] = d
		}
		task.incumbent = &distributor.Incumbent{Placement: placement, Cost: active.Cost}
		task.prevExplored = active.SearchExplored
	}
	s.tasks[sid] = task
	s.c.cfg.Ledger.RecordBroken(sid, reason)
	s.logFor(sid, req).Warn("recovery queued",
		obslog.String("reason", reason), obslog.String("device", string(dev)))
}

// logFor returns the supervisor's logger bound to a session and its
// propagated trace ID.
func (s *Supervisor) logFor(sid string, req Request) *obslog.Logger {
	return s.c.cfg.Log.Named("core.supervisor").ForSession(sid, req.TraceCtx.TraceID)
}

// process runs every due recovery task once.
func (s *Supervisor) process() {
	now := time.Now()
	s.mu.Lock()
	var due []*recoveryTask
	for _, t := range s.tasks {
		if !t.due.After(now) {
			due = append(due, t)
		}
	}
	s.mu.Unlock()
	for _, t := range due {
		s.attempt(t)
	}
	s.gauge()
}

// attempt runs one recovery for the task, deciding between full-quality
// and degraded re-placement, and either finishes the task or re-queues it
// with backoff.
func (s *Supervisor) attempt(t *recoveryTask) {
	// Re-check health: an inline recovery (e.g. the domain's synchronous
	// crash handling) may have fixed the session while the task waited.
	if active := s.c.Session(t.sessionID); active != nil {
		if _, _, broken := s.diagnose(active); !broken {
			s.finish(t.sessionID)
			return
		}
	}
	// A lost portal cannot be healed by re-placement: only the user can
	// pick a new portal device.
	if d := s.c.cfg.Devices.Get(t.req.ClientDevice); d == nil || !d.Up() {
		s.giveUp(t, "portal device left the smart space")
		return
	}

	degraded := t.attempts >= s.opts.DegradeAfter || time.Since(t.firstSeen) > s.opts.Deadline
	req := t.req
	var shed []string
	fallback := ""
	warm := false
	if degraded {
		req.Place = distributor.Heuristic
		fallback = "heuristic"
		for _, n := range req.App.Nodes() {
			if n.Optional {
				shed = append(shed, string(n.ID))
			}
		}
		sort.Strings(shed)
		req.App = shedOptional(req.App)
		t.degraded = true
	} else if t.incumbent != nil {
		// Full-quality rung: warm-start the exact solver from the broken
		// session's last placement, so only the components stranded by the
		// fault are genuinely re-searched. The heuristic fallback above
		// takes over once the deadline or attempt budget is blown.
		inc := t.incumbent
		req.Place = func(p *distributor.Problem) (distributor.Assignment, float64, error) {
			return distributor.OptimalWarm(p, inc)
		}
		fallback = "optimal-warm"
		warm = true
	}

	log := s.logFor(t.sessionID, t.req)
	tr := s.c.cfg.Tracer.StartCtx(t.req.TraceCtx, "recover", t.sessionID,
		trace.Int("attempt", int64(t.attempts+1)),
		trace.Bool("degraded", degraded),
		trace.String("reason", t.reason))
	s.count(func(st *SupervisorStats) { st.Attempts++ }, metrics.RecoveryAttempts)
	log.Info("recovery attempt",
		obslog.Int("attempt", int64(t.attempts+1)),
		obslog.Bool("degraded", degraded),
		obslog.String("reason", t.reason))
	_, err := s.c.Recover(req)
	tr.Root().SetErr(err)
	tr.Finish()
	s.c.cfg.Flight.RecordTrace(tr.Export())

	if err == nil {
		s.count(func(st *SupervisorStats) { st.Recovered++ }, metrics.SessionsRecovered)
		restored := false
		if degraded {
			s.count(func(st *SupervisorStats) { st.Degraded++ }, metrics.RecoveriesDegraded)
			s.mu.Lock()
			s.degraded[t.sessionID] = t.req
			s.mu.Unlock()
		} else {
			// A full-quality recovery of a session previously recovered
			// degraded is a restoration: the original request (optionals
			// included) is running again.
			s.mu.Lock()
			_, restored = s.degraded[t.sessionID]
			delete(s.degraded, t.sessionID)
			s.mu.Unlock()
			if restored {
				s.count(func(st *SupervisorStats) { st.Restored++ }, metrics.SessionsRestored)
			}
		}
		s.c.cfg.Ledger.RecordRecovered(t.sessionID, time.Since(t.firstSeen), degraded, shed, fallback)
		var seedCost float64
		if warm {
			seedCost = t.incumbent.Cost
		}
		if m := s.c.cfg.Metrics; m != nil {
			m.Histogram(metrics.RecoveryLatency).Observe(time.Since(t.firstSeen))
			if warm && t.prevExplored > 0 {
				if active := s.c.Session(t.sessionID); active != nil && active.SearchExplored > 0 {
					m.Gauge(metrics.WarmSpeedup).Set(float64(t.prevExplored) / float64(active.SearchExplored))
				}
			}
		}
		log.Info("session recovered",
			obslog.Bool("degraded", degraded),
			obslog.Bool("warm", warm),
			obslog.Duration("downMs", time.Since(t.firstSeen)))
		if restored {
			log.Info("session restored to full QoS")
		}
		s.recordLadder(t.sessionID, tr.Context().TraceID, explain.LadderStep{
			Attempt: t.attempts + 1, Reason: t.reason, Degraded: degraded,
			Shed: shed, PlacementFallback: fallback, Outcome: "recovered",
			Warm: warm, SeedCost: seedCost, Restored: restored,
		})
		s.finish(t.sessionID)
		s.opts.Bus.Publish(eventbus.TopicSessionRecovered, t.sessionID)
		if restored {
			s.opts.Bus.Publish(eventbus.TopicSessionRestored, t.sessionID)
		}
		return
	}

	t.attempts++
	if t.attempts >= s.opts.MaxAttempts {
		s.giveUp(t, fmt.Sprintf("no feasible placement after %d attempts: %v", t.attempts, err))
		return
	}
	backoff := s.backoff(t.attempts)
	t.due = time.Now().Add(backoff)
	s.count(func(st *SupervisorStats) { st.Retries++ }, metrics.RecoveryRetries)
	log.Warn("recovery retry scheduled",
		obslog.Int("attempt", int64(t.attempts)),
		obslog.Duration("backoffMs", backoff),
		obslog.Err(err))
	s.recordLadder(t.sessionID, tr.Context().TraceID, explain.LadderStep{
		Attempt: t.attempts, Reason: t.reason, Degraded: degraded,
		Shed: shed, PlacementFallback: fallback, Outcome: "retry",
		Warm:      warm,
		BackoffMs: float64(backoff) / float64(time.Millisecond),
		Detail:    err.Error(),
	})
}

// recordLadder publishes one recovery-ladder decision on the session's
// provenance timeline.
func (s *Supervisor) recordLadder(sid, traceID string, step explain.LadderStep) {
	if s.c.cfg.Explain == nil {
		return
	}
	s.c.cfg.Explain.Record(explain.Record{
		Session: sid,
		TraceID: traceID,
		Action:  explain.ActionRecoveryStep,
		Ladder:  &step,
	})
}

// backoff returns base·2^(attempt-1) capped at MaxBackoff, plus up to 50%
// seeded jitter so a burst of broken sessions does not retry in lockstep.
func (s *Supervisor) backoff(attempt int) time.Duration {
	d := s.opts.BaseBackoff
	for i := 1; i < attempt && d < s.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.opts.MaxBackoff {
		d = s.opts.MaxBackoff
	}
	s.mu.Lock()
	jitter := time.Duration(s.rng.Int63n(int64(d)/2 + 1))
	s.mu.Unlock()
	return d + jitter
}

// giveUp abandons the session: whatever is left of it is stopped, its
// checkpoint discarded, and the user notified that intervention is needed.
func (s *Supervisor) giveUp(t *recoveryTask, reason string) {
	// Settle the ledger before Stop: Stop's RecordStopped hook would
	// otherwise finalize the session as completed and the lost verdict
	// would land on an already-folded record.
	s.c.cfg.Ledger.RecordLost(t.sessionID, reason)
	if s.c.Session(t.sessionID) != nil {
		_ = s.c.Stop(t.sessionID)
	} else {
		s.c.Discard(t.sessionID)
	}
	s.finish(t.sessionID)
	s.mu.Lock()
	delete(s.degraded, t.sessionID)
	s.mu.Unlock()
	s.count(func(st *SupervisorStats) { st.Lost++ }, metrics.SessionsLost)
	s.logFor(t.sessionID, t.req).Error("session lost", obslog.String("reason", reason))
	s.recordLadder(t.sessionID, t.req.TraceCtx.TraceID, explain.LadderStep{
		Attempt: t.attempts, Reason: t.reason, Degraded: t.degraded,
		Outcome: "lost", Detail: reason,
	})
	s.opts.Bus.Publish(eventbus.TopicUserNotification, SessionLostNotice{
		SessionID: t.sessionID,
		Device:    t.dev,
		Reason:    reason,
	})
}

func (s *Supervisor) finish(sid string) {
	s.mu.Lock()
	delete(s.tasks, sid)
	s.mu.Unlock()
}

func (s *Supervisor) count(apply func(*SupervisorStats), counter string) {
	s.mu.Lock()
	apply(&s.stats)
	s.mu.Unlock()
	if m := s.c.cfg.Metrics; m != nil {
		m.Counter(counter).Inc()
	}
}

func (s *Supervisor) gauge() {
	if m := s.c.cfg.Metrics; m != nil {
		m.Gauge(metrics.RecoveryBacklog).Set(float64(s.Backlog()))
	}
}

// shedOptional strips optional services (and their edges) from an
// abstract graph — the degraded-mode trade: keep the mandatory pipeline
// alive rather than fail to place the enhanced one.
func shedOptional(app *composer.AbstractGraph) *composer.AbstractGraph {
	if app == nil {
		return nil
	}
	drop := make(map[graph.NodeID]bool)
	for _, n := range app.Nodes() {
		if n.Optional {
			drop[n.ID] = true
		}
	}
	if len(drop) == 0 {
		return app
	}
	out := composer.NewAbstractGraph()
	for _, n := range app.Nodes() {
		if n.Optional {
			continue
		}
		cp := *n
		out.MustAddNode(&cp)
	}
	for _, e := range app.Edges() {
		if drop[e.From] || drop[e.To] {
			continue
		}
		out.MustAddEdge(e.From, e.To, e.ThroughputMbps)
	}
	return out
}
