package core

import (
	"testing"
	"time"

	"ubiqos/internal/composer"
	"ubiqos/internal/device"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/metrics"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/repository"
	"ubiqos/internal/resource"
)

// superFixture is the configurator fixture plus an event bus, a metrics
// registry, and a second desktop so a crashed host has somewhere to fail
// over to.
type superFixture struct {
	*fixture
	bus  *eventbus.Bus
	met  *metrics.Registry
	dsk2 *device.Device
}

func newSuperFixture(t *testing.T) *superFixture {
	t.Helper()
	f := newFixture(t)
	met := metrics.NewRegistry()
	f.cfg.Metrics = met
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.c = c

	dsk2 := device.MustNew("desktop2", device.ClassDesktop, resource.MB(256, 300), map[string]string{"platform": "pc"})
	if err := f.cfg.Devices.Add(dsk2); err != nil {
		t.Fatal(err)
	}
	f.net.MustSetLink("desktop1", "desktop2", netsim.Ethernet)
	f.net.MustSetLink("desktop2", "pda1", netsim.WLAN)
	f.net.MustSetLink("repo-host", "desktop2", netsim.Ethernet)
	f.cfg.Links.MustSet("desktop1", "desktop2", 100)
	f.cfg.Links.MustSet("desktop2", "pda1", 5)

	bus := eventbus.New()
	t.Cleanup(bus.Close)
	return &superFixture{fixture: f, bus: bus, met: met, dsk2: dsk2}
}

// fastOpts keeps supervisor tests quick: millisecond backoffs, a few
// attempts.
func fastOpts(bus *eventbus.Bus) SupervisorOptions {
	return SupervisorOptions{
		Bus:         bus,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Deadline:    300 * time.Millisecond,
		MaxAttempts: 4,
		Seed:        42,
	}
}

// pdaRequest is the transcoded audio session used throughout: player
// pinned to the PDA, server and transcoder on a desktop.
func pdaRequest(id string) Request {
	return Request{
		SessionID:    id,
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "pda1",
	}
}

func TestSupervisorRecoversAfterDeviceCrash(t *testing.T) {
	f := newSuperFixture(t)
	sup, err := NewSupervisor(f.c, fastOpts(f.bus))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	if _, err := f.c.Configure(pdaRequest("a1")); err != nil {
		t.Fatal(err)
	}
	serverDev := f.c.Session("a1").Placement["server"]
	if serverDev == "pda1" {
		t.Fatal("server unexpectedly on the PDA")
	}

	// Crash the hosting desktop: publish-only, as the fault injector does.
	f.cfg.Devices.Get(serverDev).SetUp(false)
	f.bus.Publish(eventbus.TopicDeviceLeft, string(serverDev))

	if !sup.AwaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not settle")
	}
	active := f.c.Session("a1")
	if active == nil {
		t.Fatal("session lost; want recovered")
	}
	for node, dev := range active.Placement {
		if dev == serverDev {
			t.Errorf("component %s still bound to dead device %s", node, dev)
		}
	}
	st := sup.Stats()
	if st.Recovered != 1 || st.Lost != 0 {
		t.Errorf("stats = %+v", st)
	}
	if v := f.met.Counter(metrics.SessionsRecovered).Value(); v != 1 {
		t.Errorf("%s = %d", metrics.SessionsRecovered, v)
	}
	if n := f.met.Histogram(metrics.RecoveryLatency).Count(); n != 1 {
		t.Errorf("recovery latency observations = %d", n)
	}
}

func TestSupervisorRecoveredEventFires(t *testing.T) {
	f := newSuperFixture(t)
	sub, err := f.bus.Subscribe(eventbus.TopicSessionRecovered)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(f.c, fastOpts(f.bus))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	if _, err := f.c.Configure(pdaRequest("a1")); err != nil {
		t.Fatal(err)
	}
	serverDev := f.c.Session("a1").Placement["server"]
	f.cfg.Devices.Get(serverDev).SetUp(false)
	f.bus.Publish(eventbus.TopicDeviceLeft, string(serverDev))

	select {
	case ev := <-sub.C():
		if ev.Payload.(string) != "a1" {
			t.Errorf("recovered payload = %v", ev.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no session.recovered event")
	}
}

func TestSupervisorGivesUpWhenNoPlacementExists(t *testing.T) {
	f := newSuperFixture(t)
	notices, err := f.bus.Subscribe(eventbus.TopicUserNotification)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(f.c, fastOpts(f.bus))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	if _, err := f.c.Configure(pdaRequest("a1")); err != nil {
		t.Fatal(err)
	}
	// Kill BOTH desktops: the PDA cannot host the server, so no feasible
	// placement remains anywhere on the degradation ladder.
	for _, id := range []device.ID{"desktop1", "desktop2"} {
		f.cfg.Devices.Get(id).SetUp(false)
		f.bus.Publish(eventbus.TopicDeviceLeft, string(id))
	}

	if !sup.AwaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not settle")
	}
	if f.c.Session("a1") != nil {
		t.Error("unplaceable session still active")
	}
	st := sup.Stats()
	if st.Lost != 1 || st.Recovered != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Retries == 0 {
		t.Error("give-up without any backed-off retries")
	}
	select {
	case ev := <-notices.C():
		notice, ok := ev.Payload.(SessionLostNotice)
		if !ok || notice.SessionID != "a1" {
			t.Errorf("notice = %+v", ev.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("no user notification for the lost session")
	}
	// The checkpoint was discarded with the session: a later Configure of
	// the same ID starts fresh instead of resuming.
	if _, ok := f.cfg.Checkpoints.Load("a1"); ok {
		t.Error("orphaned checkpoint survived give-up")
	}
}

func TestSupervisorPortalLossGivesUpImmediately(t *testing.T) {
	f := newSuperFixture(t)
	notices, err := f.bus.Subscribe(eventbus.TopicUserNotification)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(f.c, fastOpts(f.bus))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	if _, err := f.c.Configure(pdaRequest("a1")); err != nil {
		t.Fatal(err)
	}
	f.pda.SetUp(false)
	f.bus.Publish(eventbus.TopicDeviceLeft, "pda1")

	if !sup.AwaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not settle")
	}
	st := sup.Stats()
	if st.Lost != 1 || st.Attempts != 0 {
		t.Errorf("stats = %+v; portal loss should not burn recovery attempts", st)
	}
	select {
	case ev := <-notices.C():
		notice := ev.Payload.(SessionLostNotice)
		if notice.SessionID != "a1" || notice.Device != "pda1" {
			t.Errorf("notice = %+v", notice)
		}
	case <-time.After(time.Second):
		t.Fatal("no user notification")
	}
}

func TestSupervisorDegradedRecoveryShedsOptional(t *testing.T) {
	f := newSuperFixture(t)
	f.reg.MustRegister(&registry.Instance{
		Name:      "visualizer-1",
		Type:      "audio-visualizer",
		Attrs:     map[string]string{"platform": "pc"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Range(5, 60))),
		Resources: resource.MB(16, 20),
		SizeMB:    1,
	})
	f.repo.MustPublish(repository.Package{Name: "visualizer-1", SizeMB: 1})

	opts := fastOpts(f.bus)
	// An already-blown deadline forces the very first recovery attempt
	// into degraded mode.
	opts.Deadline = time.Nanosecond
	sup, err := NewSupervisor(f.c, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	app := audioApp()
	app.MustAddNode(&composer.AbstractNode{
		ID:       "viz",
		Spec:     registry.Spec{Type: "audio-visualizer"},
		Optional: true,
	})
	app.MustAddEdge("server", "viz", 0.5)
	req := pdaRequest("a1")
	req.App = app
	if _, err := f.c.Configure(req); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.c.Session("a1").Placement["viz"]; !ok {
		t.Fatal("optional visualizer not placed at full quality")
	}
	serverDev := f.c.Session("a1").Placement["server"]

	f.cfg.Devices.Get(serverDev).SetUp(false)
	f.bus.Publish(eventbus.TopicDeviceLeft, string(serverDev))

	if !sup.AwaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not settle")
	}
	active := f.c.Session("a1")
	if active == nil {
		t.Fatal("session lost; want degraded recovery")
	}
	if _, ok := active.Placement["viz"]; ok {
		t.Error("degraded recovery kept the optional visualizer")
	}
	st := sup.Stats()
	if st.Degraded != 1 || st.Recovered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSupervisorIgnoresHealthySessions(t *testing.T) {
	f := newSuperFixture(t)
	sup, err := NewSupervisor(f.c, fastOpts(f.bus))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	if _, err := f.c.Configure(pdaRequest("a1")); err != nil {
		t.Fatal(err)
	}
	before := f.c.Session("a1")
	// A join event (or any fluctuation that breaks nothing) must not
	// trigger reconfiguration churn.
	f.bus.Publish(eventbus.TopicResourceChanged, "desktop2")
	if !sup.AwaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not settle")
	}
	if st := sup.Stats(); st.Attempts != 0 {
		t.Errorf("stats = %+v; healthy session was touched", st)
	}
	if f.c.Session("a1") != before {
		t.Error("session object changed")
	}
}

func TestShedOptional(t *testing.T) {
	if shedOptional(nil) != nil {
		t.Error("nil graph should pass through")
	}
	plain := audioApp()
	if shedOptional(plain) != plain {
		t.Error("graph without optional nodes should be returned unchanged")
	}
	app := audioApp()
	app.MustAddNode(&composer.AbstractNode{ID: "viz", Spec: registry.Spec{Type: "audio-visualizer"}, Optional: true})
	app.MustAddEdge("server", "viz", 0.5)
	shed := shedOptional(app)
	if shed == app {
		t.Fatal("expected a copy")
	}
	if len(shed.Nodes()) != 2 {
		t.Errorf("nodes = %d, want 2", len(shed.Nodes()))
	}
	for _, e := range shed.Edges() {
		if e.To == "viz" || e.From == "viz" {
			t.Errorf("dangling edge %+v", e)
		}
	}
	// The original is untouched.
	if len(app.Nodes()) != 3 {
		t.Error("shedOptional mutated its input")
	}
}

// TestSupervisorRestoredAfterDegradedRecovery drives the full
// degrade-then-restore arc: a crash forces a degraded recovery (the
// optional visualizer is shed), the original host rejoins, a second
// crash re-breaks the session, and the supervisor — remembering the
// original full-quality request — restores it, bumping Restored and
// publishing session.restored.
func TestSupervisorRestoredAfterDegradedRecovery(t *testing.T) {
	f := newFixture(t)
	met := metrics.NewRegistry()
	f.cfg.Metrics = met
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.c = c

	// A second desktop too small for the visualizer: full-quality
	// recovery attempts there must fail, forcing the shed rung.
	dsk2 := device.MustNew("desktop2", device.ClassDesktop, resource.MB(100, 100), map[string]string{"platform": "pc"})
	if err := f.cfg.Devices.Add(dsk2); err != nil {
		t.Fatal(err)
	}
	f.net.MustSetLink("desktop1", "desktop2", netsim.Ethernet)
	f.net.MustSetLink("desktop2", "pda1", netsim.WLAN)
	f.net.MustSetLink("repo-host", "desktop2", netsim.Ethernet)
	f.cfg.Links.MustSet("desktop1", "desktop2", 100)
	f.cfg.Links.MustSet("desktop2", "pda1", 5)

	// The optional visualizer only fits on desktop1 (256MB/300%).
	f.reg.MustRegister(&registry.Instance{
		Name:      "visualizer-1",
		Type:      "audio-visualizer",
		Attrs:     map[string]string{"platform": "pc"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Range(5, 60))),
		Resources: resource.MB(150, 200),
		SizeMB:    1,
	})
	f.repo.MustPublish(repository.Package{Name: "visualizer-1", SizeMB: 1})

	bus := eventbus.New()
	t.Cleanup(bus.Close)
	sup, err := NewSupervisor(f.c, fastOpts(bus))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	app := audioApp()
	app.MustAddNode(&composer.AbstractNode{
		ID:       "viz",
		Spec:     registry.Spec{Type: "audio-visualizer"},
		Optional: true,
	})
	app.MustAddEdge("server", "viz", 0.5)
	req := pdaRequest("a1")
	req.App = app
	if _, err := f.c.Configure(req); err != nil {
		t.Fatal(err)
	}
	if dev, ok := f.c.Session("a1").Placement["viz"]; !ok || dev != "desktop1" {
		t.Fatalf("visualizer placed on %q (ok=%v), want desktop1", dev, ok)
	}

	// Crash desktop1: the visualizer has nowhere to go, so attempts at
	// full quality fail and the recovery lands degraded on desktop2.
	f.dsk.SetUp(false)
	bus.Publish(eventbus.TopicDeviceLeft, "desktop1")
	if !sup.AwaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not settle after first crash")
	}
	if st := sup.Stats(); st.Degraded != 1 || st.Recovered != 1 || st.Restored != 0 {
		t.Fatalf("after degraded recovery: stats = %+v", st)
	}
	if _, ok := f.c.Session("a1").Placement["viz"]; ok {
		t.Fatal("degraded recovery kept the optional visualizer")
	}

	restored, err := bus.Subscribe(eventbus.TopicSessionRestored)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Cancel()

	// Desktop1 rejoins; the second crash re-breaks the session and the
	// supervisor retries the remembered original (un-shed) request.
	f.dsk.SetUp(true)
	dsk2.SetUp(false)
	bus.Publish(eventbus.TopicDeviceLeft, "desktop2")
	if !sup.AwaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not settle after second crash")
	}

	st := sup.Stats()
	if st.Restored != 1 {
		t.Fatalf("Restored = %d, want 1 (stats = %+v)", st.Restored, st)
	}
	if st.Recovered != 2 || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}
	active := f.c.Session("a1")
	if active == nil {
		t.Fatal("session lost; want full restoration")
	}
	if dev, ok := active.Placement["viz"]; !ok || dev != "desktop1" {
		t.Fatalf("visualizer on %q (ok=%v) after restoration, want desktop1", dev, ok)
	}
	if v := met.Counter(metrics.SessionsRestored).Value(); v != 1 {
		t.Errorf("%s = %d, want 1", metrics.SessionsRestored, v)
	}
	select {
	case ev := <-restored.C():
		if sid, _ := ev.Payload.(string); sid != "a1" {
			t.Errorf("session.restored payload = %v, want a1", ev.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Error("no session.restored event published")
	}
}
