package core

import (
	"strings"
	"testing"
	"time"

	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/explain"
	"ubiqos/internal/graph"
	"ubiqos/internal/metrics"
)

// TestSupervisorWarmRecovery is the end-to-end warm-start contract: after
// a device crash the supervisor's full-quality rung re-solves from the
// broken session's incumbent, components that did not sit on the dead
// device stay where they were, and the warm path is visible in the
// provenance trail and the metrics registry.
func TestSupervisorWarmRecovery(t *testing.T) {
	f := newSuperFixture(t)
	// The warm rung needs an exact initial solve (so the session carries a
	// real explored-node count for the speedup gauge) and a recorder to
	// audit the decision trail.
	rec := explain.New(explain.Options{})
	f.cfg.Place = distributor.Optimal
	f.cfg.Explain = rec
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.c = c
	sup, err := NewSupervisor(f.c, fastOpts(f.bus))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	if _, err := f.c.Configure(pdaRequest("a1")); err != nil {
		t.Fatal(err)
	}
	initial := f.c.Session("a1")
	if initial.SearchExplored == 0 {
		t.Fatal("exact solve reported zero explored nodes")
	}
	before := make(map[graph.NodeID]device.ID, len(initial.Placement))
	for node, dev := range initial.Placement {
		before[node] = dev
	}
	beforeCost := initial.Cost
	serverDev := before["server"]
	if serverDev == "pda1" {
		t.Fatal("server unexpectedly on the PDA")
	}

	f.cfg.Devices.Get(serverDev).SetUp(false)
	f.bus.Publish(eventbus.TopicDeviceLeft, string(serverDev))

	if !sup.AwaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not settle")
	}
	active := f.c.Session("a1")
	if active == nil {
		t.Fatal("session lost; want recovered")
	}
	for node, dev := range active.Placement {
		if dev == serverDev {
			t.Errorf("component %s still bound to dead device %s", node, dev)
		}
	}
	// The O(change) promise: components that were not on the crashed
	// device must not move.
	for node, dev := range before {
		if dev == serverDev {
			continue
		}
		if got := active.Placement[node]; got != dev {
			t.Errorf("unaffected component %s moved %s → %s during recovery", node, dev, got)
		}
	}

	// Provenance: the ladder step and the recover record both carry the
	// warm-start evidence.
	se := rec.Explain("a1")
	if se == nil {
		t.Fatal("no explain state for the session")
	}
	var ladder *explain.LadderStep
	warmSearch := false
	for i := range se.Records {
		r := &se.Records[i]
		if r.Action == explain.ActionRecoveryStep && r.Ladder != nil {
			ladder = r.Ladder
		}
		for _, att := range r.Attempts {
			if att.Search != nil && att.Search.Warm && att.Search.Reused > 0 {
				warmSearch = true
			}
		}
	}
	if ladder == nil {
		t.Fatal("no recovery-step record with a ladder entry")
	}
	if !ladder.Warm || ladder.PlacementFallback != "optimal-warm" || ladder.Outcome != "recovered" {
		t.Errorf("ladder step %+v, want a warm optimal-warm recovery", ladder)
	}
	if ladder.SeedCost != beforeCost {
		t.Errorf("ladder seed cost %v, want the incumbent cost %v", ladder.SeedCost, beforeCost)
	}
	if !warmSearch {
		t.Error("no recover record with a warm search that reused placements")
	}
	if txt := rec.Render("a1"); !strings.Contains(txt, "warm-started from incumbent cost") {
		t.Errorf("rendered explain lacks the warm-start line:\n%s", txt)
	}

	// Metrics: the warm counter ticked and the speedup gauge compares the
	// incumbent-producing solve with the warm re-solve.
	if v := f.met.Counter(metrics.WarmSolves).Value(); v < 1 {
		t.Errorf("%s = %d, want ≥ 1", metrics.WarmSolves, v)
	}
	if v, ok := f.met.Gauge(metrics.WarmSpeedup).Value(); !ok || v <= 0 {
		t.Errorf("%s = %v (set=%v), want a positive ratio", metrics.WarmSpeedup, v, ok)
	}
}
