package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ubiqos/internal/qos"
)

// audioRequest builds one session request against the shared fixture.
func audioRequest(id string) Request {
	return Request{
		SessionID:    id,
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 45))),
		ClientDevice: "desktop1",
	}
}

// TestConfigureAllConcurrentSessions drives the multi-session path:
// independent sessions configure concurrently through ConfigureAll, the
// shared device bookkeeping stays consistent, and teardown returns the
// smart space to its initial capacity.
func TestConfigureAllConcurrentSessions(t *testing.T) {
	f := newFixture(t)
	f.cfg.Parallelism = 3
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Three audio sessions fit the desktop (3×(64+16)MB ≤ 256MB,
	// 3×(50+30)% ≤ 300%).
	reqs := make([]Request, 3)
	for i := range reqs {
		reqs[i] = audioRequest(fmt.Sprintf("audio-%d", i))
	}
	sessions, errs := c.ConfigureAll(reqs)
	if len(sessions) != len(reqs) || len(errs) != len(reqs) {
		t.Fatalf("result lengths %d/%d, want %d", len(sessions), len(errs), len(reqs))
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if sessions[i] == nil || sessions[i].ID != reqs[i].SessionID {
			t.Fatalf("request %d: session = %+v", i, sessions[i])
		}
	}
	if got := c.Sessions(); got != 3 {
		t.Fatalf("Sessions() = %d, want 3", got)
	}

	// Device accounting: the desktop must carry exactly the sum of the
	// three sessions' loads.
	want := f.dsk.Capacity().Clone()
	for _, s := range sessions {
		for i, id := range s.devIDs {
			if id == "desktop1" {
				want = want.Sub(s.loads[i])
			}
		}
	}
	if got := f.dsk.Available(); !got.Equal(want) {
		t.Errorf("desktop available = %s, want %s", got, want)
	}

	// Concurrent teardown restores full capacity.
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := c.Stop(id); err != nil {
				t.Errorf("stop %s: %v", id, err)
			}
		}(s.ID)
	}
	wg.Wait()
	if got := c.Sessions(); got != 0 {
		t.Errorf("Sessions() after teardown = %d", got)
	}
	if got := f.dsk.Available(); !got.Equal(f.dsk.Capacity()) {
		t.Errorf("desktop not fully released: %s != %s", got, f.dsk.Capacity())
	}
}

// TestConfigureDuplicateIDRace reserves the session ID before the pipeline
// runs: of many concurrent Configure calls for one ID exactly one wins,
// the rest fail fast, and only one session's resources are admitted.
func TestConfigureDuplicateIDRace(t *testing.T) {
	f := newFixture(t)
	const racers = 8
	var ok, dup atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := f.c.Configure(audioRequest("contested"))
			switch {
			case err == nil:
				ok.Add(1)
			case strings.Contains(err.Error(), "already"):
				dup.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok.Load() != 1 || dup.Load() != racers-1 {
		t.Fatalf("winners = %d, duplicate rejections = %d, want 1 and %d", ok.Load(), dup.Load(), racers-1)
	}
	if f.c.Sessions() != 1 {
		t.Fatalf("Sessions() = %d, want 1", f.c.Sessions())
	}
	if err := f.c.Stop("contested"); err != nil {
		t.Fatal(err)
	}
	if got := f.dsk.Available(); !got.Equal(f.dsk.Capacity()) {
		t.Errorf("desktop not fully released after contested configure: %s != %s", got, f.dsk.Capacity())
	}
}

// TestConfigureAllPartialFailure checks that a batch larger than the smart
// space admits what fits and reports per-request errors for the rest, with
// no double-admission under concurrency.
func TestConfigureAllPartialFailure(t *testing.T) {
	f := newFixture(t)
	f.cfg.Parallelism = 4
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only three fit the desktop; the rest must fail with a distribution
	// or admission error, not corrupt shared state.
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = audioRequest(fmt.Sprintf("burst-%d", i))
	}
	sessions, errs := c.ConfigureAll(reqs)
	okCount := 0
	for i := range reqs {
		if errs[i] == nil {
			okCount++
		} else if sessions[i] != nil {
			t.Errorf("request %d: session returned alongside error %v", i, errs[i])
		}
	}
	if okCount != 3 {
		t.Fatalf("admitted %d sessions, want 3", okCount)
	}
	if c.Sessions() != okCount {
		t.Fatalf("Sessions() = %d, want %d", c.Sessions(), okCount)
	}
	for _, id := range c.SessionIDs() {
		if err := c.Stop(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.dsk.Available(); !got.Equal(f.dsk.Capacity()) {
		t.Errorf("desktop not fully released: %s != %s", got, f.dsk.Capacity())
	}
}

// TestParallelismKnobSerial pins the Parallelism=1 path: ConfigureAll
// degrades to a serial loop with identical per-request semantics.
func TestParallelismKnobSerial(t *testing.T) {
	f := newFixture(t)
	f.cfg.Parallelism = 1
	c, err := New(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	sessions, errs := c.ConfigureAll([]Request{audioRequest("s1"), audioRequest("s2")})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		defer c.Stop(sessions[i].ID)
	}
	if c.Sessions() != 2 {
		t.Fatalf("Sessions() = %d, want 2", c.Sessions())
	}
}
