// Package profiler implements the online resource profiling service the
// configuration model assumes (paper §3.1, citing QualProbes and
// Abdelzaher's automated profiling): it maintains exponentially weighted
// moving averages of each component's observed end-system resource usage
// and exposes the smoothed vectors as the requirement estimates R the
// service distributor plans with.
package profiler

import (
	"fmt"
	"sync"

	"ubiqos/internal/resource"
)

// DefaultAlpha is the EWMA smoothing factor: the weight of the newest
// sample.
const DefaultAlpha = 0.3

// Profiler aggregates usage samples per component key. All methods are
// safe for concurrent use.
type Profiler struct {
	alpha float64

	mu       sync.Mutex
	profiles map[string]*profile
}

type profile struct {
	estimate resource.Vector
	samples  int
	peak     resource.Vector
}

// New returns a profiler with the given smoothing factor in (0, 1].
func New(alpha float64) (*Profiler, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("profiler: alpha must be in (0,1], got %g", alpha)
	}
	return &Profiler{alpha: alpha, profiles: make(map[string]*profile)}, nil
}

// MustNew is New that panics on error.
func MustNew(alpha float64) *Profiler {
	p, err := New(alpha)
	if err != nil {
		panic(err)
	}
	return p
}

// Observe records one usage sample for the component key. The first sample
// initializes the estimate; later samples are folded in with EWMA. Samples
// must share a dimensionality per key.
func (p *Profiler) Observe(key string, usage resource.Vector) error {
	if key == "" {
		return fmt.Errorf("profiler: empty key")
	}
	if err := usage.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.profiles[key]
	if !ok {
		p.profiles[key] = &profile{
			estimate: usage.Clone(),
			peak:     usage.Clone(),
			samples:  1,
		}
		return nil
	}
	if len(pr.estimate) != len(usage) {
		return fmt.Errorf("profiler: %s: sample dimension %d, profile has %d", key, len(usage), len(pr.estimate))
	}
	for i := range pr.estimate {
		pr.estimate[i] = p.alpha*usage[i] + (1-p.alpha)*pr.estimate[i]
		if usage[i] > pr.peak[i] {
			pr.peak[i] = usage[i]
		}
	}
	pr.samples++
	return nil
}

// Estimate returns the smoothed requirement vector for the key.
func (p *Profiler) Estimate(key string) (resource.Vector, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.profiles[key]
	if !ok {
		return nil, false
	}
	return pr.estimate.Clone(), true
}

// Peak returns the per-dimension maximum observed usage for the key —
// a conservative requirement estimate for soft-guarantee admission.
func (p *Profiler) Peak(key string) (resource.Vector, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.profiles[key]
	if !ok {
		return nil, false
	}
	return pr.peak.Clone(), true
}

// Samples returns how many observations the key has accumulated.
func (p *Profiler) Samples(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pr, ok := p.profiles[key]; ok {
		return pr.samples
	}
	return 0
}

// EstimateOr returns the smoothed estimate when the key has been profiled,
// falling back to the supplied declared requirement otherwise — how the
// distributor consumes profiles.
func (p *Profiler) EstimateOr(key string, declared resource.Vector) resource.Vector {
	if est, ok := p.Estimate(key); ok && len(est) == len(declared) {
		return est
	}
	return declared.Clone()
}
