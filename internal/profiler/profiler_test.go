package profiler

import (
	"math"
	"sync"
	"testing"

	"ubiqos/internal/resource"
)

func TestNewValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := New(alpha); err == nil {
			t.Errorf("alpha %g should fail", alpha)
		}
	}
	if _, err := New(1); err != nil {
		t.Errorf("alpha 1 should be allowed: %v", err)
	}
}

func TestObserveValidation(t *testing.T) {
	p := MustNew(DefaultAlpha)
	if err := p.Observe("", resource.MB(1, 1)); err == nil {
		t.Error("empty key should fail")
	}
	if err := p.Observe("c", resource.Vector{-1}); err == nil {
		t.Error("invalid sample should fail")
	}
	if err := p.Observe("c", resource.MB(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe("c", resource.Vector{1}); err == nil {
		t.Error("dimension change should fail")
	}
}

func TestEWMAConverges(t *testing.T) {
	p := MustNew(0.5)
	if err := p.Observe("c", resource.MB(10, 20)); err != nil {
		t.Fatal(err)
	}
	est, ok := p.Estimate("c")
	if !ok || !est.Equal(resource.MB(10, 20)) {
		t.Fatalf("first sample initializes: %v", est)
	}
	if err := p.Observe("c", resource.MB(20, 40)); err != nil {
		t.Fatal(err)
	}
	est, _ = p.Estimate("c")
	if math.Abs(est[0]-15) > 1e-12 || math.Abs(est[1]-30) > 1e-12 {
		t.Errorf("EWMA = %v, want [15, 30]", est)
	}
	// Converges toward a steady signal.
	for i := 0; i < 50; i++ {
		if err := p.Observe("c", resource.MB(20, 40)); err != nil {
			t.Fatal(err)
		}
	}
	est, _ = p.Estimate("c")
	if math.Abs(est[0]-20) > 0.01 || math.Abs(est[1]-40) > 0.01 {
		t.Errorf("EWMA after convergence = %v", est)
	}
	if p.Samples("c") != 52 {
		t.Errorf("Samples = %d", p.Samples("c"))
	}
	if p.Samples("ghost") != 0 {
		t.Error("unknown key should have 0 samples")
	}
}

func TestPeakTracksMaximum(t *testing.T) {
	p := MustNew(DefaultAlpha)
	for _, s := range []resource.Vector{resource.MB(5, 50), resource.MB(20, 10), resource.MB(10, 30)} {
		if err := p.Observe("c", s); err != nil {
			t.Fatal(err)
		}
	}
	peak, ok := p.Peak("c")
	if !ok || !peak.Equal(resource.MB(20, 50)) {
		t.Errorf("Peak = %v, want per-dimension max [20, 50]", peak)
	}
	if _, ok := p.Peak("ghost"); ok {
		t.Error("unknown key should have no peak")
	}
}

func TestEstimateIsolation(t *testing.T) {
	p := MustNew(DefaultAlpha)
	if err := p.Observe("c", resource.MB(10, 10)); err != nil {
		t.Fatal(err)
	}
	est, _ := p.Estimate("c")
	est[0] = 999
	again, _ := p.Estimate("c")
	if again[0] != 10 {
		t.Error("Estimate must return a copy")
	}
}

func TestEstimateOr(t *testing.T) {
	p := MustNew(DefaultAlpha)
	declared := resource.MB(64, 50)
	if got := p.EstimateOr("c", declared); !got.Equal(declared) {
		t.Errorf("fallback = %v", got)
	}
	if err := p.Observe("c", resource.MB(8, 5)); err != nil {
		t.Fatal(err)
	}
	if got := p.EstimateOr("c", declared); !got.Equal(resource.MB(8, 5)) {
		t.Errorf("profiled = %v", got)
	}
	// Dimension mismatch falls back to declared.
	if err := p.Observe("d", resource.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if got := p.EstimateOr("d", declared); !got.Equal(declared) {
		t.Errorf("mismatched dims should fall back: %v", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	p := MustNew(DefaultAlpha)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := p.Observe("c", resource.MB(10, 10)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p.Samples("c") != 800 {
		t.Errorf("Samples = %d", p.Samples("c"))
	}
	est, _ := p.Estimate("c")
	if math.Abs(est[0]-10) > 1e-9 {
		t.Errorf("Estimate = %v", est)
	}
}
