package capacity

import (
	"testing"
	"time"
)

func TestRingWrapAround(t *testing.T) {
	o := New(Options{RingCapacity: 4})
	base := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		o.Record("m", base.Add(time.Duration(i)*time.Second), float64(i))
	}
	got := o.Series("m", 0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(got))
	}
	for i, s := range got {
		if want := float64(6 + i); s.V != want {
			t.Fatalf("sample %d = %v, want %v (oldest-first after wrap)", i, s.V, want)
		}
	}
}

func TestSeriesWindowFilter(t *testing.T) {
	o := New(Options{})
	base := time.Unix(100, 0)
	o.now = func() time.Time { return base.Add(9 * time.Second) }
	for i := 0; i < 10; i++ {
		o.Record("m", base.Add(time.Duration(i)*time.Second), float64(i))
	}
	got := o.Series("m", 3*time.Second)
	if len(got) != 4 { // cutoff is inclusive: t=6,7,8,9
		t.Fatalf("windowed series has %d samples, want 4", len(got))
	}
	if got[0].V != 6 {
		t.Fatalf("windowed series starts at %v, want 6", got[0].V)
	}
	if o.Series("missing", 0) != nil {
		t.Fatal("unknown metric should return nil")
	}
}

func TestMetricsSorted(t *testing.T) {
	o := New(Options{})
	now := time.Unix(0, 0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		o.Record(name, now, 1)
	}
	got := o.Metrics()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Metrics() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Metrics() = %v, want %v", got, want)
		}
	}
}

func TestSampleNowRateLimited(t *testing.T) {
	o := New(Options{Interval: time.Second})
	clock := time.Unix(0, 0)
	o.now = func() time.Time { return clock }

	calls := 0
	o.SetSampler(func(now time.Time) {
		calls++
		o.Record("m", now, 1)
	})

	o.SampleNow() // first pass runs (last is zero)
	o.SampleNow() // same instant: suppressed
	clock = clock.Add(300 * time.Millisecond)
	o.SampleNow() // < interval/2: suppressed
	clock = clock.Add(300 * time.Millisecond)
	o.SampleNow() // ≥ interval/2 since last pass: runs

	if calls != 2 {
		t.Fatalf("sampler ran %d times, want 2 (rate-limited to interval/2)", calls)
	}
}

func TestStartStopTicker(t *testing.T) {
	o := New(Options{Interval: 5 * time.Millisecond, RingCapacity: 100})
	o.SetSampler(func(now time.Time) { o.Record("tick", now, 1) })
	o.Start()
	defer o.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(o.Series("tick", 0)) >= 3 {
			o.Stop()
			o.Stop() // idempotent
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("ticker produced no samples within deadline")
}

func TestSeriesWindowAnchoredToClock(t *testing.T) {
	// Regression: the trailing-window cutoff used to be anchored to the
	// last sample's timestamp, so when the sampler stalled the window kept
	// returning stale history as if it were current. The anchor is the
	// wall clock now: once samples age out, the window empties.
	o := New(Options{})
	base := time.Unix(100, 0)
	now := base
	o.now = func() time.Time { return now }
	for i := 0; i < 10; i++ {
		o.Record("m", base.Add(time.Duration(i)*time.Second), float64(i))
	}
	now = base.Add(9 * time.Second)
	if got := o.Series("m", 3*time.Second); len(got) != 4 {
		t.Fatalf("live window has %d samples, want 4", len(got))
	}
	// The sampler stalls: the clock moves on but no new samples arrive.
	now = base.Add(time.Hour)
	if got := o.Series("m", 3*time.Second); len(got) != 0 {
		t.Fatalf("stalled sampler: window returned %d stale samples, want 0", len(got))
	}
}
