// Package capacity implements the smart space's capacity observatory: a
// fixed-memory on-daemon time-series store sampled on a ticker, and a
// saturation analyzer that classifies each device and the space as a
// whole into ok / approaching / saturated with hysteresis. The paper's
// configuration model assumes the space continuously knows its own
// resource state (§3.1 online profiling, §3.3 admission over residual
// capacity); this package is that knowledge made queryable — the signal a
// future admission controller or autoscaler reads, deliberately free of
// any actuation.
package capacity

import (
	"sort"
	"sync"
	"time"
)

// Defaults for the observatory: one sample per second, 900 samples per
// series (15 minutes of history at the default interval).
const (
	DefaultInterval     = time.Second
	DefaultRingCapacity = 900
)

// Sample is one timestamped observation.
type Sample struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// ring is a fixed-capacity circular sample buffer.
type ring struct {
	samples []Sample
	head    int // next write position
	n       int
}

func (r *ring) push(s Sample) {
	if r.n < len(r.samples) {
		r.samples[(r.head+r.n)%len(r.samples)] = s
		r.n++
		return
	}
	r.samples[r.head] = s
	r.head = (r.head + 1) % len(r.samples)
}

// all returns the samples oldest-first.
func (r *ring) all() []Sample {
	out := make([]Sample, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.samples[(r.head+i)%len(r.samples)])
	}
	return out
}

// Options tunes an Observatory.
type Options struct {
	// Interval is the sampling period (0 selects DefaultInterval).
	Interval time.Duration
	// RingCapacity bounds each series' sample ring (0 selects
	// DefaultRingCapacity).
	RingCapacity int
}

// Observatory owns the sampled time series. A sampler callback — set by
// the domain — is invoked once per tick (and on demand, rate-limited, by
// scrape paths); the callback reads live state and Records whatever
// series it wants kept. Series are created on first Record and bounded by
// the ring capacity, so memory stays constant regardless of run length.
type Observatory struct {
	interval time.Duration
	ringCap  int

	mu      sync.Mutex
	series  map[string]*ring
	sampler func(now time.Time)
	last    time.Time
	running bool
	stop    chan struct{}
	done    chan struct{}
	now     func() time.Time
}

// New returns an idle observatory; set a sampler and Start it to begin
// collecting.
func New(opts Options) *Observatory {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.RingCapacity <= 0 {
		opts.RingCapacity = DefaultRingCapacity
	}
	return &Observatory{
		interval: opts.Interval,
		ringCap:  opts.RingCapacity,
		series:   make(map[string]*ring),
		now:      time.Now,
	}
}

// SetSampler installs the per-tick callback. It must be set before Start.
func (o *Observatory) SetSampler(fn func(now time.Time)) {
	o.mu.Lock()
	o.sampler = fn
	o.mu.Unlock()
}

// Interval returns the sampling period.
func (o *Observatory) Interval() time.Duration { return o.interval }

// Start launches the sampling ticker (idempotent).
func (o *Observatory) Start() {
	o.mu.Lock()
	if o.running {
		o.mu.Unlock()
		return
	}
	o.running = true
	o.stop = make(chan struct{})
	o.done = make(chan struct{})
	stop, done := o.stop, o.done
	o.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(o.interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				o.samplePass(now)
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the ticker and waits for the sampling goroutine (idempotent;
// a never-started observatory stops trivially).
func (o *Observatory) Stop() {
	o.mu.Lock()
	if !o.running {
		o.mu.Unlock()
		return
	}
	o.running = false
	stop, done := o.stop, o.done
	o.mu.Unlock()
	close(stop)
	<-done
}

// SampleNow runs one sampling pass immediately — scrape handlers call it
// so /metrics and /saturation are fresh even between ticks. Passes are
// rate-limited to half the interval, so a scrape racing the ticker does
// not double-sample the rings.
func (o *Observatory) SampleNow() { o.samplePass(o.now()) }

// samplePass invokes the sampler outside the lock (the sampler Records
// back into the observatory).
func (o *Observatory) samplePass(now time.Time) {
	o.mu.Lock()
	fn := o.sampler
	if fn == nil || now.Sub(o.last) < o.interval/2 {
		o.mu.Unlock()
		return
	}
	o.last = now
	o.mu.Unlock()
	fn(now)
}

// Record appends one sample to the named series, creating the series (and
// its fixed ring) on first use.
func (o *Observatory) Record(metric string, t time.Time, v float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	r, ok := o.series[metric]
	if !ok {
		r = &ring{samples: make([]Sample, o.ringCap)}
		o.series[metric] = r
	}
	r.push(Sample{T: t, V: v})
}

// Series returns the named series' samples oldest-first, restricted to
// the trailing window when window > 0. Unknown metrics return nil.
func (o *Observatory) Series(metric string, window time.Duration) []Sample {
	o.mu.Lock()
	r, ok := o.series[metric]
	if !ok {
		o.mu.Unlock()
		return nil
	}
	out := r.all()
	now := o.now()
	o.mu.Unlock()
	if window <= 0 || len(out) == 0 {
		return out
	}
	// Anchor the trailing window to the wall clock, not the last sample's
	// timestamp: if sampling stalls, an anchor on the last sample would
	// silently return stale history as if it were current.
	cutoff := now.Add(-window)
	i := sort.Search(len(out), func(i int) bool { return !out[i].T.Before(cutoff) })
	return out[i:]
}

// Metrics lists the recorded series names, sorted.
func (o *Observatory) Metrics() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.series))
	for name := range o.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
