// Saturation analysis: classify each device and the space as a whole into
// ok / approaching / saturated from smoothed headroom, admission-queue
// depth, and SLO burn state. The classifier is hysteretic — entering a
// worse state and leaving it use different thresholds — so an oscillating
// load trace near a boundary settles into one verdict instead of flapping
// on every sample. The analyzer only observes; the actuation (admission
// throttling, autoscaling) belongs to a later tier that reads Report.
package capacity

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// State is a saturation verdict. The numeric values are published as the
// saturation_state gauge, so they are part of the exposition contract.
type State int

const (
	StateOK          State = 0
	StateApproaching State = 1
	StateSaturated   State = 2
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateApproaching:
		return "approaching"
	case StateSaturated:
		return "saturated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Thresholds tunes the classifier. Headroom is the free fraction of the
// binding resource (min over CPU and memory), in [0, 1]. Enter thresholds
// are crossed downward to worsen the state; the matching Exit threshold
// must be crossed upward to recover, and the gap between them is the
// hysteresis band.
type Thresholds struct {
	// ApproachEnter/ApproachExit bound the ok ↔ approaching transition.
	ApproachEnter float64
	ApproachExit  float64
	// SaturateEnter/SaturateExit bound the approaching ↔ saturated
	// transition.
	SaturateEnter float64
	SaturateExit  float64
	// Alpha smooths the raw headroom samples before classification
	// (higher = more reactive).
	Alpha float64
	// QueueApproach/QueueSaturate escalate the space verdict when the
	// configurator's admission queue backs up, whatever the headroom says.
	QueueApproach int
	QueueSaturate int
}

// DefaultThresholds returns the stock tuning: devices are "approaching"
// below 25% headroom (recovering above 35%) and "saturated" below 10%
// (recovering above 18%), with moderate smoothing.
func DefaultThresholds() Thresholds {
	return Thresholds{
		ApproachEnter: 0.25,
		ApproachExit:  0.35,
		SaturateEnter: 0.10,
		SaturateExit:  0.18,
		Alpha:         0.5,
		QueueApproach: 4,
		QueueSaturate: 16,
	}
}

// DeviceStatus is one device's slice of a Report.
type DeviceStatus struct {
	ID       string  `json:"id"`
	Up       bool    `json:"up"`
	CPUUtil  float64 `json:"cpu_util"`
	MemUtil  float64 `json:"mem_util"`
	Headroom float64 `json:"headroom"`          // raw, this sample
	Smoothed float64 `json:"smoothed_headroom"` // EWMA the verdict uses
	State    State   `json:"state"`
	StateStr string  `json:"state_str"`
}

// LinkStatus is one link's slice of a Report.
type LinkStatus struct {
	A            string  `json:"a"`
	B            string  `json:"b"`
	CapacityMbps float64 `json:"capacity_mbps"`
	ResidualMbps float64 `json:"residual_mbps"`
	Utilization  float64 `json:"utilization"`
}

// ClassStatus is one session class's slice of a Report.
type ClassStatus struct {
	Class          string  `json:"class"`
	Active         int     `json:"active"`
	ArrivalRate    float64 `json:"arrival_rate_per_sec"`
	CompletionRate float64 `json:"completion_rate_per_sec"`
}

// Input is one observation handed to the analyzer: the raw device
// utilizations plus the queue/SLO context that can escalate the space
// verdict. Smoothed and State fields on the devices are ignored on input;
// the analyzer fills them in.
type Input struct {
	Now           time.Time
	Devices       []DeviceStatus
	Links         []LinkStatus
	Classes       []ClassStatus
	QueueDepth    int
	SLOViolations int
}

// Report is the analyzer's verdict for one observation.
type Report struct {
	Now           time.Time      `json:"now"`
	Space         State          `json:"space_state"`
	SpaceStr      string         `json:"space_state_str"`
	SpaceHeadroom float64        `json:"space_headroom"` // min smoothed headroom over up devices
	QueueDepth    int            `json:"queue_depth"`
	SLOViolations int            `json:"slo_violations"`
	Devices       []DeviceStatus `json:"devices"`
	Links         []LinkStatus   `json:"links"`
	Classes       []ClassStatus  `json:"classes"`
}

// track is the per-entity hysteresis memory.
type track struct {
	smoothed float64
	seen     bool
	state    State
}

// observe folds a raw headroom sample into the track and re-classifies.
func (t *track) observe(headroom float64, th Thresholds) {
	if !t.seen {
		t.smoothed, t.seen = headroom, true
	} else {
		t.smoothed = th.Alpha*headroom + (1-th.Alpha)*t.smoothed
	}
	switch t.state {
	case StateOK:
		if t.smoothed < th.SaturateEnter {
			t.state = StateSaturated
		} else if t.smoothed < th.ApproachEnter {
			t.state = StateApproaching
		}
	case StateApproaching:
		if t.smoothed < th.SaturateEnter {
			t.state = StateSaturated
		} else if t.smoothed > th.ApproachExit {
			t.state = StateOK
		}
	case StateSaturated:
		if t.smoothed > th.ApproachExit {
			t.state = StateOK
		} else if t.smoothed > th.SaturateExit {
			t.state = StateApproaching
		}
	}
}

// Analyzer carries the hysteresis state between observations. One
// analyzer serves one space; it is safe for concurrent use.
type Analyzer struct {
	mu      sync.Mutex
	th      Thresholds
	devices map[string]*track
	space   track
}

// NewAnalyzer returns an analyzer with the given thresholds (a zero
// Thresholds selects DefaultThresholds).
func NewAnalyzer(th Thresholds) *Analyzer {
	if th == (Thresholds{}) {
		th = DefaultThresholds()
	}
	return &Analyzer{th: th, devices: make(map[string]*track)}
}

// Observe classifies one observation, advancing the per-device and
// space-wide hysteresis, and returns the resulting report.
func (a *Analyzer) Observe(in Input) Report {
	a.mu.Lock()
	defer a.mu.Unlock()

	rep := Report{
		Now:           in.Now,
		QueueDepth:    in.QueueDepth,
		SLOViolations: in.SLOViolations,
		Links:         in.Links,
		Classes:       in.Classes,
		SpaceHeadroom: 1,
	}

	alive := make(map[string]bool, len(in.Devices))
	anyUp := false
	for _, d := range in.Devices {
		alive[d.ID] = true
		t, ok := a.devices[d.ID]
		if !ok {
			t = &track{}
			a.devices[d.ID] = t
		}
		if d.Up {
			t.observe(d.Headroom, a.th)
			anyUp = true
			if t.smoothed < rep.SpaceHeadroom {
				rep.SpaceHeadroom = t.smoothed
			}
		}
		d.Smoothed = t.smoothed
		d.State = t.state
		d.StateStr = t.state.String()
		rep.Devices = append(rep.Devices, d)
	}
	// Drop tracks for devices that left the space, so the map stays
	// bounded by the live device set.
	for id := range a.devices {
		if !alive[id] {
			delete(a.devices, id)
		}
	}
	sort.Slice(rep.Devices, func(i, j int) bool { return rep.Devices[i].ID < rep.Devices[j].ID })
	// Links and classes arrive in map order; sort so successive `top`
	// frames keep rows in place.
	sort.Slice(rep.Links, func(i, j int) bool {
		if rep.Links[i].A != rep.Links[j].A {
			return rep.Links[i].A < rep.Links[j].A
		}
		return rep.Links[i].B < rep.Links[j].B
	})
	sort.Slice(rep.Classes, func(i, j int) bool { return rep.Classes[i].Class < rep.Classes[j].Class })

	// Space verdict: hysteresis over the worst up-device headroom, then
	// stateless escalation from queue depth and SLO burn. Escalation is
	// applied after the hysteresis so a drained queue de-escalates
	// immediately — the queue signal is already discrete.
	if anyUp {
		a.space.observe(rep.SpaceHeadroom, a.th)
		rep.Space = a.space.state
	} else {
		rep.SpaceHeadroom = 0
		rep.Space = StateSaturated
	}
	if in.QueueDepth >= a.th.QueueSaturate {
		rep.Space = StateSaturated
	} else if (in.QueueDepth >= a.th.QueueApproach || in.SLOViolations > 0) && rep.Space < StateApproaching {
		rep.Space = StateApproaching
	}
	rep.SpaceStr = rep.Space.String()
	return rep
}

// Render formats the report as a fixed-width terminal view — the body of
// `qosctl top`.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "capacity observatory — %s\n", r.Now.Format(time.RFC3339))
	fmt.Fprintf(&b, "space: %-11s  headroom %.2f  queue %d  slo-violations %d\n\n",
		strings.ToUpper(r.Space.String()), r.SpaceHeadroom, r.QueueDepth, r.SLOViolations)

	fmt.Fprintf(&b, "%-14s %-12s %6s %6s %9s %9s\n", "DEVICE", "STATE", "CPU", "MEM", "HEADROOM", "SMOOTHED")
	for _, d := range r.Devices {
		state := d.State.String()
		if !d.Up {
			state = "down"
		}
		fmt.Fprintf(&b, "%-14s %-12s %6.2f %6.2f %9.2f %9.2f\n",
			d.ID, state, d.CPUUtil, d.MemUtil, d.Headroom, d.Smoothed)
	}

	if len(r.Links) > 0 {
		fmt.Fprintf(&b, "\n%-24s %9s %9s %6s\n", "LINK", "CAP-MBPS", "RESIDUAL", "UTIL")
		for _, l := range r.Links {
			fmt.Fprintf(&b, "%-24s %9.1f %9.1f %6.2f\n",
				l.A+"|"+l.B, l.CapacityMbps, l.ResidualMbps, l.Utilization)
		}
	}

	if len(r.Classes) > 0 {
		fmt.Fprintf(&b, "\n%-14s %7s %8s %8s\n", "CLASS", "ACTIVE", "ARR/S", "DONE/S")
		for _, c := range r.Classes {
			fmt.Fprintf(&b, "%-14s %7d %8.2f %8.2f\n",
				c.Class, c.Active, c.ArrivalRate, c.CompletionRate)
		}
	}
	return b.String()
}
