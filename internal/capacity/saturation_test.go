package capacity

import (
	"strings"
	"testing"
	"time"
)

func devInput(t time.Time, headroom float64, queue int) Input {
	return Input{
		Now:        t,
		Devices:    []DeviceStatus{{ID: "d1", Up: true, CPUUtil: 1 - headroom, MemUtil: 0.1, Headroom: headroom}},
		QueueDepth: queue,
	}
}

// An oscillating trace straddling ApproachEnter must not flap: once the
// device enters approaching, it stays there until headroom clears
// ApproachExit, so the whole trace yields at most one transition.
func TestHysteresisNoFlapping(t *testing.T) {
	a := NewAnalyzer(Thresholds{})
	now := time.Unix(0, 0)

	transitions := 0
	prev := StateOK
	for i := 0; i < 40; i++ {
		h := 0.26 // just above ApproachEnter (0.25), well below ApproachExit (0.35)
		if i%2 == 1 {
			h = 0.20 // below ApproachEnter
		}
		rep := a.Observe(devInput(now.Add(time.Duration(i)*time.Second), h, 0))
		got := rep.Devices[0].State
		if got != prev {
			transitions++
			prev = got
		}
	}
	if prev != StateApproaching {
		t.Fatalf("oscillating trace ended in %v, want approaching", prev)
	}
	if transitions != 1 {
		t.Fatalf("oscillating trace produced %d transitions, want exactly 1 (ok→approaching)", transitions)
	}
}

func TestHysteresisRecovery(t *testing.T) {
	a := NewAnalyzer(Thresholds{})
	now := time.Unix(0, 0)

	// Drive into saturated.
	var rep Report
	for i := 0; i < 10; i++ {
		rep = a.Observe(devInput(now.Add(time.Duration(i)*time.Second), 0.05, 0))
	}
	if rep.Devices[0].State != StateSaturated {
		t.Fatalf("state after heavy load = %v, want saturated", rep.Devices[0].State)
	}

	// Headroom at 0.15: above SaturateEnter but below SaturateExit (0.18)
	// — must stay saturated.
	rep = a.Observe(devInput(now.Add(20*time.Second), 0.15, 0))
	if rep.Devices[0].State != StateSaturated {
		t.Fatalf("state inside hysteresis band = %v, want saturated", rep.Devices[0].State)
	}

	// Sustained recovery above ApproachExit eventually returns to ok.
	for i := 0; i < 20; i++ {
		rep = a.Observe(devInput(now.Add(time.Duration(30+i)*time.Second), 0.9, 0))
	}
	if rep.Devices[0].State != StateOK {
		t.Fatalf("state after recovery = %v, want ok", rep.Devices[0].State)
	}
}

func TestQueueEscalatesSpace(t *testing.T) {
	a := NewAnalyzer(Thresholds{})
	now := time.Unix(0, 0)

	rep := a.Observe(devInput(now, 0.9, 0))
	if rep.Space != StateOK {
		t.Fatalf("space with full headroom = %v, want ok", rep.Space)
	}
	rep = a.Observe(devInput(now.Add(time.Second), 0.9, DefaultThresholds().QueueApproach))
	if rep.Space != StateApproaching {
		t.Fatalf("space with backed-up queue = %v, want approaching", rep.Space)
	}
	rep = a.Observe(devInput(now.Add(2*time.Second), 0.9, DefaultThresholds().QueueSaturate))
	if rep.Space != StateSaturated {
		t.Fatalf("space with deep queue = %v, want saturated", rep.Space)
	}
	// Queue drains: escalation is stateless, so the verdict relaxes
	// immediately while headroom is healthy.
	rep = a.Observe(devInput(now.Add(3*time.Second), 0.9, 0))
	if rep.Space != StateOK {
		t.Fatalf("space after queue drain = %v, want ok", rep.Space)
	}
}

func TestSLOViolationsEscalate(t *testing.T) {
	a := NewAnalyzer(Thresholds{})
	in := devInput(time.Unix(0, 0), 0.9, 0)
	in.SLOViolations = 2
	if rep := a.Observe(in); rep.Space != StateApproaching {
		t.Fatalf("space with SLO violations = %v, want approaching", rep.Space)
	}
}

func TestNoUpDevicesSaturates(t *testing.T) {
	a := NewAnalyzer(Thresholds{})
	rep := a.Observe(Input{
		Now:     time.Unix(0, 0),
		Devices: []DeviceStatus{{ID: "d1", Up: false, Headroom: 0.9}},
	})
	if rep.Space != StateSaturated || rep.SpaceHeadroom != 0 {
		t.Fatalf("space with no up devices = %v headroom %v, want saturated/0", rep.Space, rep.SpaceHeadroom)
	}
}

func TestDepartedDeviceTrackDropped(t *testing.T) {
	a := NewAnalyzer(Thresholds{})
	now := time.Unix(0, 0)
	a.Observe(Input{Now: now, Devices: []DeviceStatus{
		{ID: "d1", Up: true, Headroom: 0.9},
		{ID: "d2", Up: true, Headroom: 0.9},
	}})
	a.Observe(devInput(now.Add(time.Second), 0.9, 0)) // only d1 remains
	if len(a.devices) != 1 {
		t.Fatalf("analyzer retained %d tracks after departure, want 1", len(a.devices))
	}
}

func TestRenderContainsSections(t *testing.T) {
	a := NewAnalyzer(Thresholds{})
	rep := a.Observe(Input{
		Now:     time.Unix(0, 0).UTC(),
		Devices: []DeviceStatus{{ID: "desktop1", Up: true, CPUUtil: 0.4, MemUtil: 0.3, Headroom: 0.6}},
		Links:   []LinkStatus{{A: "desktop1", B: "pda1", CapacityMbps: 10, ResidualMbps: 4, Utilization: 0.6}},
		Classes: []ClassStatus{{Class: "audio", Active: 2, ArrivalRate: 0.5, CompletionRate: 0.4}},
	})
	out := rep.Render()
	for _, want := range []string{"space: OK", "desktop1", "desktop1|pda1", "audio", "DEVICE", "LINK", "CLASS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}
