package faultinject

import (
	"reflect"
	"testing"
	"time"

	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/metrics"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/resource"
)

func testParams() Params {
	return Params{
		Seed:         7,
		Duration:     30 * time.Second,
		Crashes:      2,
		Degrades:     1,
		Flaps:        1,
		Stalls:       1,
		RecoverAfter: 10 * time.Second,
		Devices:      []device.ID{"d1", "d2", "d3", "d4"},
		Protected:    map[device.ID]bool{"pda1": true},
		Links:        [][2]device.ID{{"d1", "d2"}, {"d2", "d3"}},
		Services:     []string{"svc-1", "svc-2"},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same params produced different schedules")
	}
	// 5 faults, each with a paired undo.
	if len(a.Faults) != 10 {
		t.Fatalf("faults = %d, want 10", len(a.Faults))
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Fatal("schedule not time-ordered")
		}
	}
	crashed := map[device.ID]int{}
	for _, f := range a.Faults {
		if f.Kind == DeviceCrash {
			crashed[f.Device]++
		}
		if f.Device == "pda1" {
			t.Errorf("protected device faulted: %+v", f)
		}
	}
	if len(crashed) != 2 {
		t.Errorf("crash victims = %v, want 2 distinct", crashed)
	}
	for d, n := range crashed {
		if n != 1 {
			t.Errorf("device %s crashed %d times", d, n)
		}
	}

	other := testParams()
	other.Seed = 8
	c, err := Generate(other)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Error("different seeds produced the same schedule")
	}
}

func TestGenerateNoUndosWhenRecoverZero(t *testing.T) {
	p := testParams()
	p.RecoverAfter = 0
	s, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 5 {
		t.Fatalf("faults = %d, want 5", len(s.Faults))
	}
	for _, f := range s.Faults {
		switch f.Kind {
		case DeviceRejoin, LinkRestore, ServiceRestore, StallClear:
			t.Errorf("unexpected undo fault %+v", f)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Duration = 0 },
		func(p *Params) { p.Devices = nil },
		func(p *Params) { p.Crashes = 10 },
		func(p *Params) { p.Links = nil },
		func(p *Params) { p.Services = nil },
	}
	for i, mutate := range cases {
		p := testParams()
		mutate(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("seed=9,crashes=2,degrades=1,flaps=3,stalls=1,window=20s,recover=5s,degrade-factor=0.2,stall-factor=0.4")
	if err != nil {
		t.Fatal(err)
	}
	want := Params{Seed: 9, Crashes: 2, Degrades: 1, Flaps: 3, Stalls: 1,
		Duration: 20 * time.Second, RecoverAfter: 5 * time.Second,
		DegradeFactor: 0.2, StallFactor: 0.4}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("parsed = %+v, want %+v", p, want)
	}
	// Empty spec keeps defaults.
	p, err = ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration != 30*time.Second || p.RecoverAfter != 10*time.Second {
		t.Errorf("defaults = %+v", p)
	}
	for _, bad := range []string{"bogus=1", "crashes", "crashes=x", "window=fast"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// chaosDomain is a two-desktop space with one registered service.
func chaosDomain(t *testing.T) *domain.Domain {
	t.Helper()
	d := domain.MustNew("lab", domain.Options{Scale: 0.001})
	t.Cleanup(d.Close)
	for _, id := range []device.ID{"d1", "d2"} {
		if _, err := d.AddDevice(id, device.ClassDesktop, resource.MB(256, 100), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Connect("d1", "d2", netsim.Ethernet); err != nil {
		t.Fatal(err)
	}
	d.Registry.MustRegister(&registry.Instance{
		Name:      "svc-1",
		Type:      "audio-server",
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3))),
		Resources: resource.MB(64, 50),
		SizeMB:    1,
	})
	return d
}

func TestInjectorAppliesAndUndoes(t *testing.T) {
	d := chaosDomain(t)
	in, err := NewInjector(d, Schedule{})
	if err != nil {
		t.Fatal(err)
	}

	// Crash / rejoin.
	if err := in.Apply(Fault{Kind: DeviceCrash, Device: "d1"}); err != nil {
		t.Fatal(err)
	}
	if d.Devices.Get("d1").Up() {
		t.Error("d1 still up")
	}
	if err := in.Apply(Fault{Kind: DeviceRejoin, Device: "d1"}); err != nil {
		t.Fatal(err)
	}
	if !d.Devices.Get("d1").Up() {
		t.Error("d1 still down")
	}

	// Degrade / restore.
	if err := in.Apply(Fault{Kind: LinkDegrade, LinkA: "d1", LinkB: "d2", Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := d.Net.BandwidthMbps("d1", "d2"); got != netsim.Ethernet.BandwidthMbps*0.5 {
		t.Errorf("degraded bandwidth = %g", got)
	}
	if err := in.Apply(Fault{Kind: LinkRestore, LinkA: "d1", LinkB: "d2"}); err != nil {
		t.Fatal(err)
	}
	if got := d.Net.BandwidthMbps("d1", "d2"); got != netsim.Ethernet.BandwidthMbps {
		t.Errorf("restored bandwidth = %g", got)
	}
	if err := in.Apply(Fault{Kind: LinkRestore, LinkA: "d1", LinkB: "d2"}); err == nil {
		t.Error("double restore should fail")
	}

	// Flap / restore.
	if err := in.Apply(Fault{Kind: DiscoveryFlap, Service: "svc-1"}); err != nil {
		t.Fatal(err)
	}
	if d.Registry.Get("svc-1") != nil {
		t.Error("svc-1 still discoverable")
	}
	if err := in.Apply(Fault{Kind: ServiceRestore, Service: "svc-1"}); err != nil {
		t.Fatal(err)
	}
	if d.Registry.Get("svc-1") == nil {
		t.Error("svc-1 not restored")
	}

	// Stall / clear.
	cap := d.Devices.Get("d2").Capacity().Clone()
	if err := in.Apply(Fault{Kind: Stall, Device: "d2", Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	if !d.Devices.Get("d2").Capacity().Equal(cap.Scale(0.5)) {
		t.Errorf("stalled capacity = %v", d.Devices.Get("d2").Capacity())
	}
	if err := in.Apply(Fault{Kind: Stall, Device: "d2", Factor: 0.5}); err == nil {
		t.Error("double stall should fail")
	}
	if err := in.Apply(Fault{Kind: StallClear, Device: "d2"}); err != nil {
		t.Fatal(err)
	}
	if !d.Devices.Get("d2").Capacity().Equal(cap) {
		t.Errorf("cleared capacity = %v", d.Devices.Get("d2").Capacity())
	}

	// Errors.
	if err := in.Apply(Fault{Kind: DeviceCrash, Device: "ghost"}); err == nil {
		t.Error("unknown device should fail")
	}
	if err := in.Apply(Fault{Kind: DiscoveryFlap, Service: "ghost"}); err == nil {
		t.Error("unknown service should fail")
	}
	if err := in.Apply(Fault{Kind: "nonsense"}); err == nil {
		t.Error("unknown kind should fail")
	}

	// Every successful injection was counted.
	if got := d.Metrics.Counter(metrics.FaultsInjected).Value(); got != 8 {
		t.Errorf("%s = %d, want 8", metrics.FaultsInjected, got)
	}
	if got := d.Metrics.Counter(metrics.WithLabel(metrics.FaultsInjected, "kind", string(DeviceCrash))).Value(); got != 1 {
		t.Errorf("per-kind counter = %d, want 1", got)
	}
}

func TestInjectorRunWalksSchedule(t *testing.T) {
	d := chaosDomain(t)
	sched := Schedule{Faults: []Fault{
		{At: 10 * time.Millisecond, Kind: DeviceCrash, Device: "d1"},
		{At: 20 * time.Millisecond, Kind: DeviceRejoin, Device: "d1"},
		{At: 30 * time.Millisecond, Kind: Stall, Device: "d2", Factor: 0.5},
	}}
	in, err := NewInjector(d, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(0.01, nil); err != nil {
		t.Fatal(err)
	}
	if !d.Devices.Get("d1").Up() {
		t.Error("d1 should have rejoined")
	}
	if got := d.Metrics.Counter(metrics.FaultsInjected).Value(); got != 3 {
		t.Errorf("injected = %d, want 3", got)
	}
	// The schedule is exhausted.
	if _, more, _ := in.Step(); more {
		t.Error("Step after Run reported more faults")
	}
}

func TestInjectorRunStops(t *testing.T) {
	d := chaosDomain(t)
	sched := Schedule{Faults: []Fault{
		{At: time.Hour, Kind: DeviceCrash, Device: "d1"},
	}}
	in, err := NewInjector(d, sched)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	if err := in.Run(1, stop); err != nil {
		t.Fatal(err)
	}
	if !d.Devices.Get("d1").Up() {
		t.Error("fault applied despite stop")
	}
}
