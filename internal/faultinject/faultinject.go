// Package faultinject produces deterministic, seedable schedules of
// runtime faults — device crashes and rejoins, link-bandwidth
// degradation, service-discovery flaps, and slow-transcoder stalls — and
// injects them into a running domain. It exists to exercise the recovery
// supervisor the way the paper's testbed exercised the configuration
// protocol ("whenever some significant changes are detected during
// runtime"): every fault is announced through the ordinary event service,
// so recovery happens through the same compose→distribute path as any
// other runtime change. Schedules are pure data derived from a seed, so a
// chaos run is exactly reproducible.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/metrics"
	"ubiqos/internal/netsim"
	"ubiqos/internal/obslog"
	"ubiqos/internal/resource"
)

// Kind classifies one injected fault.
type Kind string

// The fault kinds.
const (
	// DeviceCrash marks a device down (publish-only; no inline recovery).
	DeviceCrash Kind = "device-crash"
	// DeviceRejoin brings a crashed device back.
	DeviceRejoin Kind = "device-rejoin"
	// LinkDegrade multiplies a link's bandwidth by Factor, keeping
	// existing reservations (possibly overcommitting the link).
	LinkDegrade Kind = "link-degrade"
	// LinkRestore reinstates the bandwidth a LinkDegrade removed.
	LinkRestore Kind = "link-restore"
	// DiscoveryFlap unregisters a service instance from the discovery
	// registry — the paper's failed-discovery path.
	DiscoveryFlap Kind = "discovery-flap"
	// ServiceRestore re-registers a flapped instance.
	ServiceRestore Kind = "service-restore"
	// Stall shrinks a device's capacity by Factor — a slow transcoder or
	// an overloaded host — and announces the resource fluctuation.
	Stall Kind = "stall"
	// StallClear restores the stalled device's original capacity.
	StallClear Kind = "stall-clear"
)

// Fault is one scheduled fault.
type Fault struct {
	// At is the offset from the start of the run.
	At   time.Duration `json:"at"`
	Kind Kind          `json:"kind"`
	// Device is the target of crash/rejoin/stall faults.
	Device device.ID `json:"device,omitempty"`
	// LinkA, LinkB name the endpoints of link faults.
	LinkA device.ID `json:"linkA,omitempty"`
	LinkB device.ID `json:"linkB,omitempty"`
	// Factor scales bandwidth (LinkDegrade) or capacity (Stall).
	Factor float64 `json:"factor,omitempty"`
	// Service is the instance name of discovery faults.
	Service string `json:"service,omitempty"`
}

// Schedule is a time-ordered fault sequence.
type Schedule struct {
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Params steers deterministic schedule generation.
type Params struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// Duration is the window faults are spread over; injection times fall
	// in [0.1·Duration, 0.6·Duration] so recovery has time to finish.
	Duration time.Duration
	// Crashes, Degrades, Flaps, Stalls count the faults of each kind.
	Crashes  int
	Degrades int
	Flaps    int
	Stalls   int
	// RecoverAfter is the delay before each fault's paired undo (rejoin,
	// restore, clear); zero disables the undos.
	RecoverAfter time.Duration
	// Devices are the crash/stall candidates; Protected members (e.g.
	// portal devices) are never crashed or stalled.
	Devices   []device.ID
	Protected map[device.ID]bool
	// Links are the degradable endpoint pairs.
	Links [][2]device.ID
	// Services are the discovery-flap candidate instance names.
	Services []string
	// DegradeFactor scales degraded links (default 0.1); StallFactor
	// scales stalled devices (default 0.5).
	DegradeFactor float64
	StallFactor   float64
}

// Generate derives a schedule from the parameters. The same parameters
// always yield the same schedule.
func Generate(p Params) (Schedule, error) {
	if p.Duration <= 0 {
		return Schedule{}, fmt.Errorf("faultinject: non-positive duration")
	}
	if p.DegradeFactor <= 0 || p.DegradeFactor > 1 {
		p.DegradeFactor = 0.1
	}
	if p.StallFactor <= 0 || p.StallFactor > 1 {
		p.StallFactor = 0.5
	}
	var victims []device.ID
	for _, d := range p.Devices {
		if !p.Protected[d] {
			victims = append(victims, d)
		}
	}
	if (p.Crashes > 0 || p.Stalls > 0) && len(victims) == 0 {
		return Schedule{}, fmt.Errorf("faultinject: no unprotected devices to fault")
	}
	if p.Crashes > len(victims) {
		return Schedule{}, fmt.Errorf("faultinject: %d crashes requested but only %d unprotected devices", p.Crashes, len(victims))
	}
	if p.Degrades > 0 && len(p.Links) == 0 {
		return Schedule{}, fmt.Errorf("faultinject: degrades requested without links")
	}
	if p.Flaps > 0 && len(p.Services) == 0 {
		return Schedule{}, fmt.Errorf("faultinject: flaps requested without services")
	}

	rng := rand.New(rand.NewSource(p.Seed))
	at := func() time.Duration {
		lo := p.Duration / 10
		span := p.Duration*6/10 - lo
		return lo + time.Duration(rng.Int63n(int64(span)+1))
	}
	sched := Schedule{Seed: p.Seed}
	add := func(f Fault, undo Kind) {
		sched.Faults = append(sched.Faults, f)
		if p.RecoverAfter > 0 {
			u := f
			u.Kind = undo
			u.At = f.At + p.RecoverAfter
			sched.Faults = append(sched.Faults, u)
		}
	}

	// Crash distinct devices (a crashed device rejoining and crashing
	// again would make recovery accounting ambiguous).
	perm := rng.Perm(len(victims))
	for i := 0; i < p.Crashes; i++ {
		add(Fault{At: at(), Kind: DeviceCrash, Device: victims[perm[i]]}, DeviceRejoin)
	}
	for i := 0; i < p.Degrades; i++ {
		l := p.Links[rng.Intn(len(p.Links))]
		add(Fault{At: at(), Kind: LinkDegrade, LinkA: l[0], LinkB: l[1], Factor: p.DegradeFactor}, LinkRestore)
	}
	for i := 0; i < p.Flaps; i++ {
		add(Fault{At: at(), Kind: DiscoveryFlap, Service: p.Services[rng.Intn(len(p.Services))]}, ServiceRestore)
	}
	// Stalls avoid the crash victims so the two failure modes stay
	// distinguishable in the results.
	stallable := victims[p.Crashes:]
	if len(stallable) == 0 {
		stallable = victims
	}
	for i := 0; i < p.Stalls; i++ {
		add(Fault{At: at(), Kind: Stall, Device: victims[perm[len(perm)-1-i%len(stallable)]], Factor: p.StallFactor}, StallClear)
	}

	sort.SliceStable(sched.Faults, func(i, j int) bool { return sched.Faults[i].At < sched.Faults[j].At })
	return sched, nil
}

// Injector applies a schedule to a live domain, keeping the restore
// state (original links, capacities, unregistered instances) the paired
// undo faults need.
type Injector struct {
	dom   *domain.Domain
	sched Schedule
	next  int

	prevLinks map[[2]device.ID]netsim.Link
	prevCaps  map[device.ID]resource.Vector
	flapped   map[string]func() error
}

// NewInjector binds a schedule to a domain.
func NewInjector(dom *domain.Domain, sched Schedule) (*Injector, error) {
	if dom == nil {
		return nil, fmt.Errorf("faultinject: nil domain")
	}
	return &Injector{
		dom:       dom,
		sched:     sched,
		prevLinks: make(map[[2]device.ID]netsim.Link),
		prevCaps:  make(map[device.ID]resource.Vector),
		flapped:   make(map[string]func() error),
	}, nil
}

// Apply injects a single fault now.
func (in *Injector) Apply(f Fault) error {
	// Attribute the fault before applying it: a crash migrates sessions
	// away, so the affected set must be captured while they still sit on
	// the target.
	affected := in.affectedSessions(f)
	var err error
	switch f.Kind {
	case DeviceCrash:
		err = in.dom.FailDevice(f.Device)
	case DeviceRejoin:
		err = in.dom.RejoinDevice(f.Device)
	case LinkDegrade:
		var prev netsim.Link
		prev, err = in.dom.DegradeLink(f.LinkA, f.LinkB, f.Factor)
		if err == nil {
			in.prevLinks[linkKey(f.LinkA, f.LinkB)] = prev
		}
	case LinkRestore:
		prev, ok := in.prevLinks[linkKey(f.LinkA, f.LinkB)]
		if !ok {
			return fmt.Errorf("faultinject: restore of never-degraded link %s-%s", f.LinkA, f.LinkB)
		}
		delete(in.prevLinks, linkKey(f.LinkA, f.LinkB))
		err = in.dom.RestoreLink(f.LinkA, f.LinkB, prev)
	case DiscoveryFlap:
		inst := in.dom.Registry.Get(f.Service)
		if inst == nil {
			return fmt.Errorf("faultinject: unknown service %q", f.Service)
		}
		in.dom.Registry.Unregister(f.Service)
		in.flapped[f.Service] = func() error { return in.dom.Registry.Register(inst) }
	case ServiceRestore:
		restore, ok := in.flapped[f.Service]
		if !ok {
			return fmt.Errorf("faultinject: restore of never-flapped service %q", f.Service)
		}
		delete(in.flapped, f.Service)
		err = restore()
	case Stall:
		err = in.stall(f)
	case StallClear:
		err = in.clearStall(f)
	default:
		return fmt.Errorf("faultinject: unknown fault kind %q", f.Kind)
	}
	if err == nil {
		if in.dom.Metrics != nil {
			in.dom.Metrics.Counter(metrics.FaultsInjected).Inc()
			in.dom.Metrics.Counter(metrics.WithLabel(metrics.FaultsInjected, "kind", string(f.Kind))).Inc()
		}
		in.mark(f, affected)
	}
	return err
}

// affectedSessions resolves the sessions a fault concerns: the ones with
// components placed on the faulted device or on either endpoint of the
// faulted link. Discovery flaps target the registry, not placements, so
// they attribute to no session.
func (in *Injector) affectedSessions(f Fault) []string {
	switch f.Kind {
	case DeviceCrash, DeviceRejoin, Stall, StallClear:
		return in.dom.SessionsOn(f.Device)
	case LinkDegrade, LinkRestore:
		sessions := in.dom.SessionsOn(f.LinkA)
		seen := make(map[string]bool, len(sessions))
		for _, s := range sessions {
			seen[s] = true
		}
		for _, s := range in.dom.SessionsOn(f.LinkB) {
			if !seen[s] {
				sessions = append(sessions, s)
			}
		}
		return sessions
	}
	return nil
}

// mark records the applied fault on every affected session's flight
// timeline and in the structured log.
func (in *Injector) mark(f Fault, affected []string) {
	target := string(f.Device)
	switch f.Kind {
	case LinkDegrade, LinkRestore:
		target = string(f.LinkA) + "-" + string(f.LinkB)
	case DiscoveryFlap, ServiceRestore:
		target = f.Service
	}
	var detail map[string]any
	if f.Factor != 0 {
		detail = map[string]any{"factor": f.Factor}
	}
	log := in.dom.Log.Named("faultinject")
	log.Warn("fault injected",
		obslog.String("kind", string(f.Kind)),
		obslog.String("target", target),
		obslog.Int("sessionsAffected", int64(len(affected))))
	for _, session := range affected {
		in.dom.Flight.RecordFault(session, string(f.Kind), target, detail)
	}
}

// stall shrinks the device's capacity to Factor× and announces the
// fluctuation without inline redistribution — the supervisor notices any
// resulting overcommit.
func (in *Injector) stall(f Fault) error {
	dev := in.dom.Devices.Get(f.Device)
	if dev == nil {
		return fmt.Errorf("faultinject: unknown device %s", f.Device)
	}
	if _, stalled := in.prevCaps[f.Device]; stalled {
		return fmt.Errorf("faultinject: device %s already stalled", f.Device)
	}
	cap := dev.Capacity()
	if _, err := dev.Resize(cap.Scale(f.Factor)); err != nil {
		return err
	}
	in.prevCaps[f.Device] = cap
	in.dom.Bus.Publish(eventbus.TopicResourceChanged, string(f.Device))
	return nil
}

func (in *Injector) clearStall(f Fault) error {
	cap, ok := in.prevCaps[f.Device]
	if !ok {
		return fmt.Errorf("faultinject: clear of never-stalled device %s", f.Device)
	}
	delete(in.prevCaps, f.Device)
	dev := in.dom.Devices.Get(f.Device)
	if dev == nil {
		return fmt.Errorf("faultinject: unknown device %s", f.Device)
	}
	if _, err := dev.Resize(cap); err != nil {
		return err
	}
	in.dom.Bus.Publish(eventbus.TopicResourceChanged, string(f.Device))
	return nil
}

// Step applies the next scheduled fault, reporting it and whether one
// remained.
func (in *Injector) Step() (Fault, bool, error) {
	if in.next >= len(in.sched.Faults) {
		return Fault{}, false, nil
	}
	f := in.sched.Faults[in.next]
	in.next++
	return f, true, in.Apply(f)
}

// Run injects the whole schedule, sleeping the scaled-down inter-fault
// gaps (scale is the domain's emulation time scale). A closed stop
// channel aborts between faults. Injection errors end the run.
func (in *Injector) Run(scale float64, stop <-chan struct{}) error {
	if scale <= 0 {
		return fmt.Errorf("faultinject: non-positive scale")
	}
	elapsed := time.Duration(0)
	for {
		if in.next >= len(in.sched.Faults) {
			return nil
		}
		gap := in.sched.Faults[in.next].At - elapsed
		if gap > 0 {
			select {
			case <-time.After(time.Duration(float64(gap) * scale)):
			case <-stop:
				return nil
			}
			elapsed += gap
		}
		if _, _, err := in.Step(); err != nil {
			return err
		}
	}
}

func linkKey(a, b device.ID) [2]device.ID {
	if a > b {
		a, b = b, a
	}
	return [2]device.ID{a, b}
}

// ParseSpec parses the -chaos flag syntax: comma-separated key=value
// pairs, e.g. "seed=7,crashes=2,degrades=1,flaps=1,stalls=1,window=30s,
// recover=10s". Unknown keys fail; counts and targets not present default
// to zero/empty (the caller fills Devices/Links/Services from the live
// domain).
func ParseSpec(spec string) (Params, error) {
	p := Params{Duration: 30 * time.Second, RecoverAfter: 10 * time.Second}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(field), "=", 2)
		if len(kv) != 2 {
			return Params{}, fmt.Errorf("faultinject: malformed spec field %q", field)
		}
		key, val := kv[0], kv[1]
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "crashes":
			p.Crashes, err = strconv.Atoi(val)
		case "degrades":
			p.Degrades, err = strconv.Atoi(val)
		case "flaps":
			p.Flaps, err = strconv.Atoi(val)
		case "stalls":
			p.Stalls, err = strconv.Atoi(val)
		case "window":
			p.Duration, err = time.ParseDuration(val)
		case "recover":
			p.RecoverAfter, err = time.ParseDuration(val)
		case "degrade-factor":
			p.DegradeFactor, err = strconv.ParseFloat(val, 64)
		case "stall-factor":
			p.StallFactor, err = strconv.ParseFloat(val, 64)
		default:
			return Params{}, fmt.Errorf("faultinject: unknown spec key %q", key)
		}
		if err != nil {
			return Params{}, fmt.Errorf("faultinject: bad value for %q: %v", key, err)
		}
	}
	return p, nil
}
