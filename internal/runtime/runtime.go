// Package runtime executes a distributed service graph as an emulated
// media pipeline: every component of a deployed session runs as a
// goroutine on its assigned (emulated) device, sources generate typed
// frames at their configured output rate, transcoders rewrite frame
// formats, buffers pace streams down, and sinks measure the delivered
// frame rate — the "measured QoS" axis of the paper's Figure 3.
//
// The pipeline runs at a configurable time scale so a session that would
// play for minutes on the real testbed completes in milliseconds of wall
// time while reporting full-scale rates.
package runtime

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ubiqos/internal/device"
	"ubiqos/internal/graph"
	"ubiqos/internal/netsim"
)

// Engine deploys sessions onto the emulated smart space.
type Engine struct {
	scale float64
	net   *netsim.Network
}

// NewEngine returns an engine running at the given time scale (1 = real
// time; 0.01 = 100× fast-forward) over the given network (used for
// inter-device frame latency).
func NewEngine(scale float64, net *netsim.Network) (*Engine, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("runtime: scale must be positive, got %g", scale)
	}
	if net == nil {
		return nil, fmt.Errorf("runtime: nil network")
	}
	return &Engine{scale: scale, net: net}, nil
}

// DefaultFrameRate is assumed for sources that do not declare a framerate
// dimension.
const DefaultFrameRate = 30.0

// chanBuffer is the per-edge frame channel capacity; overflowing frames
// are dropped (media streams are lossy) and counted.
const chanBuffer = 16

// TypeBuffer is the component type whose instances pace their stream down
// to the declared output rate (shared vocabulary with the composition
// tier's corrective buffer insertion).
const TypeBuffer = "buffer"

// pacingSlack lets a paced stream tolerate arrival jitter: a frame is
// forwarded when at least slack×interval has elapsed since the last one.
const pacingSlack = 0.9

// Frame is one unit of media data.
type Frame struct {
	// Seq is the stream position (monotonic per source).
	Seq int64
	// Format is the current media encoding.
	Format string
	// Origin is the source component that generated the frame.
	Origin graph.NodeID
}

// Deploy instantiates the service graph with the given placement and
// returns a stopped session; call Start to begin streaming. The placement
// must cover every node. maxFrames bounds each source (0 = unbounded).
func (e *Engine) Deploy(g *graph.Graph, placement map[graph.NodeID]device.ID, startPosition int64, maxFrames int64) (*Session, error) {
	if g == nil || g.NodeCount() == 0 {
		return nil, fmt.Errorf("runtime: empty graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for _, n := range g.Nodes() {
		if _, ok := placement[n.ID]; !ok {
			return nil, fmt.Errorf("runtime: node %s has no placement", n.ID)
		}
	}
	s := &Session{
		engine:      e,
		graph:       g,
		placement:   placement,
		start:       startPosition,
		maxFrames:   maxFrames,
		quit:        make(chan struct{}),
		stats:       make(map[statKey]*rateStat),
		originStats: make(map[statKey]*rateStat),
		procs:       make(map[graph.NodeID]*proc),
	}
	// Build one channel per edge, owned by the consumer side.
	chans := make(map[graph.Edge]chan Frame)
	for _, edge := range g.Edges() {
		chans[edge] = make(chan Frame, chanBuffer)
	}
	for _, n := range g.Nodes() {
		p := &proc{node: n, session: s}
		for _, edge := range g.In(n.ID) {
			p.in = append(p.in, inEdge{from: edge.From, ch: chans[edge]})
		}
		for _, edge := range g.Out(n.ID) {
			p.out = append(p.out, outEdge{to: edge.To, ch: chans[edge]})
		}
		s.procs[n.ID] = p
	}
	return s, nil
}

type inEdge struct {
	from graph.NodeID
	ch   chan Frame
}

type outEdge struct {
	to graph.NodeID
	ch chan Frame
}

type statKey struct {
	sink graph.NodeID
	from graph.NodeID
}

// rateStat accumulates arrivals on one sink edge, including streaming
// inter-arrival statistics for jitter estimation.
type rateStat struct {
	count       int64
	first, last time.Time
	lastSeq     int64
	lastFormat  string
	// Inter-arrival deltas (real time, seconds): streaming sum and sum of
	// squares for the standard deviation.
	dCount       int64
	dSum, dSqSum float64
}

// Session is one deployed application instance.
type Session struct {
	engine    *Engine
	graph     *graph.Graph
	placement map[graph.NodeID]device.ID
	start     int64
	maxFrames int64

	quit    chan struct{}
	wg      sync.WaitGroup
	started bool
	stopped bool
	muState sync.Mutex

	mu          sync.Mutex
	stats       map[statKey]*rateStat
	originStats map[statKey]*rateStat
	dropped     int64

	procs map[graph.NodeID]*proc
}

// Start launches every component goroutine. Start is not reentrant.
func (s *Session) Start() error {
	s.muState.Lock()
	defer s.muState.Unlock()
	if s.started {
		return fmt.Errorf("runtime: session already started")
	}
	s.started = true
	for _, p := range s.procs {
		p := p
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			p.run()
		}()
	}
	return nil
}

// Stop terminates all components and waits for them to exit. Stop is
// idempotent.
func (s *Session) Stop() {
	s.muState.Lock()
	if !s.started || s.stopped {
		s.muState.Unlock()
		return
	}
	s.stopped = true
	s.muState.Unlock()
	close(s.quit)
	s.wg.Wait()
}

// Play runs the session for the given modeled duration (scaled down to
// wall time) and then stops it.
func (s *Session) Play(modeled time.Duration) error {
	if err := s.Start(); err != nil {
		return err
	}
	time.Sleep(time.Duration(float64(modeled) * s.engine.scale))
	s.Stop()
	return nil
}

// MeasuredRate returns the delivered frame rate (modeled fps) observed at
// the sink for frames arriving from the given direct predecessor, and the
// number of frames counted.
func (s *Session) MeasuredRate(sink, from graph.NodeID) (fps float64, frames int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rateLocked(s.stats, statKey{sink: sink, from: from})
}

// SinkRates returns the measured rate for every (sink, predecessor) pair
// with at least one arrival, keyed "sink<-from".
func (s *Session) SinkRates() map[string]float64 {
	out := make(map[string]float64)
	s.mu.Lock()
	keys := make([]statKey, 0, len(s.stats))
	for k := range s.stats {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	for _, k := range keys {
		fps, _ := s.MeasuredRate(k.sink, k.from)
		out[string(k.sink)+"<-"+string(k.from)] = fps
	}
	return out
}

// Position returns the next stream position after the furthest frame
// delivered to any sink — the interruption point a checkpoint should
// capture.
func (s *Session) Position() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	pos := s.start
	for _, st := range s.stats {
		if st.lastSeq+1 > pos {
			pos = st.lastSeq + 1
		}
	}
	return pos
}

// Dropped reports frames discarded on overflowing edges.
func (s *Session) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// LastFormat returns the media format of the most recent frame delivered
// to the sink from the given predecessor.
func (s *Session) LastFormat(sink, from graph.NodeID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.stats[statKey{sink: sink, from: from}]; ok {
		return st.lastFormat
	}
	return ""
}

func (s *Session) recordArrival(sink, from graph.NodeID, f Frame) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	record := func(m map[statKey]*rateStat, k statKey) {
		st, ok := m[k]
		if !ok {
			st = &rateStat{first: now}
			m[k] = st
		}
		if st.count > 0 {
			d := now.Sub(st.last).Seconds()
			st.dCount++
			st.dSum += d
			st.dSqSum += d * d
		}
		st.count++
		st.last = now
		if f.Seq > st.lastSeq {
			st.lastSeq = f.Seq
		}
		st.lastFormat = f.Format
	}
	record(s.stats, statKey{sink: sink, from: from})
	if f.Origin != "" {
		record(s.originStats, statKey{sink: sink, from: f.Origin})
	}
}

// MeasuredJitter returns the standard deviation of the inter-arrival time
// (in modeled time) observed at the sink for frames from the given origin
// source — the delivery jitter a lip-sync or playout buffer must absorb.
func (s *Session) MeasuredJitter(sink, origin graph.NodeID) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.originStats[statKey{sink: sink, from: origin}]
	if !ok || st.dCount < 2 {
		return 0, false
	}
	n := float64(st.dCount)
	mean := st.dSum / n
	variance := st.dSqSum/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	realStd := math.Sqrt(variance)
	return time.Duration(realStd / s.engine.scale * float64(time.Second)), true
}

// MeasuredOriginRate returns the delivered frame rate (modeled fps)
// observed at the sink for frames generated by the given origin source —
// the right measure when a multiplexing component (gateway, lip-sync)
// carries several streams over one edge.
func (s *Session) MeasuredOriginRate(sink, origin graph.NodeID) (fps float64, frames int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rateLocked(s.originStats, statKey{sink: sink, from: origin})
}

// rateLocked computes the modeled rate for one stat entry; callers hold mu.
func (s *Session) rateLocked(m map[statKey]*rateStat, k statKey) (float64, int64) {
	st, ok := m[k]
	if !ok {
		return 0, 0
	}
	if st.count < 2 {
		return 0, st.count
	}
	realElapsed := st.last.Sub(st.first).Seconds()
	if realElapsed <= 0 {
		return 0, st.count
	}
	return float64(st.count-1) / (realElapsed / s.engine.scale), st.count
}

func (s *Session) recordDrop() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}
