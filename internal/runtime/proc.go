package runtime

import (
	"reflect"
	"time"

	"ubiqos/internal/graph"
	"ubiqos/internal/qos"
)

// proc is one running component instance.
type proc struct {
	node    *graph.Node
	session *Session
	in      []inEdge
	out     []outEdge
}

// run dispatches on the component's position in the graph: sources
// generate, sinks consume and measure, everything else transforms and
// forwards.
func (p *proc) run() {
	switch {
	case len(p.in) == 0:
		p.runSource()
	case len(p.out) == 0:
		p.runSink()
	default:
		p.runFilter()
	}
}

// outRate reads the component's configured output frame rate.
func (p *proc) outRate() (float64, bool) {
	v, ok := p.node.Out.Get(qos.DimFrameRate)
	if !ok {
		return 0, false
	}
	switch v.Kind {
	case qos.KindScalar:
		return v.Num, v.Num > 0
	case qos.KindRange:
		return v.Hi, v.Hi > 0
	default:
		return 0, false
	}
}

// outFormat reads the component's configured output format, if symbolic.
func (p *proc) outFormat() string {
	v, ok := p.node.Out.Get(qos.DimFormat)
	if ok && v.Kind == qos.KindSymbol {
		return v.Sym
	}
	return ""
}

// runSource emits frames at the configured rate (scaled), starting at the
// session's start position, until stopped or maxFrames is reached.
func (p *proc) runSource() {
	rate, ok := p.outRate()
	if !ok {
		rate = DefaultFrameRate
	}
	interval := time.Duration(float64(time.Second) / rate * p.session.engine.scale)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	seq := p.session.start
	format := p.outFormat()
	for {
		select {
		case <-p.session.quit:
			return
		case <-ticker.C:
			f := Frame{Seq: seq, Format: format, Origin: p.node.ID}
			seq++
			p.forward(f)
			if p.session.maxFrames > 0 && seq-p.session.start >= p.session.maxFrames {
				return
			}
		}
	}
}

// runSink drains all incoming edges, recording per-edge arrival stats.
func (p *proc) runSink() {
	p.consume(func(graph.NodeID, Frame) {})
}

// runFilter transforms and forwards: the frame's format becomes the
// component's configured output format (transcoding), and buffer
// components pace the stream down to their configured output rate. Only
// buffers pace — transcoders and other filters forward at the arrival
// rate (enforcing rates is the buffer's job in the paper's correction
// model). A single-input buffer gets the full queue-and-ticker treatment
// (absorbing arrival jitter by re-emitting on a fixed cadence); fan-in
// buffers fall back to drop-based pacing with a small slack so a stream
// already at the target rate is not halved by jitter.
func (p *proc) runFilter() {
	format := p.outFormat()
	if rate, ok := p.outRate(); ok && p.node.Type == TypeBuffer && len(p.in) == 1 {
		p.runBuffer(format, rate)
		return
	}
	var minInterval time.Duration
	if rate, ok := p.outRate(); ok && p.node.Type == TypeBuffer {
		minInterval = time.Duration(float64(time.Second) / rate * p.session.engine.scale * pacingSlack)
	}
	var lastEmit time.Time
	p.consume(func(_ graph.NodeID, f Frame) {
		if minInterval > 0 {
			now := time.Now()
			if !lastEmit.IsZero() && now.Sub(lastEmit) < minInterval {
				return // pace: drop the early frame
			}
			lastEmit = now
		}
		if format != "" {
			f.Format = format
		}
		p.forward(f)
	})
}

// bufferQueueCap bounds a buffer's backlog; the oldest frames are dropped
// under overload (live media favors freshness).
const bufferQueueCap = 32

// runBuffer implements the paper's buffer component for the single-input
// case: incoming frames are queued and re-emitted on a fixed cadence at
// the configured output rate, so a too-fast or jittery producer is paced
// down to a smooth stream.
func (p *proc) runBuffer(format string, rate float64) {
	interval := time.Duration(float64(time.Second) / rate * p.session.engine.scale)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	in := p.in[0]
	var queue []Frame
	for {
		select {
		case <-p.session.quit:
			return
		case f, ok := <-in.ch:
			if !ok {
				continue
			}
			p.chargeLinkLatency(in.from)
			if len(queue) == bufferQueueCap {
				queue = queue[1:]
				p.session.recordDrop()
			}
			queue = append(queue, f)
		case <-ticker.C:
			if len(queue) == 0 {
				continue
			}
			f := queue[0]
			queue = queue[1:]
			if format != "" {
				f.Format = format
			}
			p.forward(f)
		}
	}
}

// consume multiplexes all input edges with reflect.Select (component
// fan-in is small) and invokes fn per frame; inter-device edges charge the
// link latency before delivery. It records arrivals when the component is
// a sink.
func (p *proc) consume(fn func(from graph.NodeID, f Frame)) {
	isSink := len(p.out) == 0
	cases := make([]reflect.SelectCase, 0, len(p.in)+1)
	cases = append(cases, reflect.SelectCase{
		Dir:  reflect.SelectRecv,
		Chan: reflect.ValueOf(p.session.quit),
	})
	for _, ie := range p.in {
		cases = append(cases, reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(ie.ch),
		})
	}
	for {
		chosen, val, ok := reflect.Select(cases)
		if chosen == 0 {
			return // quit closed
		}
		if !ok {
			continue
		}
		from := p.in[chosen-1].from
		f := val.Interface().(Frame)
		p.chargeLinkLatency(from)
		if isSink {
			p.session.recordArrival(p.node.ID, from, f)
		}
		fn(from, f)
	}
}

// chargeLinkLatency sleeps the scaled one-way latency when the frame
// crossed a device boundary. Bandwidth adequacy is already guaranteed by
// the distributor's fit-into check and link reservations, so only latency
// is modeled per frame.
func (p *proc) chargeLinkLatency(from graph.NodeID) {
	myDev := p.session.placement[p.node.ID]
	srcDev := p.session.placement[from]
	if myDev == srcDev {
		return
	}
	link, ok := p.session.engine.net.LinkBetween(string(srcDev), string(myDev))
	if !ok {
		return
	}
	delay := time.Duration(link.LatencyMs * float64(time.Millisecond) * p.session.engine.scale)
	if delay > 0 {
		time.Sleep(delay)
	}
}

// forward sends the frame down every outgoing edge without blocking;
// overflowing edges drop the frame.
func (p *proc) forward(f Frame) {
	for _, oe := range p.out {
		select {
		case oe.ch <- f:
		default:
			p.session.recordDrop()
		}
	}
}
