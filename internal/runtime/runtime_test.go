package runtime

import (
	"math"
	"testing"
	"time"

	"ubiqos/internal/device"
	"ubiqos/internal/graph"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

// testScale runs pipelines 10x faster than modeled time (intervals stay
// well above timer granularity even under -race).
const testScale = 0.1

func testNet() *netsim.Network {
	n := netsim.MustNew(testScale)
	n.MustSetLink("pc", "pda", netsim.WLAN)
	n.MustSetLink("pc", "server-host", netsim.Ethernet)
	return n
}

// audioGraph builds server(40fps MP3) -> player, both placeable.
func audioGraph(rate float64) *graph.Graph {
	g := graph.New()
	g.MustAddNode(&graph.Node{
		ID:        "server",
		Type:      "audio-server",
		Out:       qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Scalar(rate))),
		Resources: resource.MB(1, 1),
	})
	g.MustAddNode(&graph.Node{
		ID:        "player",
		Type:      "audio-player",
		In:        qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3))),
		Resources: resource.MB(1, 1),
	})
	g.MustAddEdge("server", "player", 1.5)
	return g
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(0, testNet()); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := NewEngine(1, nil); err == nil {
		t.Error("nil network should fail")
	}
}

func TestDeployValidation(t *testing.T) {
	e, err := NewEngine(testScale, testNet())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Deploy(nil, nil, 0, 0); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := e.Deploy(graph.New(), nil, 0, 0); err == nil {
		t.Error("empty graph should fail")
	}
	g := audioGraph(40)
	if _, err := e.Deploy(g, map[graph.NodeID]device.ID{"server": "pc"}, 0, 0); err == nil {
		t.Error("incomplete placement should fail")
	}
}

func TestMeasuredRateMatchesSourceRate(t *testing.T) {
	e, err := NewEngine(testScale, testNet())
	if err != nil {
		t.Fatal(err)
	}
	g := audioGraph(40)
	placement := map[graph.NodeID]device.ID{"server": "pc", "player": "pc"}
	s, err := e.Deploy(g, placement, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(4 * time.Second); err != nil { // 80ms wall
		t.Fatal(err)
	}
	fps, frames := s.MeasuredRate("player", "server")
	if frames < 50 {
		t.Fatalf("only %d frames delivered", frames)
	}
	if math.Abs(fps-40) > 8 {
		t.Errorf("measured %0.1f fps, want ≈40", fps)
	}
	if s.LastFormat("player", "server") != qos.FormatMP3 {
		t.Errorf("format = %q", s.LastFormat("player", "server"))
	}
}

func TestStartStopSemantics(t *testing.T) {
	e, _ := NewEngine(testScale, testNet())
	s, err := e.Deploy(audioGraph(40), map[graph.NodeID]device.ID{"server": "pc", "player": "pc"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("double start should fail")
	}
	s.Stop()
	s.Stop() // idempotent
}

func TestMaxFramesBoundsSource(t *testing.T) {
	e, _ := NewEngine(testScale, testNet())
	s, err := e.Deploy(audioGraph(100), map[graph.NodeID]device.ID{"server": "pc", "player": "pc"}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, frames := s.MeasuredRate("player", "server")
	if frames != 10 {
		t.Errorf("frames = %d, want exactly 10", frames)
	}
}

func TestPositionAndResume(t *testing.T) {
	e, _ := NewEngine(testScale, testNet())
	placement := map[graph.NodeID]device.ID{"server": "pc", "player": "pc"}
	s1, err := e.Deploy(audioGraph(50), placement, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Play(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	pos := s1.Position()
	if pos < 50 {
		t.Fatalf("position = %d after 2s at 50fps", pos)
	}
	// Resume from the interruption point: sequence numbers continue.
	s2, err := e.Deploy(audioGraph(50), placement, pos, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Play(time.Second); err != nil {
		t.Fatal(err)
	}
	if s2.Position() <= pos {
		t.Errorf("resumed position %d did not advance past %d", s2.Position(), pos)
	}
}

func TestTranscoderRewritesFormat(t *testing.T) {
	g := audioGraph(40)
	tc := &graph.Node{
		ID:        "tc",
		Type:      "transcoder",
		In:        qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3))),
		Out:       qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatWAV))),
		Resources: resource.MB(1, 1),
	}
	if err := g.InsertOnEdge("server", "player", tc, -1, -1); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(testScale, testNet())
	placement := map[graph.NodeID]device.ID{"server": "pc", "tc": "pc", "player": "pda"}
	s, err := e.Deploy(g, placement, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.LastFormat("player", "tc"); got != qos.FormatWAV {
		t.Errorf("delivered format = %q, want WAV after transcoding", got)
	}
	fps, frames := s.MeasuredRate("player", "tc")
	if frames < 20 {
		t.Fatalf("frames = %d", frames)
	}
	if math.Abs(fps-40) > 10 {
		t.Errorf("transcoded rate = %.1f, want ≈40", fps)
	}
}

func TestBufferPacesStreamDown(t *testing.T) {
	g := graph.New()
	g.MustAddNode(&graph.Node{
		ID:        "cam",
		Type:      "camera",
		Out:       qos.V(qos.P(qos.DimFrameRate, qos.Scalar(100))),
		Resources: resource.MB(1, 1),
	})
	g.MustAddNode(&graph.Node{
		ID:        "buf",
		Type:      "buffer",
		Out:       qos.V(qos.P(qos.DimFrameRate, qos.Scalar(25))),
		Resources: resource.MB(1, 1),
	})
	g.MustAddNode(&graph.Node{ID: "view", Type: "viewer", Resources: resource.MB(1, 1)})
	g.MustAddEdge("cam", "buf", 8)
	g.MustAddEdge("buf", "view", 2)
	e, _ := NewEngine(testScale, testNet())
	s, err := e.Deploy(g, map[graph.NodeID]device.ID{"cam": "pc", "buf": "pc", "view": "pc"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps, frames := s.MeasuredRate("view", "buf")
	if frames < 20 {
		t.Fatalf("frames = %d", frames)
	}
	if fps > 35 || fps < 15 {
		t.Errorf("paced rate = %.1f, want ≈25", fps)
	}
}

func TestFanInTwoStreams(t *testing.T) {
	// The video-conferencing shape: video (25fps) and audio (6fps)
	// recorders feeding one client through a shared sink.
	g := graph.New()
	g.MustAddNode(&graph.Node{
		ID: "vrec", Type: "video-recorder",
		Out:       qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatH261)), qos.P(qos.DimFrameRate, qos.Scalar(25))),
		Resources: resource.MB(1, 1),
	})
	g.MustAddNode(&graph.Node{
		ID: "arec", Type: "audio-recorder",
		Out:       qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatPCM)), qos.P(qos.DimFrameRate, qos.Scalar(6))),
		Resources: resource.MB(1, 1),
	})
	g.MustAddNode(&graph.Node{ID: "client", Type: "av-player", Resources: resource.MB(1, 1)})
	g.MustAddEdge("vrec", "client", 4)
	g.MustAddEdge("arec", "client", 0.2)
	e, _ := NewEngine(testScale, testNet())
	s, err := e.Deploy(g, map[graph.NodeID]device.ID{"vrec": "pc", "arec": "pc", "client": "pc"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	vfps, vframes := s.MeasuredRate("client", "vrec")
	afps, aframes := s.MeasuredRate("client", "arec")
	if vframes < 40 || aframes < 10 {
		t.Fatalf("frames v=%d a=%d", vframes, aframes)
	}
	if math.Abs(vfps-25) > 6 {
		t.Errorf("video rate = %.1f, want ≈25", vfps)
	}
	if math.Abs(afps-6) > 2.5 {
		t.Errorf("audio rate = %.1f, want ≈6", afps)
	}
	rates := s.SinkRates()
	if len(rates) != 2 {
		t.Errorf("SinkRates = %v", rates)
	}
}

func TestCrossDeviceLatencyCharged(t *testing.T) {
	// Frames to the PDA cross the WLAN; the session still sustains the
	// rate (latency, not bandwidth, is charged per frame).
	e, _ := NewEngine(testScale, testNet())
	s, err := e.Deploy(audioGraph(40), map[graph.NodeID]device.ID{"server": "pc", "player": "pda"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps, frames := s.MeasuredRate("player", "server")
	if frames < 40 {
		t.Fatalf("frames = %d", frames)
	}
	if math.Abs(fps-40) > 10 {
		t.Errorf("cross-device rate = %.1f, want ≈40", fps)
	}
}

func TestMeasuredRateUnknownPair(t *testing.T) {
	e, _ := NewEngine(testScale, testNet())
	s, err := e.Deploy(audioGraph(40), map[graph.NodeID]device.ID{"server": "pc", "player": "pc"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fps, frames := s.MeasuredRate("ghost", "server"); fps != 0 || frames != 0 {
		t.Errorf("unknown pair = %g, %d", fps, frames)
	}
	s.Stop() // stopping a never-started session is a no-op
}

func TestMeasuredJitter(t *testing.T) {
	e, _ := NewEngine(testScale, testNet())
	s, err := e.Deploy(audioGraph(40), map[graph.NodeID]device.ID{"server": "pc", "player": "pc"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.MeasuredJitter("player", "server"); ok {
		t.Error("jitter before any arrivals should report !ok")
	}
	if err := s.Play(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	j, ok := s.MeasuredJitter("player", "server")
	if !ok {
		t.Fatal("no jitter measurement after playback")
	}
	// A same-host 40 fps stream has a 25ms modeled period; scheduler noise
	// should keep the jitter well under one period.
	if j <= 0 || j > 25*time.Millisecond {
		t.Errorf("jitter = %v, want (0, 25ms)", j)
	}
	if _, ok := s.MeasuredJitter("ghost", "server"); ok {
		t.Error("unknown pair should report !ok")
	}
}

func TestBufferSmoothsJitter(t *testing.T) {
	// A fast producer through a queue-and-ticker buffer: the viewer should
	// see the buffer's fixed cadence — jitter well under one output period
	// — with frames delivered in order.
	g := graph.New()
	g.MustAddNode(&graph.Node{
		ID:        "cam",
		Type:      "camera",
		Out:       qos.V(qos.P(qos.DimFrameRate, qos.Scalar(100))),
		Resources: resource.MB(1, 1),
	})
	g.MustAddNode(&graph.Node{
		ID:        "buf",
		Type:      TypeBuffer,
		Out:       qos.V(qos.P(qos.DimFrameRate, qos.Scalar(20))),
		Resources: resource.MB(1, 1),
	})
	g.MustAddNode(&graph.Node{ID: "view", Type: "viewer", Resources: resource.MB(1, 1)})
	g.MustAddEdge("cam", "buf", 8)
	g.MustAddEdge("buf", "view", 2)
	e, _ := NewEngine(testScale, testNet())
	s, err := e.Deploy(g, map[graph.NodeID]device.ID{"cam": "pc", "buf": "pc", "view": "pc"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps, frames := s.MeasuredRate("view", "buf")
	if frames < 30 {
		t.Fatalf("frames = %d", frames)
	}
	if math.Abs(fps-20) > 4 {
		t.Errorf("buffered rate = %.1f, want ≈20", fps)
	}
	j, ok := s.MeasuredJitter("view", "cam")
	if !ok {
		t.Fatal("no jitter measurement")
	}
	// The output period is 50ms modeled; a fixed-cadence buffer keeps the
	// jitter to a small fraction of it.
	if j > 15*time.Millisecond {
		t.Errorf("jitter through buffer = %v, want well under the 50ms period", j)
	}
}
