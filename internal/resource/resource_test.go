package resource

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorValidate(t *testing.T) {
	tests := []struct {
		name    string
		v       Vector
		wantErr bool
	}{
		{"empty", Vector{}, false},
		{"ok", MB(256, 300), false},
		{"zero", New(2), false},
		{"negative", Vector{-1, 0}, true},
		{"nan", Vector{math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.v.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAdd(t *testing.T) {
	a, b := MB(10, 20), MB(1, 2)
	got := a.Add(b)
	if !got.Equal(MB(11, 22)) {
		t.Errorf("Add = %v", got)
	}
	if !a.Equal(MB(10, 20)) {
		t.Error("Add must not mutate")
	}
}

func TestAddDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	MB(1, 2).Add(Vector{1})
}

func TestSub(t *testing.T) {
	got := MB(10, 20).Sub(MB(4, 30))
	if !got.Equal(MB(6, 0)) {
		t.Errorf("Sub should clamp at zero: %v", got)
	}
}

func TestAddInPlace(t *testing.T) {
	v := MB(1, 2)
	v.AddInPlace(MB(10, 20))
	if !v.Equal(MB(11, 22)) {
		t.Errorf("AddInPlace = %v", v)
	}
}

func TestLessEq(t *testing.T) {
	tests := []struct {
		a, b Vector
		want bool
	}{
		{MB(10, 20), MB(10, 20), true},
		{MB(10, 20), MB(11, 21), true},
		{MB(10, 22), MB(11, 21), false},
		{MB(12, 20), MB(11, 21), false},
		{New(2), MB(0, 0), true},
	}
	for _, tt := range tests {
		if got := tt.a.LessEq(tt.b); got != tt.want {
			t.Errorf("%v.LessEq(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEqualAndIsZeroAndClone(t *testing.T) {
	if MB(1, 2).Equal(Vector{1}) {
		t.Error("different dims must not be equal")
	}
	if !New(3).IsZero() || MB(0, 1).IsZero() {
		t.Error("IsZero mismatch")
	}
	v := MB(5, 6)
	c := v.Clone()
	c[0] = 99
	if v[0] != 5 {
		t.Error("Clone must copy")
	}
	if Vector(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestScale(t *testing.T) {
	if got := MB(2, 4).Scale(2.5); !got.Equal(MB(5, 10)) {
		t.Errorf("Scale = %v", got)
	}
}

func TestWeightedSum(t *testing.T) {
	v := MB(100, 50)
	w := []float64{0.4, 0.4, 0.2} // m+1 weights; network entry ignored
	if got := v.WeightedSum(w); math.Abs(got-60) > 1e-12 {
		t.Errorf("WeightedSum = %g, want 60", got)
	}
	if got := v.WeightedSum(nil); got != 0 {
		t.Errorf("WeightedSum with no weights = %g", got)
	}
}

func TestRelativeLoad(t *testing.T) {
	r := MB(64, 50)
	ra := MB(256, 100)
	w := []float64{0.4, 0.4}
	want := 0.4*64/256 + 0.4*50/100
	if got := r.RelativeLoad(ra, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("RelativeLoad = %g, want %g", got, want)
	}
	if got := MB(1, 0).RelativeLoad(MB(0, 100), w); !math.IsInf(got, 1) {
		t.Errorf("nonzero requirement on zero availability should be +Inf, got %g", got)
	}
	if got := MB(0, 0).RelativeLoad(MB(0, 0), w); got != 0 {
		t.Errorf("zero requirement should cost 0, got %g", got)
	}
}

func TestSum(t *testing.T) {
	got := Sum(2, MB(1, 2), MB(3, 4), MB(5, 6))
	if !got.Equal(MB(9, 12)) {
		t.Errorf("Sum = %v", got)
	}
	if !Sum(2).Equal(New(2)) {
		t.Error("empty Sum should be zero vector")
	}
}

func TestString(t *testing.T) {
	got := Vector{256, 300, 7}.String()
	if !strings.Contains(got, "256MB") || !strings.Contains(got, "300%") || !strings.Contains(got, "7") {
		t.Errorf("String() = %q", got)
	}
}

func TestWeights(t *testing.T) {
	w, err := NewWeights(0.3, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Network() != 0.4 || w.Dims() != 2 {
		t.Errorf("Network/Dims = %g/%d", w.Network(), w.Dims())
	}
	if got := w.EndSystem(); !reflect.DeepEqual(got, []float64{0.3, 0.3}) {
		t.Errorf("EndSystem = %v", got)
	}
	cases := []struct {
		name string
		ws   []float64
	}{
		{"too few", []float64{1}},
		{"negative", []float64{-0.5, 1.5}},
		{"not summing to one", []float64{0.5, 0.6}},
		{"nan", []float64{math.NaN(), 1}},
	}
	for _, c := range cases {
		if _, err := NewWeights(c.ws...); err == nil {
			t.Errorf("%s: NewWeights(%v) should fail", c.name, c.ws)
		}
	}
}

func TestUniformWeights(t *testing.T) {
	w := UniformWeights(2)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 || math.Abs(w[0]-1.0/3) > 1e-12 {
		t.Errorf("UniformWeights = %v", w)
	}
}

func TestNormalizerPaperExample(t *testing.T) {
	// Laptop benchmark; PDA at 0.4x speed, PC at 5x speed (paper §3.3).
	pda, err := SpeedNormalizer(0.4)
	if err != nil {
		t.Fatal(err)
	}
	got := pda.Availability(MB(32, 100))
	if !got.Equal(MB(32, 40)) {
		t.Errorf("N(RA_PDA) = %v, want [32MB, 40%%]", got)
	}
	pc, err := SpeedNormalizer(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := pc.Availability(MB(256, 100)); !got.Equal(MB(256, 500)) {
		t.Errorf("N(RA_PC) = %v, want [256MB, 500%%]", got)
	}
	if got := pc.Requirement(MB(10, 20)); !got.Equal(MB(10, 100)) {
		t.Errorf("N(R) = %v, want [10MB, 100%%]", got)
	}
}

func TestNormalizerValidation(t *testing.T) {
	if _, err := NewNormalizer(1, 0); err == nil {
		t.Error("zero factor should fail")
	}
	if _, err := NewNormalizer(1, -2); err == nil {
		t.Error("negative factor should fail")
	}
}

func TestIdentityNormalizer(t *testing.T) {
	id := Identity(2)
	v := MB(12, 34)
	if got := id.Availability(v); !got.Equal(v) {
		t.Errorf("identity normalization changed %v to %v", v, got)
	}
}

// genVector produces a random nonnegative 2-dim vector.
func genVector(r *rand.Rand) Vector {
	return MB(float64(r.Intn(512)), float64(r.Intn(600)))
}

type vecGen struct{ V Vector }

// Generate implements quick.Generator.
func (vecGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(vecGen{V: genVector(r)})
}

func TestPropAddCommutativeAssociative(t *testing.T) {
	prop := func(a, b, c vecGen) bool {
		if !a.V.Add(b.V).Equal(b.V.Add(a.V)) {
			return false
		}
		return a.V.Add(b.V).Add(c.V).Equal(a.V.Add(b.V.Add(c.V)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropLessEqPartialOrder(t *testing.T) {
	prop := func(a, b, c vecGen) bool {
		if !a.V.LessEq(a.V) { // reflexive
			return false
		}
		if a.V.LessEq(b.V) && b.V.LessEq(c.V) && !a.V.LessEq(c.V) { // transitive
			return false
		}
		if a.V.LessEq(b.V) && b.V.LessEq(a.V) && !a.V.Equal(b.V) { // antisymmetric
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddMonotone(t *testing.T) {
	// a ≤ b implies a+c ≤ b+c.
	prop := func(a, b, c vecGen) bool {
		if !a.V.LessEq(b.V) {
			return true
		}
		return a.V.Add(c.V).LessEq(b.V.Add(c.V))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubAddClamped(t *testing.T) {
	// (a-b)+b ≥ a is false in general under clamping, but a-(a) is zero
	// and a-b ≤ a always holds.
	prop := func(a, b vecGen) bool {
		if !a.V.Sub(a.V).IsZero() {
			return false
		}
		return a.V.Sub(b.V).LessEq(a.V)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
