package resource

import (
	"fmt"
	"math"
)

// Weights holds the m+1 nonnegative significance weights of Definition 3.5:
// one per end-system resource dimension plus a final weight for the network
// resource. The weights must sum to 1. Higher weights mark more critical
// resources, so that minimizing cost aggregation minimizes consumption of
// the most critical resources first.
type Weights []float64

// weightSumTolerance absorbs floating-point error when validating Σw = 1.
const weightSumTolerance = 1e-9

// NewWeights validates and returns the weight vector. It expects at least
// two entries (one resource dimension and the network dimension).
func NewWeights(ws ...float64) (Weights, error) {
	w := Weights(ws)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// UniformWeights returns m+1 equal weights summing to 1 for m end-system
// resource dimensions plus the network dimension.
func UniformWeights(m int) Weights {
	w := make(Weights, m+1)
	for i := range w {
		w[i] = 1 / float64(m+1)
	}
	return w
}

// Validate checks nonnegativity and Σw = 1 (within tolerance).
func (w Weights) Validate() error {
	if len(w) < 2 {
		return fmt.Errorf("resource: need at least 2 weights (m resources + network), got %d", len(w))
	}
	var sum float64
	for i, x := range w {
		if math.IsNaN(x) || x < 0 {
			return fmt.Errorf("resource: weight %d is invalid (%g)", i, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > weightSumTolerance {
		return fmt.Errorf("resource: weights sum to %g, want 1", sum)
	}
	return nil
}

// EndSystem returns the weights for the end-system dimensions (all but the
// last entry).
func (w Weights) EndSystem() []float64 { return w[:len(w)-1] }

// Network returns the weight of the network resource (the last entry).
func (w Weights) Network() float64 { return w[len(w)-1] }

// Dims returns the number of end-system resource dimensions m.
func (w Weights) Dims() int { return len(w) - 1 }
