// Package resource implements the end-system resource model of the service
// distribution tier (Gu & Nahrstedt, ICDCS 2002, §3.3): resource requirement
// vectors R, resource availability vectors RA, vector addition (Definition
// 3.1), the component-wise ≤ relation (Definition 3.2), weighted sums used
// by the distribution heuristic, and normalization of heterogeneous device
// capacities against a benchmark machine.
//
// By convention throughout this repository, dimension 0 is memory in MB and
// dimension 1 is CPU in percent of one benchmark-machine processor (so a
// device twice as fast as the benchmark has a normalized CPU availability of
// 200%). The package itself supports any dimensionality m ≥ 1.
package resource

import (
	"fmt"
	"math"
	"strings"
)

// Conventional dimension indices. The package works with arbitrary
// dimensions; these constants name the two the paper's evaluation uses.
const (
	// Memory is the index of the memory dimension (MB).
	Memory = 0
	// CPU is the index of the CPU dimension (% of a benchmark processor).
	CPU = 1
)

// Dims is the dimensionality used by the paper's evaluation (memory, CPU).
const Dims = 2

// Vector is an end-system resource vector: a requirement R or an
// availability RA. All values are normalized to the benchmark machine
// (see Normalizer). The zero-length vector is valid and acts as "no
// resources".
type Vector []float64

// New returns a zero vector of dimension m.
func New(m int) Vector { return make(Vector, m) }

// MB constructs the conventional two-dimensional [memory MB, cpu %] vector.
func MB(memMB, cpuPct float64) Vector { return Vector{memMB, cpuPct} }

// Validate reports an error if the vector contains NaN or negative entries.
func (v Vector) Validate() error {
	for i, x := range v {
		if math.IsNaN(x) {
			return fmt.Errorf("resource: dimension %d is NaN", i)
		}
		if x < 0 {
			return fmt.Errorf("resource: dimension %d is negative (%g)", i, x)
		}
	}
	return nil
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + o (Definition 3.1). It panics if the dimensions differ;
// the model requires R and RA to "represent the same set of resources and
// obey the same order".
func (v Vector) Add(o Vector) Vector {
	mustSameDim(v, o)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + o[i]
	}
	return out
}

// Sub returns v − o, clamped at zero per dimension. It is used for
// availability accounting when admitting a component.
func (v Vector) Sub(o Vector) Vector {
	mustSameDim(v, o)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - o[i]
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// AddInPlace accumulates o into v.
func (v Vector) AddInPlace(o Vector) {
	mustSameDim(v, o)
	for i := range v {
		v[i] += o[i]
	}
}

// LessEq reports v ≤ o component-wise (Definition 3.2): a requirement
// vector fits an availability vector.
func (v Vector) LessEq(o Vector) bool {
	mustSameDim(v, o)
	for i := range v {
		if v[i] > o[i] {
			return false
		}
	}
	return true
}

// Equal reports exact component-wise equality.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Scale returns v with every component multiplied by f.
func (v Vector) Scale(f float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * f
	}
	return out
}

// WeightedSum returns Σ w_i·v_i over the end-system dimensions. The
// distribution heuristic measures "resource availability" and "resource
// requirement" of a device or component by this weighted sum (§3.3,
// footnote 3). weights may carry m+1 entries (the last being the network
// weight); only the first len(v) are used.
func (v Vector) WeightedSum(weights []float64) float64 {
	var s float64
	for i := range v {
		if i < len(weights) {
			s += weights[i] * v[i]
		}
	}
	return s
}

// RelativeLoad returns Σ w_i · v_i/avail_i, the cost-aggregation
// contribution of placing requirement v on a device with availability
// avail (Definition 3.5, first term, for a single device). Dimensions with
// zero availability contribute +Inf when the requirement is non-zero and 0
// when it is zero.
func (v Vector) RelativeLoad(avail Vector, weights []float64) float64 {
	mustSameDim(v, avail)
	var s float64
	for i := range v {
		var w float64
		if i < len(weights) {
			w = weights[i]
		}
		switch {
		case v[i] == 0:
			// no contribution
		case avail[i] == 0:
			return math.Inf(1)
		default:
			s += w * v[i] / avail[i]
		}
	}
	return s
}

// String renders the vector as "[v0, v1, ...]" with conventional units for
// the standard two dimensions.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		switch i {
		case Memory:
			parts[i] = fmt.Sprintf("%gMB", x)
		case CPU:
			parts[i] = fmt.Sprintf("%g%%", x)
		default:
			parts[i] = fmt.Sprintf("%g", x)
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func mustSameDim(a, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("resource: dimension mismatch %d vs %d", len(a), len(b)))
	}
}

// Sum returns the component-wise sum of the given vectors; an empty input
// yields a zero vector of dimension m.
func Sum(m int, vs ...Vector) Vector {
	out := New(m)
	for _, v := range vs {
		out.AddInPlace(v)
	}
	return out
}
