package resource

import "fmt"

// Normalizer converts raw resource vectors measured on a heterogeneous
// device into benchmark-machine units (§3.3 of the paper). Memory-like
// dimensions are unaffected by device heterogeneity (factor 1); CPU-like
// dimensions scale by the speed ratio between the device and the benchmark
// machine. The paper's example: with a laptop benchmark, a PDA's
// [32MB, 100%] becomes [32MB, 40%] and a PC's [256MB, 100%] becomes
// [256MB, 500%].
type Normalizer struct {
	// Factors holds the per-dimension multiplier from device-local units to
	// benchmark units.
	Factors Vector
}

// NewNormalizer builds a normalizer from per-dimension factors. A factor of
// 1 means the dimension is heterogeneity-independent.
func NewNormalizer(factors ...float64) (*Normalizer, error) {
	for i, f := range factors {
		if f <= 0 {
			return nil, fmt.Errorf("resource: normalization factor %d must be positive, got %g", i, f)
		}
	}
	return &Normalizer{Factors: Vector(factors).Clone()}, nil
}

// SpeedNormalizer returns the conventional two-dimensional normalizer for a
// device whose CPU runs at speedRatio times the benchmark machine's speed.
// Memory is unaffected.
func SpeedNormalizer(speedRatio float64) (*Normalizer, error) {
	return NewNormalizer(1, speedRatio)
}

// Availability converts a device-local availability vector RA into
// benchmark units: N(RA)_i = factor_i · RA_i. A faster device exposes more
// benchmark-equivalent CPU.
func (n *Normalizer) Availability(ra Vector) Vector {
	mustSameDim(ra, n.Factors)
	out := make(Vector, len(ra))
	for i := range ra {
		out[i] = ra[i] * n.Factors[i]
	}
	return out
}

// Requirement converts a requirement vector measured on this device into
// benchmark units: a workload consuming 50% of a half-speed CPU consumes
// 25% of the benchmark CPU, so N(R)_i = factor_i · R_i as well. Profiling
// measured on the benchmark machine itself uses the identity normalizer.
func (n *Normalizer) Requirement(r Vector) Vector {
	return n.Availability(r)
}

// Identity returns the identity normalizer of dimension m.
func Identity(m int) *Normalizer {
	f := make(Vector, m)
	for i := range f {
		f[i] = 1
	}
	return &Normalizer{Factors: f}
}
