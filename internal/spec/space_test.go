package spec

import (
	"strings"
	"testing"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/domain"
	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

const labSpace = `
// A two-desktop-plus-PDA smart space with the audio components.
space "lab" {
    device desktop1 {
        class  = "desktop"
        memory = 256
        cpu    = 100
        attrs { platform = "pc" }
    }
    device desktop2 {
        class  = "desktop"
        memory = 256
        cpu    = 100
        attrs { platform = "pc" }
    }
    device pda1 {
        class  = "pda"
        memory = 32
        cpu    = 100
        attrs { platform = "pda" }
    }

    link desktop1 desktop2 = "ethernet"
    link desktop1 pda1 = "wlan"
    link desktop2 pda1 { bandwidth = 5 latency = 5 }
    uplink desktop1 = "ethernet"
    uplink desktop2 = "ethernet"
    uplink pda1 = "wlan"

    instance "audio-server-1" {
        type   = "audio-server"
        output { format = "MPEG" framerate = 40 }
        capability { framerate = 5..60 }
        adjustable = ["framerate"]
        resources { memory = 64 cpu = 50 }
        size = 12
        installed = ["*"]
    }
    instance "pc-player" {
        type  = "audio-player"
        attrs { platform = "pc" }
        input { format = "MPEG" framerate = 10..50 }
        resources { memory = 16 cpu = 30 }
        size = 4
        installed = ["*"]
    }
    instance "pda-player" {
        type  = "audio-player"
        attrs { platform = "pda" }
        input { format = "WAV" framerate = 10..44 }
        resources { memory = 8 cpu = 10 }
        size = 2
        installed = ["*"]
    }
    instance "mpeg2wav" {
        type  = "transcoder"
        attrs { from = "MPEG" to = "WAV" }
        input  { format = "MPEG" }
        output { format = "WAV" }
        passthrough = ["framerate"]
        resources { memory = 12 cpu = 25 }
        size = 3
        installed = ["*"]
    }
}
`

func TestParseSpace(t *testing.T) {
	sp, err := ParseSpace(labSpace)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "lab" || len(sp.Devices) != 3 || len(sp.Links) != 3 || len(sp.Uplinks) != 3 || len(sp.Instances) != 4 {
		t.Fatalf("space = %+v", sp)
	}
	if sp.Devices[2].ID != "pda1" || sp.Devices[2].Memory != 32 {
		t.Errorf("pda = %+v", sp.Devices[2])
	}
	if sp.Links[2].BandwidthMbps != 5 || sp.Links[2].LatencyMs != 5 {
		t.Errorf("explicit link = %+v", sp.Links[2])
	}
	srv := sp.Instances[0]
	if srv.Adjustable[0] != "framerate" || srv.SizeMB != 12 {
		t.Errorf("server = %+v", srv)
	}
	if got, _ := srv.Capability.Get("framerate"); !got.Equal(qos.Range(5, 60)) {
		t.Errorf("capability = %v", got)
	}
	tc := sp.Instances[3]
	if tc.PassThrough[0] != "framerate" || tc.Attrs["from"] != "MPEG" {
		t.Errorf("transcoder = %+v", tc)
	}
}

func TestBuildDomainEndToEnd(t *testing.T) {
	// The space document must produce a domain that can run the paper's
	// audio scenario end to end, including a PDA handoff with transcoder
	// insertion.
	dom, err := LoadSpace(labSpace, domain.Options{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer dom.Close()

	if dom.Devices.Len() != 3 || dom.Registry.Len() != 4 {
		t.Fatalf("domain: %d devices, %d services", dom.Devices.Len(), dom.Registry.Len())
	}
	// Normalization applied: desktop raw 100% CPU -> 500%.
	if got := dom.Devices.Get("desktop1").Capacity(); !got.Equal(resource.MB(256, 500)) {
		t.Errorf("desktop capacity = %v", got)
	}

	ag, userQoS, _, err := Load(audioSpec)
	if err != nil {
		t.Fatal(err)
	}
	// audioSpec includes an optional equalizer that won't be discovered —
	// that's fine, it is neglected.
	active, err := dom.StartApp(core.Request{
		SessionID:    "music",
		App:          ag,
		UserQoS:      userQoS,
		ClientDevice: "desktop2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if active.Placement["player"] != "desktop2" || active.Placement["server"] != "desktop1" {
		t.Errorf("placement = %v", active.Placement)
	}
	moved, err := dom.SwitchDevice("music", "pda1")
	if err != nil {
		t.Fatal(err)
	}
	if len(moved.Report.Transcoders) != 1 {
		t.Errorf("transcoders = %v", moved.Report.Transcoders)
	}
	time.Sleep(20 * time.Millisecond)
	if err := dom.StopApp("music"); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpaceErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing space keyword", `device d {}`, `expected "space"`},
		{"missing name", `space { }`, "expected space name"},
		{"unknown block", `space "x" { banana }`, "expected 'device'"},
		{"device missing class", `space "x" { device d { memory = 1 cpu = 1 } }`, "missing required field 'class'"},
		{"unknown class", `space "x" { device d { class = "mainframe" memory = 1 cpu = 1 } }`, "unknown device class"},
		{"nonpositive capacity", `space "x" { device d { class = "pda" memory = 0 cpu = 1 } }`, "positive"},
		{"unknown device field", `space "x" { device d { wheels = 4 } }`, "unknown device field"},
		{"unknown preset", `space "x" { device a { class="pda" memory=1 cpu=1 } device b { class="pda" memory=1 cpu=1 } link a b = "carrier-pigeon" }`, "unknown link preset"},
		{"link needs bandwidth", `space "x" { device a { class="pda" memory=1 cpu=1 } device b { class="pda" memory=1 cpu=1 } link a b { latency = 1 } }`, "positive bandwidth"},
		{"unknown link field", `space "x" { device a { class="pda" memory=1 cpu=1 } device b { class="pda" memory=1 cpu=1 } link a b { mtu = 1500 } }`, "unknown link field"},
		{"link malformed", `space "x" { device a { class="pda" memory=1 cpu=1 } device b { class="pda" memory=1 cpu=1 } link a b 5 }`, "expected '='"},
		{"uplink preset", `space "x" { device a { class="pda" memory=1 cpu=1 } uplink a = "tin-cans" }`, "unknown link preset"},
		{"instance missing type", `space "x" { instance "i" { size = 1 } }`, "missing required field 'type'"},
		{"unknown instance field", `space "x" { instance "i" { type = "t" color = "red" } }`, "unknown instance field"},
		{"unknown resource field", `space "x" { instance "i" { type = "t" resources { gpu = 1 } } }`, "unknown resource field"},
		{"bad list", `space "x" { instance "i" { type = "t" adjustable = [5] } }`, "expected string in list"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpace(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want %q", err, c.wantErr)
			}
		})
	}
}

func TestBuildDomainErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"duplicate device", `space "x" {
			device a { class="pda" memory=1 cpu=1 }
			device a { class="pda" memory=1 cpu=1 }
		}`, "duplicate"},
		{"link to undeclared", `space "x" {
			device a { class="pda" memory=1 cpu=1 }
			link a ghost = "wlan"
		}`, "undeclared device"},
		{"uplink to undeclared", `space "x" {
			uplink ghost = "wlan"
		}`, "undeclared device"},
		{"installed on undeclared", `space "x" {
			device a { class="pda" memory=1 cpu=1 }
			instance "i" { type = "t" installed = ["ghost"] }
		}`, "undeclared device"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp, err := ParseSpace(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = sp.BuildDomain(domain.Options{Scale: 0.1})
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want %q", err, c.wantErr)
			}
		})
	}
}
