package spec

import (
	"ubiqos/internal/composer"
	"ubiqos/internal/core"
	"ubiqos/internal/graph"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
)

// Compile lowers a parsed App to the composer's abstract service graph and
// the user QoS vector, validating cross-references (flow endpoints must
// name declared services, service IDs must be unique, and the graph must
// be a DAG).
func (a *App) Compile() (*composer.AbstractGraph, qos.Vector, error) {
	ag := composer.NewAbstractGraph()
	for i := range a.Services {
		svc := &a.Services[i]
		pin := svc.Pin
		if pin == ClientPin {
			pin = core.ClientRole
		}
		node := &composer.AbstractNode{
			ID: graph.NodeID(svc.ID),
			Spec: registry.Spec{
				Type:   svc.Type,
				Attrs:  svc.Attrs,
				Input:  svc.Input,
				Output: svc.Output,
			},
			Optional: svc.Optional,
			Pin:      pin,
		}
		if err := ag.AddNode(node); err != nil {
			return nil, nil, errAt(svc.Line, "%v", err)
		}
	}
	for _, fl := range a.Flows {
		if err := ag.AddEdge(graph.NodeID(fl.From), graph.NodeID(fl.To), fl.ThroughputMbps); err != nil {
			return nil, nil, errAt(fl.Line, "%v", err)
		}
	}
	if err := ag.Validate(); err != nil {
		return nil, nil, err
	}
	return ag, a.UserQoS.Clone(), nil
}

// Load parses and compiles a specification source in one step.
func Load(src string) (*composer.AbstractGraph, qos.Vector, string, error) {
	app, err := Parse(src)
	if err != nil {
		return nil, nil, "", err
	}
	ag, userQoS, err := app.Compile()
	if err != nil {
		return nil, nil, "", err
	}
	return ag, userQoS, app.Name, nil
}
