// Package spec implements the declarative application specification
// language the configuration model assumes developers use (paper §3.1:
// "the developer should specify the application service at a high level of
// abstraction ... several programming environments and specification
// languages have been proposed", citing the authors' XML-based QoS
// enabling language). A spec describes an application as abstractly-typed
// services, their QoS requirements, and the flows between them; it
// compiles to a composer.AbstractGraph plus the user QoS vector.
//
// Example:
//
//	app "mobile-audio" {
//	    qos { framerate = 38..44 }
//
//	    service server {
//	        type = "audio-server"
//	        pin  = "desktop1"
//	    }
//	    service player {
//	        type = "audio-player"
//	        pin  = client
//	        attrs { platform = "pda" }
//	        optional
//	    }
//
//	    flow server -> player @ 1.5
//	}
package spec

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLBrace
	tokRBrace
	tokAssign
	tokArrow
	tokAt
	tokDotDot
	tokComma
	tokLBracket
	tokRBracket
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokAssign:
		return "'='"
	case tokArrow:
		return "'->'"
	case tokAt:
		return "'@'"
	case tokDotDot:
		return "'..'"
	case tokComma:
		return "','"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// token is one lexical unit with its source line for error messages.
type token struct {
	kind tokenKind
	text string
	line int
}

// ParseError reports a syntax or semantic error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

// Error renders the error with its line number.
func (e *ParseError) Error() string {
	return fmt.Sprintf("spec: line %d: %s", e.Line, e.Msg)
}

func errAt(line int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lexer scans the input rune by rune.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.peek()
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line := l.line
	r := l.peek()
	switch {
	case r == 0:
		return token{kind: tokEOF, line: line}, nil
	case r == '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", line: line}, nil
	case r == '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", line: line}, nil
	case r == '[':
		l.advance()
		return token{kind: tokLBracket, text: "[", line: line}, nil
	case r == ']':
		l.advance()
		return token{kind: tokRBracket, text: "]", line: line}, nil
	case r == ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line}, nil
	case r == '=':
		l.advance()
		return token{kind: tokAssign, text: "=", line: line}, nil
	case r == '@':
		l.advance()
		return token{kind: tokAt, text: "@", line: line}, nil
	case r == '-':
		l.advance()
		if l.peek() == '>' {
			l.advance()
			return token{kind: tokArrow, text: "->", line: line}, nil
		}
		// A negative number.
		if unicode.IsDigit(l.peek()) {
			num, err := l.lexNumber(line)
			if err != nil {
				return token{}, err
			}
			num.text = "-" + num.text
			return num, nil
		}
		return token{}, errAt(line, "unexpected '-'")
	case r == '.':
		l.advance()
		if l.peek() == '.' {
			l.advance()
			return token{kind: tokDotDot, text: "..", line: line}, nil
		}
		return token{}, errAt(line, "unexpected '.' (did you mean '..'?)")
	case r == '"':
		return l.lexString(line)
	case unicode.IsDigit(r):
		return l.lexNumber(line)
	case unicode.IsLetter(r) || r == '_':
		return l.lexIdent(line), nil
	default:
		return token{}, errAt(line, "unexpected character %q", r)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.peek() != 0 && l.peek() != '\n' {
				l.advance()
			}
		case r == '#':
			for l.peek() != 0 && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) lexString(line int) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r := l.peek()
		switch r {
		case 0, '\n':
			return token{}, errAt(line, "unterminated string")
		case '"':
			l.advance()
			return token{kind: tokString, text: b.String(), line: line}, nil
		case '\\':
			l.advance()
			esc := l.advance()
			switch esc {
			case '"', '\\':
				b.WriteRune(esc)
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			default:
				return token{}, errAt(line, "unknown escape \\%c", esc)
			}
		default:
			b.WriteRune(l.advance())
		}
	}
}

func (l *lexer) lexNumber(line int) (token, error) {
	var b strings.Builder
	for unicode.IsDigit(l.peek()) {
		b.WriteRune(l.advance())
	}
	// A fraction — but not the '..' range operator.
	if l.peek() == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1]) {
		b.WriteRune(l.advance())
		for unicode.IsDigit(l.peek()) {
			b.WriteRune(l.advance())
		}
	}
	return token{kind: tokNumber, text: b.String(), line: line}, nil
}

func (l *lexer) lexIdent(line int) token {
	var b strings.Builder
	for unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_' || l.peek() == '-' {
		b.WriteRune(l.advance())
	}
	return token{kind: tokIdent, text: b.String(), line: line}
}

// lexAll tokenizes the whole input (used by the parser).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
