package spec

import (
	"strings"
	"testing"

	"ubiqos/internal/core"
	"ubiqos/internal/qos"
)

const audioSpec = `
// The paper's mobile audio-on-demand application.
app "mobile-audio" {
    qos { framerate = 38..44 }

    service server {
        type = "audio-server"
        pin  = "desktop1"
        output { format = "MPEG" }
    }
    service player {
        type = "audio-player"
        pin  = client
    }
    service equalizer {
        type = "equalizer"
        optional
        attrs { vendor = "acme" }
    }

    flow server -> equalizer @ 1.5
    flow equalizer -> player @ 1.5
}
`

func TestParseFullSpec(t *testing.T) {
	app, err := Parse(audioSpec)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "mobile-audio" {
		t.Errorf("Name = %q", app.Name)
	}
	if got, _ := app.UserQoS.Get("framerate"); !got.Equal(qos.Range(38, 44)) {
		t.Errorf("UserQoS framerate = %v", got)
	}
	if len(app.Services) != 3 {
		t.Fatalf("services = %d", len(app.Services))
	}
	srv := app.Services[0]
	if srv.ID != "server" || srv.Type != "audio-server" || srv.Pin != "desktop1" {
		t.Errorf("server = %+v", srv)
	}
	if got, _ := srv.Output.Get("format"); !got.Equal(qos.Symbol("MPEG")) {
		t.Errorf("server output = %v", srv.Output)
	}
	if app.Services[1].Pin != ClientPin {
		t.Errorf("player pin = %q", app.Services[1].Pin)
	}
	eq := app.Services[2]
	if !eq.Optional || eq.Attrs["vendor"] != "acme" {
		t.Errorf("equalizer = %+v", eq)
	}
	if len(app.Flows) != 2 || app.Flows[0].ThroughputMbps != 1.5 {
		t.Errorf("flows = %+v", app.Flows)
	}
}

func TestCompile(t *testing.T) {
	ag, userQoS, name, err := Load(audioSpec)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mobile-audio" {
		t.Errorf("name = %q", name)
	}
	if ag.NodeCount() != 3 || len(ag.Edges()) != 2 {
		t.Errorf("graph: %d nodes, %d edges", ag.NodeCount(), len(ag.Edges()))
	}
	if ag.Node("player").Pin != core.ClientRole {
		t.Errorf("player pin = %q, want core.ClientRole", ag.Node("player").Pin)
	}
	if ag.Node("server").Pin != "desktop1" {
		t.Errorf("server pin = %q", ag.Node("server").Pin)
	}
	if !ag.Node("equalizer").Optional {
		t.Error("equalizer must be optional")
	}
	if got, _ := userQoS.Get("framerate"); !got.Equal(qos.Range(38, 44)) {
		t.Errorf("userQoS = %v", userQoS)
	}
}

func TestQoSValueForms(t *testing.T) {
	src := `app "x" {
		qos {
			framerate  = 25
			window     = 10..30
			format     = "MPEG"
			accepts    = ["WAV", "MP3"]
		}
		service s { type = "t" }
	}`
	app, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dim  string
		want qos.Value
	}{
		{"framerate", qos.Scalar(25)},
		{"window", qos.Range(10, 30)},
		{"format", qos.Symbol("MPEG")},
		{"accepts", qos.Set("WAV", "MP3")},
	}
	for _, c := range cases {
		if got, ok := app.UserQoS.Get(c.dim); !ok || !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.dim, got, c.want)
		}
	}
}

func TestFlowDefaultThroughput(t *testing.T) {
	src := `app "x" {
		service a { type = "t" }
		service b { type = "t" }
		flow a -> b
	}`
	app, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if app.Flows[0].ThroughputMbps != defaultThroughputMbps {
		t.Errorf("throughput = %g", app.Flows[0].ThroughputMbps)
	}
}

func TestCommentsAndEscapes(t *testing.T) {
	src := `# hash comment
	app "quoted \"name\"" { // trailing comment
		service s { type = "a-b_c" }
	}`
	app, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != `quoted "name"` {
		t.Errorf("Name = %q", app.Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing app keyword", `service s {}`, `expected "app"`},
		{"missing name", `app { }`, "expected application name"},
		{"empty name", `app "" {}`, "empty application name"},
		{"unterminated string", `app "x`, "unterminated string"},
		{"unknown field", `app "x" { service s { type = "t" bogus = "y" } }`, "unknown service field"},
		{"missing type", `app "x" { service s { } }`, "missing required field 'type'"},
		{"bad pin", `app "x" { service s { type = "t" pin = 5 } }`, "pin must be"},
		{"duplicate attr", `app "x" { service s { type = "t" attrs { a = "1" a = "2" } } }`, "duplicate attribute"},
		{"duplicate qos block", `app "x" { qos { a = 1 } qos { b = 2 } service s { type = "t" } }`, "duplicate qos block"},
		{"duplicate qos dim", `app "x" { qos { a = 1 a = 2 } }`, "duplicate QoS dimension"},
		{"inverted range", `app "x" { qos { a = 30..10 } }`, "invalid range"},
		{"empty set", `app "x" { qos { a = [] } }`, "empty symbol set"},
		{"bad set element", `app "x" { qos { a = [5] } }`, "expected string in set"},
		{"stray dot", `app "x" { qos { a = 1.. } }`, "expected range upper bound"},
		{"single dot", `app "x" { qos { a . } }`, "did you mean"},
		{"bad flow target", `app "x" { service a { type = "t" } flow a -> }`, "expected flow target"},
		{"flow missing arrow", `app "x" { service a { type = "t" } flow a a }`, "expected '->'"},
		{"bad throughput", `app "x" { service a { type="t" } service b { type="t" } flow a -> b @ "x" }`, "expected throughput"},
		{"unexpected char", `app "x" { % }`, "unexpected character"},
		{"unknown escape", `app "\q" {}`, "unknown escape"},
		{"unexpected top-level", `app "x" { 42 }`, "expected 'qos', 'service', 'flow'"},
		{"trailing garbage", `app "x" { service s { type = "t" } } extra`, "expected end of input"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("Parse should fail")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want substring %q", err, c.wantErr)
			}
			var pe *ParseError
			if !errorsAs(err, &pe) {
				t.Errorf("error type = %T, want *ParseError", err)
			} else if pe.Line < 1 {
				t.Errorf("line = %d", pe.Line)
			}
		})
	}
}

// errorsAs is a tiny local wrapper to keep the test import list small.
func errorsAs(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"duplicate service", `app "x" { service s { type = "t" } service s { type = "t" } }`, "duplicate"},
		{"unknown flow source", `app "x" { service b { type = "t" } flow a -> b }`, "does not exist"},
		{"cycle", `app "x" {
			service a { type = "t" }
			service b { type = "t" }
			flow a -> b
			flow b -> a
		}`, "cycle"},
		{"no services", `app "x" { }`, "empty"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			app, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse failed early: %v", err)
			}
			if _, _, err := app.Compile(); err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Compile err = %v, want %q", err, c.wantErr)
			}
		})
	}
}

func TestNegativeNumberLexes(t *testing.T) {
	src := `app "x" { qos { a = -5 } service s { type = "t" } }`
	app, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := app.UserQoS.Get("a"); !got.Equal(qos.Scalar(-5)) {
		t.Errorf("a = %v", got)
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	src := "app \"x\" {\n\n  service s {\n    bogus\n  }\n}"
	_, err := Parse(src)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if pe.Line != 4 {
		t.Errorf("line = %d, want 4", pe.Line)
	}
}
