package spec

import (
	"strconv"

	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/repository"
	"ubiqos/internal/resource"
)

// Space is a parsed smart-space configuration: the devices, links, and
// service instances of one domain. It is the deployment-side counterpart
// of App — where App describes what the developer wants to run, Space
// describes the environment the domain server manages.
//
// Example:
//
//	space "lab" {
//	    device desktop1 {
//	        class  = "desktop"
//	        memory = 256
//	        cpu    = 100
//	        attrs { platform = "pc" }
//	    }
//	    device pda1 {
//	        class  = "pda"
//	        memory = 32
//	        cpu    = 100
//	        attrs { platform = "pda" }
//	    }
//
//	    link desktop1 pda1 = "wlan"
//	    uplink desktop1 = "ethernet"
//	    uplink pda1 = "wlan"
//
//	    instance "audio-server-1" {
//	        type   = "audio-server"
//	        output { format = "MPEG" framerate = 40 }
//	        capability { framerate = 5..60 }
//	        adjustable = ["framerate"]
//	        resources { memory = 64 cpu = 50 }
//	        size = 12
//	        installed = ["desktop1"]
//	    }
//	}
type Space struct {
	Name      string
	Devices   []SpaceDevice
	Links     []SpaceLink
	Uplinks   []SpaceUplink
	Instances []SpaceInstance
}

// SpaceDevice declares one device with its raw (un-normalized) capacity.
type SpaceDevice struct {
	ID     string
	Class  device.Class
	Memory float64
	CPU    float64
	Attrs  map[string]string
	Line   int
}

// SpaceLink declares a symmetric link between two devices. Either Preset
// names a built-in link class ("ethernet", "lan10", "wlan") or Bandwidth/
// Latency give explicit parameters.
type SpaceLink struct {
	A, B          string
	Preset        string
	BandwidthMbps float64
	LatencyMs     float64
	Line          int
}

// SpaceUplink connects a device to the domain server host (component
// downloads).
type SpaceUplink struct {
	Device string
	Preset string
	Line   int
}

// SpaceInstance declares one service instance in the discovery catalog.
type SpaceInstance struct {
	Name        string
	Type        string
	Attrs       map[string]string
	Input       qos.Vector
	Output      qos.Vector
	Capability  qos.Vector
	Adjustable  []string
	PassThrough []string
	Memory, CPU float64
	SizeMB      float64
	// Installed lists devices the instance is pre-installed on; the
	// special entry "*" installs it everywhere.
	Installed []string
	Line      int
}

// linkPreset resolves a named link class.
func linkPreset(name string, line int) (netsim.Link, error) {
	switch name {
	case "ethernet":
		return netsim.Ethernet, nil
	case "lan10":
		return netsim.LAN10, nil
	case "wlan":
		return netsim.WLAN, nil
	default:
		return netsim.Link{}, errAt(line, "unknown link preset %q (want ethernet, lan10, or wlan)", name)
	}
}

// classByName resolves a device class name.
func classByName(name string, line int) (device.Class, error) {
	switch name {
	case "desktop":
		return device.ClassDesktop, nil
	case "laptop":
		return device.ClassLaptop, nil
	case "pda":
		return device.ClassPDA, nil
	case "workstation":
		return device.ClassWorkstation, nil
	case "gateway":
		return device.ClassGateway, nil
	case "server":
		return device.ClassServer, nil
	default:
		return 0, errAt(line, "unknown device class %q", name)
	}
}

// ParseSpace parses a smart-space configuration document.
func ParseSpace(src string) (*Space, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sp, err := p.parseSpace()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return sp, nil
}

func (p *parser) parseSpace() (*Space, error) {
	if err := p.expectKeyword("space"); err != nil {
		return nil, err
	}
	name := p.peek()
	if name.kind != tokString || name.text == "" {
		return nil, errAt(name.line, "expected space name string")
	}
	p.advance()
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	sp := &Space{Name: name.text}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.advance()
			return sp, nil
		case t.kind == tokIdent && t.text == "device":
			d, err := p.parseSpaceDevice()
			if err != nil {
				return nil, err
			}
			sp.Devices = append(sp.Devices, *d)
		case t.kind == tokIdent && t.text == "link":
			l, err := p.parseSpaceLink()
			if err != nil {
				return nil, err
			}
			sp.Links = append(sp.Links, *l)
		case t.kind == tokIdent && t.text == "uplink":
			u, err := p.parseSpaceUplink()
			if err != nil {
				return nil, err
			}
			sp.Uplinks = append(sp.Uplinks, *u)
		case t.kind == tokIdent && t.text == "instance":
			in, err := p.parseSpaceInstance()
			if err != nil {
				return nil, err
			}
			sp.Instances = append(sp.Instances, *in)
		default:
			return nil, errAt(t.line, "expected 'device', 'link', 'uplink', 'instance', or '}', got %s %q", t.kind, t.text)
		}
	}
}

func (p *parser) parseSpaceDevice() (*SpaceDevice, error) {
	p.advance() // 'device'
	id := p.peek()
	if id.kind != tokIdent {
		return nil, errAt(id.line, "expected device name, got %s", id.kind)
	}
	p.advance()
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	d := &SpaceDevice{ID: id.text, Line: id.line}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.advance()
			if d.Class == 0 {
				return nil, errAt(d.Line, "device %q missing required field 'class'", d.ID)
			}
			if d.Memory <= 0 || d.CPU <= 0 {
				return nil, errAt(d.Line, "device %q needs positive 'memory' and 'cpu'", d.ID)
			}
			return d, nil
		case t.kind == tokIdent && t.text == "class":
			p.advance()
			s, err := p.parseStringAssign()
			if err != nil {
				return nil, err
			}
			cl, err := classByName(s, t.line)
			if err != nil {
				return nil, err
			}
			d.Class = cl
		case t.kind == tokIdent && t.text == "memory":
			p.advance()
			v, err := p.parseNumberAssign()
			if err != nil {
				return nil, err
			}
			d.Memory = v
		case t.kind == tokIdent && t.text == "cpu":
			p.advance()
			v, err := p.parseNumberAssign()
			if err != nil {
				return nil, err
			}
			d.CPU = v
		case t.kind == tokIdent && t.text == "attrs":
			p.advance()
			attrs, err := p.parseAttrsBlock()
			if err != nil {
				return nil, err
			}
			d.Attrs = attrs
		default:
			return nil, errAt(t.line, "unknown device field %q", t.text)
		}
	}
}

// parseNumberAssign parses: = NUMBER
func (p *parser) parseNumberAssign() (float64, error) {
	if err := p.expect(tokAssign); err != nil {
		return 0, err
	}
	t := p.peek()
	if t.kind != tokNumber {
		return 0, errAt(t.line, "expected number, got %s", t.kind)
	}
	p.advance()
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, errAt(t.line, "bad number %q", t.text)
	}
	return v, nil
}

func (p *parser) parseSpaceLink() (*SpaceLink, error) {
	p.advance() // 'link'
	a := p.peek()
	if a.kind != tokIdent {
		return nil, errAt(a.line, "expected link endpoint, got %s", a.kind)
	}
	p.advance()
	b := p.peek()
	if b.kind != tokIdent {
		return nil, errAt(b.line, "expected link endpoint, got %s", b.kind)
	}
	p.advance()
	l := &SpaceLink{A: a.text, B: b.text, Line: a.line}
	t := p.peek()
	switch t.kind {
	case tokAssign:
		p.advance()
		v := p.peek()
		if v.kind != tokString {
			return nil, errAt(v.line, "expected link preset string, got %s", v.kind)
		}
		p.advance()
		if _, err := linkPreset(v.text, v.line); err != nil {
			return nil, err
		}
		l.Preset = v.text
	case tokLBrace:
		p.advance()
		for {
			f := p.peek()
			if f.kind == tokRBrace {
				p.advance()
				break
			}
			if f.kind != tokIdent {
				return nil, errAt(f.line, "expected link field, got %s", f.kind)
			}
			p.advance()
			v, err := p.parseNumberAssign()
			if err != nil {
				return nil, err
			}
			switch f.text {
			case "bandwidth":
				l.BandwidthMbps = v
			case "latency":
				l.LatencyMs = v
			default:
				return nil, errAt(f.line, "unknown link field %q", f.text)
			}
		}
		if l.BandwidthMbps <= 0 {
			return nil, errAt(l.Line, "link %s-%s needs positive bandwidth", l.A, l.B)
		}
	default:
		return nil, errAt(t.line, "expected '=' preset or '{' parameters after link endpoints")
	}
	return l, nil
}

func (p *parser) parseSpaceUplink() (*SpaceUplink, error) {
	p.advance() // 'uplink'
	dev := p.peek()
	if dev.kind != tokIdent {
		return nil, errAt(dev.line, "expected uplink device, got %s", dev.kind)
	}
	p.advance()
	s, err := p.parseStringAssign()
	if err != nil {
		return nil, err
	}
	if _, err := linkPreset(s, dev.line); err != nil {
		return nil, err
	}
	return &SpaceUplink{Device: dev.text, Preset: s, Line: dev.line}, nil
}

func (p *parser) parseSpaceInstance() (*SpaceInstance, error) {
	p.advance() // 'instance'
	name := p.peek()
	if name.kind != tokString || name.text == "" {
		return nil, errAt(name.line, "expected instance name string")
	}
	p.advance()
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	in := &SpaceInstance{Name: name.text, Line: name.line}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.advance()
			if in.Type == "" {
				return nil, errAt(in.Line, "instance %q missing required field 'type'", in.Name)
			}
			return in, nil
		case t.kind == tokIdent && t.text == "type":
			p.advance()
			s, err := p.parseStringAssign()
			if err != nil {
				return nil, err
			}
			in.Type = s
		case t.kind == tokIdent && t.text == "attrs":
			p.advance()
			attrs, err := p.parseAttrsBlock()
			if err != nil {
				return nil, err
			}
			in.Attrs = attrs
		case t.kind == tokIdent && (t.text == "input" || t.text == "output" || t.text == "capability"):
			p.advance()
			v, err := p.parseQoSBlock()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "input":
				in.Input = v
			case "output":
				in.Output = v
			case "capability":
				in.Capability = v
			}
		case t.kind == tokIdent && (t.text == "adjustable" || t.text == "passthrough" || t.text == "installed"):
			p.advance()
			list, err := p.parseStringListAssign()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "adjustable":
				in.Adjustable = list
			case "passthrough":
				in.PassThrough = list
			case "installed":
				in.Installed = list
			}
		case t.kind == tokIdent && t.text == "resources":
			p.advance()
			if err := p.expect(tokLBrace); err != nil {
				return nil, err
			}
			for {
				f := p.peek()
				if f.kind == tokRBrace {
					p.advance()
					break
				}
				if f.kind != tokIdent {
					return nil, errAt(f.line, "expected resource field, got %s", f.kind)
				}
				p.advance()
				v, err := p.parseNumberAssign()
				if err != nil {
					return nil, err
				}
				switch f.text {
				case "memory":
					in.Memory = v
				case "cpu":
					in.CPU = v
				default:
					return nil, errAt(f.line, "unknown resource field %q", f.text)
				}
			}
		case t.kind == tokIdent && t.text == "size":
			p.advance()
			v, err := p.parseNumberAssign()
			if err != nil {
				return nil, err
			}
			in.SizeMB = v
		default:
			return nil, errAt(t.line, "unknown instance field %q", t.text)
		}
	}
}

// parseStringListAssign parses: = ["a", "b", ...]
func (p *parser) parseStringListAssign() ([]string, error) {
	if err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	if err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	var out []string
	for {
		t := p.peek()
		if t.kind == tokRBracket {
			p.advance()
			return out, nil
		}
		if t.kind != tokString {
			return nil, errAt(t.line, "expected string in list, got %s", t.kind)
		}
		p.advance()
		out = append(out, t.text)
		if p.peek().kind == tokComma {
			p.advance()
		}
	}
}

// BuildDomain constructs and wires a domain from the space configuration.
func (sp *Space) BuildDomain(opts domain.Options) (*domain.Domain, error) {
	d, err := domain.New(sp.Name, opts)
	if err != nil {
		return nil, err
	}
	deviceIDs := make(map[string]bool, len(sp.Devices))
	for _, sd := range sp.Devices {
		if _, err := d.AddDevice(device.ID(sd.ID), sd.Class, resource.MB(sd.Memory, sd.CPU), sd.Attrs); err != nil {
			return nil, errAt(sd.Line, "%v", err)
		}
		deviceIDs[sd.ID] = true
	}
	for _, sl := range sp.Links {
		if !deviceIDs[sl.A] || !deviceIDs[sl.B] {
			return nil, errAt(sl.Line, "link references undeclared device")
		}
		link := netsim.Link{BandwidthMbps: sl.BandwidthMbps, LatencyMs: sl.LatencyMs}
		if sl.Preset != "" {
			link, err = linkPreset(sl.Preset, sl.Line)
			if err != nil {
				return nil, err
			}
		}
		if err := d.Connect(device.ID(sl.A), device.ID(sl.B), link); err != nil {
			return nil, errAt(sl.Line, "%v", err)
		}
	}
	for _, su := range sp.Uplinks {
		if !deviceIDs[su.Device] {
			return nil, errAt(su.Line, "uplink references undeclared device %q", su.Device)
		}
		link, err := linkPreset(su.Preset, su.Line)
		if err != nil {
			return nil, err
		}
		if err := d.ConnectServer(device.ID(su.Device), link); err != nil {
			return nil, errAt(su.Line, "%v", err)
		}
	}
	for _, si := range sp.Instances {
		inst := &registry.Instance{
			Name:          si.Name,
			Type:          si.Type,
			Attrs:         si.Attrs,
			Input:         si.Input,
			Output:        si.Output,
			OutCapability: si.Capability,
			Resources:     resource.MB(si.Memory, si.CPU),
			SizeMB:        si.SizeMB,
		}
		if len(si.Adjustable) > 0 {
			inst.Adjustable = make(map[string]bool, len(si.Adjustable))
			for _, dim := range si.Adjustable {
				inst.Adjustable[dim] = true
			}
		}
		if len(si.PassThrough) > 0 {
			inst.PassThrough = make(map[string]bool, len(si.PassThrough))
			for _, dim := range si.PassThrough {
				inst.PassThrough[dim] = true
			}
		}
		if err := d.Registry.Register(inst); err != nil {
			return nil, errAt(si.Line, "%v", err)
		}
		if si.SizeMB > 0 {
			if err := d.Repo.Publish(repository.Package{Name: si.Name, SizeMB: si.SizeMB}); err != nil {
				return nil, errAt(si.Line, "%v", err)
			}
		}
		for _, target := range si.Installed {
			if target == "*" {
				for id := range deviceIDs {
					d.Repo.MarkInstalled(id, si.Name)
				}
				continue
			}
			if !deviceIDs[target] {
				return nil, errAt(si.Line, "installed references undeclared device %q", target)
			}
			d.Repo.MarkInstalled(target, si.Name)
		}
	}
	return d, nil
}

// LoadSpace parses a space document and builds its domain in one step.
func LoadSpace(src string, opts domain.Options) (*domain.Domain, error) {
	sp, err := ParseSpace(src)
	if err != nil {
		return nil, err
	}
	return sp.BuildDomain(opts)
}
