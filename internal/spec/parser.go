package spec

import (
	"strconv"

	"ubiqos/internal/qos"
)

// App is the parsed application specification.
type App struct {
	// Name labels the application (the session-ID default).
	Name string
	// UserQoS is the application-level user QoS requirement block.
	UserQoS qos.Vector
	// Services are the abstract service declarations in source order.
	Services []Service
	// Flows are the declared data flows.
	Flows []Flow
}

// Service is one abstract service declaration.
type Service struct {
	// ID is the graph node ID.
	ID string
	// Type is the abstract service type (required).
	Type string
	// Pin names the device the service must run on; the special identifier
	// `client` pins to the user's portal device.
	Pin string
	// Optional marks services the composer may neglect when discovery
	// fails.
	Optional bool
	// Attrs are required instance attributes.
	Attrs map[string]string
	// Input and Output are desired QoS vectors for discovery.
	Input, Output qos.Vector
	// Line records the declaration site for diagnostics.
	Line int
}

// Flow is one declared producer→consumer data flow.
type Flow struct {
	From, To string
	// ThroughputMbps is the communication throughput (1 when omitted).
	ThroughputMbps float64
	Line           int
}

// ClientPin is the identifier that pins a service to the portal device;
// it compiles to core.ClientRole.
const ClientPin = "client"

// defaultThroughputMbps applies when a flow omits the '@ rate' clause.
const defaultThroughputMbps = 1.0

// Parse parses an application specification.
func Parse(src string) (*App, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	app, err := p.parseApp()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return app, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) error {
	t := p.peek()
	if t.kind != kind {
		return errAt(t.line, "expected %s, got %s %q", kind, t.kind, t.text)
	}
	p.advance()
	return nil
}

// expectKeyword consumes an identifier with the exact text.
func (p *parser) expectKeyword(word string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != word {
		return errAt(t.line, "expected %q, got %s %q", word, t.kind, t.text)
	}
	p.advance()
	return nil
}

// parseApp parses: app "name" { body }
func (p *parser) parseApp() (*App, error) {
	if err := p.expectKeyword("app"); err != nil {
		return nil, err
	}
	name := p.peek()
	if name.kind != tokString {
		return nil, errAt(name.line, "expected application name string, got %s", name.kind)
	}
	p.advance()
	if name.text == "" {
		return nil, errAt(name.line, "empty application name")
	}
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	app := &App{Name: name.text}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.advance()
			return app, nil
		case t.kind == tokIdent && t.text == "qos":
			p.advance()
			if len(app.UserQoS) > 0 {
				return nil, errAt(t.line, "duplicate qos block")
			}
			v, err := p.parseQoSBlock()
			if err != nil {
				return nil, err
			}
			app.UserQoS = v
		case t.kind == tokIdent && t.text == "service":
			svc, err := p.parseService()
			if err != nil {
				return nil, err
			}
			app.Services = append(app.Services, *svc)
		case t.kind == tokIdent && t.text == "flow":
			fl, err := p.parseFlow()
			if err != nil {
				return nil, err
			}
			app.Flows = append(app.Flows, *fl)
		default:
			return nil, errAt(t.line, "expected 'qos', 'service', 'flow', or '}', got %s %q", t.kind, t.text)
		}
	}
}

// parseService parses: service NAME { fields }
func (p *parser) parseService() (*Service, error) {
	if err := p.expectKeyword("service"); err != nil {
		return nil, err
	}
	id := p.peek()
	if id.kind != tokIdent {
		return nil, errAt(id.line, "expected service name, got %s", id.kind)
	}
	p.advance()
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	svc := &Service{ID: id.text, Line: id.line}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.advance()
			if svc.Type == "" {
				return nil, errAt(svc.Line, "service %q missing required field 'type'", svc.ID)
			}
			return svc, nil
		case t.kind == tokIdent && t.text == "type":
			p.advance()
			s, err := p.parseStringAssign()
			if err != nil {
				return nil, err
			}
			svc.Type = s
		case t.kind == tokIdent && t.text == "pin":
			p.advance()
			if err := p.expect(tokAssign); err != nil {
				return nil, err
			}
			v := p.peek()
			switch {
			case v.kind == tokString && v.text != "":
				svc.Pin = v.text
			case v.kind == tokIdent && v.text == ClientPin:
				svc.Pin = ClientPin
			default:
				return nil, errAt(v.line, "pin must be a device string or the identifier 'client'")
			}
			p.advance()
		case t.kind == tokIdent && t.text == "optional":
			p.advance()
			svc.Optional = true
		case t.kind == tokIdent && t.text == "attrs":
			p.advance()
			attrs, err := p.parseAttrsBlock()
			if err != nil {
				return nil, err
			}
			if svc.Attrs == nil {
				svc.Attrs = attrs
			} else {
				for k, v := range attrs {
					svc.Attrs[k] = v
				}
			}
		case t.kind == tokIdent && t.text == "input":
			p.advance()
			v, err := p.parseQoSBlock()
			if err != nil {
				return nil, err
			}
			svc.Input = v
		case t.kind == tokIdent && t.text == "output":
			p.advance()
			v, err := p.parseQoSBlock()
			if err != nil {
				return nil, err
			}
			svc.Output = v
		default:
			return nil, errAt(t.line, "unknown service field %q", t.text)
		}
	}
}

// parseStringAssign parses: = "value"
func (p *parser) parseStringAssign() (string, error) {
	if err := p.expect(tokAssign); err != nil {
		return "", err
	}
	t := p.peek()
	if t.kind != tokString {
		return "", errAt(t.line, "expected string, got %s", t.kind)
	}
	p.advance()
	return t.text, nil
}

// parseAttrsBlock parses: { key = "value" ... }
func (p *parser) parseAttrsBlock() (map[string]string, error) {
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	attrs := make(map[string]string)
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.advance()
			return attrs, nil
		}
		if t.kind != tokIdent {
			return nil, errAt(t.line, "expected attribute name, got %s", t.kind)
		}
		p.advance()
		val, err := p.parseStringAssign()
		if err != nil {
			return nil, err
		}
		if _, dup := attrs[t.text]; dup {
			return nil, errAt(t.line, "duplicate attribute %q", t.text)
		}
		attrs[t.text] = val
	}
}

// parseQoSBlock parses: { name = VALUE ... } where VALUE is a number, a
// lo..hi range, a string symbol, or a [ "a", "b" ] set.
func (p *parser) parseQoSBlock() (qos.Vector, error) {
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var v qos.Vector
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.advance()
			if err := v.Validate(); err != nil {
				return nil, errAt(t.line, "%v", err)
			}
			return v, nil
		}
		if t.kind != tokIdent {
			return nil, errAt(t.line, "expected QoS dimension name, got %s", t.kind)
		}
		p.advance()
		if v.Has(t.text) {
			return nil, errAt(t.line, "duplicate QoS dimension %q", t.text)
		}
		if err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		val, err := p.parseQoSValue()
		if err != nil {
			return nil, err
		}
		v = v.With(t.text, val)
	}
}

func (p *parser) parseQoSValue() (qos.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		lo, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return qos.Value{}, errAt(t.line, "bad number %q", t.text)
		}
		if p.peek().kind == tokDotDot {
			p.advance()
			hiTok := p.peek()
			if hiTok.kind != tokNumber {
				return qos.Value{}, errAt(hiTok.line, "expected range upper bound, got %s", hiTok.kind)
			}
			p.advance()
			hi, err := strconv.ParseFloat(hiTok.text, 64)
			if err != nil {
				return qos.Value{}, errAt(hiTok.line, "bad number %q", hiTok.text)
			}
			if !qos.ValidRange(lo, hi) {
				return qos.Value{}, errAt(t.line, "invalid range %g..%g", lo, hi)
			}
			return qos.Range(lo, hi), nil
		}
		return qos.Scalar(lo), nil
	case tokString:
		p.advance()
		if t.text == "" {
			return qos.Value{}, errAt(t.line, "empty symbol")
		}
		return qos.Symbol(t.text), nil
	case tokLBracket:
		p.advance()
		var syms []string
		for {
			el := p.peek()
			if el.kind == tokRBracket {
				p.advance()
				if len(syms) == 0 {
					return qos.Value{}, errAt(el.line, "empty symbol set")
				}
				return qos.Set(syms...), nil
			}
			if el.kind != tokString {
				return qos.Value{}, errAt(el.line, "expected string in set, got %s", el.kind)
			}
			p.advance()
			syms = append(syms, el.text)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
	default:
		return qos.Value{}, errAt(t.line, "expected number, range, string, or set, got %s %q", t.kind, t.text)
	}
}

// parseFlow parses: flow A -> B [@ rate]
func (p *parser) parseFlow() (*Flow, error) {
	if err := p.expectKeyword("flow"); err != nil {
		return nil, err
	}
	from := p.peek()
	if from.kind != tokIdent {
		return nil, errAt(from.line, "expected flow source service, got %s", from.kind)
	}
	p.advance()
	if err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	to := p.peek()
	if to.kind != tokIdent {
		return nil, errAt(to.line, "expected flow target service, got %s", to.kind)
	}
	p.advance()
	fl := &Flow{From: from.text, To: to.text, ThroughputMbps: defaultThroughputMbps, Line: from.line}
	if p.peek().kind == tokAt {
		p.advance()
		rate := p.peek()
		if rate.kind != tokNumber {
			return nil, errAt(rate.line, "expected throughput after '@', got %s", rate.kind)
		}
		p.advance()
		tp, err := strconv.ParseFloat(rate.text, 64)
		if err != nil || tp < 0 {
			return nil, errAt(rate.line, "bad throughput %q", rate.text)
		}
		fl.ThroughputMbps = tp
	}
	return fl, nil
}
