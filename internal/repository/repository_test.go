package repository

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ubiqos/internal/netsim"
)

func testNet(t *testing.T) *netsim.Network {
	t.Helper()
	n := netsim.MustNew(1e-6) // effectively no real sleeping in tests
	n.MustSetLink("server", "pc", netsim.Ethernet)
	n.MustSetLink("server", "pda", netsim.WLAN)
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", testNet(t)); err == nil {
		t.Error("empty host should fail")
	}
	if _, err := New("server", nil); err == nil {
		t.Error("nil network should fail")
	}
}

func TestPublishValidation(t *testing.T) {
	r, err := New("server", testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(Package{}); err == nil {
		t.Error("empty name should fail")
	}
	if err := r.Publish(Package{Name: "x", SizeMB: -1}); err == nil {
		t.Error("negative size should fail")
	}
	r.MustPublish(Package{Name: "player", SizeMB: 4})
	if !r.Has("player") || r.Has("ghost") {
		t.Error("Has mismatch")
	}
}

func TestEnsureDownloadsOnce(t *testing.T) {
	r, err := New("server", testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	r.MustPublish(Package{Name: "player", SizeMB: 1}) // 1MB over WLAN ≈ 1.6s modeled
	d1, err := r.Ensure("pda", "player")
	if err != nil {
		t.Fatal(err)
	}
	if d1 < time.Second {
		t.Errorf("first download modeled %v, want ≥ 1s over WLAN", d1)
	}
	if !r.Installed("pda", "player") {
		t.Error("package not marked installed")
	}
	d2, err := r.Ensure("pda", "player")
	if err != nil {
		t.Fatal(err)
	}
	if d2 != 0 {
		t.Errorf("second download modeled %v, want 0 (already installed)", d2)
	}
}

func TestEnsureWiredFasterThanWireless(t *testing.T) {
	r, err := New("server", testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	r.MustPublish(Package{Name: "player", SizeMB: 2})
	dPC, err := r.Ensure("pc", "player")
	if err != nil {
		t.Fatal(err)
	}
	dPDA, err := r.Ensure("pda", "player")
	if err != nil {
		t.Fatal(err)
	}
	if dPC >= dPDA {
		t.Errorf("ethernet download (%v) should beat wireless (%v)", dPC, dPDA)
	}
}

func TestEnsureErrors(t *testing.T) {
	r, err := New("server", testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Ensure("pc", "ghost"); err == nil || !strings.Contains(err.Error(), "not published") {
		t.Errorf("err = %v", err)
	}
	r.MustPublish(Package{Name: "player", SizeMB: 1})
	if _, err := r.Ensure("island", "player"); err == nil {
		t.Error("device with no link should fail")
	}
}

func TestMarkInstalledAndUninstall(t *testing.T) {
	r, err := New("server", testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	r.MustPublish(Package{Name: "player", SizeMB: 5})
	r.MarkInstalled("pda", "player")
	d, err := r.Ensure("pda", "player")
	if err != nil || d != 0 {
		t.Errorf("pre-installed package should not download: %v, %v", d, err)
	}
	if !r.Uninstall("pda", "player") || r.Uninstall("pda", "player") {
		t.Error("Uninstall semantics wrong")
	}
	if r.Installed("pda", "player") {
		t.Error("still installed after uninstall")
	}
}

func TestConcurrentEnsure(t *testing.T) {
	r, err := New("server", testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	r.MustPublish(Package{Name: "player", SizeMB: 1})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Ensure("pc", "player"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if !r.Installed("pc", "player") {
		t.Error("not installed after concurrent ensure")
	}
}
