// Package repository implements the component repository of the domain
// server: service component packages are published with their sizes, and
// devices download them on demand over the emulated network. The dynamic
// downloading overhead — the dominant share of the configuration overhead
// in the paper's Figure 4 — is the modeled transfer time from the
// repository host to the target device, skipped entirely when the
// component is already installed.
package repository

import (
	"fmt"
	"sync"
	"time"

	"ubiqos/internal/netsim"
)

// Package is one downloadable component implementation.
type Package struct {
	// Name is the component instance name (matches registry.Instance.Name).
	Name string
	// SizeMB is the package size driving the download time.
	SizeMB float64
}

// Repository stores packages and tracks per-device installations. All
// methods are safe for concurrent use.
type Repository struct {
	// Host is the network endpoint the repository serves from (usually the
	// domain server's device).
	Host string

	net *netsim.Network

	mu        sync.Mutex
	packages  map[string]Package
	installed map[string]map[string]bool // device -> package -> installed
}

// New returns an empty repository served from host over the given network.
func New(host string, net *netsim.Network) (*Repository, error) {
	if host == "" {
		return nil, fmt.Errorf("repository: empty host")
	}
	if net == nil {
		return nil, fmt.Errorf("repository: nil network")
	}
	return &Repository{
		Host:      host,
		net:       net,
		packages:  make(map[string]Package),
		installed: make(map[string]map[string]bool),
	}, nil
}

// Publish adds or replaces a package.
func (r *Repository) Publish(p Package) error {
	if p.Name == "" {
		return fmt.Errorf("repository: package with empty name")
	}
	if p.SizeMB < 0 {
		return fmt.Errorf("repository: package %q with negative size", p.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.packages[p.Name] = p
	return nil
}

// MustPublish is Publish that panics on error.
func (r *Repository) MustPublish(p Package) {
	if err := r.Publish(p); err != nil {
		panic(err)
	}
}

// Has reports whether the named package is published.
func (r *Repository) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.packages[name]
	return ok
}

// MarkInstalled records that the package is pre-installed on the device
// (the paper's audio-on-demand experiment assumes "the required service
// components are already installed on the target devices in advance").
func (r *Repository) MarkInstalled(device, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.installed[device] == nil {
		r.installed[device] = make(map[string]bool)
	}
	r.installed[device][name] = true
}

// Installed reports whether the package is present on the device.
func (r *Repository) Installed(device, name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.installed[device][name]
}

// Uninstall removes a package from a device (e.g. when evicted) and
// reports whether it was installed.
func (r *Repository) Uninstall(device, name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.installed[device][name] {
		return false
	}
	delete(r.installed[device], name)
	return true
}

// Ensure makes the named package available on the device, downloading it
// from the repository host when missing. It returns the modeled download
// duration (zero when already installed) — the "dynamic downloading"
// component of the configuration overhead.
func (r *Repository) Ensure(device, name string) (time.Duration, error) {
	r.mu.Lock()
	pkg, ok := r.packages[name]
	already := r.installed[device][name]
	r.mu.Unlock()
	if already {
		// Already on the device; no repository involvement needed.
		return 0, nil
	}
	if !ok {
		return 0, fmt.Errorf("repository: package %q not published", name)
	}
	d, err := r.net.Transfer(r.Host, device, pkg.SizeMB)
	if err != nil {
		return 0, fmt.Errorf("repository: download %q to %s: %w", name, device, err)
	}
	r.MarkInstalled(device, name)
	return d, nil
}
