package obslog

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i", String("k", "v"))
	l.Warn("w")
	l.Error("e", Err(errors.New("boom")))
	l.AddSink(NewRingSink(4))
	if got := l.Named("x").ForSession("s", "t").With(Int("n", 1)); got != nil {
		t.Fatalf("children of nil logger must be nil, got %v", got)
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must not report enabled")
	}
}

func TestLevelsAndFields(t *testing.T) {
	ring := NewRingSink(16)
	l := New(LevelInfo, ring)
	l.Debug("dropped")
	l.Info("kept", Int("n", 7), Bool("ok", true))
	l.Error("bad", Err(errors.New("boom")))

	recs := ring.Snapshot(LevelDebug)
	if len(recs) != 2 {
		t.Fatalf("want 2 records (debug filtered), got %d", len(recs))
	}
	if recs[0].Msg != "kept" || recs[0].Level != LevelInfo {
		t.Fatalf("unexpected first record %+v", recs[0])
	}
	fm := recs[0].FieldMap()
	if fm["n"] != int64(7) || fm["ok"] != true {
		t.Fatalf("unexpected field map %v", fm)
	}
	if fm := recs[1].FieldMap(); fm["error"] != "boom" {
		t.Fatalf("Err field not recorded: %v", fm)
	}
	if got := ring.Snapshot(LevelError); len(got) != 1 || got[0].Msg != "bad" {
		t.Fatalf("level filter broken: %v", got)
	}
}

func TestNamedForSessionWith(t *testing.T) {
	ring := NewRingSink(8)
	l := New(LevelDebug, ring)
	child := l.Named("core").Named("supervisor").ForSession("s1", "abc123").With(String("mode", "degraded"))
	child.Warn("retry", Int("attempt", 2))

	recs := ring.Snapshot(LevelDebug)
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	r := recs[0]
	if r.Logger != "core.supervisor" || r.Session != "s1" || r.TraceID != "abc123" {
		t.Fatalf("attribution lost: %+v", r)
	}
	fm := r.FieldMap()
	if fm["mode"] != "degraded" || fm["attempt"] != int64(2) {
		t.Fatalf("bound+call fields not merged: %v", fm)
	}
	line := r.Format()
	for _, want := range []string{"WARN", "core.supervisor: retry", "session=s1", "trace=abc123", "attempt=2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("formatted line %q missing %q", line, want)
		}
	}
}

func TestRingEviction(t *testing.T) {
	ring := NewRingSink(4)
	l := New(LevelDebug, ring)
	for i := 0; i < 10; i++ {
		l.Info("m", Int("i", int64(i)))
	}
	if ring.Len() != 4 {
		t.Fatalf("ring should retain 4, has %d", ring.Len())
	}
	if ring.Total() != 10 {
		t.Fatalf("total should be 10, got %d", ring.Total())
	}
	recs := ring.Snapshot(LevelDebug)
	if recs[0].FieldMap()["i"] != int64(6) || recs[3].FieldMap()["i"] != int64(9) {
		t.Fatalf("eviction kept wrong records: %v %v", recs[0].Fields, recs[3].Fields)
	}
}

func TestAddSinkSharedAcrossChildren(t *testing.T) {
	l := New(LevelDebug)
	child := l.Named("c")
	ring := NewRingSink(8)
	child.AddSink(ring) // attached via the child, visible from the parent
	l.Info("hello")
	if ring.Len() != 1 {
		t.Fatalf("sink attached on child must receive parent's records, got %d", ring.Len())
	}
}

func TestConcurrentLogging(t *testing.T) {
	ring := NewRingSink(10000)
	l := New(LevelDebug, ring)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sl := l.Named("worker").ForSession("s", "t")
			for i := 0; i < 100; i++ {
				sl.Info("tick", Int("g", int64(g)), Int("i", int64(i)))
			}
		}(g)
	}
	// Attach a sink mid-flight to exercise the copy-on-write path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			l.AddSink(FuncSink(func(Record) {}))
		}
	}()
	wg.Wait()
	if got := ring.Total(); got != 800 {
		t.Fatalf("want 800 records, got %d", got)
	}
}

func TestWriterSink(t *testing.T) {
	var sb safeBuilder
	l := New(LevelInfo, NewWriterSink(&sb))
	l.Info("started", String("addr", ":7420"))
	if out := sb.String(); !strings.Contains(out, "started addr=:7420") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("unexpected writer output %q", out)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "Info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo, "": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestDurationAndErrNil(t *testing.T) {
	f := Duration("tookMs", 1500*time.Millisecond)
	if f.Value != 1500.0 {
		t.Fatalf("duration field should be ms, got %v", f.Value)
	}
	if Err(nil).Key != "" {
		t.Fatal("Err(nil) must yield an empty-key field")
	}
	r := Record{Fields: []Field{Err(nil)}}
	if strings.Contains(r.Format(), "=") {
		t.Fatalf("empty-key field leaked into format: %q", r.Format())
	}
}

// safeBuilder is a mutex-guarded strings.Builder (WriterSink serializes
// writes itself, but the test also reads).
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
