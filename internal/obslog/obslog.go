// Package obslog is the structured logging layer of the observability
// stack: a thin, dependency-free log/slog-style API with typed fields,
// levels, and pluggable sinks. The domain server logs through it instead
// of ad-hoc fmt/log prints, so every record carries the session ID and
// trace ID that let the flight recorder fuse logs with spans, bus events,
// and fault markers into one per-session timeline.
//
// The API is nil-safe end to end: every method on a nil *Logger is a
// no-op, so instrumentation sites never branch on "logging enabled?".
// Loggers are immutable values — Named and ForSession return children
// sharing the parent's sink set — and safe for concurrent use.
package obslog

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log records by severity.
type Level int

// The levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level as a fixed-width tag.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int(l))
	}
}

// ParseLevel resolves a level name (case-insensitive); unknown names
// default to Info.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Field is one typed key/value pair attached to a record.
type Field struct {
	Key   string
	Value any
}

// String builds a string field.
func String(key, value string) Field { return Field{Key: key, Value: value} }

// Int builds an integer field.
func Int(key string, value int64) Field { return Field{Key: key, Value: value} }

// Float builds a float field.
func Float(key string, value float64) Field { return Field{Key: key, Value: value} }

// Bool builds a boolean field.
func Bool(key string, value bool) Field { return Field{Key: key, Value: value} }

// Duration builds a duration field (exported as milliseconds).
func Duration(key string, value time.Duration) Field {
	return Field{Key: key, Value: float64(value) / float64(time.Millisecond)}
}

// Err builds the conventional "error" field; a nil error yields a field
// with an empty key, which sinks skip.
func Err(err error) Field {
	if err == nil {
		return Field{}
	}
	return Field{Key: "error", Value: err.Error()}
}

// Record is one emitted log record. Session and TraceID are promoted out
// of the field list so sinks that fuse streams (the flight recorder) can
// attribute the record without scanning fields.
type Record struct {
	Time    time.Time `json:"time"`
	Level   Level     `json:"level"`
	Logger  string    `json:"logger,omitempty"` // component name, e.g. "core.supervisor"
	Msg     string    `json:"msg"`
	Session string    `json:"session,omitempty"`
	TraceID string    `json:"traceId,omitempty"`
	Fields  []Field   `json:"fields,omitempty"`
}

// Format renders the record as one text line:
//
//	15:04:05.000 WARN  core.supervisor: recovery retry session=drill-1 trace=4f... attempt=2 backoffMs=20
func (r Record) Format() string {
	var b strings.Builder
	b.WriteString(r.Time.Format("15:04:05.000"))
	fmt.Fprintf(&b, " %-5s ", r.Level)
	if r.Logger != "" {
		b.WriteString(r.Logger)
		b.WriteString(": ")
	}
	b.WriteString(r.Msg)
	if r.Session != "" {
		fmt.Fprintf(&b, " session=%s", r.Session)
	}
	if r.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", r.TraceID)
	}
	for _, f := range r.Fields {
		if f.Key == "" {
			continue
		}
		fmt.Fprintf(&b, " %s=%v", f.Key, f.Value)
	}
	return b.String()
}

// FieldMap flattens the field list into a map (later duplicates win).
// Empty-key fields (e.g. Err(nil)) are skipped.
func (r Record) FieldMap() map[string]any {
	if len(r.Fields) == 0 {
		return nil
	}
	m := make(map[string]any, len(r.Fields))
	for _, f := range r.Fields {
		if f.Key == "" {
			continue
		}
		m[f.Key] = f.Value
	}
	return m
}

// Sink receives emitted records. Implementations must be safe for
// concurrent use.
type Sink interface {
	Write(Record)
}

// sinkSet is the shared, atomically swappable sink list behind a logger
// tree: AddSink copies-on-write so the hot Write path never locks.
type sinkSet struct {
	mu    sync.Mutex // serializes writers of the list, not readers
	sinks atomic.Pointer[[]Sink]
}

func (ss *sinkSet) add(s Sink) {
	if s == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var cur []Sink
	if p := ss.sinks.Load(); p != nil {
		cur = *p
	}
	next := make([]Sink, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	ss.sinks.Store(&next)
}

func (ss *sinkSet) load() []Sink {
	if p := ss.sinks.Load(); p != nil {
		return *p
	}
	return nil
}

// Logger emits records at or above its level to a shared sink set.
// A nil *Logger is a valid no-op logger.
type Logger struct {
	set     *sinkSet
	level   Level
	name    string
	session string
	traceID string
	bound   []Field
}

// New returns a logger writing records at or above level to the given
// sinks. More sinks can be attached later with AddSink; children created
// via Named/ForSession/With share the sink set, so an AddSink on any of
// them is visible to all.
func New(level Level, sinks ...Sink) *Logger {
	l := &Logger{set: &sinkSet{}, level: level}
	for _, s := range sinks {
		l.set.add(s)
	}
	return l
}

// AddSink attaches another sink to the logger's shared sink set.
func (l *Logger) AddSink(s Sink) {
	if l == nil {
		return
	}
	l.set.add(s)
}

// Named returns a child logger with the component name appended
// (dot-separated).
func (l *Logger) Named(name string) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	if child.name != "" {
		child.name += "." + name
	} else {
		child.name = name
	}
	return &child
}

// ForSession returns a child logger whose records carry the session and
// trace IDs. Either may be empty.
func (l *Logger) ForSession(session, traceID string) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.session = session
	child.traceID = traceID
	return &child
}

// With returns a child logger with fields bound to every record.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	child := *l
	child.bound = append(append([]Field(nil), l.bound...), fields...)
	return &child
}

// Enabled reports whether records at the level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info emits an info record.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error emits an error record.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	sinks := l.set.load()
	if len(sinks) == 0 {
		return
	}
	rec := Record{
		Time:    time.Now(),
		Level:   level,
		Logger:  l.name,
		Msg:     msg,
		Session: l.session,
		TraceID: l.traceID,
	}
	switch {
	case len(l.bound) == 0:
		rec.Fields = fields
	case len(fields) == 0:
		rec.Fields = l.bound
	default:
		rec.Fields = append(append([]Field(nil), l.bound...), fields...)
	}
	for _, s := range sinks {
		s.Write(rec)
	}
}

// DefaultRingCapacity is the record count a RingSink retains when
// NewRingSink is given a non-positive capacity.
const DefaultRingCapacity = 512

// RingSink retains the most recent records in a bounded ring, the
// in-memory "recent logs" buffer behind the daemon's observability
// surface.
type RingSink struct {
	mu    sync.Mutex
	cap   int
	ring  []Record // oldest first
	total uint64
}

// NewRingSink returns a ring retaining up to capacity records.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &RingSink{cap: capacity}
}

// Write implements Sink.
func (rs *RingSink) Write(rec Record) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.total++
	rs.ring = append(rs.ring, rec)
	if len(rs.ring) > rs.cap {
		rs.ring = rs.ring[len(rs.ring)-rs.cap:]
	}
}

// Len returns the number of retained records.
func (rs *RingSink) Len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.ring)
}

// Total returns the lifetime record count (including evicted ones).
func (rs *RingSink) Total() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.total
}

// Snapshot copies the retained records, oldest first. minLevel filters;
// pass LevelDebug for everything.
func (rs *RingSink) Snapshot(minLevel Level) []Record {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]Record, 0, len(rs.ring))
	for _, r := range rs.ring {
		if r.Level >= minLevel {
			out = append(out, r)
		}
	}
	return out
}

// WriterSink formats each record as one text line on an io.Writer
// (typically stderr). Writes are serialized.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps the writer.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Write implements Sink.
func (ws *WriterSink) Write(rec Record) {
	line := rec.Format() + "\n"
	ws.mu.Lock()
	defer ws.mu.Unlock()
	io.WriteString(ws.w, line)
}

// FuncSink adapts a function into a Sink (useful in tests and for the
// flight recorder's adapter).
type FuncSink func(Record)

// Write implements Sink.
func (f FuncSink) Write(rec Record) { f(rec) }

// SortRecords orders records by time, breaking ties by message, for
// deterministic test assertions over multi-goroutine logs.
func SortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if !recs[i].Time.Equal(recs[j].Time) {
			return recs[i].Time.Before(recs[j].Time)
		}
		return recs[i].Msg < recs[j].Msg
	})
}
