// Package eventbus implements the domain event service the configuration
// model cooperates with (paper §1): a topic-based publish/subscribe bus
// over which the smart space signals the runtime changes — user mobility,
// device switches, device joins/leaves, resource fluctuations — that
// trigger dynamic re-configuration.
package eventbus

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"ubiqos/internal/metrics"
	"ubiqos/internal/obslog"
)

// Topic classifies an event.
type Topic string

// The event topics used by the domain.
const (
	// TopicUserMoved fires when the user moves to a new location.
	TopicUserMoved Topic = "user.moved"
	// TopicDeviceSwitched fires when the user switches the portal device
	// (e.g. from PC to PDA).
	TopicDeviceSwitched Topic = "device.switched"
	// TopicDeviceJoined fires when a device joins the smart space.
	TopicDeviceJoined Topic = "device.joined"
	// TopicDeviceLeft fires when a device leaves or crashes.
	TopicDeviceLeft Topic = "device.left"
	// TopicResourceChanged fires on significant resource fluctuations.
	TopicResourceChanged Topic = "resource.changed"
	// TopicSessionStarted and TopicSessionStopped track application
	// sessions.
	TopicSessionStarted Topic = "session.started"
	TopicSessionStopped Topic = "session.stopped"
	// TopicSessionRecovered fires when the recovery supervisor brings a
	// session back after a fault (payload: session ID).
	TopicSessionRecovered Topic = "session.recovered"
	// TopicSessionRestored fires when a later full-QoS reconfiguration
	// restores a session that had previously been recovered degraded
	// (payload: session ID).
	TopicSessionRestored Topic = "session.restored"
	// TopicServiceExpired fires when a service instance's discovery lease
	// expires without renewal (payload: instance name) — consumers holding
	// plans that involve the instance must invalidate them.
	TopicServiceExpired Topic = "service.expired"
	// TopicUserNotification carries messages the user must act on — e.g.
	// a mandatory service could not be discovered and the user may
	// "download and install an instance for the missing service into the
	// current environment, or simply quit the application" (paper §3.2).
	TopicUserNotification Topic = "user.notification"
)

// Event is one published occurrence.
type Event struct {
	Topic Topic
	// Time is the publication timestamp.
	Time time.Time
	// Payload carries topic-specific data (e.g. the device ID).
	Payload any
}

// Subscription receives events for the topics it was subscribed to.
//
// Two delivery modes exist. The default (Subscribe) is lossy: a full
// channel drops the event, which suits data-plane signals that are
// re-published on further changes. Lossless subscriptions
// (SubscribeLossless) are for control-plane consumers — e.g. the recovery
// supervisor must never miss a device.left — and buffer overflow into an
// unbounded coalescing queue drained by a pump goroutine instead of
// dropping.
type Subscription struct {
	bus      *Bus
	id       int
	topics   map[Topic]bool
	ch       chan Event
	lossless bool
	// wake nudges the pump goroutine (lossless mode only); done is closed
	// on cancel so a pump blocked on a slow receiver can exit.
	wake chan struct{}
	done chan struct{}

	mu        sync.Mutex
	dropped   int
	coalesced int
	closed    bool
	// overflow holds events queued past the channel capacity (lossless
	// mode); keys indexes pending events by (topic, payload) so a
	// re-published identical event refreshes its pending slot instead of
	// growing the queue without bound.
	overflow []Event
	keys     map[any]int
}

// C returns the receive channel. The channel is closed when the
// subscription is cancelled or the bus is closed.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped reports how many events were discarded because the subscriber
// was not draining its channel. Lossless subscriptions always report 0.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Coalesced reports how many pending duplicate events were merged into an
// earlier queued copy (lossless mode).
func (s *Subscription) Coalesced() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coalesced
}

// Pending reports how many delivered-but-unconsumed events the
// subscription holds (channel backlog plus, for lossless subscriptions,
// the overflow queue). A zero return is momentary, not a fence: an event
// may be mid-handoff inside the pump.
func (s *Subscription) Pending() int {
	n := len(s.ch)
	if s.lossless {
		s.mu.Lock()
		n += len(s.overflow)
		s.mu.Unlock()
	}
	return n
}

// Cancel removes the subscription from the bus and closes the channel.
// Cancel is idempotent.
func (s *Subscription) Cancel() {
	s.bus.cancel(s)
}

// Bus is the event service. All methods are safe for concurrent use.
//
// Publishing is the hot path: concurrent publishers (and Subscribers
// probes) share a read lock over the subscription table, so fan-outs do
// not serialize against each other. Subscribe, Cancel, and Close take
// the write lock; channels are only ever closed under it, which is what
// makes sending under the read lock safe.
type Bus struct {
	mu     sync.RWMutex
	nextID int
	subs   map[int]*Subscription
	closed bool
	// reg, when set via Instrument, receives publish fan-out counters and
	// subscriber/queue-depth gauges.
	reg *metrics.Registry
	// log, when set via SetLogger, receives a warning whenever a lossy
	// subscriber loses an event.
	log *obslog.Logger
}

// New returns an open event bus.
func New() *Bus {
	return &Bus{subs: make(map[int]*Subscription)}
}

// Instrument attaches a metrics registry: every Publish updates the
// eventbus_published/delivered/dropped counters and the subscriber and
// queue-depth gauges; Subscribe/Cancel/Close keep the subscriber gauge
// current. Pass nil to detach.
func (b *Bus) Instrument(r *metrics.Registry) {
	b.mu.Lock()
	b.reg = r
	if r != nil {
		r.Gauge(metrics.BusSubscribers).Set(float64(len(b.subs)))
	}
	b.mu.Unlock()
}

// SetLogger attaches a structured logger: every Publish that drops
// events on a full lossy subscriber logs one warning naming the topic.
// Pass nil to detach.
func (b *Bus) SetLogger(l *obslog.Logger) {
	b.mu.Lock()
	b.log = l
	b.mu.Unlock()
}

// gauges refreshes the subscriber and queue-depth gauges; callers must
// hold b.mu (read or write — gauge values are internally synchronized).
func (b *Bus) gauges() {
	if b.reg == nil {
		return
	}
	depth := 0
	for _, sub := range b.subs {
		depth += len(sub.ch)
		if sub.lossless {
			sub.mu.Lock()
			depth += len(sub.overflow)
			sub.mu.Unlock()
		}
	}
	b.reg.Gauge(metrics.BusSubscribers).Set(float64(len(b.subs)))
	b.reg.Gauge(metrics.BusQueueDepth).Set(float64(depth))
}

// DefaultBuffer is the per-subscription channel capacity used by
// Subscribe. Publishing to a full subscriber drops the event rather than
// blocking the publisher (the event service favors liveness; reconfig
// triggers are level-style and re-published on further changes).
const DefaultBuffer = 16

// Subscribe registers interest in the given topics (at least one) and
// returns a lossy subscription: publishing to its full channel drops the
// event.
func (b *Bus) Subscribe(topics ...Topic) (*Subscription, error) {
	return b.subscribe(false, topics)
}

// SubscribeLossless registers a control-plane subscription that never
// drops events: publishes past the channel capacity queue into an
// unbounded coalescing buffer (identical pending topic+payload pairs are
// merged) drained by a background pump, so a slow consumer delays
// delivery instead of losing it. FIFO order is preserved among distinct
// events.
func (b *Bus) SubscribeLossless(topics ...Topic) (*Subscription, error) {
	return b.subscribe(true, topics)
}

func (b *Bus) subscribe(lossless bool, topics []Topic) (*Subscription, error) {
	if len(topics) == 0 {
		return nil, fmt.Errorf("eventbus: subscribe with no topics")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("eventbus: bus closed")
	}
	ts := make(map[Topic]bool, len(topics))
	for _, t := range topics {
		ts[t] = true
	}
	sub := &Subscription{
		bus:      b,
		id:       b.nextID,
		topics:   ts,
		ch:       make(chan Event, DefaultBuffer),
		lossless: lossless,
	}
	if lossless {
		sub.wake = make(chan struct{}, 1)
		sub.done = make(chan struct{})
		sub.keys = make(map[any]int)
		go sub.pump()
	}
	b.subs[b.nextID] = sub
	b.nextID++
	b.gauges()
	return sub, nil
}

// coalesceKey builds the pending-queue identity of an event; events with
// non-comparable payloads are never coalesced.
func coalesceKey(ev Event) (any, bool) {
	if ev.Payload == nil {
		return [2]any{ev.Topic, nil}, true
	}
	if !reflect.TypeOf(ev.Payload).Comparable() {
		return nil, false
	}
	return [2]any{ev.Topic, ev.Payload}, true
}

// enqueue appends an event to a lossless subscription's overflow queue,
// merging it into an identical pending event when possible, and nudges
// the pump. It reports whether the event was newly queued (false =
// coalesced into an existing slot).
func (s *Subscription) enqueue(ev Event) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	fresh := true
	if k, ok := coalesceKey(ev); ok {
		if i, dup := s.keys[k]; dup {
			s.overflow[i].Time = ev.Time
			s.coalesced++
			fresh = false
		} else {
			s.keys[k] = len(s.overflow)
			s.overflow = append(s.overflow, ev)
		}
	} else {
		s.overflow = append(s.overflow, ev)
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return fresh
}

// pump is the delivery goroutine of a lossless subscription: it moves
// queued events onto the receive channel in order, blocking on a slow
// receiver rather than dropping, and closes the channel once the
// subscription is cancelled. The pump is the channel's only sender, which
// is what makes closing it here safe.
func (s *Subscription) pump() {
	defer close(s.ch)
	for {
		s.mu.Lock()
		for len(s.overflow) == 0 && !s.closed {
			s.mu.Unlock()
			select {
			case <-s.wake:
			case <-s.done:
			}
			s.mu.Lock()
		}
		if len(s.overflow) == 0 {
			s.mu.Unlock()
			return
		}
		batch := s.overflow
		s.overflow = nil
		s.keys = make(map[any]int)
		s.mu.Unlock()
		for _, ev := range batch {
			select {
			case s.ch <- ev:
			case <-s.done:
				return
			}
		}
	}
}

// Publish delivers the event to every matching subscriber without
// blocking. Lossy subscribers that are not draining lose events (counted
// per subscription); lossless subscribers have the event queued for their
// pump. It returns the number of subscribers that received (or queued)
// the event.
func (b *Bus) Publish(topic Topic, payload any) int {
	ev := Event{Topic: topic, Time: time.Now(), Payload: payload}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return 0
	}
	delivered, dropped, coalesced := 0, 0, 0
	for _, sub := range b.subs {
		if !sub.topics[topic] {
			continue
		}
		if sub.lossless {
			if sub.enqueue(ev) {
				delivered++
			} else {
				coalesced++
			}
			continue
		}
		select {
		case sub.ch <- ev:
			delivered++
		default:
			dropped++
			sub.mu.Lock()
			sub.dropped++
			sub.mu.Unlock()
		}
	}
	if b.reg != nil {
		b.reg.Counter(metrics.EventsPublished).Inc()
		b.reg.Counter(metrics.EventsDelivered).Add(int64(delivered))
		b.reg.Counter(metrics.EventsDropped).Add(int64(dropped))
		b.reg.Counter(metrics.EventsCoalesced).Add(int64(coalesced))
		b.gauges()
	}
	if dropped > 0 {
		b.log.Warn("events dropped on full lossy subscriber",
			obslog.String("topic", string(topic)), obslog.Int("dropped", int64(dropped)))
	}
	return delivered + coalesced
}

// Close shuts the bus down, closing all subscriber channels. Close is
// idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		if !sub.markClosed() {
			continue
		}
		sub.finish()
		delete(b.subs, id)
	}
	b.gauges()
}

// markClosed flags the subscription closed, reporting whether this call
// was the one that closed it.
func (s *Subscription) markClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	return true
}

// finish tears down the delivery side after markClosed: a lossy channel
// is closed directly (publishers only send under the bus write-lock
// exclusion); a lossless pump is told to exit and closes the channel
// itself, since it may be mid-send.
func (s *Subscription) finish() {
	if s.lossless {
		close(s.done)
		return
	}
	close(s.ch)
}

func (b *Bus) cancel(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !s.markClosed() {
		return
	}
	if _, ok := b.subs[s.id]; ok {
		delete(b.subs, s.id)
		s.finish()
	}
	b.gauges()
}

// Subscribers returns the number of active subscriptions.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}
