// Package eventbus implements the domain event service the configuration
// model cooperates with (paper §1): a topic-based publish/subscribe bus
// over which the smart space signals the runtime changes — user mobility,
// device switches, device joins/leaves, resource fluctuations — that
// trigger dynamic re-configuration.
package eventbus

import (
	"fmt"
	"sync"
	"time"

	"ubiqos/internal/metrics"
)

// Topic classifies an event.
type Topic string

// The event topics used by the domain.
const (
	// TopicUserMoved fires when the user moves to a new location.
	TopicUserMoved Topic = "user.moved"
	// TopicDeviceSwitched fires when the user switches the portal device
	// (e.g. from PC to PDA).
	TopicDeviceSwitched Topic = "device.switched"
	// TopicDeviceJoined fires when a device joins the smart space.
	TopicDeviceJoined Topic = "device.joined"
	// TopicDeviceLeft fires when a device leaves or crashes.
	TopicDeviceLeft Topic = "device.left"
	// TopicResourceChanged fires on significant resource fluctuations.
	TopicResourceChanged Topic = "resource.changed"
	// TopicSessionStarted and TopicSessionStopped track application
	// sessions.
	TopicSessionStarted Topic = "session.started"
	TopicSessionStopped Topic = "session.stopped"
	// TopicUserNotification carries messages the user must act on — e.g.
	// a mandatory service could not be discovered and the user may
	// "download and install an instance for the missing service into the
	// current environment, or simply quit the application" (paper §3.2).
	TopicUserNotification Topic = "user.notification"
)

// Event is one published occurrence.
type Event struct {
	Topic Topic
	// Time is the publication timestamp.
	Time time.Time
	// Payload carries topic-specific data (e.g. the device ID).
	Payload any
}

// Subscription receives events for the topics it was subscribed to.
type Subscription struct {
	bus    *Bus
	id     int
	topics map[Topic]bool
	ch     chan Event

	mu      sync.Mutex
	dropped int
	closed  bool
}

// C returns the receive channel. The channel is closed when the
// subscription is cancelled or the bus is closed.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped reports how many events were discarded because the subscriber
// was not draining its channel.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Cancel removes the subscription from the bus and closes the channel.
// Cancel is idempotent.
func (s *Subscription) Cancel() {
	s.bus.cancel(s)
}

// Bus is the event service. All methods are safe for concurrent use.
//
// Publishing is the hot path: concurrent publishers (and Subscribers
// probes) share a read lock over the subscription table, so fan-outs do
// not serialize against each other. Subscribe, Cancel, and Close take
// the write lock; channels are only ever closed under it, which is what
// makes sending under the read lock safe.
type Bus struct {
	mu     sync.RWMutex
	nextID int
	subs   map[int]*Subscription
	closed bool
	// reg, when set via Instrument, receives publish fan-out counters and
	// subscriber/queue-depth gauges.
	reg *metrics.Registry
}

// New returns an open event bus.
func New() *Bus {
	return &Bus{subs: make(map[int]*Subscription)}
}

// Instrument attaches a metrics registry: every Publish updates the
// eventbus_published/delivered/dropped counters and the subscriber and
// queue-depth gauges; Subscribe/Cancel/Close keep the subscriber gauge
// current. Pass nil to detach.
func (b *Bus) Instrument(r *metrics.Registry) {
	b.mu.Lock()
	b.reg = r
	if r != nil {
		r.Gauge(metrics.BusSubscribers).Set(float64(len(b.subs)))
	}
	b.mu.Unlock()
}

// gauges refreshes the subscriber and queue-depth gauges; callers must
// hold b.mu (read or write — gauge values are internally synchronized).
func (b *Bus) gauges() {
	if b.reg == nil {
		return
	}
	depth := 0
	for _, sub := range b.subs {
		depth += len(sub.ch)
	}
	b.reg.Gauge(metrics.BusSubscribers).Set(float64(len(b.subs)))
	b.reg.Gauge(metrics.BusQueueDepth).Set(float64(depth))
}

// DefaultBuffer is the per-subscription channel capacity used by
// Subscribe. Publishing to a full subscriber drops the event rather than
// blocking the publisher (the event service favors liveness; reconfig
// triggers are level-style and re-published on further changes).
const DefaultBuffer = 16

// Subscribe registers interest in the given topics (at least one) and
// returns the subscription.
func (b *Bus) Subscribe(topics ...Topic) (*Subscription, error) {
	if len(topics) == 0 {
		return nil, fmt.Errorf("eventbus: subscribe with no topics")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("eventbus: bus closed")
	}
	ts := make(map[Topic]bool, len(topics))
	for _, t := range topics {
		ts[t] = true
	}
	sub := &Subscription{
		bus:    b,
		id:     b.nextID,
		topics: ts,
		ch:     make(chan Event, DefaultBuffer),
	}
	b.subs[b.nextID] = sub
	b.nextID++
	b.gauges()
	return sub, nil
}

// Publish delivers the event to every matching subscriber without
// blocking; slow subscribers lose events (counted per subscription). It
// returns the number of subscribers that received the event.
func (b *Bus) Publish(topic Topic, payload any) int {
	ev := Event{Topic: topic, Time: time.Now(), Payload: payload}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return 0
	}
	delivered, dropped := 0, 0
	for _, sub := range b.subs {
		if !sub.topics[topic] {
			continue
		}
		select {
		case sub.ch <- ev:
			delivered++
		default:
			dropped++
			sub.mu.Lock()
			sub.dropped++
			sub.mu.Unlock()
		}
	}
	if b.reg != nil {
		b.reg.Counter(metrics.EventsPublished).Inc()
		b.reg.Counter(metrics.EventsDelivered).Add(int64(delivered))
		b.reg.Counter(metrics.EventsDropped).Add(int64(dropped))
		b.gauges()
	}
	return delivered
}

// Close shuts the bus down, closing all subscriber channels. Close is
// idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		sub.markClosed()
		close(sub.ch)
		delete(b.subs, id)
	}
	b.gauges()
}

func (s *Subscription) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func (b *Bus) cancel(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if alreadyClosed {
		return
	}
	if _, ok := b.subs[s.id]; ok {
		delete(b.subs, s.id)
		close(s.ch)
	}
	b.gauges()
}

// Subscribers returns the number of active subscriptions.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}
