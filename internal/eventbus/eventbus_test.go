package eventbus

import (
	"sync"
	"testing"
	"time"

	"ubiqos/internal/metrics"
)

func recv(t *testing.T, sub *Subscription) Event {
	t.Helper()
	select {
	case ev, ok := <-sub.C():
		if !ok {
			t.Fatal("subscription channel closed")
		}
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for event")
		return Event{}
	}
}

func TestPublishSubscribe(t *testing.T) {
	b := New()
	defer b.Close()
	sub, err := b.Subscribe(TopicDeviceJoined, TopicDeviceLeft)
	if err != nil {
		t.Fatal(err)
	}
	if n := b.Publish(TopicDeviceJoined, "pda1"); n != 1 {
		t.Errorf("delivered = %d", n)
	}
	ev := recv(t, sub)
	if ev.Topic != TopicDeviceJoined || ev.Payload.(string) != "pda1" {
		t.Errorf("event = %+v", ev)
	}
	// Non-matching topic is not delivered.
	if n := b.Publish(TopicUserMoved, nil); n != 0 {
		t.Errorf("delivered = %d for unsubscribed topic", n)
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New()
	defer b.Close()
	if _, err := b.Subscribe(); err == nil {
		t.Error("no topics should fail")
	}
}

func TestMultipleSubscribers(t *testing.T) {
	b := New()
	defer b.Close()
	s1, _ := b.Subscribe(TopicSessionStarted)
	s2, _ := b.Subscribe(TopicSessionStarted)
	if n := b.Publish(TopicSessionStarted, 7); n != 2 {
		t.Errorf("delivered = %d", n)
	}
	if recv(t, s1).Payload.(int) != 7 || recv(t, s2).Payload.(int) != 7 {
		t.Error("payload mismatch")
	}
	if b.Subscribers() != 2 {
		t.Errorf("Subscribers = %d", b.Subscribers())
	}
}

func TestSlowSubscriberDrops(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe(TopicResourceChanged)
	for i := 0; i < DefaultBuffer+5; i++ {
		b.Publish(TopicResourceChanged, i)
	}
	if got := sub.Dropped(); got != 5 {
		t.Errorf("Dropped = %d, want 5", got)
	}
	// The buffered events are still readable in order.
	for i := 0; i < DefaultBuffer; i++ {
		if ev := recv(t, sub); ev.Payload.(int) != i {
			t.Fatalf("event %d payload = %v", i, ev.Payload)
		}
	}
}

func TestCancel(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.Subscribe(TopicUserMoved)
	sub.Cancel()
	sub.Cancel() // idempotent
	if b.Subscribers() != 0 {
		t.Errorf("Subscribers = %d after cancel", b.Subscribers())
	}
	if _, ok := <-sub.C(); ok {
		t.Error("channel should be closed after cancel")
	}
	if n := b.Publish(TopicUserMoved, nil); n != 0 {
		t.Errorf("delivered = %d after cancel", n)
	}
}

func TestClose(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe(TopicUserMoved)
	b.Close()
	b.Close() // idempotent
	if _, ok := <-sub.C(); ok {
		t.Error("channel should be closed after bus close")
	}
	if _, err := b.Subscribe(TopicUserMoved); err == nil {
		t.Error("subscribe after close should fail")
	}
	if n := b.Publish(TopicUserMoved, nil); n != 0 {
		t.Errorf("publish after close delivered %d", n)
	}
	sub.Cancel() // must not panic after close
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New()
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, err := b.Subscribe(TopicSessionStarted)
			if err != nil {
				t.Error(err)
				return
			}
			defer sub.Cancel()
			for j := 0; j < 50; j++ {
				b.Publish(TopicSessionStarted, j)
			}
			// Drain whatever arrived.
			for {
				select {
				case <-sub.C():
				default:
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPublishFanOutAccounting checks the fan-out invariant under
// concurrent publishers sharing the bus read lock: for every subscriber,
// events received plus events dropped equals the total published.
func TestPublishFanOutAccounting(t *testing.T) {
	b := New()
	const (
		subscribers = 6
		publishers  = 4
		perPub      = 200
	)
	subs := make([]*Subscription, subscribers)
	received := make([]int, subscribers)
	var drainers sync.WaitGroup
	for i := range subs {
		sub, err := b.Subscribe(TopicResourceChanged)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
		drainers.Add(1)
		go func(i int) {
			defer drainers.Done()
			for range subs[i].C() {
				received[i]++
			}
		}(i)
	}

	var pubs sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for j := 0; j < perPub; j++ {
				b.Publish(TopicResourceChanged, j)
			}
		}()
	}
	pubs.Wait()
	b.Close()
	drainers.Wait()

	for i, sub := range subs {
		if got := received[i] + sub.Dropped(); got != publishers*perPub {
			t.Errorf("subscriber %d: received %d + dropped %d = %d, want %d",
				i, received[i], sub.Dropped(), got, publishers*perPub)
		}
	}
}

// TestSubscribersConcurrentWithPublish hammers the read-path accessors
// while the subscription table churns; run with -race.
func TestSubscribersConcurrentWithPublish(t *testing.T) {
	b := New()
	defer b.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Publish(TopicDeviceJoined, nil)
				b.Subscribers()
			}
		}
	}()
	for i := 0; i < 40; i++ {
		sub, err := b.Subscribe(TopicDeviceJoined)
		if err != nil {
			t.Fatal(err)
		}
		sub.Cancel()
	}
	close(stop)
	wg.Wait()
}

func TestInstrument(t *testing.T) {
	b := New()
	r := metrics.NewRegistry()
	b.Instrument(r)
	if v, _ := r.Gauge(metrics.BusSubscribers).Value(); v != 0 {
		t.Errorf("initial subscribers gauge = %v", v)
	}
	sub, err := b.Subscribe(TopicDeviceJoined)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Gauge(metrics.BusSubscribers).Value(); v != 1 {
		t.Errorf("subscribers gauge = %v, want 1", v)
	}
	// Fill the subscriber's buffer without draining: DefaultBuffer events
	// deliver, the rest drop.
	for i := 0; i < DefaultBuffer+3; i++ {
		b.Publish(TopicDeviceJoined, i)
	}
	b.Publish(TopicDeviceLeft, nil) // no subscriber: published, zero fan-out
	if got := r.Counter(metrics.EventsPublished).Value(); got != int64(DefaultBuffer+4) {
		t.Errorf("published = %d", got)
	}
	if got := r.Counter(metrics.EventsDelivered).Value(); got != int64(DefaultBuffer) {
		t.Errorf("delivered = %d", got)
	}
	if got := r.Counter(metrics.EventsDropped).Value(); got != 3 {
		t.Errorf("dropped = %d", got)
	}
	if v, _ := r.Gauge(metrics.BusQueueDepth).Value(); v != float64(DefaultBuffer) {
		t.Errorf("queue depth gauge = %v, want %d", v, DefaultBuffer)
	}
	sub.Cancel()
	if v, _ := r.Gauge(metrics.BusSubscribers).Value(); v != 0 {
		t.Errorf("subscribers gauge after cancel = %v", v)
	}
	if v, _ := r.Gauge(metrics.BusQueueDepth).Value(); v != 0 {
		t.Errorf("queue depth after cancel = %v", v)
	}
	// Uninstrumented publishing still works.
	b.Instrument(nil)
	b.Publish(TopicDeviceJoined, nil)
	b.Close()
}

func TestLosslessNoDropsUnderStorm(t *testing.T) {
	b := New()
	defer b.Close()
	sub, err := b.SubscribeLossless(TopicDeviceLeft)
	if err != nil {
		t.Fatal(err)
	}
	// Publish far past the channel capacity before draining anything: a
	// lossy subscription would drop most of these.
	const storm = 50 * DefaultBuffer
	for i := 0; i < storm; i++ {
		b.Publish(TopicDeviceLeft, i) // distinct payloads: nothing coalesces
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("lossless subscription dropped %d events", d)
	}
	for i := 0; i < storm; i++ {
		ev := recv(t, sub)
		if ev.Payload.(int) != i {
			t.Fatalf("event %d arrived out of order: payload %v", i, ev.Payload)
		}
	}
	sub.Cancel()
}

func TestLosslessCoalescesDuplicates(t *testing.T) {
	b := New()
	defer b.Close()
	sub, err := b.SubscribeLossless(TopicDeviceLeft, TopicResourceChanged)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the channel so subsequent publishes stay pending in the
	// overflow queue, where duplicates coalesce.
	block, _ := b.SubscribeLossless(TopicDeviceLeft) // unused drain
	defer block.Cancel()
	const dups = 200
	for i := 0; i < dups; i++ {
		b.Publish(TopicDeviceLeft, "pda1")
	}
	b.Publish(TopicResourceChanged, "pda1") // distinct topic survives
	// Exactly one device.left must arrive (plus the resource.changed):
	// drain until the resource event and count.
	seen := 0
	for {
		ev := recv(t, sub)
		if ev.Topic == TopicResourceChanged {
			break
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("coalescing lost the event entirely")
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d", sub.Dropped())
	}
	if seen+sub.Coalesced() != dups {
		t.Fatalf("delivered %d + coalesced %d != published %d", seen, sub.Coalesced(), dups)
	}
	sub.Cancel()
}

func TestLosslessConcurrentStorm(t *testing.T) {
	b := New()
	defer b.Close()
	r := metrics.NewRegistry()
	b.Instrument(r)
	sub, err := b.SubscribeLossless(TopicDeviceLeft)
	if err != nil {
		t.Fatal(err)
	}
	const publishers, per = 8, 250
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(TopicDeviceLeft, [2]int{p, i})
			}
		}(p)
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C() {
			got++
		}
	}()
	wg.Wait()
	sub.Cancel()
	<-done
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("dropped %d events under concurrent storm", d)
	}
	// Every publish was either delivered or merged into a still-pending
	// duplicate; with distinct payloads and an active drainer, deliveries
	// dominate. The invariant is no loss: delivered + coalesced + the few
	// still in flight at Cancel account for all publishes.
	if got == 0 {
		t.Fatal("no events delivered")
	}
	if v := r.Counter(metrics.EventsDropped).Value(); v != 0 {
		t.Fatalf("eventbus_dropped_total = %d", v)
	}
}

func TestLosslessCancelUnblocksPump(t *testing.T) {
	b := New()
	defer b.Close()
	sub, _ := b.SubscribeLossless(TopicDeviceLeft)
	for i := 0; i < 10*DefaultBuffer; i++ {
		b.Publish(TopicDeviceLeft, i)
	}
	// Nobody drains; Cancel must still return promptly and close the
	// channel (the pump may be blocked mid-send).
	doneCh := make(chan struct{})
	go func() {
		sub.Cancel()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("Cancel blocked on a wedged pump")
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-sub.C():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("channel never closed after Cancel")
		}
	}
}
