package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunInOrder(t *testing.T) {
	var s Simulator
	var got []int
	s.MustSchedule(3, func() { got = append(got, 3) })
	s.MustSchedule(1, func() { got = append(got, 1) })
	s.MustSchedule(2, func() { got = append(got, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run = %d events", n)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %g", s.Now())
	}
	if s.Processed() != 3 {
		t.Errorf("Processed = %d", s.Processed())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Simulator
	var got []string
	s.MustSchedule(1, func() { got = append(got, "a") })
	s.MustSchedule(1, func() { got = append(got, "b") })
	s.MustSchedule(1, func() { got = append(got, "c") })
	s.Run()
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("tie order = %v", got)
	}
}

func TestScheduleFromCallback(t *testing.T) {
	var s Simulator
	var got []float64
	s.MustSchedule(1, func() {
		got = append(got, s.Now())
		if err := s.After(2, func() { got = append(got, s.Now()) }); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if !reflect.DeepEqual(got, []float64{1, 3}) {
		t.Errorf("times = %v", got)
	}
}

func TestScheduleErrors(t *testing.T) {
	var s Simulator
	if err := s.Schedule(1, nil); err == nil {
		t.Error("nil callback should fail")
	}
	s.MustSchedule(5, func() {})
	s.Run()
	if err := s.Schedule(4, func() {}); err == nil {
		t.Error("scheduling in the past should fail")
	}
	if err := s.After(-1, func() {}); err == nil {
		t.Error("negative delay should fail")
	}
	if err := s.Schedule(5, func() {}); err != nil {
		t.Errorf("scheduling at Now should be allowed: %v", err)
	}
}

func TestRunUntil(t *testing.T) {
	var s Simulator
	var got []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		s.MustSchedule(at, func() { got = append(got, at) })
	}
	if n := s.RunUntil(2.5); n != 2 {
		t.Fatalf("RunUntil processed %d", n)
	}
	if s.Now() != 2.5 {
		t.Errorf("Now = %g, want deadline", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run()
	if !reflect.DeepEqual(got, []float64{1, 2, 3, 4}) {
		t.Errorf("events = %v", got)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var s Simulator
	s.RunUntil(10)
	if s.Now() != 10 {
		t.Errorf("Now = %g", s.Now())
	}
}

func TestPropEventsExecuteSorted(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Simulator
		n := 1 + rng.Intn(100)
		var got []float64
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			s.MustSchedule(at, func() { got = append(got, s.Now()) })
		}
		s.Run()
		return sort.Float64sAreSorted(got) && len(got) == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
