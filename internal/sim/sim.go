// Package sim provides a small deterministic discrete-event simulator used
// by the Figure 5 experiment: events are callbacks scheduled at virtual
// times (hours) and executed in time order, with FIFO tie-breaking so runs
// are exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Simulator is a single-threaded discrete-event simulator. The zero value
// is ready to use. It is not safe for concurrent use: all scheduling must
// happen from the initializing goroutine or from within event callbacks.
type Simulator struct {
	now    float64
	seq    int
	queue  eventHeap
	events int
}

// Now returns the current virtual time (in whatever unit the caller uses
// consistently; the experiments use hours).
func (s *Simulator) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() int { return s.events }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule enqueues fn to run at virtual time at. Scheduling in the past
// (before Now) is an error; scheduling exactly at Now is allowed and runs
// after all earlier-scheduled events for that instant.
func (s *Simulator) Schedule(at float64, fn func()) error {
	if fn == nil {
		return fmt.Errorf("sim: nil event callback")
	}
	if at < s.now {
		return fmt.Errorf("sim: cannot schedule at %.6f before now %.6f", at, s.now)
	}
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
	s.seq++
	return nil
}

// MustSchedule is Schedule that panics on error.
func (s *Simulator) MustSchedule(at float64, fn func()) {
	if err := s.Schedule(at, fn); err != nil {
		panic(err)
	}
}

// After enqueues fn to run delay units after Now.
func (s *Simulator) After(delay float64, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("sim: negative delay %.6f", delay)
	}
	return s.Schedule(s.now+delay, fn)
}

// Run executes events in time order until the queue drains, and returns
// the number of events processed.
func (s *Simulator) Run() int {
	n := 0
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.events++
		n++
		e.fn()
	}
	return n
}

// RunUntil executes events with time ≤ deadline, leaves later events
// queued, and advances Now to the deadline.
func (s *Simulator) RunUntil(deadline float64) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.events++
		n++
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

type event struct {
	at  float64
	seq int
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
