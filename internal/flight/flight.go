// Package flight implements the session flight recorder: one bounded,
// append-only, concurrency-safe timeline per session, fusing the four
// observability streams the domain emits — structured log records
// (internal/obslog), finished span summaries (internal/trace),
// control-plane bus events (internal/eventbus), and fault-injection
// markers (internal/faultinject) — into a single, sequence-ordered
// record of what happened to a session across qosctl, the daemon,
// recovery, and chaos.
//
// Every entry is stamped with the session ID, the propagated trace ID
// (when known), and a globally monotonic sequence number, so entries
// from different goroutines and subsystems can be interleaved back into
// one causal story. Timelines are bounded per session and the session
// table itself is bounded (least-recently-touched sessions are evicted),
// so the recorder is safe to leave on in a long-running daemon.
//
// Like the rest of the observability stack, the API is nil-safe: every
// method on a nil *Recorder is a no-op.
package flight

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ubiqos/internal/eventbus"
	"ubiqos/internal/obslog"
	"ubiqos/internal/trace"
)

// Kind classifies a timeline entry by the stream it came from.
type Kind string

// The entry kinds.
const (
	KindLog   Kind = "log"   // structured log record (obslog)
	KindSpan  Kind = "span"  // finished trace summary (trace)
	KindEvent Kind = "event" // control-plane bus event (eventbus)
	KindFault Kind = "fault" // injected fault marker (faultinject)
)

// Entry is one record on a session's timeline.
type Entry struct {
	// Seq is the recorder-wide monotonic sequence number; entries across
	// sessions and streams interleave in Seq order.
	Seq     uint64         `json:"seq"`
	Time    time.Time      `json:"time"`
	Kind    Kind           `json:"kind"`
	Session string         `json:"session"`
	TraceID string         `json:"traceId,omitempty"`
	Message string         `json:"message"`
	Detail  map[string]any `json:"detail,omitempty"`
}

// Format renders the entry as one text line of the timeline.
func (e Entry) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d %s %-5s %s", e.Seq, e.Time.Format("15:04:05.000"), e.Kind, e.Message)
	if e.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", e.TraceID)
	}
	keys := make([]string, 0, len(e.Detail))
	for k := range e.Detail {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, e.Detail[k])
	}
	return b.String()
}

// SessionInfo summarizes one recorded session for index listings.
type SessionInfo struct {
	Session string    `json:"session"`
	Entries int       `json:"entries"` // retained (post-eviction) count
	Total   uint64    `json:"total"`   // lifetime count, including evicted
	Last    time.Time `json:"last"`    // time of the newest entry
}

// timeline is one session's bounded entry ring (oldest first).
type timeline struct {
	entries []Entry
	total   uint64
	last    time.Time
}

// Defaults for Options fields left zero.
const (
	DefaultPerSession  = 256
	DefaultMaxSessions = 128
)

// Options bound the recorder.
type Options struct {
	// PerSession caps each session's retained entries (default 256);
	// older entries are evicted first.
	PerSession int
	// MaxSessions caps the session table (default 128); the
	// least-recently-touched session is evicted when a new one arrives.
	MaxSessions int
}

// Recorder maintains the per-session timelines. All methods are safe for
// concurrent use; a nil *Recorder is a valid no-op recorder.
type Recorder struct {
	perSession  int
	maxSessions int
	seq         atomic.Uint64

	mu       sync.Mutex
	sessions map[string]*timeline
}

// New returns a recorder with the given bounds.
func New(opts Options) *Recorder {
	if opts.PerSession <= 0 {
		opts.PerSession = DefaultPerSession
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	return &Recorder{
		perSession:  opts.PerSession,
		maxSessions: opts.MaxSessions,
		sessions:    make(map[string]*timeline),
	}
}

// add stamps and appends the entry. Entries without a session are
// dropped: the flight recorder is a per-session instrument, and
// unattributed records are already retained by the daemon's log ring.
func (r *Recorder) add(e Entry) {
	if r == nil || e.Session == "" {
		return
	}
	e.Seq = r.seq.Add(1)
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tl := r.sessions[e.Session]
	if tl == nil {
		r.evictLocked()
		tl = &timeline{}
		r.sessions[e.Session] = tl
	}
	tl.total++
	tl.last = e.Time
	tl.entries = append(tl.entries, e)
	if len(tl.entries) > r.perSession {
		tl.entries = tl.entries[len(tl.entries)-r.perSession:]
	}
}

// evictLocked makes room for one more session by dropping the
// least-recently-touched timeline when the table is full.
func (r *Recorder) evictLocked() {
	if len(r.sessions) < r.maxSessions {
		return
	}
	var victim string
	var oldest time.Time
	for s, tl := range r.sessions {
		if victim == "" || tl.last.Before(oldest) {
			victim, oldest = s, tl.last
		}
	}
	delete(r.sessions, victim)
}

// Write implements obslog.Sink: every structured log record that carries
// a session ID lands on that session's timeline. Attach the recorder to
// the domain logger with AddSink.
func (r *Recorder) Write(rec obslog.Record) {
	if r == nil || rec.Session == "" {
		return
	}
	msg := rec.Msg
	if rec.Logger != "" {
		msg = rec.Logger + ": " + msg
	}
	e := Entry{
		Time:    rec.Time,
		Kind:    KindLog,
		Session: rec.Session,
		TraceID: rec.TraceID,
		Message: msg,
	}
	if fm := rec.FieldMap(); len(fm) > 0 {
		fm["level"] = rec.Level.String()
		e.Detail = fm
	} else {
		e.Detail = map[string]any{"level": rec.Level.String()}
	}
	r.add(e)
}

// RecordTrace appends a finished trace's summary — root operation,
// duration, span count, and error spans — to its session's timeline.
func (r *Recorder) RecordTrace(td trace.TraceData) {
	if r == nil || td.Session == "" {
		return
	}
	errs := 0
	for _, sp := range td.Spans {
		if sp.Attrs["error"] != nil {
			errs++
		}
	}
	detail := map[string]any{
		"durMs": td.DurMs,
		"spans": len(td.Spans),
	}
	if errs > 0 {
		detail["errSpans"] = errs
	}
	if td.ParentSpan != "" {
		detail["parentSpan"] = td.ParentSpan
	}
	r.add(Entry{
		Time:    td.Start,
		Kind:    KindSpan,
		Session: td.Session,
		TraceID: td.TraceID,
		Message: "trace " + td.Name,
		Detail:  detail,
	})
}

// RecordEvent appends a control-plane bus event to the given session's
// timeline (the caller resolves which sessions an event concerns).
func (r *Recorder) RecordEvent(session string, ev eventbus.Event) {
	if r == nil {
		return
	}
	var detail map[string]any
	if ev.Payload != nil {
		detail = map[string]any{"payload": fmt.Sprint(ev.Payload)}
	}
	r.add(Entry{
		Time:    ev.Time,
		Kind:    KindEvent,
		Session: session,
		Message: string(ev.Topic),
		Detail:  detail,
	})
}

// RecordFault appends an injected-fault marker: kind is the fault kind
// (device.crash, link.degrade, ...), target names the faulted entity.
func (r *Recorder) RecordFault(session, kind, target string, detail map[string]any) {
	if r == nil {
		return
	}
	d := map[string]any{"target": target}
	for k, v := range detail {
		d[k] = v
	}
	r.add(Entry{
		Kind:    KindFault,
		Session: session,
		Message: "fault " + kind,
		Detail:  d,
	})
}

// Timeline returns the session's retained entries in sequence order
// (nil when the session is unknown or the recorder is nil).
func (r *Recorder) Timeline(session string) []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tl := r.sessions[session]
	if tl == nil {
		return nil
	}
	return append([]Entry(nil), tl.entries...)
}

// Excerpt returns up to max of the session's entries whose timestamps
// fall inside [from, to], oldest first, without copying the rest of the
// timeline. When the window holds more than max entries the newest max
// are kept — an evidence bundle wants the activity closest to the
// incident. A zero from means "no lower bound" and a zero to means "no
// upper bound". It returns nil for an unknown session, a nil recorder,
// or a non-positive max.
func (r *Recorder) Excerpt(session string, from, to time.Time, max int) []Entry {
	if r == nil || max <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tl := r.sessions[session]
	if tl == nil {
		return nil
	}
	// Entries are appended in time order, so scan backward from the
	// newest: skip past the upper bound, stop at the lower bound.
	out := make([]Entry, 0, max)
	for i := len(tl.entries) - 1; i >= 0 && len(out) < max; i-- {
		e := tl.entries[i]
		if !to.IsZero() && e.Time.After(to) {
			continue
		}
		if e.Time.Before(from) {
			break
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Sessions lists the recorded sessions, most recently touched first.
func (r *Recorder) Sessions() []SessionInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SessionInfo, 0, len(r.sessions))
	for s, tl := range r.sessions {
		out = append(out, SessionInfo{Session: s, Entries: len(tl.entries), Total: tl.total, Last: tl.last})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Last.Equal(out[j].Last) {
			return out[i].Last.After(out[j].Last)
		}
		return out[i].Session < out[j].Session
	})
	return out
}

// Render formats the session's timeline as text, one entry per line,
// oldest first. It returns "" for an unknown session.
func (r *Recorder) Render(session string) string {
	entries := r.Timeline(session)
	if len(entries) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight %s (%d entries)\n", session, len(entries))
	for _, e := range entries {
		b.WriteString(e.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

// Resolver maps a bus event to the sessions it concerns. Returning nil
// skips the event. The domain installs a resolver that attributes
// session.* events by payload and device/link events to the sessions
// placed on the affected devices.
type Resolver func(eventbus.Event) []string

// TapTopics is the control-plane topic set a Tap subscribes to.
var TapTopics = []eventbus.Topic{
	eventbus.TopicDeviceJoined,
	eventbus.TopicDeviceLeft,
	eventbus.TopicResourceChanged,
	eventbus.TopicDeviceSwitched,
	eventbus.TopicUserMoved,
	eventbus.TopicSessionStarted,
	eventbus.TopicSessionStopped,
	eventbus.TopicSessionRecovered,
	eventbus.TopicSessionRestored,
	eventbus.TopicUserNotification,
}

// Tap subscribes the recorder to the bus's control-plane topics through
// a lossless subscription and records each event on every session the
// resolver attributes it to. It returns a cancel function; cancelling is
// idempotent. A nil recorder taps nothing.
func (r *Recorder) Tap(bus *eventbus.Bus, resolve Resolver) (func(), error) {
	if r == nil || bus == nil {
		return func() {}, nil
	}
	sub, err := bus.SubscribeLossless(TapTopics...)
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sub.C() {
			if resolve == nil {
				continue
			}
			for _, session := range resolve(ev) {
				r.RecordEvent(session, ev)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			sub.Cancel()
			<-done
		})
	}, nil
}
