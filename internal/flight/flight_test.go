package flight

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ubiqos/internal/eventbus"
	"ubiqos/internal/obslog"
	"ubiqos/internal/trace"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Write(obslog.Record{Session: "s"})
	r.RecordTrace(trace.TraceData{Session: "s"})
	r.RecordEvent("s", eventbus.Event{Topic: eventbus.TopicDeviceLeft})
	r.RecordFault("s", "device.crash", "pc-1", nil)
	if r.Timeline("s") != nil || r.Sessions() != nil || r.Render("s") != "" {
		t.Fatal("nil recorder accessors must be empty")
	}
	cancel, err := r.Tap(eventbus.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
}

func TestFusedStreamsSequenceOrder(t *testing.T) {
	r := New(Options{})

	// Stream 1: a structured log record.
	log := obslog.New(obslog.LevelDebug, r)
	log.Named("core").ForSession("s1", "t1").Info("configured", obslog.Int("components", 4))

	// Stream 2: a trace summary.
	tc := trace.NewTracer(4)
	tr := tc.StartCtx(trace.Context{TraceID: "t1"}, "configure", "s1")
	tr.Root().Child("compose").End()
	tr.Finish()
	r.RecordTrace(tr.Export())

	// Stream 3: a bus event.
	r.RecordEvent("s1", eventbus.Event{Topic: eventbus.TopicDeviceLeft, Time: time.Now(), Payload: "pc-2"})

	// Stream 4: a fault marker.
	r.RecordFault("s1", "device.crash", "pc-2", map[string]any{"at": "5s"})

	entries := r.Timeline("s1")
	if len(entries) != 4 {
		t.Fatalf("want 4 fused entries, got %d", len(entries))
	}
	wantKinds := []Kind{KindLog, KindSpan, KindEvent, KindFault}
	for i, e := range entries {
		if e.Kind != wantKinds[i] {
			t.Errorf("entry %d kind = %s, want %s", i, e.Kind, wantKinds[i])
		}
		if e.Session != "s1" {
			t.Errorf("entry %d session = %q", i, e.Session)
		}
		if i > 0 && e.Seq <= entries[i-1].Seq {
			t.Errorf("sequence not monotonic: %d after %d", e.Seq, entries[i-1].Seq)
		}
	}
	if entries[0].TraceID != "t1" || entries[1].TraceID != "t1" {
		t.Error("log and span entries must carry the trace ID")
	}
	if entries[0].Message != "core: configured" || entries[0].Detail["components"] != int64(4) {
		t.Errorf("log entry = %+v", entries[0])
	}
	if entries[1].Message != "trace configure" || entries[1].Detail["spans"] != 2 {
		t.Errorf("span entry = %+v", entries[1])
	}
	if entries[2].Message != string(eventbus.TopicDeviceLeft) || entries[2].Detail["payload"] != "pc-2" {
		t.Errorf("event entry = %+v", entries[2])
	}
	if entries[3].Message != "fault device.crash" || entries[3].Detail["target"] != "pc-2" {
		t.Errorf("fault entry = %+v", entries[3])
	}
}

func TestSessionlessEntriesDropped(t *testing.T) {
	r := New(Options{})
	r.Write(obslog.Record{Msg: "no session"})
	r.RecordTrace(trace.TraceData{Name: "anon"})
	if got := len(r.Sessions()); got != 0 {
		t.Fatalf("sessionless entries must be dropped, have %d sessions", got)
	}
}

func TestPerSessionBound(t *testing.T) {
	r := New(Options{PerSession: 3})
	for i := 0; i < 10; i++ {
		r.RecordFault("s", "device.crash", fmt.Sprintf("d%d", i), nil)
	}
	entries := r.Timeline("s")
	if len(entries) != 3 {
		t.Fatalf("retained = %d, want 3", len(entries))
	}
	if entries[0].Detail["target"] != "d7" || entries[2].Detail["target"] != "d9" {
		t.Fatalf("eviction kept wrong entries: %v", entries)
	}
	info := r.Sessions()
	if len(info) != 1 || info[0].Total != 10 || info[0].Entries != 3 {
		t.Fatalf("session info = %+v", info)
	}
}

func TestSessionTableEviction(t *testing.T) {
	r := New(Options{MaxSessions: 2})
	r.RecordFault("a", "k", "t", nil)
	time.Sleep(time.Millisecond)
	r.RecordFault("b", "k", "t", nil)
	time.Sleep(time.Millisecond)
	r.RecordFault("c", "k", "t", nil) // evicts a (least recently touched)
	if r.Timeline("a") != nil {
		t.Fatal("oldest session should have been evicted")
	}
	if r.Timeline("b") == nil || r.Timeline("c") == nil {
		t.Fatal("recent sessions must survive")
	}
}

func TestTapResolvesEvents(t *testing.T) {
	r := New(Options{})
	bus := eventbus.New()
	defer bus.Close()
	cancel, err := r.Tap(bus, func(ev eventbus.Event) []string {
		if ev.Topic == eventbus.TopicDeviceLeft {
			return []string{"s1", "s2"}
		}
		if ev.Topic == eventbus.TopicSessionRecovered {
			if s, ok := ev.Payload.(string); ok {
				return []string{s}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	bus.Publish(eventbus.TopicDeviceLeft, "pc-1")
	bus.Publish(eventbus.TopicSessionRecovered, "s1")

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(r.Timeline("s1")) == 2 && len(r.Timeline("s2")) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s1 := r.Timeline("s1")
	if len(s1) != 2 {
		t.Fatalf("s1 entries = %d, want 2", len(s1))
	}
	if s1[0].Message != "device.left" || s1[1].Message != "session.recovered" {
		t.Fatalf("s1 timeline = %+v", s1)
	}
	if got := r.Timeline("s2"); len(got) != 1 {
		t.Fatalf("s2 entries = %d, want 1", len(got))
	}
	cancel()
	cancel() // idempotent
}

func TestRender(t *testing.T) {
	r := New(Options{})
	log := obslog.New(obslog.LevelDebug, r)
	log.ForSession("s", "abc").Warn("retry", obslog.Int("attempt", 2))
	r.RecordFault("s", "link.degrade", "pc-1<->pc-2", nil)
	out := r.Render("s")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "flight s (2 entries)") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "log") || !strings.Contains(lines[1], "retry") ||
		!strings.Contains(lines[1], "trace=abc") || !strings.Contains(lines[1], "attempt=2") {
		t.Errorf("log line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "fault link.degrade") {
		t.Errorf("fault line = %q", lines[2])
	}
	if r.Render("unknown") != "" {
		t.Error("unknown session must render empty")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New(Options{PerSession: 64, MaxSessions: 8})
	bus := eventbus.New()
	defer bus.Close()
	cancel, err := r.Tap(bus, func(ev eventbus.Event) []string {
		if s, ok := ev.Payload.(string); ok {
			return []string{s}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			session := fmt.Sprintf("s%d", g%4)
			log := obslog.New(obslog.LevelDebug, r).ForSession(session, "t")
			for i := 0; i < 50; i++ {
				log.Info("tick", obslog.Int("i", int64(i)))
				r.RecordFault(session, "k", "t", nil)
				bus.Publish(eventbus.TopicResourceChanged, session)
				r.Timeline(session)
				r.Sessions()
			}
		}(g)
	}
	wg.Wait()
	for _, info := range r.Sessions() {
		entries := r.Timeline(info.Session)
		for i := 1; i < len(entries); i++ {
			if entries[i].Seq <= entries[i-1].Seq {
				t.Fatalf("session %s: seq out of order", info.Session)
			}
		}
	}
}

func TestExcerptWindow(t *testing.T) {
	r := New(Options{})
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		r.Write(obslog.Record{
			Time:    base.Add(time.Duration(i) * time.Second),
			Msg:     fmt.Sprintf("e%d", i),
			Session: "s",
			TraceID: fmt.Sprintf("t%d", i%2),
		})
	}

	// Window [t2, t6] holds e2..e6; cap 3 keeps the newest three.
	got := r.Excerpt("s", base.Add(2*time.Second), base.Add(6*time.Second), 3)
	if len(got) != 3 {
		t.Fatalf("excerpt len = %d, want 3", len(got))
	}
	for i, want := range []string{"e4", "e5", "e6"} {
		if got[i].Message != want {
			t.Fatalf("excerpt[%d] = %q, want %q (oldest first, newest kept)", i, got[i].Message, want)
		}
	}

	// Zero bounds: no lower/upper limit.
	if got := r.Excerpt("s", time.Time{}, time.Time{}, 100); len(got) != 10 {
		t.Fatalf("unbounded excerpt len = %d, want 10", len(got))
	}
	// Window entirely after the data.
	if got := r.Excerpt("s", base.Add(time.Hour), time.Time{}, 5); got != nil {
		t.Fatalf("future window = %v, want nil", got)
	}
	// Unknown session, nil recorder, bad cap.
	if got := r.Excerpt("nope", time.Time{}, time.Time{}, 5); got != nil {
		t.Fatalf("unknown session = %v, want nil", got)
	}
	var nilRec *Recorder
	if got := nilRec.Excerpt("s", time.Time{}, time.Time{}, 5); got != nil {
		t.Fatalf("nil recorder = %v, want nil", got)
	}
	if got := r.Excerpt("s", time.Time{}, time.Time{}, 0); got != nil {
		t.Fatalf("max=0 = %v, want nil", got)
	}
}
