// Package autoscale closes the capacity loop from the supply side: a
// control loop in the collector → analyzer → optimizer → actuator shape
// that watches the same signals as the admission gate (per-class arrival
// meters, the saturation analyzer's verdict) and scales service-instance
// replicas up and down. Replicas live in a LeasedRegistry — the loop
// renews their leases every tick, so a dead autoscaler's replicas age out
// of discovery on their own — and scale-up pre-publishes and pre-installs
// the replica's package so admitted sessions skip the download that
// dominates configuration latency (the paper's Figure 4). Anti-cascade
// guards — per-group cooldown, hysteresis via the analyzer states, a max
// step size — keep a noisy signal from whipsawing the replica set.
package autoscale

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"ubiqos/internal/capacity"
	"ubiqos/internal/metrics"
	"ubiqos/internal/registry"
	"ubiqos/internal/repository"
)

// Defaults for the control loop.
const (
	DefaultInterval       = time.Second
	DefaultMaxStep        = 2
	DefaultScaleDownAfter = 3
	// rateAlpha smooths the measured per-tick arrival rate.
	rateAlpha = 0.5
)

// GroupSpec declares one scaling group: a replica template and the demand
// it is sized for.
type GroupSpec struct {
	// Name prefixes replica instance names ("<name>-r<i>").
	Name string
	// Template is the instance each replica clones (Name is overwritten).
	Template registry.Instance
	// Class is the session class whose arrival rate drives this group.
	Class string
	// Min and Max bound the replica count. Min 0 allows scale-to-zero.
	Min, Max int
	// TargetPerReplica is the arrival rate (sessions/sec) one replica is
	// sized for: desired = ceil(rate / TargetPerReplica).
	TargetPerReplica float64
	// InstallOn lists the devices each replica's package is pre-installed
	// on; empty means every device the Devices dep reports.
	InstallOn []string
}

// Options tunes the loop.
type Options struct {
	// Interval is the control period (0 selects DefaultInterval).
	Interval time.Duration
	// Cooldown is the minimum gap between scaling actions on one group
	// (0 selects 3×Interval).
	Cooldown time.Duration
	// MaxStep bounds the replica delta of one action (0 selects 2).
	MaxStep int
	// ScaleDownAfter is how many consecutive under-demand ticks — with the
	// space analyzer reporting ok — must pass before a scale-down (0
	// selects 3). Scale-ups act immediately; this is the hysteresis that
	// stops a brief lull from shedding warm replicas.
	ScaleDownAfter int
	// TTL is each replica's lease (0 selects 3×Interval). Leases are
	// renewed every tick.
	TTL time.Duration
	// Clock is injectable for tests (nil selects time.Now).
	Clock func() time.Time
}

// Signals are the collector inputs, wired by the domain.
type Signals struct {
	// Report returns the saturation analyzer's verdict.
	Report func() capacity.Report
	// Arrivals returns the cumulative arrival count for a class; the loop
	// differences it across ticks to measure offered load.
	Arrivals func(class string) int64
}

// Deps are the actuator outputs: where replicas register and install.
type Deps struct {
	Registry *registry.LeasedRegistry
	Repo     *repository.Repository
	// Devices lists install targets for groups without InstallOn.
	Devices func() []string
	Signals Signals
	// Metrics, when set, receives scale counters and replica gauges.
	Metrics *metrics.Registry
}

// group is the per-group controller state.
type group struct {
	spec       GroupSpec
	replicas   int
	maxSeen    int
	desired    int
	rate       float64
	rateOK     bool
	lastTotal  int64
	lastAction time.Time
	underTicks int
	ups, downs int64
}

// GroupStatus is one group's slice of a Status snapshot.
type GroupStatus struct {
	Name             string    `json:"name"`
	Class            string    `json:"class"`
	Replicas         int       `json:"replicas"`
	Desired          int       `json:"desired"`
	MaxSeen          int       `json:"maxSeen"`
	Min              int       `json:"min"`
	Max              int       `json:"max"`
	RatePerSec       float64   `json:"ratePerSec"`
	TargetPerReplica float64   `json:"targetPerReplica"`
	Ups              int64     `json:"ups"`
	Downs            int64     `json:"downs"`
	LastAction       time.Time `json:"lastAction,omitempty"`
}

// Status is the autoscaler's introspection snapshot (`qosctl scale`).
type Status struct {
	Running         bool          `json:"running"`
	IntervalSeconds float64       `json:"intervalSeconds"`
	Groups          []GroupStatus `json:"groups"`
}

// Autoscaler runs the control loop. Construct with New; Start launches
// the ticker, or call Tick directly for deterministic stepping.
type Autoscaler struct {
	interval       time.Duration
	cooldown       time.Duration
	maxStep        int
	scaleDownAfter int
	ttl            time.Duration
	clock          func() time.Time
	deps           Deps

	mu      sync.Mutex
	groups  []*group
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// New validates the specs, brings every group up to its Min replicas
// (pre-provisioning — the warm floor admitted sessions bind without a
// download), and returns the idle loop.
func New(opts Options, deps Deps, specs ...GroupSpec) (*Autoscaler, error) {
	if deps.Registry == nil || deps.Repo == nil {
		return nil, fmt.Errorf("autoscale: registry and repository deps are required")
	}
	if deps.Signals.Report == nil || deps.Signals.Arrivals == nil {
		return nil, fmt.Errorf("autoscale: report and arrivals signals are required")
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 3 * opts.Interval
	}
	if opts.MaxStep <= 0 {
		opts.MaxStep = DefaultMaxStep
	}
	if opts.ScaleDownAfter <= 0 {
		opts.ScaleDownAfter = DefaultScaleDownAfter
	}
	if opts.TTL <= 0 {
		opts.TTL = 3 * opts.Interval
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	a := &Autoscaler{
		interval:       opts.Interval,
		cooldown:       opts.Cooldown,
		maxStep:        opts.MaxStep,
		scaleDownAfter: opts.ScaleDownAfter,
		ttl:            opts.TTL,
		clock:          opts.Clock,
		deps:           deps,
	}
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if spec.Name == "" || spec.Template.Type == "" {
			return nil, fmt.Errorf("autoscale: group needs a name and a template type")
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("autoscale: duplicate group %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Min < 0 || spec.Max < spec.Min || spec.Max == 0 {
			return nil, fmt.Errorf("autoscale: group %q needs 0 ≤ min ≤ max with max > 0", spec.Name)
		}
		if spec.TargetPerReplica <= 0 {
			return nil, fmt.Errorf("autoscale: group %q needs a positive TargetPerReplica", spec.Name)
		}
		g := &group{spec: spec, lastTotal: deps.Signals.Arrivals(spec.Class)}
		a.groups = append(a.groups, g)
		if err := a.addReplicas(g, spec.Min); err != nil {
			return nil, err
		}
		g.desired = spec.Min
		a.publishGauges(g)
	}
	return a, nil
}

// replicaName is the instance name of a group's i-th replica (1-based).
func replicaName(g *group, i int) string { return fmt.Sprintf("%s-r%d", g.spec.Name, i) }

// installTargets resolves where a group's packages land.
func (a *Autoscaler) installTargets(g *group) []string {
	if len(g.spec.InstallOn) > 0 {
		return g.spec.InstallOn
	}
	if a.deps.Devices != nil {
		return a.deps.Devices()
	}
	return nil
}

// addReplicas registers and pre-provisions n new replicas. Callers hold
// a.mu (or run before the loop starts).
func (a *Autoscaler) addReplicas(g *group, n int) error {
	targets := a.installTargets(g)
	for i := 0; i < n; i++ {
		name := replicaName(g, g.replicas+1)
		in := g.spec.Template
		in.Name = name
		if err := a.deps.Registry.RegisterWithTTL(&in, a.ttl); err != nil {
			return fmt.Errorf("autoscale: group %q: %w", g.spec.Name, err)
		}
		// Pre-provision: publish the package and install it everywhere the
		// group serves, so no admitted session ever pays the download.
		if in.SizeMB > 0 {
			a.deps.Repo.Publish(repository.Package{Name: name, SizeMB: in.SizeMB})
		}
		for _, dev := range targets {
			a.deps.Repo.MarkInstalled(dev, name)
		}
		g.replicas++
		if g.replicas > g.maxSeen {
			g.maxSeen = g.replicas
		}
	}
	return nil
}

// dropReplicas retires the n highest-numbered replicas by collapsing
// their leases: the next sweep expires them through the normal hook, so
// plan caches hear service.expired exactly as for any departing service.
// Callers hold a.mu.
func (a *Autoscaler) dropReplicas(g *group, n int) {
	targets := a.installTargets(g)
	for i := 0; i < n && g.replicas > 0; i++ {
		name := replicaName(g, g.replicas)
		a.deps.Registry.Renew(name, time.Nanosecond)
		for _, dev := range targets {
			a.deps.Repo.Uninstall(dev, name)
		}
		g.replicas--
	}
}

// publishGauges refreshes one group's replica gauges. Callers hold a.mu.
func (a *Autoscaler) publishGauges(g *group) {
	if a.deps.Metrics == nil {
		return
	}
	a.deps.Metrics.Gauge(metrics.WithLabel(metrics.AutoscaleReplicas, "group", g.spec.Name)).Set(float64(g.replicas))
	a.deps.Metrics.Gauge(metrics.WithLabel(metrics.AutoscaleDesired, "group", g.spec.Name)).Set(float64(g.desired))
}

// Tick runs one control pass: measure demand, compute the desired
// replica count, actuate within the anti-cascade guards, renew leases,
// and sweep lapsed ones.
func (a *Autoscaler) Tick() {
	now := a.clock()
	rep := a.deps.Signals.Report()

	a.mu.Lock()
	for _, g := range a.groups {
		// Collector: difference the class arrival counter across ticks and
		// smooth it into the demand estimate.
		total := a.deps.Signals.Arrivals(g.spec.Class)
		if g.rateOK {
			// The tick cadence is the interval (Start's ticker or a test
			// driving Tick); using it directly keeps the measure clock-skew
			// free under an injected clock.
			inst := float64(total-g.lastTotal) / a.interval.Seconds()
			g.rate = rateAlpha*inst + (1-rateAlpha)*g.rate
		} else {
			g.rateOK = true
		}
		g.lastTotal = total

		// Optimizer: size for the smoothed demand, floor at Min, cap at Max.
		desired := int(math.Ceil(g.rate / g.spec.TargetPerReplica))
		if desired < g.spec.Min {
			desired = g.spec.Min
		}
		if desired > g.spec.Max {
			desired = g.spec.Max
		}
		// Hysteresis via the analyzer states: a pressured space never
		// scales down, and a saturated one gets a step up even before the
		// arrival estimate catches up.
		if rep.Space >= capacity.StateApproaching && desired < g.replicas {
			desired = g.replicas
		}
		if rep.Space == capacity.StateSaturated && g.replicas < g.spec.Max {
			up := g.replicas + a.maxStep
			if up > g.spec.Max {
				up = g.spec.Max
			}
			if desired < up {
				desired = up
			}
		}
		g.desired = desired

		// Actuator, inside the anti-cascade guards.
		cooled := g.lastAction.IsZero() || now.Sub(g.lastAction) >= a.cooldown
		switch {
		case desired > g.replicas:
			g.underTicks = 0
			if cooled {
				step := desired - g.replicas
				if step > a.maxStep {
					step = a.maxStep
				}
				if err := a.addReplicas(g, step); err == nil {
					g.ups++
					g.lastAction = now
					if a.deps.Metrics != nil {
						a.deps.Metrics.Counter(metrics.WithLabel(metrics.ScaleUps, "group", g.spec.Name)).Inc()
					}
				}
			}
		case desired < g.replicas:
			g.underTicks++
			if cooled && g.underTicks >= a.scaleDownAfter && rep.Space == capacity.StateOK {
				step := g.replicas - desired
				if step > a.maxStep {
					step = a.maxStep
				}
				a.dropReplicas(g, step)
				g.downs++
				g.lastAction = now
				g.underTicks = 0
				if a.deps.Metrics != nil {
					a.deps.Metrics.Counter(metrics.WithLabel(metrics.ScaleDowns, "group", g.spec.Name)).Inc()
				}
			}
		default:
			g.underTicks = 0
		}

		// Liveness: renew the survivors' leases.
		for i := 1; i <= g.replicas; i++ {
			a.deps.Registry.Renew(replicaName(g, i), a.ttl)
		}
		a.publishGauges(g)
	}
	a.mu.Unlock()

	// Expire collapsed leases (and anything else that lapsed), firing the
	// registry's expiry hook outside our lock.
	a.deps.Registry.Sweep()
}

// Start launches the control loop (idempotent).
func (a *Autoscaler) Start() {
	a.mu.Lock()
	if a.running {
		a.mu.Unlock()
		return
	}
	a.running = true
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	stop, done := a.stop, a.done
	a.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(a.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				a.Tick()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for it (idempotent). Replica leases stop
// being renewed and age out of discovery on their own.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	if !a.running {
		a.mu.Unlock()
		return
	}
	a.running = false
	stop, done := a.stop, a.done
	a.mu.Unlock()
	close(stop)
	<-done
}

// SetReplicas pins a group to n replicas right now (clamped to [0, Max]),
// bypassing cooldown — the `qosctl scale -group -replicas` override. The
// loop's own optimizer may move the group again on later ticks.
func (a *Autoscaler) SetReplicas(groupName string, n int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, g := range a.groups {
		if g.spec.Name != groupName {
			continue
		}
		if n < 0 {
			n = 0
		}
		if n > g.spec.Max {
			n = g.spec.Max
		}
		switch {
		case n > g.replicas:
			if err := a.addReplicas(g, n-g.replicas); err != nil {
				return err
			}
			g.ups++
		case n < g.replicas:
			a.dropReplicas(g, g.replicas-n)
			g.downs++
		}
		g.desired = n
		g.lastAction = a.clock()
		g.underTicks = 0
		a.publishGauges(g)
		return nil
	}
	return fmt.Errorf("autoscale: no group %q", groupName)
}

// Status snapshots every group's controller state.
func (a *Autoscaler) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Status{Running: a.running, IntervalSeconds: a.interval.Seconds()}
	for _, g := range a.groups {
		st.Groups = append(st.Groups, GroupStatus{
			Name:             g.spec.Name,
			Class:            g.spec.Class,
			Replicas:         g.replicas,
			Desired:          g.desired,
			MaxSeen:          g.maxSeen,
			Min:              g.spec.Min,
			Max:              g.spec.Max,
			RatePerSec:       g.rate,
			TargetPerReplica: g.spec.TargetPerReplica,
			Ups:              g.ups,
			Downs:            g.downs,
			LastAction:       g.lastAction,
		})
	}
	sort.Slice(st.Groups, func(i, j int) bool { return st.Groups[i].Name < st.Groups[j].Name })
	return st
}

// Render formats the status as a fixed-width table (`qosctl scale`).
func (st Status) Render() string {
	var b strings.Builder
	state := "stopped"
	if st.Running {
		state = "running"
	}
	fmt.Fprintf(&b, "autoscaler %s — interval %.2fs\n\n", state, st.IntervalSeconds)
	fmt.Fprintf(&b, "%-18s %-12s %8s %8s %8s %9s %6s %6s\n",
		"GROUP", "CLASS", "REPLICAS", "DESIRED", "MAX-SEEN", "ARR/S", "UPS", "DOWNS")
	for _, g := range st.Groups {
		fmt.Fprintf(&b, "%-18s %-12s %8d %8d %8d %9.2f %6d %6d\n",
			g.Name, g.Class, g.Replicas, g.Desired, g.MaxSeen, g.RatePerSec, g.Ups, g.Downs)
	}
	return b.String()
}
