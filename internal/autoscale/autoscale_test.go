package autoscale

import (
	"testing"
	"time"

	"ubiqos/internal/capacity"
	"ubiqos/internal/netsim"
	"ubiqos/internal/registry"
	"ubiqos/internal/repository"
)

// newRepo builds a repository over a fresh simulated network.
func newRepo(t *testing.T) *repository.Repository {
	t.Helper()
	net, err := netsim.New(1)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := repository.New("repo-host", net)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// harness wires an autoscaler over fake signals and an injectable clock,
// driven by explicit Tick calls.
type harness struct {
	reg      *registry.LeasedRegistry
	repo     *repository.Repository
	now      time.Time
	arrivals map[string]int64
	state    capacity.State
	a        *Autoscaler
}

func newHarness(t *testing.T, opts Options, specs ...GroupSpec) *harness {
	t.Helper()
	h := &harness{
		now:      time.Unix(0, 0),
		arrivals: make(map[string]int64),
	}
	h.reg = registry.NewLeased(func() time.Time { return h.now })
	h.repo = newRepo(t)
	opts.Clock = func() time.Time { return h.now }
	a, err := New(opts, Deps{
		Registry: h.reg,
		Repo:     h.repo,
		Devices:  func() []string { return []string{"dev-a", "dev-b"} },
		Signals: Signals{
			Report:   func() capacity.Report { return capacity.Report{Space: h.state} },
			Arrivals: func(class string) int64 { return h.arrivals[class] },
		},
	}, specs...)
	if err != nil {
		t.Fatal(err)
	}
	h.a = a
	return h
}

// tick advances the fake clock by the control interval and runs one pass,
// mirroring the ticker cadence.
func (h *harness) tick() {
	h.now = h.now.Add(h.a.interval)
	h.a.Tick()
}

func (h *harness) replicas(t *testing.T, group string) int {
	t.Helper()
	for _, g := range h.a.Status().Groups {
		if g.Name == group {
			return g.Replicas
		}
	}
	t.Fatalf("no group %q in status", group)
	return 0
}

func spec(name, class string, min, max int, target float64) GroupSpec {
	return GroupSpec{
		Name:             name,
		Template:         registry.Instance{Type: "mpeg-server", SizeMB: 4},
		Class:            class,
		Min:              min,
		Max:              max,
		TargetPerReplica: target,
	}
}

// TestPreProvisionMin: New brings the group to its Min floor, with the
// replica registered, its package published, and installed on every
// target device.
func TestPreProvisionMin(t *testing.T) {
	h := newHarness(t, Options{Interval: time.Second}, spec("mpeg", "video", 2, 5, 1))
	if got := h.replicas(t, "mpeg"); got != 2 {
		t.Fatalf("replicas = %d, want pre-provisioned Min 2", got)
	}
	for _, name := range []string{"mpeg-r1", "mpeg-r2"} {
		if h.reg.Get(name) == nil {
			t.Fatalf("replica %s not registered", name)
		}
		if !h.repo.Has(name) {
			t.Fatalf("replica %s package not published", name)
		}
		for _, dev := range []string{"dev-a", "dev-b"} {
			if !h.repo.Installed(dev, name) {
				t.Fatalf("replica %s not pre-installed on %s", name, dev)
			}
		}
	}
}

// TestScaleUpOnDemand: arrival-rate pressure raises the replica count,
// bounded per action by MaxStep.
func TestScaleUpOnDemand(t *testing.T) {
	h := newHarness(t, Options{Interval: time.Second, Cooldown: time.Second, MaxStep: 2},
		spec("mpeg", "video", 1, 6, 1))
	h.tick() // arms the rate estimator
	// 10 arrivals/sec against 1/sec/replica: desired sprints toward 5+.
	h.arrivals["video"] += 10
	h.tick()
	if got := h.replicas(t, "mpeg"); got != 3 {
		t.Fatalf("replicas after first pressure tick = %d, want 1+MaxStep = 3", got)
	}
	h.arrivals["video"] += 10
	h.tick()
	if got := h.replicas(t, "mpeg"); got != 5 {
		t.Fatalf("replicas after second pressure tick = %d, want 5", got)
	}
	if h.reg.Get("mpeg-r5") == nil {
		t.Fatal("scaled-up replica mpeg-r5 not registered")
	}
}

// TestCooldownBlocksConsecutiveActions: a second scale-up within the
// cooldown window is deferred.
func TestCooldownBlocksConsecutiveActions(t *testing.T) {
	h := newHarness(t, Options{Interval: time.Second, Cooldown: 10 * time.Second, MaxStep: 1},
		spec("mpeg", "video", 1, 6, 1))
	h.tick()
	h.arrivals["video"] += 10
	h.tick()
	if got := h.replicas(t, "mpeg"); got != 2 {
		t.Fatalf("replicas = %d, want 2 after first action", got)
	}
	h.arrivals["video"] += 10
	h.tick()
	if got := h.replicas(t, "mpeg"); got != 2 {
		t.Fatalf("replicas = %d, want still 2 inside cooldown", got)
	}
}

// TestSaturationForcesScaleUp: a saturated space steps the group up even
// while the arrival estimate reads zero demand.
func TestSaturationForcesScaleUp(t *testing.T) {
	h := newHarness(t, Options{Interval: time.Second, Cooldown: time.Second, MaxStep: 2},
		spec("mpeg", "video", 1, 6, 1))
	h.state = capacity.StateSaturated
	h.tick()
	if got := h.replicas(t, "mpeg"); got != 3 {
		t.Fatalf("replicas = %d, want 3 (saturation step-up)", got)
	}
}

// TestScaleDownNeedsQuietAndOKState: scale-down waits for ScaleDownAfter
// consecutive under-demand ticks AND an ok analyzer verdict — an
// approaching space pins the floor.
func TestScaleDownNeedsQuietAndOKState(t *testing.T) {
	h := newHarness(t, Options{Interval: time.Second, Cooldown: time.Second, MaxStep: 4, ScaleDownAfter: 2},
		spec("mpeg", "video", 1, 6, 1))
	h.a.SetReplicas("mpeg", 4)
	// Pressured space: under-demand ticks accrue but nothing sheds.
	h.state = capacity.StateApproaching
	for i := 0; i < 4; i++ {
		h.tick()
	}
	if got := h.replicas(t, "mpeg"); got != 4 {
		t.Fatalf("replicas = %d, want 4 held while approaching", got)
	}
	// Quiet, ok space: the hysteresis count restarts, then sheds.
	h.state = capacity.StateOK
	h.tick()
	if got := h.replicas(t, "mpeg"); got != 4 {
		t.Fatalf("replicas = %d, want 4 after one quiet tick (ScaleDownAfter=2)", got)
	}
	h.tick()
	if got := h.replicas(t, "mpeg"); got != 1 {
		t.Fatalf("replicas = %d, want 1 after hysteresis elapsed", got)
	}
}

// TestScaleToZeroAndLeaseCollapse: a Min=0 group sheds its last replica
// when idle, and the retired replica is gone from discovery after the
// tick's sweep.
func TestScaleToZeroAndLeaseCollapse(t *testing.T) {
	h := newHarness(t, Options{Interval: time.Second, Cooldown: time.Second, ScaleDownAfter: 1},
		spec("enh", "background", 0, 3, 1))
	h.a.SetReplicas("enh", 2)
	if h.reg.Get("enh-r2") == nil {
		t.Fatal("manual scale-up did not register enh-r2")
	}
	h.tick() // arm
	h.tick() // zero demand, ok state → shed
	h.tick()
	if got := h.replicas(t, "enh"); got != 0 {
		t.Fatalf("replicas = %d, want scale-to-zero", got)
	}
	for _, name := range []string{"enh-r1", "enh-r2"} {
		if h.reg.Get(name) != nil {
			t.Fatalf("retired replica %s still discoverable", name)
		}
		if h.repo.Installed("dev-a", name) {
			t.Fatalf("retired replica %s still installed", name)
		}
	}
}

// TestLeaseRenewalKeepsReplicasAlive: surviving replicas outlive their
// TTL because every tick renews them.
func TestLeaseRenewalKeepsReplicasAlive(t *testing.T) {
	h := newHarness(t, Options{Interval: time.Second, TTL: 2 * time.Second},
		spec("mpeg", "video", 1, 3, 1))
	for i := 0; i < 10; i++ { // 10s of ticks ≫ the 2s TTL
		h.tick()
	}
	if h.reg.Get("mpeg-r1") == nil {
		t.Fatal("renewed replica lapsed")
	}
	// Stop renewing: the lease ages out on its own.
	h.now = h.now.Add(5 * time.Second)
	h.reg.Sweep()
	if h.reg.Get("mpeg-r1") != nil {
		t.Fatal("unrenewed replica survived its TTL")
	}
}

// TestSetReplicasClampsAndOverrides: the manual override clamps to
// [0, Max] and bypasses cooldown.
func TestSetReplicasClampsAndOverrides(t *testing.T) {
	h := newHarness(t, Options{Interval: time.Second, Cooldown: time.Hour},
		spec("mpeg", "video", 1, 4, 1))
	if err := h.a.SetReplicas("mpeg", 99); err != nil {
		t.Fatal(err)
	}
	if got := h.replicas(t, "mpeg"); got != 4 {
		t.Fatalf("replicas = %d, want clamped to Max 4", got)
	}
	if err := h.a.SetReplicas("mpeg", -5); err != nil {
		t.Fatal(err)
	}
	if got := h.replicas(t, "mpeg"); got != 0 {
		t.Fatalf("replicas = %d, want clamped to 0", got)
	}
	if err := h.a.SetReplicas("nope", 1); err == nil {
		t.Fatal("SetReplicas on unknown group did not error")
	}
}

// TestNewValidation rejects malformed specs.
func TestNewValidation(t *testing.T) {
	base := func() (Options, Deps) {
		reg := registry.NewLeased(nil)
		return Options{}, Deps{
			Registry: reg,
			Repo:     newRepo(t),
			Signals: Signals{
				Report:   func() capacity.Report { return capacity.Report{} },
				Arrivals: func(string) int64 { return 0 },
			},
		}
	}
	bad := []GroupSpec{
		{Name: "", Template: registry.Instance{Type: "t"}, Max: 1, TargetPerReplica: 1},
		{Name: "g", Template: registry.Instance{}, Max: 1, TargetPerReplica: 1},
		{Name: "g", Template: registry.Instance{Type: "t"}, Min: 2, Max: 1, TargetPerReplica: 1},
		{Name: "g", Template: registry.Instance{Type: "t"}, Max: 1, TargetPerReplica: 0},
	}
	for i, s := range bad {
		opts, deps := base()
		if _, err := New(opts, deps, s); err == nil {
			t.Fatalf("case %d: bad spec %+v accepted", i, s)
		}
	}
	opts, deps := base()
	if _, err := New(opts, deps,
		spec("g", "c", 0, 1, 1), spec("g", "c", 0, 1, 1)); err == nil {
		t.Fatal("duplicate group names accepted")
	}
}
