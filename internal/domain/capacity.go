// Capacity observatory glue: one sampling pass reads the domain's live
// state (devices, links, classes, admission queue, SLO burn), publishes
// it as labeled gauges, records the selected series into the on-daemon
// time-series rings, and runs the saturation analyzer. The observatory
// itself (internal/capacity) stays free of domain knowledge; this file is
// where the wiring lives.
package domain

import (
	"time"

	"ubiqos/internal/capacity"
	"ubiqos/internal/metrics"
	"ubiqos/internal/resource"
)

// dimNames labels the resource dimensions in the utilization gauges.
var dimNames = [resource.Dims]string{resource.Memory: "mem", resource.CPU: "cpu"}

// utilization returns the committed fraction of one capacity dimension
// (0 when the device declares none of it).
func utilization(committed, cap float64) float64 {
	if cap <= 0 {
		return 0
	}
	u := committed / cap
	if u < 0 {
		return 0
	}
	return u
}

// sampleCapacity is the observatory's sampler: it runs once per tick and
// on demand from the scrape surfaces (rate-limited by the observatory).
func (d *Domain) sampleCapacity(now time.Time) {
	violations := 0
	worstBurn := 0.0
	for _, st := range d.SLO.Publish() {
		if st.State == metrics.StateViolated {
			violations++
		}
		if st.BurnRate > worstBurn {
			worstBurn = st.BurnRate
		}
	}

	in := capacity.Input{
		Now:           now,
		QueueDepth:    d.Configurator.Pending(),
		SLOViolations: violations,
	}

	devicesDown := 0
	headroomG := d.Metrics.LabeledGauge(metrics.DeviceHeadroom, "device")
	upG := d.Metrics.LabeledGauge(metrics.DeviceUp, "device")
	for _, dev := range d.Devices.All() {
		cap, committed := dev.Capacity(), dev.Committed()
		ds := capacity.DeviceStatus{ID: string(dev.ID), Up: dev.Up(), Headroom: 1}
		for i := 0; i < resource.Dims; i++ {
			u := utilization(committed[i], cap[i])
			if free := 1 - u; free < ds.Headroom {
				ds.Headroom = free
			}
			d.Metrics.Gauge(metrics.WithLabel(metrics.WithLabel(
				metrics.DeviceUtilization, "device", ds.ID), "dim", dimNames[i])).Set(u)
		}
		if ds.Headroom < 0 {
			ds.Headroom = 0
		}
		ds.MemUtil = utilization(committed[resource.Memory], cap[resource.Memory])
		ds.CPUUtil = utilization(committed[resource.CPU], cap[resource.CPU])
		headroomG.With(ds.ID).Set(ds.Headroom)
		if ds.Up {
			upG.With(ds.ID).Set(1)
		} else {
			upG.With(ds.ID).Set(0)
			devicesDown++
		}
		d.Capacity.Record(metrics.WithLabel(metrics.DeviceHeadroom, "device", ds.ID), now, ds.Headroom)
		in.Devices = append(in.Devices, ds)
	}

	residualG := d.Metrics.LabeledGauge(metrics.LinkResidual, "link")
	for _, e := range d.Links.Entries() {
		ls := capacity.LinkStatus{
			A:            string(e.A),
			B:            string(e.B),
			CapacityMbps: e.CapacityMbps,
			ResidualMbps: e.CapacityMbps - e.ReservedMbps,
		}
		if ls.ResidualMbps < 0 {
			ls.ResidualMbps = 0
		}
		if e.CapacityMbps > 0 {
			ls.Utilization = e.ReservedMbps / e.CapacityMbps
		}
		link := ls.A + "|" + ls.B
		residualG.With(link).Set(ls.ResidualMbps)
		d.Capacity.Record(metrics.WithLabel(metrics.LinkResidual, "link", link), now, ls.ResidualMbps)
		in.Links = append(in.Links, ls)
	}

	classG := d.Metrics.LabeledGauge(metrics.SessionsByClass, "class")
	counts := d.Configurator.ClassCounts()
	d.repMu.Lock()
	if d.classesSeen == nil {
		d.classesSeen = make(map[string]bool)
	}
	for class := range d.classesSeen {
		if _, ok := counts[class]; !ok {
			// Every session of the class is gone: the gauge must drop to 0
			// rather than freeze at its last value.
			counts[class] = 0
		}
	}
	for class := range counts {
		d.classesSeen[class] = true
	}
	d.repMu.Unlock()
	for class, n := range counts {
		classG.With(class).Set(float64(n))
		cs := capacity.ClassStatus{
			Class:          class,
			Active:         n,
			ArrivalRate:    d.Metrics.Meter(metrics.WithLabel(metrics.SessionArrivals, "class", class)).EWMA(),
			CompletionRate: d.Metrics.Meter(metrics.WithLabel(metrics.SessionCompletions, "class", class)).EWMA(),
		}
		d.Capacity.Record(metrics.WithLabel(metrics.SessionsByClass, "class", class), now, float64(n))
		in.Classes = append(in.Classes, cs)
	}

	rep := d.saturation.Observe(in)

	stateG := d.Metrics.LabeledGauge(metrics.SaturationState, "device")
	for _, ds := range rep.Devices {
		stateG.With(ds.ID).Set(float64(ds.State))
	}
	d.Metrics.Gauge(metrics.SaturationState).Set(float64(rep.Space))
	d.Metrics.Gauge(metrics.SpaceHeadroom).Set(rep.SpaceHeadroom)
	d.Capacity.Record(metrics.SpaceHeadroom, now, rep.SpaceHeadroom)
	d.Capacity.Record(metrics.SaturationState, now, float64(rep.Space))
	d.Capacity.Record(metrics.ConfigPending, now, float64(in.QueueDepth))
	d.Capacity.Record(metrics.ActiveSessions, now, float64(d.Configurator.Sessions()))

	d.repMu.Lock()
	d.lastReport = rep
	d.repMu.Unlock()

	// Refresh the outcome ledger's per-class gauges (session_deficit_*,
	// class_availability_ratio) on the same cadence, so /metrics scrapes
	// — which force a sampling pass — always see current accounting.
	d.Ledger.PublishMetrics()

	// Feed the incident correlation engine last, with repMu released:
	// its evidence hooks may read lastReport and the admission/autoscale
	// snapshots.
	d.observeIncidents(now, rep, worstBurn, violations, devicesDown)
}

// SampleCapacityNow forces a sampling pass (rate-limited by the
// observatory) so scrape surfaces serve fresh data between ticks.
func (d *Domain) SampleCapacityNow() { d.Capacity.SampleNow() }

// SaturationReport returns the most recent saturation verdict, sampling
// first so a caller immediately after startup still gets a real report.
func (d *Domain) SaturationReport() capacity.Report {
	d.SampleCapacityNow()
	d.repMu.Lock()
	defer d.repMu.Unlock()
	return d.lastReport
}
