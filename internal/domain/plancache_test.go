package domain

import (
	"strings"
	"testing"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/graph"
	"ubiqos/internal/registry"
	"ubiqos/internal/resource"
)

// waitForCache polls the plan cache until the condition holds; bus
// delivery to the cache subscription is asynchronous.
func waitForCache(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// drainPlanCacheEvents fences the plan cache's lossless bus pump: the
// setup-time device.joined events from newSpace are delivered
// asynchronously and would otherwise invalidate entries stored later.
// The pump is FIFO, so once a sentinel service.expired flush is observed
// every earlier event has been applied.
func drainPlanCacheEvents(t *testing.T, d *Domain) {
	t.Helper()
	g := graph.New()
	g.MustAddNode(&graph.Node{ID: "drain", Type: "component", Resources: resource.MB(1, 1)})
	w, err := resource.NewWeights(0.3, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p := &distributor.Problem{
		Graph:     g,
		Devices:   []distributor.DeviceInfo{{ID: "drain-ghost", Avail: resource.MB(8, 8)}},
		Bandwidth: func(a, b device.ID) float64 { return 1 },
		Weights:   w,
	}
	a, cost, err := distributor.Optimal(p)
	if err != nil {
		t.Fatal(err)
	}
	d.PlanCache.Store(p, a, cost)
	d.Bus.Publish(eventbus.TopicServiceExpired, "drain-sentinel")
	waitForCache(t, "bus pump drain", func() bool {
		return d.PlanCache.Stats().Entries == 0
	})
}

// TestDomainPlanCacheHit: starting, stopping, and re-starting the same
// application restores the exact pre-session resource state, so the
// second configuration is served from the plan cache without a solve.
func TestDomainPlanCacheHit(t *testing.T) {
	d := newSpace(t)
	if d.PlanCache == nil {
		t.Fatal("domain built without a plan cache")
	}
	drainPlanCacheEvents(t, d)
	first, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"})
	if err != nil {
		t.Fatal(err)
	}
	st := d.PlanCache.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("stats after first start %+v, want one miss and one entry", st)
	}
	if err := d.StopApp("a1"); err != nil {
		t.Fatal(err)
	}
	second, err := d.StartApp(core.Request{SessionID: "a2", App: audioApp(), ClientDevice: "desktop1"})
	if err != nil {
		t.Fatal(err)
	}
	if st := d.PlanCache.Stats(); st.Hits != 1 {
		t.Fatalf("stats after identical restart %+v, want a cache hit", st)
	}
	for node, dev := range first.Placement {
		if second.Placement[node] != dev {
			t.Errorf("cached plan placed %s on %s, original on %s", node, second.Placement[node], dev)
		}
	}
	if txt := d.Explain.Render("a2"); !strings.Contains(txt, "served from plan cache") {
		t.Errorf("explain for the cached session lacks the cache-hit line:\n%s", txt)
	}
}

// TestDomainPlanCacheInvalidatedOnFault: a device failure announced on
// the bus purges every memoized plan that involved the device.
func TestDomainPlanCacheInvalidatedOnFault(t *testing.T) {
	d := newSpace(t)
	drainPlanCacheEvents(t, d)
	s, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"})
	if err != nil {
		t.Fatal(err)
	}
	host := s.Placement["server"]
	if err := d.StopApp("a1"); err != nil {
		t.Fatal(err)
	}
	if st := d.PlanCache.Stats(); st.Entries != 1 {
		t.Fatalf("stats %+v, want the plan memoized", st)
	}
	if err := d.FailDevice(host); err != nil {
		t.Fatal(err)
	}
	waitForCache(t, "invalidation after device failure", func() bool {
		st := d.PlanCache.Stats()
		return st.Entries == 0 && st.Invalidations >= 1
	})
}

// TestWireLeaseExpiryFlushesPlanCache: sweeping an expired service lease
// publishes service.expired, which conservatively flushes the cache —
// a vanished instance can invalidate any memoized composition.
func TestWireLeaseExpiryFlushesPlanCache(t *testing.T) {
	d := newSpace(t)
	drainPlanCacheEvents(t, d)
	now := time.Unix(1_000_000, 0)
	leased := registry.NewLeased(func() time.Time { return now })
	d.WireLeaseExpiry(leased)

	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	if err := d.StopApp("a1"); err != nil {
		t.Fatal(err)
	}
	if st := d.PlanCache.Stats(); st.Entries != 1 {
		t.Fatalf("stats %+v, want the plan memoized", st)
	}

	err := leased.RegisterWithTTL(&registry.Instance{Name: "ephemeral-1", Type: "audio-player"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)
	if expired := leased.Sweep(); len(expired) != 1 || expired[0] != "ephemeral-1" {
		t.Fatalf("swept %v, want the ephemeral lease", expired)
	}
	waitForCache(t, "flush after lease expiry", func() bool {
		return d.PlanCache.Stats().Entries == 0
	})
}
