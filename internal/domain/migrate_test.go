package domain

import (
	"strings"
	"testing"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

// wan is the inter-building link used by migration tests.
var wan = netsim.Link{BandwidthMbps: 2, LatencyMs: 20}

func TestMigrateAcrossDomains(t *testing.T) {
	office := newSpace(t)
	home := newSpace2(t, "home")

	if _, err := office.StartApp(core.Request{
		SessionID:    "music",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "desktop1",
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Duration(float64(time.Second) * testScale))
	posBefore := office.Configurator.Session("music").Runtime.Position()
	if posBefore == 0 {
		t.Fatal("no playback before migration")
	}

	active, err := office.Migrate("music", home, "home-desktop1", wan)
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if office.Configurator.Session("music") != nil {
		t.Error("session still active in the origin domain")
	}
	if home.Configurator.Session("music") == nil {
		t.Error("session not active in the target domain")
	}
	if active.ClientDevice != "home-desktop1" {
		t.Errorf("portal = %s", active.ClientDevice)
	}
	// Playback continues past the interruption point on the new domain.
	time.Sleep(time.Duration(float64(time.Second) * testScale))
	if pos := active.Runtime.Position(); pos <= posBefore {
		t.Errorf("position %d did not advance past %d after migration", pos, posBefore)
	}
	// The WAN transfer cost is part of the handoff overhead: 0.5MB over
	// 2 Mbps = 2s.
	if active.Timing.InitOrHandoff < 2*time.Second {
		t.Errorf("InitOrHandoff = %v, want ≥ 2s WAN transfer", active.Timing.InitOrHandoff)
	}
	if err := home.StopApp("music"); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateValidation(t *testing.T) {
	office := newSpace(t)
	home := newSpace2(t, "home2")
	if _, err := office.Migrate("ghost", home, "home2-desktop1", wan); err == nil {
		t.Error("unknown session should fail")
	}
	if _, err := office.Migrate("x", office, "desktop1", wan); err == nil {
		t.Error("self-migration should fail")
	}
	if _, err := office.Migrate("x", nil, "desktop1", wan); err == nil {
		t.Error("nil target should fail")
	}
	if _, err := office.Migrate("x", home, "y", netsim.Link{}); err == nil {
		t.Error("invalid WAN link should fail")
	}
}

func TestMigrateRollsBackWhenTargetRejects(t *testing.T) {
	office := newSpace(t)
	// An empty domain: no devices, no services — every configuration fails.
	empty, err := New("void", Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(empty.Close)

	if _, err := office.StartApp(core.Request{SessionID: "music", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	_, err = office.Migrate("music", empty, "nowhere", wan)
	if err == nil || !strings.Contains(err.Error(), "resumed at origin") {
		t.Fatalf("err = %v, want rollback notice", err)
	}
	if office.Configurator.Session("music") == nil {
		t.Fatal("session lost: rollback did not resume at origin")
	}
	if err := office.StopApp("music"); err != nil {
		t.Fatal(err)
	}
}

// newSpace2 builds a second smart space with prefixed device names (and
// the same service catalog) so two domains can coexist in one test.
func newSpace2(t *testing.T, prefix string) *Domain {
	t.Helper()
	template := newSpace(t)
	fresh, err := New(prefix, Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fresh.Close)
	var ids []device.ID
	for _, dev := range template.Devices.All() {
		id := device.ID(prefix + "-" + string(dev.ID))
		// Re-derive the raw capacity: AddDevice re-applies the class
		// normalization, so feed it the inverse.
		raw := dev.Capacity()
		raw[resource.CPU] /= dev.Class.DefaultSpeedRatio()
		if _, err := fresh.AddDevice(id, dev.Class, raw, dev.Attrs); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if err := fresh.Connect(ids[i], ids[j], netsim.Ethernet); err != nil {
				t.Fatal(err)
			}
		}
		if err := fresh.ConnectServer(ids[i], netsim.Ethernet); err != nil {
			t.Fatal(err)
		}
	}
	for _, inst := range template.Registry.All() {
		fresh.Registry.MustRegister(inst)
		for _, id := range ids {
			fresh.Repo.MarkInstalled(string(id), inst.Name)
		}
	}
	return fresh
}
