// Package domain implements the Gaia-style domain server (paper §1): the
// smart space is structured hierarchically by grouping devices into
// domains, and each domain runs one domain server providing the key
// infrastructure services for the entire domain space — service discovery,
// the event service, the component repository, checkpointing, profiling,
// and the service configuration model itself — "in the same way as today's
// operating systems do for a single desktop."
package domain

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/autoscale"
	"ubiqos/internal/capacity"
	"ubiqos/internal/checkpoint"
	"ubiqos/internal/composer"
	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/explain"
	"ubiqos/internal/flight"
	"ubiqos/internal/incident"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
	"ubiqos/internal/netsim"
	"ubiqos/internal/obslog"
	"ubiqos/internal/profiler"
	"ubiqos/internal/registry"
	"ubiqos/internal/repository"
	"ubiqos/internal/resource"
	"ubiqos/internal/runtime"
	"ubiqos/internal/trace"
)

// traceCapacity bounds the per-domain ring of finished configuration
// traces.
const traceCapacity = 128

// Options configures a new domain.
type Options struct {
	// Scale is the emulation time scale (1 = real time).
	Scale float64
	// Weights are the cost-aggregation significance weights; default: 0.3
	// memory, 0.3 CPU, 0.4 network.
	Weights resource.Weights
	// RepoHost names the network endpoint serving the component
	// repository; default "<domain>-server".
	RepoHost string
	// StateSizeMB sizes serialized session state for handoffs.
	StateSizeMB float64
	// StateSizeFor sizes the checkpoint by the portal device it is taken
	// on; overrides StateSizeMB when set.
	StateSizeFor func(from device.ID) float64
	// DegradeFactors is the QoS degradation ladder applied when a request
	// does not fit at full quality (see core.Config.DegradeFactors).
	DegradeFactors []float64
	// Place overrides the placement algorithm (default: the paper's
	// greedy heuristic).
	Place core.PlaceFunc
	// PlanCacheCapacity bounds the plan cache (0 selects the distributor
	// default; negative disables the cache entirely).
	PlanCacheCapacity int
	// SampleInterval is the capacity observatory's sampling period (0
	// selects capacity.DefaultInterval).
	SampleInterval time.Duration
	// RingCapacity bounds each capacity time series (0 selects
	// capacity.DefaultRingCapacity).
	RingCapacity int
	// SaturationThresholds tunes the saturation analyzer (zero value
	// selects capacity.DefaultThresholds).
	SaturationThresholds capacity.Thresholds
	// EnableAdmission wires the saturation-aware admission gate into the
	// configure path: new sessions are admitted, admitted degraded, or
	// rejected with a retry-after hint from the analyzer verdict, the SLO
	// burn rate, and the per-class policies. Off by default — existing
	// spaces keep the paper's admit-then-degrade-on-failure behavior
	// unless they opt in.
	EnableAdmission bool
	// AdmissionPolicies overrides the gate's per-class policy table (nil
	// selects admission.DefaultPolicies); AdmissionDefault overrides the
	// fallback policy for unlisted classes.
	AdmissionPolicies map[string]admission.ClassPolicy
	AdmissionDefault  *admission.ClassPolicy
}

// Domain is one smart-space domain and its domain server.
type Domain struct {
	Name string

	Registry    *registry.Registry
	Bus         *eventbus.Bus
	Devices     *device.Table
	Links       *device.Links
	Net         *netsim.Network
	Repo        *repository.Repository
	Checkpoints *checkpoint.Store
	Profiler    *profiler.Profiler
	Metrics     *metrics.Registry
	Tracer      *trace.Tracer
	// Flight is the session flight recorder: it receives session-stamped
	// log records (as a sink of Log), finished trace summaries, the
	// control-plane bus events (via a lossless tap installed by New), and
	// fault-injection markers.
	Flight *flight.Recorder
	// Explain is the decision-provenance recorder: one record per
	// configure/reconfigure/recover action and recovery-ladder step,
	// cross-linked to the session's trace IDs and flight timeline.
	Explain *explain.Recorder
	// Ledger is the QoS outcome ledger: per-session delivered-vs-
	// requested accounting (admission verdicts, degradation episodes,
	// deficit integrals, recovery MTTR) aggregated into per-class
	// scorecards behind /ledger, /scorecard, and `qosctl report`.
	Ledger *ledger.Ledger
	// Log is the domain's structured logger. It writes into Flight by
	// default; the daemon attaches an os.Stderr sink (and any other) with
	// Log.AddSink.
	Log *obslog.Logger
	// SLO evaluates the stock objectives (metrics.DefaultObjectives) over
	// the domain's registry for the /slo surface.
	SLO          *metrics.SLO
	Composer     *composer.Composer
	Configurator *core.Configurator
	// PlanCache memoizes solved placements by problem signature and
	// invalidates them off the event bus (nil when disabled).
	PlanCache *distributor.PlanCache
	// Capacity is the capacity observatory: on-daemon time series sampled
	// on a ticker, feeding the /timeseries surface and the saturation
	// analyzer behind /saturation and `qosctl top`.
	Capacity *capacity.Observatory
	// Admission is the saturation-aware admission gate (nil unless
	// Options.EnableAdmission).
	Admission *admission.Gate
	// Autoscaler is the instance autoscaler control loop (nil until
	// EnableAutoscaler).
	Autoscaler *autoscale.Autoscaler
	// Incidents is the incident correlation engine: it fuses SLO burn,
	// saturation, fault, admission, autoscale, and ledger signals into
	// operator-grade incidents with evidence bundles and postmortems.
	Incidents *incident.Engine

	saturation *capacity.Analyzer
	repMu      sync.Mutex
	lastReport capacity.Report
	// classesSeen remembers every class the sampler has published, so a
	// class whose sessions all ended still gets its gauge zeroed.
	classesSeen map[string]bool

	tapCancel    func()
	ledgerCancel func()

	mu       sync.Mutex
	parent   *Domain
	children map[string]*Domain
}

// New builds a domain with all infrastructure services wired together.
func New(name string, opts Options) (*Domain, error) {
	if name == "" {
		return nil, fmt.Errorf("domain: empty name")
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Weights == nil {
		w, err := resource.NewWeights(0.3, 0.3, 0.4)
		if err != nil {
			return nil, err
		}
		opts.Weights = w
	}
	if err := opts.Weights.Validate(); err != nil {
		return nil, err
	}
	if opts.RepoHost == "" {
		opts.RepoHost = name + "-server"
	}

	d := &Domain{
		Name:        name,
		Registry:    registry.New(),
		Bus:         eventbus.New(),
		Devices:     device.NewTable(),
		Links:       device.NewLinks(),
		Checkpoints: checkpoint.NewStore(),
		Profiler:    profiler.MustNew(profiler.DefaultAlpha),
		Metrics:     metrics.NewRegistry(),
		Tracer:      trace.NewTracer(traceCapacity),
		Flight:      flight.New(flight.Options{}),
		Explain:     explain.New(explain.Options{}),
		children:    make(map[string]*Domain),
	}
	d.Ledger = ledger.New(ledger.Options{Metrics: d.Metrics})
	d.Log = obslog.New(obslog.LevelDebug, d.Flight)
	d.SLO = metrics.NewSLO(d.Metrics, metrics.DefaultObjectives()...)
	d.Bus.Instrument(d.Metrics)
	d.Bus.SetLogger(d.Log.Named("eventbus"))
	net, err := netsim.New(opts.Scale)
	if err != nil {
		return nil, err
	}
	d.Net = net
	repo, err := repository.New(opts.RepoHost, net)
	if err != nil {
		return nil, err
	}
	d.Repo = repo
	engine, err := runtime.NewEngine(opts.Scale, net)
	if err != nil {
		return nil, err
	}
	d.Composer = composer.New(&federatedDiscovery{domain: d})
	if opts.PlanCacheCapacity >= 0 {
		d.PlanCache = distributor.NewPlanCache(opts.PlanCacheCapacity)
		d.PlanCache.Instrument(d.Metrics)
		if err := d.PlanCache.Subscribe(d.Bus); err != nil {
			return nil, err
		}
	}
	ccfg := core.Config{
		Composer:       d.Composer,
		Devices:        d.Devices,
		Links:          d.Links,
		Net:            net,
		Repo:           repo,
		Checkpoints:    d.Checkpoints,
		Engine:         engine,
		Weights:        opts.Weights,
		StateSizeMB:    opts.StateSizeMB,
		StateSizeFor:   opts.StateSizeFor,
		DegradeFactors: opts.DegradeFactors,
		Place:          opts.Place,
		PlanCache:      d.PlanCache,
		Profiler:       d.Profiler,
		Metrics:        d.Metrics,
		Tracer:         d.Tracer,
		Log:            d.Log,
		Flight:         d.Flight,
		Explain:        d.Explain,
		Ledger:         d.Ledger,
	}
	cfg, err := core.New(ccfg)
	if err != nil {
		return nil, err
	}
	d.Configurator = cfg
	if opts.EnableAdmission {
		d.EnableAdmissionGate(opts.AdmissionPolicies, opts.AdmissionDefault)
	}
	// The flight recorder taps the control-plane topics, attributing each
	// event to the sessions it concerns.
	d.tapCancel, err = d.Flight.Tap(d.Bus, d.resolveFlightSessions)
	if err != nil {
		return nil, err
	}
	// The outcome ledger taps the session lifecycle topics losslessly
	// too, so stops and losses land in the accounting even when a code
	// path bypasses the configurator/supervisor hooks.
	d.ledgerCancel, err = d.Ledger.Tap(d.Bus, d.resolveFlightSessions)
	if err != nil {
		return nil, err
	}
	d.Capacity = capacity.New(capacity.Options{
		Interval:     opts.SampleInterval,
		RingCapacity: opts.RingCapacity,
	})
	d.saturation = capacity.NewAnalyzer(opts.SaturationThresholds)
	// The incident engine must exist before the observatory starts: the
	// sampler feeds it one Observation per pass.
	d.initIncidents()
	d.Capacity.SetSampler(d.sampleCapacity)
	d.Capacity.Start()
	return d, nil
}

// resolveFlightSessions attributes a control-plane bus event to sessions:
// session-scoped topics carry the session ID (or a notice naming it) as
// payload; device- and link-scoped topics map to the sessions with
// components placed on the affected devices.
func (d *Domain) resolveFlightSessions(ev eventbus.Event) []string {
	switch p := ev.Payload.(type) {
	case core.SessionLostNotice:
		return []string{p.SessionID}
	case MissingServiceNotice:
		return []string{p.SessionID}
	case LinkChanged:
		sessions := d.SessionsOn(p.A)
		seen := make(map[string]bool, len(sessions))
		for _, s := range sessions {
			seen[s] = true
		}
		for _, s := range d.SessionsOn(p.B) {
			if !seen[s] {
				sessions = append(sessions, s)
			}
		}
		return sessions
	case string:
		switch ev.Topic {
		case eventbus.TopicSessionStarted, eventbus.TopicSessionStopped,
			eventbus.TopicSessionRecovered, eventbus.TopicSessionRestored,
			eventbus.TopicUserMoved:
			return []string{p}
		case eventbus.TopicDeviceJoined, eventbus.TopicDeviceLeft,
			eventbus.TopicDeviceSwitched, eventbus.TopicResourceChanged:
			return d.SessionsOn(device.ID(p))
		}
	}
	return nil
}

// MustNew is New that panics on error.
func MustNew(name string, opts Options) *Domain {
	d, err := New(name, opts)
	if err != nil {
		panic(err)
	}
	return d
}

// federatedDiscovery resolves specs against the local registry first and
// escalates to ancestor domains on failed discovery — the hierarchical
// lookup of the Gaia smart-space structure.
type federatedDiscovery struct {
	domain *Domain
}

// Best implements composer.Discovery.
func (f *federatedDiscovery) Best(spec registry.Spec) *registry.Instance {
	for d := f.domain; d != nil; d = d.Parent() {
		if inst := d.Registry.Best(spec); inst != nil {
			return inst
		}
	}
	return nil
}

// Candidates implements composer.CandidateExplainer: the candidate set
// accumulates across the same escalation path Best walks, stopping at
// the first domain that can satisfy the spec — exactly the instances the
// federated Best decision was made over. Domains before the stopping one
// had no eligible instance, so their contributions are all rejections
// and the single Chosen candidate is the federated winner.
func (f *federatedDiscovery) Candidates(spec registry.Spec) []registry.Candidate {
	var out []registry.Candidate
	for d := f.domain; d != nil; d = d.Parent() {
		out = append(out, d.Registry.Candidates(spec)...)
		if d.Registry.Best(spec) != nil {
			break
		}
	}
	return out
}

// Parent returns the parent domain, or nil at the root.
func (d *Domain) Parent() *Domain {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.parent
}

// AddChild attaches a sub-domain; a domain has at most one parent.
func (d *Domain) AddChild(child *Domain) error {
	if child == nil {
		return fmt.Errorf("domain: nil child")
	}
	if child == d {
		return fmt.Errorf("domain: cannot parent itself")
	}
	child.mu.Lock()
	if child.parent != nil {
		child.mu.Unlock()
		return fmt.Errorf("domain: %s already has a parent", child.Name)
	}
	child.parent = d
	child.mu.Unlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.children[child.Name]; ok {
		return fmt.Errorf("domain: duplicate child %s", child.Name)
	}
	d.children[child.Name] = child
	return nil
}

// Children returns the attached sub-domains.
func (d *Domain) Children() []*Domain {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Domain, 0, len(d.children))
	for _, c := range d.children {
		out = append(out, c)
	}
	return out
}

// Root walks to the top of the hierarchy.
func (d *Domain) Root() *Domain {
	cur := d
	for {
		p := cur.Parent()
		if p == nil {
			return cur
		}
		cur = p
	}
}

// AddDevice registers a device with raw (device-local) capacity: the
// domain normalizes it to benchmark units using the class's speed ratio,
// declares the repository link if missing, and announces the join on the
// event bus.
func (d *Domain) AddDevice(id device.ID, class device.Class, rawCapacity resource.Vector, attrs map[string]string) (*device.Device, error) {
	norm, err := resource.SpeedNormalizer(class.DefaultSpeedRatio())
	if err != nil {
		return nil, err
	}
	if len(rawCapacity) != resource.Dims {
		return nil, fmt.Errorf("domain: capacity must have %d dimensions", resource.Dims)
	}
	dev, err := device.New(id, class, norm.Availability(rawCapacity), attrs)
	if err != nil {
		return nil, err
	}
	if err := d.Devices.Add(dev); err != nil {
		return nil, err
	}
	d.Bus.Publish(eventbus.TopicDeviceJoined, string(id))
	return dev, nil
}

// Connect declares both the emulated network link and the distributor's
// bandwidth table entry between two endpoints.
func (d *Domain) Connect(a, b device.ID, link netsim.Link) error {
	if err := d.Net.SetLink(string(a), string(b), link); err != nil {
		return err
	}
	return d.Links.Set(a, b, link.BandwidthMbps)
}

// ConnectServer links a device to the domain server host (for component
// downloads).
func (d *Domain) ConnectServer(a device.ID, link netsim.Link) error {
	return d.Net.SetLink(string(a), d.Repo.Host, link)
}

// FailDevice marks a device as crashed and announces the departure on the
// event bus without attempting any inline recovery — re-placement is the
// recovery supervisor's job. This is the entry point the fault injector
// uses; RemoveDevice remains the synchronous crash-and-recover operation
// behind the wire protocol's crash-device op.
func (d *Domain) FailDevice(id device.ID) error {
	dev := d.Devices.Get(id)
	if dev == nil {
		return fmt.Errorf("domain: unknown device %s", id)
	}
	dev.SetUp(false)
	d.Log.Named("domain").Warn("device left", obslog.String("device", string(id)))
	d.Bus.Publish(eventbus.TopicDeviceLeft, string(id))
	return nil
}

// RejoinDevice marks a previously crashed device reachable again and
// announces the join. Its prior resource commitments are still admitted
// (see device.SetUp); sessions that already migrated away simply leave
// that capacity to be reclaimed as their old reservations are released.
func (d *Domain) RejoinDevice(id device.ID) error {
	dev := d.Devices.Get(id)
	if dev == nil {
		return fmt.Errorf("domain: unknown device %s", id)
	}
	dev.SetUp(true)
	d.Log.Named("domain").Info("device rejoined", obslog.String("device", string(id)))
	d.Bus.Publish(eventbus.TopicDeviceJoined, string(id))
	return nil
}

// LinkChanged is the payload of a TopicResourceChanged event raised for a
// link-bandwidth fluctuation (as opposed to a device-capacity one, whose
// payload is the device ID string).
type LinkChanged struct {
	A, B device.ID
}

// DegradeLink models a link-quality fault: the emulated network link and
// the distributor's bandwidth table both drop to factor× their current
// bandwidth, and the fluctuation is announced on the event bus. It
// returns the link as it was before so the caller can RestoreLink later.
// Existing reservations are kept, so a degradation below the reserved
// bandwidth overcommits the link — the signal the recovery supervisor
// reacts to.
func (d *Domain) DegradeLink(a, b device.ID, factor float64) (netsim.Link, error) {
	prev, err := d.Net.Degrade(string(a), string(b), factor)
	if err != nil {
		return netsim.Link{}, err
	}
	if err := d.Links.Set(a, b, prev.BandwidthMbps*factor); err != nil {
		return netsim.Link{}, err
	}
	d.Log.Named("domain").Warn("link degraded",
		obslog.String("link", string(a)+"-"+string(b)), obslog.Float("factor", factor))
	d.Bus.Publish(eventbus.TopicResourceChanged, LinkChanged{A: a, B: b})
	return prev, nil
}

// RestoreLink reinstates a link (typically the return value of a prior
// DegradeLink) and announces the fluctuation.
func (d *Domain) RestoreLink(a, b device.ID, link netsim.Link) error {
	if err := d.Connect(a, b, link); err != nil {
		return err
	}
	d.Bus.Publish(eventbus.TopicResourceChanged, LinkChanged{A: a, B: b})
	return nil
}

// RemoveDevice marks a device as gone, publishes the leave event, and
// reconfigures every session that had components on it (the paper: "if
// one of old devices crashes, the service distributor needs to calculate
// new service distributions ... so the user can continue his or her tasks
// with minimum QoS degradations"). It returns the IDs of sessions that
// were successfully reconfigured and an error naming any that could not
// be; stranded sessions additionally raise a TopicUserNotification event
// carrying a core.SessionLostNotice, since the user is the only recovery
// path left.
func (d *Domain) RemoveDevice(id device.ID) ([]string, error) {
	dev := d.Devices.Get(id)
	if dev == nil {
		return nil, fmt.Errorf("domain: unknown device %s", id)
	}
	dev.SetUp(false)
	d.Log.Named("domain").Warn("device removed", obslog.String("device", string(id)))
	d.Bus.Publish(eventbus.TopicDeviceLeft, string(id))

	var moved []string
	var firstErr error
	for _, sid := range d.SessionsOn(id) {
		active := d.Configurator.Session(sid)
		if active == nil {
			continue
		}
		req := active.Request
		if req.ClientDevice == id {
			// The portal device itself is gone; the session cannot
			// continue until the user picks a new portal.
			d.notifyLost(sid, id, "portal device left the smart space")
			if firstErr == nil {
				firstErr = fmt.Errorf("domain: session %s lost its portal device %s", sid, id)
			}
			continue
		}
		if _, err := d.Configurator.Reconfigure(req); err != nil {
			d.notifyLost(sid, id, err.Error())
			if firstErr == nil {
				firstErr = fmt.Errorf("domain: reconfigure %s: %w", sid, err)
			}
			continue
		}
		moved = append(moved, sid)
	}
	return moved, firstErr
}

// notifyLost raises the user notification for a session that cannot be
// kept alive automatically.
func (d *Domain) notifyLost(sessionID string, dev device.ID, reason string) {
	d.Bus.Publish(eventbus.TopicUserNotification, core.SessionLostNotice{
		SessionID: sessionID,
		Device:    dev,
		Reason:    reason,
	})
}

// SessionsOn returns the session IDs with at least one component placed on
// the device.
func (d *Domain) SessionsOn(id device.ID) []string {
	var out []string
	for _, sid := range d.Configurator.SessionIDs() {
		active := d.Configurator.Session(sid)
		if active == nil {
			continue
		}
		for _, dev := range active.Placement {
			if dev == id {
				out = append(out, sid)
				break
			}
		}
	}
	return out
}

// SwitchDevice moves a session's portal to a new device — the paper's
// PC→PDA handoff — by re-running the configuration model with the new
// client binding. The event service announces the switch.
func (d *Domain) SwitchDevice(sessionID string, to device.ID) (*core.ActiveSession, error) {
	active := d.Configurator.Session(sessionID)
	if active == nil {
		return nil, fmt.Errorf("domain: unknown session %q", sessionID)
	}
	if d.Devices.Get(to) == nil {
		return nil, fmt.Errorf("domain: unknown device %s", to)
	}
	req := active.Request
	req.ClientDevice = to
	d.Bus.Publish(eventbus.TopicDeviceSwitched, string(to))
	return d.Configurator.Reconfigure(req)
}

// ResizeDevice models a significant resource fluctuation on a device (raw
// capacity, normalized by the device's class as in AddDevice): the event
// service announces the change, and when the device's existing
// commitments no longer fit, the domain re-distributes its sessions one
// at a time — in ID order — until the remaining commitments fit, so "the
// user can continue his or her tasks with minimum QoS degradations". It
// returns the IDs of reconfigured sessions.
func (d *Domain) ResizeDevice(id device.ID, rawCapacity resource.Vector) ([]string, error) {
	dev := d.Devices.Get(id)
	if dev == nil {
		return nil, fmt.Errorf("domain: unknown device %s", id)
	}
	norm, err := resource.SpeedNormalizer(dev.Class.DefaultSpeedRatio())
	if err != nil {
		return nil, err
	}
	if len(rawCapacity) != resource.Dims {
		return nil, fmt.Errorf("domain: capacity must have %d dimensions", resource.Dims)
	}
	fits, err := dev.Resize(norm.Availability(rawCapacity))
	if err != nil {
		return nil, err
	}
	d.Bus.Publish(eventbus.TopicResourceChanged, string(id))
	if fits {
		return nil, nil
	}

	var moved []string
	var firstErr error
	for _, sid := range d.SessionsOn(id) {
		active := d.Configurator.Session(sid)
		if active == nil {
			continue
		}
		if _, err := d.Configurator.Reconfigure(active.Request); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("domain: reconfigure %s after fluctuation: %w", sid, err)
			}
			continue
		}
		moved = append(moved, sid)
		if dev.Committed().LessEq(dev.Capacity()) {
			break
		}
	}
	if !dev.Committed().LessEq(dev.Capacity()) && firstErr == nil {
		firstErr = fmt.Errorf("domain: device %s still overcommitted after redistribution", id)
	}
	return moved, firstErr
}

// Migrate moves a running session to another domain — the paper's "when
// the user moves to a new location, the previous service components may
// no longer be available" scenario. The session is suspended here, its
// state crosses the inter-domain link, and the target domain composes a
// fresh service graph from its own environment, resuming playback from
// the interruption point on the new portal device. If the target domain
// cannot host the session, the migration is rolled back by resuming it in
// this domain.
func (d *Domain) Migrate(sessionID string, target *Domain, newClient device.ID, wan netsim.Link) (*core.ActiveSession, error) {
	if target == nil || target == d {
		return nil, fmt.Errorf("domain: migration target must be a different domain")
	}
	if !wan.Valid() {
		return nil, fmt.Errorf("domain: invalid inter-domain link")
	}
	active := d.Configurator.Session(sessionID)
	if active == nil {
		return nil, fmt.Errorf("domain: unknown session %q", sessionID)
	}
	req := active.Request
	req.ClientDevice = newClient

	st, err := d.Configurator.Suspend(sessionID)
	if err != nil {
		return nil, err
	}
	d.Bus.Publish(eventbus.TopicUserMoved, sessionID)

	// The checkpoint crosses the inter-domain link (modeled at the target
	// domain's time scale).
	transfer := wan.TransferTime(st.SizeMB)
	time.Sleep(time.Duration(float64(transfer) * target.Net.Scale()))

	resumed, err := target.Configurator.ResumeFrom(req, st)
	if err != nil {
		// Roll back: resume in the origin domain on the original portal.
		restore := active.Request
		if restored, rerr := d.Configurator.ResumeFrom(restore, st); rerr == nil {
			return restored, fmt.Errorf("domain: target %s rejected session (resumed at origin): %w", target.Name, err)
		}
		return nil, fmt.Errorf("domain: migration failed and origin resume failed too: %w", err)
	}
	resumed.Timing.InitOrHandoff += transfer
	target.Bus.Publish(eventbus.TopicSessionStarted, sessionID)
	return resumed, nil
}

// configureBurn reads the configure-latency objective's burn rate from
// the SLO tracker (0 when the objective has no data yet).
func (d *Domain) configureBurn() float64 {
	for _, st := range d.SLO.Evaluate() {
		if st.Name == "configure-p95" {
			return st.BurnRate
		}
	}
	return 0
}

// EnableAdmissionGate builds the saturation-aware admission gate over
// this domain's capacity signals and installs it on the configurator.
// The gate's signals are closures over d, so nothing is evaluated until
// the first Configure. Call before serving traffic: the configurator
// reads the gate un-synchronized on the configure path.
func (d *Domain) EnableAdmissionGate(policies map[string]admission.ClassPolicy, def *admission.ClassPolicy) *admission.Gate {
	g := admission.New(admission.Options{
		Signals: admission.Signals{
			Report:  func() capacity.Report { return d.SaturationReport() },
			SLOBurn: d.configureBurn,
		},
		Policies: policies,
		Default:  def,
		Metrics:  d.Metrics,
	})
	// The sampler goroutine reads d.Admission through admissionGate, so
	// the late-bound assignment needs the same lock.
	d.repMu.Lock()
	d.Admission = g
	d.repMu.Unlock()
	d.Configurator.SetAdmission(g)
	return g
}

// EnableAutoscaler starts an instance autoscaler over this domain's
// registry and repository. Replicas live in a leased overlay of the
// domain registry (expiry wired to the event bus, so a lapsed replica
// flushes memoized placements naming it), demand is read from the
// per-class session-arrival meters the configurator marks, and the
// saturation analyzer's verdict gates scale direction. The returned
// autoscaler is already started; Close stops it.
func (d *Domain) EnableAutoscaler(opts autoscale.Options, specs ...autoscale.GroupSpec) (*autoscale.Autoscaler, error) {
	leased := registry.NewLeasedOver(d.Registry, nil)
	d.WireLeaseExpiry(leased)
	a, err := autoscale.New(opts, autoscale.Deps{
		Registry: leased,
		Repo:     d.Repo,
		Devices: func() []string {
			devs := d.Devices.All()
			ids := make([]string, len(devs))
			for i, dev := range devs {
				ids[i] = string(dev.ID)
			}
			return ids
		},
		Signals: autoscale.Signals{
			Report: func() capacity.Report { return d.SaturationReport() },
			Arrivals: func(class string) int64 {
				name := metrics.WithLabel(metrics.SessionArrivals, "class", class)
				return d.Metrics.Meter(name).Total()
			},
		},
		Metrics: d.Metrics,
	}, specs...)
	if err != nil {
		return nil, err
	}
	a.Start()
	d.repMu.Lock()
	d.Autoscaler = a
	d.repMu.Unlock()
	return a, nil
}

// WireLeaseExpiry connects a leased registry's expiry sweeps to the
// domain's event bus: each instance a Sweep removes is announced as a
// TopicServiceExpired event (payload: the instance name), which in turn
// flushes the plan cache — an expired lease means the discovered service
// set changed, so memoized placements may reference instances that no
// longer exist.
func (d *Domain) WireLeaseExpiry(l *registry.LeasedRegistry) {
	l.SetExpiryHook(func(names []string) {
		for _, name := range names {
			d.Bus.Publish(eventbus.TopicServiceExpired, name)
		}
	})
}

// MissingServiceNotice is the payload of a TopicUserNotification event
// raised when composition fails for missing mandatory services: the user
// may download and install an instance, or quit the application.
type MissingServiceNotice struct {
	SessionID string
	Types     []string
}

// StartApp configures and starts an application session, announcing it on
// the event bus. When composition fails because mandatory services are
// missing, the event service notifies the user (paper §3.2) before the
// error is returned.
func (d *Domain) StartApp(req core.Request) (*core.ActiveSession, error) {
	active, err := d.Configurator.Configure(req)
	if err != nil {
		var miss *composer.MissingServiceError
		if errors.As(err, &miss) {
			d.Bus.Publish(eventbus.TopicUserNotification, MissingServiceNotice{
				SessionID: req.SessionID,
				Types:     miss.Types,
			})
		}
		return nil, err
	}
	d.Bus.Publish(eventbus.TopicSessionStarted, req.SessionID)
	return active, nil
}

// StopApp stops a session and announces it.
func (d *Domain) StopApp(sessionID string) error {
	if err := d.Configurator.Stop(sessionID); err != nil {
		return err
	}
	d.Bus.Publish(eventbus.TopicSessionStopped, sessionID)
	return nil
}

// Close stops the capacity observatory and the flight recorder's bus
// tap, detaches the plan cache, and shuts down the domain's event bus.
func (d *Domain) Close() {
	if d.Autoscaler != nil {
		d.Autoscaler.Stop()
	}
	if d.Capacity != nil {
		d.Capacity.Stop()
	}
	if d.tapCancel != nil {
		d.tapCancel()
	}
	if d.ledgerCancel != nil {
		d.ledgerCancel()
	}
	d.Bus.Close()
	if d.PlanCache != nil {
		d.PlanCache.Close()
	}
}
