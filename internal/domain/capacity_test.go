package domain

import (
	"strings"
	"testing"
	"time"

	"ubiqos/internal/capacity"
	"ubiqos/internal/core"
	"ubiqos/internal/metrics"
)

func TestSampleCapacityPublishesLabeledGauges(t *testing.T) {
	d := newSpace(t)
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	d.sampleCapacity(time.Now())

	text := d.Metrics.Exposition()
	for _, want := range []string{
		`device_headroom_ratio{device="desktop1"}`,
		`device_headroom_ratio{device="pda1"}`,
		`device_utilization_ratio{device="desktop1",dim="cpu"}`,
		`device_utilization_ratio{device="desktop1",dim="mem"}`,
		`device_up{device="pda1"} 1`,
		`link_residual_mbps{link="desktop1|desktop2"}`,
		`sessions_by_class{class="audio-player"} 1`,
		`session_arrivals_total{class="audio-player"} 1`,
		"space_headroom_ratio ",
		"saturation_state ",
		`saturation_state{device="desktop1"}`,
		"config_pending 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestSampleCapacityRecordsTimeSeries(t *testing.T) {
	d := newSpace(t)
	base := time.Now()
	for i := 0; i < 5; i++ {
		d.sampleCapacity(base.Add(time.Duration(i) * time.Second))
	}
	if got := len(d.Capacity.Series(metrics.SpaceHeadroom, 0)); got != 5 {
		t.Errorf("space_headroom_ratio samples = %d, want 5", got)
	}
	if got := len(d.Capacity.Series(metrics.WithLabel(metrics.DeviceHeadroom, "device", "pda1"), 0)); got != 5 {
		t.Errorf("per-device headroom samples = %d, want 5", got)
	}
	names := d.Capacity.Metrics()
	if len(names) == 0 {
		t.Fatal("observatory recorded no series")
	}
}

func TestSaturationReportTracksSessions(t *testing.T) {
	d := newSpace(t)
	rep := d.SaturationReport()
	if rep.Space != capacity.StateOK {
		t.Fatalf("idle space state = %v, want ok", rep.Space)
	}
	if len(rep.Devices) != 3 {
		t.Fatalf("report devices = %d, want 3", len(rep.Devices))
	}

	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	d.sampleCapacity(time.Now())
	d.repMu.Lock()
	rep = d.lastReport
	d.repMu.Unlock()
	found := false
	for _, c := range rep.Classes {
		if c.Class == "audio-player" && c.Active == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("report classes missing audio-player: %+v", rep.Classes)
	}

	// Stop the session: the class gauge must drop to zero on the next pass,
	// not freeze at its last value.
	if err := d.StopApp("a1"); err != nil {
		t.Fatal(err)
	}
	d.sampleCapacity(time.Now())
	if !strings.Contains(d.Metrics.Exposition(), `sessions_by_class{class="audio-player"} 0`) {
		t.Error("sessions_by_class gauge did not drop to 0 after stop")
	}
}
