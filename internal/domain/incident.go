// Incident correlation glue: the engine itself (internal/incident)
// stays free of domain knowledge; this file injects the evidence hooks
// (saturation report, SLO statuses, capacity rings, flight excerpts,
// admission/autoscale snapshots, ledger scorecards) and assembles the
// per-pass Observation the capacity sampler feeds it.
package domain

import (
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/autoscale"
	"ubiqos/internal/capacity"
	"ubiqos/internal/flight"
	"ubiqos/internal/incident"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
)

// initIncidents constructs the incident correlation engine. Must run
// before the capacity observatory starts: the sampler feeds the engine
// one Observation per pass.
//
// Hook safety: the hooks run while the engine holds its own mutex,
// inside a sampling pass. Anything they call that forces another
// sampling pass (admission/autoscale Status → SaturationReport →
// SampleNow) is harmless because the observatory rate-limits re-entrant
// passes to a no-op, and none of the hooks are called with repMu held.
func (d *Domain) initIncidents() {
	d.Incidents = incident.New(incident.Options{
		Metrics: d.Metrics,
		Sources: incident.Sources{
			Saturation: func() *capacity.Report {
				d.repMu.Lock()
				rep := d.lastReport
				d.repMu.Unlock()
				return &rep
			},
			SLO: func() []metrics.Status { return d.SLO.Evaluate() },
			Series: func(metric string, window time.Duration) []capacity.Sample {
				return d.Capacity.Series(metric, window)
			},
			SeriesNames: []string{
				metrics.SpaceHeadroom, metrics.SaturationState,
				metrics.ConfigPending, metrics.ActiveSessions,
			},
			Sessions: func() []flight.SessionInfo { return d.Flight.Sessions() },
			Excerpt: func(session string, from, to time.Time, max int) []flight.Entry {
				return d.Flight.Excerpt(session, from, to, max)
			},
			Scorecards: func() []ledger.Scorecard { return d.Ledger.Scorecards(0) },
			Admission: func() *admission.Status {
				if g := d.admissionGate(); g != nil {
					st := g.Status()
					return &st
				}
				return nil
			},
			Autoscale: func() *autoscale.Status {
				if a := d.autoscaler(); a != nil {
					st := a.Status()
					return &st
				}
				return nil
			},
		},
	})
}

// admissionGate / autoscaler read the late-bound subsystem pointers
// under repMu: EnableAdmissionGate / EnableAutoscaler may run after the
// sampler goroutine has started.
func (d *Domain) admissionGate() *admission.Gate {
	d.repMu.Lock()
	defer d.repMu.Unlock()
	return d.Admission
}

func (d *Domain) autoscaler() *autoscale.Autoscaler {
	d.repMu.Lock()
	defer d.repMu.Unlock()
	return d.Autoscaler
}

// observeIncidents builds the per-pass Observation from state the
// sampler already computed plus the cumulative counters, and feeds the
// engine. Called at the end of every sampling pass, after repMu is
// released.
func (d *Domain) observeIncidents(now time.Time, rep capacity.Report, worstBurn float64, violations, devicesDown int) {
	if d.Incidents == nil {
		return
	}
	obs := incident.Observation{
		Now:               now,
		WorstBurn:         worstBurn,
		SLOViolations:     violations,
		SpaceState:        rep.Space,
		SpaceHeadroom:     rep.SpaceHeadroom,
		DevicesDown:       devicesDown,
		FaultsTotal:       d.Metrics.Counter(metrics.FaultsInjected).Value(),
		Recovered:         d.Metrics.Counter(metrics.SessionsRecovered).Value(),
		Restored:          d.Metrics.Counter(metrics.SessionsRestored).Value(),
		ActiveSessions:    d.Configurator.Sessions(),
		WorstAvailability: 1,
	}
	if g := d.admissionGate(); g != nil {
		st := g.Status()
		for _, cc := range st.Classes {
			obs.AdmissionRejects += cc.Rejected
			obs.AdmissionDegrades += cc.Degraded
		}
	}
	if a := d.autoscaler(); a != nil {
		st := a.Status()
		for _, gr := range st.Groups {
			obs.ScaleUps += gr.Ups
			obs.ScaleDowns += gr.Downs
		}
	}
	for _, sc := range d.Ledger.Scorecards(0) {
		if sc.Sessions == 0 {
			continue
		}
		if sc.Availability < obs.WorstAvailability {
			obs.WorstAvailability = sc.Availability
			obs.WorstAvailClass = sc.Class
		}
	}
	d.Incidents.Observe(obs)
}
