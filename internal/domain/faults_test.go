package domain

import (
	"testing"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
)

func TestFailAndRejoinDevicePublishOnly(t *testing.T) {
	d := newSpace(t)
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "pda1",
		UserQoS: qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44)))}); err != nil {
		t.Fatal(err)
	}
	defer d.StopApp("a1")
	serverDev := d.Configurator.Session("a1").Placement["server"]

	sub, err := d.Bus.Subscribe(eventbus.TopicDeviceLeft, eventbus.TopicDeviceJoined)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FailDevice(serverDev); err != nil {
		t.Fatal(err)
	}
	if d.Devices.Get(serverDev).Up() {
		t.Error("device still up after FailDevice")
	}
	ev := <-sub.C()
	if ev.Topic != eventbus.TopicDeviceLeft || ev.Payload.(string) != string(serverDev) {
		t.Errorf("event = %+v", ev)
	}
	// Unlike RemoveDevice, FailDevice must NOT reconfigure inline — that is
	// the supervisor's job.
	if got := d.Configurator.Session("a1").Placement["server"]; got != serverDev {
		t.Errorf("FailDevice moved the server to %s", got)
	}

	if err := d.RejoinDevice(serverDev); err != nil {
		t.Fatal(err)
	}
	if !d.Devices.Get(serverDev).Up() {
		t.Error("device still down after RejoinDevice")
	}
	ev = <-sub.C()
	if ev.Topic != eventbus.TopicDeviceJoined || ev.Payload.(string) != string(serverDev) {
		t.Errorf("event = %+v", ev)
	}

	if err := d.FailDevice("ghost"); err == nil {
		t.Error("unknown device should fail")
	}
	if err := d.RejoinDevice("ghost"); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestDegradeAndRestoreLink(t *testing.T) {
	d := newSpace(t)
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "pda1",
		UserQoS: qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44)))}); err != nil {
		t.Fatal(err)
	}
	defer d.StopApp("a1")
	// The PDA needs a transcoder, so the component feeding it may sit on
	// either desktop — find the device whose link to the portal actually
	// carries a reservation.
	var serverDev device.ID
	for _, dev := range d.Configurator.Session("a1").Placement {
		if dev != "pda1" && d.Links.Reserved(dev, "pda1") > 0 {
			serverDev = dev
			break
		}
	}
	if serverDev == "" {
		t.Fatal("no reserved link into the portal device")
	}

	sub, err := d.Bus.Subscribe(eventbus.TopicResourceChanged)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := d.DegradeLink(serverDev, "pda1", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if prev.BandwidthMbps != netsim.WLAN.BandwidthMbps {
		t.Errorf("previous link = %+v, want the WLAN", prev)
	}
	got := d.Net.BandwidthMbps(string(serverDev), "pda1")
	if want := netsim.WLAN.BandwidthMbps * 0.1; got != want {
		t.Errorf("netsim bandwidth = %g, want %g", got, want)
	}
	if cap := d.Links.Capacity(serverDev, "pda1"); cap != netsim.WLAN.BandwidthMbps*0.1 {
		t.Errorf("link table capacity = %g", cap)
	}
	// The session reserved 1.5 Mbps on this link; 0.5 Mbps of capacity
	// leaves it overcommitted — the supervisor's trigger condition.
	if res := d.Links.Reserved(serverDev, "pda1"); res <= d.Links.Capacity(serverDev, "pda1") {
		t.Errorf("reserved %g <= capacity %g: degradation did not overcommit", res, d.Links.Capacity(serverDev, "pda1"))
	}
	ev := <-sub.C()
	lc, ok := ev.Payload.(LinkChanged)
	if ev.Topic != eventbus.TopicResourceChanged || !ok || lc.B != "pda1" {
		t.Errorf("event = %+v", ev)
	}

	if err := d.RestoreLink(serverDev, "pda1", prev); err != nil {
		t.Fatal(err)
	}
	if got := d.Links.Capacity(serverDev, "pda1"); got != netsim.WLAN.BandwidthMbps {
		t.Errorf("capacity after restore = %g", got)
	}
	if res := d.Links.Reserved(serverDev, "pda1"); res > d.Links.Capacity(serverDev, "pda1") {
		t.Error("still overcommitted after restore")
	}

	if _, err := d.DegradeLink("ghost", "pda1", 0.5); err == nil {
		t.Error("unknown link should fail")
	}
	if _, err := d.DegradeLink(serverDev, "pda1", 0); err == nil {
		t.Error("factor 0 should fail")
	}
}

func TestRemoveDeviceNotifiesOnPortalLost(t *testing.T) {
	d := newSpace(t)
	sub, err := d.Bus.Subscribe(eventbus.TopicUserNotification)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	defer d.StopApp("a1")
	if _, err := d.RemoveDevice("desktop1"); err == nil {
		t.Fatal("portal loss should report an error")
	}
	select {
	case ev := <-sub.C():
		notice, ok := ev.Payload.(core.SessionLostNotice)
		if !ok {
			t.Fatalf("payload = %T", ev.Payload)
		}
		if notice.SessionID != "a1" || notice.Device != "desktop1" {
			t.Errorf("notice = %+v", notice)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no user notification for the stranded session")
	}
}
