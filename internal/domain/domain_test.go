package domain

import (
	"strings"
	"testing"
	"time"

	"ubiqos/internal/composer"
	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/resource"
)

const testScale = 0.01

// newSpace builds a domain resembling the paper's lab: two desktops and a
// PDA, an audio server, players, and a transcoder.
func newSpace(t *testing.T) *Domain {
	t.Helper()
	d, err := New("lab", Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	// Raw capacities: the desktop's CPU is normalized ×5, the PDA's ×0.4.
	if _, err := d.AddDevice("desktop1", device.ClassDesktop, resource.MB(256, 100), map[string]string{"platform": "pc"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddDevice("desktop2", device.ClassDesktop, resource.MB(256, 100), map[string]string{"platform": "pc"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddDevice("pda1", device.ClassPDA, resource.MB(32, 100), map[string]string{"platform": "pda"}); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]device.ID{{"desktop1", "desktop2"}} {
		if err := d.Connect(pair[0], pair[1], netsim.Ethernet); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]device.ID{{"desktop1", "pda1"}, {"desktop2", "pda1"}} {
		if err := d.Connect(pair[0], pair[1], netsim.WLAN); err != nil {
			t.Fatal(err)
		}
	}
	for _, dev := range []device.ID{"desktop1", "desktop2", "pda1"} {
		link := netsim.Ethernet
		if dev == "pda1" {
			link = netsim.WLAN
		}
		if err := d.ConnectServer(dev, link); err != nil {
			t.Fatal(err)
		}
	}

	d.Registry.MustRegister(&registry.Instance{
		Name:          "audio-server-1",
		Type:          "audio-server",
		Output:        qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Scalar(40))),
		OutCapability: qos.V(qos.P(qos.DimFrameRate, qos.Range(5, 60))),
		Adjustable:    map[string]bool{qos.DimFrameRate: true},
		Resources:     resource.MB(64, 50),
		SizeMB:        2,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "mp3-player-1",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pc"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Range(10, 50))),
		Resources: resource.MB(16, 30),
		SizeMB:    1,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "wav-player-1",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pda"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatWAV)), qos.P(qos.DimFrameRate, qos.Range(10, 44))),
		Resources: resource.MB(8, 10),
		SizeMB:    1,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:        "mp32wav-1",
		Type:        composer.TypeTranscoder,
		Attrs:       map[string]string{"from": qos.FormatMP3, "to": qos.FormatWAV},
		Input:       qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3))),
		Output:      qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatWAV))),
		PassThrough: map[string]bool{qos.DimFrameRate: true},
		Resources:   resource.MB(12, 25),
		SizeMB:      1.5,
	})
	for _, name := range []string{"audio-server-1", "mp3-player-1", "wav-player-1", "mp32wav-1"} {
		// Pre-install everywhere: domain tests focus on orchestration, not
		// download timing.
		for _, dev := range []string{"desktop1", "desktop2", "pda1"} {
			d.Repo.MarkInstalled(dev, name)
		}
	}
	return d
}

func audioApp() *composer.AbstractGraph {
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "server", Spec: registry.Spec{Type: "audio-server"}})
	ag.MustAddNode(&composer.AbstractNode{ID: "player", Spec: registry.Spec{Type: "audio-player"}, Pin: core.ClientRole})
	ag.MustAddEdge("server", "player", 1.5)
	return ag
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", Options{}); err == nil {
		t.Error("empty name should fail")
	}
	d, err := New("x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
}

func TestAddDeviceNormalizes(t *testing.T) {
	d := newSpace(t)
	dsk := d.Devices.Get("desktop1")
	if !dsk.Capacity().Equal(resource.MB(256, 500)) {
		t.Errorf("desktop normalized capacity = %v, want [256MB, 500%%]", dsk.Capacity())
	}
	pda := d.Devices.Get("pda1")
	if !pda.Capacity().Equal(resource.MB(32, 40)) {
		t.Errorf("pda normalized capacity = %v, want [32MB, 40%%]", pda.Capacity())
	}
}

func TestStartStopAppAndEvents(t *testing.T) {
	d := newSpace(t)
	sub, err := d.Bus.Subscribe(eventbus.TopicSessionStarted, eventbus.TopicSessionStopped)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	ev := <-sub.C()
	if ev.Topic != eventbus.TopicSessionStarted || ev.Payload.(string) != "a1" {
		t.Errorf("event = %+v", ev)
	}
	if err := d.StopApp("a1"); err != nil {
		t.Fatal(err)
	}
	ev = <-sub.C()
	if ev.Topic != eventbus.TopicSessionStopped {
		t.Errorf("event = %+v", ev)
	}
	if err := d.StopApp("ghost"); err == nil {
		t.Error("stopping unknown app should fail")
	}
}

func TestSwitchDeviceInsertsTranscoder(t *testing.T) {
	d := newSpace(t)
	if _, err := d.StartApp(core.Request{
		SessionID:    "a1",
		App:          audioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "desktop1",
	}); err != nil {
		t.Fatal(err)
	}
	defer d.StopApp("a1")
	time.Sleep(time.Duration(float64(time.Second) * testScale))

	active, err := d.SwitchDevice("a1", "pda1")
	if err != nil {
		t.Fatal(err)
	}
	if len(active.Report.Transcoders) != 1 {
		t.Errorf("transcoders = %v", active.Report.Transcoders)
	}
	if active.Placement["player"] != "pda1" {
		t.Errorf("player on %v", active.Placement["player"])
	}
	// Switch back (event 3 of the paper's scenario).
	active, err = d.SwitchDevice("a1", "desktop2")
	if err != nil {
		t.Fatal(err)
	}
	if active.Placement["player"] != "desktop2" {
		t.Errorf("player on %v after switch back", active.Placement["player"])
	}
	if len(active.Report.Transcoders) != 0 {
		t.Error("no transcoder needed on the desktop")
	}
	if _, err := d.SwitchDevice("ghost", "pda1"); err == nil {
		t.Error("unknown session should fail")
	}
	if _, err := d.SwitchDevice("a1", "ghost"); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestRemoveDeviceReconfiguresSessions(t *testing.T) {
	d := newSpace(t)
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "pda1",
		UserQoS: qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44)))}); err != nil {
		t.Fatal(err)
	}
	defer d.StopApp("a1")
	before := d.Configurator.Session("a1")
	serverDev := before.Placement["server"]
	if serverDev == "pda1" {
		t.Fatal("server unexpectedly on the PDA")
	}
	moved, err := d.RemoveDevice(serverDev)
	if err != nil {
		t.Fatalf("RemoveDevice: %v", err)
	}
	if len(moved) != 1 || moved[0] != "a1" {
		t.Errorf("moved = %v", moved)
	}
	after := d.Configurator.Session("a1")
	if after.Placement["server"] == serverDev {
		t.Error("server still on the crashed device")
	}
	if _, err := d.RemoveDevice("ghost"); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestRemoveDevicePortalLost(t *testing.T) {
	d := newSpace(t)
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	defer d.StopApp("a1")
	_, err := d.RemoveDevice("desktop1")
	if err == nil || !strings.Contains(err.Error(), "portal") {
		t.Errorf("err = %v, want portal-lost", err)
	}
}

func TestHierarchyFederatedDiscovery(t *testing.T) {
	parent := MustNew("campus", Options{Scale: testScale})
	t.Cleanup(parent.Close)
	child := newSpace(t)
	// Remove the server instance from the child; only the campus has it.
	child.Registry.Unregister("audio-server-1")
	parent.Registry.MustRegister(&registry.Instance{
		Name:      "audio-server-1",
		Type:      "audio-server",
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Scalar(40))),
		Resources: resource.MB(64, 50),
	})
	if err := parent.AddChild(child); err != nil {
		t.Fatal(err)
	}
	if child.Root() != parent || parent.Root() != parent {
		t.Error("Root mismatch")
	}
	if len(parent.Children()) != 1 {
		t.Error("Children mismatch")
	}
	// Discovery escalates to the parent and composition succeeds.
	if _, err := child.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatalf("federated composition failed: %v", err)
	}
	defer child.StopApp("a1")

	// Hierarchy invariants.
	if err := parent.AddChild(child); err == nil {
		t.Error("re-parenting should fail")
	}
	if err := parent.AddChild(parent); err == nil {
		t.Error("self-parenting should fail")
	}
	if err := parent.AddChild(nil); err == nil {
		t.Error("nil child should fail")
	}
}

func TestConnectValidation(t *testing.T) {
	d := newSpace(t)
	if err := d.Connect("a", "a", netsim.Ethernet); err == nil {
		t.Error("self link should fail")
	}
	if err := d.Connect("x", "y", netsim.Link{}); err == nil {
		t.Error("invalid link should fail")
	}
}

func TestAddDeviceValidation(t *testing.T) {
	d := newSpace(t)
	if _, err := d.AddDevice("bad", device.ClassPDA, resource.Vector{1}, nil); err == nil {
		t.Error("wrong dimension capacity should fail")
	}
	if _, err := d.AddDevice("desktop1", device.ClassDesktop, resource.MB(1, 1), nil); err == nil {
		t.Error("duplicate device should fail")
	}
}

func TestDomainRecordsMetrics(t *testing.T) {
	d := newSpace(t)
	if _, err := d.StartApp(core.Request{SessionID: "m1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SwitchDevice("m1", "desktop2"); err != nil {
		t.Fatal(err)
	}
	if err := d.StopApp("m1"); err != nil {
		t.Fatal(err)
	}
	// A failing configuration also counts.
	if _, err := d.StartApp(core.Request{SessionID: "m2", App: audioApp(), ClientDevice: "ghost"}); err == nil {
		t.Fatal("start on unknown portal should fail discovery or distribution")
	}

	snap := d.Metrics.Snapshot()
	for _, want := range []string{
		"configs_total 3", // start + handoff + failed start
		"configs_failed 1",
		"handoffs_total 1",
		"active_sessions 0",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, snap)
		}
	}
	if !strings.Contains(snap, "composition_time_seconds_count 2") {
		t.Errorf("composition histogram:\n%s", snap)
	}
}

func TestResizeDeviceTriggersRedistribution(t *testing.T) {
	d := newSpace(t)
	// Force the server onto desktop2 (client pins the player to desktop1)
	// by exhausting desktop2's rival: actually just start normally and
	// find where the server landed.
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "pda1",
		UserQoS: qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44)))}); err != nil {
		t.Fatal(err)
	}
	defer d.StopApp("a1")
	serverDev := d.Configurator.Session("a1").Placement["server"]
	if serverDev == "pda1" {
		t.Fatal("server unexpectedly on the PDA")
	}

	// The hosting desktop suddenly loses almost all its capacity (raw
	// 8MB / 2% -> normalized [8MB, 10%]): the 64MB server no longer fits
	// and must be redistributed.
	moved, err := d.ResizeDevice(serverDev, resource.MB(8, 2))
	if err != nil {
		t.Fatalf("ResizeDevice: %v", err)
	}
	if len(moved) != 1 || moved[0] != "a1" {
		t.Errorf("moved = %v", moved)
	}
	after := d.Configurator.Session("a1").Placement["server"]
	if after == serverDev {
		t.Error("server still on the shrunken device")
	}
	// The shrunken device is no longer overcommitted.
	dev := d.Devices.Get(serverDev)
	if !dev.Committed().LessEq(dev.Capacity()) {
		t.Errorf("still overcommitted: %v > %v", dev.Committed(), dev.Capacity())
	}
}

func TestResizeDeviceNoActionWhenStillFits(t *testing.T) {
	d := newSpace(t)
	if _, err := d.StartApp(core.Request{SessionID: "a1", App: audioApp(), ClientDevice: "desktop1"}); err != nil {
		t.Fatal(err)
	}
	defer d.StopApp("a1")
	sub, err := d.Bus.Subscribe(eventbus.TopicResourceChanged)
	if err != nil {
		t.Fatal(err)
	}
	// A mild shrink that still holds everything: no redistribution.
	moved, err := d.ResizeDevice("desktop1", resource.MB(200, 90))
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Errorf("moved = %v, want none", moved)
	}
	select {
	case ev := <-sub.C():
		if ev.Topic != eventbus.TopicResourceChanged {
			t.Errorf("event = %v", ev.Topic)
		}
	default:
		t.Error("resource-changed event not published")
	}
	if _, err := d.ResizeDevice("ghost", resource.MB(1, 1)); err == nil {
		t.Error("unknown device should fail")
	}
	if _, err := d.ResizeDevice("desktop1", resource.Vector{1}); err == nil {
		t.Error("bad dimensions should fail")
	}
}

func TestMissingServiceNotifiesUser(t *testing.T) {
	d := newSpace(t)
	sub, err := d.Bus.Subscribe(eventbus.TopicUserNotification)
	if err != nil {
		t.Fatal(err)
	}
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "x", Spec: registry.Spec{Type: "hologram"}})
	if _, err := d.StartApp(core.Request{SessionID: "h1", App: ag, ClientDevice: "desktop1"}); err == nil {
		t.Fatal("missing service must fail the start")
	}
	select {
	case ev := <-sub.C():
		notice, ok := ev.Payload.(MissingServiceNotice)
		if !ok {
			t.Fatalf("payload = %T", ev.Payload)
		}
		if notice.SessionID != "h1" || len(notice.Types) != 1 || notice.Types[0] != "hologram" {
			t.Errorf("notice = %+v", notice)
		}
	default:
		t.Error("no user notification published")
	}
}
