package incident

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

const timeFmt = "15:04:05.000"

// fmtDur renders a duration compactly for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0s"
	case d < time.Second:
		return d.Round(time.Millisecond).String()
	case d < time.Minute:
		return d.Round(10 * time.Millisecond).String()
	default:
		return d.Round(time.Second).String()
	}
}

// age is an incident's open→resolve (or open→now-unknowable, so
// open→last-signal isn't used; unresolved incidents render "open").
func (inc Incident) age() string {
	if inc.ResolvedAt.IsZero() {
		return "-"
	}
	return fmtDur(inc.ResolvedAt.Sub(inc.OpenedAt))
}

// Render formats an incident list as a fixed-width table, one line per
// incident, newest first (the order List returns).
func Render(list []Incident) string {
	if len(list) == 0 {
		return "no incidents recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %-10s %-18s %-12s %-9s %s\n",
		"ID", "SEV", "STATE", "RULE", "OPENED", "DURATION", "TITLE")
	for _, inc := range list {
		fmt.Fprintf(&b, "%-8s %-8s %-10s %-18s %-12s %-9s %s\n",
			inc.ID, inc.SeverityStr, inc.State, inc.Rule,
			inc.OpenedAt.Format(timeFmt), inc.age(), inc.Title)
	}
	return b.String()
}

// RenderIncident formats one incident as operator text: header,
// timeline, evidence summary, impact, resolution.
func RenderIncident(inc Incident) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s/%s] %s\n", inc.ID, inc.SeverityStr, inc.State, inc.Title)
	fmt.Fprintf(&b, "  rule %s (source %s); signal open=%.2f peak=%.2f last=%.2f\n",
		inc.Rule, inc.Source, inc.OpenSignal, inc.PeakSignal, inc.LastSignal)
	fmt.Fprintf(&b, "  timeline:\n")
	for _, tr := range inc.Timeline {
		fmt.Fprintf(&b, "    %s %-10s %s\n", tr.Time.Format(timeFmt), tr.State, tr.Note)
	}
	if ev := inc.Evidence; ev != nil {
		fmt.Fprintf(&b, "  evidence (window %s .. %s):\n",
			ev.From.Format(timeFmt), ev.To.Format(timeFmt))
		fmt.Fprintf(&b, "    sources: %s\n", strings.Join(ev.Sources, ", "))
		if ev.Saturation != nil {
			fmt.Fprintf(&b, "    saturation: space %s, headroom %.2f, queue %d\n",
				ev.Saturation.SpaceStr, ev.Saturation.SpaceHeadroom, ev.Saturation.QueueDepth)
		}
		for _, s := range ev.Series {
			lo, hi := seriesRange(s)
			fmt.Fprintf(&b, "    series %s: %d samples, min %.2f, max %.2f\n",
				s.Metric, len(s.Samples), lo, hi)
		}
		for _, fx := range ev.Sessions {
			fmt.Fprintf(&b, "    flight %s: %d entries\n", fx.Session, len(fx.Entries))
		}
		if len(ev.TraceIDs) > 0 {
			fmt.Fprintf(&b, "    traces: %s\n", strings.Join(ev.TraceIDs, ", "))
		}
	}
	if im := inc.Impact; im != nil {
		fmt.Fprintf(&b, "  impact: %d session(s), %.2fs long, broken %.2fs, degraded %.2fs, deficit %.2fs\n",
			im.SessionsAffected, im.DurationSec, im.BrokenSec, im.DegradedSec, im.TotalDeficitSec)
	}
	if inc.ResolutionCause != "" {
		fmt.Fprintf(&b, "  resolution: %s\n", inc.ResolutionCause)
	}
	return b.String()
}

// seriesRange returns a series excerpt's min and max values.
func seriesRange(s SeriesExcerpt) (lo, hi float64) {
	for i, sm := range s.Samples {
		if i == 0 || sm.V < lo {
			lo = sm.V
		}
		if i == 0 || sm.V > hi {
			hi = sm.V
		}
	}
	return lo, hi
}

// Postmortem renders an incident as a shareable markdown document:
// summary, timeline, evidence, impact, and resolution sections.
func Postmortem(inc Incident) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Postmortem %s — %s\n\n", inc.ID, inc.Title)
	fmt.Fprintf(&b, "| | |\n|---|---|\n")
	fmt.Fprintf(&b, "| Rule | `%s` (source `%s`) |\n", inc.Rule, inc.Source)
	fmt.Fprintf(&b, "| Severity | %s |\n", inc.SeverityStr)
	fmt.Fprintf(&b, "| State | %s |\n", inc.State)
	fmt.Fprintf(&b, "| Opened | %s |\n", inc.OpenedAt.Format(time.RFC3339Nano))
	if !inc.MitigatingAt.IsZero() {
		fmt.Fprintf(&b, "| Mitigating | %s |\n", inc.MitigatingAt.Format(time.RFC3339Nano))
	}
	if !inc.ResolvedAt.IsZero() {
		fmt.Fprintf(&b, "| Resolved | %s (after %s) |\n",
			inc.ResolvedAt.Format(time.RFC3339Nano), fmtDur(inc.ResolvedAt.Sub(inc.OpenedAt)))
	}
	fmt.Fprintf(&b, "| Signal | open %.2f, peak %.2f, last %.2f |\n\n", inc.OpenSignal, inc.PeakSignal, inc.LastSignal)

	fmt.Fprintf(&b, "## Timeline\n\n")
	for _, tr := range inc.Timeline {
		fmt.Fprintf(&b, "- **%s** `%s` — %s\n", tr.Time.Format(timeFmt), tr.State, tr.Note)
	}
	b.WriteString("\n")

	if ev := inc.Evidence; ev != nil {
		fmt.Fprintf(&b, "## Evidence\n\n")
		fmt.Fprintf(&b, "Signal sources correlated at onset: **%s** (window %s → %s).\n\n",
			strings.Join(ev.Sources, ", "), ev.From.Format(timeFmt), ev.To.Format(timeFmt))
		if ev.Saturation != nil {
			fmt.Fprintf(&b, "- Saturation: space **%s**, headroom %.2f, queue depth %d, %d SLO violation(s)\n",
				ev.Saturation.SpaceStr, ev.Saturation.SpaceHeadroom, ev.Saturation.QueueDepth, ev.Saturation.SLOViolations)
			for _, dev := range ev.Saturation.Devices {
				if !dev.Up {
					fmt.Fprintf(&b, "  - device `%s` **down**\n", dev.ID)
				}
			}
		}
		for _, st := range ev.SLO {
			if st.State == "ok" || st.State == "no-data" {
				continue
			}
			fmt.Fprintf(&b, "- SLO `%s` **%s**: actual %.3f vs target %.3f (burn %.2f)\n",
				st.Name, st.State, st.Actual, st.Target, st.BurnRate)
		}
		for _, s := range ev.Series {
			lo, hi := seriesRange(s)
			fmt.Fprintf(&b, "- Series `%s`: %d samples in window, min %.2f, max %.2f\n",
				s.Metric, len(s.Samples), lo, hi)
		}
		if ev.Admission != nil {
			fmt.Fprintf(&b, "- Admission gate: state **%s**, burn %.2f\n", ev.Admission.StateStr, ev.Admission.SLOBurn)
			for _, cc := range ev.Admission.Classes {
				fmt.Fprintf(&b, "  - class `%s`: admitted %d, degraded %d, rejected %d\n",
					cc.Class, cc.Admitted, cc.Degraded, cc.Rejected)
			}
		}
		if ev.Autoscale != nil {
			for _, g := range ev.Autoscale.Groups {
				fmt.Fprintf(&b, "- Autoscale group `%s`: replicas %d (desired %d), ups %d, downs %d\n",
					g.Name, g.Replicas, g.Desired, g.Ups, g.Downs)
			}
		}
		if len(ev.Sessions) > 0 {
			fmt.Fprintf(&b, "\n### Flight-recorder excerpts\n\n")
			for _, fx := range ev.Sessions {
				fmt.Fprintf(&b, "**%s** (%d entries):\n\n```\n", fx.Session, len(fx.Entries))
				for _, en := range fx.Entries {
					b.WriteString(en.Format())
					b.WriteString("\n")
				}
				b.WriteString("```\n\n")
			}
		}
		if len(ev.TraceIDs) > 0 {
			fmt.Fprintf(&b, "Trace IDs in window: `%s`\n\n", strings.Join(ev.TraceIDs, "`, `"))
		}
	}

	if im := inc.Impact; im != nil {
		fmt.Fprintf(&b, "## Impact\n\n")
		fmt.Fprintf(&b, "- Sessions affected: **%d**\n", im.SessionsAffected)
		fmt.Fprintf(&b, "- Duration: **%.2fs**\n", im.DurationSec)
		fmt.Fprintf(&b, "- Broken time accrued: %.2fs; degraded time accrued: %.2fs\n", im.BrokenSec, im.DegradedSec)
		fmt.Fprintf(&b, "- QoS deficit accrued: **%.2fs** total", im.TotalDeficitSec)
		if len(im.DeficitSec) > 0 {
			axes := make([]string, 0, len(im.DeficitSec))
			for axis := range im.DeficitSec {
				axes = append(axes, axis)
			}
			sort.Strings(axes)
			parts := make([]string, 0, len(axes))
			for _, axis := range axes {
				parts = append(parts, fmt.Sprintf("%s %.2fs", axis, im.DeficitSec[axis]))
			}
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
		}
		b.WriteString("\n")
		if len(im.ClassAvailability) > 0 {
			classes := make([]string, 0, len(im.ClassAvailability))
			for cl := range im.ClassAvailability {
				classes = append(classes, cl)
			}
			sort.Strings(classes)
			for _, cl := range classes {
				fmt.Fprintf(&b, "- Availability `%s`: %.3f\n", cl, im.ClassAvailability[cl])
			}
		}
		b.WriteString("\n")
	}

	fmt.Fprintf(&b, "## Resolution\n\n")
	switch {
	case inc.ResolutionCause != "":
		fmt.Fprintf(&b, "%s.\n", strings.TrimSuffix(inc.ResolutionCause, "."))
	default:
		fmt.Fprintf(&b, "Unresolved: the `%s` signal has not cleared yet.\n", inc.Rule)
	}
	if len(inc.MitigatedBy) > 0 {
		fmt.Fprintf(&b, "Mitigated by: %s.\n", strings.Join(inc.MitigatedBy, ", "))
	}
	return b.String()
}
