// Package incident implements the domain's incident correlation
// engine: a small rule set watches the health signals the daemon
// already produces — SLO burn rates (internal/metrics), saturation
// verdicts (internal/capacity), fault storms and device churn
// (internal/faultinject via the counters they bump), admission
// reject/degrade pressure (internal/admission), autoscaler actions
// (internal/autoscale), and per-class availability from the outcome
// ledger (internal/ledger) — and fuses them into operator-grade
// incidents with a lifecycle (open → mitigating → resolved), a
// correlated evidence bundle captured at onset, and ledger-based
// impact accounting attached at resolution.
//
// Detectors use hysteresis like the capacity Analyzer: a rule's signal
// must sit at or above its open threshold for a minimum dwell before an
// incident opens, and below its (lower) close threshold for a minimum
// dwell before it resolves, so a signal oscillating around the
// threshold opens at most one incident. Rate-style signals are
// EWMA-smoothed first.
//
// Like the rest of the observability stack the engine is nil-safe:
// every method on a nil *Engine is a no-op.
package incident

import (
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/autoscale"
	"ubiqos/internal/capacity"
	"ubiqos/internal/flight"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
)

// Severity ranks an incident. While an incident is open its severity
// may escalate (warning → critical) but never de-escalate; the peak is
// what the postmortem reports.
type Severity int

const (
	SevNone Severity = iota
	SevWarning
	SevCritical
)

// String returns "none", "warning", or "critical".
func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	default:
		return "none"
	}
}

// State is an incident's lifecycle phase.
type State string

const (
	// StateOpen: the rule's signal crossed its open threshold and held
	// for the dwell; evidence has been captured.
	StateOpen State = "open"
	// StateMitigating: a mitigation actor (recovery supervisor,
	// autoscaler) acted while the incident was open.
	StateMitigating State = "mitigating"
	// StateResolved: the signal cleared below the close threshold for
	// the close dwell; impact accounting is attached.
	StateResolved State = "resolved"
)

// Transition is one timeline step of an incident's lifecycle.
type Transition struct {
	Time  time.Time `json:"time"`
	State State     `json:"state"`
	Note  string    `json:"note,omitempty"`
}

// SeriesExcerpt is a bounded slice of one capacity time series around
// the incident's onset window.
type SeriesExcerpt struct {
	Metric  string            `json:"metric"`
	Samples []capacity.Sample `json:"samples"`
}

// FlightExcerpt is a bounded slice of one session's flight-recorder
// timeline inside the evidence window.
type FlightExcerpt struct {
	Session string         `json:"session"`
	Entries []flight.Entry `json:"entries"`
}

// Evidence is the correlated bundle captured when an incident opens:
// everything an operator would otherwise stitch together from /slo,
// /saturation, /timeseries, /flight, /admission, and /scorecard by
// hand, frozen at onset.
type Evidence struct {
	// From / To bound the lookback window the excerpts cover.
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
	// Sources names the distinct signal families that were abnormal at
	// onset: "slo", "saturation", "faults", "admission", "autoscale",
	// "ledger", "flight".
	Sources []string `json:"sources"`
	// Saturation is the analyzer's full report at onset (device table,
	// link residuals, queue depth, space verdict).
	Saturation *capacity.Report `json:"saturation,omitempty"`
	// SLO carries every objective's status at onset.
	SLO []metrics.Status `json:"slo,omitempty"`
	// Series holds capacity ring excerpts around the onset.
	Series []SeriesExcerpt `json:"series,omitempty"`
	// Sessions samples affected sessions' flight-recorder entries
	// inside the window, and TraceIDs collects the distinct trace IDs
	// seen in them.
	Sessions []FlightExcerpt `json:"sessions,omitempty"`
	TraceIDs []string        `json:"traceIds,omitempty"`
	// Admission / Autoscale snapshot the gate and the autoscaler
	// (per-class admit/degrade/reject counts, group replica state).
	Admission *admission.Status `json:"admission,omitempty"`
	Autoscale *autoscale.Status `json:"autoscale,omitempty"`
	// Scorecards is the ledger's per-class accounting at onset — also
	// the baseline the resolution-time impact diff subtracts from.
	Scorecards []ledger.Scorecard `json:"scorecards,omitempty"`
}

// Impact is the ledger-derived damage accounting attached when an
// incident resolves: what accrued between open and resolve.
type Impact struct {
	// SessionsAffected counts sessions with flight-recorder activity
	// during the incident.
	SessionsAffected int `json:"sessionsAffected"`
	// DurationSec is open→resolve in seconds.
	DurationSec float64 `json:"durationSec"`
	// BrokenSec / DegradedSec are space-wide broken and degraded time
	// accrued during the incident (summed over classes).
	BrokenSec   float64 `json:"brokenSec"`
	DegradedSec float64 `json:"degradedSec"`
	// DeficitSec is the per-axis QoS-deficit integral accrued during
	// the incident; TotalDeficitSec sums it over axes.
	DeficitSec      map[string]float64 `json:"deficitSec,omitempty"`
	TotalDeficitSec float64            `json:"totalDeficitSec"`
	// ClassAvailability is each class's availability at resolve time.
	ClassAvailability map[string]float64 `json:"classAvailability,omitempty"`
}

// Incident is one correlated incident. Snapshots returned by
// Engine.List / Engine.Get are safe to retain; Evidence and Impact are
// write-once and shared.
type Incident struct {
	// ID is "INC-<n>", unique within the engine's lifetime.
	ID string `json:"id"`
	// Rule / Source name the detection rule and its signal family.
	Rule   string `json:"rule"`
	Source string `json:"source"`
	// Title is a one-line operator summary composed at open time.
	Title       string   `json:"title"`
	Severity    Severity `json:"severity"`
	SeverityStr string   `json:"severityStr"`
	State       State    `json:"state"`
	// OpenedAt / MitigatingAt / ResolvedAt stamp the lifecycle
	// (MitigatingAt and ResolvedAt are zero until reached).
	OpenedAt     time.Time `json:"openedAt"`
	MitigatingAt time.Time `json:"mitigatingAt"`
	ResolvedAt   time.Time `json:"resolvedAt"`
	// ResolutionCause explains why the incident closed, crediting the
	// mitigation actors that acted while it was open.
	ResolutionCause string   `json:"resolutionCause,omitempty"`
	MitigatedBy     []string `json:"mitigatedBy,omitempty"`
	// OpenSignal / PeakSignal / LastSignal track the (smoothed) rule
	// signal at open, at its worst, and at the last observation.
	OpenSignal float64 `json:"openSignal"`
	PeakSignal float64 `json:"peakSignal"`
	LastSignal float64 `json:"lastSignal"`
	// Timeline records every lifecycle transition with a note.
	Timeline []Transition `json:"timeline"`
	Evidence *Evidence    `json:"evidence,omitempty"`
	Impact   *Impact      `json:"impact,omitempty"`

	// Resolution-time impact baselines, snapshotted from the ledger at
	// open so the diff covers only what accrued during the incident.
	openDeficits map[string]float64
	openBroken   float64
	openDegraded float64
}
