package incident

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ubiqos/internal/capacity"
	"ubiqos/internal/flight"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
)

var testBase = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// obsAt is a benign observation at step i (one per second).
func obsAt(i int) Observation {
	return Observation{
		Now:               testBase.Add(time.Duration(i) * time.Second),
		WorstAvailability: 1,
	}
}

func burnOnlyRules() []RuleConfig {
	for _, r := range DefaultRules() {
		if r.Name == RuleSLOBurn {
			return []RuleConfig{r}
		}
	}
	return nil
}

func faultOnlyRules() []RuleConfig {
	for _, r := range DefaultRules() {
		if r.Name == RuleFaultStorm {
			return []RuleConfig{r}
		}
	}
	return nil
}

// TestDetectorNoFlap drives a burn rate oscillating around the open
// threshold: hysteresis (EWMA + dwell + lower close threshold) must
// open at most one incident, and it must not flap closed/open.
func TestDetectorNoFlap(t *testing.T) {
	e := New(Options{Rules: burnOnlyRules()})
	for i := 0; i < 40; i++ {
		obs := obsAt(i)
		if i%2 == 0 {
			obs.WorstBurn = 1.4
		} else {
			obs.WorstBurn = 0.9
		}
		e.Observe(obs)
	}
	list := e.List()
	if len(list) != 1 {
		t.Fatalf("oscillating burn opened %d incidents, want exactly 1", len(list))
	}
	if list[0].State == StateResolved {
		t.Fatalf("incident resolved while signal still oscillates above close threshold")
	}

	// Sustained quiet clears it; a genuine second episode opens anew.
	for i := 40; i < 60; i++ {
		obs := obsAt(i)
		obs.WorstBurn = 0.1
		e.Observe(obs)
	}
	if got := e.List(); got[0].State != StateResolved {
		t.Fatalf("state after quiet = %s, want resolved", got[0].State)
	}
	for i := 60; i < 70; i++ {
		obs := obsAt(i)
		obs.WorstBurn = 2.5
		e.Observe(obs)
	}
	list = e.List()
	if len(list) != 2 {
		t.Fatalf("second episode: %d incidents, want 2", len(list))
	}
	if list[0].ID == list[1].ID {
		t.Fatalf("second episode reused incident ID %s", list[0].ID)
	}
}

// TestLifecycleAndImpact walks one incident through
// open → mitigating → resolved and checks the cause attribution and the
// ledger-baseline impact diff.
func TestLifecycleAndImpact(t *testing.T) {
	calls := 0
	src := Sources{
		Scorecards: func() []ledger.Scorecard {
			calls++
			if calls == 1 { // open-time baseline
				return []ledger.Scorecard{{
					Class: "voice", Sessions: 2, BrokenSec: 1, DegradedSec: 0.5,
					DeficitSec: map[string]float64{"framerate": 2}, Availability: 0.9,
				}}
			}
			return []ledger.Scorecard{{
				Class: "voice", Sessions: 2, BrokenSec: 3, DegradedSec: 1.5,
				DeficitSec: map[string]float64{"framerate": 5}, Availability: 0.95,
			}}
		},
		Sessions: func() []flight.SessionInfo {
			return []flight.SessionInfo{{Session: "voice-1", Last: testBase.Add(time.Hour)}}
		},
	}
	e := New(Options{Rules: faultOnlyRules(), Sources: src})

	e.Observe(obsAt(0)) // baseline for counter deltas

	obs := obsAt(1)
	obs.DevicesDown = 1
	obs.FaultsTotal = 2
	e.Observe(obs) // fault-storm has OpenDwell 1: opens here

	open, worst := e.Open()
	if open != 1 || worst != SevWarning {
		t.Fatalf("after open: open=%d worst=%s, want 1 warning", open, worst)
	}

	obs = obsAt(2)
	obs.DevicesDown = 1
	obs.FaultsTotal = 2
	obs.Recovered = 1 // recovery supervisor acted
	e.Observe(obs)
	inc := e.List()[0]
	if inc.State != StateMitigating {
		t.Fatalf("state after recovery delta = %s, want mitigating", inc.State)
	}
	if len(inc.MitigatedBy) != 1 || inc.MitigatedBy[0] != "recovery-supervisor" {
		t.Fatalf("mitigatedBy = %v", inc.MitigatedBy)
	}

	for i := 3; i < 10; i++ {
		obs := obsAt(i)
		obs.FaultsTotal = 2
		obs.Recovered = 1
		e.Observe(obs)
	}
	inc = e.List()[0]
	if inc.State != StateResolved {
		t.Fatalf("state after quiet = %s, want resolved", inc.State)
	}
	if !strings.Contains(inc.ResolutionCause, "recovery-supervisor") {
		t.Fatalf("resolution cause %q does not credit the mitigator", inc.ResolutionCause)
	}
	if inc.MitigatingAt.IsZero() || inc.ResolvedAt.IsZero() {
		t.Fatalf("lifecycle stamps missing: %+v", inc)
	}
	im := inc.Impact
	if im == nil {
		t.Fatal("resolved incident has no impact")
	}
	if im.BrokenSec != 2 || im.DegradedSec != 1 {
		t.Fatalf("broken/degraded diff = %.2f/%.2f, want 2/1", im.BrokenSec, im.DegradedSec)
	}
	if im.TotalDeficitSec != 3 || im.DeficitSec["framerate"] != 3 {
		t.Fatalf("deficit diff = %+v, want framerate 3", im.DeficitSec)
	}
	if im.SessionsAffected != 1 {
		t.Fatalf("sessionsAffected = %d, want 1", im.SessionsAffected)
	}
	if im.ClassAvailability["voice"] != 0.95 {
		t.Fatalf("classAvailability = %+v", im.ClassAvailability)
	}
	if tl := inc.Timeline; len(tl) < 3 || tl[0].State != StateOpen || tl[len(tl)-1].State != StateResolved {
		t.Fatalf("timeline = %+v", tl)
	}
}

// TestEvidenceBundle checks the bundle assembly: source citation,
// series/flight caps, trace-ID dedup.
func TestEvidenceBundle(t *testing.T) {
	entries := make([]flight.Entry, 30)
	for i := range entries {
		entries[i] = flight.Entry{
			Time: testBase.Add(time.Duration(i) * time.Millisecond), Kind: flight.KindLog,
			Session: "s1", TraceID: fmt.Sprintf("trace-%d", i%3), Message: fmt.Sprintf("e%d", i),
		}
	}
	samples := make([]capacity.Sample, 200)
	for i := range samples {
		samples[i] = capacity.Sample{T: testBase.Add(time.Duration(i) * time.Second), V: float64(i)}
	}
	src := Sources{
		Saturation: func() *capacity.Report {
			return &capacity.Report{SpaceStr: "ok", Devices: []capacity.DeviceStatus{{ID: "desktop1", Up: false}}}
		},
		SLO: func() []metrics.Status {
			return []metrics.Status{{Name: "configure-p95", State: metrics.StateViolated}}
		},
		Series:      func(metric string, window time.Duration) []capacity.Sample { return samples },
		SeriesNames: []string{metrics.SpaceHeadroom, metrics.SaturationState},
		Sessions: func() []flight.SessionInfo {
			return []flight.SessionInfo{
				{Session: "s1", Last: testBase}, {Session: "s2", Last: testBase},
				{Session: "s3", Last: testBase}, {Session: "s4", Last: testBase},
				{Session: "s5", Last: testBase}, {Session: "s6", Last: testBase},
			}
		},
		Excerpt: func(session string, from, to time.Time, max int) []flight.Entry {
			if len(entries) > max {
				return entries[len(entries)-max:]
			}
			return entries
		},
		Scorecards: func() []ledger.Scorecard {
			return []ledger.Scorecard{{Class: "voice", Sessions: 1, Availability: 0.8}}
		},
	}
	e := New(Options{Rules: faultOnlyRules(), Sources: src, MaxSessions: 2, MaxEntries: 8})
	e.Observe(obsAt(0))
	obs := obsAt(1)
	obs.DevicesDown = 1
	obs.FaultsTotal = 3
	obs.SLOViolations = 1
	obs.WorstBurn = 1.2
	obs.WorstAvailability = 0.8
	obs.WorstAvailClass = "voice"
	e.Observe(obs)

	inc := e.List()[0]
	ev := inc.Evidence
	if ev == nil {
		t.Fatal("no evidence bundle")
	}
	for _, want := range []string{"slo", "saturation", "faults", "ledger", "flight"} {
		found := false
		for _, s := range ev.Sources {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("sources %v missing %q", ev.Sources, want)
		}
	}
	if len(ev.Sources) < 3 {
		t.Fatalf("only %d sources cited", len(ev.Sources))
	}
	if len(ev.Series) != 2 {
		t.Fatalf("series excerpts = %d, want 2", len(ev.Series))
	}
	for _, s := range ev.Series {
		if len(s.Samples) != DefaultMaxSeriesSamples {
			t.Fatalf("series %s has %d samples, want cap %d", s.Metric, len(s.Samples), DefaultMaxSeriesSamples)
		}
	}
	if len(ev.Sessions) != 2 {
		t.Fatalf("flight excerpts = %d, want MaxSessions 2", len(ev.Sessions))
	}
	for _, fx := range ev.Sessions {
		if len(fx.Entries) != 8 {
			t.Fatalf("flight excerpt %s has %d entries, want MaxEntries 8", fx.Session, len(fx.Entries))
		}
	}
	if len(ev.TraceIDs) != 3 {
		t.Fatalf("traceIDs = %v, want 3 distinct", ev.TraceIDs)
	}
	if len(ev.Scorecards) != 1 || ev.SLO == nil || ev.Saturation == nil {
		t.Fatalf("bundle incomplete: %+v", ev)
	}

	// The rendered forms should cite the evidence too.
	pm := Postmortem(inc)
	for _, want := range []string{"# Postmortem INC-1", "## Timeline", "## Evidence", "## Resolution", "desktop1"} {
		if !strings.Contains(pm, want) {
			t.Fatalf("postmortem missing %q:\n%s", want, pm)
		}
	}
	if txt := RenderIncident(inc); !strings.Contains(txt, "sources:") {
		t.Fatalf("rendered incident missing sources:\n%s", txt)
	}
	if tbl := Render(e.List()); !strings.Contains(tbl, "INC-1") {
		t.Fatalf("rendered list missing incident:\n%s", tbl)
	}
}

// TestSeverityEscalationAndGauges: a warning incident escalates to
// critical when the signal crosses CritAt, and the labeled open gauges
// track the move.
func TestSeverityEscalationAndGauges(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(Options{Rules: burnOnlyRules(), Metrics: reg})
	for i := 0; i < 4; i++ {
		obs := obsAt(i)
		obs.WorstBurn = 1.2
		e.Observe(obs)
	}
	inc := e.List()[0]
	if inc.Severity != SevWarning {
		t.Fatalf("severity = %s, want warning", inc.SeverityStr)
	}
	if v, _ := reg.LabeledGauge(metrics.IncidentsOpen, "severity").With("warning").Value(); v != 1 {
		t.Fatalf("incidents_open{warning} = %.0f, want 1", v)
	}
	for i := 4; i < 8; i++ {
		obs := obsAt(i)
		obs.WorstBurn = 6
		e.Observe(obs)
	}
	inc = e.List()[0]
	if inc.Severity != SevCritical {
		t.Fatalf("severity after spike = %s, want critical", inc.SeverityStr)
	}
	if v, _ := reg.LabeledGauge(metrics.IncidentsOpen, "severity").With("warning").Value(); v != 0 {
		t.Fatalf("incidents_open{warning} after escalation = %.0f, want 0", v)
	}
	if v, _ := reg.LabeledGauge(metrics.IncidentsOpen, "severity").With("critical").Value(); v != 1 {
		t.Fatalf("incidents_open{critical} = %.0f, want 1", v)
	}
	if v := reg.LabeledCounter(metrics.IncidentsTotal, "rule").With(RuleSLOBurn).Value(); v != 1 {
		t.Fatalf("incidents_total{slo-burn} = %d, want 1", v)
	}
}

// TestLogBound: the incident log drops the oldest incidents beyond
// MaxIncidents.
func TestLogBound(t *testing.T) {
	e := New(Options{Rules: faultOnlyRules(), MaxIncidents: 3})
	e.Observe(obsAt(0))
	step := 1
	for ep := 0; ep < 5; ep++ {
		for i := 0; i < 2; i++ { // open (dwell 1)
			obs := obsAt(step)
			obs.DevicesDown = 2
			step++
			e.Observe(obs)
		}
		for i := 0; i < 4; i++ { // close (dwell 2 + EWMA decay)
			obs := obsAt(step)
			step++
			e.Observe(obs)
		}
	}
	list := e.List()
	if len(list) != 3 {
		t.Fatalf("retained %d incidents, want 3", len(list))
	}
	if list[0].ID != "INC-5" {
		t.Fatalf("newest retained = %s, want INC-5", list[0].ID)
	}
	if _, ok := e.Get("INC-1"); ok {
		t.Fatal("evicted incident still retrievable")
	}
	if got, ok := e.Get("INC-5"); !ok || got.ID != "INC-5" {
		t.Fatalf("Get(INC-5) = %+v, %v", got, ok)
	}
}

// TestNilEngine: every method on a nil engine is a safe no-op.
func TestNilEngine(t *testing.T) {
	var e *Engine
	e.Observe(obsAt(0))
	if e.List() != nil {
		t.Fatal("nil List not nil")
	}
	if _, ok := e.Get("INC-1"); ok {
		t.Fatal("nil Get found something")
	}
	if n, sev := e.Open(); n != 0 || sev != SevNone {
		t.Fatal("nil Open not zero")
	}
	if e.Rules() != nil {
		t.Fatal("nil Rules not nil")
	}
}

// TestIdleObserveAllocationFree: with no incident opening or closing,
// Observe must not allocate — it runs once per capacity sample forever.
func TestIdleObserveAllocationFree(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(Options{Metrics: reg})
	obs := obsAt(0)
	e.Observe(obs)
	e.Observe(obs)
	allocs := testing.AllocsPerRun(1000, func() {
		e.Observe(obs)
	})
	if allocs != 0 {
		t.Fatalf("idle Observe allocates %.1f objects per run, want 0", allocs)
	}
}
