package incident

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/autoscale"
	"ubiqos/internal/capacity"
	"ubiqos/internal/flight"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
)

// Observation is one flat sample of every signal family the rules
// watch, gathered by the domain's capacity sampler once per pass. It
// must stay a plain value type (no slices or maps): building and
// ingesting one allocates nothing, which keeps the engine's hot path
// free when no incident is opening or closing. Counter fields are
// cumulative; the engine diffs them against the previous observation.
type Observation struct {
	Now time.Time

	// WorstBurn is the highest SLO burn rate across objectives and
	// SLOViolations the count of objectives currently in "violated".
	WorstBurn     float64
	SLOViolations int

	// SpaceState / SpaceHeadroom mirror the saturation analyzer's space
	// verdict; DevicesDown counts devices currently down.
	SpaceState    capacity.State
	SpaceHeadroom float64
	DevicesDown   int

	// Cumulative counters: injected faults, admission verdicts,
	// autoscaler actions, recovery outcomes.
	FaultsTotal       int64
	AdmissionRejects  int64
	AdmissionDegrades int64
	ScaleUps          int64
	ScaleDowns        int64
	Recovered         int64
	Restored          int64

	// WorstAvailability is the lowest per-class availability on the
	// ledger (1 when no class has sessions), WorstAvailClass its class.
	WorstAvailability float64
	WorstAvailClass   string

	// ActiveSessions sizes the blast radius for titles.
	ActiveSessions int
}

// deltas are the per-observation increments of the cumulative counters
// (zero on the first observation, which only records the baseline).
type deltas struct {
	faults    float64
	rejects   float64
	degrades  float64
	scale     float64
	recovered float64
	restored  float64
}

// Sources are the evidence-assembly hooks the domain injects. Every
// hook is optional (nil hooks are skipped); they are called only when
// an incident opens or resolves, never on the per-observation fast
// path. Hooks run under the engine mutex and must not call back into
// the engine.
type Sources struct {
	// Saturation returns the analyzer's latest report.
	Saturation func() *capacity.Report
	// SLO evaluates every objective.
	SLO func() []metrics.Status
	// Series returns a capacity ring excerpt; SeriesNames lists the
	// metrics worth excerpting.
	Series      func(metric string, window time.Duration) []capacity.Sample
	SeriesNames []string
	// Sessions lists recorded sessions (most recent first) and Excerpt
	// returns one session's bounded window of flight entries.
	Sessions func() []flight.SessionInfo
	Excerpt  func(session string, from, to time.Time, max int) []flight.Entry
	// Scorecards returns the ledger's per-class accounting.
	Scorecards func() []ledger.Scorecard
	// Admission / Autoscale snapshot the gate and the autoscaler (nil
	// result when the subsystem is not enabled).
	Admission func() *admission.Status
	Autoscale func() *autoscale.Status
}

// Rule names of the default rule set.
const (
	RuleSLOBurn      = "slo-burn"
	RuleSaturation   = "saturation"
	RuleFaultStorm   = "fault-storm"
	RuleAdmission    = "admission-pressure"
	RuleAvailability = "availability-drop"
)

// RuleConfig is one detection rule: which signal it watches (fixed by
// Name), its thresholds, and its hysteresis dwells. The signal
// convention is "higher is worse".
type RuleConfig struct {
	// Name selects the signal (one of the Rule* constants) and Source
	// names the signal family cited in evidence bundles.
	Name        string
	Source      string
	Description string
	// WarnAt opens a warning incident, CritAt opens (or escalates to) a
	// critical one, CloseBelow resolves it. CloseBelow < WarnAt gives
	// the detector its hysteresis band.
	WarnAt     float64
	CritAt     float64
	CloseBelow float64
	// OpenDwell / CloseDwell are the consecutive observations the
	// signal must hold beyond the threshold before transitioning.
	OpenDwell  int
	CloseDwell int
	// Alpha EWMA-smooths the signal before thresholding (0 = raw).
	Alpha float64
}

// DefaultRules is the stock rule set: one rule per signal family.
func DefaultRules() []RuleConfig {
	return []RuleConfig{
		{
			Name: RuleSLOBurn, Source: "slo",
			Description: "worst SLO burn rate, EWMA-smoothed; 1.0 spends error budget exactly as fast as allowed",
			WarnAt:      1.0, CritAt: 2.0, CloseBelow: 0.8,
			OpenDwell: 2, CloseDwell: 2, Alpha: 0.5,
		},
		{
			Name: RuleSaturation, Source: "saturation",
			Description: "saturation analyzer space verdict (0 ok, 1 approaching, 2 saturated); already hysteretic upstream",
			WarnAt:      1.0, CritAt: 2.0, CloseBelow: 0.5,
			OpenDwell: 2, CloseDwell: 2,
		},
		{
			Name: RuleFaultStorm, Source: "faults",
			Description: "devices down plus EWMA of injected-fault rate; opens fast (dwell 1) so detection latency stays low",
			WarnAt:      1.0, CritAt: 2.0, CloseBelow: 0.5,
			OpenDwell: 1, CloseDwell: 2, Alpha: 0.5,
		},
		{
			Name: RuleAdmission, Source: "admission",
			Description: "EWMA of admission rejects (plus half-weighted degrades) per observation",
			WarnAt:      1.0, CritAt: 4.0, CloseBelow: 0.25,
			OpenDwell: 2, CloseDwell: 2, Alpha: 0.5,
		},
		{
			Name: RuleAvailability, Source: "ledger",
			Description: "worst per-class unavailability in percentage points, EWMA-smoothed",
			WarnAt:      0.5, CritAt: 5.0, CloseBelow: 0.25,
			OpenDwell: 2, CloseDwell: 2, Alpha: 0.5,
		},
	}
}

// Engine bounds and evidence caps.
const (
	DefaultMaxIncidents     = 64
	DefaultEvidenceWindow   = 2 * time.Minute
	DefaultMaxSeriesSamples = 60
	DefaultMaxSessions      = 4
	DefaultMaxEntries       = 16
	maxTraceIDs             = 16
	maxMitigators           = 8
)

// Options configures an Engine.
type Options struct {
	// Rules overrides the rule set (nil selects DefaultRules).
	Rules []RuleConfig
	// MaxIncidents bounds the in-memory incident log (oldest evicted).
	MaxIncidents int
	// EvidenceWindow is the lookback the evidence bundle covers.
	EvidenceWindow time.Duration
	// MaxSeriesSamples / MaxSessions / MaxEntries cap each series
	// excerpt, the sampled sessions, and each session's entries.
	MaxSeriesSamples int
	MaxSessions      int
	MaxEntries       int
	// Metrics receives incidents_open{severity} and
	// incidents_total{rule} (nil disables publication).
	Metrics *metrics.Registry
	// Sources are the evidence hooks.
	Sources Sources
}

// rule is a RuleConfig plus its detector state. All fields are scalars
// so the per-observation update allocates nothing.
type rule struct {
	cfg      RuleConfig
	smoothed float64
	seen     bool
	above    int
	below    int
	open     *Incident
	total    *metrics.Counter
}

// Engine ingests Observations, runs the rules, and keeps the bounded
// incident log. All methods are safe for concurrent use and no-ops on
// a nil receiver.
type Engine struct {
	window       time.Duration
	maxIncidents int
	maxSamples   int
	maxSessions  int
	maxEntries   int
	src          Sources

	warnG *metrics.Gauge
	critG *metrics.Gauge

	mu        sync.Mutex
	rules     []*rule
	log       []*Incident // oldest first
	nextID    int
	openCount int
	openWarn  int
	openCrit  int
	prev      Observation
	prevSeen  bool
}

// New builds an engine. Metric handles are resolved once here so the
// per-observation path never touches the label-concatenation slow path.
func New(opts Options) *Engine {
	cfgs := opts.Rules
	if cfgs == nil {
		cfgs = DefaultRules()
	}
	e := &Engine{
		window:       opts.EvidenceWindow,
		maxIncidents: opts.MaxIncidents,
		maxSamples:   opts.MaxSeriesSamples,
		maxSessions:  opts.MaxSessions,
		maxEntries:   opts.MaxEntries,
		src:          opts.Sources,
	}
	if e.window <= 0 {
		e.window = DefaultEvidenceWindow
	}
	if e.maxIncidents <= 0 {
		e.maxIncidents = DefaultMaxIncidents
	}
	if e.maxSamples <= 0 {
		e.maxSamples = DefaultMaxSeriesSamples
	}
	if e.maxSessions <= 0 {
		e.maxSessions = DefaultMaxSessions
	}
	if e.maxEntries <= 0 {
		e.maxEntries = DefaultMaxEntries
	}
	for _, cfg := range cfgs {
		r := &rule{cfg: cfg}
		if opts.Metrics != nil {
			r.total = opts.Metrics.LabeledCounter(metrics.IncidentsTotal, "rule").With(cfg.Name)
		}
		e.rules = append(e.rules, r)
	}
	if opts.Metrics != nil {
		g := opts.Metrics.LabeledGauge(metrics.IncidentsOpen, "severity")
		e.warnG = g.With(SevWarning.String())
		e.critG = g.With(SevCritical.String())
		e.warnG.Set(0)
		e.critG.Set(0)
	}
	return e
}

// Observe ingests one observation, advancing every rule's detector and
// any open incidents' lifecycles. When nothing transitions the path is
// allocation-free.
func (e *Engine) Observe(obs Observation) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	var d deltas
	if e.prevSeen {
		d.faults = counterDelta(obs.FaultsTotal, e.prev.FaultsTotal)
		d.rejects = counterDelta(obs.AdmissionRejects, e.prev.AdmissionRejects)
		d.degrades = counterDelta(obs.AdmissionDegrades, e.prev.AdmissionDegrades)
		d.scale = counterDelta(obs.ScaleUps, e.prev.ScaleUps) + counterDelta(obs.ScaleDowns, e.prev.ScaleDowns)
		d.recovered = counterDelta(obs.Recovered, e.prev.Recovered)
		d.restored = counterDelta(obs.Restored, e.prev.Restored)
	}
	e.prev = obs
	e.prevSeen = true

	for _, r := range e.rules {
		level := rawSignal(r.cfg.Name, obs, d)
		if r.cfg.Alpha > 0 {
			if !r.seen {
				r.smoothed = level
				r.seen = true
			} else {
				r.smoothed = r.cfg.Alpha*level + (1-r.cfg.Alpha)*r.smoothed
			}
			level = r.smoothed
		}

		if r.open == nil {
			if level >= r.cfg.WarnAt {
				r.above++
				if r.above >= r.cfg.OpenDwell {
					r.above, r.below = 0, 0
					e.openIncident(r, obs, d, level)
				}
			} else {
				r.above = 0
			}
			continue
		}

		inc := r.open
		inc.LastSignal = level
		if level > inc.PeakSignal {
			inc.PeakSignal = level
		}
		if level >= r.cfg.CritAt && inc.Severity < SevCritical {
			e.escalate(inc, obs.Now, level)
		}
		if level < r.cfg.CloseBelow {
			r.below++
			if r.below >= r.cfg.CloseDwell {
				r.above, r.below = 0, 0
				e.resolveIncident(r, obs, level)
			}
		} else {
			r.below = 0
		}
	}

	if e.openCount > 0 && (d.scale > 0 || d.recovered > 0 || d.restored > 0) {
		e.markMitigating(obs.Now, d)
	}
}

// counterDelta is cur−prev clamped at zero (counter resets never go
// negative).
func counterDelta(cur, prev int64) float64 {
	if cur <= prev {
		return 0
	}
	return float64(cur - prev)
}

// rawSignal extracts a rule's unsmoothed signal from the observation.
// Unknown rule names read as 0 and therefore never fire.
func rawSignal(name string, obs Observation, d deltas) float64 {
	switch name {
	case RuleSLOBurn:
		return obs.WorstBurn
	case RuleSaturation:
		return float64(obs.SpaceState)
	case RuleFaultStorm:
		return float64(obs.DevicesDown) + d.faults
	case RuleAdmission:
		return d.rejects + 0.5*d.degrades
	case RuleAvailability:
		return (1 - obs.WorstAvailability) * 100
	}
	return 0
}

// title composes the one-line operator summary for a new incident.
func title(cfg RuleConfig, obs Observation, level float64) string {
	switch cfg.Name {
	case RuleSLOBurn:
		return fmt.Sprintf("SLO burn rate elevated: worst objective burning %.2fx its error budget", obs.WorstBurn)
	case RuleSaturation:
		return fmt.Sprintf("space %s (headroom %.2f, %d active sessions)", obs.SpaceState, obs.SpaceHeadroom, obs.ActiveSessions)
	case RuleFaultStorm:
		return fmt.Sprintf("fault storm: %d device(s) down, fault signal %.2f", obs.DevicesDown, level)
	case RuleAdmission:
		return fmt.Sprintf("admission pressure: smoothed reject/degrade rate %.2f per sample", level)
	case RuleAvailability:
		return fmt.Sprintf("availability drop: class %q at %.2f%%", obs.WorstAvailClass, obs.WorstAvailability*100)
	}
	return cfg.Name
}

// openIncident fires a rule: allocate the incident, capture evidence,
// snapshot the ledger baseline, and publish metrics.
func (e *Engine) openIncident(r *rule, obs Observation, d deltas, level float64) {
	e.nextID++
	sev := SevWarning
	if level >= r.cfg.CritAt {
		sev = SevCritical
	}
	inc := &Incident{
		ID:          fmt.Sprintf("INC-%d", e.nextID),
		Rule:        r.cfg.Name,
		Source:      r.cfg.Source,
		Title:       title(r.cfg, obs, level),
		Severity:    sev,
		SeverityStr: sev.String(),
		State:       StateOpen,
		OpenedAt:    obs.Now,
		OpenSignal:  level,
		PeakSignal:  level,
		LastSignal:  level,
	}
	inc.Timeline = append(inc.Timeline, Transition{
		Time: obs.Now, State: StateOpen,
		Note: fmt.Sprintf("%s signal %.2f held >= %.2f for %d observation(s)", r.cfg.Source, level, r.cfg.WarnAt, r.cfg.OpenDwell),
	})
	inc.Evidence = e.assemble(obs, d)
	for _, sc := range inc.Evidence.Scorecards {
		inc.openBroken += sc.BrokenSec
		inc.openDegraded += sc.DegradedSec
		for axis, v := range sc.DeficitSec {
			if inc.openDeficits == nil {
				inc.openDeficits = make(map[string]float64, len(sc.DeficitSec))
			}
			inc.openDeficits[axis] += v
		}
	}
	r.open = inc
	e.log = append(e.log, inc)
	if excess := len(e.log) - e.maxIncidents; excess > 0 {
		e.log = append([]*Incident(nil), e.log[excess:]...)
	}
	e.openCount++
	if r.total != nil {
		r.total.Inc()
	}
	e.bumpOpenGauge(sev, +1)
}

// escalate raises an open incident to critical.
func (e *Engine) escalate(inc *Incident, now time.Time, level float64) {
	e.bumpOpenGauge(inc.Severity, -1)
	inc.Severity = SevCritical
	inc.SeverityStr = SevCritical.String()
	e.bumpOpenGauge(SevCritical, +1)
	inc.Timeline = append(inc.Timeline, Transition{
		Time: now, State: inc.State,
		Note: fmt.Sprintf("escalated to critical: signal %.2f", level),
	})
}

// markMitigating records mitigation actors on every open incident and
// transitions still-open ones to mitigating.
func (e *Engine) markMitigating(now time.Time, d deltas) {
	var actors [2]string
	n := 0
	if d.recovered > 0 || d.restored > 0 {
		actors[n] = "recovery-supervisor"
		n++
	}
	if d.scale > 0 {
		actors[n] = "autoscaler"
		n++
	}
	for _, r := range e.rules {
		inc := r.open
		if inc == nil {
			continue
		}
		for _, a := range actors[:n] {
			addUnique(&inc.MitigatedBy, a, maxMitigators)
		}
		if inc.State == StateOpen {
			inc.State = StateMitigating
			inc.MitigatingAt = now
			inc.Timeline = append(inc.Timeline, Transition{
				Time: now, State: StateMitigating,
				Note: "mitigation under way: " + strings.Join(actors[:n], " + "),
			})
		}
	}
}

// resolveIncident closes a rule's open incident, attributing the cause
// and attaching impact accounting.
func (e *Engine) resolveIncident(r *rule, obs Observation, level float64) {
	inc := r.open
	r.open = nil
	e.openCount--
	e.bumpOpenGauge(inc.Severity, -1)
	inc.State = StateResolved
	inc.ResolvedAt = obs.Now
	inc.LastSignal = level
	if len(inc.MitigatedBy) > 0 {
		inc.ResolutionCause = fmt.Sprintf("%s signal cleared after %s intervention", r.cfg.Source, strings.Join(inc.MitigatedBy, " + "))
	} else {
		inc.ResolutionCause = r.cfg.Source + " signal cleared without intervention"
	}
	inc.Timeline = append(inc.Timeline, Transition{
		Time: obs.Now, State: StateResolved,
		Note: fmt.Sprintf("signal %.2f held < %.2f for %d observation(s)", level, r.cfg.CloseBelow, r.cfg.CloseDwell),
	})
	inc.Impact = e.impact(inc, obs)
}

// impact diffs the ledger's accounting against the open-time baseline.
func (e *Engine) impact(inc *Incident, obs Observation) *Impact {
	im := &Impact{DurationSec: obs.Now.Sub(inc.OpenedAt).Seconds()}
	var cards []ledger.Scorecard
	if e.src.Scorecards != nil {
		cards = e.src.Scorecards()
	}
	for _, sc := range cards {
		if im.ClassAvailability == nil {
			im.ClassAvailability = make(map[string]float64, len(cards))
		}
		im.ClassAvailability[sc.Class] = sc.Availability
		im.BrokenSec += sc.BrokenSec
		im.DegradedSec += sc.DegradedSec
		for axis, v := range sc.DeficitSec {
			if im.DeficitSec == nil {
				im.DeficitSec = make(map[string]float64)
			}
			im.DeficitSec[axis] += v
		}
	}
	im.BrokenSec = clampPos(im.BrokenSec - inc.openBroken)
	im.DegradedSec = clampPos(im.DegradedSec - inc.openDegraded)
	for axis := range im.DeficitSec {
		im.DeficitSec[axis] = clampPos(im.DeficitSec[axis] - inc.openDeficits[axis])
		im.TotalDeficitSec += im.DeficitSec[axis]
	}
	if e.src.Sessions != nil {
		for _, info := range e.src.Sessions() {
			if !info.Last.Before(inc.OpenedAt) {
				im.SessionsAffected++
			}
		}
	} else if inc.Evidence != nil {
		im.SessionsAffected = len(inc.Evidence.Sessions)
	}
	return im
}

func clampPos(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// assemble captures the evidence bundle from the injected hooks.
func (e *Engine) assemble(obs Observation, d deltas) *Evidence {
	ev := &Evidence{From: obs.Now.Add(-e.window), To: obs.Now}
	if e.src.Saturation != nil {
		ev.Saturation = e.src.Saturation()
	}
	if e.src.SLO != nil {
		ev.SLO = e.src.SLO()
	}
	if e.src.Series != nil {
		for _, m := range e.src.SeriesNames {
			s := e.src.Series(m, e.window)
			if len(s) == 0 {
				continue
			}
			if len(s) > e.maxSamples {
				s = s[len(s)-e.maxSamples:]
			}
			ev.Series = append(ev.Series, SeriesExcerpt{Metric: m, Samples: s})
		}
	}
	if e.src.Sessions != nil && e.src.Excerpt != nil {
		for _, info := range e.src.Sessions() {
			if len(ev.Sessions) >= e.maxSessions {
				break
			}
			entries := e.src.Excerpt(info.Session, ev.From, ev.To, e.maxEntries)
			if len(entries) == 0 {
				continue
			}
			ev.Sessions = append(ev.Sessions, FlightExcerpt{Session: info.Session, Entries: entries})
			for _, en := range entries {
				if en.TraceID != "" {
					addUnique(&ev.TraceIDs, en.TraceID, maxTraceIDs)
				}
			}
		}
	}
	if e.src.Admission != nil {
		ev.Admission = e.src.Admission()
	}
	if e.src.Autoscale != nil {
		ev.Autoscale = e.src.Autoscale()
	}
	if e.src.Scorecards != nil {
		ev.Scorecards = e.src.Scorecards()
	}
	ev.Sources = citeSources(obs, d, ev)
	return ev
}

// citeSources names the signal families that are abnormal at onset —
// the "≥3 distinct signal sources" an incident correlates.
func citeSources(obs Observation, d deltas, ev *Evidence) []string {
	var src []string
	if obs.WorstBurn > 0.8 || obs.SLOViolations > 0 {
		src = append(src, "slo")
	}
	satAbnormal := obs.SpaceState >= capacity.StateApproaching
	if ev.Saturation != nil {
		for _, dev := range ev.Saturation.Devices {
			if !dev.Up || dev.State >= capacity.StateApproaching {
				satAbnormal = true
				break
			}
		}
	}
	if satAbnormal {
		src = append(src, "saturation")
	}
	if obs.DevicesDown > 0 || d.faults > 0 {
		src = append(src, "faults")
	}
	if d.rejects > 0 || d.degrades > 0 {
		src = append(src, "admission")
	}
	if d.scale > 0 {
		src = append(src, "autoscale")
	}
	if obs.WorstAvailability < 1 {
		src = append(src, "ledger")
	}
	if len(ev.Sessions) > 0 {
		src = append(src, "flight")
	}
	return src
}

// addUnique appends s to *list unless present or the cap is reached.
func addUnique(list *[]string, s string, limit int) {
	for _, have := range *list {
		if have == s {
			return
		}
	}
	if len(*list) < limit {
		*list = append(*list, s)
	}
}

// bumpOpenGauge maintains the incidents_open{severity} gauges.
func (e *Engine) bumpOpenGauge(sev Severity, delta int) {
	switch sev {
	case SevWarning:
		e.openWarn += delta
		if e.warnG != nil {
			e.warnG.Set(float64(e.openWarn))
		}
	case SevCritical:
		e.openCrit += delta
		if e.critG != nil {
			e.critG.Set(float64(e.openCrit))
		}
	}
}

// List returns snapshots of the retained incidents, newest first. The
// Evidence and Impact pointers are shared (write-once).
func (e *Engine) List() []Incident {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Incident, 0, len(e.log))
	for i := len(e.log) - 1; i >= 0; i-- {
		out = append(out, snapshot(e.log[i]))
	}
	return out
}

// Get returns a snapshot of one incident by ID.
func (e *Engine) Get(id string) (Incident, bool) {
	if e == nil {
		return Incident{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, inc := range e.log {
		if inc.ID == id {
			return snapshot(inc), true
		}
	}
	return Incident{}, false
}

// Open reports the open-incident count and the worst open severity.
func (e *Engine) Open() (int, Severity) {
	if e == nil {
		return 0, SevNone
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	worst := SevNone
	if e.openWarn > 0 {
		worst = SevWarning
	}
	if e.openCrit > 0 {
		worst = SevCritical
	}
	return e.openCount, worst
}

// Rules returns the engine's rule configurations, sorted by name (for
// rendering and docs).
func (e *Engine) Rules() []RuleConfig {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleConfig, 0, len(e.rules))
	for _, r := range e.rules {
		out = append(out, r.cfg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// snapshot copies an incident's mutable slices so callers can retain
// the value across engine updates.
func snapshot(inc *Incident) Incident {
	c := *inc
	c.Timeline = append([]Transition(nil), inc.Timeline...)
	if inc.MitigatedBy != nil {
		c.MitigatedBy = append([]string(nil), inc.MitigatedBy...)
	}
	c.openDeficits = nil
	return c
}
