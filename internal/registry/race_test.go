package registry

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// atomicClock is a thread-safe fake clock for the concurrency tests; the
// plain fakeClock is fine for single-goroutine lease tests but would race
// once sweepers and renewers read it concurrently.
type atomicClock struct{ ns atomic.Int64 }

func newAtomicClock() *atomicClock {
	c := &atomicClock{}
	c.ns.Store(time.Unix(1000, 0).UnixNano())
	return c
}

func (c *atomicClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *atomicClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// TestLeasedRegistryConcurrent drives registration, renewal, sweeping, and
// discovery from concurrent goroutines; run with -race. The invariant
// checked at the end is that a final sweep after expiry leaves the
// registry empty — no lease survives without its instance or vice versa.
func TestLeasedRegistryConcurrent(t *testing.T) {
	clock := newAtomicClock()
	r := NewLeased(clock.now)
	const (
		goroutines = 8
		perG       = 40
		ttl        = 10 * time.Second
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("svc-%d-%d", g, i)
				if err := r.RegisterWithTTL(inst(name, "player"), ttl); err != nil {
					t.Errorf("register %s: %v", name, err)
					return
				}
				switch i % 4 {
				case 0:
					r.Renew(name, ttl)
				case 1:
					r.Find(specOf("player"))
				case 2:
					clock.advance(time.Millisecond)
					r.Sweep()
				case 3:
					r.Unregister(name)
				}
			}
		}(g)
	}
	wg.Wait()

	// Everything still leased expires after a full TTL with no renewals.
	clock.advance(ttl + time.Second)
	r.Sweep()
	if n := r.Len(); n != 0 {
		t.Errorf("registry holds %d instances after final sweep, want 0", n)
	}
	if len(r.Find(specOf("player"))) != 0 {
		t.Error("discovery returned instances after final sweep")
	}
}

// TestLeaseRenewVsSweepRace pins the renew/expire boundary: a renewer and
// a sweeper contend over one instance while the clock advances. Whatever
// the interleaving, discovery must agree with registration — Find never
// returns a dead instance and never misses a live one.
func TestLeaseRenewVsSweepRace(t *testing.T) {
	clock := newAtomicClock()
	r := NewLeased(clock.now)
	const ttl = 5 * time.Second
	if err := r.RegisterWithTTL(inst("hot", "player"), ttl); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // renewer keeps the lease alive
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Renew("hot", ttl)
			}
		}
	}()
	go func() { // sweeper advances time in sub-TTL steps and collects
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// Total advance equals one TTL, so the instance can only
			// expire if the renewer never runs at all. The explicit
			// yield lets the renewer interleave even on GOMAXPROCS=1,
			// where this non-blocking loop would otherwise run to
			// completion in one scheduling quantum.
			runtime.Gosched()
			clock.advance(ttl / 200)
			r.Sweep()
			if got, want := r.Get("hot") != nil, len(r.Find(specOf("player"))) > 0; got != want {
				t.Errorf("registration (%v) and discovery (%v) disagree", got, want)
			}
		}
		close(stop)
	}()
	wg.Wait()
	if r.Get("hot") == nil {
		t.Error("renewed instance expired despite active renewer")
	}
}
