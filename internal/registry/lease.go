package registry

import (
	"fmt"
	"sync"
	"time"
)

// LeasedRegistry decorates a Registry with lease-based liveness, the way
// wide-area discovery services track "devices and services coming and
// going frequently": instances register with a time-to-live and disappear
// from discovery unless renewed. The clock is injectable so tests and the
// discrete-event simulator can drive expiry deterministically.
type LeasedRegistry struct {
	*Registry

	now func() time.Time

	// mu is the outer lock for every lease mutation: it is held across
	// both the expiry-map update and the embedded Registry call, so a
	// Sweep's expiry decision and its unregistration are atomic with
	// respect to a concurrent RegisterWithTTL/Renew of the same name.
	// (Lock order is always l.mu → Registry.mu; the Registry never calls
	// back into the lease layer, so the order cannot invert.)
	mu     sync.Mutex
	expiry map[string]time.Time
	// onExpire, when set, is called (outside the lock) with the names of
	// the instances each Sweep removed — the hook wide-area deployments
	// use to publish service.expired events so plan caches invalidate.
	onExpire func(names []string)
}

// SetExpiryHook installs a callback invoked after every Sweep that
// removed at least one expired instance. Pass nil to remove it.
func (l *LeasedRegistry) SetExpiryHook(fn func(names []string)) {
	l.mu.Lock()
	l.onExpire = fn
	l.mu.Unlock()
}

// NewLeased wraps a fresh registry. A nil clock uses time.Now.
func NewLeased(clock func() time.Time) *LeasedRegistry {
	return NewLeasedOver(New(), clock)
}

// NewLeasedOver wraps an existing registry, so leased instances (e.g. an
// autoscaler's replicas) share discovery with the registry's permanent
// registrations. Only instances registered through RegisterWithTTL are
// lease-managed; the rest are untouched by Sweep. A nil clock uses
// time.Now.
func NewLeasedOver(r *Registry, clock func() time.Time) *LeasedRegistry {
	if clock == nil {
		clock = time.Now
	}
	return &LeasedRegistry{
		Registry: r,
		now:      clock,
		expiry:   make(map[string]time.Time),
	}
}

// RegisterWithTTL registers the instance with a lease; a non-positive TTL
// is rejected. Re-registering renews the lease.
func (l *LeasedRegistry) RegisterWithTTL(in *Instance, ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("registry: lease TTL must be positive, got %v", ttl)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.Registry.Register(in); err != nil {
		return err
	}
	l.expiry[in.Name] = l.now().Add(ttl)
	return nil
}

// Renew extends an existing lease and reports whether the instance was
// still registered.
func (l *LeasedRegistry) Renew(name string, ttl time.Duration) bool {
	if ttl <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.Registry.Get(name) == nil {
		return false
	}
	if _, leased := l.expiry[name]; !leased {
		// A permanent registration (via the embedded Register) cannot be
		// converted to a lease by Renew.
		return false
	}
	l.expiry[name] = l.now().Add(ttl)
	return true
}

// Sweep removes every instance whose lease has expired and returns their
// names (sorted by expiry order of discovery — map order is not
// guaranteed, so callers needing determinism should sort).
func (l *LeasedRegistry) Sweep() []string {
	l.mu.Lock()
	now := l.now()
	var expired []string
	for name, at := range l.expiry {
		if !at.After(now) {
			expired = append(expired, name)
			delete(l.expiry, name)
			// Unregister while still holding l.mu: releasing it between the
			// expiry decision and the unregistration opens a window where a
			// concurrent RegisterWithTTL of the same name re-registers a live
			// instance only to have this sweep tear it down.
			l.Registry.Unregister(name)
		}
	}
	hook := l.onExpire
	l.mu.Unlock()
	if hook != nil && len(expired) > 0 {
		hook(expired)
	}
	return expired
}

// Find sweeps expired leases before delegating, so discovery never returns
// a dead instance.
func (l *LeasedRegistry) Find(spec Spec) []Match {
	l.Sweep()
	return l.Registry.Find(spec)
}

// Best sweeps expired leases before delegating.
func (l *LeasedRegistry) Best(spec Spec) *Instance {
	l.Sweep()
	return l.Registry.Best(spec)
}

// Unregister drops the lease along with the instance.
func (l *LeasedRegistry) Unregister(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.expiry, name)
	return l.Registry.Unregister(name)
}
