// Package registry implements the service discovery service the
// configuration model assumes (paper §3.1): a concurrency-safe catalog of
// the concrete service instances currently available in the environment,
// queried with abstract service descriptions and ranked by closeness to the
// description, the user's QoS requirements, and client device properties.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

// Spec is an abstract service description: what the application developer
// writes in the abstract service graph. Components are "not explicitly
// named, but rather specified in an abstract manner".
type Spec struct {
	// Type is the abstract service type (e.g. "audio-player"). Matching is
	// exact and mandatory.
	Type string `json:"type"`
	// Attrs are required instance attributes (exact key/value matches),
	// e.g. {"platform": "pda"}.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Input is the desired input QoS: what the surrounding graph will feed
	// this service. Instances that accept it score higher.
	Input qos.Vector `json:"input,omitempty"`
	// Output is the desired output QoS (often derived from the user's QoS
	// requirements). Instances whose output capability can produce it score
	// higher.
	Output qos.Vector `json:"output,omitempty"`
}

// Instance is a concrete service component discovered in the environment.
// Instances include "more detailed and specific information than their
// abstract descriptions".
type Instance struct {
	// Name uniquely identifies the instance within the registry.
	Name string `json:"name"`
	// Type is the service type the instance implements.
	Type string `json:"type"`
	// Attrs are descriptive properties (platform, vendor, codec, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Input is the QoS vector the instance requires of its predecessors
	// (Qin).
	Input qos.Vector `json:"input,omitempty"`
	// Output is the default output QoS vector (Qout).
	Output qos.Vector `json:"output,omitempty"`
	// OutCapability is the full configurable output capability; dimensions
	// listed in Adjustable may be re-tuned anywhere within it.
	OutCapability qos.Vector `json:"outCapability,omitempty"`
	// Adjustable marks dynamically configurable output dimensions.
	Adjustable map[string]bool `json:"adjustable,omitempty"`
	// PassThrough marks dimensions the instance forwards unchanged from
	// input to output.
	PassThrough map[string]bool `json:"passThrough,omitempty"`
	// Resources is the profiled end-system requirement vector R in
	// benchmark units.
	Resources resource.Vector `json:"resources,omitempty"`
	// SizeMB is the downloadable package size.
	SizeMB float64 `json:"sizeMB,omitempty"`
}

// Validate checks the instance is well-formed.
func (in *Instance) Validate() error {
	if in.Name == "" {
		return fmt.Errorf("registry: instance with empty name")
	}
	if in.Type == "" {
		return fmt.Errorf("registry: instance %q with empty type", in.Name)
	}
	for _, v := range []qos.Vector{in.Input, in.Output, in.OutCapability} {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("registry: instance %q: %w", in.Name, err)
		}
	}
	if err := in.Resources.Validate(); err != nil {
		return fmt.Errorf("registry: instance %q: %w", in.Name, err)
	}
	if in.SizeMB < 0 {
		return fmt.Errorf("registry: instance %q has negative size", in.Name)
	}
	return nil
}

// Capability returns the effective output capability: OutCapability where
// present, falling back to the fixed Output values.
func (in *Instance) Capability() qos.Vector {
	return in.Output.Merge(in.OutCapability)
}

// Match is one ranked discovery result.
type Match struct {
	Instance *Instance
	// Score counts the satisfied desired QoS dimensions; higher is closer
	// to the abstract description.
	Score int
}

// Registry is the service discovery service. All methods are safe for
// concurrent use.
type Registry struct {
	mu        sync.RWMutex
	instances map[string]*Instance
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{instances: make(map[string]*Instance)}
}

// Register adds or replaces an instance after validation.
func (r *Registry) Register(in *Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.instances[in.Name] = in
	return nil
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(in *Instance) {
	if err := r.Register(in); err != nil {
		panic(err)
	}
}

// Unregister removes an instance (e.g. when its host leaves the space) and
// reports whether it was present.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.instances[name]; !ok {
		return false
	}
	delete(r.instances, name)
	return true
}

// Get returns the named instance, or nil.
func (r *Registry) Get(name string) *Instance {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.instances[name]
}

// Len returns the number of registered instances.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.instances)
}

// All returns every instance sorted by name.
func (r *Registry) All() []*Instance {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Instance, 0, len(r.instances))
	for _, in := range r.instances {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the instances matching the abstract spec, ranked best-first:
// exact type match and attribute superset are mandatory; the rank counts
// how many desired input/output QoS dimensions the instance can satisfy
// (ties broken by smaller resource footprint, then name). An empty result
// models the paper's "failed discovery of a service instance".
func (r *Registry) Find(spec Spec) []Match {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Match
	for _, in := range r.instances {
		if in.Type != spec.Type {
			continue
		}
		if !attrsSubset(spec.Attrs, in.Attrs) {
			continue
		}
		out = append(out, Match{Instance: in, Score: scoreQoS(spec, in)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		ri := footprint(out[i].Instance.Resources)
		rj := footprint(out[j].Instance.Resources)
		if ri != rj {
			return ri < rj
		}
		return out[i].Instance.Name < out[j].Instance.Name
	})
	return out
}

// Best returns the single closest instance for the spec, or nil when
// discovery fails.
func (r *Registry) Best(spec Spec) *Instance {
	ms := r.Find(spec)
	if len(ms) == 0 {
		return nil
	}
	return ms[0].Instance
}

// Candidate is one same-type instance considered for an abstract spec,
// with the reason it lost when it did. Candidate sets feed the explain
// layer's discovery provenance.
type Candidate struct {
	Name string `json:"name"`
	// Score is the QoS rank (attr-rejected candidates keep score 0).
	Score int `json:"score"`
	// Chosen marks the winning instance.
	Chosen bool `json:"chosen,omitempty"`
	// Rejection explains why this candidate lost, relative to the winner
	// (empty for the winner).
	Rejection string `json:"rejection,omitempty"`
}

// Candidates returns every same-type instance the discovery ranking
// considered for the spec, winners first: eligible instances in Find
// order (the first marked Chosen, the rest annotated with why the
// winner beat them), then attribute-rejected instances sorted by name.
func (r *Registry) Candidates(spec Spec) []Candidate {
	r.mu.RLock()
	var eligible []Match
	var rejected []Candidate
	for _, in := range r.instances {
		if in.Type != spec.Type {
			continue
		}
		if reason, ok := attrMismatch(spec.Attrs, in.Attrs); !ok {
			rejected = append(rejected, Candidate{Name: in.Name, Rejection: reason})
			continue
		}
		eligible = append(eligible, Match{Instance: in, Score: scoreQoS(spec, in)})
	}
	r.mu.RUnlock()
	sort.Slice(eligible, func(i, j int) bool {
		if eligible[i].Score != eligible[j].Score {
			return eligible[i].Score > eligible[j].Score
		}
		ri := footprint(eligible[i].Instance.Resources)
		rj := footprint(eligible[j].Instance.Resources)
		if ri != rj {
			return ri < rj
		}
		return eligible[i].Instance.Name < eligible[j].Instance.Name
	})
	sort.Slice(rejected, func(i, j int) bool { return rejected[i].Name < rejected[j].Name })

	out := make([]Candidate, 0, len(eligible)+len(rejected))
	for i, m := range eligible {
		c := Candidate{Name: m.Instance.Name, Score: m.Score, Chosen: i == 0}
		if i > 0 {
			winner := eligible[0]
			switch {
			case m.Score < winner.Score:
				c.Rejection = fmt.Sprintf("QoS score %d < %d (%s)", m.Score, winner.Score, winner.Instance.Name)
			case footprint(m.Instance.Resources) > footprint(winner.Instance.Resources):
				c.Rejection = fmt.Sprintf("larger resource footprint than %s (%.2f > %.2f)",
					winner.Instance.Name, footprint(m.Instance.Resources), footprint(winner.Instance.Resources))
			default:
				c.Rejection = fmt.Sprintf("name tie-break behind %s", winner.Instance.Name)
			}
		}
		out = append(out, c)
	}
	return append(out, rejected...)
}

// attrMismatch reports whether have satisfies every required attribute;
// when not, it names the first (alphabetically) unmet requirement.
func attrMismatch(want, have map[string]string) (string, bool) {
	if attrsSubset(want, have) {
		return "", true
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if have[k] != want[k] {
			return fmt.Sprintf("requires attr %s=%s", k, want[k]), false
		}
	}
	return "attr mismatch", false
}

func attrsSubset(want, have map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// scoreQoS counts the desired dimensions the instance can honor: a desired
// output dimension counts when the instance's capability intersects it; a
// desired input dimension counts when the offered value satisfies the
// instance's input requirement for that dimension (or the instance does not
// constrain it).
func scoreQoS(spec Spec, in *Instance) int {
	score := 0
	capability := in.Capability()
	for _, want := range spec.Output {
		got, ok := capability.Get(want.Name)
		if !ok {
			continue
		}
		if got.ContainedIn(want.Value) {
			score++
			continue
		}
		if _, ok := got.Intersect(want.Value); ok {
			score++
		}
	}
	for _, offered := range spec.Input {
		req, ok := in.Input.Get(offered.Name)
		if !ok {
			score++ // unconstrained: accepts anything for this dimension
			continue
		}
		if offered.Value.ContainedIn(req) {
			score++
		} else if _, ok := offered.Value.Intersect(req); ok {
			score++
		}
	}
	return score
}

func footprint(r resource.Vector) float64 {
	var s float64
	for _, x := range r {
		s += x
	}
	return s
}
