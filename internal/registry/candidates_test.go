package registry

import (
	"strings"
	"testing"

	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

func TestCandidatesRanksAndExplains(t *testing.T) {
	r := New()
	// Winner: matches the desired output format.
	r.MustRegister(&Instance{
		Name: "pcm-out", Type: "audio-player",
		Attrs:     map[string]string{"platform": "pda"},
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatPCM))),
		Resources: resource.MB(8, 10),
	})
	// Lower QoS score: wrong output format.
	r.MustRegister(&Instance{
		Name: "mp3-out", Type: "audio-player",
		Attrs:     map[string]string{"platform": "pda"},
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3))),
		Resources: resource.MB(8, 10),
	})
	// Same score as the winner but a heavier footprint.
	r.MustRegister(&Instance{
		Name: "pcm-heavy", Type: "audio-player",
		Attrs:     map[string]string{"platform": "pda"},
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatPCM))),
		Resources: resource.MB(64, 90),
	})
	// Attribute-rejected: demands a platform the spec pins elsewhere.
	r.MustRegister(&Instance{
		Name: "wrong-platform", Type: "audio-player",
		Attrs:     map[string]string{"platform": "pc"},
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatPCM))),
		Resources: resource.MB(8, 10),
	})
	// Different type: never considered.
	r.MustRegister(&Instance{Name: "server", Type: "audio-server"})

	spec := Spec{
		Type:   "audio-player",
		Attrs:  map[string]string{"platform": "pda"},
		Output: qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatPCM))),
	}
	cs := r.Candidates(spec)
	if len(cs) != 4 {
		t.Fatalf("want 4 candidates, got %d: %+v", len(cs), cs)
	}
	if !cs[0].Chosen || cs[0].Name != "pcm-out" || cs[0].Rejection != "" {
		t.Fatalf("winner wrong: %+v", cs[0])
	}
	if cs[0].Name != r.Best(spec).Name {
		t.Fatalf("Candidates winner %q disagrees with Best %q", cs[0].Name, r.Best(spec).Name)
	}
	if cs[1].Name != "pcm-heavy" || !strings.Contains(cs[1].Rejection, "larger resource footprint") {
		t.Fatalf("footprint loser wrong: %+v", cs[1])
	}
	if cs[2].Name != "mp3-out" || !strings.Contains(cs[2].Rejection, "QoS score") {
		t.Fatalf("score loser wrong: %+v", cs[2])
	}
	if cs[3].Name != "wrong-platform" || cs[3].Rejection != "requires attr platform=pda" {
		t.Fatalf("attr-rejected wrong: %+v", cs[3])
	}
	for _, c := range cs {
		if c.Name == "server" {
			t.Fatal("other-type instance leaked into candidate set")
		}
	}
}

func TestCandidatesNameTieBreak(t *testing.T) {
	r := New()
	for _, n := range []string{"twin-b", "twin-a"} {
		r.MustRegister(&Instance{Name: n, Type: "mixer", Resources: resource.MB(4, 4)})
	}
	cs := r.Candidates(Spec{Type: "mixer"})
	if len(cs) != 2 || cs[0].Name != "twin-a" || !cs[0].Chosen {
		t.Fatalf("tie-break winner wrong: %+v", cs)
	}
	if !strings.Contains(cs[1].Rejection, "name tie-break behind twin-a") {
		t.Fatalf("tie-break rejection wrong: %+v", cs[1])
	}
}

func TestCandidatesEmptyForUnknownType(t *testing.T) {
	r := New()
	if cs := r.Candidates(Spec{Type: "ghost"}); len(cs) != 0 {
		t.Fatalf("unknown type should yield no candidates: %+v", cs)
	}
}
