package registry

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeClock is an adjustable clock for lease tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func leased(c *fakeClock) *LeasedRegistry    { return NewLeased(c.now) }
func inst(name, typ string) *Instance        { return &Instance{Name: name, Type: typ} }
func specOf(typ string) Spec                 { return Spec{Type: typ} }
func names(ms []Match) (out []string) {
	for _, m := range ms {
		out = append(out, m.Instance.Name)
	}
	sort.Strings(out)
	return
}

func TestRegisterWithTTLAndExpiry(t *testing.T) {
	c := newFakeClock()
	r := leased(c)
	if err := r.RegisterWithTTL(inst("a", "player"), 0); err == nil {
		t.Error("non-positive TTL should fail")
	}
	if err := r.RegisterWithTTL(inst("a", "player"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if r.Best(specOf("player")) == nil {
		t.Fatal("instance should be discoverable while leased")
	}
	c.advance(9 * time.Second)
	if r.Best(specOf("player")) == nil {
		t.Fatal("lease still valid at 9s")
	}
	c.advance(2 * time.Second)
	if r.Best(specOf("player")) != nil {
		t.Error("expired instance still discoverable")
	}
	if r.Get("a") != nil {
		t.Error("expired instance still registered after sweep")
	}
}

func TestRenew(t *testing.T) {
	c := newFakeClock()
	r := leased(c)
	if err := r.RegisterWithTTL(inst("a", "player"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	c.advance(8 * time.Second)
	if !r.Renew("a", 10*time.Second) {
		t.Fatal("renew of live lease failed")
	}
	c.advance(8 * time.Second) // 16s after registration, 8s after renewal
	if r.Best(specOf("player")) == nil {
		t.Error("renewed lease expired early")
	}
	if r.Renew("ghost", time.Second) {
		t.Error("renewing an unknown instance should fail")
	}
	if r.Renew("a", 0) {
		t.Error("non-positive renewal should fail")
	}
}

func TestRenewPermanentRegistration(t *testing.T) {
	c := newFakeClock()
	r := leased(c)
	r.MustRegister(inst("perm", "player")) // embedded permanent registration
	if r.Renew("perm", time.Second) {
		t.Error("permanent registrations have no lease to renew")
	}
	c.advance(time.Hour)
	if r.Best(specOf("player")) == nil {
		t.Error("permanent registration must never expire")
	}
}

func TestSweepReturnsExpired(t *testing.T) {
	c := newFakeClock()
	r := leased(c)
	for _, n := range []string{"a", "b"} {
		if err := r.RegisterWithTTL(inst(n, "t"), 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterWithTTL(inst("c", "t"), time.Hour); err != nil {
		t.Fatal(err)
	}
	c.advance(6 * time.Second)
	expired := r.Sweep()
	sort.Strings(expired)
	if len(expired) != 2 || expired[0] != "a" || expired[1] != "b" {
		t.Errorf("Sweep = %v", expired)
	}
	if got := names(r.Find(specOf("t"))); len(got) != 1 || got[0] != "c" {
		t.Errorf("survivors = %v", got)
	}
	if again := r.Sweep(); len(again) != 0 {
		t.Errorf("second sweep = %v", again)
	}
}

func TestLeasedUnregisterDropsLease(t *testing.T) {
	c := newFakeClock()
	r := leased(c)
	if err := r.RegisterWithTTL(inst("a", "t"), time.Second); err != nil {
		t.Fatal(err)
	}
	if !r.Unregister("a") {
		t.Fatal("unregister failed")
	}
	c.advance(time.Hour)
	if expired := r.Sweep(); len(expired) != 0 {
		t.Errorf("lease survived unregister: %v", expired)
	}
}

func TestNewLeasedDefaultClock(t *testing.T) {
	r := NewLeased(nil)
	if err := r.RegisterWithTTL(inst("a", "t"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if r.Best(specOf("t")) == nil {
		t.Error("instance should be live under the wall clock")
	}
}

func TestExpiryHook(t *testing.T) {
	c := newFakeClock()
	r := leased(c)
	var calls [][]string
	r.SetExpiryHook(func(names []string) { calls = append(calls, names) })
	if err := r.RegisterWithTTL(inst("a", "player"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterWithTTL(inst("b", "decoder"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	r.Sweep()
	if len(calls) != 0 {
		t.Fatalf("hook fired with nothing expired: %v", calls)
	}
	c.advance(6 * time.Second)
	r.Sweep()
	if len(calls) != 1 {
		t.Fatalf("hook fired %d times, want once", len(calls))
	}
	got := append([]string(nil), calls[0]...)
	sort.Strings(got)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("hook received %v, want [a b]", got)
	}
	// A removed hook stays silent.
	r.SetExpiryHook(nil)
	if err := r.RegisterWithTTL(inst("c", "player"), time.Second); err != nil {
		t.Fatal(err)
	}
	c.advance(2 * time.Second)
	r.Sweep()
	if len(calls) != 1 {
		t.Fatalf("removed hook still fired: %d calls", len(calls))
	}
}

// lockedClock is a goroutine-safe adjustable clock for the race test.
type lockedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *lockedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *lockedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestSweepAtomicWithReRegister(t *testing.T) {
	// Regression: Sweep used to decide expiry under l.mu but call
	// Registry.Unregister after releasing it. A RegisterWithTTL of the
	// same name in that window re-registered a live instance only to have
	// the in-flight sweep tear it down, leaving a future-dated lease with
	// no instance behind it. Run sweeps against concurrent re-registration
	// and check the invariant: every unexpired lease has a live instance.
	// Spread the goroutines over several OS threads (even on a one-CPU
	// host) and make the sweep long enough that the kernel preempts it
	// mid-pass, so the re-registering goroutines genuinely overlap it.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 50000
	for iter := 0; iter < 3; iter++ {
		clock := &lockedClock{t: time.Unix(1000, 0)}
		r := NewLeased(clock.now)
		for i := 0; i < n; i++ {
			if err := r.RegisterWithTTL(inst(fmt.Sprintf("svc-%d", i), "player"), time.Second); err != nil {
				t.Fatal(err)
			}
		}
		clock.advance(2 * time.Second) // every lease is now expired
		// A start gate lines the goroutines up so the sweep and the
		// re-registrations actually overlap instead of running back to back.
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			<-start
			r.Sweep()
		}()
		for g := 0; g < 2; g++ {
			go func(parity int) {
				defer wg.Done()
				<-start
				// Reverse order widens the overlap with the sweep's iteration.
				for i := n - 1 - parity; i >= 0; i -= 2 {
					r.RegisterWithTTL(inst(fmt.Sprintf("svc-%d", i), "player"), time.Hour)
				}
			}(g)
		}
		close(start)
		wg.Wait()
		now := clock.now()
		r.mu.Lock()
		for name, at := range r.expiry {
			if at.After(now) && r.Get(name) == nil {
				r.mu.Unlock()
				t.Fatalf("iter %d: lease %q is live until %v but its instance was torn down by a concurrent sweep", iter, name, at)
			}
		}
		r.mu.Unlock()
	}
}
