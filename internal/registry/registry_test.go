package registry

import (
	"testing"

	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

func mp3Player() *Instance {
	return &Instance{
		Name:      "mp3-player-1",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pc"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Range(10, 50))),
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatPCM))),
		Resources: resource.MB(16, 30),
		SizeMB:    4,
	}
}

func wavPlayer() *Instance {
	return &Instance{
		Name:      "wav-player-1",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pda"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatWAV)), qos.P(qos.DimFrameRate, qos.Range(10, 44))),
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatPCM))),
		Resources: resource.MB(8, 15),
		SizeMB:    2,
	}
}

func audioServer() *Instance {
	return &Instance{
		Name:          "audio-server-1",
		Type:          "audio-server",
		Output:        qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Scalar(40))),
		OutCapability: qos.V(qos.P(qos.DimFrameRate, qos.Range(10, 60))),
		Adjustable:    map[string]bool{qos.DimFrameRate: true},
		Resources:     resource.MB(64, 50),
		SizeMB:        10,
	}
}

func TestInstanceValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Instance)
	}{
		{"empty name", func(i *Instance) { i.Name = "" }},
		{"empty type", func(i *Instance) { i.Type = "" }},
		{"bad qos", func(i *Instance) { i.Input = qos.Vector{qos.P("", qos.Scalar(1))} }},
		{"bad resources", func(i *Instance) { i.Resources = resource.Vector{-1} }},
		{"negative size", func(i *Instance) { i.SizeMB = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := mp3Player()
			c.mut(in)
			if err := in.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
	if err := mp3Player().Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestCapabilityMergesOutput(t *testing.T) {
	s := audioServer()
	c := s.Capability()
	if v, _ := c.Get(qos.DimFormat); !v.Equal(qos.Symbol(qos.FormatMP3)) {
		t.Errorf("capability format = %s", v)
	}
	if v, _ := c.Get(qos.DimFrameRate); !v.Equal(qos.Range(10, 60)) {
		t.Errorf("capability framerate = %s, want adjustable range", v)
	}
}

func TestRegisterUnregisterGet(t *testing.T) {
	r := New()
	if err := r.Register(&Instance{}); err == nil {
		t.Error("invalid instance should be rejected")
	}
	r.MustRegister(mp3Player())
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.Get("mp3-player-1") == nil {
		t.Error("Get failed")
	}
	// Replace is allowed.
	upd := mp3Player()
	upd.SizeMB = 99
	r.MustRegister(upd)
	if r.Len() != 1 || r.Get("mp3-player-1").SizeMB != 99 {
		t.Error("re-register should replace")
	}
	if !r.Unregister("mp3-player-1") || r.Unregister("mp3-player-1") {
		t.Error("Unregister semantics wrong")
	}
}

func TestAllSorted(t *testing.T) {
	r := New()
	r.MustRegister(wavPlayer())
	r.MustRegister(mp3Player())
	all := r.All()
	if len(all) != 2 || all[0].Name != "mp3-player-1" || all[1].Name != "wav-player-1" {
		t.Errorf("All = %v", all)
	}
}

func TestFindTypeAndAttrs(t *testing.T) {
	r := New()
	r.MustRegister(mp3Player())
	r.MustRegister(wavPlayer())
	r.MustRegister(audioServer())

	if ms := r.Find(Spec{Type: "video-player"}); len(ms) != 0 {
		t.Errorf("unknown type should fail discovery, got %v", ms)
	}
	ms := r.Find(Spec{Type: "audio-player"})
	if len(ms) != 2 {
		t.Fatalf("Find(audio-player) = %d results", len(ms))
	}
	ms = r.Find(Spec{Type: "audio-player", Attrs: map[string]string{"platform": "pda"}})
	if len(ms) != 1 || ms[0].Instance.Name != "wav-player-1" {
		t.Errorf("attr filter failed: %v", ms)
	}
}

func TestFindRanksByQoSCloseness(t *testing.T) {
	r := New()
	r.MustRegister(mp3Player())
	r.MustRegister(wavPlayer())
	// The graph will feed MP3 at 40fps: the MP3 player should rank first.
	spec := Spec{
		Type:  "audio-player",
		Input: qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Scalar(40))),
	}
	ms := r.Find(spec)
	if len(ms) != 2 {
		t.Fatalf("got %d matches", len(ms))
	}
	if ms[0].Instance.Name != "mp3-player-1" {
		t.Errorf("ranking = [%s, %s], want mp3 player first", ms[0].Instance.Name, ms[1].Instance.Name)
	}
	if ms[0].Score <= ms[1].Score {
		t.Errorf("scores = %d, %d", ms[0].Score, ms[1].Score)
	}
}

func TestFindRanksByOutputCapability(t *testing.T) {
	r := New()
	fixed := audioServer()
	fixed.Name = "fixed-server"
	fixed.OutCapability = nil
	fixed.Adjustable = nil
	fixed.Output = qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatMP3)), qos.P(qos.DimFrameRate, qos.Scalar(5)))
	r.MustRegister(fixed)
	r.MustRegister(audioServer())

	spec := Spec{
		Type:   "audio-server",
		Output: qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 45))),
	}
	ms := r.Find(spec)
	if len(ms) != 2 || ms[0].Instance.Name != "audio-server-1" {
		t.Fatalf("capability ranking failed: %+v", ms)
	}
}

func TestFindTieBreaksBySmallerFootprintThenName(t *testing.T) {
	r := New()
	big := wavPlayer()
	big.Name = "big-player"
	big.Attrs = nil
	big.Resources = resource.MB(100, 100)
	small := wavPlayer()
	small.Name = "small-player"
	small.Attrs = nil
	r.MustRegister(big)
	r.MustRegister(small)
	ms := r.Find(Spec{Type: "audio-player"})
	if len(ms) != 2 || ms[0].Instance.Name != "small-player" {
		t.Errorf("footprint tie-break failed: %v", ms[0].Instance.Name)
	}

	twin := wavPlayer()
	twin.Name = "a-player"
	twin.Attrs = nil
	r.MustRegister(twin)
	ms = r.Find(Spec{Type: "audio-player"})
	if ms[0].Instance.Name != "a-player" {
		t.Errorf("name tie-break failed: %v", ms[0].Instance.Name)
	}
}

func TestBest(t *testing.T) {
	r := New()
	if r.Best(Spec{Type: "audio-player"}) != nil {
		t.Error("Best on empty registry should be nil")
	}
	r.MustRegister(mp3Player())
	if got := r.Best(Spec{Type: "audio-player"}); got == nil || got.Name != "mp3-player-1" {
		t.Errorf("Best = %v", got)
	}
}

func TestFindUnconstrainedInputDimensionCounts(t *testing.T) {
	r := New()
	anyIn := &Instance{Name: "sink", Type: "sink"}
	r.MustRegister(anyIn)
	ms := r.Find(Spec{Type: "sink", Input: qos.V(qos.P("x", qos.Scalar(1)))})
	if len(ms) != 1 || ms[0].Score != 1 {
		t.Errorf("unconstrained input should score: %+v", ms)
	}
}
