package experiments

import (
	"testing"
	"time"

	"ubiqos/internal/core"
)

// TestRunFaultDrillAcceptance encodes the drill's acceptance criterion:
// with the seeded schedule crashing two of the five desktops mid-stream,
// every affected session is recovered (possibly degraded) within the
// backoff cap, none is lost, and nothing stays bound to a dead device.
func TestRunFaultDrillAcceptance(t *testing.T) {
	cfg := DefaultFaultDrillConfig()
	// Millisecond backoffs keep the test fast without changing the
	// ladder's shape.
	cfg.Supervisor = core.SupervisorOptions{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
	res, err := RunFaultDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Errorf("lost = %d, want 0 (result %+v)", res.Lost, res)
	}
	if res.BoundToDead != 0 {
		t.Errorf("boundToDead = %d, want 0 (placements on %v)", res.BoundToDead, res.DownDevices)
	}
	if len(res.Remaining) != cfg.Sessions {
		t.Errorf("remaining = %v, want all %d sessions", res.Remaining, cfg.Sessions)
	}
	// Two desktops crash and stay down; at least one hosted something.
	if len(res.DownDevices) != 2 {
		t.Errorf("down devices = %v, want the 2 crash victims", res.DownDevices)
	}
	if res.Recovered == 0 {
		t.Errorf("recovered = 0; the crashes hit no session (schedule %+v)", res.Schedule)
	}
	if res.FaultsInjected != 4 {
		t.Errorf("faults injected = %d, want 4", res.FaultsInjected)
	}
	if res.RecoveryP50Ms <= 0 || res.RecoveryP95Ms < res.RecoveryP50Ms {
		t.Errorf("latency quantiles p50=%g p95=%g", res.RecoveryP50Ms, res.RecoveryP95Ms)
	}
}

// TestRunFaultDrillDeterministicSchedule re-runs the drill and checks the
// injected schedule (pure data from the seed) is identical.
func TestRunFaultDrillDeterministicSchedule(t *testing.T) {
	cfg := DefaultFaultDrillConfig()
	cfg.Supervisor = core.SupervisorOptions{BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	a, err := RunFaultDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Schedule.Faults) != len(b.Schedule.Faults) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a.Schedule.Faults), len(b.Schedule.Faults))
	}
	for i := range a.Schedule.Faults {
		if a.Schedule.Faults[i] != b.Schedule.Faults[i] {
			t.Errorf("fault %d differs: %+v vs %+v", i, a.Schedule.Faults[i], b.Schedule.Faults[i])
		}
	}
}

func TestRunFaultDrillValidation(t *testing.T) {
	if _, err := RunFaultDrill(FaultDrillConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}
