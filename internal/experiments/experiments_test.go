package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestTable1Shape verifies the regenerated Table 1 preserves the paper's
// shape: the heuristic is near-optimal on average (paper: 91%) and finds
// the exact optimum on a majority of graphs (paper: 60%); the random
// baseline is far below (paper: 25% average) and never exactly optimal.
// A reduced graph count keeps the test fast; the shape is stable.
func TestTable1Shape(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Graphs = 60
	r, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	random, ours, optimal := r.Rows[0], r.Rows[1], r.Rows[2]
	if random.Name != "Random" || ours.Name != "Our Heuristic" || optimal.Name != "Optimal" {
		t.Fatalf("row order: %v %v %v", random.Name, ours.Name, optimal.Name)
	}
	if optimal.AvgRatio != 1 || optimal.OptimalPct != 100 {
		t.Errorf("optimal row = %+v", optimal)
	}
	if ours.AvgRatio < 0.80 || ours.AvgRatio > 1 {
		t.Errorf("heuristic average ratio = %.2f, want ≈0.91", ours.AvgRatio)
	}
	if ours.OptimalPct < 50 {
		t.Errorf("heuristic optimal%% = %.0f, want a majority", ours.OptimalPct)
	}
	if random.AvgRatio > 0.5 {
		t.Errorf("random average ratio = %.2f, want far below heuristic", random.AvgRatio)
	}
	if random.OptimalPct > 5 {
		t.Errorf("random optimal%% = %.0f, want ≈0", random.OptimalPct)
	}
	if ours.AvgRatio <= random.AvgRatio {
		t.Error("heuristic must dominate random")
	}
	out := FormatTable1(r)
	for _, want := range []string{"Algorithms", "Random", "Our Heuristic", "Optimal"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable1ConfigValidation(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Graphs = 0
	if _, err := RunTable1(cfg); err == nil {
		t.Error("zero graphs should fail")
	}
	// Impossible devices: every draw is infeasible.
	cfg = DefaultTable1Config()
	cfg.Graphs = 1
	cfg.MaxAttemptsPerGraph = 2
	cfg.Devices[0].Avail = cfg.Devices[0].Avail.Scale(0)
	cfg.Devices[1].Avail = cfg.Devices[1].Avail.Scale(0)
	if _, err := RunTable1(cfg); err == nil {
		t.Error("infeasible setting should fail")
	}
}

// TestFig5Shape verifies the regenerated Figure 5 preserves the paper's
// shape: the heuristic consistently maintains the highest success rate,
// random benefits from dynamic distribution (beats fixed), and fixed is
// lowest. A shortened horizon keeps the test fast.
func TestFig5Shape(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Requests = 1000
	cfg.HorizonHours = 200
	r, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	heu, rnd, fix := r.Series[0], r.Series[1], r.Series[2]
	if heu.Name != "Our Heuristic" || rnd.Name != "Random" || fix.Name != "Fixed" {
		t.Fatalf("series order: %v %v %v", heu.Name, rnd.Name, fix.Name)
	}
	if !(heu.Overall > rnd.Overall && rnd.Overall > fix.Overall) {
		t.Errorf("ordering violated: heuristic %.3f, random %.3f, fixed %.3f",
			heu.Overall, rnd.Overall, fix.Overall)
	}
	if heu.Overall < 0.6 {
		t.Errorf("heuristic overall = %.3f, too low", heu.Overall)
	}
	// "Our heuristic algorithm consistently maintains the highest success
	// rate": per-window, the heuristic never drops below the others.
	for i := range r.WindowStartHours {
		h, rr := heu.Rates[i], rnd.Rates[i]
		if math.IsNaN(h) || math.IsNaN(rr) {
			continue
		}
		if h < rr {
			t.Errorf("window %d: heuristic %.3f below random %.3f", i, h, rr)
		}
	}
	out := FormatFig5(r)
	if !strings.Contains(out, "time(hr)") || !strings.Contains(out, "overall") {
		t.Errorf("FormatFig5 output:\n%s", out)
	}
}

func TestFig5ConfigValidation(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Requests = 0
	if _, err := RunFig5(cfg); err == nil {
		t.Error("zero requests should fail")
	}
}

// TestFig34Scenario verifies the Figure 3/4 reproduction: the per-event
// service configuration results match the paper's, sessions sustain the
// requested rates across handoffs, downloading dominates the conferencing
// overhead, and the PC→PDA handoff costs more than PDA→PC.
func TestFig34Scenario(t *testing.T) {
	cfg := DefaultFig34Config()
	// A generous scale keeps frame intervals far above timer granularity
	// even when the whole test suite runs in parallel under -race.
	cfg.Scale = 0.15
	cfg.PlayModeled = 3 * time.Second
	r, err := RunFig34(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) != 4 {
		t.Fatalf("events = %d", len(r.Events))
	}
	e1, e2, e3, e4 := r.Events[0], r.Events[1], r.Events[2], r.Events[3]

	// Figure 3: configuration results.
	if e1.Configuration["audio-server(audio-server-1)"] != "desktop1" ||
		e1.Configuration["audio-player(audio-player-pc)"] != "desktop2" {
		t.Errorf("event 1 configuration = %v", e1.Configuration)
	}
	if e2.Configuration["transcoder(mpeg2wav-1)"] != "desktop2" ||
		e2.Configuration["audio-player(audio-player-pda)"] != "jornada" {
		t.Errorf("event 2 configuration = %v", e2.Configuration)
	}
	if e3.Configuration["audio-player(audio-player-pc)"] != "desktop3" {
		t.Errorf("event 3 configuration = %v", e3.Configuration)
	}
	if e4.Configuration["gateway(gateway-1)"] != "ws2" ||
		e4.Configuration["lip-synchronizer(lipsync-1)"] != "ws2" ||
		e4.Configuration["video-recorder(video-recorder-1)"] != "ws1" ||
		e4.Configuration["video-player(video-player-1)"] != "ws3" {
		t.Errorf("event 4 configuration = %v", e4.Configuration)
	}

	// Figure 3: measured QoS ≈ 40 fps audio; 25/6 fps A/V conferencing.
	for i, ev := range []Fig34Event{e1, e2, e3} {
		if got := ev.MeasuredQoS["audio"]; math.Abs(got-40) > 10 {
			t.Errorf("event %d audio = %.1f fps, want ≈40", i+1, got)
		}
	}
	if got := e4.MeasuredQoS["video"]; math.Abs(got-25) > 7 {
		t.Errorf("event 4 video = %.1f fps, want ≈25", got)
	}
	if got := e4.MeasuredQoS["audio"]; math.Abs(got-6) > 2.5 {
		t.Errorf("event 4 audio = %.1f fps, want ≈6", got)
	}

	// Figure 4: overhead shapes.
	if e1.Timing.Downloading != 0 || e2.Timing.Downloading != 0 || e3.Timing.Downloading != 0 {
		t.Error("audio events must have no downloading overhead (pre-installed)")
	}
	if e4.Timing.Downloading <= e4.Timing.Composition+e4.Timing.Distribution+e4.Timing.InitOrHandoff {
		t.Errorf("downloading must dominate event 4: %+v", e4.Timing)
	}
	if e4.Timing.Downloading < 500*time.Millisecond {
		t.Errorf("event 4 downloading = %v, want on the order of the paper's ~1.5s", e4.Timing.Downloading)
	}
	if e2.Timing.InitOrHandoff <= e3.Timing.InitOrHandoff {
		t.Errorf("PC→PDA handoff (%v) must exceed PDA→PC (%v)",
			e2.Timing.InitOrHandoff, e3.Timing.InitOrHandoff)
	}
	if e1.Timing.InitOrHandoff >= e2.Timing.InitOrHandoff {
		t.Error("initial start must be cheaper than the wireless handoff")
	}

	// Formatting helpers cover all events.
	f3 := FormatFig3(r)
	if !strings.Contains(f3, "Event 4") || !strings.Contains(f3, "measured QoS") {
		t.Errorf("FormatFig3:\n%s", f3)
	}
	f4 := FormatFig4(r)
	if !strings.Contains(f4, "downloading") {
		t.Errorf("FormatFig4:\n%s", f4)
	}
}

func TestFig34ConfigValidation(t *testing.T) {
	if _, err := RunFig34(Fig34Config{}); err == nil {
		t.Error("zero config should fail")
	}
}

// TestExperimentsDeterministic pins the reproducibility contract: the same
// seed yields bit-identical experiment outputs.
func TestExperimentsDeterministic(t *testing.T) {
	t1 := DefaultTable1Config()
	t1.Graphs = 15
	a, err := RunTable1(t1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable1(t1)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTable1(a) != FormatTable1(b) {
		t.Error("Table 1 is not deterministic for a fixed seed")
	}

	f5 := DefaultFig5Config()
	f5.Requests = 150
	f5.HorizonHours = 50
	ra, err := RunFig5(f5)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunFig5(f5)
	if err != nil {
		t.Fatal(err)
	}
	if FormatFig5(ra) != FormatFig5(rb) {
		t.Error("Figure 5 is not deterministic for a fixed seed")
	}
	// Different seeds genuinely change the trace.
	f5.Seed++
	rc, err := RunFig5(f5)
	if err != nil {
		t.Fatal(err)
	}
	if FormatFig5(ra) == FormatFig5(rc) {
		t.Error("different seeds produced identical Figure 5 output")
	}
}

// TestFig5OrderingRobustAcrossSeeds verifies the headline ordering is not
// an artifact of one trace: within every independently seeded run the
// heuristic beats random beats fixed, and the means across seeds keep the
// same ordering. (Short traces make the cross-seed min/max bands overlap,
// so per-seed ordering — not band separation — is the right claim.)
func TestFig5OrderingRobustAcrossSeeds(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Requests = 400
	cfg.HorizonHours = 80
	for s := int64(0); s < 3; s++ {
		run := cfg
		run.Seed = cfg.Seed + s
		r, err := RunFig5(run)
		if err != nil {
			t.Fatal(err)
		}
		h, rr, f := r.Series[0].Overall, r.Series[1].Overall, r.Series[2].Overall
		if !(h > rr && rr > f) {
			t.Errorf("seed %d: ordering violated: %.3f / %.3f / %.3f", run.Seed, h, rr, f)
		}
	}
	sums, err := RunFig5Seeds(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	heu, rnd, fix := sums[0], sums[1], sums[2]
	if !(heu.Mean > rnd.Mean && rnd.Mean > fix.Mean) {
		t.Errorf("mean ordering violated: %.3f / %.3f / %.3f", heu.Mean, rnd.Mean, fix.Mean)
	}
	if heu.Min > heu.Max || rnd.Min > rnd.Max || fix.Min > fix.Max {
		t.Error("min/max bookkeeping inverted")
	}
	if _, err := RunFig5Seeds(cfg, 0); err == nil {
		t.Error("zero seeds should fail")
	}
}
