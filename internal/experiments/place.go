package experiments

import (
	"fmt"

	"ubiqos/internal/core"
	"ubiqos/internal/distributor"
)

// PlaceByName resolves a solver name (the daemon's -place flag) to a
// placement function. The empty string and "heuristic" select the
// default greedy heuristic (a nil PlaceFunc).
func PlaceByName(name string) (core.PlaceFunc, error) {
	switch name {
	case "", "heuristic":
		return nil, nil
	case "optimal":
		return distributor.Optimal, nil
	case "optimal-parallel":
		return func(p *distributor.Problem) (distributor.Assignment, float64, error) {
			return distributor.OptimalParallel(p, 0)
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown placement algorithm %q (want heuristic, optimal, or optimal-parallel)", name)
}
