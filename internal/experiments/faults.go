package experiments

import (
	"fmt"
	"sort"
	"time"

	"ubiqos/internal/composer"
	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/domain"
	"ubiqos/internal/faultinject"
	"ubiqos/internal/metrics"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/resource"
)

// FaultDrillConfig parameterizes a seeded chaos drill: N audio sessions
// on the chaos smart space, a generated fault schedule injected
// mid-stream, and the recovery supervisor cleaning up after it.
type FaultDrillConfig struct {
	// Scale is the emulation time scale (0.01 = 100× fast-forward; the
	// 30s modeled fault window then takes 300ms of wall time).
	Scale float64
	// Sessions is how many concurrent audio sessions to start before the
	// faults begin. All use the PDA portal.
	Sessions int
	// Seed drives both the fault schedule and the supervisor's retry
	// jitter, so a drill is reproducible end to end.
	Seed int64
	// Crashes, Degrades, Flaps, Stalls count the scheduled faults per
	// kind (see faultinject.Params).
	Crashes  int
	Degrades int
	Flaps    int
	Stalls   int
	// Window is the modeled span the faults are spread over.
	Window time.Duration
	// RecoverAfter delays each fault's paired undo; zero makes every
	// fault permanent, which keeps the end-state dead-device check
	// strict (nothing may remain bound to a device that never rejoins).
	RecoverAfter time.Duration
	// Supervisor overrides the recovery supervisor's tuning; its Bus and
	// Seed are filled in by RunFaultDrill.
	Supervisor core.SupervisorOptions
}

// DefaultFaultDrillConfig is the benchfaults default: three sessions on
// the six-device space, two of the five desktops crashed mid-stream plus
// a link degradation and a transcoder stall, no undos.
func DefaultFaultDrillConfig() FaultDrillConfig {
	return FaultDrillConfig{
		Scale:    0.01,
		Sessions: 3,
		Seed:     42,
		Crashes:  2,
		Degrades: 1,
		Stalls:   1,
		Window:   30 * time.Second,
	}
}

// FaultDrillResult is what a drill run reports (the BENCH_faults.json
// payload).
type FaultDrillResult struct {
	// Sessions is how many sessions were streaming when the faults hit.
	Sessions int `json:"sessions"`
	// FaultsInjected counts successfully applied faults.
	FaultsInjected int `json:"faultsInjected"`
	// Schedule is the injected fault schedule, for reproduction.
	Schedule faultinject.Schedule `json:"schedule"`
	// Recovered / Degraded / Lost / Attempts / Retries mirror the
	// supervisor's lifetime counters (Degraded is a subset of Recovered).
	Recovered int64 `json:"recovered"`
	Degraded  int64 `json:"degraded"`
	Lost      int64 `json:"lost"`
	Attempts  int64 `json:"attempts"`
	Retries   int64 `json:"retries"`
	// BoundToDead counts components still placed on a down device after
	// the supervisor settled — the acceptance criterion is zero.
	BoundToDead int `json:"boundToDead"`
	// DownDevices lists devices still down at the end of the drill.
	DownDevices []string `json:"downDevices"`
	// Remaining lists the sessions still active at the end.
	Remaining []string `json:"remaining"`
	// RecoveryP50Ms / RecoveryP95Ms summarize fault-to-healthy latency in
	// wall-clock milliseconds (zero when nothing needed recovery).
	RecoveryP50Ms float64 `json:"recoveryP50Ms"`
	RecoveryP95Ms float64 `json:"recoveryP95Ms"`
	// WallMs is the drill's total wall-clock time.
	WallMs float64 `json:"wallMs"`
}

// BuildChaosSpace constructs the fault-drill domain: five desktops and
// the Jornada PDA, full Ethernet mesh between desktops, WLAN to the PDA.
// It registers the audio-on-demand services with everything
// pre-installed, so recovery never waits on downloads. Unlike the Figure
// 3/4 space, nothing pins the audio server to a named desktop — a
// crashed host must be replaceable.
func BuildChaosSpace(scale float64, place core.PlaceFunc) (*domain.Domain, error) {
	d, err := domain.New("chaos-space", domain.Options{Scale: scale, Place: place})
	if err != nil {
		return nil, err
	}
	desktops := []device.ID{"desktop1", "desktop2", "desktop3", "desktop4", "desktop5"}
	for _, id := range desktops {
		if _, err := d.AddDevice(id, device.ClassDesktop, resource.MB(512, 200), map[string]string{"platform": "pc"}); err != nil {
			return nil, err
		}
	}
	if _, err := d.AddDevice("jornada", device.ClassPDA, resource.MB(64, 100), map[string]string{"platform": "pda"}); err != nil {
		return nil, err
	}
	for i, a := range desktops {
		for _, b := range desktops[i+1:] {
			if err := d.Connect(a, b, netsim.Ethernet); err != nil {
				return nil, err
			}
		}
		if err := d.Connect(a, "jornada", netsim.WLAN); err != nil {
			return nil, err
		}
	}

	d.Registry.MustRegister(&registry.Instance{
		Name:          "audio-server-1",
		Type:          "audio-server",
		Output:        qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatMPEG)), qos.P(qos.DimFrameRate, qos.Scalar(40))),
		OutCapability: qos.V(qos.P(qos.DimFrameRate, qos.Range(5, 60))),
		Adjustable:    map[string]bool{qos.DimFrameRate: true},
		Resources:     resource.MB(64, 50),
		SizeMB:        12,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "audio-player-pda",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pda"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatWAV)), qos.P(qos.DimFrameRate, qos.Range(10, 44))),
		Resources: resource.MB(8, 10),
		SizeMB:    2,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:        "mpeg2wav-1",
		Type:        composer.TypeTranscoder,
		Attrs:       map[string]string{"from": audioFormatMPEG, "to": audioFormatWAV},
		Input:       qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatMPEG))),
		Output:      qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatWAV))),
		PassThrough: map[string]bool{qos.DimFrameRate: true},
		Resources:   resource.MB(12, 25),
		SizeMB:      3,
	})
	for _, dev := range append(desktops, "jornada") {
		for _, comp := range []string{"audio-server-1", "audio-player-pda", "mpeg2wav-1"} {
			d.Repo.MarkInstalled(string(dev), comp)
		}
	}
	return d, nil
}

// ChaosAudioApp is the audio-on-demand graph with an unpinned server:
// the distributor picks the host, so a crashed host is replaceable.
func ChaosAudioApp() *composer.AbstractGraph {
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "server", Spec: registry.Spec{Type: "audio-server"}})
	ag.MustAddNode(&composer.AbstractNode{ID: "player", Spec: registry.Spec{Type: "audio-player"}, Pin: core.ClientRole})
	ag.MustAddEdge("server", "player", 1.5)
	return ag
}

// RunFaultDrill builds the chaos space, streams cfg.Sessions audio
// sessions, injects the seeded fault schedule mid-stream, waits for the
// recovery supervisor to settle, and reports what happened.
func RunFaultDrill(cfg FaultDrillConfig) (*FaultDrillResult, error) {
	if cfg.Scale <= 0 || cfg.Sessions <= 0 || cfg.Window <= 0 {
		return nil, fmt.Errorf("experiments: invalid fault drill config %+v", cfg)
	}
	start := time.Now()
	// The optimal solver is the drill's primary placement: recovery then
	// exercises the full degradation ladder, falling back to the greedy
	// heuristic (which cannot backtrack around a degraded link) only past
	// the deadline.
	dom, err := BuildChaosSpace(cfg.Scale, distributor.Optimal)
	if err != nil {
		return nil, err
	}
	defer dom.Close()

	supOpts := cfg.Supervisor
	supOpts.Bus = dom.Bus
	if supOpts.Seed == 0 {
		supOpts.Seed = cfg.Seed
	}
	sup, err := core.NewSupervisor(dom.Configurator, supOpts)
	if err != nil {
		return nil, err
	}
	defer sup.Stop()

	for i := 0; i < cfg.Sessions; i++ {
		sid := fmt.Sprintf("drill-%d", i+1)
		if _, err := dom.StartApp(core.Request{
			SessionID:    sid,
			App:          ChaosAudioApp(),
			UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
			ClientDevice: "jornada",
		}); err != nil {
			return nil, fmt.Errorf("experiments: start %s: %w", sid, err)
		}
	}

	sched, err := faultinject.Generate(chaosParams(dom, cfg))
	if err != nil {
		return nil, err
	}
	inj, err := faultinject.NewInjector(dom, sched)
	if err != nil {
		return nil, err
	}
	if err := inj.Run(dom.Net.Scale(), nil); err != nil {
		return nil, fmt.Errorf("experiments: inject: %w", err)
	}
	if !sup.AwaitIdle(30 * time.Second) {
		return nil, fmt.Errorf("experiments: supervisor did not settle")
	}

	stats := sup.Stats()
	res := &FaultDrillResult{
		Sessions:       cfg.Sessions,
		FaultsInjected: int(dom.Metrics.Counter(metrics.FaultsInjected).Value()),
		Schedule:       sched,
		Recovered:      stats.Recovered,
		Degraded:       stats.Degraded,
		Lost:           stats.Lost,
		Attempts:       stats.Attempts,
		Retries:        stats.Retries,
	}
	for _, d := range dom.Devices.All() {
		if !d.Up() {
			res.DownDevices = append(res.DownDevices, string(d.ID))
		}
	}
	for _, sid := range dom.Configurator.SessionIDs() {
		active := dom.Configurator.Session(sid)
		if active == nil {
			continue
		}
		res.Remaining = append(res.Remaining, sid)
		for _, dev := range active.Placement {
			if d := dom.Devices.Get(dev); d == nil || !d.Up() {
				res.BoundToDead++
			}
		}
	}
	if h := dom.Metrics.Histogram(metrics.RecoveryLatency); h.Count() > 0 {
		res.RecoveryP50Ms = float64(h.Quantile(0.5)) / float64(time.Millisecond)
		res.RecoveryP95Ms = float64(h.Quantile(0.95)) / float64(time.Millisecond)
	}
	res.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}

// chaosParams assembles faultinject parameters from the live domain,
// protecting the PDA portal (losing the portal is unrecoverable by
// design) and sorting every candidate list so the schedule depends only
// on the seed.
func chaosParams(dom *domain.Domain, cfg FaultDrillConfig) faultinject.Params {
	p := faultinject.Params{
		Seed:         cfg.Seed,
		Duration:     cfg.Window,
		Crashes:      cfg.Crashes,
		Degrades:     cfg.Degrades,
		Flaps:        cfg.Flaps,
		Stalls:       cfg.Stalls,
		RecoverAfter: cfg.RecoverAfter,
		Protected:    map[device.ID]bool{"jornada": true},
	}
	for _, d := range dom.Devices.All() {
		p.Devices = append(p.Devices, d.ID)
	}
	for pair := range dom.Links.Snapshot() {
		p.Links = append(p.Links, pair)
	}
	sort.Slice(p.Links, func(i, j int) bool {
		if p.Links[i][0] != p.Links[j][0] {
			return p.Links[i][0] < p.Links[j][0]
		}
		return p.Links[i][1] < p.Links[j][1]
	})
	for _, inst := range dom.Registry.All() {
		p.Services = append(p.Services, inst.Name)
	}
	return p
}
