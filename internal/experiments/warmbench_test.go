package experiments

import "testing"

// TestWarmBenchSmall runs the crash re-solve comparison at the paper's
// native scale: the warm re-solve must reuse most of the incumbent and
// never explore more nodes than the cold re-solve.
func TestWarmBenchSmall(t *testing.T) {
	cfg := DefaultWarmBenchConfig()
	cfg.Trials = 4
	cfg.Scales = cfg.Scales[:1] // 1x only: keep the unit test fast
	res, err := RunWarmBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scales) != 1 {
		t.Fatalf("got %d scale results, want 1", len(res.Scales))
	}
	sr := res.Scales[0]
	if sr.Nodes.P50 < 10 || sr.Nodes.Max > 20 {
		t.Errorf("node counts %+v outside the Table 1 range", sr.Nodes)
	}
	if sr.ColdExplored.P95 <= 0 || sr.WarmExplored.P95 <= 0 {
		t.Fatalf("empty explored samples: cold %+v warm %+v", sr.ColdExplored, sr.WarmExplored)
	}
	if sr.WarmExplored.P95 > sr.ColdExplored.P95 {
		t.Errorf("warm explored p95 %v exceeds cold %v", sr.WarmExplored.P95, sr.ColdExplored.P95)
	}
	if sr.Reused.P50 <= 0 {
		t.Errorf("warm re-solve reused nothing: %+v", sr.Reused)
	}
	if sr.ExploredSpeedup < 1 {
		t.Errorf("explored speedup %v < 1", sr.ExploredSpeedup)
	}
}

// TestWarmBenchRejectsBadConfig: zero trials is an error, not a panic.
func TestWarmBenchRejectsBadConfig(t *testing.T) {
	cfg := DefaultWarmBenchConfig()
	cfg.Trials = 0
	if _, err := RunWarmBench(cfg); err == nil {
		t.Fatal("want error for zero trials")
	}
}
