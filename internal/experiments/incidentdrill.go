package experiments

import (
	"fmt"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/distributor"
	"ubiqos/internal/faultinject"
	"ubiqos/internal/incident"
	"ubiqos/internal/metrics"
)

// IncidentDrillConfig parameterizes the chaos drill behind
// `make bench-incident`: mixed-class audio sessions stream on the chaos
// space, a seeded fault schedule (with paired undos, so the storm
// clears) hits mid-stream, and the incident correlation engine is
// watched end to end — open, mitigating, resolved — while a poller
// measures how long detection takes from the first applied fault.
type IncidentDrillConfig struct {
	// Scale is the emulation time scale. The default is deliberately
	// slower than the ledger drill's: the observatory samples on a
	// real-time cadence, so the fault window must span several passes.
	Scale float64
	// PerClass is how many sessions to start in each traffic class.
	PerClass int
	// Seed drives the fault schedule and the supervisor's retry jitter.
	Seed int64
	// Crashes, Degrades, Stalls count the scheduled faults per kind.
	Crashes  int
	Degrades int
	Stalls   int
	// Window is the modeled span the faults are spread over.
	Window time.Duration
	// RecoverAfter delays each fault's paired undo. It must be positive:
	// the drill needs the storm to clear so incidents resolve.
	RecoverAfter time.Duration
	// DetectTimeout / ResolveTimeout bound (in wall-clock time) how long
	// the drill waits for the first incident to open and for one to
	// resolve.
	DetectTimeout  time.Duration
	ResolveTimeout time.Duration
	// Supervisor overrides the recovery supervisor's tuning; its Bus and
	// Seed are filled in by RunIncidentDrill.
	Supervisor core.SupervisorOptions
}

// DefaultIncidentDrillConfig is the benchincident default: two sessions
// per class, two desktop crashes plus a link degradation and a
// transcoder stall, every fault undone after a modeled 20s so the
// fault-storm incident can close.
func DefaultIncidentDrillConfig() IncidentDrillConfig {
	return IncidentDrillConfig{
		Scale:          0.05,
		PerClass:       2,
		Seed:           42,
		Crashes:        2,
		Degrades:       1,
		Stalls:         1,
		Window:         30 * time.Second,
		RecoverAfter:   20 * time.Second,
		DetectTimeout:  20 * time.Second,
		ResolveTimeout: 60 * time.Second,
		// A deliberately damped first recovery attempt: broken episodes
		// must span the observatory's sampling cadence so the incident's
		// impact window (open → resolve) brackets real QoS breakage
		// instead of the supervisor healing everything between passes.
		// Deadline stays above the delay so the attempt is still a
		// full-quality re-placement, not a shed-and-degrade.
		Supervisor: core.SupervisorOptions{
			InitialDelay: 600 * time.Millisecond,
			Deadline:     2 * time.Second,
		},
	}
}

// IncidentDrillResult is the BENCH_incident.json payload: the incident
// log after the storm plus the detection-latency measurement.
type IncidentDrillResult struct {
	// Sessions is the total session count started across classes.
	Sessions int `json:"sessions"`
	// FaultsInjected counts successfully applied faults (undos included).
	FaultsInjected int `json:"faultsInjected"`
	// Recovered / Restored mirror the supervisor's tallies.
	Recovered int64 `json:"recovered"`
	Restored  int64 `json:"restored"`
	// Opened / Resolved count incidents over the whole drill.
	Opened   int `json:"opened"`
	Resolved int `json:"resolved"`
	// DetectionMs is the wall-clock latency from the first applied fault
	// to the first incident opening. It includes the observatory's
	// sampling cadence — the real-world floor an operator would see.
	DetectionMs float64 `json:"detectionMs"`
	// Showcase is the drill's acceptance artifact: a resolved incident
	// with its evidence bundle, timeline, and impact accounting.
	Showcase *incident.Incident `json:"showcase"`
	// Incidents is the full incident log, newest first, evidence
	// stripped (the showcase carries the one full bundle).
	Incidents []incident.Incident `json:"incidents"`
	// WallMs is the drill's total wall-clock time.
	WallMs float64 `json:"wallMs"`
}

// RunIncidentDrill builds the chaos space, streams PerClass sessions per
// traffic class, injects the seeded fault schedule while polling the
// incident log for the first open, waits for the supervisor to settle
// and the storm to clear, and returns the incident log with one resolved
// showcase incident in full.
func RunIncidentDrill(cfg IncidentDrillConfig) (*IncidentDrillResult, error) {
	if cfg.Scale <= 0 || cfg.PerClass <= 0 || cfg.Window <= 0 {
		return nil, fmt.Errorf("experiments: invalid incident drill config %+v", cfg)
	}
	if cfg.RecoverAfter <= 0 {
		return nil, fmt.Errorf("experiments: incident drill needs RecoverAfter > 0 (the storm must clear)")
	}
	if cfg.DetectTimeout <= 0 {
		cfg.DetectTimeout = 20 * time.Second
	}
	if cfg.ResolveTimeout <= 0 {
		cfg.ResolveTimeout = 60 * time.Second
	}
	start := time.Now()
	dom, err := BuildChaosSpace(cfg.Scale, distributor.Optimal)
	if err != nil {
		return nil, err
	}
	defer dom.Close()

	supOpts := cfg.Supervisor
	supOpts.Bus = dom.Bus
	if supOpts.Seed == 0 {
		supOpts.Seed = cfg.Seed
	}
	sup, err := core.NewSupervisor(dom.Configurator, supOpts)
	if err != nil {
		return nil, err
	}
	defer sup.Stop()

	res := &IncidentDrillResult{}
	for _, cl := range drillClasses() {
		for i := 0; i < cfg.PerClass; i++ {
			sid := fmt.Sprintf("%s-%d", cl.name, i+1)
			if _, err := dom.StartApp(core.Request{
				SessionID:    sid,
				Class:        cl.name,
				App:          ChaosAudioApp(),
				UserQoS:      cl.req,
				ClientDevice: "jornada",
			}); err != nil {
				return nil, fmt.Errorf("experiments: start %s: %w", sid, err)
			}
			res.Sessions++
		}
		// Complete one session per class as we go: the scorecards the
		// impact accounting diffs must mix clean and fault-exercised
		// sessions, and stopping early keeps concurrency within the PDA
		// portal's CPU budget (four concurrent players).
		if err := dom.StopApp(cl.name + "-1"); err != nil {
			return nil, fmt.Errorf("experiments: stop %s-1: %w", cl.name, err)
		}
	}
	// Settle the engine's counter baselines before the chaos so the
	// first fault registers as a delta, not as startup noise.
	dom.SampleCapacityNow()

	fcfg := FaultDrillConfig{
		Seed: cfg.Seed, Window: cfg.Window,
		Crashes: cfg.Crashes, Degrades: cfg.Degrades, Stalls: cfg.Stalls,
		RecoverAfter: cfg.RecoverAfter,
	}
	sched, err := faultinject.Generate(chaosParams(dom, fcfg))
	if err != nil {
		return nil, err
	}
	if len(sched.Faults) == 0 {
		return nil, fmt.Errorf("experiments: empty fault schedule (need at least one of crashes/degrades/stalls)")
	}
	inj, err := faultinject.NewInjector(dom, sched)
	if err != nil {
		return nil, err
	}

	// Poll for the first open incident while the injector runs: the
	// detection latency is measured against the first applied fault's
	// wall-clock instant.
	scale := dom.Net.Scale()
	t0 := time.Now()
	firstFaultAt := t0.Add(time.Duration(float64(sched.Faults[0].At) * scale))
	detected := make(chan time.Time, 1)
	stopPoll := make(chan struct{})
	go func() {
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopPoll:
				return
			case <-tick.C:
				dom.SampleCapacityNow()
				if len(dom.Incidents.List()) > 0 {
					detected <- time.Now()
					return
				}
			}
		}
	}()
	defer close(stopPoll)

	if err := inj.Run(scale, nil); err != nil {
		return nil, fmt.Errorf("experiments: inject: %w", err)
	}
	if !sup.AwaitIdle(30 * time.Second) {
		return nil, fmt.Errorf("experiments: supervisor did not settle")
	}

	select {
	case at := <-detected:
		res.DetectionMs = float64(at.Sub(firstFaultAt)) / float64(time.Millisecond)
		if res.DetectionMs < 0 {
			res.DetectionMs = 0
		}
	case <-time.After(cfg.DetectTimeout):
		return nil, fmt.Errorf("experiments: no incident opened within %s", cfg.DetectTimeout)
	}

	// The storm has cleared (every fault carries a paired undo); keep
	// sampling until one incident resolves. Rules with cumulative
	// signals (availability-drop) may stay open — the showcase only
	// needs one clean resolution.
	deadline := time.Now().Add(cfg.ResolveTimeout)
	for res.Showcase == nil {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("experiments: no incident resolved within %s", cfg.ResolveTimeout)
		}
		dom.SampleCapacityNow()
		for _, inc := range dom.Incidents.List() {
			if inc.State != incident.StateResolved {
				continue
			}
			full, ok := dom.Incidents.Get(inc.ID)
			if !ok {
				continue
			}
			res.Showcase = &full
			break
		}
		if res.Showcase == nil {
			time.Sleep(50 * time.Millisecond)
		}
	}

	stats := sup.Stats()
	res.FaultsInjected = int(dom.Metrics.Counter(metrics.FaultsInjected).Value())
	res.Recovered = stats.Recovered
	res.Restored = stats.Restored
	for _, inc := range dom.Incidents.List() {
		res.Opened++
		if inc.State == incident.StateResolved {
			res.Resolved++
		}
		inc.Evidence = nil
		res.Incidents = append(res.Incidents, inc)
	}
	res.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}

// ValidateIncidentDrill checks a drill result for the acceptance shape:
// at least one incident opened and one resolved, the showcase citing at
// least three distinct signal sources, a mitigating transition, a
// resolution cause, and nonzero impact accounting. It is the CI gate
// behind `benchincident -validate`.
func ValidateIncidentDrill(res *IncidentDrillResult) error {
	if res == nil {
		return fmt.Errorf("experiments: nil incident drill result")
	}
	if res.Opened < 1 {
		return fmt.Errorf("experiments: drill opened no incidents")
	}
	if res.Resolved < 1 {
		return fmt.Errorf("experiments: drill resolved no incidents")
	}
	if res.DetectionMs < 0 {
		return fmt.Errorf("experiments: negative detection latency %.1fms", res.DetectionMs)
	}
	sc := res.Showcase
	if sc == nil {
		return fmt.Errorf("experiments: no showcase incident")
	}
	if sc.State != incident.StateResolved {
		return fmt.Errorf("experiments: showcase %s is %s, want resolved", sc.ID, sc.State)
	}
	if sc.Evidence == nil || len(sc.Evidence.Sources) < 3 {
		return fmt.Errorf("experiments: showcase %s cites %d signal sources, want >= 3", sc.ID, len(sourcesOf(sc)))
	}
	mitigated := false
	for _, tr := range sc.Timeline {
		if tr.State == incident.StateMitigating {
			mitigated = true
		}
	}
	if !mitigated {
		return fmt.Errorf("experiments: showcase %s never passed through mitigating", sc.ID)
	}
	if sc.ResolutionCause == "" {
		return fmt.Errorf("experiments: showcase %s resolved without a cause", sc.ID)
	}
	im := sc.Impact
	if im == nil {
		return fmt.Errorf("experiments: showcase %s carries no impact accounting", sc.ID)
	}
	if im.DurationSec <= 0 {
		return fmt.Errorf("experiments: showcase %s impact duration %.3fs, want > 0", sc.ID, im.DurationSec)
	}
	if im.SessionsAffected < 1 {
		return fmt.Errorf("experiments: showcase %s affected no sessions", sc.ID)
	}
	if im.BrokenSec <= 0 && im.TotalDeficitSec <= 0 {
		return fmt.Errorf("experiments: showcase %s records no QoS loss (broken=%.3f deficit=%.3f)",
			sc.ID, im.BrokenSec, im.TotalDeficitSec)
	}
	return nil
}

func sourcesOf(inc *incident.Incident) []string {
	if inc == nil || inc.Evidence == nil {
		return nil
	}
	return inc.Evidence.Sources
}
