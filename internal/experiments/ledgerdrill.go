package experiments

import (
	"fmt"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/distributor"
	"ubiqos/internal/faultinject"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
	"ubiqos/internal/qos"
)

// LedgerDrillConfig parameterizes the mixed-class outcome drill behind
// `make bench-ledger`: audio sessions spread across three traffic
// classes stream on the chaos space, one session per class completes
// cleanly before the seeded faults hit, and the per-class scorecards
// are read off the outcome ledger once the supervisor settles.
type LedgerDrillConfig struct {
	// Scale is the emulation time scale (0.01 = 100x fast-forward).
	Scale float64
	// PerClass is how many sessions to start in each traffic class.
	PerClass int
	// Seed drives the fault schedule and the supervisor's retry jitter.
	Seed int64
	// Crashes, Degrades, Stalls count the scheduled faults per kind.
	Crashes  int
	Degrades int
	Stalls   int
	// Window is the modeled span the faults are spread over.
	Window time.Duration
	// RecoverAfter delays each fault's paired undo (zero = permanent).
	RecoverAfter time.Duration
	// Supervisor overrides the recovery supervisor's tuning; its Bus and
	// Seed are filled in by RunLedgerDrill.
	Supervisor core.SupervisorOptions
}

// drillClass is one traffic class in the mixed workload: distinct QoS
// asks make the delivered-vs-requested accounting diverge per class.
type drillClass struct {
	name string
	req  qos.Vector
}

// drillClasses is the fixed three-class mix; BENCH_ledger.json must
// carry a scorecard for each.
func drillClasses() []drillClass {
	return []drillClass{
		{"voice", qos.V(qos.P(qos.DimFrameRate, qos.Range(38, 44)))},
		{"media", qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44)))},
		{"background", qos.V(qos.P(qos.DimFrameRate, qos.Range(10, 30)))},
	}
}

// DefaultLedgerDrillConfig is the benchledger default: two sessions per
// class on the six-device chaos space, two desktop crashes plus a link
// degradation mid-stream, one fault undone so recovery paths differ.
func DefaultLedgerDrillConfig() LedgerDrillConfig {
	return LedgerDrillConfig{
		Scale:    0.01,
		PerClass: 2,
		Seed:     42,
		Crashes:  2,
		Degrades: 1,
		Stalls:   1,
		Window:   30 * time.Second,
	}
}

// LedgerDrillResult is the BENCH_ledger.json payload: the drill shape
// plus the outcome ledger's per-class scorecards.
type LedgerDrillResult struct {
	// Classes lists the traffic classes driven (one scorecard each).
	Classes []string `json:"classes"`
	// Sessions is the total session count started across classes.
	Sessions int `json:"sessions"`
	// Stopped is how many sessions completed cleanly before the faults.
	Stopped int `json:"stopped"`
	// FaultsInjected counts successfully applied faults.
	FaultsInjected int `json:"faultsInjected"`
	// Recovered / Degraded / Lost / Restored mirror the supervisor.
	Recovered int64 `json:"recovered"`
	Degraded  int64 `json:"degraded"`
	Lost      int64 `json:"lost"`
	Restored  int64 `json:"restored"`
	// Scorecards is the per-class delivered-vs-requested accounting.
	Scorecards []ledger.Scorecard `json:"scorecards"`
	// WallMs is the drill's total wall-clock time.
	WallMs float64 `json:"wallMs"`
}

// RunLedgerDrill builds the chaos space, streams PerClass sessions in
// each traffic class, completes one per class, injects the seeded fault
// schedule, waits for recovery to settle, and returns the per-class
// scorecards.
func RunLedgerDrill(cfg LedgerDrillConfig) (*LedgerDrillResult, error) {
	if cfg.Scale <= 0 || cfg.PerClass <= 0 || cfg.Window <= 0 {
		return nil, fmt.Errorf("experiments: invalid ledger drill config %+v", cfg)
	}
	start := time.Now()
	dom, err := BuildChaosSpace(cfg.Scale, distributor.Optimal)
	if err != nil {
		return nil, err
	}
	defer dom.Close()

	supOpts := cfg.Supervisor
	supOpts.Bus = dom.Bus
	if supOpts.Seed == 0 {
		supOpts.Seed = cfg.Seed
	}
	sup, err := core.NewSupervisor(dom.Configurator, supOpts)
	if err != nil {
		return nil, err
	}
	defer sup.Stop()

	classes := drillClasses()
	res := &LedgerDrillResult{}
	for _, cl := range classes {
		res.Classes = append(res.Classes, cl.name)
		for i := 0; i < cfg.PerClass; i++ {
			sid := fmt.Sprintf("%s-%d", cl.name, i+1)
			if _, err := dom.StartApp(core.Request{
				SessionID:    sid,
				Class:        cl.name,
				App:          ChaosAudioApp(),
				UserQoS:      cl.req,
				ClientDevice: "jornada",
			}); err != nil {
				return nil, fmt.Errorf("experiments: start %s: %w", sid, err)
			}
			res.Sessions++
		}
		// One clean completion per class before the chaos: the scorecards
		// must mix completed and fault-exercised sessions. Stopping as we
		// go also keeps concurrency within the PDA portal's CPU budget
		// (four concurrent players).
		if err := dom.StopApp(cl.name + "-1"); err != nil {
			return nil, fmt.Errorf("experiments: stop %s-1: %w", cl.name, err)
		}
		res.Stopped++
	}

	fcfg := FaultDrillConfig{
		Seed: cfg.Seed, Window: cfg.Window,
		Crashes: cfg.Crashes, Degrades: cfg.Degrades, Stalls: cfg.Stalls,
		RecoverAfter: cfg.RecoverAfter,
	}
	sched, err := faultinject.Generate(chaosParams(dom, fcfg))
	if err != nil {
		return nil, err
	}
	inj, err := faultinject.NewInjector(dom, sched)
	if err != nil {
		return nil, err
	}
	if err := inj.Run(dom.Net.Scale(), nil); err != nil {
		return nil, fmt.Errorf("experiments: inject: %w", err)
	}
	if !sup.AwaitIdle(30 * time.Second) {
		return nil, fmt.Errorf("experiments: supervisor did not settle")
	}

	stats := sup.Stats()
	res.FaultsInjected = int(dom.Metrics.Counter(metrics.FaultsInjected).Value())
	res.Recovered = stats.Recovered
	res.Degraded = stats.Degraded
	res.Lost = stats.Lost
	res.Restored = stats.Restored
	res.Scorecards = dom.Ledger.Scorecards(0)
	res.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}

// ValidateLedgerDrill checks a drill result for the acceptance shape:
// a scorecard per driven class, sane availability, and per-axis deficit
// quantiles. It is the CI gate behind `benchledger -validate`.
func ValidateLedgerDrill(res *LedgerDrillResult) error {
	if res == nil {
		return fmt.Errorf("experiments: nil ledger drill result")
	}
	if len(res.Classes) < 3 {
		return fmt.Errorf("experiments: drill drove %d classes, want >= 3", len(res.Classes))
	}
	byClass := make(map[string]ledger.Scorecard, len(res.Scorecards))
	for _, sc := range res.Scorecards {
		byClass[sc.Class] = sc
	}
	for _, cl := range res.Classes {
		sc, ok := byClass[cl]
		if !ok {
			return fmt.Errorf("experiments: no scorecard for class %q", cl)
		}
		if sc.Sessions <= 0 {
			return fmt.Errorf("experiments: class %q scorecard has no sessions", cl)
		}
		if sc.Availability < 0 || sc.Availability > 1 {
			return fmt.Errorf("experiments: class %q availability %.3f out of [0,1]", cl, sc.Availability)
		}
		for _, ratio := range []float64{sc.RecoveredRatio, sc.DegradedRatio, sc.LostRatio, sc.DeficitRatio} {
			if ratio < 0 || ratio > 1 {
				return fmt.Errorf("experiments: class %q ratio %.3f out of [0,1]", cl, ratio)
			}
		}
		if len(sc.DeficitPerAxis) == 0 {
			return fmt.Errorf("experiments: class %q scorecard has no per-axis deficit quantiles", cl)
		}
		for axis, q := range sc.DeficitPerAxis {
			if q.Count <= 0 {
				return fmt.Errorf("experiments: class %q axis %q deficit quantiles are empty", cl, axis)
			}
		}
	}
	return nil
}
