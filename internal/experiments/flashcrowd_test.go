package experiments

import (
	"testing"
	"time"

	"ubiqos/internal/core"
)

// quickFlashCrowdConfig shrinks the drill for the test suite: same 5×
// arrival-rate spike, fewer sessions and shorter holds.
func quickFlashCrowdConfig() FlashCrowdConfig {
	cfg := DefaultFlashCrowdConfig(true)
	cfg.Steady = 5
	cfg.Crowd = 30
	cfg.VoiceHold = 500 * time.Millisecond
	cfg.CrowdHold = 250 * time.Millisecond
	cfg.Settle = 300 * time.Millisecond
	return cfg
}

// TestFlashCrowdClosedLoop: the drill's acceptance criterion — a 5×
// spike costs zero sessions to capacity exhaustion and leaves the
// configure-latency SLO unburned, with the pressure absorbed as
// controlled rejections/degradations and autoscaler growth.
func TestFlashCrowdClosedLoop(t *testing.T) {
	res, err := RunFlashCrowd(quickFlashCrowdConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.LostToCapacity != 0 {
		t.Errorf("lost %d sessions to capacity exhaustion, want 0 (%+v)", res.LostToCapacity, res.Classes)
	}
	if res.ConfigureBurn > 1 {
		t.Errorf("configure SLO burned: %.2f > 1", res.ConfigureBurn)
	}
	if res.ScaleUps < 1 {
		t.Errorf("autoscaler never scaled up under a 5× spike (status %+v)", res.MaxReplicas)
	}
	if !res.MeetsCriterion {
		t.Errorf("criterion not met: %+v", res)
	}
	offered := 0
	for _, c := range res.Classes {
		if c.Offered != c.Admitted+c.Degraded+c.Rejected+c.LostToCapacity {
			t.Errorf("class %s tally does not add up: %+v", c.Class, c)
		}
		offered += c.Offered
	}
	// Spike interleaving adds one voice arrival per Crowd/Steady crowd
	// arrivals: 30/(30/5) = 5 extras.
	if want := 30 + 5 + 5; offered != want {
		t.Errorf("offered = %d, want %d", offered, want)
	}
}

// TestCrowdSpaceBaselinePaysDownloads: the open-loop space leaves the
// server package uninstalled, so the first session on a device pays the
// modeled download — the latency the autoscaler's pre-provisioning
// removes.
func TestCrowdSpaceBaselinePaysDownloads(t *testing.T) {
	dom, err := BuildCrowdSpace(0.001, false)
	if err != nil {
		t.Fatal(err)
	}
	defer dom.Close()
	active, err := dom.StartApp(core.Request{
		SessionID: "dl-1", Class: "voice", App: CrowdVoiceApp(), ClientDevice: "portal",
	})
	if err != nil {
		t.Fatal(err)
	}
	if active.Timing.Downloading <= 0 {
		t.Fatalf("baseline session paid no download (timing %+v)", active.Timing)
	}
	if dom.Admission != nil || dom.Autoscaler != nil {
		t.Fatal("baseline space must not wire the gate or autoscaler")
	}
}

// TestCrowdSpaceClosedLoopPreInstalls: the autoscaler's pre-provisioned
// floor means an admitted session pays no download at all.
func TestCrowdSpaceClosedLoopPreInstalls(t *testing.T) {
	dom, err := BuildCrowdSpace(0.001, true)
	if err != nil {
		t.Fatal(err)
	}
	defer dom.Close()
	if _, err := dom.EnableAutoscaler(DefaultAutoscaleDrillOptions(), CrowdGroups()...); err != nil {
		t.Fatal(err)
	}
	active, err := dom.StartApp(core.Request{
		SessionID: "warm-1", Class: "voice", App: CrowdVoiceApp(), ClientDevice: "portal",
	})
	if err != nil {
		t.Fatal(err)
	}
	if active.Timing.Downloading != 0 {
		t.Fatalf("pre-installed session still downloaded (timing %+v)", active.Timing)
	}
}
