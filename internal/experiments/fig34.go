package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ubiqos/internal/composer"
	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/netsim"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/repository"
	"ubiqos/internal/resource"
)

// Fig34Config parameterizes the prototype scenario behind Figures 3 and 4:
// the four scripted events of the paper's lab experiment, run on an
// emulated smart space (the substitution for the Sun Ultra-60 /
// Pentium-III / ThinkPad / Jornada testbed).
type Fig34Config struct {
	// Scale is the emulation time scale (0.1 = 10× fast-forward).
	Scale float64
	// PlayModeled is how long each event's session streams before its QoS
	// is measured.
	PlayModeled time.Duration
}

// DefaultFig34Config returns a configuration that completes in a couple of
// seconds of wall time while reporting full-scale numbers. The scale keeps
// per-frame intervals well above the Go timer granularity so measured
// rates are accurate.
func DefaultFig34Config() Fig34Config {
	return Fig34Config{Scale: 0.1, PlayModeled: 4 * time.Second}
}

// Fig34Event is one row of Figure 3 plus its Figure 4 overhead bar.
type Fig34Event struct {
	// Label is the event number (1–4).
	Label int
	// Description is the event content column of Figure 3.
	Description string
	// Configuration maps "type(instance)" to the hosting device — the
	// service configuration result column.
	Configuration map[string]string
	// MeasuredQoS maps a stream name to the delivered modeled fps.
	MeasuredQoS map[string]float64
	// Timing is the Figure 4 overhead breakdown.
	Timing core.Timing
}

// Fig34Result holds the scenario outcome.
type Fig34Result struct {
	Events []Fig34Event
}

// audioFormatMPEG matches the paper's "MPEG2wav" transcoder naming: the
// audio server streams MPEG audio; the PDA player accepts WAV.
const (
	audioFormatMPEG = "MPEG"
	audioFormatWAV  = "WAV"
)

// BuildAudioSpace constructs the audio-on-demand domain: three desktops
// and the Jornada PDA. All audio components are pre-installed (the paper
// assumes so for this application).
func BuildAudioSpace(scale float64) (*domain.Domain, error) {
	return BuildAudioSpaceWith(scale, nil)
}

// BuildAudioSpaceWith is BuildAudioSpace with an explicit placement
// algorithm (nil keeps the default greedy heuristic) — used by the
// daemon's -place flag and by experiments comparing solver behavior on
// the same smart space.
func BuildAudioSpaceWith(scale float64, place core.PlaceFunc) (*domain.Domain, error) {
	d, err := domain.New("audio-space", domain.Options{
		Scale: scale,
		StateSizeFor: func(from device.ID) float64 {
			// A desktop portal buffers ~0.5 MB of media; the PDA holds only
			// a ~0.1 MB buffer — the source of the PC→PDA vs PDA→PC handoff
			// asymmetry.
			if from == "jornada" {
				return 0.1
			}
			return 0.5
		},
		Place: place,
	})
	if err != nil {
		return nil, err
	}
	for _, id := range []device.ID{"desktop1", "desktop2", "desktop3"} {
		if _, err := d.AddDevice(id, device.ClassDesktop, resource.MB(256, 100), map[string]string{"platform": "pc"}); err != nil {
			return nil, err
		}
	}
	if _, err := d.AddDevice("jornada", device.ClassPDA, resource.MB(32, 100), map[string]string{"platform": "pda"}); err != nil {
		return nil, err
	}
	desktops := []device.ID{"desktop1", "desktop2", "desktop3"}
	for i, a := range desktops {
		for _, b := range desktops[i+1:] {
			if err := d.Connect(a, b, netsim.Ethernet); err != nil {
				return nil, err
			}
		}
		if err := d.Connect(a, "jornada", netsim.WLAN); err != nil {
			return nil, err
		}
		if err := d.ConnectServer(a, netsim.Ethernet); err != nil {
			return nil, err
		}
	}
	if err := d.ConnectServer("jornada", netsim.WLAN); err != nil {
		return nil, err
	}

	d.Registry.MustRegister(&registry.Instance{
		Name:          "audio-server-1",
		Type:          "audio-server",
		Output:        qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatMPEG)), qos.P(qos.DimFrameRate, qos.Scalar(40))),
		OutCapability: qos.V(qos.P(qos.DimFrameRate, qos.Range(5, 60))),
		Adjustable:    map[string]bool{qos.DimFrameRate: true},
		Resources:     resource.MB(64, 50),
		SizeMB:        12,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "audio-player-pc",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pc"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatMPEG)), qos.P(qos.DimFrameRate, qos.Range(10, 50))),
		Resources: resource.MB(16, 30),
		SizeMB:    4,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "audio-player-pda",
		Type:      "audio-player",
		Attrs:     map[string]string{"platform": "pda"},
		Input:     qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatWAV)), qos.P(qos.DimFrameRate, qos.Range(10, 44))),
		Resources: resource.MB(8, 10),
		SizeMB:    2,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:        "mpeg2wav-1",
		Type:        composer.TypeTranscoder,
		Attrs:       map[string]string{"from": audioFormatMPEG, "to": audioFormatWAV},
		Input:       qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatMPEG))),
		Output:      qos.V(qos.P(qos.DimFormat, qos.Symbol(audioFormatWAV))),
		PassThrough: map[string]bool{qos.DimFrameRate: true},
		Resources:   resource.MB(12, 25),
		SizeMB:      3,
	})
	// "We assume that the required service components are already
	// installed on the target devices in advance" (no downloading
	// overhead for the audio application).
	for _, dev := range []string{"desktop1", "desktop2", "desktop3", "jornada"} {
		for _, comp := range []string{"audio-server-1", "audio-player-pc", "audio-player-pda", "mpeg2wav-1"} {
			d.Repo.MarkInstalled(dev, comp)
		}
	}
	return d, nil
}

// BuildConfSpace constructs the video-conferencing domain: three
// workstations with all components downloaded on demand from the
// component repository.
func BuildConfSpace(scale float64) (*domain.Domain, error) {
	return BuildConfSpaceWith(scale, nil)
}

// BuildConfSpaceWith is BuildConfSpace with an explicit placement
// algorithm (nil keeps the default greedy heuristic).
func BuildConfSpaceWith(scale float64, place core.PlaceFunc) (*domain.Domain, error) {
	d, err := domain.New("conf-space", domain.Options{Scale: scale, Place: place})
	if err != nil {
		return nil, err
	}
	ws := []device.ID{"ws1", "ws2", "ws3"}
	for _, id := range ws {
		if _, err := d.AddDevice(id, device.ClassWorkstation, resource.MB(512, 100), map[string]string{"platform": "workstation"}); err != nil {
			return nil, err
		}
	}
	for i, a := range ws {
		for _, b := range ws[i+1:] {
			if err := d.Connect(a, b, netsim.Ethernet); err != nil {
				return nil, err
			}
		}
		if err := d.ConnectServer(a, netsim.Ethernet); err != nil {
			return nil, err
		}
	}

	// Multiplexed stream QoS dimensions carried by the gateway/lip-sync
	// components.
	muxOut := qos.V(
		qos.P("video-format", qos.Symbol(qos.FormatH261)),
		qos.P("video-fps", qos.Scalar(25)),
		qos.P("audio-format", qos.Symbol(qos.FormatPCM)),
		qos.P("audio-fps", qos.Scalar(6)),
	)
	d.Registry.MustRegister(&registry.Instance{
		Name:      "video-recorder-1",
		Type:      "video-recorder",
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatH261)), qos.P(qos.DimFrameRate, qos.Scalar(25))),
		Resources: resource.MB(32, 60),
		SizeMB:    8,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "audio-recorder-1",
		Type:      "audio-recorder",
		Output:    qos.V(qos.P(qos.DimFormat, qos.Symbol(qos.FormatPCM)), qos.P(qos.DimFrameRate, qos.Scalar(6))),
		Resources: resource.MB(8, 15),
		SizeMB:    4,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "gateway-1",
		Type:      "gateway",
		Output:    muxOut,
		Resources: resource.MB(24, 40),
		SizeMB:    10,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "lipsync-1",
		Type:      "lip-synchronizer",
		Output:    muxOut,
		Resources: resource.MB(16, 30),
		SizeMB:    8,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "video-player-1",
		Type:      "video-player",
		Attrs:     map[string]string{"platform": "workstation"},
		Input:     qos.V(qos.P("video-format", qos.Symbol(qos.FormatH261)), qos.P("video-fps", qos.Range(20, 30))),
		Resources: resource.MB(32, 50),
		SizeMB:    10,
	})
	d.Registry.MustRegister(&registry.Instance{
		Name:      "audio-player-ws",
		Type:      "conference-audio-player",
		Attrs:     map[string]string{"platform": "workstation"},
		Input:     qos.V(qos.P("audio-format", qos.Symbol(qos.FormatPCM)), qos.P("audio-fps", qos.Range(5, 8))),
		Resources: resource.MB(8, 10),
		SizeMB:    6,
	})
	// Publish for on-demand download; nothing pre-installed.
	for _, p := range []struct {
		name string
		size float64
	}{
		{"video-recorder-1", 8}, {"audio-recorder-1", 4}, {"gateway-1", 10},
		{"lipsync-1", 8}, {"video-player-1", 10}, {"audio-player-ws", 6},
	} {
		if err := d.Repo.Publish(repositoryPackage(p.name, p.size)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// AudioOnDemandApp is the abstract graph of the mobile audio-on-demand
// application: the content server lives on desktop1; the player follows
// the user's portal device.
func AudioOnDemandApp() *composer.AbstractGraph {
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "server", Spec: registry.Spec{Type: "audio-server"}, Pin: "desktop1"})
	ag.MustAddNode(&composer.AbstractNode{ID: "player", Spec: registry.Spec{Type: "audio-player"}, Pin: core.ClientRole})
	ag.MustAddEdge("server", "player", 1.5)
	return ag
}

// VideoConferencingApp is the non-linear conferencing graph: recorders on
// the speaker's workstation, gateway and lip-synchronizer placed by the
// distributor, players on the viewer's workstation.
func VideoConferencingApp() *composer.AbstractGraph {
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "vrec", Spec: registry.Spec{Type: "video-recorder"}, Pin: "ws1"})
	ag.MustAddNode(&composer.AbstractNode{ID: "arec", Spec: registry.Spec{Type: "audio-recorder"}, Pin: "ws1"})
	ag.MustAddNode(&composer.AbstractNode{ID: "gateway", Spec: registry.Spec{Type: "gateway"}})
	ag.MustAddNode(&composer.AbstractNode{ID: "lipsync", Spec: registry.Spec{Type: "lip-synchronizer"}})
	ag.MustAddNode(&composer.AbstractNode{ID: "vplayer", Spec: registry.Spec{Type: "video-player"}, Pin: core.ClientRole})
	ag.MustAddNode(&composer.AbstractNode{ID: "aplayer", Spec: registry.Spec{Type: "conference-audio-player"}, Pin: core.ClientRole})
	ag.MustAddEdge("vrec", "gateway", 4)
	ag.MustAddEdge("arec", "gateway", 0.2)
	ag.MustAddEdge("gateway", "lipsync", 4.2)
	ag.MustAddEdge("lipsync", "vplayer", 4)
	ag.MustAddEdge("lipsync", "aplayer", 0.2)
	return ag
}

// RunFig34 runs the four scripted events and returns both the Figure 3
// rows (configuration result, measured QoS) and the Figure 4 overhead
// breakdowns.
func RunFig34(cfg Fig34Config) (*Fig34Result, error) {
	if cfg.Scale <= 0 || cfg.PlayModeled <= 0 {
		return nil, fmt.Errorf("experiments: invalid fig34 config")
	}
	audio, err := BuildAudioSpace(cfg.Scale)
	if err != nil {
		return nil, err
	}
	defer audio.Close()

	result := &Fig34Result{}
	play := func() { time.Sleep(time.Duration(float64(cfg.PlayModeled) * cfg.Scale)) }
	cdQuality := qos.V(qos.P(qos.DimFrameRate, qos.Range(38, 44)))

	// Event 1: start mobile audio-on-demand on the desktop.
	active, err := audio.StartApp(core.Request{
		SessionID:    "audio-on-demand",
		App:          AudioOnDemandApp(),
		UserQoS:      cdQuality,
		ClientDevice: "desktop2",
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: event 1: %w", err)
	}
	play()
	result.Events = append(result.Events, audioEvent(1,
		`Start "mobile audio-on-demand" on the desktop. User QoS request: CD quality music`, active))

	// Event 2: switch from desktop to PDA over the wireless link; music
	// continues from the interruption point.
	active, err = audio.SwitchDevice("audio-on-demand", "jornada")
	if err != nil {
		return nil, fmt.Errorf("experiments: event 2: %w", err)
	}
	play()
	result.Events = append(result.Events, audioEvent(2,
		"Switch from desktop to PDA with a wireless link. Music continues from the interruption point.", active))

	// Event 3: switch back from the PDA to another desktop.
	active, err = audio.SwitchDevice("audio-on-demand", "desktop3")
	if err != nil {
		return nil, fmt.Errorf("experiments: event 3: %w", err)
	}
	play()
	result.Events = append(result.Events, audioEvent(3,
		"Switch back from PDA to another desktop.", active))
	if err := audio.StopApp("audio-on-demand"); err != nil {
		return nil, err
	}

	// Event 4: start video conferencing on the workstations, all
	// components downloaded on demand.
	conf, err := BuildConfSpace(cfg.Scale)
	if err != nil {
		return nil, err
	}
	defer conf.Close()
	active, err = conf.StartApp(core.Request{
		SessionID:    "video-conf",
		App:          VideoConferencingApp(),
		UserQoS:      qos.V(qos.P("video-fps", qos.Range(20, 30)), qos.P("audio-fps", qos.Range(5, 8))),
		ClientDevice: "ws3",
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: event 4: %w", err)
	}
	play()
	ev := Fig34Event{
		Label:         4,
		Description:   "Start video conferencing on the workstations. User QoS request: video(25fps), audio(6fps)",
		Configuration: configurationOf(active),
		MeasuredQoS:   map[string]float64{},
		Timing:        active.Timing,
	}
	vfps, _ := active.Runtime.MeasuredOriginRate("vplayer", "vrec")
	afps, _ := active.Runtime.MeasuredOriginRate("aplayer", "arec")
	ev.MeasuredQoS["video"] = vfps
	ev.MeasuredQoS["audio"] = afps
	result.Events = append(result.Events, ev)
	if err := conf.StopApp("video-conf"); err != nil {
		return nil, err
	}
	return result, nil
}

// audioEvent summarizes one audio-on-demand event.
func audioEvent(label int, desc string, active *core.ActiveSession) Fig34Event {
	ev := Fig34Event{
		Label:         label,
		Description:   desc,
		Configuration: configurationOf(active),
		MeasuredQoS:   map[string]float64{},
		Timing:        active.Timing,
	}
	fps, _ := active.Runtime.MeasuredOriginRate("player", "server")
	ev.MeasuredQoS["audio"] = fps
	return ev
}

// configurationOf renders the session placement.
func configurationOf(active *core.ActiveSession) map[string]string {
	out := make(map[string]string, len(active.Placement))
	for id, dev := range active.Placement {
		n := active.Graph.Node(id)
		out[fmt.Sprintf("%s(%s)", n.Type, n.Instance)] = string(dev)
	}
	return out
}

// FormatFig3 renders the Figure 3 rows.
func FormatFig3(r *Fig34Result) string {
	var b strings.Builder
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "Event %d: %s\n", ev.Label, ev.Description)
		keys := make([]string, 0, len(ev.Configuration))
		for k := range ev.Configuration {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-40s -> %s\n", k, ev.Configuration[k])
		}
		streams := make([]string, 0, len(ev.MeasuredQoS))
		for s := range ev.MeasuredQoS {
			streams = append(streams, s)
		}
		sort.Strings(streams)
		for _, s := range streams {
			fmt.Fprintf(&b, "  measured QoS %-7s: %.1f fps\n", s, ev.MeasuredQoS[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFig4 renders the Figure 4 stacked-bar data (milliseconds per
// configuration action).
func FormatFig4(r *Fig34Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s  %12s  %12s  %12s  %18s  %10s\n",
		"event", "composition", "distribution", "downloading", "init/state-handoff", "total")
	for _, ev := range r.Events {
		t := ev.Timing
		fmt.Fprintf(&b, "%-6d  %10.1fms  %10.1fms  %10.1fms  %16.1fms  %8.1fms\n",
			ev.Label,
			ms(t.Composition), ms(t.Distribution), ms(t.Downloading), ms(t.InitOrHandoff), ms(t.Total()))
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// repositoryPackage is a small readability helper.
func repositoryPackage(name string, sizeMB float64) repository.Package {
	return repository.Package{Name: name, SizeMB: sizeMB}
}
