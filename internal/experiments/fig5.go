package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/graph"
	"ubiqos/internal/par"
	"ubiqos/internal/resource"
	"ubiqos/internal/sim"
	"ubiqos/internal/workload"
)

// Fig5Config parameterizes the success-rate simulation of Figure 5: "We
// assume three heterogeneous devices (desktop, laptop, and PDA) ... RA1 =
// [256MB, 300%], RA2 = [128MB, 100%], RA3 = [32MB, 50%]. The available
// bandwidths b1,2, b1,3, and b2,3 are initialized to be 50Mbps, 5Mbps, and
// 5Mbps. We randomly create 5000 application requests over 1000 hours.
// Each request randomly selects a service graph from 5 predefined ones ...
// The length of each application is exponentially distributed from 5
// minutes to 1 hours. ... The success rate is calculated every 50 hours."
type Fig5Config struct {
	Seed         int64
	Requests     int
	HorizonHours float64
	WindowHours  float64
	// Workers bounds the worker pool. Each request trace is an inherently
	// sequential admission simulation, so the parallel grain is one
	// (policy, trace) replay — RunFig5 runs its three policies
	// concurrently, and RunFig5Seeds additionally fans out over seeds.
	// Results are identical for every worker count (0 = all usable CPUs).
	Workers int
	// GraphCount predefined service graphs drawn with Params.
	GraphCount int
	Params     workload.GraphParams
	Devices    []distributor.DeviceInfo
	// LinkMbps maps unordered device-ID pairs to the initial end-to-end
	// bandwidth.
	LinkMbps map[[2]device.ID]float64
	// Application holding times: exponential with MeanDurationHours,
	// clamped to [MinDurationHours, MaxDurationHours].
	MinDurationHours, MaxDurationHours, MeanDurationHours float64
	// RandomTriesPerRequest gives the random baseline this many admission
	// attempts per request (1 in the paper's spirit).
	RandomTriesPerRequest int
}

// DefaultFig5Config returns the paper's setting.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Seed:         2002,
		Requests:     5000,
		HorizonHours: 1000,
		WindowHours:  50,
		GraphCount:   5,
		Params:       workload.Fig5Params(),
		Devices: []distributor.DeviceInfo{
			{ID: "desktop", Avail: resource.MB(256, 300)},
			{ID: "laptop", Avail: resource.MB(128, 100)},
			{ID: "pda", Avail: resource.MB(32, 50)},
		},
		LinkMbps: map[[2]device.ID]float64{
			{"desktop", "laptop"}: 50,
			{"desktop", "pda"}:    5,
			{"laptop", "pda"}:     5,
		},
		MinDurationHours:      5.0 / 60,
		MaxDurationHours:      1,
		MeanDurationHours:     0.3,
		RandomTriesPerRequest: 1,
	}
}

// Fig5Series is one curve of Figure 5: a policy's success rate per window.
type Fig5Series struct {
	Name string
	// Rates[i] is successes/attempts within window i (NaN when a window
	// saw no attempts).
	Rates []float64
	// Overall is the success rate across all requests.
	Overall float64
}

// Fig5Result holds the regenerated figure.
type Fig5Result struct {
	// WindowStartHours labels the x axis.
	WindowStartHours []float64
	Series           []Fig5Series
}

// fig5Request is one element of the shared arrival trace.
type fig5Request struct {
	at       float64
	graphIdx int
	duration float64
	weights  resource.Weights
}

// RunFig5 regenerates Figure 5: the same request trace is replayed against
// three independent smart-space states, one per placement policy
// (heuristic, random, fixed), and the per-window success rates are
// reported.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.Requests <= 0 || cfg.HorizonHours <= 0 || cfg.WindowHours <= 0 {
		return nil, fmt.Errorf("experiments: invalid fig5 config")
	}
	graphs, err := workload.PredefinedGraphs(cfg.Seed, cfg.GraphCount, cfg.Params)
	if err != nil {
		return nil, err
	}
	trace := buildFig5Trace(cfg)

	windows := int(math.Ceil(cfg.HorizonHours / cfg.WindowHours))
	result := &Fig5Result{WindowStartHours: make([]float64, windows)}
	for i := range result.WindowStartHours {
		result.WindowStartHours[i] = float64(i) * cfg.WindowHours
	}

	// Each policy owns its state (and, for Random, its own rand stream
	// seeded from the shared config seed), so the three trace replays are
	// independent jobs; the series slice is filled by policy index, so the
	// figure is identical for every worker count.
	policies := []struct {
		name  string
		place func(key string, p *distributor.Problem) (distributor.Assignment, error)
	}{
		{"Our Heuristic", func(_ string, p *distributor.Problem) (distributor.Assignment, error) {
			a, _, err := distributor.Heuristic(p)
			return a, err
		}},
		{"Random", func() func(string, *distributor.Problem) (distributor.Assignment, error) {
			randRng := rand.New(rand.NewSource(cfg.Seed + 1))
			return func(_ string, p *distributor.Problem) (distributor.Assignment, error) {
				var lastErr error
				for t := 0; t < max(1, cfg.RandomTriesPerRequest); t++ {
					a, _, err := distributor.RandomAdmit(p, randRng)
					if err == nil {
						return a, nil
					}
					lastErr = err
				}
				return nil, lastErr
			}
		}()},
		{"Fixed", func() func(string, *distributor.Problem) (distributor.Assignment, error) {
			fixed := distributor.NewFixed(cfg.Devices)
			return func(key string, p *distributor.Problem) (distributor.Assignment, error) {
				a, _, err := fixed.Place(key, p)
				return a, err
			}
		}()},
	}

	result.Series = make([]Fig5Series, len(policies))
	err = par.ForEach(len(policies), cfg.Workers, func(pi int) error {
		pol := policies[pi]
		series, err := runFig5Policy(cfg, graphs, trace, windows, pol.place)
		if err != nil {
			return fmt.Errorf("experiments: policy %s: %w", pol.name, err)
		}
		series.Name = pol.name
		result.Series[pi] = series
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// buildFig5Trace draws the shared arrival trace: the paper "randomly
// creates" the requests over the period, which we realize as uniform
// arrival times over the horizon (sorted), uniform graph choice,
// clamped-exponential durations, and uniform weights.
func buildFig5Trace(cfg Fig5Config) []fig5Request {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trace := make([]fig5Request, cfg.Requests)
	for i := range trace {
		d := rng.ExpFloat64() * cfg.MeanDurationHours
		if d < cfg.MinDurationHours {
			d = cfg.MinDurationHours
		}
		if d > cfg.MaxDurationHours {
			d = cfg.MaxDurationHours
		}
		trace[i] = fig5Request{
			at:       rng.Float64() * cfg.HorizonHours,
			graphIdx: rng.Intn(cfg.GraphCount),
			duration: d,
			weights:  workload.RandomWeights(rng, resource.Dims),
		}
	}
	sort.SliceStable(trace, func(i, j int) bool { return trace[i].at < trace[j].at })
	return trace
}

// runFig5Policy replays the trace against one isolated smart-space state.
func runFig5Policy(cfg Fig5Config, graphs []*graph.Graph, trace []fig5Request, windows int, place func(string, *distributor.Problem) (distributor.Assignment, error)) (Fig5Series, error) {
	remaining := make([]resource.Vector, len(cfg.Devices))
	for i, d := range cfg.Devices {
		remaining[i] = d.Avail.Clone()
	}
	links := device.NewLinks()
	for pair, mbps := range cfg.LinkMbps {
		links.MustSet(pair[0], pair[1], mbps)
	}

	attempts := make([]int, windows)
	successes := make([]int, windows)
	var engine sim.Simulator
	var failure error

	for _, req := range trace {
		req := req
		err := engine.Schedule(req.at, func() {
			win := int(req.at / cfg.WindowHours)
			if win >= windows {
				win = windows - 1
			}
			attempts[win]++

			devs := make([]distributor.DeviceInfo, len(cfg.Devices))
			for i, d := range cfg.Devices {
				devs[i] = distributor.DeviceInfo{ID: d.ID, Avail: remaining[i].Clone()}
			}
			prob := &distributor.Problem{
				Graph:     graphs[req.graphIdx],
				Devices:   devs,
				Bandwidth: links.Available,
				Weights:   req.weights,
			}
			a, err := place(fmt.Sprintf("g%d", req.graphIdx), prob)
			if err != nil {
				return // rejected request
			}
			// Admit: subtract loads, reserve bandwidth.
			loads := prob.DeviceLoads(a)
			for i := range remaining {
				remaining[i] = remaining[i].Sub(loads[i])
			}
			demands := prob.LinkDemands(a)
			for pair, mbps := range demands {
				if err := links.Reserve(pair[0], pair[1], mbps); err != nil {
					failure = fmt.Errorf("link reservation after successful fit: %w", err)
					return
				}
			}
			successes[win]++
			engine.MustSchedule(req.at+req.duration, func() {
				for i := range remaining {
					remaining[i] = remaining[i].Add(loads[i])
				}
				for pair, mbps := range demands {
					links.ReleaseBandwidth(pair[0], pair[1], mbps)
				}
			})
		})
		if err != nil {
			return Fig5Series{}, err
		}
	}
	engine.Run()
	if failure != nil {
		return Fig5Series{}, failure
	}

	s := Fig5Series{Rates: make([]float64, windows)}
	totalA, totalS := 0, 0
	for i := range s.Rates {
		totalA += attempts[i]
		totalS += successes[i]
		if attempts[i] == 0 {
			s.Rates[i] = math.NaN()
			continue
		}
		s.Rates[i] = float64(successes[i]) / float64(attempts[i])
	}
	if totalA > 0 {
		s.Overall = float64(totalS) / float64(totalA)
	}
	return s, nil
}

// FormatFig5 renders the three success-rate series as an aligned table
// (one row per 50-hour window), matching the data behind Figure 5.
func FormatFig5(r *Fig5Result) string {
	out := fmt.Sprintf("%-10s", "time(hr)")
	for _, s := range r.Series {
		out += fmt.Sprintf("  %-14s", s.Name)
	}
	out += "\n"
	for i, start := range r.WindowStartHours {
		out += fmt.Sprintf("%-10.0f", start)
		for _, s := range r.Series {
			out += fmt.Sprintf("  %-14.3f", s.Rates[i])
		}
		out += "\n"
	}
	out += fmt.Sprintf("%-10s", "overall")
	for _, s := range r.Series {
		out += fmt.Sprintf("  %-14.3f", s.Overall)
	}
	out += "\n"
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig5SeedSummary aggregates one policy's overall success rate across
// several independently seeded runs.
type Fig5SeedSummary struct {
	Name           string
	Mean, Min, Max float64
}

// RunFig5Seeds repeats the Figure 5 simulation with n consecutive seeds
// and summarizes each policy's overall success rate — a robustness check
// that the paper's ordering is not an artifact of one trace. Seed runs are
// independent and fan out over cfg.Workers; each run's own policy fan-out
// is serialized so the pool is not oversubscribed, and the summaries are
// aggregated in seed order, keeping the output worker-count independent.
func RunFig5Seeds(cfg Fig5Config, n int) ([]Fig5SeedSummary, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: seed count must be positive")
	}
	results := make([]*Fig5Result, n)
	err := par.ForEach(n, cfg.Workers, func(s int) error {
		run := cfg
		run.Seed = cfg.Seed + int64(s)
		run.Workers = 1
		r, err := RunFig5(run)
		if err != nil {
			return err
		}
		results[s] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var summaries []Fig5SeedSummary
	for s, r := range results {
		for i, series := range r.Series {
			if s == 0 {
				summaries = append(summaries, Fig5SeedSummary{
					Name: series.Name,
					Min:  series.Overall,
					Max:  series.Overall,
				})
			}
			sum := &summaries[i]
			sum.Mean += series.Overall / float64(n)
			if series.Overall < sum.Min {
				sum.Min = series.Overall
			}
			if series.Overall > sum.Max {
				sum.Max = series.Overall
			}
		}
	}
	return summaries, nil
}
