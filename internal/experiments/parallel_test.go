package experiments

import (
	"runtime"
	"testing"
)

// TestSubSeedInjective spot-checks that neighboring harness seeds and job
// indices produce distinct sub-seeds.
func TestSubSeedInjective(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(2002); seed < 2005; seed++ {
		for i := 0; i < 1000; i++ {
			s := SubSeed(seed, i)
			if seen[s] {
				t.Fatalf("collision at seed %d index %d", seed, i)
			}
			seen[s] = true
		}
	}
}

// TestTable1WorkerCountInvariant is the acceptance contract for the
// parallel Table 1 harness: worker counts 1, 4, and NumCPU produce a
// byte-identical table (and identical diagnostics), because each graph
// index owns a sub-seeded random stream and aggregation runs in graph
// order.
func TestTable1WorkerCountInvariant(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Graphs = 25
	cfg.Extended = true

	var wantText string
	var wantGenerated int
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		cfg.Workers = workers
		r, err := RunTable1(cfg)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		text := FormatTable1(r)
		if wantText == "" {
			wantText, wantGenerated = text, r.Generated
			continue
		}
		if text != wantText {
			t.Errorf("workers %d table differs from serial run:\n%s\nwant:\n%s", workers, text, wantText)
		}
		if r.Generated != wantGenerated {
			t.Errorf("workers %d generated %d graphs, serial run generated %d", workers, r.Generated, wantGenerated)
		}
	}
}

// TestFig5WorkerCountInvariant is the same contract for Figure 5: the
// three policy replays run concurrently but each owns its smart-space
// state and random stream, so the figure is byte-identical for worker
// counts 1, 4, and NumCPU.
func TestFig5WorkerCountInvariant(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Requests = 250
	cfg.HorizonHours = 60

	var want string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		cfg.Workers = workers
		r, err := RunFig5(cfg)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		text := FormatFig5(r)
		if want == "" {
			want = text
			continue
		}
		if text != want {
			t.Errorf("workers %d figure differs from serial run:\n%s\nwant:\n%s", workers, text, want)
		}
	}
}

// TestFig5SeedsWorkerCountInvariant covers the seed-level fan-out of the
// robustness sweep.
func TestFig5SeedsWorkerCountInvariant(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Requests = 150
	cfg.HorizonHours = 50

	var want []Fig5SeedSummary
	for _, workers := range []int{1, 3} {
		cfg.Workers = workers
		sums, err := RunFig5Seeds(cfg, 3)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if want == nil {
			want = sums
			continue
		}
		if len(sums) != len(want) {
			t.Fatalf("workers %d: %d summaries, want %d", workers, len(sums), len(want))
		}
		for i := range sums {
			if sums[i] != want[i] {
				t.Errorf("workers %d summary %d = %+v, want %+v", workers, i, sums[i], want[i])
			}
		}
	}
}
