// Package experiments contains the reproduction harnesses for every table
// and figure of the paper's evaluation (§4): the Table 1 algorithm
// comparison, the Figure 5 success-rate simulation, and the Figure 3/4
// prototype scenario. Each harness is deterministic given its seed and is
// shared by the cmd/ regenerator binaries and the benchmark suite.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/resource"
	"ubiqos/internal/workload"
)

// Table1Config parameterizes the Table 1 experiment: "we compare the
// relative performances of different heuristic algorithms (random and
// ours) with the optimal algorithm ... limited to the special case of
// two-way cut. We assume two heterogeneous devices (PC, PDA) ... RA1 =
// [256MB, 300%], RA2 = [32MB, 100%]. We consider service graphs with 10 to
// 20 service components, ... on average, 3 to 6 outbound edges. Other
// parameters ... are uniformly distributed. ... 150 randomly generated
// service graphs."
type Table1Config struct {
	// Graphs is the number of feasible random graphs evaluated (150 in the
	// paper).
	Graphs int
	// Seed makes the experiment deterministic.
	Seed int64
	// Params generates the random service graphs.
	Params workload.GraphParams
	// Devices are the two (or more) heterogeneous devices.
	Devices []distributor.DeviceInfo
	// LinkMbps is the available bandwidth between every device pair.
	LinkMbps float64
	// MaxAttemptsPerGraph bounds regeneration when a drawn graph does not
	// fit the devices at all (the paper evaluates feasible graphs).
	MaxAttemptsPerGraph int
	// Extended adds rows beyond the paper's table: the heuristic with
	// local-search refinement, and the first-fit ablation.
	Extended bool
}

// DefaultTable1Config returns the paper's setting.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Graphs: 150,
		Seed:   2002,
		Params: workload.Table1Params(),
		Devices: []distributor.DeviceInfo{
			{ID: "pc", Avail: resource.MB(256, 300)},
			{ID: "pda", Avail: resource.MB(32, 100)},
		},
		LinkMbps:            100,
		MaxAttemptsPerGraph: 50,
	}
}

// Table1Row is one line of Table 1: the algorithm's mean cost-aggregation
// ratio against the optimal solution, and the percentage of graphs for
// which it found the exact optimum.
type Table1Row struct {
	Name string
	// AvgRatio is mean(CA_optimal / CA_algorithm) over all graphs, with 0
	// contributed when the algorithm found no feasible cut.
	AvgRatio float64
	// OptimalPct is the fraction of graphs (in percent) where the
	// algorithm's cost equals the optimal cost.
	OptimalPct float64
	// FeasiblePct is the fraction of graphs (in percent) where the
	// algorithm produced any feasible cut (diagnostic; not in the paper's
	// table).
	FeasiblePct float64
}

// Table1Result holds the regenerated table.
type Table1Result struct {
	Rows []Table1Row
	// Generated counts all graphs drawn, including infeasible discards.
	Generated int
}

// costEqualityTolerance treats two cost aggregations as the same solution
// value.
const costEqualityTolerance = 1e-9

// RunTable1 regenerates Table 1.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	if cfg.Graphs <= 0 {
		return nil, fmt.Errorf("experiments: Graphs must be positive")
	}
	if cfg.MaxAttemptsPerGraph <= 0 {
		cfg.MaxAttemptsPerGraph = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type tally struct {
		ratioSum float64
		optimal  int
		feasible int
	}
	var randT, heuT, refT, ffT, optT tally
	generated := 0
	score := func(t *tally, cost float64, err error, optCost float64) {
		if err != nil {
			return
		}
		t.feasible++
		t.ratioSum += optCost / cost
		if math.Abs(cost-optCost) <= costEqualityTolerance {
			t.optimal++
		}
	}

	for g := 0; g < cfg.Graphs; g++ {
		var prob *distributor.Problem
		var optCost float64
		found := false
		for attempt := 0; attempt < cfg.MaxAttemptsPerGraph; attempt++ {
			generated++
			sg, err := workload.RandomGraph(rng, cfg.Params)
			if err != nil {
				return nil, err
			}
			weights := workload.RandomWeights(rng, resource.Dims)
			prob = &distributor.Problem{
				Graph:     sg,
				Devices:   cfg.Devices,
				Bandwidth: func(a, b device.ID) float64 { return cfg.LinkMbps },
				Weights:   weights,
			}
			_, cost, err := distributor.Optimal(prob)
			if err == nil {
				optCost, found = cost, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: could not draw a feasible graph in %d attempts; loosen parameters", cfg.MaxAttemptsPerGraph)
		}

		optT.ratioSum++
		optT.optimal++
		optT.feasible++

		_, heuCost, heuErr := distributor.Heuristic(prob)
		score(&heuT, heuCost, heuErr, optCost)
		_, randCost, randErr := distributor.RandomAdmit(prob, rng)
		score(&randT, randCost, randErr, optCost)
		if cfg.Extended {
			_, refCost, refErr := distributor.HeuristicRefined(prob)
			score(&refT, refCost, refErr, optCost)
			_, ffCost, ffErr := distributor.FirstFit(prob)
			score(&ffT, ffCost, ffErr, optCost)
		}
	}

	n := float64(cfg.Graphs)
	row := func(name string, t tally) Table1Row {
		return Table1Row{
			Name:        name,
			AvgRatio:    t.ratioSum / n,
			OptimalPct:  100 * float64(t.optimal) / n,
			FeasiblePct: 100 * float64(t.feasible) / n,
		}
	}
	rows := []Table1Row{
		row("Random", randT),
		row("Our Heuristic", heuT),
	}
	if cfg.Extended {
		rows = append(rows,
			row("Heu+Refine", refT),
			row("First-Fit", ffT),
		)
	}
	rows = append(rows, row("Optimal", optT))
	return &Table1Result{Rows: rows, Generated: generated}, nil
}

// FormatTable1 renders the result in the paper's layout.
func FormatTable1(r *Table1Result) string {
	out := fmt.Sprintf("%-14s  %-8s  %-8s\n", "Algorithms", "Average", "Optimal")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-14s  %6.0f%%   %6.0f%%\n", row.Name, row.AvgRatio*100, row.OptimalPct)
	}
	return out
}
