// Package experiments contains the reproduction harnesses for every table
// and figure of the paper's evaluation (§4): the Table 1 algorithm
// comparison, the Figure 5 success-rate simulation, and the Figure 3/4
// prototype scenario. Each harness is deterministic given its seed — and,
// for the parallel harnesses, independent of the worker count, because
// every unit of parallel work derives its own sub-seed up front (see
// SubSeed) instead of sharing one random stream.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/par"
	"ubiqos/internal/resource"
	"ubiqos/internal/workload"
)

// SubSeed derives the i-th independent sub-seed of a harness seed. Each
// parallel job seeds its own rand.Rand from SubSeed(cfg.Seed, i), so
// results do not depend on the order jobs run in — a shared rand.Rand
// would make any reordering (or any worker count > 1) change the tables.
// The stride keeps the sub-streams of neighboring harness seeds from
// colliding for up to a million jobs.
func SubSeed(seed int64, i int) int64 {
	return seed*1_000_000 + int64(i)
}

// Table1Config parameterizes the Table 1 experiment: "we compare the
// relative performances of different heuristic algorithms (random and
// ours) with the optimal algorithm ... limited to the special case of
// two-way cut. We assume two heterogeneous devices (PC, PDA) ... RA1 =
// [256MB, 300%], RA2 = [32MB, 100%]. We consider service graphs with 10 to
// 20 service components, ... on average, 3 to 6 outbound edges. Other
// parameters ... are uniformly distributed. ... 150 randomly generated
// service graphs."
type Table1Config struct {
	// Graphs is the number of feasible random graphs evaluated (150 in the
	// paper).
	Graphs int
	// Seed makes the experiment deterministic; each graph index derives
	// its own sub-seed from it, so the result is also independent of
	// Workers.
	Seed int64
	// Workers bounds the worker pool evaluating graphs concurrently
	// (0 = all usable CPUs, 1 = serial).
	Workers int
	// Params generates the random service graphs.
	Params workload.GraphParams
	// Devices are the two (or more) heterogeneous devices.
	Devices []distributor.DeviceInfo
	// LinkMbps is the available bandwidth between every device pair.
	LinkMbps float64
	// MaxAttemptsPerGraph bounds regeneration when a drawn graph does not
	// fit the devices at all (the paper evaluates feasible graphs).
	MaxAttemptsPerGraph int
	// Extended adds rows beyond the paper's table: the heuristic with
	// local-search refinement, and the first-fit ablation.
	Extended bool
}

// DefaultTable1Config returns the paper's setting.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Graphs: 150,
		Seed:   2002,
		Params: workload.Table1Params(),
		Devices: []distributor.DeviceInfo{
			{ID: "pc", Avail: resource.MB(256, 300)},
			{ID: "pda", Avail: resource.MB(32, 100)},
		},
		LinkMbps:            100,
		MaxAttemptsPerGraph: 50,
	}
}

// Table1Row is one line of Table 1: the algorithm's mean cost-aggregation
// ratio against the optimal solution, and the percentage of graphs for
// which it found the exact optimum.
type Table1Row struct {
	Name string
	// AvgRatio is mean(CA_optimal / CA_algorithm) over all graphs, with 0
	// contributed when the algorithm found no feasible cut.
	AvgRatio float64
	// OptimalPct is the fraction of graphs (in percent) where the
	// algorithm's cost equals the optimal cost.
	OptimalPct float64
	// FeasiblePct is the fraction of graphs (in percent) where the
	// algorithm produced any feasible cut (diagnostic; not in the paper's
	// table).
	FeasiblePct float64
}

// Table1Result holds the regenerated table.
type Table1Result struct {
	Rows []Table1Row
	// Generated counts all graphs drawn, including infeasible discards.
	Generated int
}

// costEqualityTolerance treats two cost aggregations as the same solution
// value.
const costEqualityTolerance = 1e-9

// table1Outcome is one algorithm's result on one graph.
type table1Outcome struct {
	feasible bool
	ratio    float64
	optimal  bool
}

// table1Sample is everything one graph index contributes to the table.
type table1Sample struct {
	generated         int
	rnd, heu, ref, ff table1Outcome
}

// evalTable1Graph runs one independent graph job: draw feasible instances
// from the graph's own sub-seeded stream, solve optimally, and score every
// algorithm against the optimum.
func evalTable1Graph(cfg Table1Config, g int) (table1Sample, error) {
	rng := rand.New(rand.NewSource(SubSeed(cfg.Seed, g)))
	var s table1Sample

	var prob *distributor.Problem
	var optCost float64
	found := false
	for attempt := 0; attempt < cfg.MaxAttemptsPerGraph; attempt++ {
		s.generated++
		sg, err := workload.RandomGraph(rng, cfg.Params)
		if err != nil {
			return s, err
		}
		weights := workload.RandomWeights(rng, resource.Dims)
		prob = &distributor.Problem{
			Graph:     sg,
			Devices:   cfg.Devices,
			Bandwidth: func(a, b device.ID) float64 { return cfg.LinkMbps },
			Weights:   weights,
		}
		_, cost, err := distributor.Optimal(prob)
		if err == nil {
			optCost, found = cost, true
			break
		}
	}
	if !found {
		return s, fmt.Errorf("experiments: could not draw a feasible graph in %d attempts; loosen parameters", cfg.MaxAttemptsPerGraph)
	}

	score := func(o *table1Outcome, cost float64, err error) {
		if err != nil {
			return
		}
		o.feasible = true
		o.ratio = optCost / cost
		o.optimal = math.Abs(cost-optCost) <= costEqualityTolerance
	}
	_, heuCost, heuErr := distributor.Heuristic(prob)
	score(&s.heu, heuCost, heuErr)
	_, randCost, randErr := distributor.RandomAdmit(prob, rng)
	score(&s.rnd, randCost, randErr)
	if cfg.Extended {
		_, refCost, refErr := distributor.HeuristicRefined(prob)
		score(&s.ref, refCost, refErr)
		_, ffCost, ffErr := distributor.FirstFit(prob)
		score(&s.ff, ffCost, ffErr)
	}
	return s, nil
}

// RunTable1 regenerates Table 1. Graph jobs are independent (each owns a
// sub-seeded random stream) and are fanned out over cfg.Workers; the
// aggregation walks samples in graph order, so the table is byte-identical
// for every worker count.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	if cfg.Graphs <= 0 {
		return nil, fmt.Errorf("experiments: Graphs must be positive")
	}
	if cfg.MaxAttemptsPerGraph <= 0 {
		cfg.MaxAttemptsPerGraph = 50
	}

	samples := make([]table1Sample, cfg.Graphs)
	err := par.ForEach(cfg.Graphs, cfg.Workers, func(g int) error {
		s, err := evalTable1Graph(cfg, g)
		if err != nil {
			return err
		}
		samples[g] = s
		return nil
	})
	if err != nil {
		return nil, err
	}

	type tally struct {
		ratioSum float64
		optimal  int
		feasible int
	}
	var randT, heuT, refT, ffT, optT tally
	add := func(t *tally, o table1Outcome) {
		if !o.feasible {
			return
		}
		t.feasible++
		t.ratioSum += o.ratio
		if o.optimal {
			t.optimal++
		}
	}
	generated := 0
	for _, s := range samples {
		generated += s.generated
		optT.ratioSum++
		optT.optimal++
		optT.feasible++
		add(&heuT, s.heu)
		add(&randT, s.rnd)
		if cfg.Extended {
			add(&refT, s.ref)
			add(&ffT, s.ff)
		}
	}

	n := float64(cfg.Graphs)
	row := func(name string, t tally) Table1Row {
		return Table1Row{
			Name:        name,
			AvgRatio:    t.ratioSum / n,
			OptimalPct:  100 * float64(t.optimal) / n,
			FeasiblePct: 100 * float64(t.feasible) / n,
		}
	}
	rows := []Table1Row{
		row("Random", randT),
		row("Our Heuristic", heuT),
	}
	if cfg.Extended {
		rows = append(rows,
			row("Heu+Refine", refT),
			row("First-Fit", ffT),
		)
	}
	rows = append(rows, row("Optimal", optT))
	return &Table1Result{Rows: rows, Generated: generated}, nil
}

// FormatTable1 renders the result in the paper's layout.
func FormatTable1(r *Table1Result) string {
	out := fmt.Sprintf("%-14s  %-8s  %-8s\n", "Algorithms", "Average", "Optimal")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-14s  %6.0f%%   %6.0f%%\n", row.Name, row.AvgRatio*100, row.OptimalPct)
	}
	return out
}
