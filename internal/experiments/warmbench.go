package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ubiqos/internal/device"
	"ubiqos/internal/distributor"
	"ubiqos/internal/graph"
	"ubiqos/internal/resource"
)

// The warm bench measures what a reconfiguration costs after a device
// crash: a cold branch-and-bound re-solve of the whole session graph
// versus a warm-started re-solve seeded with the broken incumbent. The
// workload models an active-space media service: six pipelines fanning
// out to wall-mounted portals, a bulk of transcode stages that belong on
// the compute server, and two stateful buffer chains on a memory-rich
// box whose crash is the measured fault. Only the buffer chains have to
// move, so the warm solver's work is proportional to the change while
// the cold solver re-derives the entire assignment.
//
// Scales multiply the Table 1 graph size (10-20 components) by 1x / 10x
// / 50x while dividing per-component demand, so every scale stresses
// search size rather than feasibility.

const (
	warmBenchPortals   = 6
	warmBenchMemChains = 2
	warmBenchMemLen    = 15
)

// WarmBenchScale describes one benchmarked graph-size tier.
type WarmBenchScale struct {
	Name     string  `json:"name"`
	MinNodes int     `json:"minNodes"`
	MaxNodes int     `json:"maxNodes"`
	Mult     float64 `json:"mult"`
}

// WarmBenchConfig parameterizes RunWarmBench.
type WarmBenchConfig struct {
	Seed   int64
	Trials int
	Scales []WarmBenchScale
}

// DefaultWarmBenchConfig covers 1x/10x/50x Table 1 sizes.
func DefaultWarmBenchConfig() WarmBenchConfig {
	return WarmBenchConfig{
		Seed:   11,
		Trials: 12,
		Scales: []WarmBenchScale{
			{Name: "1x", MinNodes: 10, MaxNodes: 20, Mult: 1},
			{Name: "10x", MinNodes: 100, MaxNodes: 200, Mult: 10},
			{Name: "50x", MinNodes: 500, MaxNodes: 1000, Mult: 50},
		},
	}
}

// WarmBenchDist summarizes a per-trial sample.
type WarmBenchDist struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	Max float64 `json:"max"`
}

// WarmBenchScaleResult aggregates the crash re-solves at one scale.
type WarmBenchScaleResult struct {
	Scale        WarmBenchScale `json:"scale"`
	Trials       int            `json:"trials"`
	Nodes        WarmBenchDist  `json:"nodes"`
	ColdExplored WarmBenchDist  `json:"coldExplored"`
	WarmExplored WarmBenchDist  `json:"warmExplored"`
	ColdMicros   WarmBenchDist  `json:"coldMicros"`
	WarmMicros   WarmBenchDist  `json:"warmMicros"`
	Reused       WarmBenchDist  `json:"reused"`
	// ExploredSpeedup and WallSpeedup compare p95 cold against p95 warm.
	ExploredSpeedup float64 `json:"exploredSpeedup"`
	WallSpeedup     float64 `json:"wallSpeedup"`
}

// WarmBenchResult is the full bench outcome.
type WarmBenchResult struct {
	Seed   int64                  `json:"seed"`
	Trials int                    `json:"trials"`
	Scales []WarmBenchScaleResult `json:"scales"`
}

type warmScenario struct {
	devs []distributor.DeviceInfo
	g    *graph.Graph
	w    resource.Weights
	home map[graph.NodeID]device.ID // constructed near-optimal seed
}

func warmPortalID(i int) device.ID { return device.ID(fmt.Sprintf("portal%d", i)) }

func buildWarmScenario(rng *rand.Rand, sc WarmBenchScale) (*warmScenario, error) {
	mult := sc.Mult
	s := &warmScenario{home: map[graph.NodeID]device.ID{}}
	s.devs = append(s.devs,
		distributor.DeviceInfo{ID: "desk-mem", Avail: resource.MB(400, 80)},
		distributor.DeviceInfo{ID: "desk-cpu", Avail: resource.MB(100, 400)},
		distributor.DeviceInfo{ID: "desk-bal", Avail: resource.MB(200, 200)},
	)
	for i := 0; i < warmBenchPortals; i++ {
		s.devs = append(s.devs, distributor.DeviceInfo{ID: warmPortalID(i), Avail: resource.MB(8/mult, 14/mult)})
	}
	target := sc.MinNodes + rng.Intn(sc.MaxNodes-sc.MinNodes+1)
	memLen := target / warmBenchPortals
	if memLen > warmBenchMemLen {
		memLen = warmBenchMemLen
	}
	if memLen < 2 {
		memLen = 2
	}
	rest := target - warmBenchMemChains*memLen
	lengths := make([]int, warmBenchPortals)
	for i := 0; i < warmBenchMemChains; i++ {
		lengths[i] = memLen
	}
	nBulk := warmBenchPortals - warmBenchMemChains
	for i := 0; i < nBulk; i++ {
		lengths[warmBenchMemChains+i] = rest / nBulk
		if i < rest%nBulk {
			lengths[warmBenchMemChains+i]++
		}
	}
	g := graph.New()
	for pipe := 0; pipe < warmBenchPortals; pipe++ {
		length := lengths[pipe]
		if length < 2 {
			length = 2
		}
		portal := warmPortalID(pipe)
		memChain := pipe < warmBenchMemChains
		var prev graph.NodeID
		for j := 0; j < length; j++ {
			id := graph.NodeID(fmt.Sprintf("p%03d-%03d", pipe, j))
			// Every interior exceeds a portal capacity dimension, so each
			// sink hop is a forced crossing and the solver's network floor
			// prices it exactly. Buffer stages are the largest components:
			// a cold solve places them (wrongly) first and pays deep
			// backtracking, a warm solve orders them after the reusable
			// incumbent and keeps the repair local.
			var res resource.Vector
			if memChain {
				res = resource.MB((20+10*rng.Float64())/mult, (2+2*rng.Float64())/mult)
			} else {
				res = resource.MB((1+1*rng.Float64())/mult, (15+5*rng.Float64())/mult)
			}
			n := &graph.Node{ID: id, Type: "component", Resources: res}
			if j == length-1 {
				n.Pin = string(portal)
				n.Resources = resource.MB((1-rng.Float64())*4/mult, (1-rng.Float64())*8/mult)
				s.home[id] = portal
			} else if memChain {
				s.home[id] = "desk-mem"
			} else {
				s.home[id] = "desk-cpu"
			}
			g.MustAddNode(n)
			if j > 0 {
				tp := 0.2 * (1 - rng.Float64()) / mult
				if j == length-1 {
					tp = 0.5 + rng.Float64() // playback stream to the portal
				}
				g.MustAddEdge(prev, id, tp)
			}
			prev = id
		}
	}
	s.g = g
	w := resource.Weights{}
	for i := 0; i < resource.Dims+1; i++ {
		w = append(w, 1.0/float64(resource.Dims+1))
	}
	s.w = w
	return s, nil
}

func (s *warmScenario) bandwidth(a, b device.ID) float64 {
	aPortal := strings.HasPrefix(string(a), "portal")
	bPortal := strings.HasPrefix(string(b), "portal")
	switch {
	case !aPortal && !bPortal:
		return 100 // wired desktop segment
	case aPortal != bPortal:
		return 54 // 802.11 hop to a portal
	default:
		return 2
	}
}

func warmDist(samples []float64) WarmBenchDist {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return WarmBenchDist{P50: at(0.50), P95: at(0.95), Max: at(1)}
}

// RunWarmBench executes the crash re-solve comparison at every scale.
func RunWarmBench(cfg WarmBenchConfig) (*WarmBenchResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("warmbench: trials must be positive, got %d", cfg.Trials)
	}
	res := &WarmBenchResult{Seed: cfg.Seed, Trials: cfg.Trials}
	for _, sc := range cfg.Scales {
		rng := rand.New(rand.NewSource(cfg.Seed))
		var nodes, coldExp, warmExp, coldUs, warmUs, reused []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			s, err := buildWarmScenario(rng, sc)
			if err != nil {
				return nil, err
			}
			p := &distributor.Problem{Graph: s.g, Devices: s.devs, Bandwidth: s.bandwidth, Weights: s.w, NetworkFloor: true, Stats: &distributor.SearchStats{}}
			// The pre-crash configuration: seeded with the constructed
			// layout the way a live configurator would seed from its plan
			// cache; the result is still the proven optimum.
			a0, cost0, err := distributor.OptimalWarm(p, &distributor.Incumbent{Placement: s.home})
			if err != nil {
				return nil, fmt.Errorf("warmbench %s trial %d: initial solve: %w", sc.Name, trial, err)
			}

			// Crash desk-mem: only the stateful buffer chains must move.
			survivors := append([]distributor.DeviceInfo(nil), s.devs[1:]...)
			inc := &distributor.Incumbent{Placement: make(map[graph.NodeID]device.ID, len(a0)), Cost: cost0}
			for id, di := range a0 {
				inc.Placement[id] = s.devs[di].ID
			}

			p2 := &distributor.Problem{Graph: s.g, Devices: survivors, Bandwidth: s.bandwidth, Weights: s.w, NetworkFloor: true, Stats: &distributor.SearchStats{}}
			t0 := time.Now()
			_, coldCost, err := distributor.Optimal(p2)
			coldDur := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("warmbench %s trial %d: cold re-solve: %w", sc.Name, trial, err)
			}
			cold := *p2.Stats

			p2.Stats = &distributor.SearchStats{}
			t0 = time.Now()
			_, warmCost, err := distributor.OptimalWarm(p2, inc)
			warmDur := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("warmbench %s trial %d: warm re-solve: %w", sc.Name, trial, err)
			}
			warm := *p2.Stats
			if diff := math.Abs(warmCost - coldCost); diff > 1e-9*math.Max(1, math.Abs(coldCost)) {
				return nil, fmt.Errorf("warmbench %s trial %d: warm cost %v != cold cost %v", sc.Name, trial, warmCost, coldCost)
			}

			nodes = append(nodes, float64(len(a0)))
			coldExp = append(coldExp, float64(cold.Explored))
			warmExp = append(warmExp, float64(warm.Explored))
			coldUs = append(coldUs, float64(coldDur.Microseconds()))
			warmUs = append(warmUs, float64(warmDur.Microseconds()))
			reused = append(reused, float64(warm.Reused))
		}
		sr := WarmBenchScaleResult{
			Scale:        sc,
			Trials:       cfg.Trials,
			Nodes:        warmDist(nodes),
			ColdExplored: warmDist(coldExp),
			WarmExplored: warmDist(warmExp),
			ColdMicros:   warmDist(coldUs),
			WarmMicros:   warmDist(warmUs),
			Reused:       warmDist(reused),
		}
		if sr.WarmExplored.P95 > 0 {
			sr.ExploredSpeedup = sr.ColdExplored.P95 / sr.WarmExplored.P95
		}
		if sr.WarmMicros.P95 > 0 {
			sr.WallSpeedup = sr.ColdMicros.P95 / sr.WarmMicros.P95
		}
		res.Scales = append(res.Scales, sr)
	}
	return res, nil
}
