// Flash-crowd drill: the closed capacity loop (admission gate +
// instance autoscaler) against an arrival spike. The baseline run is the
// paper's open-loop configurator — every request runs the full pipeline,
// downloads are paid on first use, and overload surfaces as placement
// failures. The closed-loop run puts the saturation-aware gate in front
// of the pipeline and the autoscaler behind the registry, and the
// acceptance criterion is that a ≥5× spike costs zero sessions to
// capacity exhaustion while the configure-latency SLO stays unburned —
// pressure is absorbed as controlled degraded admissions and rejections
// with retry-after hints instead of pipeline failures.
package experiments

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/autoscale"
	"ubiqos/internal/capacity"
	"ubiqos/internal/composer"
	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/netsim"
	"ubiqos/internal/registry"
	"ubiqos/internal/repository"
	"ubiqos/internal/resource"
)

// Crowd-space tuning. The server component is deliberately heavy (a
// fifth of a desktop's CPU) so the three-desktop space holds ~15
// concurrent sessions — a crowd of 60 is honest 4× overload.
var (
	crowdServerRes   = resource.MB(48, 20)
	crowdEnhancerRes = resource.MB(24, 10)
	crowdPlayerRes   = resource.MB(8, 5)
)

const (
	crowdServerMB   = 12 // ~1s modeled download over 100 Mbps Ethernet
	crowdEnhancerMB = 6
)

// crowdThresholds widens the analyzer's margins for the drill: the gate
// must start rejecting while the distributor can still place a session,
// so "saturated" means ~3 session slots left, not zero.
func crowdThresholds() capacity.Thresholds {
	return capacity.Thresholds{
		ApproachEnter: 0.40,
		ApproachExit:  0.48,
		SaturateEnter: 0.20,
		SaturateExit:  0.28,
		Alpha:         0.5,
		QueueApproach: 4,
		QueueSaturate: 16,
	}
}

// BuildCrowdSpace constructs the flash-crowd domain: three server
// desktops, a generously-provisioned portal the players are pinned to,
// full Ethernet mesh. Only the player is statically registered and
// pre-installed. With closedLoop false the server and enhancer are
// registered statically with their packages published but NOT installed
// — the paper's dynamic-downloading path, paid on first use per device.
// With closedLoop true nothing else is registered: the admission gate is
// wired in, and the caller brings the server/enhancer up through the
// autoscaler (CrowdGroups), whose pre-provisioning installs packages
// ahead of demand.
func BuildCrowdSpace(scale float64, closedLoop bool) (*domain.Domain, error) {
	opts := domain.Options{
		Scale:          scale,
		SampleInterval: 10 * time.Millisecond,
	}
	if closedLoop {
		opts.EnableAdmission = true
		opts.SaturationThresholds = crowdThresholds()
		opts.AdmissionPolicies = map[string]admission.ClassPolicy{
			// Voice holds full quality until the space saturates; the crowd
			// class sheds its optional enhancer as soon as pressure shows.
			"voice":      {DegradeAt: admission.Never, RejectAt: capacity.StateSaturated},
			"background": {DegradeAt: capacity.StateApproaching, RejectAt: capacity.StateSaturated},
		}
	}
	d, err := domain.New("crowd-space", opts)
	if err != nil {
		return nil, err
	}
	desktops := []device.ID{"desktop1", "desktop2", "desktop3"}
	for _, id := range desktops {
		if _, err := d.AddDevice(id, device.ClassDesktop, resource.MB(256, 100), map[string]string{"platform": "pc"}); err != nil {
			return nil, err
		}
	}
	// The portal never binds the space: it only runs the lightweight
	// players.
	if _, err := d.AddDevice("portal", device.ClassDesktop, resource.MB(2048, 400), map[string]string{"platform": "pc"}); err != nil {
		return nil, err
	}
	all := append(append([]device.ID{}, desktops...), "portal")
	for i, a := range all {
		for _, b := range all[i+1:] {
			if err := d.Connect(a, b, netsim.Ethernet); err != nil {
				return nil, err
			}
		}
		if err := d.ConnectServer(a, netsim.Ethernet); err != nil {
			return nil, err
		}
	}

	d.Registry.MustRegister(&registry.Instance{
		Name:      "crowd-player",
		Type:      "crowd-player",
		Attrs:     map[string]string{"platform": "pc"},
		Resources: crowdPlayerRes,
		SizeMB:    2,
	})
	for _, dev := range all {
		d.Repo.MarkInstalled(string(dev), "crowd-player")
	}

	if !closedLoop {
		for i := 1; i <= 2; i++ {
			name := fmt.Sprintf("crowd-server-%d", i)
			d.Registry.MustRegister(&registry.Instance{
				Name:      name,
				Type:      "crowd-server",
				Resources: crowdServerRes,
				SizeMB:    crowdServerMB,
			})
			d.Repo.MustPublish(repository.Package{Name: name, SizeMB: crowdServerMB})
		}
		d.Registry.MustRegister(&registry.Instance{
			Name:      "crowd-enhancer-1",
			Type:      "crowd-enhancer",
			Resources: crowdEnhancerRes,
			SizeMB:    crowdEnhancerMB,
		})
		d.Repo.MustPublish(repository.Package{Name: "crowd-enhancer-1", SizeMB: crowdEnhancerMB})
	}
	return d, nil
}

// CrowdGroups are the closed-loop run's autoscaling groups: the server
// scales with the crowd class's arrival rate, and the enhancer starts at
// zero replicas (scale-to-zero — it only exists while demand justifies
// the luxury).
func CrowdGroups() []autoscale.GroupSpec {
	return []autoscale.GroupSpec{
		{
			Name:             "crowd-server",
			Template:         registry.Instance{Type: "crowd-server", Resources: crowdServerRes, SizeMB: crowdServerMB},
			Class:            "background",
			Min:              1,
			Max:              6,
			TargetPerReplica: 40,
		},
		{
			Name:             "crowd-enhancer",
			Template:         registry.Instance{Type: "crowd-enhancer", Resources: crowdEnhancerRes, SizeMB: crowdEnhancerMB},
			Class:            "background",
			Min:              0,
			Max:              2,
			TargetPerReplica: 120,
		},
	}
}

// CrowdVoiceApp is the steady class's graph: server → player, nothing
// optional.
func CrowdVoiceApp() *composer.AbstractGraph {
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "server", Spec: registry.Spec{Type: "crowd-server"}})
	ag.MustAddNode(&composer.AbstractNode{ID: "player", Spec: registry.Spec{Type: "crowd-player"}, Pin: core.ClientRole})
	ag.MustAddEdge("server", "player", 1.0)
	return ag
}

// CrowdApp is the crowd class's graph: the mandatory server → player
// path plus an optional enhancer branch — the component degraded
// admission sheds.
func CrowdApp() *composer.AbstractGraph {
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "server", Spec: registry.Spec{Type: "crowd-server"}})
	ag.MustAddNode(&composer.AbstractNode{ID: "enhancer", Spec: registry.Spec{Type: "crowd-enhancer"}, Optional: true})
	ag.MustAddNode(&composer.AbstractNode{ID: "player", Spec: registry.Spec{Type: "crowd-player"}, Pin: core.ClientRole})
	ag.MustAddEdge("server", "player", 1.0)
	ag.MustAddEdge("server", "enhancer", 0.5)
	return ag
}

// DefaultAutoscaleDrillOptions is the drill's control-loop tuning: a
// 25 ms tick so the loop can react inside a sub-second spike, with the
// cooldown and lease TTL scaled to match.
func DefaultAutoscaleDrillOptions() autoscale.Options {
	return autoscale.Options{
		Interval:       25 * time.Millisecond,
		Cooldown:       75 * time.Millisecond,
		MaxStep:        2,
		ScaleDownAfter: 2,
		TTL:            250 * time.Millisecond,
	}
}

// FlashCrowdConfig parameterizes one drill run.
type FlashCrowdConfig struct {
	// Scale is the emulation time scale.
	Scale float64
	// Steady is the voice-class session count in the warmup phase;
	// SteadyGap is the wall-clock gap between those arrivals.
	Steady    int
	SteadyGap time.Duration
	// Crowd is the background-class session count in the spike; CrowdGap
	// is the gap between spike arrivals. The spike's arrival rate must be
	// ≥5× the steady rate (SteadyGap ≥ 5×CrowdGap).
	Crowd    int
	CrowdGap time.Duration
	// VoiceHold / CrowdHold are how long each admitted session streams
	// (wall clock) before the driver stops it.
	VoiceHold time.Duration
	CrowdHold time.Duration
	// ClosedLoop turns on the admission gate and the autoscaler.
	ClosedLoop bool
	// Settle is how long the driver waits after the last hold drains
	// before snapshotting — time for the autoscaler to scale back down.
	Settle time.Duration
}

// DefaultFlashCrowdConfig is the benchautoscale tuning: 10 steady voice
// sessions at 50/s, then a 60-session crowd at 250/s (5× the steady
// rate) against a space that holds ~15 concurrent sessions.
func DefaultFlashCrowdConfig(closedLoop bool) FlashCrowdConfig {
	return FlashCrowdConfig{
		Scale:      0.02,
		Steady:     10,
		SteadyGap:  20 * time.Millisecond,
		Crowd:      60,
		CrowdGap:   4 * time.Millisecond,
		VoiceHold:  900 * time.Millisecond,
		CrowdHold:  400 * time.Millisecond,
		ClosedLoop: closedLoop,
		Settle:     400 * time.Millisecond,
	}
}

// ClassOutcome is one session class's drill tally, as the driver saw it.
type ClassOutcome struct {
	Class string `json:"class"`
	// Offered counts arrivals; Admitted + Degraded + Rejected +
	// LostToCapacity sum to it. Degraded is derived from the gate's own
	// tallies (0 in the baseline, which has no gate).
	Offered  int `json:"offered"`
	Admitted int `json:"admitted"`
	Degraded int `json:"degraded"`
	// Rejected counts controlled gate rejections (each carried a
	// retry-after hint).
	Rejected int `json:"rejected"`
	// LostToCapacity counts pipeline failures — sessions the open loop
	// turned away with an infeasible-placement or admission-control error
	// after running the expensive pipeline. The closed-loop acceptance
	// criterion is zero, for every class.
	LostToCapacity int `json:"lostToCapacity"`
}

// FlashCrowdResult is one drill run's report (half of
// BENCH_autoscale.json).
type FlashCrowdResult struct {
	ClosedLoop bool           `json:"closedLoop"`
	Classes    []ClassOutcome `json:"classes"`
	// LostToCapacity totals the per-class losses.
	LostToCapacity int `json:"lostToCapacity"`
	// ConfigureBurn is the configure-p95 objective's burn rate after the
	// drill (>1 = violated).
	ConfigureBurn float64 `json:"configureBurn"`
	// DownloadsMs totals modeled download time paid across admitted
	// sessions — the cost the autoscaler's pre-installation removes.
	DownloadsMs float64 `json:"downloadsMs"`
	// ScaleUps / ScaleDowns / MaxReplicas / FinalReplicas summarize the
	// autoscaler's trajectory (zero / empty in the baseline).
	ScaleUps      int64          `json:"scaleUps,omitempty"`
	ScaleDowns    int64          `json:"scaleDowns,omitempty"`
	MaxReplicas   map[string]int `json:"maxReplicas,omitempty"`
	FinalReplicas map[string]int `json:"finalReplicas,omitempty"`
	// MeetsCriterion reports the closed-loop acceptance bound: no session
	// lost to capacity and the configure SLO unburned. Always false for
	// the baseline (the criterion does not apply to it).
	MeetsCriterion bool    `json:"meetsCriterion"`
	WallMs         float64 `json:"wallMs"`
}

// RunFlashCrowd builds the crowd space, replays the warmup + spike
// arrival schedule, waits for the holds to drain, and reports the tally.
func RunFlashCrowd(cfg FlashCrowdConfig) (*FlashCrowdResult, error) {
	if cfg.Scale <= 0 || cfg.Steady <= 0 || cfg.Crowd <= 0 {
		return nil, fmt.Errorf("experiments: invalid flash-crowd config %+v", cfg)
	}
	start := time.Now()
	dom, err := BuildCrowdSpace(cfg.Scale, cfg.ClosedLoop)
	if err != nil {
		return nil, err
	}
	defer dom.Close()
	if cfg.ClosedLoop {
		if _, err := dom.EnableAutoscaler(DefaultAutoscaleDrillOptions(), CrowdGroups()...); err != nil {
			return nil, err
		}
	}

	type tally struct{ offered, admitted, rejected, lost int }
	var (
		mu       sync.Mutex
		byClass  = map[string]*tally{}
		holds    sync.WaitGroup
		dlTotal  time.Duration
		voiceApp = CrowdVoiceApp()
		crowdApp = CrowdApp()
	)
	classTally := func(class string) *tally {
		if byClass[class] == nil {
			byClass[class] = &tally{}
		}
		return byClass[class]
	}
	launch := func(class string, seq int, app *composer.AbstractGraph, hold time.Duration) {
		defer holds.Done()
		id := fmt.Sprintf("%s-%d", class, seq)
		active, err := dom.StartApp(core.Request{
			SessionID:    id,
			Class:        class,
			App:          app,
			ClientDevice: "portal",
		})
		mu.Lock()
		t := classTally(class)
		t.offered++
		if err != nil {
			var rej *admission.RejectedError
			if errors.As(err, &rej) {
				t.rejected++
			} else {
				t.lost++
			}
			mu.Unlock()
			return
		}
		t.admitted++
		dlTotal += active.Timing.Downloading
		mu.Unlock()
		holds.Add(1)
		time.AfterFunc(hold, func() {
			defer holds.Done()
			dom.StopApp(id)
		})
	}

	// Warmup: the steady voice class trickles in.
	for i := 0; i < cfg.Steady; i++ {
		holds.Add(1)
		go launch("voice", i, voiceApp, cfg.VoiceHold)
		time.Sleep(cfg.SteadyGap)
	}
	// Spike: the crowd arrives at ≥5× the steady rate, with the voice
	// trickle continuing underneath (one voice arrival per Steady-worth
	// of crowd arrivals).
	voiceEvery := cfg.Crowd / cfg.Steady
	if voiceEvery < 1 {
		voiceEvery = 1
	}
	voiceSeq := cfg.Steady
	for i := 0; i < cfg.Crowd; i++ {
		holds.Add(1)
		go launch("background", i, crowdApp, cfg.CrowdHold)
		if i%voiceEvery == voiceEvery-1 {
			holds.Add(1)
			go launch("voice", voiceSeq, voiceApp, cfg.VoiceHold)
			voiceSeq++
		}
		time.Sleep(cfg.CrowdGap)
	}
	holds.Wait()
	if cfg.Settle > 0 {
		time.Sleep(cfg.Settle)
	}

	res := &FlashCrowdResult{ClosedLoop: cfg.ClosedLoop}
	degraded := map[string]int{}
	if dom.Admission != nil {
		for _, c := range dom.Admission.Status().Classes {
			degraded[c.Class] = int(c.Degraded)
		}
	}
	mu.Lock()
	for class, t := range byClass {
		res.Classes = append(res.Classes, ClassOutcome{
			Class:          class,
			Offered:        t.offered,
			Admitted:       t.admitted - degraded[class],
			Degraded:       degraded[class],
			Rejected:       t.rejected,
			LostToCapacity: t.lost,
		})
		res.LostToCapacity += t.lost
	}
	res.DownloadsMs = float64(dlTotal) / float64(time.Millisecond)
	mu.Unlock()
	sort.Slice(res.Classes, func(i, j int) bool { return res.Classes[i].Class < res.Classes[j].Class })

	for _, st := range dom.SLO.Evaluate() {
		if st.Name == "configure-p95" {
			res.ConfigureBurn = st.BurnRate
		}
	}
	if dom.Autoscaler != nil {
		res.MaxReplicas = map[string]int{}
		res.FinalReplicas = map[string]int{}
		for _, g := range dom.Autoscaler.Status().Groups {
			res.ScaleUps += g.Ups
			res.ScaleDowns += g.Downs
			res.MaxReplicas[g.Name] = g.MaxSeen
			res.FinalReplicas[g.Name] = g.Replicas
		}
	}
	res.MeetsCriterion = cfg.ClosedLoop && res.LostToCapacity == 0 && res.ConfigureBurn <= 1
	res.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}
