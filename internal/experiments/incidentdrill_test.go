package experiments

import (
	"testing"

	"ubiqos/internal/incident"
)

// TestRunIncidentDrillAcceptance runs the benchincident default drill
// and checks the BENCH_incident.json acceptance shape: an incident
// opens, cites at least three signal sources, passes through
// mitigating, and resolves with nonzero impact accounting.
func TestRunIncidentDrillAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos drill")
	}
	res, err := RunIncidentDrill(DefaultIncidentDrillConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateIncidentDrill(res); err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 6 {
		t.Errorf("sessions = %d, want 6", res.Sessions)
	}
	if res.FaultsInjected == 0 {
		t.Error("no faults injected; the drill exercised nothing")
	}
	if res.Recovered == 0 {
		t.Error("no recoveries; the crashes hit nothing")
	}
	sc := res.Showcase
	if sc.Rule != incident.RuleFaultStorm {
		t.Logf("showcase rule = %s (fault-storm expected but not required)", sc.Rule)
	}
	if sc.Severity < incident.SevWarning {
		t.Errorf("showcase severity = %s", sc.SeverityStr)
	}
	// The list view must not duplicate the showcase's evidence bundle.
	for _, inc := range res.Incidents {
		if inc.Evidence != nil {
			t.Errorf("incident %s in the log carries an evidence bundle", inc.ID)
		}
	}
}

func TestRunIncidentDrillValidation(t *testing.T) {
	if _, err := RunIncidentDrill(IncidentDrillConfig{}); err == nil {
		t.Error("zero config should fail")
	}
	cfg := DefaultIncidentDrillConfig()
	cfg.RecoverAfter = 0
	if _, err := RunIncidentDrill(cfg); err == nil {
		t.Error("permanent faults should fail (the storm can never clear)")
	}
	if err := ValidateIncidentDrill(nil); err == nil {
		t.Error("nil result should fail")
	}
	if err := ValidateIncidentDrill(&IncidentDrillResult{}); err == nil {
		t.Error("empty result should fail")
	}
	if err := ValidateIncidentDrill(&IncidentDrillResult{Opened: 1, Resolved: 1}); err == nil {
		t.Error("missing showcase should fail")
	}
	bad := &IncidentDrillResult{
		Opened: 1, Resolved: 1,
		Showcase: &incident.Incident{
			ID:    "INC-1",
			State: incident.StateResolved,
		},
	}
	if err := ValidateIncidentDrill(bad); err == nil {
		t.Error("showcase without evidence should fail")
	}
}
