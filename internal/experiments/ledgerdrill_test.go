package experiments

import (
	"testing"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/ledger"
)

// TestRunLedgerDrillAcceptance runs the benchledger default drill and
// checks the BENCH_ledger.json acceptance shape: a scorecard for each of
// the three traffic classes with sane ratios and non-empty per-axis
// deficit quantiles, plus a clean completion recorded per class.
func TestRunLedgerDrillAcceptance(t *testing.T) {
	cfg := DefaultLedgerDrillConfig()
	cfg.Supervisor = core.SupervisorOptions{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
	res, err := RunLedgerDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateLedgerDrill(res); err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 3*cfg.PerClass || res.Stopped != 3 {
		t.Errorf("sessions=%d stopped=%d, want %d/3", res.Sessions, res.Stopped, 3*cfg.PerClass)
	}
	byClass := map[string]ledger.Scorecard{}
	for _, sc := range res.Scorecards {
		byClass[sc.Class] = sc
	}
	for _, cl := range res.Classes {
		sc := byClass[cl]
		// The clean stop per class must land as a completion, and every
		// scorecard must quantile the framerate axis the classes ask on.
		if sc.Completed < 1 {
			t.Errorf("class %q completed = %d, want >= 1", cl, sc.Completed)
		}
		if q, ok := sc.DeficitPerAxis["framerate"]; !ok || q.Count < int(sc.Completed) {
			t.Errorf("class %q framerate deficit quantiles = %+v", cl, sc.DeficitPerAxis)
		}
	}
	if res.FaultsInjected == 0 {
		t.Error("no faults injected; the drill exercised nothing")
	}
}

func TestRunLedgerDrillValidation(t *testing.T) {
	if _, err := RunLedgerDrill(LedgerDrillConfig{}); err == nil {
		t.Error("zero config should fail")
	}
	if err := ValidateLedgerDrill(nil); err == nil {
		t.Error("nil result should fail")
	}
	if err := ValidateLedgerDrill(&LedgerDrillResult{Classes: []string{"a"}}); err == nil {
		t.Error("too few classes should fail")
	}
	if err := ValidateLedgerDrill(&LedgerDrillResult{Classes: []string{"a", "b", "c"}}); err == nil {
		t.Error("missing scorecards should fail")
	}
}
