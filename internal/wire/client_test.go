package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stallServer accepts connections and reads requests but never responds —
// the shape of a wedged daemon. It counts the requests it swallowed.
func stallServer(t *testing.T) (addr string, requests *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	requests = &atomic.Int64{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					requests.Add(1)
				}
				conn.Close()
			}()
		}
	}()
	return ln.Addr().String(), requests
}

func TestCallTimesOutOnStalledServer(t *testing.T) {
	addr, _ := stallServer(t)
	c, err := DialWith(addr, Options{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(Request{Op: OpPing})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Call against a stalled server succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Call blocked %v; the deadline did not fire", elapsed)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error %v is not a timeout", err)
	}
}

func TestCallWithoutTimeoutKeepsLegacyBehavior(t *testing.T) {
	// A zero-options client against a healthy echo server works as before.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sc := bufio.NewScanner(conn)
		enc := json.NewEncoder(conn)
		for sc.Scan() {
			enc.Encode(Response{OK: true})
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
}

func TestCallRetriesAfterTimeout(t *testing.T) {
	addr, requests := stallServer(t)
	c, err := DialWith(addr, Options{
		Timeout:      60 * time.Millisecond,
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(Request{Op: OpPing}); err == nil {
		t.Fatal("expected failure")
	}
	// Initial attempt + 2 retries, each on a fresh connection.
	waitFor(t, func() bool { return requests.Load() == 3 }, "3 attempts, got %d", requests)
}

func TestCallRecoversAfterServerRestart(t *testing.T) {
	// First server dies mid-conversation; the client re-dials and the
	// retried call lands on the replacement listening on the same port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	conns := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns <- conn
	}()
	c, err := DialWith(addr, Options{Retries: 5, RetryBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Kill the first server side entirely, then bring up a healthy one.
	(<-conns).Close()
	ln.Close()
	var ln2 net.Listener
	for i := 0; i < 50; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("could not rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	go func() {
		for {
			conn, err := ln2.Accept()
			if err != nil {
				return
			}
			go func() {
				sc := bufio.NewScanner(conn)
				enc := json.NewEncoder(conn)
				for sc.Scan() {
					enc.Encode(Response{OK: true})
				}
			}()
		}
	}()
	resp, err := c.Call(Request{Op: OpPing})
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if !resp.OK {
		t.Fatal("response not OK")
	}
}

func TestServerErrorIsNotRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var served atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				sc := bufio.NewScanner(conn)
				enc := json.NewEncoder(conn)
				for sc.Scan() {
					served.Add(1)
					enc.Encode(Response{Error: "nope"})
				}
			}()
		}
	}()
	c, err := DialWith(ln.Addr().String(), Options{Retries: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(Request{Op: OpPing})
	if err == nil || !strings.Contains(err.Error(), "server error") {
		t.Fatalf("err = %v", err)
	}
	if n := served.Load(); n != 1 {
		t.Fatalf("server error retried: %d requests", n)
	}
}

func waitFor(t *testing.T, cond func() bool, format string, n *atomic.Int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf(format, n.Load())
}
