package wire

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ubiqos/internal/capacity"
	"ubiqos/internal/experiments"
	"ubiqos/internal/metrics"
	"ubiqos/internal/qos"
)

// TestCapacityObservatoryEndToEnd drives the new capacity surface through
// both transports: the saturation/timeseries wire ops and the /metrics,
// /timeseries, /saturation HTTP endpoints.
func TestCapacityObservatoryEndToEnd(t *testing.T) {
	dom, err := experiments.BuildAudioSpace(0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dom.Close)
	srv, err := NewServer(dom)
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(NewHTTPHandler(dom))
	t.Cleanup(web.Close)

	resp := srv.Handle(Request{
		Op:           OpStart,
		SessionID:    "cap-1",
		Class:        "audio",
		App:          experiments.AudioOnDemandApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 44))),
		ClientDevice: "jornada",
	})
	if !resp.OK {
		t.Fatalf("start: %s", resp.Error)
	}
	defer srv.Handle(Request{Op: OpStop, SessionID: "cap-1"})

	// --- saturation op: the payload behind qosctl top. ---
	sat := srv.Handle(Request{Op: OpSaturation})
	if !sat.OK || sat.Saturation == nil {
		t.Fatalf("saturation: %s", sat.Error)
	}
	if len(sat.Saturation.Devices) == 0 {
		t.Fatal("saturation report has no devices")
	}
	if sat.Saturation.Space != capacity.StateOK {
		t.Errorf("one session should leave the space ok, got %v", sat.Saturation.Space)
	}
	foundClass := false
	for _, c := range sat.Saturation.Classes {
		if c.Class == "audio" && c.Active == 1 {
			foundClass = true
		}
	}
	if !foundClass {
		t.Errorf("saturation classes missing audio: %+v", sat.Saturation.Classes)
	}

	// --- timeseries op: list, then one series. ---
	list := srv.Handle(Request{Op: OpTimeseries})
	if !list.OK || len(list.TimeseriesMetrics) == 0 {
		t.Fatalf("timeseries list: %s (%d metrics)", list.Error, len(list.TimeseriesMetrics))
	}
	ts := srv.Handle(Request{Op: OpTimeseries, Metric: metrics.SpaceHeadroom, Window: "5m"})
	if !ts.OK || ts.Timeseries == nil || len(ts.Timeseries.Samples) == 0 {
		t.Fatalf("timeseries query: %s", ts.Error)
	}
	if bad := srv.Handle(Request{Op: OpTimeseries, Metric: "nope"}); bad.OK {
		t.Error("unknown metric should fail")
	}
	if bad := srv.Handle(Request{Op: OpTimeseries, Metric: metrics.SpaceHeadroom, Window: "bogus"}); bad.OK {
		t.Error("bad window should fail")
	}

	// --- /metrics: labeled capacity gauges present in the exposition. ---
	body := httpGet(t, web.URL+"/metrics")
	for _, want := range []string{
		`device_headroom_ratio{device="`,
		`device_utilization_ratio{device="`,
		`link_residual_mbps{link="`,
		`sessions_by_class{class="audio"} 1`,
		"space_headroom_ratio ",
		"saturation_state ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// --- /timeseries JSON shapes. ---
	var listing struct {
		Metrics []string `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/timeseries")), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Metrics) == 0 {
		t.Fatal("/timeseries listed no metrics")
	}
	var series struct {
		Metric  string            `json:"metric"`
		Samples []capacity.Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/timeseries?metric="+metrics.SpaceHeadroom+"&window=10m")), &series); err != nil {
		t.Fatal(err)
	}
	if series.Metric != metrics.SpaceHeadroom || len(series.Samples) == 0 {
		t.Fatalf("/timeseries series = %+v", series)
	}
	if code := httpStatus(t, web.URL+"/timeseries?metric=nope"); code != http.StatusNotFound {
		t.Errorf("/timeseries unknown metric status = %d", code)
	}
	if code := httpStatus(t, web.URL+"/timeseries?metric="+metrics.SpaceHeadroom+"&window=bogus"); code != http.StatusBadRequest {
		t.Errorf("/timeseries bad window status = %d", code)
	}

	// --- /saturation in both formats. ---
	var rep capacity.Report
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/saturation")), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Devices) == 0 || rep.SpaceStr == "" {
		t.Fatalf("/saturation report = %+v", rep)
	}
	text := httpGet(t, web.URL+"/saturation?format=text")
	for _, want := range []string{"capacity observatory", "DEVICE", "space:"} {
		if !strings.Contains(text, want) {
			t.Errorf("/saturation?format=text missing %q:\n%s", want, text)
		}
	}
}
