package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/buildinfo"
	"ubiqos/internal/composer"
	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/graph"
	"ubiqos/internal/incident"
	"ubiqos/internal/metrics"
	"ubiqos/internal/repository"
	"ubiqos/internal/trace"
)

// maxLineBytes bounds one request line (a large abstract graph fits well
// within this).
const maxLineBytes = 4 << 20

// Server exposes a domain over TCP.
type Server struct {
	dom *domain.Domain

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps the domain.
func NewServer(dom *domain.Domain) (*Server, error) {
	if dom == nil {
		return nil, fmt.Errorf("wire: nil domain")
	}
	return &Server{dom: dom, conns: make(map[net.Conn]struct{})}, nil
}

// Listen binds the address and starts serving in background goroutines.
// It returns the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("wire: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), maxLineBytes)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			s.dom.Metrics.Counter(metrics.WireBadLines).Inc()
			resp = errResponse(fmt.Errorf("wire: bad request: %w", err))
		} else {
			resp = s.Handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
	if err := scanner.Err(); err != nil {
		// An unscannable stream (most likely a line over maxLineBytes) is
		// reported back before the connection drops, so the client sees why.
		s.dom.Metrics.Counter(metrics.WireBadLines).Inc()
		enc.Encode(errResponse(fmt.Errorf("wire: read: %w", err)))
	}
}

func errResponse(err error) Response { return Response{Error: err.Error()} }

// knownOps is the accepted operation set; per-op metric labels for
// anything else collapse into the registry's overflow label ("other")
// so a misbehaving client cannot grow the label space without bound.
var knownOps = map[string]bool{
	OpPing: true, OpListDevices: true, OpListInst: true,
	OpSessions: true, OpSession: true, OpStart: true, OpStop: true,
	OpSwitch: true, OpMetrics: true, OpTrace: true, OpCrashDevice: true,
	OpRejoinDevice: true, OpCheck: true, OpRegister: true, OpUnregister: true,
	OpFlight: true, OpSlo: true, OpExplain: true, OpVersion: true,
	OpStats: true, OpTimeseries: true, OpSaturation: true,
	OpAdmission: true, OpScale: true, OpLedger: true, OpScorecard: true,
	OpIncidents: true, OpPostmortem: true,
}

// Handle dispatches one request; it is exported so the daemon can be
// exercised without a socket. Every call is counted and timed per op
// under wire_requests_total / wire_request_errors_total /
// wire_request_duration_seconds.
func (s *Server) Handle(req Request) Response {
	op := req.Op
	if !knownOps[op] {
		op = metrics.OverflowLabel
	}
	start := time.Now()
	resp := s.dispatch(req)
	m := s.dom.Metrics
	m.Counter(metrics.WithLabel(metrics.WireRequests, "op", op)).Inc()
	if !resp.OK {
		m.Counter(metrics.WithLabel(metrics.WireErrors, "op", op)).Inc()
	}
	m.Histogram(metrics.WithLabel(metrics.WireLatency, "op", op)).Observe(time.Since(start))
	return resp
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{OK: true}
	case OpListDevices:
		return s.listDevices()
	case OpListInst:
		return s.listServices()
	case OpSessions:
		return Response{OK: true, Sessions: s.dom.Configurator.SessionIDs()}
	case OpSession:
		return s.sessionInfo(req.SessionID)
	case OpStart:
		return s.start(req)
	case OpStop:
		if err := s.dom.StopApp(req.SessionID); err != nil {
			return errResponse(err)
		}
		return Response{OK: true}
	case OpSwitch:
		active, err := s.dom.SwitchDevice(req.SessionID, device.ID(req.ToDevice))
		if err != nil {
			return errResponse(err)
		}
		return Response{OK: true, Session: sessionInfoOf(active)}
	case OpMetrics:
		return Response{OK: true, Metrics: s.dom.Metrics.Snapshot()}
	case OpTrace:
		return s.traceInfo(req.SessionID)
	case OpCrashDevice:
		moved, err := s.dom.RemoveDevice(device.ID(req.ToDevice))
		if err != nil && len(moved) == 0 {
			return errResponse(err)
		}
		resp := Response{OK: true, Moved: moved}
		if err != nil {
			resp.Error = err.Error() // partial recovery: report but succeed
		}
		return resp
	case OpRejoinDevice:
		if err := s.dom.RejoinDevice(device.ID(req.ToDevice)); err != nil {
			return errResponse(err)
		}
		return Response{OK: true}
	case OpCheck:
		return s.check(req)
	case OpFlight:
		return s.flightInfo(req.SessionID)
	case OpLedger:
		return s.ledgerInfo(req.SessionID)
	case OpScorecard:
		return s.scorecardInfo(req)
	case OpIncidents:
		return s.incidentsInfo(req.Incident)
	case OpPostmortem:
		return s.postmortemInfo(req.Incident)
	case OpSlo:
		return Response{OK: true, SLO: s.dom.SLO.Publish()}
	case OpExplain:
		return s.explainInfo(req.SessionID)
	case OpVersion:
		info := buildinfo.Get()
		return Response{OK: true, Version: &info}
	case OpStats:
		return s.statsInfo()
	case OpTimeseries:
		return s.timeseries(req)
	case OpSaturation:
		rep := s.dom.SaturationReport()
		return Response{OK: true, Saturation: &rep}
	case OpAdmission:
		return s.admissionInfo(req)
	case OpScale:
		return s.scaleInfo(req)
	case OpRegister:
		return s.registerService(req)
	case OpUnregister:
		if !s.dom.Registry.Unregister(req.Name) {
			return errResponse(fmt.Errorf("wire: unknown service %q", req.Name))
		}
		return Response{OK: true}
	default:
		return errResponse(fmt.Errorf("wire: unknown op %q", req.Op))
	}
}

func (s *Server) listDevices() Response {
	var out []DeviceInfo
	for _, d := range s.dom.Devices.All() {
		out = append(out, DeviceInfo{
			ID:        string(d.ID),
			Class:     d.Class.String(),
			Capacity:  d.Capacity(),
			Available: d.Available(),
			Up:        d.Up(),
		})
	}
	return Response{OK: true, Devices: out}
}

func (s *Server) listServices() Response {
	var out []InstanceInfo
	for _, in := range s.dom.Registry.All() {
		out = append(out, InstanceInfo{
			Name:      in.Name,
			Type:      in.Type,
			Attrs:     in.Attrs,
			SizeMB:    in.SizeMB,
			Resources: in.Resources,
		})
	}
	return Response{OK: true, Services: out}
}

func (s *Server) start(req Request) Response {
	if req.App == nil {
		return errResponse(errors.New("wire: start requires an app graph"))
	}
	active, err := s.dom.StartApp(core.Request{
		SessionID:    req.SessionID,
		Class:        req.Class,
		App:          req.App,
		UserQoS:      req.UserQoS,
		ClientDevice: device.ID(req.ClientDevice),
		MaxFrames:    req.MaxFrames,
		TraceCtx:     trace.Context{TraceID: req.TraceID, ParentSpan: req.SpanID},
	})
	if err != nil {
		resp := errResponse(err)
		// A gate rejection carries its decision — verdict, effective state,
		// and the retry-after hint — alongside the error text, so callers
		// can back off instead of hammering a saturated space.
		var rej *admission.RejectedError
		if errors.As(err, &rej) {
			resp.Admission = &AdmissionInfo{Enabled: true, Decision: &rej.Decision}
		}
		return resp
	}
	return Response{OK: true, Session: sessionInfoOf(active)}
}

// admissionInfo answers the admission op: the gate status when no class
// is named, or a dry-run decision for one class. A domain without a gate
// reports Enabled=false rather than erroring, so `qosctl admit` degrades
// gracefully.
func (s *Server) admissionInfo(req Request) Response {
	g := s.dom.Admission
	if g == nil {
		return Response{OK: true, Admission: &AdmissionInfo{}}
	}
	info := &AdmissionInfo{Enabled: true}
	if req.Class != "" {
		d := g.Preview(req.Class)
		info.Decision = &d
	} else {
		st := g.Status()
		info.Status = &st
	}
	return Response{OK: true, Admission: info}
}

// scaleInfo answers the scale op: status, or a manual replica override
// when a group and count are given.
func (s *Server) scaleInfo(req Request) Response {
	a := s.dom.Autoscaler
	if a == nil {
		return errResponse(errors.New("wire: autoscaler not enabled on this domain"))
	}
	if req.Group != "" {
		if req.Replicas == nil {
			return errResponse(errors.New("wire: scale with a group requires a replica count"))
		}
		if err := a.SetReplicas(req.Group, *req.Replicas); err != nil {
			return errResponse(err)
		}
	}
	st := a.Status()
	return Response{OK: true, Autoscale: &st}
}

// registerService announces a new service instance in the domain's
// discovery catalog — services "come and go frequently" in the smart
// space, and this is how they come.
func (s *Server) registerService(req Request) Response {
	if req.Instance == nil {
		return errResponse(errors.New("wire: register-service requires an instance"))
	}
	if err := s.dom.Registry.Register(req.Instance); err != nil {
		return errResponse(err)
	}
	if req.Instance.SizeMB > 0 {
		if err := s.dom.Repo.Publish(repository.Package{Name: req.Instance.Name, SizeMB: req.Instance.SizeMB}); err != nil {
			return errResponse(err)
		}
	}
	for _, target := range req.InstalledOn {
		if target == "*" {
			for _, d := range s.dom.Devices.All() {
				s.dom.Repo.MarkInstalled(string(d.ID), req.Instance.Name)
			}
			continue
		}
		if s.dom.Devices.Get(device.ID(target)) == nil {
			return errResponse(fmt.Errorf("wire: installed-on references unknown device %q", target))
		}
		s.dom.Repo.MarkInstalled(target, req.Instance.Name)
	}
	return Response{OK: true}
}

// check dry-runs the composition tier against the current environment
// without deploying anything.
func (s *Server) check(req Request) Response {
	if req.App == nil {
		return errResponse(errors.New("wire: check requires an app graph"))
	}
	client := device.ID(req.ClientDevice)
	var attrs map[string]string
	if d := s.dom.Devices.Get(client); d != nil {
		attrs = d.Attrs
	}
	_, rep, err := s.dom.Composer.Compose(composer.Request{
		App:          resolveForCheck(req.App, client),
		UserQoS:      req.UserQoS,
		ClientAttrs:  attrs,
		ClientDevice: req.ClientDevice,
	})
	if err != nil {
		return errResponse(err)
	}
	return Response{OK: true, CheckSummary: rep.Summary()}
}

// resolveForCheck rewrites the client pin role like the configurator does.
func resolveForCheck(app *composer.AbstractGraph, client device.ID) *composer.AbstractGraph {
	if client == "" {
		return app
	}
	out := composer.NewAbstractGraph()
	for _, n := range app.Nodes() {
		cp := *n
		if cp.Pin == core.ClientRole {
			cp.Pin = string(client)
		}
		out.MustAddNode(&cp)
	}
	for _, e := range app.Edges() {
		out.MustAddEdge(e.From, e.To, e.ThroughputMbps)
	}
	return out
}

// traceInfo returns the most recent configuration trace for a session,
// or the latest trace overall when no session is named.
func (s *Server) traceInfo(sessionID string) Response {
	var td *trace.TraceData
	if sessionID == "" {
		td = s.dom.Tracer.Latest()
	} else {
		td = s.dom.Tracer.Find(sessionID)
	}
	if td == nil {
		if sessionID == "" {
			return errResponse(errors.New("wire: no traces recorded yet"))
		}
		return errResponse(fmt.Errorf("wire: no trace for session %q", sessionID))
	}
	return Response{OK: true, Trace: td}
}

// flightInfo returns one session's fused flight-recorder timeline, or
// the index of recorded sessions when no session is named.
func (s *Server) flightInfo(sessionID string) Response {
	if sessionID == "" {
		return Response{OK: true, FlightSessions: s.dom.Flight.Sessions()}
	}
	entries := s.dom.Flight.Timeline(sessionID)
	if len(entries) == 0 {
		return errResponse(fmt.Errorf("wire: no flight timeline for session %q", sessionID))
	}
	return Response{OK: true, Flight: entries}
}

// ledgerInfo returns one session's delivered-vs-requested outcome
// report, or the index of recorded sessions when no session is named.
func (s *Server) ledgerInfo(sessionID string) Response {
	if sessionID == "" {
		return Response{OK: true, LedgerSessions: s.dom.Ledger.Sessions()}
	}
	rep, ok := s.dom.Ledger.Report(sessionID)
	if !ok {
		return errResponse(fmt.Errorf("wire: no ledger record for session %q", sessionID))
	}
	return Response{OK: true, Ledger: &rep}
}

// incidentsInfo lists the incident log (evidence bundles stripped to
// keep the listing light) or returns one incident in full by ID.
func (s *Server) incidentsInfo(id string) Response {
	if id == "" {
		list := s.dom.Incidents.List()
		for i := range list {
			list[i].Evidence = nil
		}
		return Response{OK: true, Incidents: list}
	}
	inc, ok := s.dom.Incidents.Get(id)
	if !ok {
		return errResponse(fmt.Errorf("wire: no incident %q", id))
	}
	return Response{OK: true, Incident: &inc}
}

// postmortemInfo renders one incident's shareable markdown postmortem.
func (s *Server) postmortemInfo(id string) Response {
	if id == "" {
		return errResponse(fmt.Errorf("wire: postmortem needs an incident ID, e.g. \"INC-1\""))
	}
	inc, ok := s.dom.Incidents.Get(id)
	if !ok {
		return errResponse(fmt.Errorf("wire: no incident %q", id))
	}
	return Response{OK: true, Incident: &inc, Postmortem: incident.Postmortem(inc)}
}

// scorecardInfo returns the per-class QoS outcome scorecards, optionally
// restricted to one class and/or a trailing latency window.
func (s *Server) scorecardInfo(req Request) Response {
	var window time.Duration
	if req.Window != "" {
		d, err := time.ParseDuration(req.Window)
		if err != nil || d < 0 {
			return errResponse(fmt.Errorf("wire: bad window %q (want a Go duration, e.g. \"2m\")", req.Window))
		}
		window = d
	}
	cards := s.dom.Ledger.Scorecards(window)
	if req.Class != "" {
		filtered := cards[:0]
		for _, c := range cards {
			if c.Class == req.Class {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			return errResponse(fmt.Errorf("wire: no scorecard for class %q", req.Class))
		}
		cards = filtered
	}
	return Response{OK: true, Scorecards: cards}
}

// explainInfo returns one session's decision-provenance report, or the
// index of sessions with records when no session is named.
func (s *Server) explainInfo(sessionID string) Response {
	if sessionID == "" {
		return Response{OK: true, ExplainSessions: s.dom.Explain.Sessions()}
	}
	se := s.dom.Explain.Explain(sessionID)
	if se == nil {
		return errResponse(fmt.Errorf("wire: no explain record for session %q", sessionID))
	}
	return Response{OK: true, Explain: se}
}

// timeseries answers a capacity time-series query: one named series
// (optionally restricted to a trailing window), or the recorded series
// list when no metric is named. A sampling pass runs first so the ring is
// fresh even between ticks.
func (s *Server) timeseries(req Request) Response {
	s.dom.SampleCapacityNow()
	if req.Metric == "" {
		return Response{OK: true, TimeseriesMetrics: s.dom.Capacity.Metrics()}
	}
	var window time.Duration
	if req.Window != "" {
		d, err := time.ParseDuration(req.Window)
		if err != nil || d < 0 {
			return errResponse(fmt.Errorf("wire: bad window %q (want a Go duration, e.g. \"2m\")", req.Window))
		}
		window = d
	}
	samples := s.dom.Capacity.Series(req.Metric, window)
	if samples == nil {
		return errResponse(fmt.Errorf("wire: no series %q (omit the metric to list recorded series)", req.Metric))
	}
	return Response{OK: true, Timeseries: &TimeseriesInfo{
		Metric:          req.Metric,
		IntervalSeconds: s.dom.Capacity.Interval().Seconds(),
		Samples:         samples,
	}}
}

// statsInfo snapshots the incremental-placement counters: plan cache
// hit/miss ledger plus the warm/cold branch-and-bound solve split.
func (s *Server) statsInfo() Response {
	m := s.dom.Metrics
	info := &StatsInfo{
		WarmSolves: m.Counter(metrics.WarmSolves).Value(),
		ColdSolves: m.Counter(metrics.ColdSolves).Value(),
	}
	if v, ok := m.Gauge(metrics.WarmSpeedup).Value(); ok {
		info.WarmSpeedup = v
	}
	if s.dom.PlanCache != nil {
		st := s.dom.PlanCache.Stats()
		info.PlanCache = &st
	}
	return Response{OK: true, Stats: info}
}

func (s *Server) sessionInfo(id string) Response {
	active := s.dom.Configurator.Session(id)
	if active == nil {
		return errResponse(fmt.Errorf("wire: unknown session %q", id))
	}
	return Response{OK: true, Session: sessionInfoOf(active)}
}

func sessionInfoOf(active *core.ActiveSession) *SessionInfo {
	placement := make(map[string]string, len(active.Placement))
	dotPlacement := make(map[graph.NodeID]string, len(active.Placement))
	for id, dev := range active.Placement {
		placement[string(id)] = string(dev)
		dotPlacement[id] = string(dev)
	}
	return &SessionInfo{
		ID:           active.ID,
		ClientDevice: string(active.ClientDevice),
		Placement:    placement,
		Cost:         active.Cost,
		Timing: timingInfo(active.Timing.Composition, active.Timing.Distribution,
			active.Timing.Downloading, active.Timing.InitOrHandoff),
		Rates:   active.Runtime.SinkRates(),
		Summary: active.Report.Summary(),
		DOT:     active.Graph.DOT(active.ID, dotPlacement),
	}
}
