package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"ubiqos/internal/metrics"

	"ubiqos/internal/experiments"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
)

// startServer boots a server over the paper's audio smart space on a
// random port.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	dom, err := experiments.BuildAudioSpace(0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dom.Close)
	srv, err := NewServer(dom)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil domain should fail")
	}
}

func TestPingAndLists(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(Request{Op: OpPing}); err != nil {
		t.Fatalf("ping: %v", err)
	}
	resp, err := c.Call(Request{Op: OpListDevices})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Devices) != 4 {
		t.Errorf("devices = %d, want 4", len(resp.Devices))
	}
	found := false
	for _, d := range resp.Devices {
		if d.ID == "jornada" && d.Class == "pda" && d.Up {
			found = true
		}
	}
	if !found {
		t.Errorf("jornada missing from %v", resp.Devices)
	}
	resp, err = c.Call(Request{Op: OpListInst})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Services) != 4 {
		t.Errorf("services = %d, want 4", len(resp.Services))
	}
}

func TestStartSwitchStopLifecycle(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Call(Request{
		Op:           OpStart,
		SessionID:    "audio-1",
		App:          experiments.AudioOnDemandApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(38, 44))),
		ClientDevice: "desktop2",
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if resp.Session == nil || resp.Session.Placement["player"] != "desktop2" {
		t.Fatalf("session = %+v", resp.Session)
	}
	if resp.Session.Timing.CompositionMs < 0 {
		t.Error("timing missing")
	}

	resp, err = c.Call(Request{Op: OpSessions})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sessions) != 1 || resp.Sessions[0] != "audio-1" {
		t.Errorf("sessions = %v", resp.Sessions)
	}

	resp, err = c.Call(Request{Op: OpSwitch, SessionID: "audio-1", ToDevice: "jornada"})
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	if resp.Session.Placement["player"] != "jornada" {
		t.Errorf("placement after switch = %v", resp.Session.Placement)
	}
	if !strings.Contains(resp.Session.Summary, "transcoder") {
		t.Errorf("summary = %q, want transcoder insertion", resp.Session.Summary)
	}

	resp, err = c.Call(Request{Op: OpSession, SessionID: "audio-1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Session.ClientDevice != "jornada" {
		t.Errorf("client device = %s", resp.Session.ClientDevice)
	}

	if _, err := c.Call(Request{Op: OpStop, SessionID: "audio-1"}); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := c.Call(Request{Op: OpSession, SessionID: "audio-1"}); err == nil {
		t.Error("stopped session should be unknown")
	}
}

func TestServerErrors(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(Request{Op: "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Call(Request{Op: OpStart, SessionID: "x"}); err == nil {
		t.Error("start without app should fail")
	}
	if _, err := c.Call(Request{Op: OpStop, SessionID: "ghost"}); err == nil {
		t.Error("stop unknown session should fail")
	}
	if _, err := c.Call(Request{Op: OpSwitch, SessionID: "ghost", ToDevice: "jornada"}); err == nil {
		t.Error("switch unknown session should fail")
	}
}

func TestMalformedRequestLine(t *testing.T) {
	srv, _ := startServer(t)
	resp := srv.Handle(Request{Op: OpPing})
	if !resp.OK {
		t.Error("direct handle failed")
	}
	// A malformed JSON line yields an error response, not a dropped
	// connection: exercised through the socket path.
	_, addr2 := startServer(t)
	c, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.conn.Write([]byte("{not json}\n")); err != nil {
		t.Fatal(err)
	}
	if !c.sc.Scan() {
		t.Fatal("no response to malformed line")
	}
	if !strings.Contains(c.sc.Text(), "bad request") {
		t.Errorf("response = %s", c.sc.Text())
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if _, err := c.Call(Request{Op: OpListDevices}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	srv.Close()
	srv.Close()
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("listen after close should fail")
	}
}

func TestMetricsOp(t *testing.T) {
	srv, _ := startServer(t)
	resp := srv.Handle(Request{Op: OpStart, SessionID: "m", App: experiments.AudioOnDemandApp(), ClientDevice: "desktop2"})
	if !resp.OK {
		t.Fatalf("start: %s", resp.Error)
	}
	resp = srv.Handle(Request{Op: OpMetrics})
	if !resp.OK || !strings.Contains(resp.Metrics, "configs_total 1") {
		t.Errorf("metrics = %q", resp.Metrics)
	}
	srv.Handle(Request{Op: OpStop, SessionID: "m"})
}

func TestCheckOp(t *testing.T) {
	srv, _ := startServer(t)
	resp := srv.Handle(Request{Op: OpCheck, App: experiments.AudioOnDemandApp(), ClientDevice: "jornada"})
	if !resp.OK {
		t.Fatalf("check: %s", resp.Error)
	}
	if !strings.Contains(resp.CheckSummary, "transcoder") {
		t.Errorf("check summary = %q, want transcoder insertion prediction", resp.CheckSummary)
	}
	// Nothing was deployed.
	if got := srv.Handle(Request{Op: OpSessions}); len(got.Sessions) != 0 {
		t.Errorf("check must not create sessions: %v", got.Sessions)
	}
	if resp := srv.Handle(Request{Op: OpCheck}); resp.OK {
		t.Error("check without app should fail")
	}
}

func TestCrashDeviceOp(t *testing.T) {
	srv, _ := startServer(t)
	resp := srv.Handle(Request{Op: OpStart, SessionID: "m", App: experiments.AudioOnDemandApp(), ClientDevice: "desktop2"})
	if !resp.OK {
		t.Fatalf("start: %s", resp.Error)
	}
	// The server component is pinned to desktop1; crashing desktop3 (which
	// hosts nothing) succeeds trivially.
	resp = srv.Handle(Request{Op: OpCrashDevice, ToDevice: "desktop3"})
	if !resp.OK {
		t.Fatalf("crash: %s", resp.Error)
	}
	if len(resp.Moved) != 0 {
		t.Errorf("moved = %v, want none (desktop3 hosted nothing)", resp.Moved)
	}
	if resp := srv.Handle(Request{Op: OpCrashDevice, ToDevice: "ghost"}); resp.OK {
		t.Error("crashing an unknown device should fail")
	}
	srv.Handle(Request{Op: OpStop, SessionID: "m"})
}

func TestSessionDOT(t *testing.T) {
	srv, _ := startServer(t)
	resp := srv.Handle(Request{Op: OpStart, SessionID: "d", App: experiments.AudioOnDemandApp(), ClientDevice: "desktop2"})
	if !resp.OK {
		t.Fatalf("start: %s", resp.Error)
	}
	defer srv.Handle(Request{Op: OpStop, SessionID: "d"})
	if !strings.Contains(resp.Session.DOT, "digraph") || !strings.Contains(resp.Session.DOT, "subgraph cluster_0") {
		t.Errorf("DOT = %q", resp.Session.DOT)
	}
}

func TestRegisterUnregisterServiceOps(t *testing.T) {
	srv, _ := startServer(t)
	inst := &registry.Instance{
		Name:   "late-equalizer",
		Type:   "equalizer",
		Input:  qos.V(qos.P(qos.DimFormat, qos.Symbol("MPEG"))),
		Output: qos.V(qos.P(qos.DimFormat, qos.Symbol("MPEG"))),
		SizeMB: 2,
	}
	resp := srv.Handle(Request{Op: OpRegister, Instance: inst, InstalledOn: []string{"*"}})
	if !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	if got := srv.Handle(Request{Op: OpListInst}); len(got.Services) != 5 {
		t.Errorf("services = %d, want 5 after registration", len(got.Services))
	}
	if resp := srv.Handle(Request{Op: OpRegister}); resp.OK {
		t.Error("register without instance should fail")
	}
	if resp := srv.Handle(Request{Op: OpRegister, Instance: inst, InstalledOn: []string{"ghost"}}); resp.OK {
		t.Error("installing on unknown device should fail")
	}
	if resp := srv.Handle(Request{Op: OpUnregister, Name: "late-equalizer"}); !resp.OK {
		t.Fatalf("unregister: %s", resp.Error)
	}
	if resp := srv.Handle(Request{Op: OpUnregister, Name: "late-equalizer"}); resp.OK {
		t.Error("double unregister should fail")
	}
}

func TestTraceOp(t *testing.T) {
	srv, _ := startServer(t)
	// No traces yet: both forms fail cleanly.
	if resp := srv.Handle(Request{Op: OpTrace}); resp.OK {
		t.Error("trace with no history should fail")
	}
	if resp := srv.Handle(Request{Op: OpTrace, SessionID: "ghost"}); resp.OK {
		t.Error("trace for unknown session should fail")
	}

	resp := srv.Handle(Request{Op: OpStart, SessionID: "t1", App: experiments.AudioOnDemandApp(), ClientDevice: "desktop2"})
	if !resp.OK {
		t.Fatalf("start: %s", resp.Error)
	}
	defer srv.Handle(Request{Op: OpStop, SessionID: "t1"})

	resp = srv.Handle(Request{Op: OpTrace, SessionID: "t1"})
	if !resp.OK || resp.Trace == nil {
		t.Fatalf("trace: %s", resp.Error)
	}
	if resp.Trace.Session != "t1" || resp.Trace.Name != "configure" {
		t.Errorf("trace = %s/%s", resp.Trace.Name, resp.Trace.Session)
	}
	names := make(map[string]bool)
	for _, sp := range resp.Trace.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"compose", "discover", "distribute", "deploy"} {
		if !names[want] {
			t.Errorf("trace missing %q span:\n%s", want, resp.Trace.Render())
		}
	}
	// The empty session ID returns the newest trace.
	if resp := srv.Handle(Request{Op: OpTrace}); !resp.OK || resp.Trace.Session != "t1" {
		t.Errorf("latest trace = %+v", resp.Trace)
	}
}

func TestPerOpMetrics(t *testing.T) {
	srv, _ := startServer(t)
	srv.Handle(Request{Op: OpPing})
	srv.Handle(Request{Op: OpPing})
	srv.Handle(Request{Op: "bogus"})
	srv.Handle(Request{Op: OpSession, SessionID: "ghost"})

	m := srv.dom.Metrics
	if got := m.Counter(metrics.WithLabel(metrics.WireRequests, "op", "ping")).Value(); got != 2 {
		t.Errorf("ping requests = %d, want 2", got)
	}
	// Unknown ops collapse into the registry's overflow label; the error
	// is counted too.
	if got := m.Counter(metrics.WithLabel(metrics.WireRequests, "op", metrics.OverflowLabel)).Value(); got != 1 {
		t.Errorf("overflow requests = %d, want 1", got)
	}
	if got := m.Counter(metrics.WithLabel(metrics.WireErrors, "op", metrics.OverflowLabel)).Value(); got != 1 {
		t.Errorf("overflow errors = %d, want 1", got)
	}
	if got := m.Counter(metrics.WithLabel(metrics.WireErrors, "op", "session")).Value(); got != 1 {
		t.Errorf("session errors = %d, want 1", got)
	}
	if got := m.Histogram(metrics.WithLabel(metrics.WireLatency, "op", "ping")).Count(); got != 2 {
		t.Errorf("ping latency observations = %d, want 2", got)
	}
	snap := m.Snapshot()
	for _, want := range []string{
		`wire_requests_total{op="ping"} 2`,
		`wire_request_errors_total{op="` + metrics.OverflowLabel + `"} 1`,
		`wire_request_duration_seconds_count{op="ping"} 2`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestUnknownOpLabelCardinality floods the server with bogus op names
// and checks the per-op label space stays bounded: every invented op
// lands on the single overflow label instead of minting its own series.
func TestUnknownOpLabelCardinality(t *testing.T) {
	srv, _ := startServer(t)
	n := metrics.DefaultLabelCardinality + 32
	for i := 0; i < n; i++ {
		resp := srv.Handle(Request{Op: fmt.Sprintf("bogus-%d", i)})
		if resp.OK {
			t.Fatalf("bogus op %d accepted", i)
		}
	}
	m := srv.dom.Metrics
	if got := m.Counter(metrics.WithLabel(metrics.WireRequests, "op", metrics.OverflowLabel)).Value(); got != int64(n) {
		t.Errorf("overflow requests = %d, want %d", got, n)
	}
	snap := m.Snapshot()
	if strings.Contains(snap, `op="bogus-`) {
		t.Error("exposition leaked a per-bogus-op series")
	}
	// One series per known op at most, plus the overflow bucket: far
	// below the registry's cardinality cap.
	series := strings.Count(snap, "wire_requests_total{")
	if series > len(knownOps)+1 {
		t.Errorf("wire_requests_total series = %d, want <= %d", series, len(knownOps)+1)
	}
}

func TestMalformedLineCountsBadLine(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.conn.Write([]byte("{not json}\n")); err != nil {
		t.Fatal(err)
	}
	if !c.sc.Scan() {
		t.Fatal("no response to malformed line")
	}
	if got := srv.dom.Metrics.Counter(metrics.WireBadLines).Value(); got != 1 {
		t.Errorf("bad lines = %d, want 1", got)
	}
}

func TestOversizedLine(t *testing.T) {
	srv, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One line just over the 4 MB limit: the scanner cannot tokenize it, so
	// the server reports the read error and drops the connection.
	big := bytes.Repeat([]byte{'a'}, maxLineBytes+16)
	big[len(big)-1] = '\n'
	if _, err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no response to oversized line: %v", sc.Err())
	}
	if !strings.Contains(sc.Text(), "token too long") {
		t.Errorf("response = %s", sc.Text())
	}
	if got := srv.dom.Metrics.Counter(metrics.WireBadLines).Value(); got != 1 {
		t.Errorf("bad lines = %d, want 1", got)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One shared client, many goroutines: Call serializes internally.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := c.Call(Request{Op: OpPing}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestStatsOp(t *testing.T) {
	srv, _ := startServer(t)
	resp := srv.Handle(Request{Op: OpStats})
	if !resp.OK || resp.Stats == nil {
		t.Fatalf("stats: ok=%v stats=%v err=%s", resp.OK, resp.Stats, resp.Error)
	}
	if resp.Stats.PlanCache == nil {
		t.Fatal("plan cache stats missing from a cache-enabled domain")
	}
	before := resp.Stats.PlanCache.Misses

	start := srv.Handle(Request{Op: OpStart, SessionID: "s1", App: experiments.AudioOnDemandApp(), ClientDevice: "desktop2"})
	if !start.OK {
		t.Fatalf("start: %s", start.Error)
	}
	resp = srv.Handle(Request{Op: OpStats})
	if !resp.OK || resp.Stats.PlanCache.Misses != before+1 {
		t.Errorf("misses = %d, want %d after one solve", resp.Stats.PlanCache.Misses, before+1)
	}
	if resp.Stats.WarmSolves != 0 {
		t.Errorf("warm solves = %d before any recovery", resp.Stats.WarmSolves)
	}
	srv.Handle(Request{Op: OpStop, SessionID: "s1"})
}
