package wire

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/experiments"
	"ubiqos/internal/faultinject"
	"ubiqos/internal/incident"
	"ubiqos/internal/qos"
)

// pollIncident forces sampling passes (rate-limited by the observatory)
// and re-reads the incident log over the wire until pred is satisfied or
// the deadline passes. It returns the matching incident from the list
// view (evidence stripped).
func pollIncident(t *testing.T, dom *domain.Domain, c *Client, deadline time.Duration, pred func(incident.Incident) bool) (incident.Incident, bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		dom.SampleCapacityNow()
		resp, err := c.Call(Request{Op: OpIncidents})
		if err != nil {
			t.Fatalf("incidents: %v", err)
		}
		for _, inc := range resp.Incidents {
			if pred(inc) {
				return inc, true
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return incident.Incident{}, false
}

// TestIncidentLifecycleOverWire is the chaos acceptance path for the
// correlation engine: a session is started over TCP, its hosting device
// is crashed (twice, so QoS breakage accrues while the incident is
// open), the supervisor heals it each time, and the devices rejoin. The
// fault-storm incident must open citing at least three distinct signal
// sources, pass through mitigating with the supervisor credited, and
// resolve with nonzero impact accounting — all observed through the
// incidents and postmortem wire ops.
func TestIncidentLifecycleOverWire(t *testing.T) {
	dom, addr := startChaosServer(t)
	sup, err := core.NewSupervisor(dom.Configurator, core.SupervisorOptions{
		Bus:         dom.Bus,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)

	c, err := DialWith(addr, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Establish the engine's counter baselines before any chaos.
	dom.SampleCapacityNow()

	resp, err := c.Call(Request{
		Op:           OpStart,
		SessionID:    "inc-1",
		Class:        "media",
		App:          experiments.ChaosAudioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "jornada",
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	victim := resp.Session.Placement["server"]
	if victim == "" || victim == "jornada" {
		t.Fatalf("server placed on %q", victim)
	}

	inj, err := faultinject.NewInjector(dom, faultinject.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Apply(faultinject.Fault{Kind: faultinject.DeviceCrash, Device: device.ID(victim)}); err != nil {
		t.Fatalf("inject crash: %v", err)
	}

	isFaultStorm := func(inc incident.Incident) bool { return inc.Rule == incident.RuleFaultStorm }
	opened, ok := pollIncident(t, dom, c, 15*time.Second, isFaultStorm)
	if !ok {
		t.Fatal("no fault-storm incident opened after the crash")
	}
	if opened.State == incident.StateResolved {
		t.Fatalf("incident %s resolved while the device is still down", opened.ID)
	}

	// Heal, then break the session again while the incident is open so
	// the impact window spans real QoS breakage.
	if !sup.AwaitIdle(10 * time.Second) {
		t.Fatal("supervisor never went idle after the first crash")
	}
	resp, err = c.Call(Request{Op: OpSession, SessionID: "inc-1"})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	victim2 := resp.Session.Placement["server"]
	if victim2 == victim {
		t.Fatalf("session still placed on crashed device %s", victim)
	}
	if err := inj.Apply(faultinject.Fault{Kind: faultinject.DeviceCrash, Device: device.ID(victim2)}); err != nil {
		t.Fatalf("inject second crash: %v", err)
	}
	if !sup.AwaitIdle(10 * time.Second) {
		t.Fatal("supervisor never went idle after the second crash")
	}
	if sup.Stats().Recovered == 0 {
		t.Fatalf("no recoveries recorded; stats = %+v", sup.Stats())
	}

	// Let the engine see the storm at its peak, then clear it.
	dom.SampleCapacityNow()
	for _, dev := range []string{victim, victim2} {
		if _, err := c.Call(Request{Op: OpRejoinDevice, ToDevice: dev}); err != nil {
			t.Fatalf("rejoin %s: %v", dev, err)
		}
	}
	resolved, ok := pollIncident(t, dom, c, 30*time.Second, func(inc incident.Incident) bool {
		return isFaultStorm(inc) && inc.State == incident.StateResolved
	})
	if !ok {
		t.Fatal("fault-storm incident never resolved after the devices rejoined")
	}

	// Full record (evidence included) via the ID form of the op.
	resp, err = c.Call(Request{Op: OpIncidents, Incident: resolved.ID})
	if err != nil {
		t.Fatalf("incident by ID: %v", err)
	}
	if resp.Incident == nil {
		t.Fatal("no incident payload for the ID form")
	}
	inc := *resp.Incident
	if inc.Evidence == nil || len(inc.Evidence.Sources) < 3 {
		t.Fatalf("evidence sources = %v, want at least 3", evidenceSources(inc))
	}
	for _, want := range []string{"saturation", "faults", "flight"} {
		found := false
		for _, s := range inc.Evidence.Sources {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("evidence sources %v missing %q", inc.Evidence.Sources, want)
		}
	}
	sawMitigating := false
	for _, tr := range inc.Timeline {
		if tr.State == incident.StateMitigating {
			sawMitigating = true
		}
	}
	if !sawMitigating {
		t.Errorf("timeline %+v never passed through mitigating", inc.Timeline)
	}
	credited := false
	for _, a := range inc.MitigatedBy {
		if a == "recovery-supervisor" {
			credited = true
		}
	}
	if !credited {
		t.Errorf("mitigated by %v, want the recovery supervisor credited", inc.MitigatedBy)
	}
	if inc.ResolutionCause == "" || !strings.Contains(inc.ResolutionCause, "signal cleared") {
		t.Errorf("resolution cause = %q", inc.ResolutionCause)
	}
	if inc.Impact == nil {
		t.Fatal("resolved incident carries no impact accounting")
	}
	if inc.Impact.DurationSec <= 0 {
		t.Errorf("impact duration = %g, want > 0", inc.Impact.DurationSec)
	}
	if inc.Impact.SessionsAffected < 1 {
		t.Errorf("sessions affected = %d, want at least 1", inc.Impact.SessionsAffected)
	}
	if inc.Impact.BrokenSec <= 0 && inc.Impact.TotalDeficitSec <= 0 {
		t.Errorf("impact records no QoS loss: broken=%g deficit=%g",
			inc.Impact.BrokenSec, inc.Impact.TotalDeficitSec)
	}

	// The list form strips evidence bundles.
	resp, err = c.Call(Request{Op: OpIncidents})
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range resp.Incidents {
		if li.Evidence != nil {
			t.Errorf("list view of %s carries an evidence bundle", li.ID)
		}
	}

	// Postmortem export.
	resp, err = c.Call(Request{Op: OpPostmortem, Incident: inc.ID})
	if err != nil {
		t.Fatalf("postmortem: %v", err)
	}
	for _, want := range []string{"# Postmortem " + inc.ID, "## Timeline", "## Evidence", "## Impact", "## Resolution"} {
		if !strings.Contains(resp.Postmortem, want) {
			t.Errorf("postmortem missing %q", want)
		}
	}

	// Unknown / missing IDs surface as op errors.
	if resp, err := c.Call(Request{Op: OpIncidents, Incident: "INC-999"}); err == nil && resp.OK {
		t.Error("unknown incident ID accepted")
	}
	if resp, err := c.Call(Request{Op: OpPostmortem}); err == nil && resp.OK {
		t.Error("postmortem without an ID accepted")
	}
}

func evidenceSources(inc incident.Incident) []string {
	if inc.Evidence == nil {
		return nil
	}
	return inc.Evidence.Sources
}

// TestIncidentHTTP covers the /incidents endpoints: empty list, JSON
// list with evidence stripped, the detail/text/postmortem renderings,
// and the error statuses.
func TestIncidentHTTP(t *testing.T) {
	srv, _ := startServer(t)
	web := httptest.NewServer(NewHTTPHandler(srv.dom))
	t.Cleanup(web.Close)

	if body := httpGet(t, web.URL+"/incidents"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty incident log = %q", body)
	}
	text := httpGet(t, web.URL+"/incidents?format=text")
	if !strings.Contains(text, "no incidents recorded") {
		t.Errorf("empty text log = %q", text)
	}
	if code := httpStatus(t, web.URL+"/incidents/"); code != 400 {
		t.Errorf("missing ID status = %d", code)
	}
	if code := httpStatus(t, web.URL+"/incidents/INC-999"); code != 404 {
		t.Errorf("unknown ID status = %d", code)
	}
}
