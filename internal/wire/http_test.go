package wire

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ubiqos/internal/buildinfo"
	"ubiqos/internal/distributor"
	"ubiqos/internal/experiments"
	"ubiqos/internal/explain"
	"ubiqos/internal/flight"
	"ubiqos/internal/metrics"
	"ubiqos/internal/qos"
	"ubiqos/internal/trace"
)

// TestObservabilityEndToEnd is the acceptance scenario: an in-process
// daemon configured with the optimal-parallel solver runs one PDA session
// (forcing a transcoder correction), and the full observability surface
// is checked — the trace op's span tree (compose → discover →
// OC-correction → distribute with correction kinds and branch-and-bound
// counters) and the Prometheus exposition's per-stage p50/p95/p99.
func TestObservabilityEndToEnd(t *testing.T) {
	// Pin 4 workers so the parallel solver runs even on a 1-CPU box (the
	// daemon's -place flag sizes the pool from the hardware instead).
	place := func(p *distributor.Problem) (distributor.Assignment, float64, error) {
		return distributor.OptimalParallel(p, 4)
	}
	dom, err := experiments.BuildAudioSpaceWith(0.05, place)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dom.Close)
	srv, err := NewServer(dom)
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(NewHTTPHandler(dom))
	t.Cleanup(web.Close)

	// The PDA portal only plays WAV; the MPEG audio server forces the OC
	// tier to insert the mpeg2wav transcoder.
	resp := srv.Handle(Request{
		Op:           OpStart,
		SessionID:    "e2e-1",
		App:          experiments.AudioOnDemandApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(35, 44))),
		ClientDevice: "jornada",
	})
	if !resp.OK {
		t.Fatalf("start: %s", resp.Error)
	}
	defer srv.Handle(Request{Op: OpStop, SessionID: "e2e-1"})

	// --- The trace op: the span tree qosctl trace renders. ---
	tresp := srv.Handle(Request{Op: OpTrace, SessionID: "e2e-1"})
	if !tresp.OK {
		t.Fatalf("trace: %s", tresp.Error)
	}
	td := tresp.Trace
	byName := map[string]*trace.SpanData{}
	for i := range td.Spans {
		sp := &td.Spans[i]
		if _, ok := byName[sp.Name]; !ok {
			byName[sp.Name] = sp
		}
	}
	for _, stage := range []string{"compose", "discover", "ordered-coordination", "correction", "distribute"} {
		if byName[stage] == nil {
			t.Fatalf("trace missing %q span:\n%s", stage, td.Render())
		}
	}
	if kind := byName["correction"].Attrs["kind"]; kind != "transcoder" {
		t.Errorf("correction kind = %v, want transcoder", kind)
	}
	dist := byName["distribute"]
	if dist.Attrs["algorithm"] != "optimal-parallel" {
		t.Errorf("distribute algorithm = %v", dist.Attrs["algorithm"])
	}
	if explored, ok := dist.Attrs["explored"].(int64); !ok || explored == 0 {
		t.Errorf("distribute explored = %v, want > 0", dist.Attrs["explored"])
	}
	if _, ok := dist.Attrs["pruned"].(int64); !ok {
		t.Errorf("distribute pruned = %v", dist.Attrs["pruned"])
	}
	if byName["branch-and-bound-parallel"] == nil || byName["bnb-worker"] == nil {
		t.Errorf("solver spans missing:\n%s", td.Render())
	}

	// --- /metrics: Prometheus text with per-stage quantiles. ---
	body := httpGet(t, web.URL+"/metrics")
	for _, want := range []string{
		`composition_time_seconds{quantile="0.5"}`,
		`composition_time_seconds{quantile="0.95"}`,
		`composition_time_seconds{quantile="0.99"}`,
		`distribution_time_seconds{quantile="0.5"}`,
		"composition_time_seconds_count 1",
		"configs_total 1",
		"transcoders_inserted_total 1",
		"bnb_nodes_explored_total",
		`wire_requests_total{op="start"} 1`,
		"# TYPE composition_time_seconds summary",
		// Go runtime health gauges, refreshed per scrape.
		"go_goroutines",
		"go_heap_alloc_bytes",
		"go_gc_pause_p99_seconds",
		"process_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// --- /healthz ---
	var health struct {
		OK       bool           `json:"ok"`
		Domain   string         `json:"domain"`
		Devices  int            `json:"devices"`
		Sessions int            `json:"sessions"`
		Version  buildinfo.Info `json:"version"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.Domain != "audio-space" || health.Devices != 4 || health.Sessions != 1 {
		t.Errorf("healthz = %+v", health)
	}
	if health.Version.GoVersion == "" || health.Version.Path != "ubiqos" {
		t.Errorf("healthz version = %+v, want goVersion and path=ubiqos", health.Version)
	}

	// --- /traces ---
	var list []trace.TraceData
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/traces")), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Session != "e2e-1" {
		t.Errorf("traces = %+v", list)
	}
	var one trace.TraceData
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/traces?session=e2e-1")), &one); err != nil {
		t.Fatal(err)
	}
	if one.Session != "e2e-1" || len(one.Spans) != len(td.Spans) {
		t.Errorf("trace by session = %d spans, want %d", len(one.Spans), len(td.Spans))
	}

	// --- /flight: fused timeline for the configured session. ---
	var index []flight.SessionInfo
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/flight")), &index); err != nil {
		t.Fatal(err)
	}
	if len(index) != 1 || index[0].Session != "e2e-1" {
		t.Errorf("flight index = %+v", index)
	}
	var entries []flight.Entry
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/flight/e2e-1")), &entries); err != nil {
		t.Fatal(err)
	}
	kinds := map[flight.Kind]bool{}
	for _, e := range entries {
		kinds[e.Kind] = true
	}
	if !kinds[flight.KindLog] || !kinds[flight.KindSpan] {
		t.Errorf("flight timeline kinds = %v, want log and span entries", kinds)
	}
	if text := httpGet(t, web.URL+"/flight/e2e-1?format=text"); !strings.Contains(text, "flight e2e-1") {
		t.Errorf("text flight rendering = %q", text)
	}

	// --- /explain: decision provenance for the configured session. ---
	var xindex []explain.SessionInfo
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/explain")), &xindex); err != nil {
		t.Fatal(err)
	}
	if len(xindex) != 1 || xindex[0].Session != "e2e-1" || xindex[0].Records != 1 {
		t.Errorf("explain index = %+v", xindex)
	}
	var se explain.SessionExplain
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/explain/e2e-1")), &se); err != nil {
		t.Fatal(err)
	}
	if len(se.Records) != 1 {
		t.Fatalf("explain records = %d, want 1", len(se.Records))
	}
	rec := se.Records[0]
	if rec.Action != explain.ActionConfigure || rec.TraceID == "" || len(rec.Placement) == 0 {
		t.Errorf("explain record = action %q trace %q placement %v", rec.Action, rec.TraceID, rec.Placement)
	}
	if rec.TraceID != td.TraceID {
		t.Errorf("explain traceId = %q, want the configuration trace %q", rec.TraceID, td.TraceID)
	}
	if len(rec.Attempts) == 0 {
		t.Fatal("explain record has no attempts")
	}
	att := rec.Attempts[len(rec.Attempts)-1]
	withCandidates := 0
	for _, d := range att.Discoveries {
		if len(d.Candidates) > 0 {
			withCandidates++
		}
	}
	if len(att.Discoveries) == 0 || withCandidates == 0 {
		t.Errorf("explain discoveries = %d (%d with candidate sets), want both > 0",
			len(att.Discoveries), withCandidates)
	}
	foundTranscoder := false
	for _, c := range att.Corrections {
		if c.Rule == "transcoder" {
			foundTranscoder = true
			if c.BeforeQoS == "" || c.AfterQoS == "" {
				t.Errorf("transcoder correction missing QoS vectors: %+v", c)
			}
		}
	}
	if !foundTranscoder {
		t.Errorf("explain corrections = %+v, want a transcoder rule", att.Corrections)
	}
	if att.Search == nil {
		t.Fatal("explain attempt has no search summary")
	}
	if att.Search.Algorithm != "optimal-parallel" || att.Search.Explored == 0 ||
		att.Search.Cost <= 0 || len(att.Search.BoundTrajectory) == 0 {
		t.Errorf("explain search = %+v", att.Search)
	}
	xtext := httpGet(t, web.URL+"/explain/e2e-1?format=text")
	for _, want := range []string{"explain e2e-1", "discover", "correction transcoder", "search optimal-parallel", "placement:"} {
		if !strings.Contains(xtext, want) {
			t.Errorf("text explain rendering missing %q:\n%s", want, xtext)
		}
	}

	// --- /slo: burn-rate status of the default objectives. ---
	var slo []metrics.Status
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/slo")), &slo); err != nil {
		t.Fatal(err)
	}
	if len(slo) < 3 {
		t.Errorf("/slo reported %d objectives, want at least 3", len(slo))
	}
	if text := httpGet(t, web.URL+"/slo?format=text"); !strings.Contains(text, "configure-p95") {
		t.Errorf("text slo rendering = %q", text)
	}
	body = httpGet(t, web.URL+"/metrics")
	if !strings.Contains(body, "slo_burn_rate{") || !strings.Contains(body, "slo_violations") {
		t.Error("/slo did not publish burn-rate gauges into /metrics")
	}
}

// TestExplainPlacementDiffAfterCrash is the recovery half of the
// acceptance scenario: crash the device hosting a session's server
// component and verify /explain/<session> records the recovery as a
// second record, diffs the placements (the server moved off the dead
// device), and captures the supervisor's ladder outcome.
func TestExplainPlacementDiffAfterCrash(t *testing.T) {
	dom, err := experiments.BuildChaosSpace(0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dom.Close)
	srv, err := NewServer(dom)
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(NewHTTPHandler(dom))
	t.Cleanup(web.Close)

	resp := srv.Handle(Request{
		Op:           OpStart,
		SessionID:    "diff-1",
		App:          experiments.ChaosAudioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "jornada",
	})
	if !resp.OK {
		t.Fatalf("start: %s", resp.Error)
	}
	victim := resp.Session.Placement["server"]
	if victim == "" || victim == "jornada" {
		t.Fatalf("server placed on %q", victim)
	}
	if resp = srv.Handle(Request{Op: OpCrashDevice, ToDevice: victim}); !resp.OK {
		t.Fatalf("crash: %s", resp.Error)
	}

	var se explain.SessionExplain
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/explain/diff-1")), &se); err != nil {
		t.Fatal(err)
	}
	if len(se.Records) < 2 {
		t.Fatalf("explain records after crash = %d, want >= 2", len(se.Records))
	}
	last := se.Records[len(se.Records)-1]
	if last.Action == explain.ActionConfigure {
		t.Errorf("last record action = %q, want a recovery/reconfigure action", last.Action)
	}
	for comp, dev := range last.Placement {
		if dev == victim {
			t.Errorf("recovered placement still maps %s to crashed %s", comp, victim)
		}
	}
	if len(se.Diffs) == 0 {
		t.Fatal("explain has no placement diffs after recovery")
	}
	diff := se.Diffs[len(se.Diffs)-1]
	movedOff := false
	for _, m := range diff.Moved {
		if m.From == victim {
			movedOff = true
		}
	}
	if !movedOff {
		t.Errorf("placement diff moved = %+v, want a move off %s", diff.Moved, victim)
	}
	text := httpGet(t, web.URL+"/explain/diff-1?format=text")
	if !strings.Contains(text, "placement diffs:") || !strings.Contains(text, "moved") {
		t.Errorf("text rendering missing placement diff:\n%s", text)
	}
}

func TestHTTPHandlerErrors(t *testing.T) {
	dom, err := experiments.BuildAudioSpace(0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dom.Close)
	web := httptest.NewServer(NewHTTPHandler(dom))
	t.Cleanup(web.Close)

	if code := httpStatus(t, web.URL+"/traces?session=ghost"); code != http.StatusNotFound {
		t.Errorf("unknown session status = %d", code)
	}
	if code := httpStatus(t, web.URL+"/traces?n=zero"); code != http.StatusBadRequest {
		t.Errorf("bad n status = %d", code)
	}
	if body := httpGet(t, web.URL+"/traces"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty traces = %q", body)
	}
	if code := httpStatus(t, web.URL+"/flight/ghost"); code != http.StatusNotFound {
		t.Errorf("unknown flight session status = %d", code)
	}
	if body := httpGet(t, web.URL+"/flight"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty flight index = %q", body)
	}
	if code := httpStatus(t, web.URL+"/explain/ghost"); code != http.StatusNotFound {
		t.Errorf("unknown explain session status = %d", code)
	}
	if body := httpGet(t, web.URL+"/explain"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty explain index = %q", body)
	}
	// Read-only surface: writes are rejected with 405 on every endpoint.
	for _, path := range []string{"/metrics", "/healthz", "/traces", "/flight", "/explain", "/slo"} {
		resp, err := http.Post(web.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s status = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s Allow header = %q", path, allow)
		}
	}
	if !strings.Contains(httpGet(t, web.URL+"/debug/pprof/cmdline"), "wire") {
		t.Error("pprof cmdline endpoint not serving")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func httpStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
