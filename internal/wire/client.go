package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"ubiqos/internal/trace"
)

// Options tunes a Client's transport behavior. The zero value keeps the
// historical semantics: no per-call deadline, no retries.
type Options struct {
	// Timeout bounds one Call end to end: it is applied as a read/write
	// deadline on the connection, so a hung or wedged daemon fails the
	// call instead of blocking the client forever. 0 disables.
	Timeout time.Duration
	// Retries is how many times a Call that failed with a transport error
	// (timeout, connection reset, server gone) is re-dialed and re-sent.
	// Server-reported errors are never retried. Note the protocol gives
	// at-most-once semantics per attempt, so a retried request may execute
	// twice on the server; every operation is either idempotent or fails
	// fast on replay (e.g. a duplicate start rejects the session ID).
	Retries int
	// RetryBackoff is the wait before the first retry, doubling per
	// attempt. 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// DefaultRetryBackoff is the initial retry delay when Options.RetryBackoff
// is unset.
const DefaultRetryBackoff = 50 * time.Millisecond

// Client speaks the protocol to a qosconfigd server. A Client is safe for
// concurrent use: Call serializes request/response pairs over the single
// connection, transparently re-dialing after transport failures.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	conn   net.Conn
	enc    *json.Encoder
	sc     *bufio.Scanner
	broken bool // the connection saw a transport error; re-dial before reuse
}

// DialTimeout is the default connect timeout.
const DialTimeout = 5 * time.Second

// Dial connects to the server with default options.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, Options{})
}

// DialWith connects to the server with explicit transport options.
func DialWith(addr string, opts Options) (*Client, error) {
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	c := &Client{addr: addr, opts: opts}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// redial (re)establishes the connection; callers hold c.mu (or are the
// constructor).
func (c *Client) redial() error {
	if c.conn != nil {
		c.conn.Close()
	}
	conn, err := net.DialTimeout("tcp", c.addr, DialTimeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	c.conn, c.enc, c.sc, c.broken = conn, json.NewEncoder(conn), sc, false
	return nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	return c.conn.Close()
}

// Call sends one request and reads one response, honoring the client's
// timeout and retry options. A server-reported error is returned as a Go
// error with the response still populated; transport errors are retried
// up to Options.Retries times with doubling backoff.
func (c *Client) Call(req Request) (Response, error) {
	// Originate trace context here so the daemon's spans join a trace the
	// caller can correlate with; retries reuse the same trace ID.
	if req.TraceID == "" {
		req.TraceID = trace.NewID()
	}
	if req.SpanID == "" {
		req.SpanID = "client-" + req.Op
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	backoff := c.opts.RetryBackoff
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if c.broken {
			if err := c.redial(); err != nil {
				lastErr = err
				continue
			}
		}
		resp, err, transport := c.callOnce(req)
		if !transport {
			return resp, err
		}
		c.broken = true
		lastErr = err
	}
	return Response{}, lastErr
}

// callOnce runs one request/response exchange. transport reports whether
// the failure was at the transport layer (retriable) as opposed to a
// server-reported or protocol-level error.
func (c *Client) callOnce(req Request) (resp Response, err error, transport bool) {
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("wire: send: %w", err), true
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, fmt.Errorf("wire: receive: %w", err), true
		}
		return Response{}, fmt.Errorf("wire: connection closed by server"), true
	}
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("wire: decode response: %w", err), false
	}
	if !resp.OK {
		return resp, fmt.Errorf("wire: server error: %s", resp.Error), false
	}
	return resp, nil, false
}
