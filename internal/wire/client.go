package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client speaks the protocol to a qosconfigd server. A Client is safe for
// concurrent use: Call serializes request/response pairs over the single
// connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// DialTimeout is the default connect timeout.
const DialTimeout = 5 * time.Second

// Dial connects to the server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call sends one request and reads one response. A server-reported error
// is returned as a Go error with the response still populated.
func (c *Client) Call(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("wire: send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, fmt.Errorf("wire: receive: %w", err)
		}
		return Response{}, fmt.Errorf("wire: connection closed by server")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("wire: decode response: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("wire: server error: %s", resp.Error)
	}
	return resp, nil
}
