package wire

import (
	"testing"
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/capacity"
	"ubiqos/internal/composer"
	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/explain"
	"ubiqos/internal/netsim"
	"ubiqos/internal/registry"
	"ubiqos/internal/resource"
)

// startAdmissionServer boots a server whose domain runs a gate that
// rejects every class at StateOK — rejection is deterministic regardless
// of actual load, so the wire-level contract can be asserted end to end.
func startAdmissionServer(t *testing.T) (*domain.Domain, string) {
	t.Helper()
	dom, err := domain.New("adm-space", domain.Options{
		Scale:           0.05,
		EnableAdmission: true,
		AdmissionDefault: &admission.ClassPolicy{
			DegradeAt:  admission.Never,
			RejectAt:   capacity.StateOK,
			RetryAfter: 1500 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dom.Close)
	if _, err := dom.AddDevice("desktop1", device.ClassDesktop, resource.MB(256, 100), map[string]string{"platform": "pc"}); err != nil {
		t.Fatal(err)
	}
	if err := dom.ConnectServer("desktop1", netsim.Ethernet); err != nil {
		t.Fatal(err)
	}
	dom.Registry.MustRegister(&registry.Instance{
		Name:      "player-1",
		Type:      "player",
		Attrs:     map[string]string{"platform": "pc"},
		Resources: resource.MB(8, 5),
	})
	dom.Repo.MarkInstalled("desktop1", "player-1")

	srv, err := NewServer(dom)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return dom, addr
}

func admissionTestApp() *composer.AbstractGraph {
	ag := composer.NewAbstractGraph()
	ag.MustAddNode(&composer.AbstractNode{ID: "player", Spec: registry.Spec{Type: "player"}, Pin: core.ClientRole})
	return ag
}

// TestStartRejectedCarriesAdmissionDecision: a gate-rejected start fails
// with the decision and its retry-after hint attached to the error
// response, and the rejection leaves a decision-provenance record behind.
func TestStartRejectedCarriesAdmissionDecision(t *testing.T) {
	_, addr := startAdmissionServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Call(Request{
		Op:           OpStart,
		SessionID:    "adm-1",
		App:          admissionTestApp(),
		ClientDevice: "desktop1",
		Class:        "video",
	})
	if err == nil {
		t.Fatal("gate-rejected start did not error")
	}
	if resp.Admission == nil || !resp.Admission.Enabled || resp.Admission.Decision == nil {
		t.Fatalf("error response carries no admission decision: %+v", resp)
	}
	dec := resp.Admission.Decision
	if dec.Verdict != admission.Reject {
		t.Fatalf("verdict = %s, want reject", dec.Verdict)
	}
	if dec.RetryAfterMs != 1500 {
		t.Fatalf("retryAfterMs = %v, want 1500", dec.RetryAfterMs)
	}
	if dec.Class != "video" {
		t.Fatalf("class = %q, want video", dec.Class)
	}

	// No session may exist for the rejected ID.
	if resp, err := c.Call(Request{Op: OpSessions}); err != nil || len(resp.Sessions) != 0 {
		t.Fatalf("rejected session leaked: %v %v", resp.Sessions, err)
	}

	// The rejection is recorded as decision provenance.
	resp, err = c.Call(Request{Op: OpExplain, SessionID: "adm-1"})
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	found := false
	for _, rec := range resp.Explain.Records {
		if rec.Action == explain.ActionAdmission && rec.Admission != nil &&
			rec.Admission.Verdict == string(admission.Reject) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no admission provenance record for the rejection: %+v", resp.Explain.Records)
	}
}

// TestAdmissionOpStatusAndPreview: the admission op serves the gate
// snapshot (with decision tallies) and class previews without recording.
func TestAdmissionOpStatusAndPreview(t *testing.T) {
	_, addr := startAdmissionServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One real rejection to put a tally on the books.
	c.Call(Request{Op: OpStart, SessionID: "adm-2", App: admissionTestApp(),
		ClientDevice: "desktop1", Class: "video"})

	resp, err := c.Call(Request{Op: OpAdmission})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Admission == nil || !resp.Admission.Enabled || resp.Admission.Status == nil {
		t.Fatalf("admission status missing: %+v", resp.Admission)
	}
	var rejected int64
	for _, cc := range resp.Admission.Status.Classes {
		if cc.Class == "video" {
			rejected = cc.Rejected
		}
	}
	if rejected != 1 {
		t.Fatalf("video rejected tally = %d, want 1", rejected)
	}

	resp, err = c.Call(Request{Op: OpAdmission, Class: "probe"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Admission.Decision == nil || resp.Admission.Decision.Verdict != admission.Reject {
		t.Fatalf("preview decision = %+v, want reject", resp.Admission.Decision)
	}
	// Preview must not show up in the tallies.
	resp, _ = c.Call(Request{Op: OpAdmission})
	for _, cc := range resp.Admission.Status.Classes {
		if cc.Class == "probe" {
			t.Fatalf("preview was recorded: %+v", cc)
		}
	}
}

// TestAdmissionOpDisabled: a domain without a gate answers the admission
// op with enabled=false, and scale errors cleanly without an autoscaler.
func TestAdmissionOpDisabled(t *testing.T) {
	_, addr := startServer(t) // the stock audio space: no gate, no autoscaler
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Call(Request{Op: OpAdmission})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Admission == nil || resp.Admission.Enabled {
		t.Fatalf("gateless domain reported admission enabled: %+v", resp.Admission)
	}
	if _, err := c.Call(Request{Op: OpScale}); err == nil {
		t.Fatal("scale op without an autoscaler did not error")
	}
}
