package wire

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"ubiqos/internal/buildinfo"
	"ubiqos/internal/domain"
	"ubiqos/internal/explain"
	"ubiqos/internal/flight"
	"ubiqos/internal/incident"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
	"ubiqos/internal/trace"
)

// tracesDefault bounds a /traces listing when the caller does not pass
// ?n=.
const tracesDefault = 16

// NewHTTPHandler exposes the domain's observability surface over HTTP:
//
//	/metrics           Prometheus text exposition of the metrics registry,
//	                   including Go runtime health gauges refreshed per scrape
//	/healthz           liveness JSON (device/session counts, uptime, build
//	                   version)
//	/traces            recent configuration traces (?session= one session,
//	                   ?n= list length)
//	/flight            index of sessions with flight-recorder timelines
//	/flight/<session>  one session's fused timeline (?format=text renders
//	                   the human-readable form)
//	/ledger            index of sessions with QoS outcome records, most
//	                   recently active first
//	/ledger/<session>  one session's delivered-vs-requested report —
//	                   admission verdict, degradation episodes, per-axis
//	                   deficit integrals, MTTR (?format=text)
//	/scorecard         per-class QoS outcome scorecards — recovered/
//	                   degraded/lost ratios, availability, deficit and
//	                   latency quantiles (?class= one class, ?window=
//	                   trailing latency window, ?format=text renders
//	                   the `qosctl report` table)
//	/incidents         the incident log, newest first, evidence stripped
//	                   (?format=text renders the `qosctl incidents` table)
//	/incidents/<id>    one incident in full — timeline, evidence bundle,
//	                   impact accounting (?format=text renders the detail
//	                   view, ?format=postmortem the markdown document)
//	/explain           index of sessions with decision-provenance records
//	/explain/<session> one session's decision provenance — discovery
//	                   candidates, OC corrections, solver search stats,
//	                   recovery ladder, placement diffs (?format=text)
//	/slo               burn-rate status of the declared service-level
//	                   objectives (?format=text renders the table)
//	/timeseries        capacity time series: ?metric= one series (with
//	                   optional ?window= trailing duration, e.g. 2m), no
//	                   metric lists the recorded series
//	/saturation        the capacity observatory's saturation verdict —
//	                   devices, links, classes, space state
//	                   (?format=text renders the `qosctl top` view)
//	/admission         the admission gate's status — effective state, SLO
//	                   burn, per-class policies and decision tallies
//	                   (?class= previews one class's verdict without
//	                   recording it; {"enabled": false} when the domain
//	                   runs without a gate)
//	/debug/pprof       the standard Go profiling endpoints
//
// All endpoints are read-only: anything but GET/HEAD gets a 405.
// It is mounted by qosconfigd's -http listener and by tests via
// httptest.NewServer.
func NewHTTPHandler(dom *domain.Domain) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				writeJSON(w, http.StatusMethodNotAllowed, map[string]any{
					"ok": false, "error": "method " + r.Method + " not allowed",
				})
				return
			}
			h(w, r)
		})
	}
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		metrics.CollectRuntime(dom.Metrics, start)
		// Refresh the capacity gauges too, so a scrape between sampling
		// ticks still sees current headroom/residual values.
		dom.SampleCapacityNow()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, dom.Metrics.Exposition())
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":            true,
			"domain":        dom.Name,
			"devices":       len(dom.Devices.All()),
			"sessions":      len(dom.Configurator.SessionIDs()),
			"uptimeSeconds": time.Since(start).Seconds(),
			"version":       buildinfo.Get(),
		})
	})
	handle("/traces", func(w http.ResponseWriter, r *http.Request) {
		if session := r.URL.Query().Get("session"); session != "" {
			td := dom.Tracer.Find(session)
			if td == nil {
				writeJSON(w, http.StatusNotFound, map[string]any{
					"ok": false, "error": "no trace for session " + session,
				})
				return
			}
			writeJSON(w, http.StatusOK, td)
			return
		}
		n := tracesDefault
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"ok": false, "error": "n must be a positive integer",
				})
				return
			}
			n = v
		}
		tds := dom.Tracer.Recent(n)
		if tds == nil {
			tds = []trace.TraceData{}
		}
		writeJSON(w, http.StatusOK, tds)
	})
	handle("/flight", func(w http.ResponseWriter, r *http.Request) {
		sessions := dom.Flight.Sessions()
		if sessions == nil {
			sessions = []flight.SessionInfo{}
		}
		writeJSON(w, http.StatusOK, sessions)
	})
	handle("/flight/", func(w http.ResponseWriter, r *http.Request) {
		session := strings.TrimPrefix(r.URL.Path, "/flight/")
		if session == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"ok": false, "error": "missing session: GET /flight/<session>",
			})
			return
		}
		entries := dom.Flight.Timeline(session)
		if len(entries) == 0 {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"ok": false, "error": "no flight timeline for session " + session,
			})
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, dom.Flight.Render(session))
			return
		}
		writeJSON(w, http.StatusOK, entries)
	})
	handle("/ledger", func(w http.ResponseWriter, r *http.Request) {
		sessions := dom.Ledger.Sessions()
		if sessions == nil {
			sessions = []ledger.SessionReport{}
		}
		writeJSON(w, http.StatusOK, sessions)
	})
	handle("/ledger/", func(w http.ResponseWriter, r *http.Request) {
		session := strings.TrimPrefix(r.URL.Path, "/ledger/")
		if session == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"ok": false, "error": "missing session: GET /ledger/<session>",
			})
			return
		}
		rep, ok := dom.Ledger.Report(session)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"ok": false, "error": "no ledger record for session " + session,
			})
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, dom.Ledger.Render(session))
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	handle("/scorecard", func(w http.ResponseWriter, r *http.Request) {
		var window time.Duration
		if q := r.URL.Query().Get("window"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"ok": false, "error": "window must be a Go duration, e.g. 2m",
				})
				return
			}
			window = d
		}
		cards := dom.Ledger.Scorecards(window)
		if class := r.URL.Query().Get("class"); class != "" {
			filtered := cards[:0]
			for _, c := range cards {
				if c.Class == class {
					filtered = append(filtered, c)
				}
			}
			if len(filtered) == 0 {
				writeJSON(w, http.StatusNotFound, map[string]any{
					"ok": false, "error": "no scorecard for class " + class,
				})
				return
			}
			cards = filtered
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, ledger.RenderScorecards(cards))
			return
		}
		if cards == nil {
			cards = []ledger.Scorecard{}
		}
		writeJSON(w, http.StatusOK, cards)
	})
	handle("/incidents", func(w http.ResponseWriter, r *http.Request) {
		list := dom.Incidents.List()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, incident.Render(list))
			return
		}
		if list == nil {
			list = []incident.Incident{}
		}
		for i := range list {
			list[i].Evidence = nil
		}
		writeJSON(w, http.StatusOK, list)
	})
	handle("/incidents/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/incidents/")
		if id == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"ok": false, "error": "missing incident: GET /incidents/<id>",
			})
			return
		}
		inc, ok := dom.Incidents.Get(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"ok": false, "error": "no incident " + id,
			})
			return
		}
		switch r.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, incident.RenderIncident(inc))
		case "postmortem":
			w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
			io.WriteString(w, incident.Postmortem(inc))
		default:
			writeJSON(w, http.StatusOK, inc)
		}
	})
	handle("/explain", func(w http.ResponseWriter, r *http.Request) {
		sessions := dom.Explain.Sessions()
		if sessions == nil {
			sessions = []explain.SessionInfo{}
		}
		writeJSON(w, http.StatusOK, sessions)
	})
	handle("/explain/", func(w http.ResponseWriter, r *http.Request) {
		session := strings.TrimPrefix(r.URL.Path, "/explain/")
		if session == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"ok": false, "error": "missing session: GET /explain/<session>",
			})
			return
		}
		se := dom.Explain.Explain(session)
		if se == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"ok": false, "error": "no explain record for session " + session,
			})
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, se.Render())
			return
		}
		writeJSON(w, http.StatusOK, se)
	})
	handle("/slo", func(w http.ResponseWriter, r *http.Request) {
		statuses := dom.SLO.Publish()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, metrics.Render(statuses))
			return
		}
		if statuses == nil {
			statuses = []metrics.Status{}
		}
		writeJSON(w, http.StatusOK, statuses)
	})
	handle("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		dom.SampleCapacityNow()
		metric := r.URL.Query().Get("metric")
		if metric == "" {
			names := dom.Capacity.Metrics()
			if names == nil {
				names = []string{}
			}
			writeJSON(w, http.StatusOK, map[string]any{"metrics": names})
			return
		}
		var window time.Duration
		if q := r.URL.Query().Get("window"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"ok": false, "error": "window must be a Go duration, e.g. 2m",
				})
				return
			}
			window = d
		}
		samples := dom.Capacity.Series(metric, window)
		if samples == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"ok": false, "error": "no series " + metric + " (omit metric= to list)",
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"metric":          metric,
			"intervalSeconds": dom.Capacity.Interval().Seconds(),
			"samples":         samples,
		})
	})
	handle("/saturation", func(w http.ResponseWriter, r *http.Request) {
		rep := dom.SaturationReport()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, rep.Render())
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	handle("/admission", func(w http.ResponseWriter, r *http.Request) {
		if dom.Admission == nil {
			writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
			return
		}
		if class := r.URL.Query().Get("class"); class != "" {
			writeJSON(w, http.StatusOK, map[string]any{
				"enabled":  true,
				"decision": dom.Admission.Preview(class),
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled": true,
			"status":  dom.Admission.Status(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
