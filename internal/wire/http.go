package wire

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"ubiqos/internal/domain"
	"ubiqos/internal/flight"
	"ubiqos/internal/metrics"
	"ubiqos/internal/trace"
)

// tracesDefault bounds a /traces listing when the caller does not pass
// ?n=.
const tracesDefault = 16

// NewHTTPHandler exposes the domain's observability surface over HTTP:
//
//	/metrics          Prometheus text exposition of the metrics registry
//	/healthz          liveness JSON (device/session counts, uptime)
//	/traces           recent configuration traces (?session= one session,
//	                  ?n= list length)
//	/flight           index of sessions with flight-recorder timelines
//	/flight/<session> one session's fused timeline (?format=text renders
//	                  the human-readable form)
//	/slo              burn-rate status of the declared service-level
//	                  objectives (?format=text renders the table)
//	/debug/pprof      the standard Go profiling endpoints
//
// It is mounted by qosconfigd's -http listener and by tests via
// httptest.NewServer.
func NewHTTPHandler(dom *domain.Domain) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, dom.Metrics.Exposition())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":            true,
			"domain":        dom.Name,
			"devices":       len(dom.Devices.All()),
			"sessions":      len(dom.Configurator.SessionIDs()),
			"uptimeSeconds": time.Since(start).Seconds(),
		})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if session := r.URL.Query().Get("session"); session != "" {
			td := dom.Tracer.Find(session)
			if td == nil {
				writeJSON(w, http.StatusNotFound, map[string]any{
					"ok": false, "error": "no trace for session " + session,
				})
				return
			}
			writeJSON(w, http.StatusOK, td)
			return
		}
		n := tracesDefault
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"ok": false, "error": "n must be a positive integer",
				})
				return
			}
			n = v
		}
		tds := dom.Tracer.Recent(n)
		if tds == nil {
			tds = []trace.TraceData{}
		}
		writeJSON(w, http.StatusOK, tds)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		sessions := dom.Flight.Sessions()
		if sessions == nil {
			sessions = []flight.SessionInfo{}
		}
		writeJSON(w, http.StatusOK, sessions)
	})
	mux.HandleFunc("/flight/", func(w http.ResponseWriter, r *http.Request) {
		session := strings.TrimPrefix(r.URL.Path, "/flight/")
		if session == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"ok": false, "error": "missing session: GET /flight/<session>",
			})
			return
		}
		entries := dom.Flight.Timeline(session)
		if len(entries) == 0 {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"ok": false, "error": "no flight timeline for session " + session,
			})
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, dom.Flight.Render(session))
			return
		}
		writeJSON(w, http.StatusOK, entries)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		statuses := dom.SLO.Publish()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, metrics.Render(statuses))
			return
		}
		if statuses == nil {
			statuses = []metrics.Status{}
		}
		writeJSON(w, http.StatusOK, statuses)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
