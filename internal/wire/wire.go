// Package wire defines the newline-delimited JSON protocol spoken between
// the qosconfigd domain-server daemon and the qosctl client, plus the
// server and client implementations. Each request is one JSON object on
// one line; each response likewise.
package wire

import (
	"time"

	"ubiqos/internal/admission"
	"ubiqos/internal/autoscale"
	"ubiqos/internal/buildinfo"
	"ubiqos/internal/capacity"
	"ubiqos/internal/composer"
	"ubiqos/internal/distributor"
	"ubiqos/internal/explain"
	"ubiqos/internal/flight"
	"ubiqos/internal/incident"
	"ubiqos/internal/ledger"
	"ubiqos/internal/metrics"
	"ubiqos/internal/qos"
	"ubiqos/internal/registry"
	"ubiqos/internal/trace"
)

// Operation names.
const (
	OpPing         = "ping"
	OpListDevices  = "list-devices"
	OpListInst     = "list-services"
	OpSessions     = "sessions"
	OpSession      = "session"
	OpStart        = "start"
	OpStop         = "stop"
	OpSwitch       = "switch"
	OpMetrics      = "metrics"
	OpTrace        = "trace"
	OpCrashDevice  = "crash-device"
	OpRejoinDevice = "rejoin-device"
	OpCheck        = "check"
	OpRegister     = "register-service"
	OpUnregister   = "unregister-service"
	OpFlight       = "flight"
	OpSlo          = "slo"
	OpExplain      = "explain"
	OpVersion      = "version"
	OpStats        = "stats"
	OpTimeseries   = "timeseries"
	OpSaturation   = "saturation"
	OpAdmission    = "admission"
	OpScale        = "scale"
	OpLedger       = "ledger"
	OpScorecard    = "scorecard"
	OpIncidents    = "incidents"
	OpPostmortem   = "postmortem"
)

// Request is one client request.
type Request struct {
	// Op selects the operation.
	Op string `json:"op"`
	// SessionID addresses a session (start/stop/switch/session).
	SessionID string `json:"sessionId,omitempty"`
	// App is the abstract service graph (start).
	App *composer.AbstractGraph `json:"app,omitempty"`
	// UserQoS carries the user's QoS requirements (start).
	UserQoS qos.Vector `json:"userQoS,omitempty"`
	// ClientDevice is the portal device (start).
	ClientDevice string `json:"clientDevice,omitempty"`
	// ToDevice is the handoff target (switch).
	ToDevice string `json:"toDevice,omitempty"`
	// MaxFrames bounds emulated sources (start; 0 = unbounded).
	MaxFrames int64 `json:"maxFrames,omitempty"`
	// Instance is the service instance to announce (register-service).
	Instance *registry.Instance `json:"instance,omitempty"`
	// Name addresses a registered instance (unregister-service).
	Name string `json:"name,omitempty"`
	// InstalledOn optionally marks the registered instance pre-installed
	// on these devices ("*" = everywhere).
	InstalledOn []string `json:"installedOn,omitempty"`
	// Class buckets the session for per-class observability (start; empty
	// derives the class from the app graph's sink service type).
	Class string `json:"class,omitempty"`
	// Metric names a capacity time series (timeseries op; empty lists the
	// recorded series).
	Metric string `json:"metric,omitempty"`
	// Window restricts a timeseries query to the trailing duration, in
	// Go duration syntax, e.g. "2m" (timeseries op; empty = full ring).
	Window string `json:"window,omitempty"`
	// Incident addresses one incident by ID, e.g. "INC-3" (incidents /
	// postmortem ops; empty incidents op lists all).
	Incident string `json:"incident,omitempty"`
	// Group addresses an autoscaling group (scale op); Replicas, when set,
	// pins the group's replica count (nil just reads status).
	Group    string `json:"group,omitempty"`
	Replicas *int   `json:"replicas,omitempty"`
	// TraceID carries the client-originated trace context so the server's
	// spans join the caller's trace (start/switch). The client fills it in
	// automatically when empty.
	TraceID string `json:"traceId,omitempty"`
	// SpanID names the client-side span that caused this request; the
	// server records it as the parent of its root span.
	SpanID string `json:"spanId,omitempty"`
}

// DeviceInfo describes one device in a list-devices response.
type DeviceInfo struct {
	ID        string    `json:"id"`
	Class     string    `json:"class"`
	Capacity  []float64 `json:"capacity"`
	Available []float64 `json:"available"`
	Up        bool      `json:"up"`
}

// InstanceInfo describes one registered service instance.
type InstanceInfo struct {
	Name      string            `json:"name"`
	Type      string            `json:"type"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	SizeMB    float64           `json:"sizeMB,omitempty"`
	Resources []float64         `json:"resources,omitempty"`
}

// TimingInfo is the configuration overhead breakdown in milliseconds.
type TimingInfo struct {
	CompositionMs   float64 `json:"compositionMs"`
	DistributionMs  float64 `json:"distributionMs"`
	DownloadingMs   float64 `json:"downloadingMs"`
	InitOrHandoffMs float64 `json:"initOrHandoffMs"`
}

// SessionInfo describes one configured session.
type SessionInfo struct {
	ID           string             `json:"id"`
	ClientDevice string             `json:"clientDevice"`
	Placement    map[string]string  `json:"placement"`
	Cost         float64            `json:"cost"`
	Timing       TimingInfo         `json:"timing"`
	Rates        map[string]float64 `json:"rates,omitempty"`
	Summary      string             `json:"summary,omitempty"`
	// DOT is the Graphviz rendering of the placed service graph.
	DOT string `json:"dot,omitempty"`
}

// StatsInfo is the incremental-placement health snapshot (stats op): the
// plan cache's hit/miss ledger plus the warm/cold solve split.
type StatsInfo struct {
	// PlanCache is the signature-keyed plan cache's ledger; nil when the
	// daemon runs with the cache disabled.
	PlanCache *distributor.PlanCacheStats `json:"planCache,omitempty"`
	// WarmSolves counts branch-and-bound solves seeded from an incumbent.
	WarmSolves int64 `json:"warmSolves"`
	// ColdSolves counts from-scratch branch-and-bound solves.
	ColdSolves int64 `json:"coldSolves"`
	// WarmSpeedup is the explored-node ratio (previous cold solve over the
	// warm re-solve) of the most recent warm recovery; 0 until one happens.
	WarmSpeedup float64 `json:"warmSpeedup,omitempty"`
}

// TimeseriesInfo is one capacity time series (timeseries op).
type TimeseriesInfo struct {
	Metric string `json:"metric"`
	// IntervalSeconds is the observatory's sampling period.
	IntervalSeconds float64           `json:"intervalSeconds"`
	Samples         []capacity.Sample `json:"samples"`
}

// Response is one server response.
type Response struct {
	OK       bool           `json:"ok"`
	Error    string         `json:"error,omitempty"`
	Devices  []DeviceInfo   `json:"devices,omitempty"`
	Services []InstanceInfo `json:"services,omitempty"`
	Sessions []string       `json:"sessions,omitempty"`
	Session  *SessionInfo   `json:"session,omitempty"`
	// Metrics is the plain-text metrics snapshot (metrics op).
	Metrics string `json:"metrics,omitempty"`
	// Trace is one finished configuration trace (trace op): the span tree
	// of a Configure call, newest first when no session is named.
	Trace *trace.TraceData `json:"trace,omitempty"`
	// Moved lists sessions reconfigured off a crashed device (crash-device
	// op).
	Moved []string `json:"moved,omitempty"`
	// CheckSummary reports what composing the app would do (check op).
	CheckSummary string `json:"checkSummary,omitempty"`
	// Flight is one session's fused observability timeline (flight op).
	Flight []flight.Entry `json:"flight,omitempty"`
	// FlightSessions lists sessions with recorded timelines (flight op
	// with no session named), most recently active first.
	FlightSessions []flight.SessionInfo `json:"flightSessions,omitempty"`
	// SLO reports the burn-rate status of each declared objective (slo op).
	SLO []metrics.Status `json:"slo,omitempty"`
	// Explain is one session's decision-provenance report (explain op).
	Explain *explain.SessionExplain `json:"explain,omitempty"`
	// ExplainSessions lists sessions with provenance records (explain op
	// with no session named), most recently active first.
	ExplainSessions []explain.SessionInfo `json:"explainSessions,omitempty"`
	// Version is the daemon's build identity (version op).
	Version *buildinfo.Info `json:"version,omitempty"`
	// Stats is the incremental-placement health snapshot (stats op).
	Stats *StatsInfo `json:"stats,omitempty"`
	// Timeseries is one capacity time series (timeseries op with a metric).
	Timeseries *TimeseriesInfo `json:"timeseries,omitempty"`
	// TimeseriesMetrics lists the recorded series (timeseries op with no
	// metric named).
	TimeseriesMetrics []string `json:"timeseriesMetrics,omitempty"`
	// Saturation is the space's saturation verdict (saturation op) — the
	// payload behind `qosctl top`.
	Saturation *capacity.Report `json:"saturation,omitempty"`
	// Admission is the gate's answer (admission op), and rides along on a
	// rejected start so the client sees the verdict and retry-after hint.
	Admission *AdmissionInfo `json:"admission,omitempty"`
	// Autoscale is the autoscaler's status snapshot (scale op).
	Autoscale *autoscale.Status `json:"autoscale,omitempty"`
	// Ledger is one session's delivered-vs-requested outcome report
	// (ledger op with a session named).
	Ledger *ledger.SessionReport `json:"ledger,omitempty"`
	// LedgerSessions lists sessions with outcome records (ledger op with
	// no session named), most recently active first.
	LedgerSessions []ledger.SessionReport `json:"ledgerSessions,omitempty"`
	// Scorecards holds the per-class QoS outcome scorecards (scorecard
	// op) — the payload behind `qosctl report`.
	Scorecards []ledger.Scorecard `json:"scorecards,omitempty"`
	// Incidents lists the incident log, newest first, with evidence
	// bundles stripped (incidents op with no ID).
	Incidents []incident.Incident `json:"incidents,omitempty"`
	// Incident is one incident in full, evidence bundle included
	// (incidents op with an ID).
	Incident *incident.Incident `json:"incident,omitempty"`
	// Postmortem is the incident's shareable markdown document
	// (postmortem op).
	Postmortem string `json:"postmortem,omitempty"`
}

// AdmissionInfo is the admission gate's wire payload: the gate status
// (admission op with no class), a dry-run decision (admission op with a
// class), or the decision that rejected a start.
type AdmissionInfo struct {
	// Enabled reports whether the domain runs with an admission gate.
	Enabled bool `json:"enabled"`
	// Decision is a single class's verdict (preview or rejection).
	Decision *admission.Decision `json:"decision,omitempty"`
	// Status is the gate snapshot: effective state, policies, tallies.
	Status *admission.Status `json:"status,omitempty"`
}

func timingInfo(c, d, dl, ih time.Duration) TimingInfo {
	toMs := func(x time.Duration) float64 { return float64(x) / float64(time.Millisecond) }
	return TimingInfo{
		CompositionMs:   toMs(c),
		DistributionMs:  toMs(d),
		DownloadingMs:   toMs(dl),
		InitOrHandoffMs: toMs(ih),
	}
}
