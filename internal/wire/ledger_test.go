package wire

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ubiqos/internal/experiments"
	"ubiqos/internal/ledger"
	"ubiqos/internal/qos"
)

// startLedgerSession runs one PDA audio session to completion so the
// outcome ledger holds a finalized record in class "media".
func startLedgerSession(t *testing.T, srv *Server, sid string) {
	t.Helper()
	resp := srv.Handle(Request{
		Op:           OpStart,
		SessionID:    sid,
		Class:        "media",
		App:          experiments.AudioOnDemandApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "jornada",
	})
	if !resp.OK {
		t.Fatalf("start %s: %s", sid, resp.Error)
	}
	if resp = srv.Handle(Request{Op: OpStop, SessionID: sid}); !resp.OK {
		t.Fatalf("stop %s: %s", sid, resp.Error)
	}
}

// TestLedgerOps drives the ledger and scorecard wire ops: the session
// index, the per-session outcome report, and the per-class scorecards
// with the -class and -window filters qosctl report forwards.
func TestLedgerOps(t *testing.T) {
	srv, _ := startServer(t)
	startLedgerSession(t, srv, "led-1")

	// Per-session report.
	resp := srv.Handle(Request{Op: OpLedger, SessionID: "led-1"})
	if !resp.OK || resp.Ledger == nil {
		t.Fatalf("ledger op: ok=%v err=%s", resp.OK, resp.Error)
	}
	rep := resp.Ledger
	if rep.Session != "led-1" || rep.Class != "media" || rep.Outcome != ledger.OutcomeCompleted {
		t.Errorf("report = %s/%s/%s", rep.Session, rep.Class, rep.Outcome)
	}
	if rep.Configures != 1 || len(rep.Requested) == 0 {
		t.Errorf("report configures=%d requested=%v", rep.Configures, rep.Requested)
	}
	if rep.Render() == "" || !strings.Contains(rep.Render(), "led-1") {
		t.Errorf("report rendering = %q", rep.Render())
	}

	// Index: every tracked session, newest first.
	resp = srv.Handle(Request{Op: OpLedger})
	if !resp.OK || len(resp.LedgerSessions) != 1 || resp.LedgerSessions[0].Session != "led-1" {
		t.Errorf("ledger index = %+v", resp.LedgerSessions)
	}

	if resp = srv.Handle(Request{Op: OpLedger, SessionID: "ghost"}); resp.OK {
		t.Error("unknown session accepted")
	}

	// Scorecards.
	resp = srv.Handle(Request{Op: OpScorecard})
	if !resp.OK || len(resp.Scorecards) != 1 {
		t.Fatalf("scorecard op: ok=%v cards=%+v", resp.OK, resp.Scorecards)
	}
	sc := resp.Scorecards[0]
	if sc.Class != "media" || sc.Sessions != 1 || sc.Completed != 1 {
		t.Errorf("scorecard = %+v", sc)
	}
	if sc.Availability != 1 {
		t.Errorf("availability = %g, want 1 (clean session)", sc.Availability)
	}

	// Class filter and window parsing.
	if resp = srv.Handle(Request{Op: OpScorecard, Class: "media", Window: "1h"}); !resp.OK || len(resp.Scorecards) != 1 {
		t.Errorf("filtered scorecard: ok=%v cards=%d err=%s", resp.OK, len(resp.Scorecards), resp.Error)
	}
	if resp = srv.Handle(Request{Op: OpScorecard, Class: "ghost"}); resp.OK {
		t.Error("unknown class accepted")
	}
	if resp = srv.Handle(Request{Op: OpScorecard, Window: "soon"}); resp.OK {
		t.Error("bad window accepted")
	}
}

// TestLedgerHTTP covers the /ledger and /scorecard HTTP endpoints: JSON
// and text renderings plus the error statuses.
func TestLedgerHTTP(t *testing.T) {
	srv, _ := startServer(t)
	web := httptest.NewServer(NewHTTPHandler(srv.dom))
	t.Cleanup(web.Close)

	// Empty surfaces render as empty JSON collections, not errors.
	if body := httpGet(t, web.URL+"/ledger"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty ledger index = %q", body)
	}
	if body := httpGet(t, web.URL+"/scorecard"); strings.TrimSpace(body) != "[]" {
		t.Errorf("empty scorecards = %q", body)
	}

	startLedgerSession(t, srv, "led-http")

	var index []ledger.SessionReport
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/ledger")), &index); err != nil {
		t.Fatal(err)
	}
	if len(index) != 1 || index[0].Session != "led-http" {
		t.Errorf("ledger index = %+v", index)
	}
	var rep ledger.SessionReport
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/ledger/led-http")), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != ledger.OutcomeCompleted || rep.Ended == nil {
		t.Errorf("report = outcome %q ended %v", rep.Outcome, rep.Ended)
	}
	text := httpGet(t, web.URL+"/ledger/led-http?format=text")
	for _, want := range []string{"ledger led-http", "outcome=completed", "requested"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
	if code := httpStatus(t, web.URL+"/ledger/ghost"); code != http.StatusNotFound {
		t.Errorf("unknown ledger session status = %d", code)
	}
	if code := httpStatus(t, web.URL+"/ledger/"); code != http.StatusBadRequest {
		t.Errorf("missing session status = %d", code)
	}

	var cards []ledger.Scorecard
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/scorecard?class=media&window=1h")), &cards); err != nil {
		t.Fatal(err)
	}
	if len(cards) != 1 || cards[0].Class != "media" || cards[0].Sessions != 1 {
		t.Errorf("scorecards = %+v", cards)
	}
	ctext := httpGet(t, web.URL+"/scorecard?format=text")
	for _, want := range []string{"CLASS", "AVAIL", "media"} {
		if !strings.Contains(ctext, want) {
			t.Errorf("text scorecards missing %q:\n%s", want, ctext)
		}
	}
	if code := httpStatus(t, web.URL+"/scorecard?window=soon"); code != http.StatusBadRequest {
		t.Errorf("bad window status = %d", code)
	}
	if code := httpStatus(t, web.URL+"/scorecard?class=ghost"); code != http.StatusNotFound {
		t.Errorf("unknown class status = %d", code)
	}
}
