package wire

import (
	"strings"
	"testing"
	"time"

	"ubiqos/internal/core"
	"ubiqos/internal/device"
	"ubiqos/internal/domain"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/experiments"
	"ubiqos/internal/faultinject"
	"ubiqos/internal/flight"
	"ubiqos/internal/qos"
)

// startChaosServer boots a server over the six-device chaos space so
// device-churn scenarios have spare hosts to fail over to.
func startChaosServer(t *testing.T) (*domain.Domain, string) {
	t.Helper()
	dom, err := experiments.BuildChaosSpace(0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dom.Close)
	srv, err := NewServer(dom)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return dom, addr
}

// TestCrashDeviceReplacesSessionOverWire walks the full protocol path of
// a device crash: start a session over TCP, crash the desktop hosting
// its server component, and verify the reconfigured placement avoids the
// dead device. Then rejoin the device and confirm it is schedulable
// again.
func TestCrashDeviceReplacesSessionOverWire(t *testing.T) {
	_, addr := startChaosServer(t)
	c, err := DialWith(addr, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Call(Request{
		Op:           OpStart,
		SessionID:    "e1",
		App:          experiments.ChaosAudioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "jornada",
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	victim := resp.Session.Placement["server"]
	if victim == "" || victim == "jornada" {
		t.Fatalf("server placed on %q", victim)
	}

	resp, err = c.Call(Request{Op: OpCrashDevice, ToDevice: victim})
	if err != nil {
		t.Fatalf("crash: %v", err)
	}
	moved := false
	for _, sid := range resp.Moved {
		if sid == "e1" {
			moved = true
		}
	}
	if !moved {
		t.Errorf("moved = %v, want e1", resp.Moved)
	}

	resp, err = c.Call(Request{Op: OpSession, SessionID: "e1"})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	for node, dev := range resp.Session.Placement {
		if dev == victim {
			t.Errorf("component %s still on crashed device %s", node, victim)
		}
	}

	// The crashed device is reported down, and rejoining brings it back.
	resp, err = c.Call(Request{Op: OpListDevices})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range resp.Devices {
		if d.ID == victim && d.Up {
			t.Errorf("crashed device %s still reported up", victim)
		}
	}
	if _, err := c.Call(Request{Op: OpRejoinDevice, ToDevice: victim}); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	resp, err = c.Call(Request{Op: OpListDevices})
	if err != nil {
		t.Fatal(err)
	}
	up := false
	for _, d := range resp.Devices {
		if d.ID == victim && d.Up {
			up = true
		}
	}
	if !up {
		t.Errorf("rejoined device %s not reported up", victim)
	}
	if _, err := c.Call(Request{Op: OpRejoinDevice, ToDevice: "ghost"}); err == nil {
		t.Error("rejoining an unknown device should fail")
	}
}

// TestCrashCascadeFiresUserNotification crashes every desktop until no
// feasible placement remains: the session must be torn down and the user
// notified through the event service, exactly as DESIGN.md's fault model
// specifies for unrecoverable churn.
func TestCrashCascadeFiresUserNotification(t *testing.T) {
	dom, addr := startChaosServer(t)
	notices, err := dom.Bus.Subscribe(eventbus.TopicUserNotification)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialWith(addr, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(Request{
		Op:           OpStart,
		SessionID:    "e2",
		App:          experiments.ChaosAudioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "jornada",
	}); err != nil {
		t.Fatalf("start: %v", err)
	}

	// The PDA cannot host the audio server, so once the last desktop goes
	// the session has nowhere left to run. The final crash reports that
	// casualty as a server error (nothing could be moved), which the
	// client surfaces without retrying.
	var lastErr error
	for _, victim := range []string{"desktop1", "desktop2", "desktop3", "desktop4", "desktop5"} {
		if _, err := c.Call(Request{Op: OpCrashDevice, ToDevice: victim}); err != nil {
			lastErr = err
		}
	}
	if lastErr == nil {
		t.Error("losing the last feasible host should surface a reconfigure error")
	}

	// Every desktop is down regardless of how its crash was reported.
	resp, err := c.Call(Request{Op: OpListDevices})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range resp.Devices {
		if d.ID != "jornada" && d.Up {
			t.Errorf("crashed device %s still reported up", d.ID)
		}
	}

	resp, err = c.Call(Request{Op: OpSessions})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sessions) != 0 {
		t.Errorf("sessions = %v, want none after losing every host", resp.Sessions)
	}
	select {
	case ev := <-notices.C():
		notice, ok := ev.Payload.(core.SessionLostNotice)
		if !ok || notice.SessionID != "e2" {
			t.Errorf("notice = %+v", ev.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no user notification for the unplaceable session")
	}
}

// TestFlightTimelineOverWire is the observability acceptance path: a
// session is started over the wire with client-originated trace context,
// a chaos fault crashes the device hosting its server component, the
// supervisor recovers it, and the flight op then returns one fused
// timeline containing — in sequence order — the client's trace ID, the
// injected fault marker, the recovery attempts, and the final outcome.
func TestFlightTimelineOverWire(t *testing.T) {
	dom, addr := startChaosServer(t)
	sup, err := core.NewSupervisor(dom.Configurator, core.SupervisorOptions{
		Bus:         dom.Bus,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Stop)

	c, err := DialWith(addr, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const traceID = "cafec0dedeadbeef"
	resp, err := c.Call(Request{
		Op:           OpStart,
		SessionID:    "f1",
		TraceID:      traceID,
		App:          experiments.ChaosAudioApp(),
		UserQoS:      qos.V(qos.P(qos.DimFrameRate, qos.Range(30, 44))),
		ClientDevice: "jornada",
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	victim := resp.Session.Placement["server"]

	// Crash the hosting device through the fault injector so the timeline
	// gains a fault marker, then let the supervisor heal the session.
	inj, err := faultinject.NewInjector(dom, faultinject.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Apply(faultinject.Fault{Kind: faultinject.DeviceCrash, Device: device.ID(victim)}); err != nil {
		t.Fatalf("inject crash: %v", err)
	}
	if !sup.AwaitIdle(10 * time.Second) {
		t.Fatal("supervisor never went idle after the crash")
	}
	if got := sup.Stats().Recovered; got == 0 {
		t.Fatalf("session not recovered; stats = %+v", sup.Stats())
	}

	resp, err = c.Call(Request{Op: OpFlight, SessionID: "f1"})
	if err != nil {
		t.Fatalf("flight: %v", err)
	}
	if len(resp.Flight) == 0 {
		t.Fatal("empty flight timeline")
	}

	var sawTrace, sawFault, sawAttempt, sawOutcome bool
	var faultSeq, outcomeSeq uint64
	lastSeq := uint64(0)
	for i, e := range resp.Flight {
		if i > 0 && e.Seq <= lastSeq {
			t.Errorf("entry %d out of sequence: %d after %d", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.TraceID == traceID {
			sawTrace = true
		}
		switch {
		case e.Kind == flight.KindFault:
			sawFault, faultSeq = true, e.Seq
		case strings.Contains(e.Message, "recovery attempt"):
			sawAttempt = true
		case strings.Contains(e.Message, "session recovered"):
			sawOutcome, outcomeSeq = true, e.Seq
		}
	}
	if !sawTrace {
		t.Errorf("no entry carries the client trace ID %s", traceID)
	}
	if !sawFault {
		t.Error("no injected-fault marker in the timeline")
	}
	if !sawAttempt {
		t.Error("no recovery attempt in the timeline")
	}
	if !sawOutcome {
		t.Error("no final recovery outcome in the timeline")
	}
	if sawFault && sawOutcome && outcomeSeq <= faultSeq {
		t.Errorf("outcome (seq %d) does not follow fault (seq %d)", outcomeSeq, faultSeq)
	}

	// The sessionless flight op indexes recorded sessions.
	resp, err = c.Call(Request{Op: OpFlight})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range resp.FlightSessions {
		if s.Session == "f1" {
			found = true
		}
	}
	if !found {
		t.Errorf("flight index %+v missing f1", resp.FlightSessions)
	}
	if _, err := c.Call(Request{Op: OpFlight, SessionID: "ghost"}); err == nil {
		t.Error("flight for an unknown session should fail")
	}

	// The slo op reports the declared objectives with burn-rate states.
	resp, err = c.Call(Request{Op: OpSlo})
	if err != nil {
		t.Fatalf("slo: %v", err)
	}
	if len(resp.SLO) < 3 {
		t.Fatalf("slo reported %d objectives, want at least 3", len(resp.SLO))
	}
	for _, st := range resp.SLO {
		if st.State == "" {
			t.Errorf("objective %s has no state", st.Name)
		}
	}
}
