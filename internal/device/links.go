package device

import (
	"fmt"
	"sync"
)

// Links is the symmetric end-to-end available-bandwidth table b(i,j)
// between device pairs (Mbps), with reservation accounting so concurrent
// sessions see each other's bandwidth consumption. All methods are safe
// for concurrent use.
type Links struct {
	mu       sync.Mutex
	capacity map[[2]ID]float64
	reserved map[[2]ID]float64
}

// NewLinks returns an empty link table.
func NewLinks() *Links {
	return &Links{
		capacity: make(map[[2]ID]float64),
		reserved: make(map[[2]ID]float64),
	}
}

func linkKey(a, b ID) [2]ID {
	if a > b {
		a, b = b, a
	}
	return [2]ID{a, b}
}

// Set declares the total end-to-end bandwidth between a and b in Mbps.
// Setting a pair overwrites any previous capacity but keeps reservations.
func (l *Links) Set(a, b ID, mbps float64) error {
	if a == b {
		return fmt.Errorf("device: link endpoints must differ, got %s", a)
	}
	if mbps < 0 {
		return fmt.Errorf("device: negative bandwidth %g between %s and %s", mbps, a, b)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.capacity[linkKey(a, b)] = mbps
	return nil
}

// MustSet is Set that panics on error.
func (l *Links) MustSet(a, b ID, mbps float64) {
	if err := l.Set(a, b, mbps); err != nil {
		panic(err)
	}
}

// Capacity returns the declared total bandwidth between a and b, or 0 when
// no link is declared. The intra-device "link" (a == b) is infinite in
// concept; callers must not route it through the table — Available returns
// 0 for undeclared pairs so a missing link correctly fails fit checks.
func (l *Links) Capacity(a, b ID) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.capacity[linkKey(a, b)]
}

// Available returns the remaining (unreserved) bandwidth between a and b.
func (l *Links) Available(a, b ID) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := linkKey(a, b)
	rem := l.capacity[k] - l.reserved[k]
	if rem < 0 {
		return 0
	}
	return rem
}

// Reserved returns the bandwidth currently booked between a and b. When a
// link degrades below its existing reservations, Reserved exceeds
// Capacity — the overcommit signal the recovery supervisor watches for.
func (l *Links) Reserved(a, b ID) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserved[linkKey(a, b)]
}

// Reserve atomically books mbps between a and b, failing without side
// effects when the remaining bandwidth is insufficient.
func (l *Links) Reserve(a, b ID, mbps float64) error {
	if mbps < 0 {
		return fmt.Errorf("device: negative reservation %g", mbps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := linkKey(a, b)
	if l.reserved[k]+mbps > l.capacity[k] {
		return fmt.Errorf("device: link %s-%s: need %.2f Mbps, have %.2f of %.2f",
			a, b, mbps, l.capacity[k]-l.reserved[k], l.capacity[k])
	}
	l.reserved[k] += mbps
	return nil
}

// ReleaseBandwidth returns a previous reservation, clamped at zero.
func (l *Links) ReleaseBandwidth(a, b ID, mbps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := linkKey(a, b)
	l.reserved[k] -= mbps
	if l.reserved[k] < 0 {
		l.reserved[k] = 0
	}
}

// AvailFunc returns a snapshot function suitable for the distributor: it
// reports the currently available bandwidth between two devices. The
// returned function reads live state; capture a frozen copy with Snapshot
// if a consistent view is needed.
func (l *Links) AvailFunc() func(a, b ID) float64 {
	return l.Available
}

// LinkEntry is one declared pair's frozen bandwidth accounting.
type LinkEntry struct {
	A, B ID
	// CapacityMbps is the declared total bandwidth.
	CapacityMbps float64
	// ReservedMbps is the booked bandwidth (it can exceed CapacityMbps
	// when a link degraded below its existing reservations).
	ReservedMbps float64
}

// Entries returns a frozen copy of the full capacity/reservation table,
// one entry per declared pair in unspecified order — the capacity
// observatory's per-link view, which needs totals as well as the
// remainder Snapshot reports.
func (l *Links) Entries() []LinkEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LinkEntry, 0, len(l.capacity))
	for k, c := range l.capacity {
		out = append(out, LinkEntry{A: k[0], B: k[1], CapacityMbps: c, ReservedMbps: l.reserved[k]})
	}
	return out
}

// Snapshot returns a frozen copy of the available bandwidth for every
// declared pair.
func (l *Links) Snapshot() map[[2]ID]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[[2]ID]float64, len(l.capacity))
	for k, c := range l.capacity {
		rem := c - l.reserved[k]
		if rem < 0 {
			rem = 0
		}
		out[k] = rem
	}
	return out
}
