// Package device models the heterogeneous devices of a ubiquitous computing
// environment (desktops, laptops, PDAs, workstations, gateways) and their
// resource availability accounting, plus the end-to-end bandwidth table
// b(i,j) between device pairs used by the service distribution tier.
//
// All resource vectors held by a Device are normalized to the benchmark
// machine (see resource.Normalizer); the distributor therefore compares
// devices directly.
package device

import (
	"fmt"
	"sort"
	"sync"

	"ubiqos/internal/resource"
)

// ID identifies a device within a domain.
type ID string

// Class is a coarse device category used for normalization defaults and
// service pinning rules.
type Class int

// Device classes.
const (
	ClassDesktop Class = iota + 1
	ClassLaptop
	ClassPDA
	ClassWorkstation
	ClassGateway
	ClassServer
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassDesktop:
		return "desktop"
	case ClassLaptop:
		return "laptop"
	case ClassPDA:
		return "pda"
	case ClassWorkstation:
		return "workstation"
	case ClassGateway:
		return "gateway"
	case ClassServer:
		return "server"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// DefaultSpeedRatio returns the conventional CPU speed of the class
// relative to the laptop benchmark machine, following the paper's §3.3
// example (PDA 0.4×, PC 5×).
func (c Class) DefaultSpeedRatio() float64 {
	switch c {
	case ClassPDA:
		return 0.4
	case ClassLaptop:
		return 1
	case ClassDesktop:
		return 5
	case ClassWorkstation, ClassServer:
		return 6
	case ClassGateway:
		return 3
	default:
		return 1
	}
}

// Device is one device in the smart space. All mutating methods are safe
// for concurrent use.
type Device struct {
	// ID is the domain-unique device identifier.
	ID ID
	// Class is the device category.
	Class Class
	// Attrs carries descriptive properties used during service discovery
	// (e.g. "screen": "small", "audio-out": "yes").
	Attrs map[string]string

	mu       sync.Mutex
	capacity resource.Vector // normalized total capacity
	avail    resource.Vector // normalized remaining availability
	up       bool
}

// New creates a device with the given normalized capacity, fully available
// and up.
func New(id ID, class Class, capacity resource.Vector, attrs map[string]string) (*Device, error) {
	if id == "" {
		return nil, fmt.Errorf("device: empty ID")
	}
	if err := capacity.Validate(); err != nil {
		return nil, fmt.Errorf("device %s: %w", id, err)
	}
	cloned := make(map[string]string, len(attrs))
	for k, v := range attrs {
		cloned[k] = v
	}
	return &Device{
		ID:       id,
		Class:    class,
		Attrs:    cloned,
		capacity: capacity.Clone(),
		avail:    capacity.Clone(),
		up:       true,
	}, nil
}

// MustNew is New that panics on error, for literals in tests and examples.
func MustNew(id ID, class Class, capacity resource.Vector, attrs map[string]string) *Device {
	d, err := New(id, class, capacity, attrs)
	if err != nil {
		panic(err)
	}
	return d
}

// Capacity returns the normalized total capacity vector.
func (d *Device) Capacity() resource.Vector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity.Clone()
}

// Available returns the normalized remaining availability vector RA.
func (d *Device) Available() resource.Vector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.avail.Clone()
}

// Up reports whether the device is currently reachable.
func (d *Device) Up() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.up
}

// SetUp marks the device reachable or crashed. Marking a device down does
// not release admitted resources: a later SetUp(true) restores the device
// with its previous commitments (sessions decide whether to migrate away).
func (d *Device) SetUp(up bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.up = up
}

// Admit atomically reserves the requirement vector r, failing without
// side effects if r exceeds current availability (Definition 3.2) or the
// device is down.
func (d *Device) Admit(r resource.Vector) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.up {
		return fmt.Errorf("device %s: down", d.ID)
	}
	if len(r) != len(d.avail) {
		return fmt.Errorf("device %s: requirement dimension %d, device has %d", d.ID, len(r), len(d.avail))
	}
	if !r.LessEq(d.avail) {
		return fmt.Errorf("device %s: insufficient resources: need %s, have %s", d.ID, r, d.avail)
	}
	d.avail = d.avail.Sub(r)
	return nil
}

// Committed returns the resources currently admitted (capacity −
// available).
func (d *Device) Committed() resource.Vector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity.Sub(d.avail)
}

// Resize models a resource fluctuation: the device's capacity changes
// (e.g. external load appears or clears) while existing commitments stay
// admitted. The new availability is the new capacity minus the current
// commitments, clamped at zero; Resize reports whether the commitments
// still fit the new capacity — when they do not, the caller (the domain)
// must re-distribute sessions away.
func (d *Device) Resize(newCapacity resource.Vector) (fits bool, err error) {
	if err := newCapacity.Validate(); err != nil {
		return false, fmt.Errorf("device %s: %w", d.ID, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(newCapacity) != len(d.capacity) {
		return false, fmt.Errorf("device %s: capacity dimension %d, device has %d", d.ID, len(newCapacity), len(d.capacity))
	}
	committed := d.capacity.Sub(d.avail)
	d.capacity = newCapacity.Clone()
	d.avail = newCapacity.Sub(committed)
	return committed.LessEq(d.capacity), nil
}

// Release returns a previously admitted requirement vector, clamped at
// capacity.
func (d *Device) Release(r resource.Vector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(r) != len(d.avail) {
		return
	}
	d.avail = d.avail.Add(r)
	for i := range d.avail {
		if d.avail[i] > d.capacity[i] {
			d.avail[i] = d.capacity[i]
		}
	}
}

// String renders the device compactly.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s %s)", d.ID, d.Class, d.Available())
}

// Snapshot is an immutable view of a device used by placement algorithms.
type Snapshot struct {
	ID        ID
	Class     Class
	Available resource.Vector
	Up        bool
}

// Snapshot captures the device's current state.
func (d *Device) Snapshot() Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Snapshot{ID: d.ID, Class: d.Class, Available: d.avail.Clone(), Up: d.up}
}

// Table is a concurrency-safe registry of the devices currently present in
// a domain.
type Table struct {
	mu      sync.RWMutex
	devices map[ID]*Device
}

// NewTable returns an empty device table.
func NewTable() *Table {
	return &Table{devices: make(map[ID]*Device)}
}

// Add registers a device; it fails on duplicate IDs.
func (t *Table) Add(d *Device) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.devices[d.ID]; ok {
		return fmt.Errorf("device: duplicate %s", d.ID)
	}
	t.devices[d.ID] = d
	return nil
}

// Remove deletes a device (e.g. when it leaves the smart space) and reports
// whether it was present.
func (t *Table) Remove(id ID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.devices[id]; !ok {
		return false
	}
	delete(t.devices, id)
	return true
}

// Get returns the device with the given ID, or nil.
func (t *Table) Get(id ID) *Device {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.devices[id]
}

// All returns all devices sorted by ID for determinism.
func (t *Table) All() []*Device {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Device, 0, len(t.devices))
	for _, d := range t.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// UpDevices returns all devices currently up, sorted by ID.
func (t *Table) UpDevices() []*Device {
	all := t.All()
	out := all[:0]
	for _, d := range all {
		if d.Up() {
			out = append(out, d)
		}
	}
	return out
}

// Len returns the number of registered devices.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.devices)
}
