package device

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ubiqos/internal/resource"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("", ClassPDA, resource.MB(32, 40), nil); err == nil {
		t.Error("empty ID should fail")
	}
	if _, err := New("pda", ClassPDA, resource.Vector{-1, 0}, nil); err == nil {
		t.Error("invalid capacity should fail")
	}
	d, err := New("pda", ClassPDA, resource.MB(32, 40), map[string]string{"screen": "small"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Attrs["screen"] != "small" {
		t.Error("attrs lost")
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassDesktop, "desktop"}, {ClassLaptop, "laptop"}, {ClassPDA, "pda"},
		{ClassWorkstation, "workstation"}, {ClassGateway, "gateway"}, {ClassServer, "server"},
		{Class(0), "Class(0)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestDefaultSpeedRatio(t *testing.T) {
	if ClassLaptop.DefaultSpeedRatio() != 1 {
		t.Error("laptop is the benchmark machine")
	}
	if ClassPDA.DefaultSpeedRatio() >= 1 {
		t.Error("PDA must be slower than benchmark")
	}
	if ClassDesktop.DefaultSpeedRatio() <= 1 {
		t.Error("desktop must be faster than benchmark")
	}
	if Class(0).DefaultSpeedRatio() != 1 {
		t.Error("unknown class defaults to 1")
	}
}

func TestAdmitRelease(t *testing.T) {
	d := MustNew("pc", ClassDesktop, resource.MB(256, 300), nil)
	if err := d.Admit(resource.MB(200, 100)); err != nil {
		t.Fatal(err)
	}
	if got := d.Available(); !got.Equal(resource.MB(56, 200)) {
		t.Errorf("Available = %v", got)
	}
	if err := d.Admit(resource.MB(100, 10)); err == nil {
		t.Error("over-admission should fail")
	}
	// Failed admission must not change availability.
	if got := d.Available(); !got.Equal(resource.MB(56, 200)) {
		t.Errorf("Available after failed admit = %v", got)
	}
	d.Release(resource.MB(200, 100))
	if got := d.Available(); !got.Equal(resource.MB(256, 300)) {
		t.Errorf("Available after release = %v", got)
	}
	// Release clamps at capacity.
	d.Release(resource.MB(1000, 1000))
	if got := d.Available(); !got.Equal(d.Capacity()) {
		t.Errorf("Available after over-release = %v", got)
	}
	// Dimension mismatches are rejected / ignored.
	if err := d.Admit(resource.Vector{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	d.Release(resource.Vector{1}) // must not panic
}

func TestAdmitWhenDown(t *testing.T) {
	d := MustNew("pc", ClassDesktop, resource.MB(256, 300), nil)
	d.SetUp(false)
	if d.Up() {
		t.Error("device should be down")
	}
	if err := d.Admit(resource.MB(1, 1)); err == nil {
		t.Error("admission on a down device should fail")
	}
	d.SetUp(true)
	if err := d.Admit(resource.MB(1, 1)); err != nil {
		t.Errorf("admission after recovery failed: %v", err)
	}
}

func TestAdmitConcurrent(t *testing.T) {
	d := MustNew("pc", ClassDesktop, resource.MB(100, 100), nil)
	const workers = 20
	var wg sync.WaitGroup
	admitted := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d.Admit(resource.MB(10, 10)) == nil {
				admitted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for range admitted {
		n++
	}
	if n != 10 {
		t.Errorf("admitted %d of 20 workers, want exactly 10", n)
	}
	if !d.Available().IsZero() {
		t.Errorf("Available = %v, want zero", d.Available())
	}
}

func TestSnapshot(t *testing.T) {
	d := MustNew("pda", ClassPDA, resource.MB(32, 40), nil)
	s := d.Snapshot()
	if s.ID != "pda" || s.Class != ClassPDA || !s.Up || !s.Available.Equal(resource.MB(32, 40)) {
		t.Errorf("Snapshot = %+v", s)
	}
	// Snapshots are isolated from later mutation.
	if err := d.Admit(resource.MB(32, 40)); err != nil {
		t.Fatal(err)
	}
	if !s.Available.Equal(resource.MB(32, 40)) {
		t.Error("snapshot must be frozen")
	}
}

func TestDeviceString(t *testing.T) {
	d := MustNew("pda1", ClassPDA, resource.MB(32, 40), nil)
	if got := d.String(); !strings.Contains(got, "pda1") || !strings.Contains(got, "pda") {
		t.Errorf("String() = %q", got)
	}
}

func TestTable(t *testing.T) {
	tab := NewTable()
	d1 := MustNew("b-dev", ClassDesktop, resource.MB(256, 300), nil)
	d2 := MustNew("a-dev", ClassPDA, resource.MB(32, 40), nil)
	if err := tab.Add(d1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(d2); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(d1); err == nil {
		t.Error("duplicate add should fail")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
	if got := tab.Get("a-dev"); got != d2 {
		t.Error("Get mismatch")
	}
	all := tab.All()
	if len(all) != 2 || all[0].ID != "a-dev" || all[1].ID != "b-dev" {
		t.Errorf("All must be sorted by ID: %v", all)
	}
	d2.SetUp(false)
	up := tab.UpDevices()
	if len(up) != 1 || up[0].ID != "b-dev" {
		t.Errorf("UpDevices = %v", up)
	}
	if !tab.Remove("a-dev") || tab.Remove("a-dev") {
		t.Error("Remove semantics wrong")
	}
	if tab.Get("a-dev") != nil {
		t.Error("removed device still present")
	}
}

func TestLinksSetAndCapacity(t *testing.T) {
	l := NewLinks()
	if err := l.Set("a", "a", 10); err == nil {
		t.Error("self link should fail")
	}
	if err := l.Set("a", "b", -1); err == nil {
		t.Error("negative bandwidth should fail")
	}
	l.MustSet("a", "b", 50)
	if got := l.Capacity("a", "b"); got != 50 {
		t.Errorf("Capacity = %g", got)
	}
	if got := l.Capacity("b", "a"); got != 50 {
		t.Error("links must be symmetric")
	}
	if got := l.Capacity("a", "z"); got != 0 {
		t.Errorf("undeclared link capacity = %g, want 0", got)
	}
}

func TestLinksReserve(t *testing.T) {
	l := NewLinks()
	l.MustSet("pc", "pda", 5)
	if err := l.Reserve("pc", "pda", 3); err != nil {
		t.Fatal(err)
	}
	if got := l.Available("pda", "pc"); got != 2 {
		t.Errorf("Available = %g, want 2", got)
	}
	if err := l.Reserve("pda", "pc", 3); err == nil {
		t.Error("over-reservation should fail")
	}
	if err := l.Reserve("pc", "pda", -1); err == nil {
		t.Error("negative reservation should fail")
	}
	l.ReleaseBandwidth("pc", "pda", 3)
	if got := l.Available("pc", "pda"); got != 5 {
		t.Errorf("Available after release = %g", got)
	}
	l.ReleaseBandwidth("pc", "pda", 99)
	if got := l.Available("pc", "pda"); got != 5 {
		t.Errorf("over-release must clamp: %g", got)
	}
}

func TestLinksConcurrentReserve(t *testing.T) {
	l := NewLinks()
	l.MustSet("a", "b", 100)
	var wg sync.WaitGroup
	ok := make(chan struct{}, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if l.Reserve("a", "b", 10) == nil {
				ok <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(ok)
	n := 0
	for range ok {
		n++
	}
	if n != 10 {
		t.Errorf("reserved %d, want exactly 10", n)
	}
}

func TestLinksSnapshotAndAvailFunc(t *testing.T) {
	l := NewLinks()
	l.MustSet("a", "b", 50)
	l.MustSet("a", "c", 5)
	if err := l.Reserve("a", "b", 20); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot size = %d", len(snap))
	}
	if snap[linkKey("b", "a")] != 30 || snap[linkKey("a", "c")] != 5 {
		t.Errorf("snapshot = %v", snap)
	}
	f := l.AvailFunc()
	if f("a", "b") != 30 {
		t.Errorf("AvailFunc = %g", f("a", "b"))
	}
}

func ExampleDevice_Admit() {
	d := MustNew("pda1", ClassPDA, resource.MB(32, 40), nil)
	if err := d.Admit(resource.MB(16, 20)); err != nil {
		fmt.Println("admit failed:", err)
		return
	}
	fmt.Println(d.Available())
	// Output: [16MB, 20%]
}

func TestCommitted(t *testing.T) {
	d := MustNew("pc", ClassDesktop, resource.MB(100, 100), nil)
	if !d.Committed().IsZero() {
		t.Error("fresh device has commitments")
	}
	if err := d.Admit(resource.MB(30, 40)); err != nil {
		t.Fatal(err)
	}
	if got := d.Committed(); !got.Equal(resource.MB(30, 40)) {
		t.Errorf("Committed = %v", got)
	}
}

func TestResize(t *testing.T) {
	d := MustNew("pc", ClassDesktop, resource.MB(100, 100), nil)
	if err := d.Admit(resource.MB(30, 40)); err != nil {
		t.Fatal(err)
	}
	// Growing keeps commitments and extends availability.
	fits, err := d.Resize(resource.MB(200, 150))
	if err != nil || !fits {
		t.Fatalf("grow: fits=%v err=%v", fits, err)
	}
	if got := d.Available(); !got.Equal(resource.MB(170, 110)) {
		t.Errorf("Available after grow = %v", got)
	}
	// Shrinking below the commitments reports the overload and clamps
	// availability at zero.
	fits, err = d.Resize(resource.MB(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	if fits {
		t.Error("shrink below commitments must report !fits")
	}
	if !d.Available().IsZero() {
		t.Errorf("Available after overload shrink = %v", d.Available())
	}
	if got := d.Committed(); !got.Equal(resource.MB(20, 20)) {
		// Committed is capacity-sub(avail) with clamping; after an
		// overload shrink it reads as the full (new) capacity.
		t.Errorf("Committed after shrink = %v", got)
	}
	// Invalid inputs.
	if _, err := d.Resize(resource.Vector{-1, 0}); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := d.Resize(resource.Vector{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}
