package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
	def := Resolve(0)
	if def < 1 || def > runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want within [1, NumCPU]", def)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		const n = 100
		var counts [n]atomic.Int32
		if err := ForEach(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers %d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestFailingIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		err := ForEach(50, workers, func(i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 7" {
			t.Fatalf("workers %d: err = %v, want boom 7", workers, err)
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("stop")
	err := ForEach(1000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got > 100 {
		t.Errorf("ran %d of 1000 jobs after an early error", got)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
