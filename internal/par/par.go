// Package par provides the deterministic bounded worker pool shared by
// the parallel experiment harnesses and the batched Configurator entry
// point. The contract callers rely on: fn(i) runs exactly once per index
// for error-free runs, indices are claimed in increasing order, and the
// error returned is the one produced by the lowest failing index —
// independent of the worker count — so parallel runs report the same
// failure a serial loop would.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a worker-count knob to an effective pool size: 0 means the
// hardware parallelism actually usable (NumCPU capped by GOMAXPROCS), and
// negative values mean 1.
func Resolve(workers int) int {
	if workers < 0 {
		return 1
	}
	if workers == 0 {
		workers = runtime.NumCPU()
		if mp := runtime.GOMAXPROCS(0); mp < workers {
			workers = mp
		}
	}
	return workers
}

// ForEach runs fn(0), …, fn(n-1) on a pool of at most workers goroutines
// (0 = Resolve's default) and returns the error of the lowest failing
// index, or nil. After any error, no new indices are started; indices
// already claimed still complete, which is what makes the lowest-failing-
// index guarantee hold regardless of scheduling.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					stopped.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
