package workload

import (
	"math/rand"
	"testing"
)

func TestGraphParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    GraphParams
		ok   bool
	}{
		{"table1", Table1Params(), true},
		{"fig5", Fig5Params(), true},
		{"zero nodes", GraphParams{MaxNodes: 5, MinOutDegree: 1, MaxOutDegree: 2, MemMB: 1, CPUPct: 1, EdgeMbps: 1}, false},
		{"inverted nodes", GraphParams{MinNodes: 5, MaxNodes: 2, MinOutDegree: 1, MaxOutDegree: 2, MemMB: 1, CPUPct: 1, EdgeMbps: 1}, false},
		{"inverted degree", GraphParams{MinNodes: 2, MaxNodes: 5, MinOutDegree: 3, MaxOutDegree: 2, MemMB: 1, CPUPct: 1, EdgeMbps: 1}, false},
		{"zero ranges", GraphParams{MinNodes: 2, MaxNodes: 5, MinOutDegree: 1, MaxOutDegree: 2}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); (err == nil) != c.ok {
				t.Errorf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
	if _, err := RandomGraph(rand.New(rand.NewSource(1)), GraphParams{}); err == nil {
		t.Error("RandomGraph with invalid params should fail")
	}
}

func TestRandomGraphRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Table1Params()
	for trial := 0; trial < 50; trial++ {
		g := MustRandomGraph(rng, p)
		n := g.NodeCount()
		if n < p.MinNodes || n > p.MaxNodes {
			t.Fatalf("node count %d outside [%d,%d]", n, p.MinNodes, p.MaxNodes)
		}
		if !g.IsDAG() {
			t.Fatal("generated graph must be a DAG")
		}
		for _, node := range g.Nodes() {
			if node.Resources[0] <= 0 || node.Resources[0] > p.MemMB {
				t.Fatalf("memory %g outside (0,%g]", node.Resources[0], p.MemMB)
			}
			if node.Resources[1] <= 0 || node.Resources[1] > p.CPUPct {
				t.Fatalf("cpu %g outside (0,%g]", node.Resources[1], p.CPUPct)
			}
		}
		for _, e := range g.Edges() {
			if e.ThroughputMbps <= 0 || e.ThroughputMbps > p.EdgeMbps {
				t.Fatalf("edge throughput %g outside (0,%g]", e.ThroughputMbps, p.EdgeMbps)
			}
		}
	}
}

func TestRandomGraphDegreeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Table1Params()
	totalDeg, totalNonTail := 0, 0
	for trial := 0; trial < 30; trial++ {
		g := MustRandomGraph(rng, p)
		ids := g.NodeIDs()
		for i, id := range ids {
			deg := g.OutDegree(id)
			remaining := len(ids) - 1 - i
			maxDeg := p.MaxOutDegree
			if remaining < maxDeg {
				maxDeg = remaining
			}
			if deg > maxDeg {
				t.Fatalf("node %s out-degree %d exceeds cap %d", id, deg, maxDeg)
			}
			if remaining >= p.MaxOutDegree {
				totalDeg += deg
				totalNonTail++
			}
		}
	}
	avg := float64(totalDeg) / float64(totalNonTail)
	if avg < float64(p.MinOutDegree) || avg > float64(p.MaxOutDegree) {
		t.Errorf("average unconstrained out-degree %.2f outside [%d,%d]", avg, p.MinOutDegree, p.MaxOutDegree)
	}
}

func TestRandomWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		w := RandomWeights(rng, 2)
		if err := w.Validate(); err != nil {
			t.Fatalf("invalid weights: %v", err)
		}
		if len(w) != 3 {
			t.Fatalf("len = %d", len(w))
		}
	}
}

func TestPredefinedGraphsDeterministic(t *testing.T) {
	a, err := PredefinedGraphs(42, 5, Fig5Params())
	if err != nil {
		t.Fatal(err)
	}
	b, err := PredefinedGraphs(42, 5, Fig5Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].NodeCount() != b[i].NodeCount() || a[i].EdgeCount() != b[i].EdgeCount() {
			t.Fatalf("graph %d differs between identical seeds", i)
		}
	}
	c, err := PredefinedGraphs(43, 5, Fig5Params())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].NodeCount() != c[i].NodeCount() || a[i].EdgeCount() != c[i].EdgeCount() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should generally differ")
	}
	if _, err := PredefinedGraphs(1, 1, GraphParams{}); err == nil {
		t.Error("invalid params should fail")
	}
}
