// Package workload generates the randomized service graphs and parameter
// distributions of the paper's simulation experiments (§4): random DAGs
// with a given component count and outbound-edge density, uniformly
// distributed resource requirement vectors, edge throughputs, and
// significance weights.
package workload

import (
	"fmt"
	"math/rand"

	"ubiqos/internal/graph"
	"ubiqos/internal/resource"
)

// GraphParams parameterizes random service graph generation.
type GraphParams struct {
	// MinNodes and MaxNodes bound the component count (inclusive).
	MinNodes, MaxNodes int
	// MinOutDegree and MaxOutDegree bound each component's outbound edge
	// count (inclusive); the realized degree is also capped by the number
	// of downstream components.
	MinOutDegree, MaxOutDegree int
	// MemMB and CPUPct bound the uniform per-component requirement
	// distributions: memory in (0, MemMB], CPU in (0, CPUPct].
	MemMB, CPUPct float64
	// EdgeMbps bounds the uniform per-edge throughput in (0, EdgeMbps].
	EdgeMbps float64
}

// Validate reports whether the parameters are usable.
func (p GraphParams) Validate() error {
	if p.MinNodes < 1 || p.MaxNodes < p.MinNodes {
		return fmt.Errorf("workload: invalid node bounds [%d,%d]", p.MinNodes, p.MaxNodes)
	}
	if p.MinOutDegree < 0 || p.MaxOutDegree < p.MinOutDegree {
		return fmt.Errorf("workload: invalid out-degree bounds [%d,%d]", p.MinOutDegree, p.MaxOutDegree)
	}
	if p.MemMB <= 0 || p.CPUPct <= 0 || p.EdgeMbps <= 0 {
		return fmt.Errorf("workload: nonpositive parameter ranges")
	}
	return nil
}

// Table1Params reproduces the first simulation's graphs: 10–20 service
// components with 3–6 outbound edges on average, distributed over a PC
// [256MB, 300%] and a PDA [32MB, 100%]. The uniform ranges are sized so a
// typical graph just about fits the two devices.
func Table1Params() GraphParams {
	return GraphParams{
		MinNodes: 10, MaxNodes: 20,
		MinOutDegree: 3, MaxOutDegree: 6,
		MemMB:    18,
		CPUPct:   28,
		EdgeMbps: 8,
	}
}

// Fig5Params reproduces the second simulation's graphs: 50–100 components
// with 5–10 outbound edges on average, running concurrently on a desktop
// [256MB, 300%], a laptop [128MB, 100%], and a PDA [32MB, 50%]. The
// uniform ranges are sized so several applications can coexist.
func Fig5Params() GraphParams {
	return GraphParams{
		MinNodes: 50, MaxNodes: 100,
		MinOutDegree: 5, MaxOutDegree: 10,
		MemMB:    1.6,
		CPUPct:   4.2,
		EdgeMbps: 0.06,
	}
}

// RandomGraph draws a random service graph: node count uniform in
// [MinNodes, MaxNodes]; node i gains a uniform out-degree worth of edges
// to distinct later nodes (guaranteeing a DAG); requirements and edge
// throughputs uniform in their ranges. Node IDs are "n00", "n01", ...
func RandomGraph(rng *rand.Rand, p GraphParams) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.MinNodes
	if p.MaxNodes > p.MinNodes {
		n += rng.Intn(p.MaxNodes - p.MinNodes + 1)
	}
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = graph.NodeID(fmt.Sprintf("n%02d", i))
		g.MustAddNode(&graph.Node{
			ID:   ids[i],
			Type: "component",
			Resources: resource.MB(
				uniformPositive(rng, p.MemMB),
				uniformPositive(rng, p.CPUPct),
			),
		})
	}
	for i := 0; i < n-1; i++ {
		deg := p.MinOutDegree
		if p.MaxOutDegree > p.MinOutDegree {
			deg += rng.Intn(p.MaxOutDegree - p.MinOutDegree + 1)
		}
		if max := n - 1 - i; deg > max {
			deg = max
		}
		// Choose deg distinct targets among the later nodes.
		targets := rng.Perm(n - 1 - i)[:deg]
		for _, t := range targets {
			g.MustAddEdge(ids[i], ids[i+1+t], uniformPositive(rng, p.EdgeMbps))
		}
	}
	return g, nil
}

// MustRandomGraph is RandomGraph that panics on invalid parameters.
func MustRandomGraph(rng *rand.Rand, p GraphParams) *graph.Graph {
	g, err := RandomGraph(rng, p)
	if err != nil {
		panic(err)
	}
	return g
}

// uniformPositive draws uniformly from (0, max], avoiding zero-requirement
// components.
func uniformPositive(rng *rand.Rand, max float64) float64 {
	return (1 - rng.Float64()) * max
}

// RandomWeights draws m+1 uniformly distributed significance weights
// normalized to sum to 1 (the paper's "weight values are uniformly
// distributed").
func RandomWeights(rng *rand.Rand, m int) resource.Weights {
	w := make(resource.Weights, m+1)
	var sum float64
	for i := range w {
		w[i] = uniformPositive(rng, 1)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// PredefinedGraphs generates the experiment's fixed catalog of service
// graphs ("each request randomly selects a service graph from 5 predefined
// ones") deterministically from the given seed.
func PredefinedGraphs(seed int64, count int, p GraphParams) ([]*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, 0, count)
	for i := 0; i < count; i++ {
		g, err := RandomGraph(rng, p)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}
