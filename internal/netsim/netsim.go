// Package netsim emulates the testbed network of the paper's prototype
// experiments: wired Ethernet between workstations/PCs and an 802.11b-era
// wireless link to the PDA. The emulation models per-link bandwidth and
// latency, computes transfer times for component downloads and state
// handoffs, and can "execute" transfers by sleeping a scaled-down amount
// of real time so experiments finish quickly while reporting modeled
// durations at full scale.
package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Link describes one end-to-end network path.
type Link struct {
	// BandwidthMbps is the sustained throughput in megabits per second.
	BandwidthMbps float64
	// LatencyMs is the one-way latency in milliseconds, paid once per
	// transfer (connection setup + first byte).
	LatencyMs float64
}

// Common 2002-era link presets.
var (
	// Ethernet is switched 100 Mbps wired LAN.
	Ethernet = Link{BandwidthMbps: 100, LatencyMs: 0.3}
	// LAN10 is legacy 10 Mbps shared Ethernet.
	LAN10 = Link{BandwidthMbps: 10, LatencyMs: 0.8}
	// WLAN is 802.11b wireless (~5 Mbps effective) to a PDA.
	WLAN = Link{BandwidthMbps: 5, LatencyMs: 5}
	// Loopback models intra-device communication.
	Loopback = Link{BandwidthMbps: 10000, LatencyMs: 0.01}
)

// Valid reports whether the link parameters are usable.
func (l Link) Valid() bool {
	return l.BandwidthMbps > 0 && l.LatencyMs >= 0
}

// TransferTime returns the modeled time to move size megabytes across the
// link: latency + size / bandwidth.
func (l Link) TransferTime(sizeMB float64) time.Duration {
	if sizeMB < 0 {
		sizeMB = 0
	}
	seconds := l.LatencyMs/1000 + sizeMB*8/l.BandwidthMbps
	return time.Duration(seconds * float64(time.Second))
}

// Network is a symmetric table of links between named endpoints with a
// configurable time scale for emulated transfers. All methods are safe for
// concurrent use.
type Network struct {
	mu    sync.RWMutex
	links map[[2]string]Link
	// scale multiplies modeled durations to obtain real sleep times;
	// 0.01 runs a 1.6 s download in 16 ms of wall time.
	scale float64
}

// New returns an empty network emulating at the given time scale
// (1 = real time). Scale must be positive.
func New(scale float64) (*Network, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("netsim: scale must be positive, got %g", scale)
	}
	return &Network{links: make(map[[2]string]Link), scale: scale}, nil
}

// MustNew is New that panics on error.
func MustNew(scale float64) *Network {
	n, err := New(scale)
	if err != nil {
		panic(err)
	}
	return n
}

// Scale returns the configured time scale.
func (n *Network) Scale() float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.scale
}

func key(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetLink declares the symmetric link between two endpoints. Endpoints
// must differ and the link must be valid.
func (n *Network) SetLink(a, b string, l Link) error {
	if a == b {
		return fmt.Errorf("netsim: endpoints must differ, got %q", a)
	}
	if !l.Valid() {
		return fmt.Errorf("netsim: invalid link %+v between %s and %s", l, a, b)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[key(a, b)] = l
	return nil
}

// MustSetLink is SetLink that panics on error.
func (n *Network) MustSetLink(a, b string, l Link) {
	if err := n.SetLink(a, b, l); err != nil {
		panic(err)
	}
}

// LinkBetween returns the link between two endpoints. Identical endpoints
// yield the loopback link; an undeclared pair reports ok=false.
func (n *Network) LinkBetween(a, b string) (Link, bool) {
	if a == b {
		return Loopback, true
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[key(a, b)]
	return l, ok
}

// Degrade models a link-quality fault: the bandwidth between a and b is
// multiplied by factor (0 < factor <= 1), e.g. wireless interference
// halving the WLAN. It returns the link as it was before the degradation
// so the caller can restore it later with SetLink.
func (n *Network) Degrade(a, b string, factor float64) (Link, error) {
	if factor <= 0 || factor > 1 {
		return Link{}, fmt.Errorf("netsim: degrade factor must be in (0,1], got %g", factor)
	}
	if a == b {
		return Link{}, fmt.Errorf("netsim: cannot degrade the loopback link")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	k := key(a, b)
	prev, ok := n.links[k]
	if !ok {
		return Link{}, fmt.Errorf("netsim: no link between %s and %s", a, b)
	}
	degraded := prev
	degraded.BandwidthMbps *= factor
	n.links[k] = degraded
	return prev, nil
}

// TransferTime returns the modeled duration to move size megabytes from a
// to b, or an error when no link is declared.
func (n *Network) TransferTime(a, b string, sizeMB float64) (time.Duration, error) {
	l, ok := n.LinkBetween(a, b)
	if !ok {
		return 0, fmt.Errorf("netsim: no link between %s and %s", a, b)
	}
	return l.TransferTime(sizeMB), nil
}

// Transfer emulates moving size megabytes from a to b: it sleeps the
// scaled-down real time and returns the full-scale modeled duration.
func (n *Network) Transfer(a, b string, sizeMB float64) (time.Duration, error) {
	d, err := n.TransferTime(a, b, sizeMB)
	if err != nil {
		return 0, err
	}
	time.Sleep(time.Duration(float64(d) * n.Scale()))
	return d, nil
}

// BandwidthMbps reports the bandwidth between two endpoints, or 0 when no
// link is declared — the shape expected by the distributor's Problem.
func (n *Network) BandwidthMbps(a, b string) float64 {
	l, ok := n.LinkBetween(a, b)
	if !ok {
		return 0
	}
	return l.BandwidthMbps
}
