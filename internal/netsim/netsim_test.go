package netsim

import (
	"math"
	"testing"
	"time"
)

func TestLinkTransferTime(t *testing.T) {
	tests := []struct {
		name   string
		link   Link
		sizeMB float64
		want   time.Duration
	}{
		{"1MB over 8Mbps", Link{BandwidthMbps: 8, LatencyMs: 0}, 1, time.Second},
		{"latency only", Link{BandwidthMbps: 8, LatencyMs: 50}, 0, 50 * time.Millisecond},
		{"negative size clamps", Link{BandwidthMbps: 8, LatencyMs: 10}, -5, 10 * time.Millisecond},
		{"10MB over WLAN", WLAN, 10, 16005 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.link.TransferTime(tt.sizeMB)
			if math.Abs(float64(got-tt.want)) > float64(time.Millisecond) {
				t.Errorf("TransferTime = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLinkValid(t *testing.T) {
	if !Ethernet.Valid() || !WLAN.Valid() || !LAN10.Valid() || !Loopback.Valid() {
		t.Error("presets must be valid")
	}
	if (Link{BandwidthMbps: 0, LatencyMs: 1}).Valid() {
		t.Error("zero bandwidth invalid")
	}
	if (Link{BandwidthMbps: 1, LatencyMs: -1}).Valid() {
		t.Error("negative latency invalid")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative scale should fail")
	}
	n := MustNew(0.5)
	if n.Scale() != 0.5 {
		t.Errorf("Scale = %g", n.Scale())
	}
}

func TestSetLinkValidation(t *testing.T) {
	n := MustNew(1)
	if err := n.SetLink("a", "a", Ethernet); err == nil {
		t.Error("self link should fail")
	}
	if err := n.SetLink("a", "b", Link{}); err == nil {
		t.Error("invalid link should fail")
	}
}

func TestLinkBetweenSymmetricAndLoopback(t *testing.T) {
	n := MustNew(1)
	n.MustSetLink("pc", "pda", WLAN)
	l, ok := n.LinkBetween("pda", "pc")
	if !ok || l != WLAN {
		t.Errorf("LinkBetween reversed = %+v, %v", l, ok)
	}
	l, ok = n.LinkBetween("pc", "pc")
	if !ok || l != Loopback {
		t.Errorf("loopback = %+v, %v", l, ok)
	}
	if _, ok := n.LinkBetween("pc", "ghost"); ok {
		t.Error("undeclared link should report false")
	}
}

func TestTransferTimeErrors(t *testing.T) {
	n := MustNew(1)
	if _, err := n.TransferTime("a", "b", 1); err == nil {
		t.Error("undeclared link should fail")
	}
	if _, err := n.Transfer("a", "b", 1); err == nil {
		t.Error("undeclared transfer should fail")
	}
}

func TestTransferScalesSleep(t *testing.T) {
	n := MustNew(0.001) // 1000x faster than modeled
	n.MustSetLink("pc", "pda", Link{BandwidthMbps: 8, LatencyMs: 0})
	start := time.Now()
	modeled, err := n.Transfer("pc", "pda", 2) // modeled 2s
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if math.Abs(float64(modeled-2*time.Second)) > float64(10*time.Millisecond) {
		t.Errorf("modeled = %v, want ~2s", modeled)
	}
	if wall > 500*time.Millisecond {
		t.Errorf("wall = %v, scaling not applied", wall)
	}
}

func TestBandwidthMbps(t *testing.T) {
	n := MustNew(1)
	n.MustSetLink("a", "b", Ethernet)
	if got := n.BandwidthMbps("b", "a"); got != 100 {
		t.Errorf("BandwidthMbps = %g", got)
	}
	if got := n.BandwidthMbps("a", "z"); got != 0 {
		t.Errorf("undeclared = %g", got)
	}
	if got := n.BandwidthMbps("a", "a"); got != Loopback.BandwidthMbps {
		t.Errorf("loopback = %g", got)
	}
}

func TestDegrade(t *testing.T) {
	n := MustNew(1)
	n.MustSetLink("a", "b", WLAN)
	prev, err := n.Degrade("a", "b", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if prev != WLAN {
		t.Errorf("prev = %+v, want the original WLAN link", prev)
	}
	if got := n.BandwidthMbps("a", "b"); got != WLAN.BandwidthMbps*0.5 {
		t.Errorf("bandwidth = %g, want %g", got, WLAN.BandwidthMbps*0.5)
	}
	// Degradations compound; latency is untouched.
	if _, err := n.Degrade("b", "a", 0.5); err != nil {
		t.Fatal(err)
	}
	l, _ := n.LinkBetween("a", "b")
	if l.BandwidthMbps != WLAN.BandwidthMbps*0.25 || l.LatencyMs != WLAN.LatencyMs {
		t.Errorf("link = %+v", l)
	}
	// Restore via SetLink round-trips.
	n.MustSetLink("a", "b", prev)
	if got := n.BandwidthMbps("a", "b"); got != WLAN.BandwidthMbps {
		t.Errorf("restored bandwidth = %g", got)
	}

	if _, err := n.Degrade("a", "b", 0); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := n.Degrade("a", "b", 1.5); err == nil {
		t.Error("factor > 1 should fail")
	}
	if _, err := n.Degrade("a", "a", 0.5); err == nil {
		t.Error("loopback degrade should fail")
	}
	if _, err := n.Degrade("a", "ghost", 0.5); err == nil {
		t.Error("undeclared link should fail")
	}
}
