package graph

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

func mkNode(id string) *Node {
	return &Node{ID: NodeID(id), Type: "svc-" + id, Resources: resource.MB(1, 1)}
}

// diamond builds the 4-node diamond a->b->d, a->c->d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		g.MustAddNode(mkNode(id))
	}
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("a", "c", 2)
	g.MustAddEdge("b", "d", 3)
	g.MustAddEdge("c", "d", 4)
	return g
}

func TestAddNodeErrors(t *testing.T) {
	g := New()
	if err := g.AddNode(nil); err == nil {
		t.Error("nil node should fail")
	}
	if err := g.AddNode(&Node{}); err == nil {
		t.Error("empty ID should fail")
	}
	g.MustAddNode(mkNode("a"))
	if err := g.AddNode(mkNode("a")); err == nil {
		t.Error("duplicate ID should fail")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	g.MustAddNode(mkNode("a"))
	g.MustAddNode(mkNode("b"))
	cases := []struct {
		name     string
		from, to NodeID
		tp       float64
	}{
		{"missing source", "x", "b", 1},
		{"missing target", "a", "x", 1},
		{"self loop", "a", "a", 1},
		{"negative throughput", "a", "b", -1},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.from, c.to, c.tp); err == nil {
			t.Errorf("%s: AddEdge should fail", c.name)
		}
	}
	g.MustAddEdge("a", "b", 1)
	if err := g.AddEdge("a", "b", 2); err == nil {
		t.Error("duplicate edge should fail")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := diamond(t)
	if g.OutDegree("a") != 2 || g.InDegree("a") != 0 {
		t.Errorf("a degrees: out=%d in=%d", g.OutDegree("a"), g.InDegree("a"))
	}
	if g.OutDegree("d") != 0 || g.InDegree("d") != 2 {
		t.Errorf("d degrees: out=%d in=%d", g.OutDegree("d"), g.InDegree("d"))
	}
	got := g.Neighbors("b")
	want := []NodeID{"d", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors(b) = %v, want %v", got, want)
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if got := g.Sources(); !reflect.DeepEqual(got, []NodeID{"a"}) {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []NodeID{"d"}) {
		t.Errorf("Sinks = %v", got)
	}
}

func TestTopoSort(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []NodeID{"a", "b", "c", "d"}) {
		t.Errorf("TopoSort = %v", order)
	}
	if !g.IsDAG() {
		t.Error("diamond must be a DAG")
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	g.MustAddNode(mkNode("a"))
	g.MustAddNode(mkNode("b"))
	g.MustAddNode(mkNode("c"))
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("b", "c", 1)
	g.MustAddEdge("c", "a", 1)
	if _, err := g.TopoSort(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("TopoSort on cycle = %v", err)
	}
	if g.IsDAG() {
		t.Error("cycle must not be a DAG")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := diamond(t)
	if !g.RemoveEdge("a", "b") {
		t.Fatal("RemoveEdge should report true")
	}
	if g.RemoveEdge("a", "b") {
		t.Error("second removal should report false")
	}
	if g.EdgeCount() != 3 {
		t.Errorf("EdgeCount = %d, want 3", g.EdgeCount())
	}
	if g.OutDegree("a") != 1 || g.InDegree("b") != 0 {
		t.Error("adjacency not updated")
	}
}

func TestInsertOnEdge(t *testing.T) {
	g := diamond(t)
	tr := mkNode("t")
	if err := g.InsertOnEdge("a", "b", tr, -1, 0.5); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 5 || g.EdgeCount() != 5 {
		t.Errorf("counts after insert: V=%d E=%d", g.NodeCount(), g.EdgeCount())
	}
	var at, tb *Edge
	for _, e := range g.Edges() {
		e := e
		switch {
		case e.From == "a" && e.To == "t":
			at = &e
		case e.From == "t" && e.To == "b":
			tb = &e
		case e.From == "a" && e.To == "b":
			t.Error("original edge should be gone")
		}
	}
	if at == nil || tb == nil {
		t.Fatal("inserted edges missing")
	}
	if at.ThroughputMbps != 1 { // inherited
		t.Errorf("a->t throughput = %g, want inherited 1", at.ThroughputMbps)
	}
	if tb.ThroughputMbps != 0.5 { // overridden
		t.Errorf("t->b throughput = %g, want 0.5", tb.ThroughputMbps)
	}
	if !g.IsDAG() {
		t.Error("insertion must preserve acyclicity")
	}
	if err := g.InsertOnEdge("a", "b", mkNode("u"), -1, -1); err == nil {
		t.Error("inserting on a missing edge should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	g.Node("a").In = qos.V(qos.P("f", qos.Symbol("x")))
	g.Node("a").Adjustable = map[string]bool{"f": true}
	c := g.Clone()
	c.Node("a").In = c.Node("a").In.With("f", qos.Symbol("y"))
	c.Node("a").Adjustable["f"] = false
	c.MustAddNode(mkNode("z"))
	if v, _ := g.Node("a").In.Get("f"); !v.Equal(qos.Symbol("x")) {
		t.Error("clone must not share QoS vectors")
	}
	if !g.Node("a").Adjustable["f"] {
		t.Error("clone must not share Adjustable map")
	}
	if g.Has("z") {
		t.Error("clone must not share node table")
	}
}

func TestValidate(t *testing.T) {
	g := diamond(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	if err := New().Validate(); err == nil {
		t.Error("empty graph should be invalid")
	}
	bad := diamond(t)
	bad.Node("a").In = qos.Vector{qos.P("", qos.Scalar(1))}
	if err := bad.Validate(); err == nil {
		t.Error("invalid QoS vector should be rejected")
	}
	bad2 := diamond(t)
	bad2.Node("b").SizeMB = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative size should be rejected")
	}
	bad3 := diamond(t)
	bad3.Node("c").Resources = resource.Vector{-5, 0}
	if err := bad3.Validate(); err == nil {
		t.Error("negative resources should be rejected")
	}
}

func TestTotalResources(t *testing.T) {
	g := diamond(t)
	got := g.TotalResources(2)
	if !got.Equal(resource.MB(4, 4)) {
		t.Errorf("TotalResources = %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	g.Node("a").Out = qos.V(qos.P(qos.DimFormat, qos.Symbol("MP3")))
	g.Node("a").Pin = "desktop1"
	g.Node("a").SizeMB = 2.5
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NodeCount() != 4 || back.EdgeCount() != 4 {
		t.Fatalf("round trip counts: V=%d E=%d", back.NodeCount(), back.EdgeCount())
	}
	a := back.Node("a")
	if a.Pin != "desktop1" || a.SizeMB != 2.5 {
		t.Errorf("node fields lost: %+v", a)
	}
	if v, ok := a.Out.Get(qos.DimFormat); !ok || !v.Equal(qos.Symbol("MP3")) {
		t.Errorf("QoS lost: %v", a.Out)
	}
	if !reflect.DeepEqual(back.Edges(), g.Edges()) {
		t.Error("edges differ after round trip")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"nodes":[{"id":"a"},{"id":"a"}],"edges":[]}`,
		`{"nodes":[{"id":"a"}],"edges":[{"from":"a","to":"zz","throughputMbps":1}]}`,
		`not json`,
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("Unmarshal(%q) should fail", c)
		}
	}
}

// randomDAG builds a random DAG with n nodes where each edge goes from a
// lower to a higher index, guaranteeing acyclicity.
func randomDAG(r *rand.Rand, n int) *Graph {
	g := New()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		id := NodeID(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		ids[i] = id
		g.MustAddNode(&Node{ID: id, Type: "t", Resources: resource.MB(float64(r.Intn(10)), float64(r.Intn(10)))})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(4) == 0 {
				g.MustAddEdge(ids[i], ids[j], float64(r.Intn(100)))
			}
		}
	}
	return g
}

type dagGen struct{ G *Graph }

// Generate implements quick.Generator.
func (dagGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(dagGen{G: randomDAG(r, 2+r.Intn(12))})
}

func TestPropTopoSortIsValidOrder(t *testing.T) {
	prop := func(d dagGen) bool {
		order, err := d.G.TopoSort()
		if err != nil || len(order) != d.G.NodeCount() {
			return false
		}
		pos := make(map[NodeID]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range d.G.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCloneEqualJSON(t *testing.T) {
	prop := func(d dagGen) bool {
		a, err := json.Marshal(d.G)
		if err != nil {
			return false
		}
		b, err := json.Marshal(d.G.Clone())
		if err != nil {
			return false
		}
		return string(a) == string(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropJSONRoundTripPreservesStructure(t *testing.T) {
	prop := func(d dagGen) bool {
		data, err := json.Marshal(d.G)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.NodeCount() == d.G.NodeCount() &&
			back.EdgeCount() == d.G.EdgeCount() &&
			reflect.DeepEqual(back.Edges(), d.G.Edges())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDOT(t *testing.T) {
	g := diamond(t)
	g.Node("a").Instance = "server-1"
	dot := g.DOT("app", nil)
	for _, want := range []string{`digraph "app"`, `"a" [label="svc-a\nserver-1"]`, `"a" -> "b" [label="1 Mbps"]`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// With a placement, nodes cluster by device.
	placement := map[NodeID]string{"a": "pc", "b": "pc", "c": "pda", "d": ""}
	dot = g.DOT("app", placement)
	for _, want := range []string{"subgraph cluster_0", `label="pc"`, `label="pda"`, `label="(unplaced)"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("clustered DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if g.DOT("app", placement) != dot {
		t.Error("DOT output is not deterministic")
	}
}
