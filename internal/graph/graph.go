// Package graph implements the service graph of the application service
// model (Gu & Nahrstedt, ICDCS 2002, §2): a directed acyclic graph whose
// nodes are autonomous service components annotated with input/output QoS
// vectors and end-system resource requirements, and whose edges carry the
// communication throughput c(u,v) between interacting components.
//
// The same structure represents both the instantiated ("concrete") service
// graph produced by the service composition tier and the graphs manipulated
// by the service distribution tier.
package graph

import (
	"fmt"
	"sort"

	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

// NodeID identifies a node within one service graph.
type NodeID string

// Node is one service component in a service graph.
type Node struct {
	// ID is the graph-unique node identifier.
	ID NodeID `json:"id"`
	// Type is the abstract service type this component realizes
	// (e.g. "audio-player", "transcoder").
	Type string `json:"type"`
	// Instance names the concrete discovered component; empty while the
	// node is only abstractly specified.
	Instance string `json:"instance,omitempty"`
	// In is the input QoS requirement vector Qin.
	In qos.Vector `json:"in,omitempty"`
	// Out is the (current) output QoS vector Qout.
	Out qos.Vector `json:"out,omitempty"`
	// OutCapability is the full output capability of the component: for
	// each adjustable dimension, the range/set of values the component can
	// be configured to produce. Out must always be contained in it.
	OutCapability qos.Vector `json:"outCapability,omitempty"`
	// Adjustable marks the output dimensions whose value can be
	// re-configured at composition time (used by the Ordered Coordination
	// algorithm's automatic corrections).
	Adjustable map[string]bool `json:"adjustable,omitempty"`
	// PassThrough marks dimensions for which the component forwards its
	// input unchanged (e.g. a filter's frame rate): narrowing the output
	// also narrows the input requirement of the same dimension.
	PassThrough map[string]bool `json:"passThrough,omitempty"`
	// Resources is the end-system resource requirement vector R,
	// normalized to the benchmark machine.
	Resources resource.Vector `json:"resources,omitempty"`
	// Pin names the device the component must be instantiated on
	// (e.g. the display service on the client device); empty means the
	// distributor may place it anywhere.
	Pin string `json:"pin,omitempty"`
	// SizeMB is the component package size, used to model dynamic
	// downloading from the component repository.
	SizeMB float64 `json:"sizeMB,omitempty"`
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	c := *n
	c.In = n.In.Clone()
	c.Out = n.Out.Clone()
	c.OutCapability = n.OutCapability.Clone()
	c.Resources = n.Resources.Clone()
	c.Adjustable = cloneBoolMap(n.Adjustable)
	c.PassThrough = cloneBoolMap(n.PassThrough)
	return &c
}

func cloneBoolMap(m map[string]bool) map[string]bool {
	if m == nil {
		return nil
	}
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Edge is a directed connection between two communicating components with
// the required communication throughput c(u,v) in Mbps.
type Edge struct {
	From           NodeID  `json:"from"`
	To             NodeID  `json:"to"`
	ThroughputMbps float64 `json:"throughputMbps"`
}

// Graph is a mutable service graph. Node and edge iteration order is the
// insertion order, so all algorithms over a graph are deterministic.
type Graph struct {
	nodes map[NodeID]*Node
	order []NodeID
	out   map[NodeID][]Edge
	in    map[NodeID][]Edge
	edges int
}

// New returns an empty service graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		out:   make(map[NodeID][]Edge),
		in:    make(map[NodeID][]Edge),
	}
}

// AddNode inserts the node. It fails on duplicate or empty IDs.
func (g *Graph) AddNode(n *Node) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("graph: node must have a non-empty ID")
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("graph: duplicate node %q", n.ID)
	}
	g.nodes[n.ID] = n
	g.order = append(g.order, n.ID)
	return nil
}

// MustAddNode is AddNode that panics on error, for literals in tests and
// examples.
func (g *Graph) MustAddNode(n *Node) {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
}

// AddEdge inserts the directed edge from→to with the given throughput. Both
// endpoints must exist, self-loops and duplicate edges are rejected, and
// the throughput must be nonnegative.
func (g *Graph) AddEdge(from, to NodeID, throughputMbps float64) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("graph: edge source %q does not exist", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("graph: edge target %q does not exist", to)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on %q", from)
	}
	if throughputMbps < 0 {
		return fmt.Errorf("graph: negative throughput on %s->%s", from, to)
	}
	for _, e := range g.out[from] {
		if e.To == to {
			return fmt.Errorf("graph: duplicate edge %s->%s", from, to)
		}
	}
	e := Edge{From: from, To: to, ThroughputMbps: throughputMbps}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(from, to NodeID, throughputMbps float64) {
	if err := g.AddEdge(from, to, throughputMbps); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge from→to if present and reports whether it
// existed.
func (g *Graph) RemoveEdge(from, to NodeID) bool {
	removed := false
	g.out[from] = filterEdges(g.out[from], func(e Edge) bool { return e.To != to })
	g.in[to] = filterEdges(g.in[to], func(e Edge) bool {
		if e.From == from {
			removed = true
			return false
		}
		return true
	})
	if removed {
		g.edges--
	}
	return removed
}

func filterEdges(es []Edge, keep func(Edge) bool) []Edge {
	out := es[:0]
	for _, e := range es {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// InsertOnEdge replaces the edge from→to with from→n→to, giving both new
// edges the original edge's throughput unless overridden (≥0 overrides).
// It is how the composer splices transcoder and buffer components into an
// inconsistent interaction.
func (g *Graph) InsertOnEdge(from, to NodeID, n *Node, inMbps, outMbps float64) error {
	var orig *Edge
	for i := range g.out[from] {
		if g.out[from][i].To == to {
			orig = &g.out[from][i]
			break
		}
	}
	if orig == nil {
		return fmt.Errorf("graph: no edge %s->%s to insert on", from, to)
	}
	if err := g.AddNode(n); err != nil {
		return err
	}
	tp := orig.ThroughputMbps
	g.RemoveEdge(from, to)
	if inMbps < 0 {
		inMbps = tp
	}
	if outMbps < 0 {
		outMbps = tp
	}
	if err := g.AddEdge(from, n.ID, inMbps); err != nil {
		return err
	}
	return g.AddEdge(n.ID, to, outMbps)
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Has reports whether the node exists.
func (g *Graph) Has(id NodeID) bool { return g.nodes[id] != nil }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.nodes[id])
	}
	return out
}

// NodeIDs returns all node IDs in insertion order.
func (g *Graph) NodeIDs() []NodeID {
	return append([]NodeID(nil), g.order...)
}

// Edges returns all edges, ordered by source insertion order then by
// target insertion order within a source.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for _, id := range g.order {
		out = append(out, g.out[id]...)
	}
	return out
}

// Out returns the outgoing edges of id.
func (g *Graph) Out(id NodeID) []Edge { return append([]Edge(nil), g.out[id]...) }

// In returns the incoming edges of id.
func (g *Graph) In(id NodeID) []Edge { return append([]Edge(nil), g.in[id]...) }

// OutDegree returns the number of outgoing edges of id.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns the number of incoming edges of id.
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

// Neighbors returns the IDs of all nodes adjacent to id (either direction),
// deduplicated, in deterministic order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	seen := make(map[NodeID]bool)
	var out []NodeID
	for _, e := range g.out[id] {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	for _, e := range g.in[id] {
		if !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	return out
}

// NodeCount returns the number of nodes V.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of edges E.
func (g *Graph) EdgeCount() int { return g.edges }

// Sources returns the nodes with no incoming edges, in insertion order.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for _, id := range g.order {
		if len(g.in[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Sinks returns the nodes with no outgoing edges, in insertion order. In a
// service graph the sinks are usually the client-facing services whose QoS
// corresponds to the user's requirements.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for _, id := range g.order {
		if len(g.out[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// TopoSort returns a topological order of the graph, or an error naming a
// node on a cycle. The order is deterministic: among ready nodes, insertion
// order wins (Kahn's algorithm with a stable ready queue).
func (g *Graph) TopoSort() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for _, id := range g.order {
		indeg[id] = len(g.in[id])
	}
	var ready []NodeID
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	out := make([]NodeID, 0, len(g.nodes))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, e := range g.out[id] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(out) != len(g.nodes) {
		// Find one offending node for the error message.
		var stuck []string
		for _, id := range g.order {
			if indeg[id] > 0 {
				stuck = append(stuck, string(id))
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("graph: cycle detected involving %v", stuck)
	}
	return out, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Graph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Clone returns a deep copy of the graph; nodes are cloned.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, id := range g.order {
		c.MustAddNode(g.nodes[id].Clone())
	}
	for _, e := range g.Edges() {
		c.MustAddEdge(e.From, e.To, e.ThroughputMbps)
	}
	return c
}

// Validate checks structural well-formedness: the graph is a DAG, has at
// least one node, and every node carries valid QoS vectors and resource
// requirements.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("graph: empty service graph")
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	for _, id := range g.order {
		n := g.nodes[id]
		if err := n.In.Validate(); err != nil {
			return fmt.Errorf("graph: node %q input QoS: %w", id, err)
		}
		if err := n.Out.Validate(); err != nil {
			return fmt.Errorf("graph: node %q output QoS: %w", id, err)
		}
		if err := n.Resources.Validate(); err != nil {
			return fmt.Errorf("graph: node %q resources: %w", id, err)
		}
		if n.SizeMB < 0 {
			return fmt.Errorf("graph: node %q has negative size", id)
		}
	}
	return nil
}

// TotalResources returns the component-wise sum of all node requirement
// vectors, assuming dimension m (nodes with empty vectors count as zero).
func (g *Graph) TotalResources(m int) resource.Vector {
	total := resource.New(m)
	for _, id := range g.order {
		if r := g.nodes[id].Resources; len(r) == m {
			total.AddInPlace(r)
		}
	}
	return total
}
