package graph

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the wire representation of a Graph.
type jsonGraph struct {
	Nodes []*Node `json:"nodes"`
	Edges []Edge  `json:"edges"`
}

// MarshalJSON encodes the graph as {"nodes": [...], "edges": [...]} with
// deterministic ordering.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonGraph{Nodes: g.Nodes(), Edges: g.Edges()})
}

// UnmarshalJSON decodes a graph previously encoded with MarshalJSON,
// re-validating node and edge constraints.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	*g = *New()
	for _, n := range jg.Nodes {
		if err := g.AddNode(n); err != nil {
			return err
		}
	}
	for _, e := range jg.Edges {
		if err := g.AddEdge(e.From, e.To, e.ThroughputMbps); err != nil {
			return err
		}
	}
	return nil
}
