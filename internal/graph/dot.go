package graph

import (
	"fmt"
	"strings"
)

// DOT renders the service graph in Graphviz dot syntax. Nodes are labeled
// with their type and instance, edges with their throughput; when a
// non-nil placement is given, nodes are clustered by device — a quick way
// to visualize a k-cut.
func (g *Graph) DOT(name string, placement map[NodeID]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")

	if placement == nil {
		for _, n := range g.Nodes() {
			fmt.Fprintf(&b, "  %q [label=%q];\n", n.ID, nodeLabel(n))
		}
	} else {
		// Group nodes into device clusters, preserving insertion order for
		// determinism.
		order := make([]string, 0)
		byDev := make(map[string][]*Node)
		for _, n := range g.Nodes() {
			dev := placement[n.ID]
			if _, ok := byDev[dev]; !ok {
				order = append(order, dev)
			}
			byDev[dev] = append(byDev[dev], n)
		}
		for i, dev := range order {
			label := dev
			if label == "" {
				label = "(unplaced)"
			}
			fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, label)
			for _, n := range byDev[dev] {
				fmt.Fprintf(&b, "    %q [label=%q];\n", n.ID, nodeLabel(n))
			}
			b.WriteString("  }\n")
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%.2g Mbps\"];\n", e.From, e.To, e.ThroughputMbps)
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeLabel(n *Node) string {
	if n.Instance != "" && n.Instance != string(n.ID) {
		return fmt.Sprintf("%s\n%s", n.Type, n.Instance)
	}
	return n.Type
}
