// Package admission is the actuation half of the paper's §3.3
// admission-over-residual-capacity model: a gate the configurator
// consults before a new session's pipeline runs. The gate reads the
// capacity observatory's saturation verdict and the configure-latency SLO
// burn rate, applies a per-class policy, and answers admit /
// admit-degraded / reject-with-retry-after. Degraded admission reuses the
// recovery ladder's shed rung at admission time — optional components are
// stripped and placement falls back to the cheap heuristic — so a
// pressured space trades session quality for session count instead of
// failing requests after the expensive pipeline has already run.
package admission

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ubiqos/internal/capacity"
	"ubiqos/internal/metrics"
)

// Verdict is the gate's answer for one request.
type Verdict string

const (
	// Admit lets the request run the full pipeline at full quality.
	Admit Verdict = "admit"
	// AdmitDegraded admits the request with optional components shed and
	// heuristic (cheapest-first) placement.
	AdmitDegraded Verdict = "admit-degraded"
	// Reject refuses the request outright, with a retry-after hint.
	Reject Verdict = "reject"
)

// Never is a threshold state no analyzer verdict reaches: a policy with
// DegradeAt (or RejectAt) set to Never disables that rung for the class.
const Never = capacity.StateSaturated + 1

// DefaultRetryAfter is the retry hint attached to rejections when the
// class policy does not set one.
const DefaultRetryAfter = 2 * time.Second

// ClassPolicy says how one session class responds to space saturation.
// Thresholds are inclusive: the rung applies at that state or worse.
type ClassPolicy struct {
	// DegradeAt is the effective state at which new sessions are admitted
	// degraded (shed optionals, heuristic placement).
	DegradeAt capacity.State `json:"degradeAt"`
	// RejectAt is the effective state at which new sessions are rejected.
	RejectAt capacity.State `json:"rejectAt"`
	// RetryAfter is the hint attached to rejections (0 selects
	// DefaultRetryAfter).
	RetryAfter time.Duration `json:"retryAfter"`
}

// DefaultPolicies returns the stock per-class tuning: voice holds full
// quality until the space saturates (its QoS degrades badly, so reject
// beats degrade), background sheds as soon as the space is approaching,
// and everything else degrades at approaching and rejects at saturated.
func DefaultPolicies() map[string]ClassPolicy {
	return map[string]ClassPolicy{
		"voice":      {DegradeAt: Never, RejectAt: capacity.StateSaturated},
		"background": {DegradeAt: capacity.StateApproaching, RejectAt: capacity.StateSaturated},
	}
}

// DefaultPolicy is the fallback for classes without an explicit policy.
func DefaultPolicy() ClassPolicy {
	return ClassPolicy{DegradeAt: capacity.StateApproaching, RejectAt: capacity.StateSaturated}
}

// Decision is one gate answer, carried into explain records and wire
// error responses.
type Decision struct {
	Verdict Verdict `json:"verdict"`
	Class   string  `json:"class"`
	// State is the effective saturation state the decision used; Escalated
	// marks it as bumped one level by SLO burn.
	State     capacity.State `json:"state"`
	StateStr  string         `json:"stateStr"`
	Escalated bool           `json:"escalated,omitempty"`
	// SLOBurn is the configure-latency objective's burn rate at decision
	// time (actual/target; >1 means the objective is violated).
	SLOBurn float64 `json:"sloBurn"`
	Reason  string  `json:"reason,omitempty"`
	// RetryAfterMs is the rejection back-off hint (0 unless rejected).
	RetryAfterMs float64 `json:"retryAfterMs,omitempty"`
}

// RetryAfter returns the back-off hint as a duration.
func (d Decision) RetryAfter() time.Duration {
	return time.Duration(d.RetryAfterMs * float64(time.Millisecond))
}

// RejectedError is the typed error a rejected Configure returns, so the
// wire layer can attach the decision and its retry-after hint to the
// error response.
type RejectedError struct {
	Decision Decision
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("admission: class %q rejected (%s, retry after %s)",
		e.Decision.Class, e.Decision.Reason, e.Decision.RetryAfter())
}

// Signals are the gate's inputs, wired by the domain: the saturation
// analyzer's verdict and the configure-latency SLO burn rate.
type Signals struct {
	Report  func() capacity.Report
	SLOBurn func() float64
}

// Options configures a Gate.
type Options struct {
	Signals Signals
	// Policies overrides per-class policy (nil selects DefaultPolicies).
	Policies map[string]ClassPolicy
	// Default overrides the fallback policy for unlisted classes.
	Default *ClassPolicy
	// Metrics, when set, receives admissions_total counters and the
	// admission_state gauge.
	Metrics *metrics.Registry
}

// ClassCounts is one class's decision tally in a Status snapshot.
type ClassCounts struct {
	Class    string `json:"class"`
	Admitted int64  `json:"admitted"`
	Degraded int64  `json:"degraded"`
	Rejected int64  `json:"rejected"`
}

// Status is the gate's introspection snapshot (the /admission endpoint
// and `qosctl admit`).
type Status struct {
	State    capacity.State         `json:"state"` // effective, at snapshot time
	StateStr string                 `json:"stateStr"`
	SLOBurn  float64                `json:"sloBurn"`
	Default  ClassPolicy            `json:"default"`
	Policies map[string]ClassPolicy `json:"policies"`
	Classes  []ClassCounts          `json:"classes"`
}

// Gate decides admission for new sessions. It is safe for concurrent use.
type Gate struct {
	signals Signals
	reg     *metrics.Registry

	mu       sync.Mutex
	policies map[string]ClassPolicy
	def      ClassPolicy
	counts   map[string]*ClassCounts
}

// New returns a gate over the given signals. Signals.Report must be set;
// a nil SLOBurn reads as 0 (no latency pressure).
func New(opts Options) *Gate {
	g := &Gate{
		signals:  opts.Signals,
		reg:      opts.Metrics,
		policies: opts.Policies,
		def:      DefaultPolicy(),
		counts:   make(map[string]*ClassCounts),
	}
	if g.policies == nil {
		g.policies = DefaultPolicies()
	}
	if opts.Default != nil {
		g.def = *opts.Default
	}
	if g.signals.SLOBurn == nil {
		g.signals.SLOBurn = func() float64 { return 0 }
	}
	return g
}

// policyFor resolves the class policy. Callers hold g.mu.
func (g *Gate) policyFor(class string) ClassPolicy {
	p, ok := g.policies[class]
	if !ok {
		p = g.def
	}
	if p.RetryAfter <= 0 {
		p.RetryAfter = DefaultRetryAfter
	}
	return p
}

// decide computes a decision without recording it.
func (g *Gate) decide(class string) Decision {
	rep := g.signals.Report()
	burn := g.signals.SLOBurn()
	state := rep.Space
	escalated := false
	// A violated latency SLO is saturation the headroom gauges cannot see
	// (e.g. download stalls), so it escalates the effective state one
	// level. At-risk burn (<1) only informs the reason string.
	if burn > 1 && state < capacity.StateSaturated {
		state++
		escalated = true
	}
	g.mu.Lock()
	pol := g.policyFor(class)
	g.mu.Unlock()

	d := Decision{
		Verdict:   Admit,
		Class:     class,
		State:     state,
		StateStr:  state.String(),
		Escalated: escalated,
		SLOBurn:   burn,
	}
	cause := fmt.Sprintf("space %s (headroom %.2f)", state, rep.SpaceHeadroom)
	if escalated {
		cause = fmt.Sprintf("space %s escalated from %s (slo burn %.2f)", state, rep.Space, burn)
	}
	switch {
	case state >= pol.RejectAt:
		d.Verdict = Reject
		d.Reason = cause
		d.RetryAfterMs = float64(pol.RetryAfter) / float64(time.Millisecond)
	case state >= pol.DegradeAt:
		d.Verdict = AdmitDegraded
		d.Reason = cause
	}
	return d
}

// Admit decides one request and records the decision in the gate's
// tallies and metrics.
func (g *Gate) Admit(class string) Decision {
	d := g.decide(class)
	g.mu.Lock()
	c, ok := g.counts[class]
	if !ok {
		c = &ClassCounts{Class: class}
		g.counts[class] = c
	}
	switch d.Verdict {
	case Admit:
		c.Admitted++
	case AdmitDegraded:
		c.Degraded++
	case Reject:
		c.Rejected++
	}
	g.mu.Unlock()
	if g.reg != nil {
		name := metrics.WithLabel(metrics.AdmissionsTotal, "class", class)
		g.reg.Counter(metrics.WithLabel(name, "verdict", string(d.Verdict))).Inc()
		g.reg.Gauge(metrics.AdmissionState).Set(float64(d.State))
	}
	return d
}

// Preview decides one request without recording it — the dry-run behind
// `qosctl admit -class`.
func (g *Gate) Preview(class string) Decision { return g.decide(class) }

// Status snapshots the gate's policy table and per-class tallies.
func (g *Gate) Status() Status {
	rep := g.signals.Report()
	burn := g.signals.SLOBurn()
	state := rep.Space
	if burn > 1 && state < capacity.StateSaturated {
		state++
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Status{
		State:    state,
		StateStr: state.String(),
		SLOBurn:  burn,
		Default:  g.def,
		Policies: make(map[string]ClassPolicy, len(g.policies)),
		Classes:  make([]ClassCounts, 0, len(g.counts)),
	}
	for class, p := range g.policies {
		st.Policies[class] = p
	}
	for _, c := range g.counts {
		st.Classes = append(st.Classes, *c)
	}
	sort.Slice(st.Classes, func(i, j int) bool { return st.Classes[i].Class < st.Classes[j].Class })
	return st
}
