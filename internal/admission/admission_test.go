package admission

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ubiqos/internal/capacity"
)

// fakeSignals builds Signals returning a fixed state and burn rate.
func fakeSignals(state capacity.State, headroom, burn float64) Signals {
	return Signals{
		Report:  func() capacity.Report { return capacity.Report{Space: state, SpaceHeadroom: headroom} },
		SLOBurn: func() float64 { return burn },
	}
}

// TestGateVerdictTable walks class × saturation-state × SLO-burn through
// the stock policy table: voice never degrades (holds full quality until
// rejected at saturated), background sheds as soon as the space is
// approaching, and unlisted classes get the default
// degrade-at-approaching / reject-at-saturated ladder. Burn > 1 escalates
// the effective state one level; burn at or below 1 never does.
func TestGateVerdictTable(t *testing.T) {
	cases := []struct {
		class     string
		state     capacity.State
		burn      float64
		want      Verdict
		escalated bool
	}{
		// Default policy (unlisted class).
		{"video", capacity.StateOK, 0, Admit, false},
		{"video", capacity.StateApproaching, 0, AdmitDegraded, false},
		{"video", capacity.StateSaturated, 0, Reject, false},
		// Voice holds quality: no degrade rung, reject only at saturated.
		{"voice", capacity.StateOK, 0, Admit, false},
		{"voice", capacity.StateApproaching, 0, Admit, false},
		{"voice", capacity.StateSaturated, 0, Reject, false},
		// Background sheds early.
		{"background", capacity.StateOK, 0, Admit, false},
		{"background", capacity.StateApproaching, 0, AdmitDegraded, false},
		{"background", capacity.StateSaturated, 0, Reject, false},
		// SLO burn > 1 escalates one level: OK behaves as approaching,
		// approaching behaves as saturated.
		{"video", capacity.StateOK, 1.5, AdmitDegraded, true},
		{"video", capacity.StateApproaching, 1.5, Reject, true},
		{"voice", capacity.StateOK, 1.5, Admit, true},
		{"voice", capacity.StateApproaching, 1.5, Reject, true},
		{"background", capacity.StateOK, 1.5, AdmitDegraded, true},
		// Saturated cannot escalate further (and must not mark Escalated).
		{"video", capacity.StateSaturated, 3.0, Reject, false},
		// At-risk burn (≤ 1) never escalates.
		{"video", capacity.StateOK, 1.0, Admit, false},
		{"background", capacity.StateOK, 0.99, Admit, false},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/%s/burn=%.2f", tc.class, tc.state, tc.burn)
		t.Run(name, func(t *testing.T) {
			g := New(Options{Signals: fakeSignals(tc.state, 0.5, tc.burn)})
			d := g.Admit(tc.class)
			if d.Verdict != tc.want {
				t.Fatalf("verdict = %s, want %s (decision %+v)", d.Verdict, tc.want, d)
			}
			if d.Escalated != tc.escalated {
				t.Fatalf("escalated = %v, want %v", d.Escalated, tc.escalated)
			}
			if d.Class != tc.class {
				t.Fatalf("class = %q, want %q", d.Class, tc.class)
			}
			if tc.want == Reject && d.RetryAfterMs <= 0 {
				t.Fatalf("rejection carries no retry-after hint: %+v", d)
			}
			if tc.want != Reject && d.RetryAfterMs != 0 {
				t.Fatalf("non-rejection carries retry-after %v", d.RetryAfterMs)
			}
		})
	}
}

// TestGateRetryAfterDefaults: rejections inherit DefaultRetryAfter unless
// the class policy sets its own hint.
func TestGateRetryAfterDefaults(t *testing.T) {
	g := New(Options{Signals: fakeSignals(capacity.StateSaturated, 0, 0)})
	if got := g.Admit("video").RetryAfter(); got != DefaultRetryAfter {
		t.Fatalf("default retry-after = %v, want %v", got, DefaultRetryAfter)
	}
	g = New(Options{
		Signals: fakeSignals(capacity.StateSaturated, 0, 0),
		Policies: map[string]ClassPolicy{
			"video": {DegradeAt: Never, RejectAt: capacity.StateSaturated, RetryAfter: 7 * time.Second},
		},
	})
	if got := g.Admit("video").RetryAfter(); got != 7*time.Second {
		t.Fatalf("policy retry-after = %v, want 7s", got)
	}
}

// TestGateDefaultOverride: Options.Default replaces the fallback policy
// for unlisted classes.
func TestGateDefaultOverride(t *testing.T) {
	g := New(Options{
		Signals: fakeSignals(capacity.StateApproaching, 0.3, 0),
		Default: &ClassPolicy{DegradeAt: Never, RejectAt: Never},
	})
	if d := g.Admit("anything"); d.Verdict != Admit {
		t.Fatalf("open-door default rejected/degraded: %+v", d)
	}
}

// TestGateTalliesAndPreview: Admit records per-class counts; Preview does
// not.
func TestGateTalliesAndPreview(t *testing.T) {
	g := New(Options{Signals: fakeSignals(capacity.StateApproaching, 0.3, 0)})
	g.Admit("voice")      // admitted (voice holds quality while approaching)
	g.Admit("background") // degraded
	g.Admit("background") // degraded
	g.Preview("voice")    // not recorded
	st := g.Status()
	want := map[string]ClassCounts{
		"voice":      {Class: "voice", Admitted: 1},
		"background": {Class: "background", Degraded: 2},
	}
	if len(st.Classes) != len(want) {
		t.Fatalf("classes = %+v, want %d entries", st.Classes, len(want))
	}
	for _, c := range st.Classes {
		if w := want[c.Class]; c != w {
			t.Fatalf("tally %+v, want %+v", c, w)
		}
	}
}

// TestGateStatusEscalation: the status snapshot reports the effective
// (escalated) state when the SLO is burning.
func TestGateStatusEscalation(t *testing.T) {
	g := New(Options{Signals: fakeSignals(capacity.StateOK, 0.6, 2.0)})
	st := g.Status()
	if st.State != capacity.StateApproaching {
		t.Fatalf("status state = %s, want approaching (escalated)", st.StateStr)
	}
	if st.SLOBurn != 2.0 {
		t.Fatalf("status burn = %v, want 2.0", st.SLOBurn)
	}
}

// TestRejectedErrorRoundTrip: the typed error carries the decision and
// unwraps via errors.As.
func TestRejectedErrorRoundTrip(t *testing.T) {
	g := New(Options{Signals: fakeSignals(capacity.StateSaturated, 0, 0)})
	dec := g.Admit("video")
	var err error = &RejectedError{Decision: dec}
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatal("errors.As failed to find RejectedError")
	}
	if rej.Decision.Verdict != Reject || rej.Decision.RetryAfterMs <= 0 {
		t.Fatalf("decision lost in transit: %+v", rej.Decision)
	}
}
