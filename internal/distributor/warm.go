package distributor

import (
	"ubiqos/internal/device"
	"ubiqos/internal/graph"
	"ubiqos/internal/obslog"
	"ubiqos/internal/trace"
)

// Incumbent is a previously committed placement handed to OptimalWarm as
// the warm-start seed after an environmental change.
type Incumbent struct {
	// Placement maps components to the device they were running on, keyed
	// by device identity rather than index, because the device set (and
	// hence Problem.Devices ordering) may have changed since the plan was
	// computed. Entries naming devices absent from the new problem are
	// ignored.
	Placement map[graph.NodeID]device.ID
	// Cost is the incumbent's cost aggregation in the environment it was
	// solved for. It seeds the reported bound trajectory context
	// ("warm-started from incumbent cost X") but is never used to prune:
	// the new environment may not admit any plan that cheap, and pruning
	// on it could cut off the true optimum.
	Cost float64
}

// OptimalWarm is Optimal warm-started from a previous assignment. The
// node order fixes still-valid placements first and the value order tries
// each component's incumbent device before the others, so the very first
// depth-first dive re-derives "keep everything that survived, re-place
// only what was lost" and its cost becomes the initial pruning bound.
// Only the lost components' subspace is then genuinely re-searched; the
// ≥-prune on the searcher's own best means no equal-cost alternative can
// displace that first incumbent-preserving optimum, so unaffected
// components do not move on ties.
//
// A nil incumbent — or one with no surviving entry — degrades to a cold
// solve that is bit-identical to Optimal (same code path, same order).
// The result is always a true optimum of p; warm start changes only which
// equal-cost optimum wins and how much of the tree is explored.
func OptimalWarm(p *Problem, inc *Incumbent) (Assignment, float64, error) {
	if inc == nil || len(inc.Placement) == 0 {
		return Optimal(p)
	}
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}

	// Keep only incumbent entries that still make sense: the node exists,
	// the device is still offered, and any pin agrees.
	warm := make(map[graph.NodeID]int, len(inc.Placement))
	for id, dev := range inc.Placement {
		n := p.Graph.Node(id)
		if n == nil {
			continue
		}
		di := p.deviceIndex(dev)
		if di < 0 {
			continue
		}
		if n.Pin != "" && device.ID(n.Pin) != dev {
			continue
		}
		warm[id] = di
	}
	if len(warm) == 0 {
		return Optimal(p)
	}

	// Variable order: still-valid placements first (stable within each
	// group, preserving the big-first heuristic order), so the lost
	// components sit at the bottom of the tree where backtracking is
	// cheap.
	def := p.sortedNodesByRequirement()
	order := make([]*graph.Node, 0, len(def))
	for _, n := range def {
		if _, ok := warm[n.ID]; ok {
			order = append(order, n)
		}
	}
	for _, n := range def {
		if _, ok := warm[n.ID]; !ok {
			order = append(order, n)
		}
	}

	s, err := newOBBStateOrdered(p, order)
	if err != nil {
		return nil, 0, err
	}
	s.pref = make([]int, len(s.nodes))
	for i, n := range s.nodes {
		s.pref[i] = -1
		if di, ok := warm[n.ID]; ok {
			s.pref[i] = di
		}
	}

	sp := p.Span.Child("branch-and-bound-warm")
	s.search(0, 0)
	w := s.counters(0, 1)
	sp.Set(trace.Int("explored", w.Explored), trace.Int("pruned", w.Pruned),
		trace.Int("incumbents", w.Incumbents), trace.Int("reused", int64(len(warm))))
	sp.End()
	p.Log.Debug("warm branch-and-bound solved",
		obslog.Int("explored", w.Explored), obslog.Int("pruned", w.Pruned),
		obslog.Int("incumbents", w.Incumbents), obslog.Int("reused", int64(len(warm))))
	if p.Stats != nil {
		*p.Stats = SearchStats{
			Algorithm:       "optimal-warm",
			Workers:         1,
			Explored:        w.Explored,
			Pruned:          w.Pruned,
			Incumbents:      w.Incumbents,
			BoundTrajectory: append([]float64(nil), s.trajectory...),
			RunnerUp:        runnerUp(s.trajectory),
			Warm:            true,
			SeedCost:        inc.Cost,
			Reused:          len(warm),
		}
	}
	return s.result()
}
