package distributor

import (
	"math/rand"
	"testing"

	"ubiqos/internal/resource"
	"ubiqos/internal/trace"
)

// TestSearchStats checks that every solver fills Problem.Stats and emits
// solver spans, and that instrumentation output is present without
// affecting the solution.
func TestSearchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	devices := []DeviceInfo{
		{ID: "pc", Avail: resource.MB(96, 160)},
		{ID: "pda", Avail: resource.MB(48, 90)},
	}
	p := randomTestProblem(rng, 10, devices, 40)

	// Sequential optimal.
	tc := trace.NewTracer(8)
	tr := tc.Start("solve", "s")
	p.Span = tr.Root()
	p.Stats = &SearchStats{}
	_, seqCost, err := Optimal(p)
	if err != nil {
		t.Skipf("instance infeasible: %v", err)
	}
	seq := *p.Stats
	if seq.Algorithm != "optimal" || seq.Workers != 1 {
		t.Errorf("sequential stats = %+v", seq)
	}
	if seq.Explored == 0 || seq.Incumbents == 0 {
		t.Errorf("sequential counters empty: %+v", seq)
	}
	tr.Finish()
	td := tc.Latest()
	if len(td.Spans) != 2 || td.Spans[1].Name != "branch-and-bound" {
		t.Fatalf("sequential spans = %+v", td.Spans)
	}
	if td.Spans[1].Attrs["explored"] != seq.Explored {
		t.Errorf("span explored = %v, stats %d", td.Spans[1].Attrs["explored"], seq.Explored)
	}

	// Parallel optimal: same cost, totals populated per worker.
	tr2 := tc.Start("solve", "s2")
	p.Span = tr2.Root()
	p.Stats = &SearchStats{}
	_, parCost, err := OptimalParallel(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if parCost != seqCost {
		t.Fatalf("instrumentation changed the answer: %v != %v", parCost, seqCost)
	}
	par := *p.Stats
	if par.Algorithm != "optimal-parallel" || par.Workers != 4 || par.Tasks == 0 {
		t.Errorf("parallel stats = %+v", par)
	}
	if len(par.PerWorker) != 4 {
		t.Fatalf("per-worker stats = %d entries", len(par.PerWorker))
	}
	var sumExplored, sumTasks int64
	for _, ws := range par.PerWorker {
		sumExplored += ws.Explored
		sumTasks += int64(ws.Tasks)
	}
	if sumExplored != par.Explored {
		t.Errorf("per-worker explored sums to %d, total %d", sumExplored, par.Explored)
	}
	if sumTasks != int64(par.Tasks) {
		t.Errorf("per-worker tasks sum to %d, total %d", sumTasks, par.Tasks)
	}
	if par.Explored == 0 || par.Incumbents == 0 {
		t.Errorf("parallel counters empty: %+v", par)
	}
	tr2.Finish()
	td2 := tc.Latest()
	var workers, parent int
	for _, sp := range td2.Spans {
		switch sp.Name {
		case "branch-and-bound-parallel":
			parent++
			if sp.Attrs["explored"] != par.Explored {
				t.Errorf("parent span explored = %v, want %d", sp.Attrs["explored"], par.Explored)
			}
		case "bnb-worker":
			workers++
		}
	}
	if parent != 1 || workers != 4 {
		t.Errorf("parallel spans: %d parent, %d workers", parent, workers)
	}

	// Heuristic.
	p.Span = nil
	p.Stats = &SearchStats{}
	if _, _, err := Heuristic(p); err != nil {
		t.Skipf("heuristic infeasible: %v", err)
	}
	h := *p.Stats
	if h.Algorithm != "heuristic" || h.Explored != 10 {
		t.Errorf("heuristic stats = %+v (want 10 placements)", h)
	}
}

// TestStatsNilSafe: solvers must run untraced with nil Span and Stats.
func TestStatsNilSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := randomTestProblem(rng, 8, []DeviceInfo{
		{ID: "pc", Avail: resource.MB(96, 160)},
		{ID: "pda", Avail: resource.MB(48, 90)},
	}, 40)
	if _, _, err := Optimal(p); err != nil {
		t.Skipf("infeasible: %v", err)
	}
	if _, _, err := OptimalParallel(p, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Heuristic(p); err != nil && err != ErrInfeasible {
		t.Fatal(err)
	}
}
