package distributor

// WorkerStats reports one parallel worker's share of the branch-and-bound
// search.
type WorkerStats struct {
	// Worker is the worker's index in the pool.
	Worker int `json:"worker"`
	// Tasks is how many frontier subtree tasks the worker pulled.
	Tasks int `json:"tasks"`
	// Explored counts successful node placements (search tree nodes
	// entered), Pruned counts subtrees cut off by the bound, and
	// Incumbents counts best-so-far updates within the worker's searcher.
	Explored   int64 `json:"explored"`
	Pruned     int64 `json:"pruned"`
	Incumbents int64 `json:"incumbents"`
}

// SearchStats reports how a Problem was solved. Solvers fill the struct
// pointed to by Problem.Stats (when non-nil) before returning; totals are
// always set, PerWorker only by the parallel solver.
type SearchStats struct {
	// Algorithm is "heuristic", "optimal", "optimal-parallel", or
	// "optimal-warm".
	Algorithm string `json:"algorithm"`
	// Workers and FrontierDepth describe the parallel split (Workers is 1
	// for sequential solvers); Tasks is the frontier task count.
	Workers       int `json:"workers,omitempty"`
	FrontierDepth int `json:"frontierDepth,omitempty"`
	Tasks         int `json:"tasks,omitempty"`
	// Explored, Pruned, and Incumbents are summed over all workers. For
	// the heuristic, Explored counts placements and Pruned counts
	// components that missed the head device and fell down the
	// availability order.
	Explored   int64 `json:"explored"`
	Pruned     int64 `json:"pruned"`
	Incumbents int64 `json:"incumbents"`
	// PerWorker breaks the totals down by pool worker (parallel only).
	PerWorker []WorkerStats `json:"perWorker,omitempty"`
	// BoundTrajectory is the sequence of incumbent costs the search moved
	// through, improving toward the returned optimum (last entry). The
	// sequential solvers record it chronologically; the parallel solver
	// merges the workers' trajectories best-last, deduplicated, since no
	// global chronological order exists. Bounded to TrajectoryCap entries
	// (oldest dropped). The heuristic records its single greedy cost.
	BoundTrajectory []float64 `json:"boundTrajectory,omitempty"`
	// RunnerUp is the cost of the best complete solution found that is
	// strictly worse than the winner — the margin the winner won by.
	// Zero when the search saw no second-best solution.
	RunnerUp float64 `json:"runnerUp,omitempty"`
	// Warm marks a warm-started solve; SeedCost is the incumbent cost the
	// search was seeded from, and Reused counts the components whose
	// previous placement was still valid and was fixed first in the
	// variable order.
	Warm     bool    `json:"warm,omitempty"`
	SeedCost float64 `json:"seedCost,omitempty"`
	Reused   int     `json:"reused,omitempty"`
}

// TrajectoryCap bounds BoundTrajectory: trajectories keep the newest
// (best) entries, dropping the oldest, so provenance records stay small
// on adversarial instances with many incumbent updates.
const TrajectoryCap = 64

// counters extracts an obbState's search counters as a WorkerStats value.
func (s *obbState) counters(worker, tasks int) WorkerStats {
	return WorkerStats{
		Worker:     worker,
		Tasks:      tasks,
		Explored:   s.explored,
		Pruned:     s.prunedN,
		Incumbents: s.incumbents,
	}
}
