package distributor

import (
	"fmt"
	"testing"

	"ubiqos/internal/device"
	"ubiqos/internal/graph"
	"ubiqos/internal/resource"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU[int](2)
	if c.cap() != 2 || c.len() != 0 {
		t.Fatalf("fresh cache: len %d cap %d", c.len(), c.cap())
	}
	if evicted := c.put("a", 1); evicted {
		t.Fatal("first insert evicted")
	}
	c.put("b", 2)
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	if evicted := c.put("c", 3); !evicted {
		t.Fatal("insert past capacity did not evict")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatalf("a = %d (%v), want 1", v, ok)
	}
	// Re-putting an existing key updates in place without eviction.
	if evicted := c.put("a", 10); evicted {
		t.Fatal("update of existing key evicted")
	}
	if v, _ := c.get("a"); v != 10 {
		t.Fatalf("a = %d after update, want 10", v)
	}
	if !c.delete("c") || c.delete("c") {
		t.Fatal("delete should succeed once")
	}
	if n := c.clear(); n != 1 {
		t.Fatalf("clear dropped %d entries, want 1", n)
	}
}

func TestLRUEachWalksMRUFirst(t *testing.T) {
	c := newLRU[int](3)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3)
	c.get("a") // a becomes MRU
	var order []string
	c.each(func(key string, _ int) bool {
		order = append(order, key)
		return true
	})
	want := []string{"a", "c", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("walk order %v, want %v", order, want)
		}
	}
	// Early termination.
	n := 0
	c.each(func(string, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("walk visited %d entries after stop, want 1", n)
	}
}

func TestLRUCapacityClamp(t *testing.T) {
	c := newLRU[int](0)
	if c.cap() != 1 {
		t.Fatalf("cap %d, want clamp to 1", c.cap())
	}
	c.put("a", 1)
	c.put("b", 2)
	if c.len() != 1 {
		t.Fatalf("len %d, want 1", c.len())
	}
}

// TestFixedCacheBounded: the static baseline's per-application memo must
// not grow past FixedCacheCapacity no matter how many application keys a
// drill cycles through, and an evicted key recomputes deterministically.
func TestFixedCacheBounded(t *testing.T) {
	g := graph.New()
	g.MustAddNode(&graph.Node{ID: "n", Type: "component", Resources: resource.MB(4, 4)})
	w, err := resource.NewWeights(0.3, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	devices := []DeviceInfo{{ID: "pc", Avail: resource.MB(96, 160)}}
	p := &Problem{
		Graph:     g,
		Devices:   devices,
		Bandwidth: func(a, b device.ID) float64 { return 40 },
		Weights:   w,
	}
	f := NewFixed(devices)
	var first Assignment
	for i := 0; i < FixedCacheCapacity+50; i++ {
		a, _, err := f.Place(fmt.Sprintf("app-%d", i), p)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = a
		}
	}
	f.mu.Lock()
	n := f.cache.len()
	f.mu.Unlock()
	if n != FixedCacheCapacity {
		t.Fatalf("memo holds %d entries, want the %d cap", n, FixedCacheCapacity)
	}
	// app-0 was evicted; re-requesting it recomputes the same placement.
	again, _, err := f.Place("app-0", p)
	if err != nil {
		t.Fatal(err)
	}
	if again["n"] != first["n"] {
		t.Fatalf("recomputed placement %v differs from original %v", again, first)
	}
}
