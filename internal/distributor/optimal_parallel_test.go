package distributor

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"ubiqos/internal/device"
	"ubiqos/internal/graph"
	"ubiqos/internal/resource"
)

// randomTestProblem draws one Table-1-style instance directly (the
// workload package imports distributor, so the generator is inlined here).
func randomTestProblem(rng *rand.Rand, nodes int, devices []DeviceInfo, linkMbps float64) *Problem {
	g := graph.New()
	ids := make([]graph.NodeID, nodes)
	for i := range ids {
		ids[i] = graph.NodeID(string(rune('a'+i/26)) + string(rune('a'+i%26)))
		g.MustAddNode(&graph.Node{
			ID:        ids[i],
			Type:      "component",
			Resources: resource.MB(rng.Float64()*16+0.5, rng.Float64()*24+0.5),
		})
	}
	for i := 0; i < nodes-1; i++ {
		deg := 1 + rng.Intn(4)
		if m := nodes - 1 - i; deg > m {
			deg = m
		}
		for _, t := range rng.Perm(nodes - 1 - i)[:deg] {
			g.MustAddEdge(ids[i], ids[i+1+t], rng.Float64()*6+0.1)
		}
	}
	w := resource.Weights{}
	sum := 0.0
	for i := 0; i < resource.Dims+1; i++ {
		w = append(w, rng.Float64()+0.01)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return &Problem{
		Graph:     g,
		Devices:   devices,
		Bandwidth: func(a, b device.ID) float64 { return linkMbps },
		Weights:   w,
	}
}

// TestOptimalParallelMatchesSequential is the tentpole contract: for every
// instance and every worker count, the parallel solver — and a cold
// (incumbent-free) warm solver — return the same assignment and the
// bit-identical cost as the sequential oracle, including agreeing on
// infeasibility.
func TestOptimalParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	devices := []DeviceInfo{
		{ID: "pc", Avail: resource.MB(96, 160)},
		{ID: "pda", Avail: resource.MB(32, 90)},
	}
	workerCounts := []int{2, 3, 4, runtime.NumCPU()}
	feasible, infeasible := 0, 0
	for trial := 0; trial < 40; trial++ {
		nodes := 8 + rng.Intn(7)
		p := randomTestProblem(rng, nodes, devices, 40)
		seqA, seqCost, seqErr := Optimal(p)
		for _, workers := range workerCounts {
			parA, parCost, parErr := OptimalParallel(p, workers)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("trial %d workers %d: seq err %v, par err %v", trial, workers, seqErr, parErr)
			}
			if seqErr != nil {
				if !errors.Is(parErr, ErrInfeasible) {
					t.Fatalf("trial %d workers %d: want ErrInfeasible, got %v", trial, workers, parErr)
				}
				continue
			}
			if math.Float64bits(seqCost) != math.Float64bits(parCost) {
				t.Fatalf("trial %d workers %d: cost %v != sequential %v (bits differ)",
					trial, workers, parCost, seqCost)
			}
			if !reflect.DeepEqual(seqA, parA) {
				t.Fatalf("trial %d workers %d: assignment\n%v\n!= sequential\n%v", trial, workers, parA, seqA)
			}
		}
		for name, inc := range map[string]*Incumbent{"nil": nil, "empty": {}} {
			warmA, warmCost, warmErr := OptimalWarm(p, inc)
			if (seqErr == nil) != (warmErr == nil) {
				t.Fatalf("trial %d cold warm (%s incumbent): seq err %v, warm err %v", trial, name, seqErr, warmErr)
			}
			if seqErr != nil {
				if !errors.Is(warmErr, ErrInfeasible) {
					t.Fatalf("trial %d cold warm (%s incumbent): want ErrInfeasible, got %v", trial, name, warmErr)
				}
				continue
			}
			if math.Float64bits(seqCost) != math.Float64bits(warmCost) || !reflect.DeepEqual(seqA, warmA) {
				t.Fatalf("trial %d cold warm (%s incumbent): (%v, %v) != sequential (%v, %v)",
					trial, name, warmA, warmCost, seqA, seqCost)
			}
		}
		if seqErr != nil {
			infeasible++
		} else {
			feasible++
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Logf("coverage: %d feasible, %d infeasible instances", feasible, infeasible)
	}
}

// TestOptimalParallelThreeDevices exercises a wider frontier fan-out and
// pins, where the frontier enumeration must respect pinned devices.
func TestOptimalParallelThreeDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	devices := []DeviceInfo{
		{ID: "desktop", Avail: resource.MB(128, 200)},
		{ID: "laptop", Avail: resource.MB(64, 100)},
		{ID: "pda", Avail: resource.MB(24, 60)},
	}
	for trial := 0; trial < 15; trial++ {
		p := randomTestProblem(rng, 10+rng.Intn(3), devices, 30)
		// Pin the first node to the desktop.
		p.Graph.Nodes()[0].Pin = "desktop"
		seqA, seqCost, seqErr := Optimal(p)
		parA, parCost, parErr := OptimalParallel(p, 4)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("trial %d: seq err %v, par err %v", trial, seqErr, parErr)
		}
		if seqErr != nil {
			continue
		}
		if math.Float64bits(seqCost) != math.Float64bits(parCost) || !reflect.DeepEqual(seqA, parA) {
			t.Fatalf("trial %d: parallel (%v, %v) != sequential (%v, %v)", trial, parA, parCost, seqA, seqCost)
		}
	}
}

// TestOptimalParallelExplicitDepth checks the FrontierDepth knob,
// including depths past the node count (complete-assignment tasks).
func TestOptimalParallelExplicitDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	devices := []DeviceInfo{
		{ID: "pc", Avail: resource.MB(96, 160)},
		{ID: "pda", Avail: resource.MB(48, 90)},
	}
	p := randomTestProblem(rng, 9, devices, 40)
	seqA, seqCost, seqErr := Optimal(p)
	if seqErr != nil {
		t.Skipf("instance infeasible: %v", seqErr)
	}
	for _, depth := range []int{1, 3, 6, 9, 50, -2} {
		a, cost, err := OptimalWith(p, ParallelOptions{Workers: 4, FrontierDepth: depth})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if math.Float64bits(cost) != math.Float64bits(seqCost) || !reflect.DeepEqual(a, seqA) {
			t.Fatalf("depth %d: (%v, %v) != sequential (%v, %v)", depth, a, cost, seqA, seqCost)
		}
	}
}

// TestOptimalParallelValidation mirrors the sequential error paths.
func TestOptimalParallelValidation(t *testing.T) {
	if _, _, err := OptimalParallel(&Problem{}, 4); err == nil {
		t.Error("invalid problem should fail")
	}
	// workers ≤ 1 must take the sequential path and still work.
	rng := rand.New(rand.NewSource(3))
	p := randomTestProblem(rng, 6, []DeviceInfo{
		{ID: "pc", Avail: resource.MB(96, 160)},
		{ID: "pda", Avail: resource.MB(48, 90)},
	}, 40)
	a1, c1, err1 := OptimalParallel(p, 1)
	a0, c0, err0 := Optimal(p)
	if (err1 == nil) != (err0 == nil) {
		t.Fatalf("err mismatch: %v vs %v", err1, err0)
	}
	if err0 == nil && (c1 != c0 || !reflect.DeepEqual(a1, a0)) {
		t.Fatalf("workers=1 diverged from sequential")
	}
}

// TestSharedBoundLower exercises the CAS loop directly.
func TestSharedBoundLower(t *testing.T) {
	b := newSharedBound()
	if !math.IsInf(b.load(), 1) {
		t.Fatalf("initial bound = %v", b.load())
	}
	b.lower(3.5)
	b.lower(7.0) // higher: no effect
	if b.load() != 3.5 {
		t.Fatalf("bound = %v, want 3.5", b.load())
	}
	b.lower(1.25)
	if b.load() != 1.25 {
		t.Fatalf("bound = %v, want 1.25", b.load())
	}
}

// TestSolverEquivalenceWithNetworkFloor repeats the tri-solver contract
// with the opt-in forced-crossing bound enabled: the floor may change
// which equal-cost optimum wins, but Optimal, OptimalParallel, and a
// cold OptimalWarm must still agree bit-for-bit with each other, and the
// optimal cost must match the floor-free solve exactly.
func TestSolverEquivalenceWithNetworkFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	devices := []DeviceInfo{
		{ID: "pc", Avail: resource.MB(96, 160)},
		{ID: "pda", Avail: resource.MB(32, 90)},
		{ID: "tablet", Avail: resource.MB(48, 120)},
	}
	for trial := 0; trial < 25; trial++ {
		nodes := 8 + rng.Intn(7)
		p := randomTestProblem(rng, nodes, devices, 40)
		baseA, baseCost, baseErr := Optimal(p)
		p.NetworkFloor = true
		seqA, seqCost, seqErr := Optimal(p)
		if (baseErr == nil) != (seqErr == nil) {
			t.Fatalf("trial %d: floor changed feasibility: base err %v, floor err %v", trial, baseErr, seqErr)
		}
		if seqErr != nil {
			continue
		}
		if math.Float64bits(baseCost) != math.Float64bits(seqCost) {
			t.Fatalf("trial %d: floor changed the optimal cost %v -> %v", trial, baseCost, seqCost)
		}
		_ = baseA
		parA, parCost, parErr := OptimalParallel(p, 3)
		if parErr != nil || math.Float64bits(seqCost) != math.Float64bits(parCost) || !reflect.DeepEqual(seqA, parA) {
			t.Fatalf("trial %d: parallel (%v, %v, %v) != sequential (%v, %v)", trial, parA, parCost, parErr, seqA, seqCost)
		}
		warmA, warmCost, warmErr := OptimalWarm(p, nil)
		if warmErr != nil || math.Float64bits(seqCost) != math.Float64bits(warmCost) || !reflect.DeepEqual(seqA, warmA) {
			t.Fatalf("trial %d: cold warm (%v, %v, %v) != sequential (%v, %v)", trial, warmA, warmCost, warmErr, seqA, seqCost)
		}
	}
}
