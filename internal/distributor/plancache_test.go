package distributor

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ubiqos/internal/device"
	"ubiqos/internal/eventbus"
	"ubiqos/internal/graph"
	"ubiqos/internal/metrics"
	"ubiqos/internal/resource"
)

// cacheProblem builds a small solvable instance whose identity can be
// varied through the salt (distinct salts → distinct signatures).
func cacheProblem(t *testing.T, salt float64) *Problem {
	t.Helper()
	g := graph.New()
	g.MustAddNode(&graph.Node{ID: "src", Type: "component", Resources: resource.MB(8+salt, 12)})
	g.MustAddNode(&graph.Node{ID: "snk", Type: "component", Resources: resource.MB(4, 6)})
	g.MustAddEdge("src", "snk", 1.5)
	w, err := resource.NewWeights(0.3, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{
		Graph: g,
		Devices: []DeviceInfo{
			{ID: "pc", Avail: resource.MB(96, 160)},
			{ID: "pda", Avail: resource.MB(32, 90)},
		},
		Bandwidth: func(a, b device.ID) float64 { return 40 },
		Weights:   w,
	}
}

func solveAndStore(t *testing.T, c *PlanCache, p *Problem) (Assignment, float64) {
	t.Helper()
	a, cost, err := Optimal(p)
	if err != nil {
		t.Fatal(err)
	}
	c.Store(p, a, cost)
	return a, cost
}

func TestPlanCacheHitAndMiss(t *testing.T) {
	c := NewPlanCache(8)
	p := cacheProblem(t, 0)
	if _, _, ok := c.Lookup(p); ok {
		t.Fatal("lookup on an empty cache hit")
	}
	a, cost := solveAndStore(t, c, p)
	got, gotCost, ok := c.Lookup(p)
	if !ok {
		t.Fatal("lookup after store missed")
	}
	if gotCost != cost {
		t.Fatalf("cached cost %v, want %v", gotCost, cost)
	}
	for id, di := range a {
		if got[id] != di {
			t.Fatalf("cached assignment %v, want %v", got, a)
		}
	}
	// The returned assignment is private: mutating it must not corrupt
	// the cache.
	got["src"] = 99
	again, _, ok := c.Lookup(p)
	if !ok || again["src"] == 99 {
		t.Fatal("cache entry aliased to the caller's copy")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 2 hits / 1 miss / 1 entry", st)
	}
}

// TestPlanCachePermutedDevices: the signature is device-order
// independent, so a problem listing the same devices in another order
// must hit — and the remapped assignment must name the same device
// identities, not the same indices.
func TestPlanCachePermutedDevices(t *testing.T) {
	c := NewPlanCache(8)
	p := cacheProblem(t, 0)
	a, _ := solveAndStore(t, c, p)

	perm := cacheProblem(t, 0)
	perm.Devices = []DeviceInfo{perm.Devices[1], perm.Devices[0]}
	got, _, ok := c.Lookup(perm)
	if !ok {
		t.Fatal("device-order permutation missed the cache")
	}
	for id, di := range a {
		if perm.Devices[got[id]].ID != p.Devices[di].ID {
			t.Fatalf("node %s remapped to %s, want %s", id, perm.Devices[got[id]].ID, p.Devices[di].ID)
		}
	}
	if err := perm.FitInto(got); err != nil {
		t.Fatalf("remapped assignment does not fit: %v", err)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	p0, p1, p2 := cacheProblem(t, 0), cacheProblem(t, 1), cacheProblem(t, 2)
	solveAndStore(t, c, p0)
	solveAndStore(t, c, p1)
	if _, _, ok := c.Lookup(p0); !ok { // refresh p0: p1 becomes LRU
		t.Fatal("p0 should be cached")
	}
	solveAndStore(t, c, p2) // evicts p1
	if _, _, ok := c.Lookup(p1); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, _, ok := c.Lookup(p0); !ok {
		t.Fatal("recently-used entry was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats %+v, want 1 eviction and 2/2 entries", st)
	}
}

func TestPlanCacheInvalidateDeviceAndFlush(t *testing.T) {
	c := NewPlanCache(8)
	p := cacheProblem(t, 0)
	a, cost, err := Optimal(p)
	if err != nil {
		t.Fatal(err)
	}
	c.Store(p, a, cost)
	// An entry whose plan does not involve the device survives targeted
	// invalidation.
	onPC := p.Devices[a["src"]].ID
	var other device.ID = "pda"
	if onPC == "pda" {
		other = "pc"
	}
	if n := c.InvalidateDevice(other); n != 0 && a["src"] == a["snk"] {
		t.Fatalf("invalidated %d entries for an uninvolved device", n)
	}
	if n := c.InvalidateDevice(onPC); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if _, _, ok := c.Lookup(p); ok {
		t.Fatal("entry survived device invalidation")
	}
	c.Store(p, a, cost)
	if n := c.Flush(); n != 1 {
		t.Fatalf("flushed %d entries, want 1", n)
	}
	if c.Stats().Entries != 0 {
		t.Fatal("entries remain after flush")
	}
}

// TestPlanCacheRejectsUnfitEntry: the defensive FitInto re-check drops a
// memoized plan that does not fit the problem, reporting a miss.
func TestPlanCacheRejectsUnfitEntry(t *testing.T) {
	c := NewPlanCache(8)
	p := cacheProblem(t, 0)
	bad := Assignment{"src": 1, "snk": 1} // pda cannot hold both
	p.Devices[1].Avail = resource.MB(10, 10)
	c.Store(p, bad, 1.0)
	if _, _, ok := c.Lookup(p); ok {
		t.Fatal("unfit cached plan was served")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v, want the unfit entry invalidated", st)
	}
}

// waitFor polls until the condition holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPlanCacheBusInvalidation(t *testing.T) {
	bus := eventbus.New()
	defer bus.Close()
	c := NewPlanCache(8)
	if err := c.Subscribe(bus); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := cacheProblem(t, 0)
	a, cost, err := Optimal(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		topic   eventbus.Topic
		payload any
	}{
		{"device left", eventbus.TopicDeviceLeft, string(p.Devices[a["src"]].ID)},
		{"device resized", eventbus.TopicResourceChanged, string(p.Devices[a["snk"]].ID)},
		{"lease expired", eventbus.TopicServiceExpired, "player1"},
		{"link changed", eventbus.TopicResourceChanged, struct{ A, B device.ID }{"pc", "pda"}},
	}
	for _, tc := range cases {
		c.Store(p, a, cost)
		if _, _, ok := c.Lookup(p); !ok {
			t.Fatalf("%s: entry not cached before the event", tc.name)
		}
		bus.Publish(tc.topic, tc.payload)
		waitFor(t, fmt.Sprintf("invalidation on %s", tc.name), func() bool {
			_, _, ok := c.Lookup(p)
			return !ok
		})
	}
}

// TestPlanCacheConcurrency hammers the cache from lookup/store goroutines
// while bus events invalidate concurrently; run under -race this is the
// data-race proof for the subscription pump.
func TestPlanCacheConcurrency(t *testing.T) {
	bus := eventbus.New()
	c := NewPlanCache(4)
	c.Instrument(metrics.NewRegistry())
	if err := c.Subscribe(bus); err != nil {
		t.Fatal(err)
	}

	problems := make([]*Problem, 6)
	assigns := make([]Assignment, 6)
	costs := make([]float64, 6)
	for i := range problems {
		problems[i] = cacheProblem(t, float64(i))
		a, cost, err := Optimal(problems[i])
		if err != nil {
			t.Fatal(err)
		}
		assigns[i], costs[i] = a, cost
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (w + i) % len(problems)
				if a, cost, ok := c.Lookup(problems[k]); ok {
					if cost != costs[k] || len(a) != len(assigns[k]) {
						t.Errorf("corrupted entry for problem %d", k)
						return
					}
				} else {
					c.Store(problems[k], assigns[k], costs[k])
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			bus.Publish(eventbus.TopicDeviceLeft, "pc")
			bus.Publish(eventbus.TopicServiceExpired, "player1")
			c.Stats()
		}
	}()
	wg.Wait()
	bus.Close()
	c.Close()
	c.Close() // idempotent
}

func TestPlanCacheMetricsWiring(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewPlanCache(8)
	c.Instrument(reg)
	p := cacheProblem(t, 0)
	c.Lookup(p) // miss
	solveAndStore(t, c, p)
	c.Lookup(p) // hit
	c.Flush()
	if v := reg.Counter(metrics.PlanCacheHits).Value(); v != 1 {
		t.Errorf("plan_cache_hits_total = %d, want 1", v)
	}
	if v := reg.Counter(metrics.PlanCacheMisses).Value(); v != 1 {
		t.Errorf("plan_cache_misses_total = %d, want 1", v)
	}
	if v := reg.Counter(metrics.PlanCacheInvalidations).Value(); v != 1 {
		t.Errorf("plan_cache_invalidations_total = %d, want 1", v)
	}
	if g, ok := reg.Gauge(metrics.PlanCacheEntries).Value(); !ok || g != 0 {
		t.Errorf("plan_cache_entries = %v (%v), want 0 after flush", g, ok)
	}
}
