// Package distributor implements the service distribution tier of the
// dynamic QoS-aware service configuration model (Gu & Nahrstedt, ICDCS
// 2002, §3.3): partitioning a QoS-consistent service graph across the k
// currently available devices (a k-cut, Definition 3.3) such that the graph
// "fits into" the devices (Definition 3.4) while minimizing the Cost
// Aggregation objective (Definition 3.5).
//
// Finding the optimal service distribution is NP-hard (Theorem 1, by
// reduction from minimum directed multiway cut), so the package provides
// the paper's polynomial greedy heuristic alongside an exact
// branch-and-bound solver, a random baseline, a fixed (static) baseline,
// and a first-fit ablation.
package distributor

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ubiqos/internal/device"
	"ubiqos/internal/graph"
	"ubiqos/internal/obslog"
	"ubiqos/internal/resource"
	"ubiqos/internal/trace"
)

// ErrInfeasible reports that no placement satisfying the fit-into
// constraints exists (or was found by the algorithm at hand).
var ErrInfeasible = errors.New("distributor: service graph does not fit into the available devices")

// DeviceInfo is the distributor's view of one available device: its
// identity and its normalized resource availability vector RA.
type DeviceInfo struct {
	ID    device.ID
	Avail resource.Vector
}

// Problem is one service distribution instance.
type Problem struct {
	// Graph is the QoS-consistent service graph to distribute. Node
	// resource vectors and edge throughputs must be populated.
	Graph *graph.Graph
	// Devices are the k available devices with normalized availability.
	Devices []DeviceInfo
	// Bandwidth reports the available end-to-end bandwidth b(i,j) in Mbps
	// between two devices. It must be symmetric. The total throughput of
	// cut edges between two partitions (both directions) must not exceed
	// it.
	Bandwidth func(a, b device.ID) float64
	// Weights are the m+1 significance weights of Definition 3.5.
	Weights resource.Weights
	// NetworkFloor tightens the exact solvers' suffix bound with an
	// admissible forced-crossing network floor: edges whose endpoints can
	// never colocate are priced at their best achievable bandwidth in
	// every prefix bound. The optimum's cost is unaffected, but because
	// the search prunes equal-cost subtrees, a different (equally
	// optimal) assignment may be returned than with the bound off — so
	// the floor is opt-in, for large-graph solves where plateau pruning
	// decides tractability. All three exact solvers honor it
	// identically, preserving their bit-for-bit equivalence either way.
	NetworkFloor bool

	// Span, when non-nil, receives solver child spans (per-worker
	// branch-and-bound spans with explored/pruned/incumbent counts). It is
	// observability output only and never affects the solution.
	Span *trace.Span
	// Stats, when non-nil, is filled with SearchStats by the solver.
	Stats *SearchStats
	// Log, when non-nil, receives one structured record per solve with
	// the search counters. Observability only.
	Log *obslog.Logger
}

// Validate checks the problem is well-formed: a valid graph, at least one
// device, consistent dimensionality, and valid weights.
func (p *Problem) Validate() error {
	if p.Graph == nil {
		return fmt.Errorf("distributor: nil graph")
	}
	if err := p.Graph.Validate(); err != nil {
		return err
	}
	if len(p.Devices) == 0 {
		return fmt.Errorf("distributor: no devices")
	}
	if p.Bandwidth == nil {
		return fmt.Errorf("distributor: nil bandwidth function")
	}
	if err := p.Weights.Validate(); err != nil {
		return err
	}
	m := p.Weights.Dims()
	seen := make(map[device.ID]bool, len(p.Devices))
	for _, d := range p.Devices {
		if d.ID == "" {
			return fmt.Errorf("distributor: device with empty ID")
		}
		if seen[d.ID] {
			return fmt.Errorf("distributor: duplicate device %s", d.ID)
		}
		seen[d.ID] = true
		if len(d.Avail) != m {
			return fmt.Errorf("distributor: device %s availability has %d dimensions, weights imply %d", d.ID, len(d.Avail), m)
		}
		if err := d.Avail.Validate(); err != nil {
			return fmt.Errorf("distributor: device %s: %w", d.ID, err)
		}
	}
	for _, n := range p.Graph.Nodes() {
		if len(n.Resources) != m {
			return fmt.Errorf("distributor: node %s requirement has %d dimensions, weights imply %d", n.ID, len(n.Resources), m)
		}
		if n.Pin != "" && !seen[device.ID(n.Pin)] {
			return fmt.Errorf("distributor: node %s pinned to unavailable device %s", n.ID, n.Pin)
		}
	}
	return nil
}

// deviceIndex returns the index of the device with the given ID, or -1.
func (p *Problem) deviceIndex(id device.ID) int {
	for i, d := range p.Devices {
		if d.ID == id {
			return i
		}
	}
	return -1
}

// Assignment maps every service component to the index of the device (in
// Problem.Devices) it is placed on: a k-cut of the service graph.
type Assignment map[graph.NodeID]int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// CutEdges returns the edges whose endpoints lie in different partitions
// (the edges that "belong to the k-cut", Definition 3.3).
func (p *Problem) CutEdges(a Assignment) []graph.Edge {
	var out []graph.Edge
	for _, e := range p.Graph.Edges() {
		if a[e.From] != a[e.To] {
			out = append(out, e)
		}
	}
	return out
}

// pairKey canonicalizes an unordered device-index pair.
func pairKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// pairThroughput sums the throughput of all cut edges between each
// unordered device pair (both directions, since the bandwidth b(i,j) is a
// shared symmetric capacity).
func (p *Problem) pairThroughput(a Assignment) map[[2]int]float64 {
	out := make(map[[2]int]float64)
	for _, e := range p.Graph.Edges() {
		di, dj := a[e.From], a[e.To]
		if di == dj {
			continue
		}
		out[pairKey(di, dj)] += e.ThroughputMbps
	}
	return out
}

// FitInto checks Definition 3.4: the assignment is complete, respects
// pins, every device's summed requirement vector is ≤ its availability,
// and every device pair's summed cut throughput is ≤ the available
// bandwidth between the two devices. It returns nil when the graph fits,
// or an error (wrapping ErrInfeasible) naming the violated constraint.
func (p *Problem) FitInto(a Assignment) error {
	m := p.Weights.Dims()
	loads := make([]resource.Vector, len(p.Devices))
	for i := range loads {
		loads[i] = resource.New(m)
	}
	for _, n := range p.Graph.Nodes() {
		di, ok := a[n.ID]
		if !ok {
			return fmt.Errorf("%w: node %s unassigned", ErrInfeasible, n.ID)
		}
		if di < 0 || di >= len(p.Devices) {
			return fmt.Errorf("%w: node %s assigned to invalid device index %d", ErrInfeasible, n.ID, di)
		}
		if n.Pin != "" && p.Devices[di].ID != device.ID(n.Pin) {
			return fmt.Errorf("%w: node %s pinned to %s but assigned to %s", ErrInfeasible, n.ID, n.Pin, p.Devices[di].ID)
		}
		loads[di].AddInPlace(n.Resources)
	}
	for i, load := range loads {
		if !load.LessEq(p.Devices[i].Avail) {
			return fmt.Errorf("%w: device %s overloaded: need %s, have %s",
				ErrInfeasible, p.Devices[i].ID, load, p.Devices[i].Avail)
		}
	}
	for pair, tp := range p.pairThroughput(a) {
		b := p.Bandwidth(p.Devices[pair[0]].ID, p.Devices[pair[1]].ID)
		if tp > b {
			return fmt.Errorf("%w: link %s-%s oversubscribed: need %.2f Mbps, have %.2f",
				ErrInfeasible, p.Devices[pair[0]].ID, p.Devices[pair[1]].ID, tp, b)
		}
	}
	return nil
}

// CostAggregation computes Definition 3.5 for a complete assignment:
//
//	CA(Φ) = Σ_j Σ_i w_i·r_i^j/ra_i^j + Σ_{i≠j} w_{m+1}·T_{i,j}/b_{i,j}
//
// where r^j is the summed requirement on device j and T_{i,j} the summed
// cut throughput between devices i and j. Infeasible terms (zero
// availability with nonzero demand) yield +Inf.
func (p *Problem) CostAggregation(a Assignment) float64 {
	m := p.Weights.Dims()
	loads := make([]resource.Vector, len(p.Devices))
	for i := range loads {
		loads[i] = resource.New(m)
	}
	for _, n := range p.Graph.Nodes() {
		di, ok := a[n.ID]
		if !ok || di < 0 || di >= len(p.Devices) {
			return math.Inf(1)
		}
		loads[di].AddInPlace(n.Resources)
	}
	var cost float64
	for i, load := range loads {
		cost += load.RelativeLoad(p.Devices[i].Avail, p.Weights.EndSystem())
	}
	wNet := p.Weights.Network()
	for pair, tp := range p.pairThroughput(a) {
		if tp == 0 {
			continue
		}
		b := p.Bandwidth(p.Devices[pair[0]].ID, p.Devices[pair[1]].ID)
		if b == 0 {
			return math.Inf(1)
		}
		cost += wNet * tp / b
	}
	return cost
}

// DeviceLoads returns the summed requirement vector per device index for a
// complete assignment — what an admission controller must subtract from
// each device's availability when the application is deployed.
func (p *Problem) DeviceLoads(a Assignment) []resource.Vector {
	m := p.Weights.Dims()
	loads := make([]resource.Vector, len(p.Devices))
	for i := range loads {
		loads[i] = resource.New(m)
	}
	for _, n := range p.Graph.Nodes() {
		if di, ok := a[n.ID]; ok && di >= 0 && di < len(loads) {
			loads[di].AddInPlace(n.Resources)
		}
	}
	return loads
}

// LinkDemands returns the summed cut throughput per unordered device pair —
// what must be reserved on each link when the application is deployed.
func (p *Problem) LinkDemands(a Assignment) map[[2]device.ID]float64 {
	out := make(map[[2]device.ID]float64)
	for pair, tp := range p.pairThroughput(a) {
		i, j := p.Devices[pair[0]].ID, p.Devices[pair[1]].ID
		if i > j {
			i, j = j, i
		}
		out[[2]device.ID{i, j}] += tp
	}
	return out
}

// pinnedAssignment seeds an assignment with every pinned node placed on
// its required device (heuristic step 1: "insert those service components,
// that cannot be instantiated arbitrarily, into their proper devices").
func (p *Problem) pinnedAssignment() (Assignment, error) {
	a := make(Assignment)
	for _, n := range p.Graph.Nodes() {
		if n.Pin == "" {
			continue
		}
		di := p.deviceIndex(device.ID(n.Pin))
		if di < 0 {
			return nil, fmt.Errorf("%w: node %s pinned to unavailable device %s", ErrInfeasible, n.ID, n.Pin)
		}
		a[n.ID] = di
	}
	return a, nil
}

// weightedRequirement measures a component by the weighted sum of its
// resource requirements (paper §3.3, footnote 3).
func (p *Problem) weightedRequirement(n *graph.Node) float64 {
	return n.Resources.WeightedSum(p.Weights.EndSystem())
}

// sortedNodesByRequirement returns the graph's nodes sorted by decreasing
// weighted requirement (ties broken by ID for determinism).
func (p *Problem) sortedNodesByRequirement() []*graph.Node {
	nodes := p.Graph.Nodes()
	sort.SliceStable(nodes, func(i, j int) bool {
		ri, rj := p.weightedRequirement(nodes[i]), p.weightedRequirement(nodes[j])
		if ri != rj {
			return ri > rj
		}
		return nodes[i].ID < nodes[j].ID
	})
	return nodes
}
