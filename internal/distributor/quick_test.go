package distributor

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ubiqos/internal/device"
	"ubiqos/internal/resource"
	"ubiqos/internal/workload"
)

// problemGen generates random valid distribution problems for
// testing/quick: 2-4 heterogeneous devices and a small random service
// graph with occasional pins.
type problemGen struct{ P *Problem }

// Generate implements quick.Generator.
func (problemGen) Generate(r *rand.Rand, _ int) reflect.Value {
	k := 2 + r.Intn(3)
	devices := make([]DeviceInfo, k)
	for i := range devices {
		devices[i] = DeviceInfo{
			ID:    device.ID([]string{"alpha", "beta", "gamma", "delta"}[i]),
			Avail: resource.MB(32+float64(r.Intn(256)), 50+float64(r.Intn(400))),
		}
	}
	g := workload.MustRandomGraph(r, workload.GraphParams{
		MinNodes: 3, MaxNodes: 12,
		MinOutDegree: 1, MaxOutDegree: 3,
		MemMB: 12, CPUPct: 20, EdgeMbps: 3,
	})
	// Occasionally pin a node to a random device.
	if r.Intn(3) == 0 {
		nodes := g.Nodes()
		nodes[r.Intn(len(nodes))].Pin = string(devices[r.Intn(k)].ID)
	}
	bw := 20 + float64(r.Intn(100))
	p := &Problem{
		Graph:     g,
		Devices:   devices,
		Bandwidth: func(a, b device.ID) float64 { return bw },
		Weights:   workload.RandomWeights(r, resource.Dims),
	}
	return reflect.ValueOf(problemGen{P: p})
}

// qcfg keeps quick runs fast: every property re-solves a placement.
var qcfg = &quick.Config{MaxCount: 60}

func TestPropHeuristicOutputAlwaysFeasible(t *testing.T) {
	prop := func(g problemGen) bool {
		a, cost, err := Heuristic(g.P)
		if err != nil {
			return true // infeasible instances are allowed to fail
		}
		if g.P.FitInto(a) != nil {
			return false
		}
		return math.Abs(g.P.CostAggregation(a)-cost) < 1e-9
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropRandomAdmitOutputAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	prop := func(g problemGen) bool {
		a, _, err := RandomAdmit(g.P, rng)
		if err != nil {
			return true
		}
		return g.P.FitInto(a) == nil
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropCostAggregationNonNegative(t *testing.T) {
	prop := func(g problemGen) bool {
		a, _, err := Heuristic(g.P)
		if err != nil {
			return true
		}
		return g.P.CostAggregation(a) >= 0
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropLinkDemandsMatchCutThroughput(t *testing.T) {
	// The per-pair link demands must sum to the total throughput of the
	// cut edges.
	prop := func(g problemGen) bool {
		a, _, err := Heuristic(g.P)
		if err != nil {
			return true
		}
		var cutTotal float64
		for _, e := range g.P.CutEdges(a) {
			cutTotal += e.ThroughputMbps
		}
		var demandTotal float64
		for _, mbps := range g.P.LinkDemands(a) {
			demandTotal += mbps
		}
		return math.Abs(cutTotal-demandTotal) < 1e-9
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropDeviceLoadsMatchTotal(t *testing.T) {
	// Per-device loads must sum to the graph's total requirement.
	prop := func(g problemGen) bool {
		a, _, err := Heuristic(g.P)
		if err != nil {
			return true
		}
		loads := g.P.DeviceLoads(a)
		sum := resource.New(resource.Dims)
		for _, l := range loads {
			sum.AddInPlace(l)
		}
		total := g.P.Graph.TotalResources(resource.Dims)
		for i := range sum {
			if math.Abs(sum[i]-total[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropRefinePreservesFeasibilityAndImproves(t *testing.T) {
	prop := func(g problemGen) bool {
		a, cost, err := Heuristic(g.P)
		if err != nil {
			return true
		}
		ra, rcost, err := Refine(g.P, a, 0)
		if err != nil {
			return false
		}
		return g.P.FitInto(ra) == nil && rcost <= cost+1e-9
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropPinsAlwaysHonored(t *testing.T) {
	prop := func(g problemGen) bool {
		a, _, err := Heuristic(g.P)
		if err != nil {
			return true
		}
		for _, n := range g.P.Graph.Nodes() {
			if n.Pin == "" {
				continue
			}
			if g.P.Devices[a[n.ID]].ID != device.ID(n.Pin) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}
