package distributor

import (
	"fmt"
	"sort"

	"ubiqos/internal/graph"
)

// DefaultRefinePasses bounds the local-search passes of Refine.
const DefaultRefinePasses = 8

// Refine improves a feasible assignment by single-component moves: each
// pass scans the components in ID order and relocates a component to the
// device that most reduces the cost aggregation while preserving the
// fit-into constraints (pins are never moved). Passes repeat until a full
// scan makes no improvement or maxPasses is reached.
//
// Refine is an extension beyond the paper's greedy heuristic: the paper
// notes its heuristic trades optimality for polynomial time; a bounded
// local search recovers part of the gap at k·V·(V+E) cost per pass.
// The ablation benchmark BenchmarkAblationRefine quantifies the recovery
// on the Table 1 workload.
func Refine(p *Problem, a Assignment, maxPasses int) (Assignment, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if err := p.FitInto(a); err != nil {
		return nil, 0, fmt.Errorf("distributor: refine requires a feasible assignment: %w", err)
	}
	if maxPasses <= 0 {
		maxPasses = DefaultRefinePasses
	}

	cur := a.Clone()
	curCost := p.CostAggregation(cur)

	ids := make([]graph.NodeID, 0, len(cur))
	for id := range cur {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for _, id := range ids {
			n := p.Graph.Node(id)
			if n == nil || n.Pin != "" {
				continue
			}
			home := cur[id]
			bestDev, bestCost := home, curCost
			for d := range p.Devices {
				if d == home {
					continue
				}
				cur[id] = d
				if p.FitInto(cur) != nil {
					continue
				}
				if c := p.CostAggregation(cur); c < bestCost-costEqTolerance {
					bestDev, bestCost = d, c
				}
			}
			cur[id] = bestDev
			if bestDev != home {
				curCost = bestCost
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, curCost, nil
}

// costEqTolerance guards against oscillating on floating-point noise.
const costEqTolerance = 1e-12

// HeuristicRefined runs the paper's greedy heuristic followed by the
// local-search refinement — the strongest polynomial placement in this
// package. It satisfies the same PlaceFunc shape as the others.
func HeuristicRefined(p *Problem) (Assignment, float64, error) {
	a, _, err := Heuristic(p)
	if err != nil {
		return nil, 0, err
	}
	return Refine(p, a, DefaultRefinePasses)
}

// MoveCount reports how many components two assignments place differently
// — the migration cost of switching between them.
func MoveCount(a, b Assignment) int {
	n := 0
	for id, di := range a {
		if b[id] != di {
			n++
		}
	}
	return n
}
