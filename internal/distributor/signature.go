package distributor

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"
)

// Signature digests a Problem into a canonical hex string: concrete graph
// structure (node identities, resource requirements, QoS vectors, pins;
// edges with throughput), device capacities, the pairwise link-bandwidth
// matrix, and the significance weights. Every float is hashed by its
// exact bit pattern and every collection is hashed in sorted ID order, so
// two problems built in different insertion orders — or by different
// sessions — produce the same signature exactly when the distribution
// instance is the same. A cached assignment keyed by the signature is
// therefore valid for any problem that reproduces it.
func Signature(p *Problem) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	h := sha256.New()
	wu := func(v uint64) {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { wu(math.Float64bits(f)) }
	ws := func(s string) { wu(uint64(len(s))); writeString(h, s) }

	nodes := p.Graph.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	ws("nodes")
	wu(uint64(len(nodes)))
	for _, n := range nodes {
		ws(string(n.ID))
		ws(n.Type)
		ws(n.Instance)
		ws(n.Pin)
		ws(n.In.String())
		ws(n.Out.String())
		wu(uint64(len(n.Resources)))
		for _, r := range n.Resources {
			wf(r)
		}
	}

	edges := p.Graph.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	ws("edges")
	wu(uint64(len(edges)))
	for _, e := range edges {
		ws(string(e.From))
		ws(string(e.To))
		wf(e.ThroughputMbps)
	}

	devs := append([]DeviceInfo(nil), p.Devices...)
	sort.Slice(devs, func(i, j int) bool { return devs[i].ID < devs[j].ID })
	ws("devices")
	wu(uint64(len(devs)))
	for _, d := range devs {
		ws(string(d.ID))
		wu(uint64(len(d.Avail)))
		for _, a := range d.Avail {
			wf(a)
		}
	}

	ws("links")
	for i := 0; i < len(devs); i++ {
		for j := i + 1; j < len(devs); j++ {
			wf(p.Bandwidth(devs[i].ID, devs[j].ID))
		}
	}

	ws("weights")
	wu(uint64(len(p.Weights)))
	for _, w := range p.Weights {
		wf(w)
	}

	// The floor never changes the optimal cost, but it can change which
	// equally-optimal assignment the search returns, so the two modes
	// must not share cache entries.
	ws("netfloor")
	if p.NetworkFloor {
		wu(1)
	} else {
		wu(0)
	}

	return hex.EncodeToString(h.Sum(nil)), nil
}

func writeString(h hash.Hash, s string) {
	h.Write([]byte(s))
}
