package distributor

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ubiqos/internal/device"
	"ubiqos/internal/graph"
	"ubiqos/internal/resource"
)

// incumbentOf converts a solved assignment into the device-identity form
// the warm solver accepts.
func incumbentOf(p *Problem, a Assignment, cost float64) *Incumbent {
	inc := &Incumbent{Placement: make(map[graph.NodeID]device.ID, len(a)), Cost: cost}
	for id, di := range a {
		inc.Placement[id] = p.Devices[di].ID
	}
	return inc
}

// TestOptimalWarmKeepsIncumbentOnUnchangedProblem: warm-starting from the
// problem's own optimum must return that optimum verbatim (no equal-cost
// alternative may displace it) and never explore more than the cold solve
// did in aggregate — the first dive already lands on the final bound.
func TestOptimalWarmKeepsIncumbentOnUnchangedProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	devices := []DeviceInfo{
		{ID: "desktop", Avail: resource.MB(128, 200)},
		{ID: "laptop", Avail: resource.MB(64, 100)},
		{ID: "pda", Avail: resource.MB(24, 60)},
	}
	var coldTotal, warmTotal int64
	checked := 0
	for trial := 0; trial < 25; trial++ {
		p := randomTestProblem(rng, 9+rng.Intn(4), devices, 30)
		p.Stats = &SearchStats{}
		coldA, coldCost, err := Optimal(p)
		if err != nil {
			continue
		}
		coldStats := *p.Stats
		inc := incumbentOf(p, coldA, coldCost)
		p.Stats = &SearchStats{}
		warmA, warmCost, err := OptimalWarm(p, inc)
		if err != nil {
			t.Fatalf("trial %d: warm solve failed on feasible problem: %v", trial, err)
		}
		warmStats := *p.Stats
		if math.Float64bits(coldCost) != math.Float64bits(warmCost) {
			t.Fatalf("trial %d: warm cost %v != cold %v (bits differ)", trial, warmCost, coldCost)
		}
		if !reflect.DeepEqual(coldA, warmA) {
			t.Fatalf("trial %d: warm moved components on an unchanged problem:\n%v\n!= incumbent\n%v",
				trial, warmA, coldA)
		}
		if !warmStats.Warm || warmStats.Algorithm != "optimal-warm" {
			t.Fatalf("trial %d: stats not marked warm: %+v", trial, warmStats)
		}
		if warmStats.Reused != len(coldA) {
			t.Fatalf("trial %d: reused %d, want all %d placements", trial, warmStats.Reused, len(coldA))
		}
		if math.Float64bits(warmStats.SeedCost) != math.Float64bits(coldCost) {
			t.Fatalf("trial %d: seed cost %v, want %v", trial, warmStats.SeedCost, coldCost)
		}
		coldTotal += coldStats.Explored
		warmTotal += warmStats.Explored
		checked++
	}
	if checked == 0 {
		t.Fatal("no feasible instances drawn; adjust the seed")
	}
	if warmTotal > coldTotal {
		t.Errorf("warm explored %d nodes vs cold %d across %d instances; warm start should not search more on unchanged problems",
			warmTotal, coldTotal, checked)
	}
}

// TestOptimalWarmAfterDeviceLoss replays the recovery scenario: solve,
// lose the device hosting part of the plan, and warm-solve the shrunken
// problem from the stale incumbent. The warm result must be a true
// optimum of the new problem — equal to a cold solve's cost up to the
// ULP-level reordering of the incremental cost sum (the warm node order
// accumulates the same terms in a different order), with exactly the
// surviving placements reported as reused.
func TestOptimalWarmAfterDeviceLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	// Tight capacities: no single device can hold the whole graph, so the
	// optimum genuinely splits and losing a device strands components.
	devices := []DeviceInfo{
		{ID: "desktop", Avail: resource.MB(64, 96)},
		{ID: "laptop", Avail: resource.MB(56, 80)},
		{ID: "pda", Avail: resource.MB(48, 72)},
	}
	checked := 0
	for trial := 0; trial < 25; trial++ {
		p := randomTestProblem(rng, 9+rng.Intn(4), devices, 30)
		oldA, oldCost, err := Optimal(p)
		if err != nil {
			continue
		}
		// Lose the first device that hosts some but not all components.
		lost := -1
		used := make(map[int]int)
		for _, di := range oldA {
			used[di]++
		}
		for di := range p.Devices {
			if n := used[di]; n > 0 && n < len(oldA) {
				lost = di
				break
			}
		}
		if lost < 0 {
			continue
		}
		p2 := &Problem{
			Graph:     p.Graph,
			Devices:   append(append([]DeviceInfo(nil), p.Devices[:lost]...), p.Devices[lost+1:]...),
			Bandwidth: p.Bandwidth,
			Weights:   p.Weights,
		}
		coldA, coldCost, coldErr := Optimal(p2)
		p2.Stats = &SearchStats{}
		// The incumbent is handed over stale — entries on the lost device
		// included — and the solver must drop them itself.
		warmA, warmCost, warmErr := OptimalWarm(p2, incumbentOf(p, oldA, oldCost))
		if (coldErr == nil) != (warmErr == nil) {
			t.Fatalf("trial %d: cold err %v, warm err %v", trial, coldErr, warmErr)
		}
		if coldErr != nil {
			if !errors.Is(warmErr, ErrInfeasible) {
				t.Fatalf("trial %d: want ErrInfeasible, got %v", trial, warmErr)
			}
			continue
		}
		if diff := math.Abs(coldCost - warmCost); diff > 1e-9*math.Max(coldCost, 1) {
			t.Fatalf("trial %d: warm cost %v is not the optimum %v", trial, warmCost, coldCost)
		}
		if err := p2.FitInto(warmA); err != nil {
			t.Fatalf("trial %d: warm assignment does not fit: %v", trial, err)
		}
		if want := len(oldA) - used[lost]; p2.Stats.Reused != want {
			t.Fatalf("trial %d: reused %d, want the %d surviving placements", trial, p2.Stats.Reused, want)
		}
		checked++
		_ = coldA
	}
	if checked == 0 {
		t.Fatal("no recoverable instances drawn; adjust the seed")
	}
}

// TestOptimalWarmKeepsUnaffectedOnTies pins down the tie-breaking
// contract with exact arithmetic: two identical components on two
// identical devices cost the same under any placement (all values are
// powers of two, so the costs are bit-identical), the cold solver picks
// the lexicographically-first optimum, and the warm solver must instead
// keep the different — but equally cheap — incumbent placement.
func TestOptimalWarmKeepsUnaffectedOnTies(t *testing.T) {
	g := graph.New()
	g.MustAddNode(&graph.Node{ID: "a", Type: "component", Resources: resource.MB(16, 16)})
	g.MustAddNode(&graph.Node{ID: "b", Type: "component", Resources: resource.MB(16, 16)})
	w, err := resource.NewWeights(0.25, 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Graph: g,
		Devices: []DeviceInfo{
			{ID: "d1", Avail: resource.MB(64, 64)},
			{ID: "d2", Avail: resource.MB(64, 64)},
		},
		Bandwidth: func(a, b device.ID) float64 { return 100 },
		Weights:   w,
	}
	coldA, coldCost, err := Optimal(p)
	if err != nil {
		t.Fatal(err)
	}
	inc := &Incumbent{
		Placement: map[graph.NodeID]device.ID{"a": "d2", "b": "d1"},
		Cost:      coldCost,
	}
	want := Assignment{"a": 1, "b": 0}
	if reflect.DeepEqual(coldA, want) {
		t.Fatalf("test premise broken: cold solver already picked the incumbent %v", coldA)
	}
	warmA, warmCost, err := OptimalWarm(p, inc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(warmCost) != math.Float64bits(coldCost) {
		t.Fatalf("tied optima should cost the same: warm %v, cold %v", warmCost, coldCost)
	}
	if !reflect.DeepEqual(warmA, want) {
		t.Fatalf("warm solver moved unaffected components on a tie: got %v, want incumbent %v", warmA, want)
	}
}

// TestOptimalWarmFiltersInvalidEntries: incumbent entries naming unknown
// nodes, absent devices, or contradicting a pin are dropped rather than
// trusted.
func TestOptimalWarmFiltersInvalidEntries(t *testing.T) {
	g := graph.New()
	g.MustAddNode(&graph.Node{ID: "a", Type: "component", Resources: resource.MB(8, 8), Pin: "d1"})
	g.MustAddNode(&graph.Node{ID: "b", Type: "component", Resources: resource.MB(8, 8)})
	w, err := resource.NewWeights(0.25, 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Graph: g,
		Devices: []DeviceInfo{
			{ID: "d1", Avail: resource.MB(64, 64)},
			{ID: "d2", Avail: resource.MB(64, 64)},
		},
		Bandwidth: func(a, b device.ID) float64 { return 100 },
		Weights:   w,
		Stats:     &SearchStats{},
	}
	inc := &Incumbent{Placement: map[graph.NodeID]device.ID{
		"a":     "d2",   // contradicts the pin
		"b":     "gone", // device no longer offered
		"ghost": "d1",   // node no longer in the graph
	}}
	a, _, err := OptimalWarm(p, inc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Reused != 0 {
		t.Fatalf("reused %d entries, want none (all invalid)", p.Stats.Reused)
	}
	if a["a"] != 0 {
		t.Fatalf("pinned node placed on %d, want its pin", a["a"])
	}
	// With no surviving entry the solve degrades to cold and must not be
	// labeled warm.
	if p.Stats.Warm {
		t.Error("an all-invalid incumbent must degrade to a cold solve")
	}
}
