package distributor

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ubiqos/internal/obslog"
	"ubiqos/internal/trace"
)

// sharedBound is the incumbent best cost shared by all parallel workers,
// stored as math.Float64bits in an atomic word. Costs are nonnegative, so
// the IEEE-754 ordering of their bit patterns matches the numeric
// ordering and a CAS loop can monotonically lower the bound.
type sharedBound struct {
	bits atomic.Uint64
}

func newSharedBound() *sharedBound {
	b := &sharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *sharedBound) load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// lower moves the bound down to c if c is smaller; concurrent callers
// converge on the minimum.
func (b *sharedBound) lower(c float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= c {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(c)) {
			return
		}
	}
}

// ParallelOptions tunes OptimalWith.
type ParallelOptions struct {
	// Workers is the worker-pool size; 0 means runtime.NumCPU(), and any
	// value ≤ 1 falls back to the sequential Optimal solver.
	Workers int
	// FrontierDepth fixes the depth at which the search tree is split
	// into independent subtree tasks. 0 picks the smallest depth whose
	// feasible frontier has at least tasksPerWorker tasks per worker.
	FrontierDepth int
}

// tasksPerWorker oversubscribes the pool so uneven subtree sizes (pruning
// makes some subtrees trivial) still keep every worker busy.
const tasksPerWorker = 8

// OptimalParallel is Optimal with the branch-and-bound tree explored by a
// bounded worker pool. It returns the identical assignment and bit-identical
// cost to Optimal on every problem; see OptimalWith for how.
func OptimalParallel(p *Problem, workers int) (Assignment, float64, error) {
	return OptimalWith(p, ParallelOptions{Workers: workers})
}

// OptimalWith runs the exact branch-and-bound search in parallel: the tree
// is split at a frontier depth into independent subtree tasks, and workers
// prune against a shared atomic incumbent so a good solution found in any
// subtree tightens the bound everywhere.
//
// The result is deterministic and identical to Optimal:
//
//   - A complete assignment's cost is the sum of per-node deltas in node
//     order along its path, the same additions in the same order whether
//     the prefix was replayed by a worker or reached sequentially, so
//     costs are bit-identical.
//   - Backtracking restores state from snapshots (see obbState), so every
//     searcher observes identical feasibility decisions.
//   - Optimal returns the lexicographically first optimum in device-index
//     order (the first min-cost leaf its DFS reaches). Workers prune only
//     strictly above the shared bound, so an equal-cost optimum in a
//     lexicographically earlier subtree is never lost, and the final
//     reduce picks the minimum cost with ties broken by lexicographic
//     assignment order — exactly the sequential answer.
func OptimalWith(p *Problem, opt ParallelOptions) (Assignment, float64, error) {
	workers := opt.Workers
	if workers == 0 {
		// Default to the hardware parallelism actually usable; on a
		// single-CPU box (or GOMAXPROCS=1) that is the sequential path.
		workers = runtime.NumCPU()
		if mp := runtime.GOMAXPROCS(0); mp < workers {
			workers = mp
		}
	}
	if workers <= 1 {
		return Optimal(p)
	}
	base, err := newOBBState(p)
	if err != nil {
		return nil, 0, err
	}
	tasks := base.frontier(opt.FrontierDepth, workers*tasksPerWorker)
	if len(tasks) == 0 {
		return nil, 0, ErrInfeasible
	}
	if len(tasks) == 1 && len(tasks[0]) == 0 {
		// Degenerate frontier (e.g. zero-node graph): run sequentially.
		base.search(0, 0)
		if p.Stats != nil {
			w := base.counters(0, 1)
			*p.Stats = SearchStats{Algorithm: "optimal", Workers: 1,
				Explored: w.Explored, Pruned: w.Pruned, Incumbents: w.Incumbents,
				BoundTrajectory: append([]float64(nil), base.trajectory...),
				RunnerUp:        runnerUp(base.trajectory)}
		}
		return base.result()
	}

	sp := p.Span.Child("branch-and-bound-parallel",
		trace.Int("workers", int64(workers)), trace.Int("tasks", int64(len(tasks))),
		trace.Int("frontierDepth", int64(len(tasks[0]))))
	type taskBest struct {
		cost   float64
		assign []int
	}
	bound := newSharedBound()
	results := make([]*taskBest, len(tasks)) // indexed by task, so the reduce is order-independent
	wstats := make([]WorkerStats, workers)
	trajs := make([][]float64, workers)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			span := sp.Child("bnb-worker", trace.Int("worker", int64(w)))
			var s *obbState
			pulled := 0
			for ti := range next {
				pulled++
				if s == nil {
					s = base.clone()
					s.global = bound
				} else {
					s.best = math.Inf(1)
					s.bestAssign = nil
				}
				if s.runTask(tasks[ti]) && s.bestAssign != nil {
					results[ti] = &taskBest{
						cost:   s.best,
						assign: append([]int(nil), s.bestAssign...),
					}
				}
			}
			if s != nil {
				wstats[w] = s.counters(w, pulled)
				trajs[w] = s.trajectory
			} else {
				wstats[w] = WorkerStats{Worker: w}
			}
			span.Set(trace.Int("tasks", int64(wstats[w].Tasks)),
				trace.Int("explored", wstats[w].Explored),
				trace.Int("pruned", wstats[w].Pruned),
				trace.Int("incumbents", wstats[w].Incumbents))
			span.End()
		}(w)
	}
	for ti := range tasks {
		next <- ti
	}
	close(next)
	wg.Wait()

	var explored, prunedN, incumbents int64
	for _, ws := range wstats {
		explored += ws.Explored
		prunedN += ws.Pruned
		incumbents += ws.Incumbents
	}
	sp.Set(trace.Int("explored", explored), trace.Int("pruned", prunedN),
		trace.Int("incumbents", incumbents))
	sp.End()
	p.Log.Debug("parallel branch-and-bound solved",
		obslog.Int("workers", int64(workers)), obslog.Int("tasks", int64(len(tasks))),
		obslog.Int("explored", explored), obslog.Int("pruned", prunedN),
		obslog.Int("incumbents", incumbents))
	// Deterministic reduce: minimum cost, ties to the lexicographically
	// smallest assignment. Tasks are enumerated in lexicographic prefix
	// order and each task's DFS finds its lexicographically first optimum,
	// so comparing whole assignment vectors reproduces sequential order.
	best := math.Inf(1)
	var bestAssign []int
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.cost < best || (r.cost == best && lexLess(r.assign, bestAssign)) {
			best = r.cost
			bestAssign = r.assign
		}
	}
	if p.Stats != nil {
		*p.Stats = SearchStats{
			Algorithm:       "optimal-parallel",
			Workers:         workers,
			FrontierDepth:   len(tasks[0]),
			Tasks:           len(tasks),
			Explored:        explored,
			Pruned:          prunedN,
			Incumbents:      incumbents,
			PerWorker:       wstats,
			BoundTrajectory: mergeTrajectories(trajs),
		}
		if bestAssign != nil {
			p.Stats.RunnerUp = runnerUpAbove(p.Stats.BoundTrajectory, best)
		}
	}
	if bestAssign == nil {
		return nil, 0, ErrInfeasible
	}
	out := make(Assignment, len(base.nodes))
	for i, n := range base.nodes {
		out[n.ID] = bestAssign[i]
	}
	return out, best, nil
}

// mergeTrajectories flattens per-worker incumbent trajectories into one
// best-last sequence. Worker interleaving has no global chronological
// order, so the merge sorts worst-first (mirroring how a sequential
// search improves), deduplicates, and keeps the best TrajectoryCap
// entries.
func mergeTrajectories(trajs [][]float64) []float64 {
	var all []float64
	for _, t := range trajs {
		all = append(all, t...)
	}
	if len(all) == 0 {
		return nil
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	out := all[:1]
	for _, v := range all[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	if len(out) > TrajectoryCap {
		out = out[len(out)-TrajectoryCap:]
	}
	return out
}

// runnerUpAbove returns the smallest trajectory cost strictly worse than
// the winning cost (0 when the search never saw a second-best solution).
// merged must be sorted descending, as mergeTrajectories produces.
func runnerUpAbove(merged []float64, best float64) float64 {
	ru := 0.0
	for _, v := range merged {
		if v > best {
			ru = v
		}
	}
	return ru
}

// lexLess reports whether a comes before b in lexicographic device-index
// order. A nil b never wins.
func lexLess(a, b []int) bool {
	if b == nil {
		return a != nil
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// runTask replays a frontier prefix onto this searcher's (root) state and
// explores the subtree below it. It reports whether the replay succeeded;
// replay cannot fail for prefixes produced by frontier on the same
// problem, but the check keeps the contract explicit.
func (s *obbState) runTask(prefix []int) bool {
	cost := 0.0
	placed := 0
	ok := true
	for i, d := range prefix {
		delta, fits := s.tryPlace(i, d)
		if !fits {
			ok = false
			break
		}
		s.explored++ // replayed prefix nodes are search-tree nodes too
		cost += delta
		placed++
	}
	if ok {
		s.search(len(prefix), cost)
	}
	for i := placed - 1; i >= 0; i-- {
		s.unplace(i, prefix[i])
	}
	return ok
}

// frontier enumerates all feasible assignment prefixes at a split depth,
// in lexicographic device-index order. With depth 0 it deepens until the
// task list is at least minTasks long (or the depth hits the node count,
// in which case tasks are complete assignments and workers only evaluate
// them). An explicit depth is clamped to [0, len(nodes)].
func (s *obbState) frontier(depth, minTasks int) [][]int {
	n := len(s.nodes)
	if depth < 0 {
		depth = 0
	}
	if depth > n {
		depth = n
	}
	if depth > 0 {
		return s.enumerate(depth)
	}
	tasks := [][]int{{}}
	for d := 1; d <= n; d++ {
		next := s.enumerate(d)
		if len(next) == 0 {
			// No feasible prefix at this depth ⇒ the problem is
			// infeasible; report the empty frontier.
			return nil
		}
		tasks = next
		if len(tasks) >= minTasks {
			break
		}
	}
	return tasks
}

// enumerate collects every feasible prefix of the given depth by a
// depth-first walk identical in order to search, without cost pruning.
func (s *obbState) enumerate(depth int) [][]int {
	var out [][]int
	var walk func(i int)
	walk = func(i int) {
		if i == depth {
			out = append(out, append([]int(nil), s.assign[:depth]...))
			return
		}
		for d := range s.p.Devices {
			if s.pin[i] >= 0 && s.pin[i] != d {
				continue
			}
			if _, ok := s.tryPlace(i, d); ok {
				walk(i + 1)
				s.unplace(i, d)
			}
		}
	}
	walk(0)
	return out
}
