package distributor

// lruCache is a small bounded string-keyed map with least-recently-used
// eviction, shared by the PlanCache and the Fixed baseline. It is not
// internally synchronized; callers hold their own lock.
type lruCache[V any] struct {
	capacity   int
	items      map[string]*lruNode[V]
	head, tail *lruNode[V] // head = most recently used
}

type lruNode[V any] struct {
	key        string
	val        V
	prev, next *lruNode[V]
}

// newLRU returns an empty cache holding at most capacity entries
// (capacity < 1 is clamped to 1).
func newLRU[V any](capacity int) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{capacity: capacity, items: make(map[string]*lruNode[V])}
}

func (c *lruCache[V]) len() int { return len(c.items) }

func (c *lruCache[V]) cap() int { return c.capacity }

// get returns the value for key and marks it most recently used.
func (c *lruCache[V]) get(key string) (V, bool) {
	n, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

// put inserts or refreshes key and reports whether an older entry was
// evicted to make room.
func (c *lruCache[V]) put(key string, val V) (evicted bool) {
	if n, ok := c.items[key]; ok {
		n.val = val
		c.moveToFront(n)
		return false
	}
	n := &lruNode[V]{key: key, val: val}
	c.items[key] = n
	c.pushFront(n)
	if len(c.items) > c.capacity {
		c.removeNode(c.tail)
		return true
	}
	return false
}

// delete removes key and reports whether it was present.
func (c *lruCache[V]) delete(key string) bool {
	n, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeNode(n)
	return true
}

// each visits every entry in most-recently-used order; returning false
// stops the walk. The callback must not mutate the cache.
func (c *lruCache[V]) each(fn func(key string, val V) bool) {
	for n := c.head; n != nil; n = n.next {
		if !fn(n.key, n.val) {
			return
		}
	}
}

// clear drops every entry and returns how many were held.
func (c *lruCache[V]) clear() int {
	n := len(c.items)
	c.items = make(map[string]*lruNode[V])
	c.head, c.tail = nil, nil
	return n
}

func (c *lruCache[V]) pushFront(n *lruNode[V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache[V]) moveToFront(n *lruNode[V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *lruCache[V]) removeNode(n *lruNode[V]) {
	c.unlink(n)
	delete(c.items, n.key)
}

func (c *lruCache[V]) unlink(n *lruNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
}
