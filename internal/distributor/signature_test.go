package distributor

import (
	"testing"

	"ubiqos/internal/device"
	"ubiqos/internal/graph"
	"ubiqos/internal/qos"
	"ubiqos/internal/resource"
)

// sigFixture builds one small concrete problem; nodeOrder and devOrder
// permute the insertion orders without changing the instance itself.
func sigFixture(t *testing.T, nodeOrder, devOrder []int, mutate func(p *Problem)) *Problem {
	t.Helper()
	type nodeSpec struct {
		id  graph.NodeID
		res resource.Vector
		pin string
	}
	nodes := []nodeSpec{
		{id: "src", res: resource.MB(8, 12)},
		{id: "mid", res: resource.MB(6, 10)},
		{id: "snk", res: resource.MB(4, 6), pin: "pda"},
	}
	g := graph.New()
	for _, i := range nodeOrder {
		n := nodes[i]
		g.MustAddNode(&graph.Node{
			ID: n.id, Type: "component", Resources: n.res, Pin: n.pin,
			Out: qos.Vector{}.With("framerate", qos.Scalar(30)),
		})
	}
	g.MustAddEdge("src", "mid", 1.5)
	g.MustAddEdge("mid", "snk", 1.0)
	devs := []DeviceInfo{
		{ID: "pc", Avail: resource.MB(96, 160)},
		{ID: "pda", Avail: resource.MB(32, 90)},
	}
	ordered := make([]DeviceInfo, 0, len(devs))
	for _, i := range devOrder {
		ordered = append(ordered, DeviceInfo{ID: devs[i].ID, Avail: devs[i].Avail.Clone()})
	}
	w, err := resource.NewWeights(0.3, 0.3, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Graph:     g,
		Devices:   ordered,
		Bandwidth: func(a, b device.ID) float64 { return 40 },
		Weights:   w,
	}
	if mutate != nil {
		mutate(p)
	}
	return p
}

func mustSig(t *testing.T, p *Problem) string {
	t.Helper()
	sig, err := Signature(p)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// TestSignatureOrderIndependence: the signature is canonical — insertion
// order of nodes and declaration order of devices must not matter.
func TestSignatureOrderIndependence(t *testing.T) {
	base := mustSig(t, sigFixture(t, []int{0, 1, 2}, []int{0, 1}, nil))
	for _, tc := range []struct {
		name  string
		nodes []int
		devs  []int
	}{
		{"nodes reversed", []int{2, 1, 0}, []int{0, 1}},
		{"devices swapped", []int{0, 1, 2}, []int{1, 0}},
		{"both permuted", []int{1, 2, 0}, []int{1, 0}},
	} {
		if got := mustSig(t, sigFixture(t, tc.nodes, tc.devs, nil)); got != base {
			t.Errorf("%s: signature %s != base %s", tc.name, got, base)
		}
	}
}

// TestSignatureSensitivity: every input the solution depends on must
// change the signature.
func TestSignatureSensitivity(t *testing.T) {
	base := mustSig(t, sigFixture(t, []int{0, 1, 2}, []int{0, 1}, nil))
	mutations := map[string]func(p *Problem){
		"device availability": func(p *Problem) { p.Devices[0].Avail[0] += 1 },
		"link bandwidth":      func(p *Problem) { p.Bandwidth = func(a, b device.ID) float64 { return 39 } },
		"weights": func(p *Problem) {
			w, err := resource.NewWeights(0.4, 0.3, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			p.Weights = w
		},
		"node resources":  func(p *Problem) { p.Graph.Node("mid").Resources[1] += 0.5 },
		"edge throughput": func(p *Problem) { p.Graph.Edges(); mutateEdge(t, p) },
		"node pin":        func(p *Problem) { p.Graph.Node("mid").Pin = "pc" },
		"node qos":        func(p *Problem) { p.Graph.Node("src").Out = p.Graph.Node("src").Out.With("framerate", qos.Scalar(25)) },
	}
	for name, mutate := range mutations {
		if got := mustSig(t, sigFixture(t, []int{0, 1, 2}, []int{0, 1}, mutate)); got == base {
			t.Errorf("mutating %s did not change the signature", name)
		}
	}
}

// mutateEdge rebuilds the fixture graph with a different src→mid
// throughput (edges are immutable once added).
func mutateEdge(t *testing.T, p *Problem) {
	t.Helper()
	g := graph.New()
	for _, n := range p.Graph.Nodes() {
		cp := *n
		g.MustAddNode(&cp)
	}
	for _, e := range p.Graph.Edges() {
		tp := e.ThroughputMbps
		if e.From == "src" {
			tp += 0.25
		}
		g.MustAddEdge(e.From, e.To, tp)
	}
	p.Graph = g
}

// TestSignatureInvalidProblem: an unvalidatable problem has no signature.
func TestSignatureInvalidProblem(t *testing.T) {
	if _, err := Signature(&Problem{}); err == nil {
		t.Error("empty problem should not produce a signature")
	}
}
