package distributor

import (
	"math"

	"ubiqos/internal/graph"
	"ubiqos/internal/obslog"
	"ubiqos/internal/resource"
	"ubiqos/internal/trace"
)

// Optimal finds the minimum-cost-aggregation feasible k-cut by exhaustive
// branch-and-bound search. The optimal service distribution problem is
// NP-hard (Theorem 1), so this solver is intended for the small instances
// of the paper's Table 1 comparison (10–20 components, 2 devices) and as a
// test oracle; the search prunes on partial resource violations and on
// partial cost exceeding the best complete solution.
//
// Among equal-cost optima, Optimal returns the assignment that comes first
// in the lexicographic device-index order over the solver's node order —
// the first optimum its depth-first search reaches. OptimalParallel
// preserves this tie-break exactly.
func Optimal(p *Problem) (Assignment, float64, error) {
	s, err := newOBBState(p)
	if err != nil {
		return nil, 0, err
	}
	sp := p.Span.Child("branch-and-bound")
	s.search(0, 0)
	w := s.counters(0, 1)
	sp.Set(trace.Int("explored", w.Explored), trace.Int("pruned", w.Pruned),
		trace.Int("incumbents", w.Incumbents))
	sp.End()
	p.Log.Debug("branch-and-bound solved",
		obslog.Int("explored", w.Explored), obslog.Int("pruned", w.Pruned),
		obslog.Int("incumbents", w.Incumbents))
	if p.Stats != nil {
		*p.Stats = SearchStats{
			Algorithm:       "optimal",
			Workers:         1,
			Explored:        w.Explored,
			Pruned:          w.Pruned,
			Incumbents:      w.Incumbents,
			BoundTrajectory: append([]float64(nil), s.trajectory...),
			RunnerUp:        runnerUp(s.trajectory),
		}
	}
	return s.result()
}

// runnerUp returns the second-to-last incumbent cost of a chronological
// trajectory — the best complete solution the winner displaced.
func runnerUp(trajectory []float64) float64 {
	if len(trajectory) < 2 {
		return 0
	}
	return trajectory[len(trajectory)-2]
}

type obbEdge struct {
	other int
	tp    float64
}

// obbState is one branch-and-bound search context. The first block of
// fields is immutable problem structure shared (read-only) between the
// sequential solver and every parallel worker; the second block is the
// per-searcher mutable state that clone() copies.
type obbState struct {
	p     *Problem
	m     int
	nodes []*graph.Node
	index map[graph.NodeID]int
	adj   [][]obbEdge
	pin   []int
	bw    [][]float64

	// sufMin[i] is an admissible lower bound on the cost still to be paid
	// by nodes i..: the sum over those nodes of the cheapest end-system
	// term any statically-fitting (and pin-compatible) device offers. The
	// network term is nonnegative, so partial cost + sufMin[i] never
	// exceeds the cost of any feasible completion — pruning on it removes
	// only paths that cannot beat (or tie earlier than) the incumbent,
	// leaving the returned optimum bit-identical.
	sufMin []float64

	// pref, when non-nil, names a preferred device index per node position
	// that search tries before the plain increasing-index scan (warm
	// start). nil for cold solves, whose device order is unchanged.
	pref []int

	loads  []resource.Vector
	pairTP [][]float64 // symmetric cumulative cut throughput

	// savedLoad[i] and savedTP[i] snapshot the placed device's load vector
	// and pairTP row before node i is placed, so backtracking restores the
	// exact prior bits. Add-then-subtract backtracking is not exact in
	// floating point ((x+r)−r may differ from x), and any drift would make
	// a sequential search and a parallel worker replaying the same prefix
	// disagree on feasibility comparisons.
	savedLoad []resource.Vector
	savedTP   [][]float64

	assign     []int
	best       float64
	bestAssign []int

	// trajectory records the incumbent costs in the order this searcher
	// found them (bounded to TrajectoryCap, oldest dropped) — the bound
	// trajectory reported via SearchStats.
	trajectory []float64

	// global, when non-nil, is the incumbent best cost shared by all
	// parallel workers; searchers additionally prune against it (strictly,
	// so equal-cost optima in lexicographically earlier subtrees survive
	// for the deterministic reduce).
	global *sharedBound

	// Search counters (observability only — they never influence the
	// search, so determinism of the result is untouched). explored counts
	// successful placements inside search, prunedN bound cut-offs, and
	// incumbents best-so-far updates.
	explored   int64
	prunedN    int64
	incumbents int64
}

// newOBBState validates the problem and builds a fresh search state:
// nodes sorted big-first for pruning strength, internal adjacency for
// incremental cost updates, and empty device loads/reservations.
func newOBBState(p *Problem) (*obbState, error) {
	return newOBBStateOrdered(p, nil)
}

// newOBBStateOrdered is newOBBState with an explicit node order (nil means
// the default big-first order). The warm-start solver passes a
// still-valid-placements-first permutation; every order yields a correct
// optimum, only the tie-break among equal-cost optima moves.
func newOBBStateOrdered(p *Problem, order []*graph.Node) (*obbState, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seed, err := p.pinnedAssignment()
	if err != nil {
		return nil, err
	}

	if order == nil {
		order = p.sortedNodesByRequirement() // big components first: stronger pruning
	}
	s := &obbState{
		p:     p,
		m:     p.Weights.Dims(),
		nodes: order,
		best:  math.Inf(1),
	}
	s.index = make(map[graph.NodeID]int, len(s.nodes))
	for i, n := range s.nodes {
		s.index[n.ID] = i
	}
	s.adj = make([][]obbEdge, len(s.nodes))
	for _, e := range p.Graph.Edges() {
		fi, ti := s.index[e.From], s.index[e.To]
		s.adj[fi] = append(s.adj[fi], obbEdge{other: ti, tp: e.ThroughputMbps})
		s.adj[ti] = append(s.adj[ti], obbEdge{other: fi, tp: e.ThroughputMbps})
	}
	s.loads = make([]resource.Vector, len(p.Devices))
	for i := range s.loads {
		s.loads[i] = resource.New(s.m)
	}
	s.pairTP = make([][]float64, len(p.Devices))
	for i := range s.pairTP {
		s.pairTP[i] = make([]float64, len(p.Devices))
	}
	s.bw = make([][]float64, len(p.Devices))
	for i := range s.bw {
		s.bw[i] = make([]float64, len(p.Devices))
		for j := range s.bw[i] {
			if i != j {
				s.bw[i][j] = p.Bandwidth(p.Devices[i].ID, p.Devices[j].ID)
			}
		}
	}
	s.assign = make([]int, len(s.nodes))
	for i := range s.assign {
		s.assign[i] = -1
	}
	s.pin = make([]int, len(s.nodes))
	for i, n := range s.nodes {
		s.pin[i] = -1
		if di, ok := seed[n.ID]; ok {
			s.pin[i] = di
		}
	}
	s.savedLoad = make([]resource.Vector, len(s.nodes))
	s.savedTP = make([][]float64, len(s.nodes))
	for i := range s.nodes {
		s.savedLoad[i] = resource.New(s.m)
		s.savedTP[i] = make([]float64, len(p.Devices))
	}

	// netFloor[i] (opt-in via Problem.NetworkFloor) is an admissible
	// lower bound on the network cost that first becomes payable when
	// node i is placed: every edge whose two endpoints cannot colocate on
	// any device (pins and static capacity considered, devices taken
	// empty) must cross some link, and the cheapest it can ever be is its
	// throughput over the best bandwidth a pin-compatible device pair
	// offers. The bound is charged to the later-ordered endpoint —
	// exactly where tryPlace pays the real cost — so partial cost plus
	// suffix never double-counts an edge.
	fits := func(n *graph.Node, d int) bool {
		avail := p.Devices[d].Avail
		for dim := 0; dim < s.m; dim++ {
			if n.Resources[dim] > avail[dim] {
				return false
			}
		}
		return true
	}
	wNet := p.Weights.Network()
	netFloor := make([]float64, len(s.nodes))
	for _, e := range p.Graph.Edges() {
		if !p.NetworkFloor {
			break
		}
		if e.ThroughputMbps <= 0 {
			continue
		}
		fi, ti := s.index[e.From], s.index[e.To]
		from, to := s.nodes[fi], s.nodes[ti]
		colocatable := false
		for d := range p.Devices {
			if s.pin[fi] >= 0 && s.pin[fi] != d {
				continue
			}
			if s.pin[ti] >= 0 && s.pin[ti] != d {
				continue
			}
			avail := p.Devices[d].Avail
			ok := true
			for dim := 0; dim < s.m; dim++ {
				if from.Resources[dim]+to.Resources[dim] > avail[dim] {
					ok = false
					break
				}
			}
			if ok {
				colocatable = true
				break
			}
		}
		if colocatable {
			continue
		}
		// The edge must cross: find the best bandwidth any compatible
		// device pair offers.
		maxBW := 0.0
		for d1 := range p.Devices {
			if s.pin[fi] >= 0 && s.pin[fi] != d1 {
				continue
			}
			if !fits(from, d1) {
				continue
			}
			for d2 := range p.Devices {
				if d1 == d2 {
					continue
				}
				if s.pin[ti] >= 0 && s.pin[ti] != d2 {
					continue
				}
				if !fits(to, d2) {
					continue
				}
				if b := s.bw[d1][d2]; b > maxBW {
					maxBW = b
				}
			}
		}
		if maxBW > 0 {
			late := fi
			if ti > fi {
				late = ti
			}
			netFloor[late] += wNet * e.ThroughputMbps / maxBW
		}
	}

	// Suffix lower bound: for each node, the cheapest end-system cost any
	// device it could ever land on (statically fitting an empty device,
	// pin respected) would charge, plus the node's forced-crossing network
	// floor. A node no device can hold makes the whole suffix +Inf, which
	// prunes the root immediately — correct, since no feasible completion
	// exists.
	s.sufMin = make([]float64, len(s.nodes)+1)
	wEnd := p.Weights.EndSystem()
	for i := len(s.nodes) - 1; i >= 0; i-- {
		n := s.nodes[i]
		minLoad := math.Inf(1)
		for d := range p.Devices {
			if s.pin[i] >= 0 && s.pin[i] != d {
				continue
			}
			if !fits(n, d) {
				continue
			}
			if l := n.Resources.RelativeLoad(p.Devices[d].Avail, wEnd); l < minLoad {
				minLoad = l
			}
		}
		s.sufMin[i] = minLoad + netFloor[i] + s.sufMin[i+1]
	}
	return s, nil
}

// clone copies the mutable search state (loads, reservations, partial
// assignment, snapshot scratch) and shares the immutable problem
// structure, giving each parallel worker an independent searcher. It must
// be called on a root state (nothing placed), since the snapshot stacks of
// a mid-search state only make sense for that searcher's own prefix.
func (s *obbState) clone() *obbState {
	c := *s
	c.loads = make([]resource.Vector, len(s.loads))
	for i := range s.loads {
		c.loads[i] = s.loads[i].Clone()
	}
	c.pairTP = make([][]float64, len(s.pairTP))
	for i := range s.pairTP {
		c.pairTP[i] = append([]float64(nil), s.pairTP[i]...)
	}
	c.assign = append([]int(nil), s.assign...)
	c.savedLoad = make([]resource.Vector, len(s.nodes))
	c.savedTP = make([][]float64, len(s.nodes))
	for i := range s.nodes {
		c.savedLoad[i] = resource.New(s.m)
		c.savedTP[i] = make([]float64, len(s.p.Devices))
	}
	c.bestAssign = nil
	c.best = math.Inf(1)
	c.trajectory = nil
	return &c
}

// result converts the best complete assignment found back to node IDs.
func (s *obbState) result() (Assignment, float64, error) {
	if s.bestAssign == nil {
		return nil, 0, ErrInfeasible
	}
	out := make(Assignment, len(s.nodes))
	for i, n := range s.nodes {
		out[n.ID] = s.bestAssign[i]
	}
	return out, s.best, nil
}

// tryPlace puts node i on device d if the placement stays feasible,
// returning the incremental cost: the component's weighted relative load
// plus the network term of every edge to an already-assigned neighbor on
// another device. Bandwidth feasibility is checked as the reservations
// accumulate; on failure every reservation applied so far is rolled back
// and ok is false.
func (s *obbState) tryPlace(i, d int) (delta float64, ok bool) {
	n := s.nodes[i]
	avail := s.p.Devices[d].Avail
	for dim := 0; dim < s.m; dim++ {
		if s.loads[d][dim]+n.Resources[dim] > avail[dim] {
			return 0, false
		}
	}
	copy(s.savedLoad[i], s.loads[d])
	copy(s.savedTP[i], s.pairTP[d])
	delta = n.Resources.RelativeLoad(avail, s.p.Weights.EndSystem())
	wNet := s.p.Weights.Network()
	for _, e := range s.adj[i] {
		od := s.assign[e.other]
		if od < 0 || od == d {
			continue
		}
		if s.bw[d][od] <= 0 || s.pairTP[d][od]+e.tp > s.bw[d][od] {
			s.restoreTP(i, d)
			return 0, false
		}
		delta += wNet * e.tp / s.bw[d][od]
		s.pairTP[d][od] += e.tp
		s.pairTP[od][d] += e.tp
	}
	s.loads[d].AddInPlace(n.Resources)
	s.assign[i] = d
	return delta, true
}

// restoreTP puts device d's reservation row (and its mirror column) back
// to the snapshot taken when node i was being placed.
func (s *obbState) restoreTP(i, d int) {
	for j, v := range s.savedTP[i] {
		s.pairTP[d][j] = v
		s.pairTP[j][d] = v
	}
}

// unplace reverses tryPlace by restoring the snapshots bit-exactly.
func (s *obbState) unplace(i, d int) {
	s.assign[i] = -1
	copy(s.loads[d], s.savedLoad[i])
	s.restoreTP(i, d)
}

// pruned reports whether a partial path with the given completion lower
// bound (accumulated cost plus the admissible suffix bound) cannot improve
// on the best known solution. Both cost terms are nonnegative and
// additive, so the bound never exceeds any completion's cost and pruning
// is safe. Against the searcher's own best the comparison is ≥ (an
// equal-cost leaf later in DFS order can never win the tie-break); against
// the shared parallel incumbent it is strictly >, so that an equal-cost
// optimum in a lexicographically earlier subtree is still found and can
// win the deterministic reduce.
func (s *obbState) pruned(bound float64) bool {
	if bound >= s.best {
		return true
	}
	return s.global != nil && bound > s.global.load()
}

// search assigns nodes i.. depth-first, device indices in increasing
// order (a warm-start preferred device, when set, jumps the queue), with
// accumulated partial cost.
func (s *obbState) search(i int, cost float64) {
	if s.pruned(cost + s.sufMin[i]) {
		s.prunedN++
		return
	}
	if i == len(s.nodes) {
		s.best = cost
		s.bestAssign = append(s.bestAssign[:0], s.assign...)
		s.incumbents++
		if len(s.trajectory) == TrajectoryCap {
			copy(s.trajectory, s.trajectory[1:])
			s.trajectory[len(s.trajectory)-1] = cost
		} else {
			s.trajectory = append(s.trajectory, cost)
		}
		if s.global != nil {
			s.global.lower(cost)
		}
		return
	}
	pref := -1
	if s.pref != nil {
		pref = s.pref[i]
	}
	if pref >= 0 && (s.pin[i] < 0 || s.pin[i] == pref) {
		if delta, ok := s.tryPlace(i, pref); ok {
			s.explored++
			s.search(i+1, cost+delta)
			s.unplace(i, pref)
		}
	}
	for d := range s.p.Devices {
		if d == pref {
			continue
		}
		if s.pin[i] >= 0 && s.pin[i] != d {
			continue
		}
		if delta, ok := s.tryPlace(i, d); ok {
			s.explored++
			s.search(i+1, cost+delta)
			s.unplace(i, d)
		}
	}
}
